/**
 * @file
 * An hour in the life of a shared cluster: jobs arrive continuously,
 * the market re-clears every epoch, and completed jobs free their
 * cores. Compares Amdahl Bidding against per-server Proportional
 * Sharing on the identical arrival stream.
 *
 * Build & run:  ./build/examples/online_datacenter [servers] [rate]
 */

#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/greedy.hh"
#include "alloc/proportional_share.hh"
#include "common/table.hh"
#include "eval/online.hh"

int
main(int argc, char **argv)
{
    using namespace amdahl;

    eval::OnlineOptions opts;
    opts.servers = argc > 1 ? std::atoi(argv[1]) : 8;
    opts.arrivalsPerServerEpoch =
        argc > 2 ? std::atof(argv[2]) : 2.0;
    opts.users = 2 * opts.servers;
    opts.horizonSeconds = 3600.0;
    opts.workScaleMin = 0.5;
    opts.workScaleMax = 2.5;

    std::cout << "Online datacenter: " << opts.servers << " servers x "
              << opts.coresPerServer << " cores, " << opts.users
              << " tenants, "
              << formatDouble(opts.arrivalsPerServerEpoch, 2)
              << " arrivals/server/epoch, "
              << formatDouble(opts.horizonSeconds / 60.0, 0)
              << " minutes simulated, market re-clears every "
              << formatDouble(opts.epochSeconds, 0) << " s\n\n";

    eval::CharacterizationCache cache;
    eval::OnlineSimulator sim(cache, opts);

    TablePrinter table;
    table.addColumn("Policy", TablePrinter::Align::Left);
    table.addColumn("arrived");
    table.addColumn("completed");
    table.addColumn("work done (1-core h)");
    table.addColumn("mean compl (min)");
    table.addColumn("p95 compl (min)");
    table.addColumn("avg jobs in system");
    table.addColumn("weighted speedup");

    std::vector<std::pair<std::string, eval::OnlineMetrics>> runs;
    auto run = [&](const alloc::AllocationPolicy &policy,
                   eval::FractionSource source) {
        const auto m = sim.run(policy, source);
        table.beginRow()
            .cell(m.policyName)
            .cell(m.jobsArrived)
            .cell(m.jobsCompleted)
            .cell(m.workCompleted / 3600.0, 2)
            .cell(m.meanCompletionSeconds / 60.0, 1)
            .cell(m.p95CompletionSeconds / 60.0, 1)
            .cell(m.meanJobsInSystem, 1)
            .cell(m.meanWeightedSpeedup, 2);
        runs.emplace_back(m.policyName, m);
    };
    run(alloc::ProportionalShare(), eval::FractionSource::Measured);
    run(alloc::AmdahlBiddingPolicy(), eval::FractionSource::Estimated);
    run(alloc::GreedyPolicy(), eval::FractionSource::Measured);
    table.print(std::cout);

    std::cout << "\nBacklog over the hour (jobs in system per epoch):\n";
    for (const auto &[name, m] : runs) {
        std::cout << "  " << name << "  "
                  << sparkline(m.occupancyHistory) << "\n";
    }
    std::cout << "Entitlement-weighted speedup per epoch:\n";
    for (const auto &[name, m] : runs) {
        std::cout << "  " << name << "  "
                  << sparkline(m.speedupHistory) << "\n";
    }

    std::cout << "\nAll policies face the identical arrival stream. "
                 "The market sustains the highest entitlement-weighted "
                 "speedup — the objective it clears for — while "
                 "completing as much work as fair sharing. Greedy "
                 "posts an even higher instantaneous speedup but "
                 "starves poorly scaling jobs (fewest completions, "
                 "largest backlog): progress-only objectives are not "
                 "throughput, which is exactly why entitlements "
                 "matter in a shared system.\n";
    return 0;
}
