/**
 * @file
 * A look inside the execution simulator: per-stage timing breakdowns
 * for one workload across core allocations, showing where Amdahl's Law
 * holds and where overheads (dispatch, communication, bandwidth) bend
 * the curve.
 *
 * Build & run:  ./build/examples/simulator_trace [workload] [gb]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "core/amdahl.hh"
#include "sim/task_sim.hh"
#include "sim/workload_library.hh"

int
main(int argc, char **argv)
{
    using namespace amdahl;
    const std::string name = argc > 1 ? argv[1] : "pagerank";
    const auto &workload = sim::findWorkload(name);
    const double gb =
        argc > 2 ? std::atof(argv[2]) : workload.datasetGB;

    std::cout << "Execution trace for '" << name << "' on "
              << formatDouble(gb, 2) << " GB (structural parallel "
              << "fraction "
              << formatDouble(workload.structuralParallelFraction(), 3)
              << ")\n\n";

    const sim::TaskSimulator sim;
    const double t1 = sim.executionSeconds(workload, gb, 1);

    for (int cores : {1, 4, 12, 24}) {
        const auto result = sim.execute(workload, gb, cores);
        std::cout << "--- " << cores << " core(s): total "
                  << formatDouble(result.totalSeconds, 2)
                  << " s, speedup "
                  << formatDouble(t1 / result.totalSeconds, 2)
                  << " (Amdahl bound "
                  << formatDouble(
                         core::amdahlSpeedup(
                             workload.structuralParallelFraction(),
                             cores),
                         2)
                  << ")\n";
        TablePrinter table;
        table.addColumn("Stage", TablePrinter::Align::Left);
        table.addColumn("start(s)");
        table.addColumn("end(s)");
        table.addColumn("tasks");
        table.addColumn("workers");
        table.addColumn("serial(s)");
        table.addColumn("comm(s)");
        table.addColumn("bw slowdown");
        for (const auto &stage : result.stages) {
            table.beginRow()
                .cell(stage.label)
                .cell(stage.startSeconds, 2)
                .cell(stage.endSeconds, 2)
                .cell(stage.tasks)
                .cell(stage.workers)
                .cell(stage.serialSeconds, 2)
                .cell(stage.commSeconds, 2)
                .cell(stage.bandwidthSlowdown, 2);
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Measured speedups trail the Amdahl bound exactly by "
                 "the overhead columns: serialized dispatch, "
                 "communication growing with workers, and DRAM "
                 "bandwidth saturation.\n";
    return 0;
}
