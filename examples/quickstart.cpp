/**
 * @file
 * Quickstart: the paper's Alice/Bob market in ~40 lines.
 *
 * Two users with equal entitlements share two 10-core servers. Alice
 * runs dedup (f = 0.53) and bodytrack (f = 0.93); Bob runs x264
 * (f = 0.96) and raytrace (f = 0.68). Amdahl Bidding finds the market
 * equilibrium with closed-form updates, and Hamilton rounding makes the
 * allocation integral.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "alloc/amdahl_bidding_policy.hh"
#include "common/table.hh"
#include "core/market.hh"

int
main()
{
    using namespace amdahl;

    // 1. Describe the market: capacities, users, budgets, jobs.
    core::FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 1.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 1.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});

    // 2. Run the Amdahl Bidding mechanism.
    const alloc::AmdahlBiddingPolicy ab;
    const auto result = ab.allocate(market);

    std::cout << "Converged after " << result.outcome.iterations
              << " iterations.\n"
              << "Equilibrium prices: p = ("
              << formatDouble(result.outcome.prices[0], 3) << ", "
              << formatDouble(result.outcome.prices[1], 3) << ")\n\n";

    // 3. Inspect allocations (fractional equilibrium and rounded).
    TablePrinter table;
    table.addColumn("User", TablePrinter::Align::Left);
    table.addColumn("Server C (frac)");
    table.addColumn("Server D (frac)");
    table.addColumn("Server C (cores)");
    table.addColumn("Server D (cores)");
    table.addColumn("Utility");
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto utility = market.utilityOf(i);
        table.beginRow()
            .cell(market.user(i).name)
            .cell(result.outcome.allocation[i][0], 2)
            .cell(result.outcome.allocation[i][1], 2)
            .cell(result.cores[i][0])
            .cell(result.cores[i][1])
            .cell(utility.value(result.outcome.allocation[i]), 3);
    }
    table.print(std::cout);

    // 4. Verify it really is an equilibrium.
    const auto check = core::verifyEquilibrium(market, result.outcome);
    std::cout << "\nEquilibrium check: clearing residual "
              << formatDouble(check.maxClearingResidual, 9)
              << ", optimality gap "
              << formatDouble(check.maxOptimalityGap, 9) << "\n"
              << "Each user gets more utility than her entitlement "
                 "(5 cores per server) would give.\n";
    return 0;
}
