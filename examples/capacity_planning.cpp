/**
 * @file
 * Capacity planning with the performance model: how many servers does
 * a workload mix need to hit a target system progress?
 *
 * A downstream operator's question the library answers without any
 * execution: fit predictors from sampled profiles (Section IV), build
 * candidate markets at increasing cluster sizes, clear each one, and
 * read off the progress curve — diminishing returns and all.
 *
 * Build & run:  ./build/examples/capacity_planning [target]
 */

#include <cstdlib>
#include <iostream>

#include "alloc/amdahl_bidding_policy.hh"
#include "common/table.hh"
#include "core/market.hh"
#include "eval/characterization.hh"
#include "eval/metrics.hh"
#include "eval/population.hh"
#include "sim/workload_library.hh"

int
main(int argc, char **argv)
{
    using namespace amdahl;
    const double target = argc > 1 ? std::atof(argv[1]) : 4.0;

    std::cout << "Capacity planning: smallest cluster whose market-"
                 "cleared allocation reaches SysProgress >= "
              << formatDouble(target, 2) << "\n\n";

    // A fixed tenant mix: 12 users, jobs drawn once; only the number
    // of servers changes. Each candidate cluster re-places the same
    // jobs round-robin.
    Rng rng(0xCA9A);
    eval::CharacterizationCache cache;
    const std::size_t kinds = sim::workloadLibrary().size();
    const int users = 12;
    const int jobs_per_user = 3;
    std::vector<std::vector<std::size_t>> mix(users);
    std::vector<double> budgets(users);
    for (int i = 0; i < users; ++i) {
        budgets[static_cast<std::size_t>(i)] =
            static_cast<double>(rng.uniformInt(1, 5));
        for (int k = 0; k < jobs_per_user; ++k) {
            mix[static_cast<std::size_t>(i)].push_back(
                static_cast<std::size_t>(rng.uniformInt(
                    0, static_cast<std::int64_t>(kinds) - 1)));
        }
    }

    eval::ProgressEvaluator evaluator(cache);
    const alloc::AmdahlBiddingPolicy ab;

    TablePrinter table;
    table.addColumn("Servers");
    table.addColumn("Total cores");
    table.addColumn("SysProgress");
    table.addColumn("Marginal gain");

    int chosen = -1;
    double previous = 0.0;
    for (int servers = 2; servers <= 16; ++servers) {
        core::FisherMarket market(
            std::vector<double>(static_cast<std::size_t>(servers),
                                24.0));
        eval::Population pop;
        pop.serverCount = static_cast<std::size_t>(servers);
        pop.coresPerServer = 24;
        pop.budgets = budgets;
        pop.userJobs.resize(users);

        std::size_t next = 0;
        for (int i = 0; i < users; ++i) {
            core::MarketUser user;
            user.name = "u" + std::to_string(i);
            user.budget = budgets[static_cast<std::size_t>(i)];
            for (std::size_t w : mix[static_cast<std::size_t>(i)]) {
                const std::size_t server =
                    next++ % static_cast<std::size_t>(servers);
                user.jobs.push_back(
                    {server,
                     cache.fraction(w,
                                    eval::FractionSource::Estimated),
                     1.0});
                pop.userJobs[static_cast<std::size_t>(i)].push_back(
                    {server, w});
            }
            market.addUser(std::move(user));
        }

        const auto result = ab.allocate(market);
        const double progress =
            evaluator.systemProgress(pop, result.cores);
        table.beginRow()
            .cell(servers)
            .cell(servers * 24)
            .cell(progress, 3)
            .cell(progress - previous, 3);
        if (chosen < 0 && progress >= target)
            chosen = servers;
        previous = progress;
    }
    table.print(std::cout);

    if (chosen > 0) {
        std::cout << "\n=> " << chosen << " servers (" << chosen * 24
                  << " cores) reach the target. Beyond the knee, "
                     "Amdahl saturation makes additional servers buy "
                     "less and less progress.\n";
    } else {
        std::cout << "\n=> The target is unreachable for this mix: "
                     "serial fractions cap progress below "
                  << formatDouble(previous, 2)
                  << " regardless of cluster size (Amdahl's Law's "
                     "original lesson).\n";
    }
    return 0;
}
