/**
 * @file
 * Interference study (Section VI-E).
 *
 * Profiles are collected in isolation, but colocated jobs contend for
 * shared cache and memory. This example shows (1) how contention
 * lowers a workload's effective parallel fraction in the simulator,
 * and (2) how robust the market allocation is to the resulting
 * over-estimation of F.
 *
 * Build & run:  ./build/examples/interference_study
 */

#include <iostream>

#include "alloc/amdahl_bidding_policy.hh"
#include "common/table.hh"
#include "core/market.hh"
#include "profiling/karp_flatt.hh"
#include "profiling/profiler.hh"
#include "sim/interference.hh"
#include "sim/task_sim.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;

    // Part 1: effective parallel fraction under contention.
    std::cout << "Effective parallel fraction vs colocation pressure\n"
                 "(bodytrack, Karp-Flatt over 2-24 cores)\n\n";

    const sim::InterferenceModel model(0.15);
    const auto &w = sim::findWorkload("bodytrack");

    TablePrinter part1;
    part1.addColumn("Co-runner cores");
    part1.addColumn("Slowdown");
    part1.addColumn("E[F] effective");
    for (int colocated : {0, 5, 10, 15, 20}) {
        const double slowdown =
            model.slowdown(4, colocated, sim::ServerConfig{});
        sim::TaskSimulator contended;
        contended.setInterferenceSlowdown(slowdown);
        const profiling::Profiler profiler(std::move(contended));
        const auto profile = profiler.profile(w, {w.datasetGB});
        const auto est =
            profiling::estimateFraction(profile, w.datasetGB);
        part1.beginRow()
            .cell(colocated)
            .cell(slowdown, 4)
            .cell(est.expected, 3);
    }
    part1.print(std::cout);
    std::cout << "\nIsolation profiles (top row) over-estimate F "
                 "relative to contended reality (bottom rows).\n\n";

    // Part 2: the market's sensitivity to that over-estimation.
    std::cout << "Allocation shift when one user's F was "
                 "over-estimated\n\n";

    core::FisherMarket market({24.0, 24.0});
    market.addUser({"victim", 2.0, {{0, 0.93, 1.0}, {1, 0.90, 1.0}}});
    market.addUser({"rival", 2.0, {{0, 0.96, 1.0}, {1, 0.85, 1.0}}});
    market.addUser({"third", 1.0, {{0, 0.70, 1.0}, {1, 0.95, 1.0}}});
    const alloc::AmdahlBiddingPolicy ab;
    const auto baseline = ab.allocate(market);

    TablePrinter part2;
    part2.addColumn("F reduction");
    part2.addColumn("victim cores (srv0)");
    part2.addColumn("victim cores (srv1)");
    part2.addColumn("shift (cores)");
    for (double pct : {0.0, 5.0, 10.0, 15.0, 25.0, 35.0}) {
        core::FisherMarket adjusted({24.0, 24.0});
        for (std::size_t i = 0; i < market.userCount(); ++i) {
            auto user = market.user(i);
            if (i == 0) {
                for (auto &job : user.jobs) {
                    job.parallelFraction =
                        sim::InterferenceModel::reduceParallelFraction(
                            job.parallelFraction, pct);
                }
            }
            adjusted.addUser(std::move(user));
        }
        const auto shifted = ab.allocate(adjusted);
        const double delta =
            std::abs(shifted.outcome.allocation[0][0] -
                     baseline.outcome.allocation[0][0]) +
            std::abs(shifted.outcome.allocation[0][1] -
                     baseline.outcome.allocation[0][1]);
        part2.beginRow()
            .cell(formatDouble(pct, 0) + "%")
            .cell(shifted.outcome.allocation[0][0], 2)
            .cell(shifted.outcome.allocation[0][1], 2)
            .cell(delta, 2);
    }
    part2.print(std::cout);
    std::cout << "\nContention scales all of a user's jobs together, "
                 "so moderate over-estimation of F shifts allocations "
                 "by only a core or two (Figure 12's finding).\n";
    return 0;
}
