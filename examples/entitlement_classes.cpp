/**
 * @file
 * Entitlement classes in action (Section VI-C).
 *
 * An interactive-services team (class 4: latency-critical, large
 * entitlement) shares a cluster with a batch-analytics team (class 1).
 * Under the market, both teams are guaranteed at least the utility of
 * their entitlement; the batch team's spare capacity flows to whoever
 * values it — and both do better than rigid per-server shares.
 *
 * Build & run:  ./build/examples/entitlement_classes
 */

#include <iostream>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/proportional_share.hh"
#include "common/table.hh"
#include "core/market.hh"
#include "eval/characterization.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;

    // Four 24-core servers; fractions estimated from sampled profiles.
    eval::CharacterizationCache cache;
    auto f = [&](const char *name) {
        const auto &lib = sim::workloadLibrary();
        for (std::size_t i = 0; i < lib.size(); ++i) {
            if (lib[i].name == name)
                return cache.fraction(i,
                                      eval::FractionSource::Estimated);
        }
        return 0.5;
    };

    core::FisherMarket market({24.0, 24.0, 24.0, 24.0});
    // The online team: entitlement class 4, highly parallel services.
    market.addUser({"online", 4.0,
                    {{0, f("ferret"), 1.0},
                     {1, f("x264"), 1.0},
                     {2, f("bodytrack"), 1.0}}});
    // The batch team: class 1, a mixed bag including poorly scaling
    // jobs.
    market.addUser({"batch", 1.0,
                    {{1, f("dedup"), 1.0},
                     {2, f("raytrace"), 1.0},
                     {3, f("correlation"), 1.0}}});
    // A second batch tenant with graph analytics.
    market.addUser({"graphs", 1.0,
                    {{0, f("pagerank"), 1.0},
                     {3, f("triangle"), 1.0}}});

    const alloc::AmdahlBiddingPolicy ab;
    const auto result = ab.allocate(market);
    const alloc::ProportionalShare ps;
    const auto baseline = ps.allocate(market);

    TablePrinter table;
    table.addColumn("User", TablePrinter::Align::Left);
    table.addColumn("Class");
    table.addColumn("Entitled cores");
    table.addColumn("AB cores");
    table.addColumn("PS cores");
    table.addColumn("u(AB)");
    table.addColumn("u(PS)");
    table.addColumn("u(entitled)");
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto utility = market.utilityOf(i);
        std::vector<double> entitled(market.user(i).jobs.size());
        for (std::size_t k = 0; k < entitled.size(); ++k) {
            entitled[k] = market.entitledCoresOnServer(
                i, market.user(i).jobs[k].server);
        }
        std::vector<double> ps_frac(baseline.outcome.allocation[i]);
        table.beginRow()
            .cell(market.user(i).name)
            .cell(static_cast<int>(market.user(i).budget))
            .cell(market.entitledCores(i), 1)
            .cell(static_cast<int>(result.userCores(i)))
            .cell(static_cast<int>(baseline.userCores(i)))
            .cell(utility.value(result.outcome.allocation[i]), 3)
            .cell(utility.value(ps_frac), 3)
            .cell(utility.value(entitled), 3);
    }
    table.print(std::cout);

    std::cout << "\nEvery user's u(AB) >= u(entitled): the market "
                 "guarantees entitlements while trading cores toward "
                 "parallelism. Prices:";
    for (double p : result.outcome.prices)
        std::cout << " " << formatDouble(p, 4);
    std::cout << "\n";
    return 0;
}
