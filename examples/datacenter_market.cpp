/**
 * @file
 * A full datacenter scenario: generate a random user population
 * (Section VI), characterize its workloads, run all five allocation
 * policies, and compare measured system progress and entitlement
 * tracking.
 *
 * Build & run:  ./build/examples/datacenter_market [users] [density]
 */

#include <cstdlib>
#include <iostream>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/best_response.hh"
#include "alloc/greedy.hh"
#include "alloc/proportional_share.hh"
#include "common/table.hh"
#include "core/entitlement.hh"
#include "eval/experiment.hh"
#include "eval/metrics.hh"
#include "sim/workload_library.hh"

int
main(int argc, char **argv)
{
    using namespace amdahl;
    const int users = argc > 1 ? std::atoi(argv[1]) : 40;
    const int density = argc > 2 ? std::atoi(argv[2]) : 12;

    // 1. Generate the sharing scenario.
    Rng rng(2018);
    eval::PopulationOptions opts;
    opts.users = users;
    opts.serverMultiplier = 0.5;
    opts.density = density;
    opts.workloadCount = sim::workloadLibrary().size();
    const auto pop = eval::generatePopulation(rng, opts);
    std::cout << "Population: " << pop.userCount() << " users, "
              << pop.serverCount << " servers ("
              << pop.coresPerServer << " cores each), "
              << pop.jobCount() << " jobs, density " << density
              << "\n\n";

    // 2. Characterize workloads (oracle policies see measured F,
    //    market policies see the sampled-profile estimate).
    eval::CharacterizationCache cache;
    const auto measured =
        eval::buildMarket(pop, cache, eval::FractionSource::Measured);
    const auto estimated =
        eval::buildMarket(pop, cache, eval::FractionSource::Estimated);

    // 3. Run the five mechanisms of Section VI-A.
    eval::ProgressEvaluator evaluator(cache);
    TablePrinter table;
    table.addColumn("Policy", TablePrinter::Align::Left);
    table.addColumn("SysProgress");
    table.addColumn("vs PS");
    table.addColumn("Entitlement MAPE(%)");
    table.addColumn("Iterations");

    double ps_progress = 0.0;
    auto run = [&](const alloc::AllocationPolicy &policy,
                   const core::FisherMarket &market) {
        const auto result = policy.allocate(market);
        const double progress =
            evaluator.systemProgress(pop, result.cores);
        if (policy.name() == "PS")
            ps_progress = progress;

        const auto entitled = core::entitledCoresPerUser(market);
        double mape = 0.0;
        for (std::size_t i = 0; i < pop.userCount(); ++i) {
            mape += std::abs(result.userCores(i) - entitled[i]) /
                    entitled[i];
        }
        mape *= 100.0 / static_cast<double>(pop.userCount());

        table.beginRow()
            .cell(policy.name())
            .cell(progress, 3)
            .cell(ps_progress > 0.0 ? progress / ps_progress : 1.0, 3)
            .cell(mape, 1)
            .cell(result.outcome.iterations);
    };

    run(alloc::ProportionalShare(), measured);
    run(alloc::GreedyPolicy(), measured);
    run(alloc::UpperBoundPolicy(), measured);
    run(alloc::AmdahlBiddingPolicy(), estimated);
    run(alloc::BestResponsePolicy(), estimated);
    table.print(std::cout);

    std::cout << "\nThe market (AB) outperforms per-server fair "
                 "sharing (PS) while tracking datacenter-wide "
                 "entitlements far better than the performance-centric "
                 "policies (G, UB).\n";
    return 0;
}
