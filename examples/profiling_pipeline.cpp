/**
 * @file
 * The Section III-IV profiling pipeline, end to end, for one workload:
 *
 *   sample datasets -> profile (cores x sizes) -> Karp-Flatt -> linear
 *   models -> predict full-dataset execution times -> validate.
 *
 * Build & run:  ./build/examples/profiling_pipeline [workload]
 */

#include <iostream>
#include <string>

#include "common/table.hh"
#include "profiling/karp_flatt.hh"
#include "profiling/predictor.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/task_sim.hh"
#include "sim/workload_library.hh"

int
main(int argc, char **argv)
{
    using namespace amdahl;
    const std::string name = argc > 1 ? argv[1] : "decision";
    const auto &workload = sim::findWorkload(name);

    std::cout << "Profiling pipeline for '" << name << "' ("
              << toString(workload.suite) << ", "
              << formatDouble(workload.datasetGB, 2) << " GB "
              << workload.dataset << ")\n\n";

    // 1. Plan sampled datasets (small subsets of the full input).
    const auto plan = profiling::planSamples(workload);
    std::cout << "Sampled sizes (GB):";
    for (double gb : plan.sampleSizesGB)
        std::cout << " " << formatDouble(gb, 2);
    std::cout << "\n\n";

    // 2. Profile execution across the (cores x sizes) grid.
    const profiling::Profiler profiler((sim::TaskSimulator()));
    const auto profile = profiler.profile(workload, plan.sampleSizesGB);

    // 3. Karp-Flatt analysis per sampled dataset.
    TablePrinter kf;
    kf.addColumn("Dataset(GB)");
    kf.addColumn("E[F]");
    kf.addColumn("Var(F)");
    for (double gb : profile.datasetsGB) {
        const auto est = profiling::estimateFraction(profile, gb);
        kf.beginRow().cell(gb, 2).cell(est.expected, 3).cell(
            formatDouble(est.variance, 6));
    }
    kf.print(std::cout);

    // 4. Fit the performance predictor (linear models + Amdahl).
    const auto predictor = profiling::PerformancePredictor::fit(profile);
    std::cout << "\nEstimated parallel fraction: "
              << formatDouble(predictor.parallelFraction(), 3) << "\n\n";

    // 5. Predict the *full* dataset at unseen allocations; validate
    //    against fresh simulated measurements.
    const sim::TaskSimulator sim;
    const auto report = profiling::evaluatePredictor(
        predictor, sim, workload, workload.datasetGB,
        {1, 2, 4, 8, 16, 24});

    TablePrinter table;
    table.addColumn("Cores");
    table.addColumn("Predicted(s)");
    table.addColumn("Measured(s)");
    table.addColumn("Error(%)");
    for (std::size_t k = 0; k < report.coreCounts.size(); ++k) {
        table.beginRow()
            .cell(report.coreCounts[k])
            .cell(report.predictedSeconds[k], 1)
            .cell(report.measuredSeconds[k], 1)
            .cell(report.errorPercent[k], 2);
    }
    table.print(std::cout);
    std::cout << "\nMean prediction error: "
              << formatDouble(report.meanErrorPercent, 2) << "%\n";
    return 0;
}
