/**
 * @file
 * Thread-scaling study of the parallel market-clearing engine.
 *
 * Clears one synthetic 512-user x 64-server market (the paper's "large
 * datacenter" regime: every server contended by dozens of users) for a
 * fixed number of proportional-response iterations at 1, 2, 4, and 8
 * worker threads, and reports clearing throughput (users x iterations
 * per second) and speedup over the single-thread run.
 *
 * The run doubles as a determinism check: the solver's contract is
 * that same-seed results are *byte-identical* at every thread count
 * (fixed chunk layouts + ordered reductions, DESIGN.md §11), so the
 * bench compares prices, bids, and allocations of every configuration
 * against the single-thread reference with exact equality and prints
 * the verdict alongside the speedup.
 *
 * Scale knobs: AMDAHL_BENCH_SCALING_USERS, AMDAHL_BENCH_SCALING_ITERS,
 * AMDAHL_BENCH_REPS. Speedup depends on the host's core count — on a
 * single-core container every configuration collapses to ~1x while
 * the identity column still must read "yes".
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/bidding.hh"
#include "core/market.hh"
#include "exec/parallelism.hh"

namespace {

using namespace amdahl;

/** Dense synthetic market: every user bids on `jobsPerUser` servers,
 *  server i%m is forced so each server hosts at least one job. */
core::FisherMarket
syntheticMarket(int users, int servers, int jobsPerUser,
                std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> capacities(
        static_cast<std::size_t>(servers), 24.0);
    core::FisherMarket market(std::move(capacities));
    for (int i = 0; i < users; ++i) {
        core::MarketUser user;
        user.name = "user" + std::to_string(i);
        user.budget =
            static_cast<double>(rng.uniformInt(1, 5));
        for (int k = 0; k < jobsPerUser; ++k) {
            core::JobSpec job;
            job.server = k == 0
                             ? static_cast<std::size_t>(i % servers)
                             : static_cast<std::size_t>(rng.uniformInt(
                                   0, servers - 1));
            job.parallelFraction = rng.uniform(0.5, 0.999);
            job.weight = 1.0;
            user.jobs.push_back(job);
        }
        market.addUser(std::move(user));
    }
    return market;
}

bool
sameMatrix(const core::JobMatrix &a, const core::JobMatrix &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) // exact: the contract is byte-identity
            return false;
    }
    return true;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Scaling: clearing threads",
        "Fixed-iteration Amdahl Bidding throughput vs worker threads "
        "(512 users x 64 servers; results must be byte-identical)");

    const int users = bench::envInt("AMDAHL_BENCH_SCALING_USERS", 512);
    const int servers = std::max(1, users / 8);
    const int iterations =
        bench::envInt("AMDAHL_BENCH_SCALING_ITERS", 40);
    const int reps = bench::envInt("AMDAHL_BENCH_REPS", 3);

    const auto market =
        syntheticMarket(users, servers, 4, 0x5ca11ab1e);

    core::BiddingOptions opts;
    // Effectively unreachable tolerance: every run performs exactly
    // `iterations` proportional-response rounds, so each thread count
    // does identical work.
    opts.priceTolerance = 1e-300;
    opts.maxIterations = iterations;

    const int previous_threads = exec::setThreadCount(1);

    TablePrinter table;
    table.addColumn("threads");
    table.addColumn("time (ms)");
    table.addColumn("users*iters/sec");
    table.addColumn("speedup");
    table.addColumn("identical", TablePrinter::Align::Left);

    core::BiddingResult reference;
    double base_seconds = 0.0;
    bool all_identical = true;
    for (int threads : {1, 2, 4, 8}) {
        exec::setThreadCount(threads);
        core::BiddingResult result;
        double best_seconds = 0.0;
        for (int r = 0; r < reps; ++r) {
            const auto start = std::chrono::steady_clock::now();
            result = core::solveAmdahlBidding(market, opts);
            const double seconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            if (r == 0 || seconds < best_seconds)
                best_seconds = seconds;
        }

        bool identical = true;
        if (threads == 1) {
            reference = result;
            base_seconds = best_seconds;
        } else {
            identical = result.prices == reference.prices &&
                        sameMatrix(result.bids, reference.bids) &&
                        sameMatrix(result.allocation,
                                   reference.allocation);
            all_identical = all_identical && identical;
        }

        const double work = static_cast<double>(users) *
                            static_cast<double>(result.iterations);
        table.beginRow()
            .cell(threads)
            .cell(best_seconds * 1e3, 2)
            .cell(work / best_seconds, 0)
            .cell(base_seconds / best_seconds, 2)
            .cell(identical ? "yes" : "NO");
    }
    exec::setThreadCount(previous_threads);

    bench::emitTable(table, "scaling_threads");
    std::cout << "\nThroughput is users x iterations per second of "
                 "wall time (best of " << reps << " reps); speedup is "
                 "relative to 1 thread on this host ("
              << exec::hardwareThreads() << " hardware threads). "
              << (all_identical
                      ? "All configurations produced byte-identical "
                        "prices, bids, and allocations."
                      : "DETERMINISM VIOLATION: results differed "
                        "across thread counts.")
              << "\n\n";
    bench::emitJson(table, "scaling_threads");

    eval::ExperimentDriver::Config cfg;
    cfg.seed = 0x5ca11ab1e;
    cfg.populationsPerPoint = reps;
    cfg.users = users;
    bench::emitMetrics("scaling_threads", cfg);
    return all_identical ? 0 : 1;
}
