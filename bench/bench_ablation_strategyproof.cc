/**
 * @file
 * Ablation: strategy-proofness in large markets (Section I's claim).
 *
 * One user exaggerates her jobs' parallel fractions while everyone
 * else reports truthfully. In small markets she can move prices and
 * sometimes profit; as the population grows, users become price-takers
 * and the gain from misreporting vanishes.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Ablation: strategy-proofness",
        "True-utility gain from exaggerating parallel fractions, vs "
        "population size (density 12, exaggeration 60% of headroom)");

    auto cfg = bench::benchConfig();
    eval::ExperimentDriver driver(cfg);
    const int trials = std::max(8, cfg.populationsPerPoint * 2);

    TablePrinter table;
    table.addColumn("Users");
    table.addColumn("u truthful");
    table.addColumn("u misreport");
    table.addColumn("mean gain %");
    table.addColumn("max gain %");
    for (int users : {4, 8, 16, 32, 64, 128}) {
        const auto study =
            driver.runMisreport(users, 12, 0.6, trials);
        table.beginRow()
            .cell(users)
            .cell(study.meanTruthfulUtility, 3)
            .cell(study.meanMisreportUtility, 3)
            .cell(study.meanGainPercent, 3)
            .cell(study.maxGainPercent, 3);
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: misreporting distorts the liar's "
                 "own budget split, so once she cannot move prices "
                 "(large n) the 'gain' goes to ~zero or negative — the "
                 "market is strategy-proof in the large-population "
                 "limit the paper claims.\n";
    return 0;
}
