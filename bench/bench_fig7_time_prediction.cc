/**
 * @file
 * Figure 7: predicted vs measured execution time for the Decision Tree
 * workload across processor allocations, predicting the full dataset
 * from sampled-dataset profiles.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "profiling/predictor.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader("Figure 7",
                       "Predicted vs measured execution time (decision "
                       "tree, full 24 GB dataset)");

    const auto &w = sim::findWorkload("decision");
    const profiling::Profiler profiler((sim::TaskSimulator()));
    const auto plan = profiling::planSamples(w);
    const auto predictor = profiling::PerformancePredictor::fit(
        profiler.profile(w, plan.sampleSizesGB));

    const sim::TaskSimulator sim;
    const std::vector<int> cores = {1, 2, 4, 6, 8, 12, 16, 20, 24};
    const auto report = profiling::evaluatePredictor(
        predictor, sim, w, w.datasetGB, cores);

    TablePrinter table;
    table.addColumn("Cores");
    table.addColumn("Measured(s)");
    table.addColumn("Estimated(s)");
    table.addColumn("Error(%)");
    for (std::size_t k = 0; k < cores.size(); ++k) {
        table.beginRow()
            .cell(cores[k])
            .cell(report.measuredSeconds[k], 1)
            .cell(report.predictedSeconds[k], 1)
            .cell(report.errorPercent[k], 2);
    }
    bench::emitTable(table, "fig7");
    std::cout << "\nMean error: "
              << formatDouble(report.meanErrorPercent, 2)
              << "% (estimated parallel fraction "
              << formatDouble(predictor.parallelFraction(), 3) << ")\n";
    return 0;
}
