/**
 * @file
 * Ablation: lottery scheduling vs deterministic mechanisms.
 *
 * Lottery scheduling (Section II-A's probabilistic entitlement
 * mechanism, used in practice via token schedulers) matches
 * proportional sharing in expectation but any single raffle deviates.
 * This ablation quantifies the raffle variance and compares measured
 * system progress against PS and the market.
 */

#include <cmath>
#include <iostream>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/lottery.hh"
#include "alloc/proportional_fairness.hh"
#include "alloc/proportional_share.hh"
#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/entitlement.hh"
#include "eval/experiment.hh"
#include "eval/metrics.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Ablation: lottery scheduling",
        "Raffle variance and measured progress of LS vs PS vs AB");

    Rng rng(0x10771);
    eval::PopulationOptions popts;
    popts.users = 32;
    popts.serverMultiplier = 0.5;
    popts.density = 12;
    popts.workloadCount = sim::workloadLibrary().size();
    const auto pop = eval::generatePopulation(rng, popts);

    eval::CharacterizationCache cache;
    const auto market =
        eval::buildMarket(pop, cache, eval::FractionSource::Estimated);
    eval::ProgressEvaluator evaluator(cache);
    const auto entitled = core::entitledCoresPerUser(market);

    auto mape_of = [&](const alloc::AllocationResult &result) {
        double mape = 0.0;
        for (std::size_t i = 0; i < pop.userCount(); ++i) {
            mape += std::abs(result.userCores(i) - entitled[i]) /
                    entitled[i];
        }
        return 100.0 * mape / static_cast<double>(pop.userCount());
    };

    // Lottery: average over raffles; also track per-user variance.
    OnlineStats ls_progress, ls_mape;
    std::vector<OnlineStats> per_user(pop.userCount());
    const int raffles = 50;
    for (int s = 0; s < raffles; ++s) {
        const auto result =
            alloc::LotteryPolicy(static_cast<std::uint64_t>(s))
                .allocate(market);
        ls_progress.add(evaluator.systemProgress(pop, result.cores));
        ls_mape.add(mape_of(result));
        for (std::size_t i = 0; i < pop.userCount(); ++i)
            per_user[i].add(result.userCores(i));
    }
    OnlineStats stddevs;
    for (const auto &stats : per_user)
        stddevs.add(stats.stddev());

    const auto ps = alloc::ProportionalShare().allocate(market);
    const auto ab = alloc::AmdahlBiddingPolicy().allocate(market);
    const auto pf = alloc::ProportionalFairnessPolicy().allocate(market);

    TablePrinter table;
    table.addColumn("Policy", TablePrinter::Align::Left);
    table.addColumn("SysProgress");
    table.addColumn("MAPE %");
    table.addColumn("per-user core stddev");
    table.beginRow()
        .cell("LS (mean of " + std::to_string(raffles) + " raffles)")
        .cell(ls_progress.mean(), 3)
        .cell(ls_mape.mean(), 1)
        .cell(stddevs.mean(), 2);
    table.beginRow()
        .cell("PS")
        .cell(evaluator.systemProgress(pop, ps.cores), 3)
        .cell(mape_of(ps), 1)
        .cell(0.0, 2);
    table.beginRow()
        .cell("AB")
        .cell(evaluator.systemProgress(pop, ab.cores), 3)
        .cell(mape_of(ab), 1)
        .cell(0.0, 2);
    table.beginRow()
        .cell("PF (Eisenberg-Gale)")
        .cell(evaluator.systemProgress(pop, pf.cores), 3)
        .cell(mape_of(pf), 1)
        .cell(0.0, 2);
    bench::emitTable(table, "lottery");

    std::cout << "\nLS tracks PS in expectation (it raffles the same "
                 "shares) but individual users' allocations wobble by "
                 "several cores between raffles; the market delivers "
                 "both better progress and tighter entitlement "
                 "tracking, deterministically. PF — the Eisenberg-Gale "
                 "optimum, computed by generic projected-gradient "
                 "optimization — lands near the market on progress but "
                 "tracks entitlements less tightly (Amdahl utility is "
                 "not homogeneous, so PF and the equilibrium are "
                 "different points; THEORY.md 4a), needs centralized "
                 "gradient optimization rather than decentralized "
                 "bids, and its entitlement guarantee comes with no "
                 "per-user afford-your-share certificate.\n";
    return 0;
}
