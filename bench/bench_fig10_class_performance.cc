/**
 * @file
 * Figure 10: per-entitlement-class performance (mean user utility per
 * class, normalized to PS's value for that class).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "eval/population.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Figure 10", "Per-class user progress normalized to PS "
                     "(budgets proportional to class, density 12)");

    eval::ExperimentDriver driver(bench::benchConfig());
    const auto row = driver.runDensityPoint(12);

    TablePrinter table;
    table.addColumn("Policy", TablePrinter::Align::Left);
    for (int cls = 1; cls <= 5; ++cls)
        table.addColumn("Class " + std::to_string(cls));

    for (const char *name : {"G", "PS", "AB", "BR", "UB"}) {
        const auto &metrics = row.byPolicy.at(name);
        const auto &ps = row.byPolicy.at("PS");
        table.beginRow().cell(name);
        for (int cls = 1; cls <= 5; ++cls) {
            const auto it = metrics.classProgress.find(cls);
            const auto ps_it = ps.classProgress.find(cls);
            if (it == metrics.classProgress.end() ||
                ps_it == ps.classProgress.end()) {
                table.cell("-");
            } else {
                table.cell(it->second / ps_it->second, 3);
            }
        }
    }
    bench::emitTable(table, "fig10");

    std::cout << "\nExpected shape (paper): G disadvantages high "
                 "classes; UB favors them; AB and BR track entitlements "
                 "across every class while beating PS.\n";
    return 0;
}
