/**
 * @file
 * Ablation: overload, admission control, and deadline-bounded clearing.
 *
 * Sweeps the arrival rate from a comfortable load up to several times
 * what the cluster can drain, with admission control off and on, for
 * the online market behind the fallback ladder with a deterministic
 * per-clearing iteration deadline. Reports the overload accounting —
 * shedding rate, queue delay, peak queue, deadline-expired epochs —
 * beside throughput, latency, and fairness, so the cost of saying
 * "no" can be compared against the cost of admitting everything.
 */

#include <iostream>

#include "alloc/fallback_policy.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "eval/online.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Ablation: overload and admission control",
        "One hour of epoch-cleared operation (8 servers) under "
        "rising arrival rates; iteration-deadline clearing, "
        "admission control off vs on");

    eval::CharacterizationCache cache;

    TablePrinter table;
    table.addColumn("Arrivals/server/epoch");
    table.addColumn("admission");
    table.addColumn("arrived");
    table.addColumn("completed");
    table.addColumn("shed");
    table.addColumn("shed %");
    table.addColumn("queue delay (min)");
    table.addColumn("peak queue");
    table.addColumn("deadline epochs");
    table.addColumn("mean compl (min)");
    table.addColumn("p95 compl (min)");
    table.addColumn("mean in-system");
    table.addColumn("MAPE %");

    // The iteration deadline keeps every output deterministic (a
    // wall-clock deadline would vary run to run) while still firing
    // under load: crowded epochs need more rounds than the budget
    // allows, so the anytime rung genuinely serves.
    core::BiddingOptions primary;
    primary.deadline.iterationBudget = 200;
    const alloc::FallbackPolicy policy(primary);

    for (double rate : {1.0, 3.0, 6.0, 10.0}) {
        for (int admit : {0, 1}) {
            eval::OnlineOptions opts;
            opts.servers = 8;
            opts.users = 16;
            opts.arrivalsPerServerEpoch = rate;
            opts.workScaleMin = 0.5;
            opts.workScaleMax = 2.5;
            opts.admission.enabled = admit != 0;
            opts.admission.maxLoadFactor = 6.0;
            opts.admission.maxQueueLength = 64;
            eval::OnlineSimulator sim(cache, opts);
            const auto m =
                sim.run(policy, eval::FractionSource::Estimated);
            table.beginRow()
                .cell(rate, 1)
                .cell(admit != 0 ? "on" : "off")
                .cell(m.jobsArrived)
                .cell(m.jobsCompleted)
                .cell(m.jobsShed)
                .cell(100.0 * m.sheddingRate, 1)
                .cell(m.meanQueueDelaySeconds / 60.0, 1)
                .cell(m.peakQueueLength)
                .cell(m.deadlineExpiredEpochs)
                .cell(m.meanCompletionSeconds / 60.0, 1)
                .cell(m.p95CompletionSeconds / 60.0, 1)
                .cell(m.meanJobsInSystem, 1)
                .cell(m.longRunEntitlementMape, 1);
        }
    }
    bench::emitTable(table, "overload");
    bench::emitJson(table, "overload");

    std::cout
        << "\nAn open system has no load limit of its own: past the "
           "drain rate the in-system count grows all hour, per-job "
           "grants shrink, and completion times stretch without bound "
           "while the market dutifully clears every epoch. Admission "
           "control converts that unbounded latency into an explicit, "
           "entitlement-ordered shedding rate and a bounded queue, "
           "and the iteration deadline caps what any one clearing can "
           "cost — overloaded epochs are served by the best anytime "
           "bid state instead of a late one.\n";
    return 0;
}
