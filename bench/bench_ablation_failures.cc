/**
 * @file
 * Ablation: task-failure injection.
 *
 * Real clusters re-execute failed tasks. This ablation sweeps the
 * task failure rate and measures how retries distort the profiling
 * pipeline — measured parallel fractions, execution-time prediction
 * error — and how far the resulting market allocations drift from
 * the failure-free equilibrium.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/bidding.hh"
#include "profiling/karp_flatt.hh"
#include "profiling/predictor.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/task_sim.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Ablation: task failures",
        "Retried tasks vs the profiling pipeline and the market");

    const std::vector<double> rates = {0.0, 0.02, 0.05, 0.10, 0.20};

    // (a) measured fraction and prediction error vs failure rate.
    TablePrinter table;
    table.addColumn("Failure rate");
    table.addColumn("E[F] bodytrack");
    table.addColumn("E[F] ferret");
    table.addColumn("pred err % (decision)");
    for (double rate : rates) {
        sim::TaskSimulator sim;
        sim.setTaskFailureRate(rate);
        const profiling::Profiler profiler(sim);

        auto fraction_of = [&](const char *name) {
            const auto &w = sim::findWorkload(name);
            const auto profile = profiler.profile(w, {w.datasetGB});
            return profiling::estimateFraction(profile, w.datasetGB)
                .expected;
        };

        const auto &decision = sim::findWorkload("decision");
        const auto plan = profiling::planSamples(decision);
        const auto predictor = profiling::PerformancePredictor::fit(
            profiler.profile(decision, plan.sampleSizesGB));
        const auto report = profiling::evaluatePredictor(
            predictor, sim, decision, decision.datasetGB,
            {2, 4, 8, 16, 24});

        table.beginRow()
            .cell(formatDouble(100.0 * rate, 0) + "%")
            .cell(fraction_of("bodytrack"), 3)
            .cell(fraction_of("ferret"), 3)
            .cell(report.meanErrorPercent, 2);
    }
    std::cout << "(a) profiling under failures\n";
    bench::emitTable(table, "failures_profiling");
    bench::emitJson(table, "failures_profiling");

    // (b) allocation drift: characterize under failures, re-run the
    // market, compare against the failure-free equilibrium.
    core::FisherMarket reference({24.0, 24.0});
    {
        sim::TaskSimulator clean;
        auto f = [&](const char *name) {
            const auto &w = sim::findWorkload(name);
            const double s = clean.speedup(w, w.datasetGB, 16);
            return std::clamp(
                (1.0 - 1.0 / s) / (1.0 - 1.0 / 16.0), 0.01, 1.0);
        };
        reference.addUser({"a", 1.0,
                           {{0, f("x264"), 1.0},
                            {1, f("raytrace"), 1.0}}});
        reference.addUser({"b", 1.0,
                           {{0, f("dedup"), 1.0},
                            {1, f("bodytrack"), 1.0}}});
    }
    const auto base = core::solveAmdahlBidding(reference);

    TablePrinter drift;
    drift.addColumn("Failure rate");
    drift.addColumn("max |x - x0| (cores)");
    for (double rate : rates) {
        sim::TaskSimulator flaky;
        flaky.setTaskFailureRate(rate);
        auto f = [&](const char *name) {
            const auto &w = sim::findWorkload(name);
            const double s = flaky.speedup(w, w.datasetGB, 16);
            return std::clamp(
                (1.0 - 1.0 / s) / (1.0 - 1.0 / 16.0), 0.01, 1.0);
        };
        core::FisherMarket market({24.0, 24.0});
        market.addUser({"a", 1.0,
                        {{0, f("x264"), 1.0},
                         {1, f("raytrace"), 1.0}}});
        market.addUser({"b", 1.0,
                        {{0, f("dedup"), 1.0},
                         {1, f("bodytrack"), 1.0}}});
        const auto r = core::solveAmdahlBidding(market);
        double worst = 0.0;
        for (std::size_t i = 0; i < 2; ++i) {
            for (std::size_t k = 0; k < 2; ++k) {
                worst = std::max(worst,
                                 std::abs(r.allocation[i][k] -
                                          base.allocation[i][k]));
            }
        }
        drift.beginRow()
            .cell(formatDouble(100.0 * rate, 0) + "%")
            .cell(worst, 3);
    }
    std::cout << "\n(b) market allocation drift\n";
    bench::emitTable(drift, "failures_drift");
    bench::emitJson(drift, "failures_drift");

    std::cout << "\nBulk retries land in the task waves, inflating "
                 "the parallel phase at every core count: measured "
                 "fractions barely move (ticking up slightly as retry "
                 "work amortizes), prediction accuracy survives, and "
                 "market allocations drift by well under a core. "
                 "Failures hit all jobs' profiles together, so "
                 "relative bids barely change — the same robustness "
                 "mechanism as the interference study (Figure 12). "
                 "Only single-wave stages (tasks ~= cores) lose "
                 "speedup to a critical-path retry.\n";
    return 0;
}
