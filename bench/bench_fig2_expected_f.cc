/**
 * @file
 * Figure 2: expected parallel fraction E[F] = mean_x F(x) for every
 * Table I application.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "profiling/karp_flatt.hh"
#include "profiling/profiler.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader("Figure 2",
                       "Expected parallel fraction E[F] per application "
                       "(paper range: ~0.55 to ~0.99)");

    const profiling::Profiler profiler((sim::TaskSimulator()));

    TablePrinter table;
    table.addColumn("ID");
    table.addColumn("Workload", TablePrinter::Align::Left);
    table.addColumn("E[F]");

    double lo = 1.0, hi = 0.0;
    for (const auto &w : sim::workloadLibrary()) {
        const auto profile = profiler.profile(w, {w.datasetGB});
        const auto est =
            profiling::estimateFraction(profile, w.datasetGB);
        table.beginRow().cell(w.id).cell(w.name).cell(est.expected, 3);
        lo = std::min(lo, est.expected);
        hi = std::max(hi, est.expected);
    }
    bench::emitTable(table, "fig2");
    std::cout << "\nRange: " << formatDouble(lo, 3) << " to "
              << formatDouble(hi, 3) << "\n";
    return 0;
}
