/**
 * @file
 * Ablation: polynomial dataset-scaling models (Section IV-A's QR
 * decomposition remark).
 *
 * The paper's pipeline fits linear time-vs-dataset models, noting that
 * workloads like QR decomposition scale quadratically and would need
 * polynomial models. This ablation profiles the quadratic "qr"
 * extension workload on sampled datasets and compares full-dataset
 * predictions from the paper's linear pipeline against the quadratic
 * model selection.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "profiling/predictor.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Ablation: quadratic scaling",
        "Full-dataset time predictions for QR decomposition: linear "
        "models (paper pipeline) vs quadratic model selection");

    const auto &qr = sim::findExtensionWorkload("qr");
    const profiling::Profiler profiler((sim::TaskSimulator()));
    const auto plan = profiling::planSamples(qr);
    const auto profile = profiler.profile(qr, plan.sampleSizesGB);

    const auto linear = profiling::PerformancePredictor::fit(profile);
    profiling::PredictorOptions opts;
    opts.allowQuadratic = true;
    const auto quadratic =
        profiling::PerformancePredictor::fit(profile, opts);

    const sim::TaskSimulator sim;
    const std::vector<int> cores = {1, 4, 8, 16, 24};
    const auto lin_report = profiling::evaluatePredictor(
        linear, sim, qr, qr.datasetGB, cores);
    const auto quad_report = profiling::evaluatePredictor(
        quadratic, sim, qr, qr.datasetGB, cores);

    TablePrinter table;
    table.addColumn("Cores");
    table.addColumn("Measured(s)");
    table.addColumn("Linear pred(s)");
    table.addColumn("Linear err%");
    table.addColumn("Quad pred(s)");
    table.addColumn("Quad err%");
    for (std::size_t k = 0; k < cores.size(); ++k) {
        table.beginRow()
            .cell(cores[k])
            .cell(lin_report.measuredSeconds[k], 1)
            .cell(lin_report.predictedSeconds[k], 1)
            .cell(lin_report.errorPercent[k], 1)
            .cell(quad_report.predictedSeconds[k], 1)
            .cell(quad_report.errorPercent[k], 1);
    }
    table.print(std::cout);

    std::cout << "\nSelected scaling degree: linear pipeline "
              << linear.scalingDegree() << ", with model selection "
              << quadratic.scalingDegree() << ". Mean error "
              << formatDouble(lin_report.meanErrorPercent, 1)
              << "% -> "
              << formatDouble(quad_report.meanErrorPercent, 1)
              << "%.\nSampled inputs (" << plan.sampleSizesGB.front()
              << "-" << plan.sampleSizesGB.back()
              << " GB) are far below the full "
              << formatDouble(qr.datasetGB, 0)
              << " GB dataset, so the linear extrapolation misses the "
                 "quadratic growth badly; the quadratic fit recovers "
                 "it, exactly as Section IV-A anticipates.\n";
    return 0;
}
