/**
 * @file
 * Ablation: clearing over an unreliable network.
 *
 * Sweeps the simulated transport's fault surface — message loss,
 * delivery delay, and scheduled partitions — over the sharded
 * epoch-barrier clearing engine and measures what degradation costs:
 * rounds to convergence, the fraction of rounds served degraded on a
 * stale table, retransmission load, and the welfare Sum w * s(f, x)
 * of the final allocation relative to the fault-free equilibrium.
 * Partial-quorum rounds are the paper's fairness story under stress:
 * the market keeps serving, and welfare should shed percent, not
 * halves.
 */

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/amdahl.hh"
#include "core/bidding.hh"
#include "core/market.hh"
#include "net/options.hh"

namespace {

using namespace amdahl;

/** A mid-sized market: four price blocks, so four shards are real. */
core::FisherMarket
networkMarket(int users = 128, int servers = 12)
{
    Rng rng(0xab1a7e);
    std::vector<double> capacities(static_cast<std::size_t>(servers),
                                   20.0);
    core::FisherMarket market(std::move(capacities));
    for (int i = 0; i < users; ++i) {
        core::MarketUser user;
        user.name = "u" + std::to_string(i);
        user.budget = rng.uniform(0.5, 2.0);
        const int jobs = 1 + static_cast<int>(rng.uniformInt(1, 2));
        for (int k = 0; k < jobs; ++k) {
            core::JobSpec job;
            job.server = k == 0 ? static_cast<std::size_t>(i % servers)
                                : static_cast<std::size_t>(
                                      rng.uniformInt(0, servers - 1));
            job.parallelFraction = rng.uniform(0.3, 0.99);
            job.weight = rng.uniform(0.5, 2.0);
            user.jobs.push_back(job);
        }
        market.addUser(std::move(user));
    }
    return market;
}

/** Weighted welfare Sum_ij w_ij * s(f_ij, x_ij) of an allocation. */
double
welfare(const core::FisherMarket &market, const core::BiddingResult &r)
{
    double total = 0.0;
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            total += jobs[k].weight *
                     core::amdahlSpeedup(jobs[k].parallelFraction,
                                         r.allocation[i][k]);
        }
    }
    return total;
}

struct Sample
{
    core::BiddingResult result;
    double welfareRatio = 0.0;
};

Sample
run(const core::FisherMarket &market, const net::ShardedOptions &net,
    double cleanWelfare, int maxIterations = 1200)
{
    core::BiddingOptions opts;
    opts.maxIterations = maxIterations;
    Sample s;
    s.result = core::solveShardedBidding(market, opts, net);
    s.welfareRatio = welfare(market, s.result) / cleanWelfare;
    return s;
}

std::string
percent(double fraction)
{
    return formatDouble(100.0 * fraction, 1) + "%";
}

} // namespace

int
main()
{
    bench::printHeader(
        "Ablation: unreliable network",
        "Loss x delay x partition vs convergence, degraded service, "
        "and welfare");

    const auto market = networkMarket();
    const auto clean = core::solveAmdahlBidding(market);
    const double cleanWelfare = welfare(market, clean);

    net::ShardedOptions base;
    base.shards = 4;
    base.faults.seed = 0xc1ea5;

    // (a) loss x delay grid. Delay jitter reorders and strands
    // messages near the barrier; loss forces retransmits; together
    // they produce degraded rounds well before quorum is threatened.
    TablePrinter grid;
    grid.addColumn("Loss");
    grid.addColumn("Delay (ticks)");
    grid.addColumn("Rounds");
    grid.addColumn("Converged");
    grid.addColumn("Degraded rounds");
    grid.addColumn("Retransmits");
    grid.addColumn("Welfare vs clean");
    for (double loss : {0.0, 0.05, 0.15, 0.30}) {
        for (net::Ticks delayMax : {net::Ticks{0}, net::Ticks{4},
                                    net::Ticks{16}}) {
            net::ShardedOptions cfg = base;
            cfg.faults.lossRate = loss;
            cfg.faults.delayMin = delayMax > 0 ? 1 : 0;
            cfg.faults.delayMax = delayMax;
            const Sample s = run(market, cfg, cleanWelfare);
            const auto iters =
                static_cast<std::uint64_t>(s.result.iterations);
            grid.beginRow()
                .cell(percent(loss))
                .cell(delayMax == 0
                          ? "0"
                          : "1:" + std::to_string(delayMax))
                .cell(static_cast<double>(iters), 0)
                .cell(s.result.converged ? "yes" : "no")
                .cell(percent(
                    iters == 0
                        ? 0.0
                        : static_cast<double>(
                              s.result.net.degradedRounds) /
                              static_cast<double>(iters)))
                .cell(static_cast<double>(s.result.net.retransmits), 0)
                .cell(percent(s.welfareRatio));
        }
    }
    std::cout << "(a) loss x delay\n";
    bench::emitTable(grid, "network_loss_delay");
    bench::emitJson(grid, "network_loss_delay");

    // (b) partition length sweep: one shard silenced for the first W
    // rounds, healing mid-solve. Degraded service is bounded by the
    // window; welfare recovers once the healed shard re-enters.
    TablePrinter part;
    part.addColumn("Partition rounds");
    part.addColumn("Rounds");
    part.addColumn("Converged");
    part.addColumn("Degraded rounds");
    part.addColumn("Healed re-entries");
    part.addColumn("Welfare vs clean");
    for (std::uint64_t window : {0ull, 2ull, 6ull, 12ull}) {
        net::ShardedOptions cfg = base;
        if (window > 0)
            cfg.partitions = {{1, 0, window}};
        const Sample s = run(market, cfg, cleanWelfare);
        part.beginRow()
            .cell(static_cast<double>(window), 0)
            .cell(static_cast<double>(s.result.iterations), 0)
            .cell(s.result.converged ? "yes" : "no")
            .cell(static_cast<double>(s.result.net.degradedRounds), 0)
            .cell(static_cast<double>(s.result.net.healedReentries), 0)
            .cell(percent(s.welfareRatio));
    }
    std::cout << "\n(b) partition / heal\n";
    bench::emitTable(part, "network_partition");
    bench::emitJson(part, "network_partition");

    // (c) quorum floor under a persistent partition: the knob that
    // separates "serve degraded" from "abort for the fallback ladder".
    TablePrinter quorum;
    quorum.addColumn("Quorum floor");
    quorum.addColumn("Collapsed");
    quorum.addColumn("Degraded rounds");
    quorum.addColumn("Min quorum");
    quorum.addColumn("Welfare vs clean");
    for (double floor : {0.25, 0.5, 0.75, 1.0}) {
        net::ShardedOptions cfg = base;
        cfg.quorumFloor = floor;
        cfg.maxStaleRounds = 2;
        cfg.partitions = {{0, 0, 1000}};
        const Sample s = run(market, cfg, cleanWelfare, 40);
        quorum.beginRow()
            .cell(percent(floor))
            .cell(s.result.net.quorumCollapsed ? "yes" : "no")
            .cell(static_cast<double>(s.result.net.degradedRounds), 0)
            .cell(static_cast<double>(s.result.net.minQuorum), 0)
            .cell(percent(s.welfareRatio));
    }
    std::cout << "\n(c) quorum floor under a persistent partition\n";
    bench::emitTable(quorum, "network_quorum");
    bench::emitJson(quorum, "network_quorum");

    // (d) critical-path attribution per fault mix. The sharded engine
    // charges every round's virtual-time latency to exactly one cause
    // chain (market.hh NetOutcomeStats); this section asserts both the
    // exact-sum invariant and that each configured fault actually
    // shows up under its own cause — a delay mix must charge
    // net_delay, a partition mix partition_wait, and so on. A
    // violation is a correctness bug in the attribution, so it fails
    // the benchmark run rather than just printing a number.
    struct AttributionCase
    {
        const char *name;
        net::ShardedOptions cfg;
        bool wantZero;       //!< all cause counters must be zero
        bool wantDelay;      //!< delayTicks > 0
        bool wantRetransmit; //!< retransmitTicks + quorumWaitTicks > 0
        bool wantPartition;  //!< partitionWaitTicks > 0
    };
    std::vector<AttributionCase> cases;
    {
        AttributionCase clean_case{"clean", base, true, false, false,
                                   false};
        cases.push_back(clean_case);
        AttributionCase delay_case{"delay 1:4", base, false, true,
                                   false, false};
        delay_case.cfg.faults.delayMin = 1;
        delay_case.cfg.faults.delayMax = 4;
        cases.push_back(delay_case);
        AttributionCase loss_case{"loss 15%", base, false, false, true,
                                  false};
        loss_case.cfg.faults.lossRate = 0.15;
        cases.push_back(loss_case);
        AttributionCase mixed_case{"loss 15% + delay 1:4", base, false,
                                   true, true, false};
        mixed_case.cfg.faults.lossRate = 0.15;
        mixed_case.cfg.faults.delayMin = 1;
        mixed_case.cfg.faults.delayMax = 4;
        cases.push_back(mixed_case);
        AttributionCase part_case{"partition 6 rounds", base, false,
                                  false, false, true};
        part_case.cfg.partitions = {{1, 0, 6}};
        cases.push_back(part_case);
    }

    TablePrinter attr;
    attr.addColumn("Config", TablePrinter::Align::Left);
    attr.addColumn("Latency (ticks)");
    attr.addColumn("Net delay");
    attr.addColumn("Retransmit");
    attr.addColumn("Partition wait");
    attr.addColumn("Quorum wait");
    attr.addColumn("Sum check");
    int attributionFailures = 0;
    for (const AttributionCase &c : cases) {
        const Sample s = run(market, c.cfg, cleanWelfare);
        const core::NetOutcomeStats &net = s.result.net;
        const std::uint64_t sum = net.delayTicks + net.retransmitTicks +
                                  net.partitionWaitTicks +
                                  net.quorumWaitTicks;
        const bool sumOk = sum == net.latencyTicks;
        bool causeOk = true;
        if (c.wantZero)
            causeOk = net.latencyTicks == 0;
        if (c.wantDelay)
            causeOk = causeOk && net.delayTicks > 0;
        if (c.wantRetransmit)
            causeOk = causeOk &&
                      net.retransmitTicks + net.quorumWaitTicks > 0;
        if (c.wantPartition)
            causeOk = causeOk && net.partitionWaitTicks > 0;
        if (!sumOk || !causeOk) {
            ++attributionFailures;
            std::cerr << "attribution violation [" << c.name
                      << "]: latency " << net.latencyTicks
                      << " = delay " << net.delayTicks
                      << " + retransmit " << net.retransmitTicks
                      << " + partition " << net.partitionWaitTicks
                      << " + quorum " << net.quorumWaitTicks
                      << (sumOk ? " (sum ok," : " (SUM MISMATCH,")
                      << (causeOk ? " causes ok)" : " WRONG CAUSE)")
                      << "\n";
        }
        attr.beginRow()
            .cell(c.name)
            .cell(net.latencyTicks)
            .cell(net.delayTicks)
            .cell(net.retransmitTicks)
            .cell(net.partitionWaitTicks)
            .cell(net.quorumWaitTicks)
            .cell(sumOk ? "exact" : "MISMATCH");
    }
    std::cout << "\n(d) critical-path attribution by fault mix\n";
    bench::emitTable(attr, "network_attribution");
    bench::emitJson(attr, "network_attribution");
    if (attributionFailures > 0) {
        std::cerr << "\n" << attributionFailures
                  << " attribution violation(s)\n";
        return 1;
    }

    std::cout
        << "\nLoss and delay stretch convergence (retransmits and "
           "degraded rounds absorb the damage) but the equilibrium "
           "itself is unmoved: welfare lands within a fraction of a "
           "percent of the fault-free solve whenever the run "
           "converges. Partitions cost degraded rounds roughly equal "
           "to the window length and heal through damped re-entry. "
           "The quorum floor is the policy boundary: low floors keep "
           "serving on stale aggregates, a full floor aborts on the "
           "first silent shard and hands the epoch to the fallback "
           "ladder.\n";
    return 0;
}
