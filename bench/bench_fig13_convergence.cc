/**
 * @file
 * Figure 13: Amdahl Bidding iterations to convergence as a function of
 * the user count, the server multiplier, and the workload density.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "eval/population.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader("Figure 13",
                       "Mean Amdahl Bidding iterations to convergence "
                       "vs users / servers / density");

    auto cfg = bench::benchConfig();
    eval::ExperimentDriver driver(cfg);
    const int pops = cfg.populationsPerPoint;

    {
        TablePrinter table;
        table.addColumn("Users");
        table.addColumn("Iterations");
        for (int users : {20, 40, 80, 160}) {
            table.beginRow().cell(users).cell(
                driver.meanBiddingIterations(users, 0.5, 12, pops), 1);
        }
        std::cout << "(a) vs user count (s=0.5, d=12)\n";
        table.print(std::cout);
    }
    {
        TablePrinter table;
        table.addColumn("Multiplier");
        table.addColumn("Servers");
        table.addColumn("Iterations");
        for (double s : eval::paperServerMultipliers()) {
            table.beginRow()
                .cell(s, 2)
                .cell(static_cast<int>(std::ceil(s * cfg.users)))
                .cell(driver.meanBiddingIterations(cfg.users, s, 12,
                                                   pops),
                      1);
        }
        std::cout << "\n(b) vs server multiplier (n=" << cfg.users
                  << ", d=12)\n";
        table.print(std::cout);
    }
    {
        TablePrinter table;
        table.addColumn("Density");
        table.addColumn("Iterations");
        for (int d : eval::paperDensityLadder()) {
            table.beginRow().cell(d).cell(
                driver.meanBiddingIterations(cfg.users, 0.5, d, pops),
                1);
        }
        std::cout << "\n(c) vs workload density (n=" << cfg.users
                  << ", s=0.5)\n";
        table.print(std::cout);
    }

    std::cout << "\nExpected shape (paper): iterations grow with the "
                 "user population, shrink with more servers (smaller "
                 "bids per job), and respond non-monotonically to "
                 "density.\n";
    bench::emitMetrics("fig13_convergence", cfg);
    return 0;
}
