/**
 * @file
 * Figure 8: distribution (boxplot) of execution-time prediction errors
 * per application, over varied processor allocations.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "profiling/predictor.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Figure 8", "Prediction-error boxplots per application (errors "
                    "in % over core allocations 2-24)");

    // The paper's Figure 8 workload subset.
    const std::vector<std::string> names = {
        "svm",       "correlation", "linear", "decision", "blackscholes",
        "bodytrack", "canneal",     "ferret", "vips",     "x264"};
    const std::vector<int> cores = {2, 4, 6, 8, 12, 16, 20, 24};

    const profiling::Profiler profiler((sim::TaskSimulator()));
    const sim::TaskSimulator sim;

    TablePrinter table;
    table.addColumn("Workload", TablePrinter::Align::Left);
    table.addColumn("min%");
    table.addColumn("q1%");
    table.addColumn("median%");
    table.addColumn("q3%");
    table.addColumn("max%");
    table.addColumn("mean%");

    OnlineStats means;
    for (const auto &name : names) {
        const auto &w = sim::findWorkload(name);
        const auto plan = profiling::planSamples(w);
        const auto predictor = profiling::PerformancePredictor::fit(
            profiler.profile(w, plan.sampleSizesGB));
        const auto report = profiling::evaluatePredictor(
            predictor, sim, w, w.datasetGB, cores);
        const auto &b = report.errorSummary;
        table.beginRow()
            .cell(name)
            .cell(b.min, 2)
            .cell(b.q1, 2)
            .cell(b.median, 2)
            .cell(b.q3, 2)
            .cell(b.max, 2)
            .cell(report.meanErrorPercent, 2);
        means.add(report.meanErrorPercent);
    }
    bench::emitTable(table, "fig8");
    std::cout << "\nAverage of per-workload mean errors: "
              << formatDouble(means.mean(), 2)
              << "% (paper reports 5-15% average, ~30% worst case; "
                 "canneal is the outlier in both).\n";
    return 0;
}
