/**
 * @file
 * Figure 1: calculated parallel fraction F(x) for representative Spark
 * workloads as the processor count varies.
 *
 * Flat series indicate Amdahl's Law models the workload well; series
 * that fall with core count reveal parallelization overheads
 * (communication, locks, scheduling).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "profiling/karp_flatt.hh"
#include "profiling/profiler.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader("Figure 1",
                       "Karp-Flatt parallel fraction F(x) vs core count "
                       "for representative Spark workloads");

    const std::vector<std::string> names = {
        "correlation", "decision", "fpgrowth",
        "gradient",    "kmeans",   "linear"};
    const std::vector<int> cores = {2, 4, 6, 8, 12, 16, 20, 24};
    const profiling::Profiler profiler{sim::TaskSimulator(),
                                       std::vector<int>(cores)};

    TablePrinter table;
    table.addColumn("Workload", TablePrinter::Align::Left);
    for (int x : cores)
        table.addColumn("F(" + std::to_string(x) + ")");

    for (const auto &name : names) {
        const auto &w = sim::findWorkload(name);
        const auto profile = profiler.profile(w, {w.datasetGB});
        const auto est =
            profiling::estimateFraction(profile, w.datasetGB);
        table.beginRow().cell(name);
        for (double f : est.fractions)
            table.cell(f, 3);
    }
    bench::emitTable(table, "fig1");

    std::cout << "\nFlat rows track Amdahl's Law; falling rows (graph "
                 "analytics would fall further) show overheads growing "
                 "with parallelism. kmeans is noisy: its 327 MB dataset "
                 "yields only 11 tasks.\n";
    return 0;
}
