/**
 * @file
 * Section VI-F: mechanism overheads.
 *
 * Micro-benchmarks of exactly the steps the paper times:
 *  - a user's Amdahl Bidding update (closed-form equations),
 *  - the market's price update + termination check,
 *  - a user's Best-Response update (interior-point optimization),
 *  - per-server allocation rounding,
 *  - full equilibrium solves for both mechanisms.
 *
 * The paper's headline: BR's bid update costs ~22x AB's. Absolute
 * times differ on our hardware; the ratio is the reproduction target.
 */

#include <benchmark/benchmark.h>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/best_response.hh"
#include "alloc/proportional_fairness.hh"
#include "core/bidding.hh"
#include "core/rounding.hh"
#include "eval/experiment.hh"
#include "sim/workload_library.hh"

namespace {

using namespace amdahl;

/** A representative mid-size market (40 users, 20 servers, d=12). */
const core::FisherMarket &
benchMarket()
{
    static const core::FisherMarket market = [] {
        Rng rng(0xbead);
        eval::PopulationOptions opts;
        opts.users = 40;
        opts.serverMultiplier = 0.5;
        opts.density = 12;
        opts.workloadCount = sim::workloadLibrary().size();
        const auto pop = eval::generatePopulation(rng, opts);
        eval::CharacterizationCache cache;
        return eval::buildMarket(pop, cache,
                                 eval::FractionSource::Estimated);
    }();
    return market;
}

/** Equilibrium prices for the bench market (shared fixture). */
const core::BiddingResult &
benchEquilibrium()
{
    static const core::BiddingResult result =
        core::solveAmdahlBidding(benchMarket());
    return result;
}

void
BM_AB_UserBidUpdate(benchmark::State &state)
{
    const auto &market = benchMarket();
    const auto &eq = benchEquilibrium();
    const auto &user = market.user(0);
    std::vector<double> bids(user.jobs.size(),
                             user.budget / user.jobs.size());
    for (auto _ : state) {
        core::updateUserBids(user, eq.prices, bids);
        benchmark::DoNotOptimize(bids.data());
    }
}
BENCHMARK(BM_AB_UserBidUpdate);

void
BM_AB_MarketIteration(benchmark::State &state)
{
    // One full synchronous round: every user updates bids, then the
    // market recomputes prices.
    const auto &market = benchMarket();
    const auto &eq = benchEquilibrium();
    auto bids = eq.bids;
    std::vector<double> prices(market.serverCount());
    for (auto _ : state) {
        for (std::size_t i = 0; i < market.userCount(); ++i)
            core::updateUserBids(market.user(i), eq.prices, bids[i]);
        std::fill(prices.begin(), prices.end(), 0.0);
        for (std::size_t i = 0; i < market.userCount(); ++i) {
            const auto &jobs = market.user(i).jobs;
            for (std::size_t k = 0; k < jobs.size(); ++k)
                prices[jobs[k].server] += bids[i][k];
        }
        for (std::size_t j = 0; j < market.serverCount(); ++j)
            prices[j] /= market.capacity(j);
        benchmark::DoNotOptimize(prices.data());
    }
}
BENCHMARK(BM_AB_MarketIteration);

void
BM_BR_UserBidUpdate(benchmark::State &state)
{
    // The paper: BR users spend ~22x more per bid update than AB's.
    const auto &market = benchMarket();
    const auto &eq = benchEquilibrium();
    const auto &user = market.user(0);
    std::vector<double> opposing(user.jobs.size());
    for (std::size_t k = 0; k < user.jobs.size(); ++k) {
        const auto j = user.jobs[k].server;
        opposing[k] =
            eq.prices[j] * market.capacity(j) - eq.bids[0][k];
    }
    for (auto _ : state) {
        auto bids = alloc::BestResponsePolicy::bestResponseBids(
            user, market.capacities(), opposing);
        benchmark::DoNotOptimize(bids.data());
    }
}
BENCHMARK(BM_BR_UserBidUpdate);

void
BM_Rounding(benchmark::State &state)
{
    const auto &market = benchMarket();
    const auto &eq = benchEquilibrium();
    for (auto _ : state) {
        auto rounded = core::roundOutcome(market, eq);
        benchmark::DoNotOptimize(rounded.data());
    }
}
BENCHMARK(BM_Rounding);

void
BM_AB_FullSolve(benchmark::State &state)
{
    const auto &market = benchMarket();
    for (auto _ : state) {
        auto result = core::solveAmdahlBidding(market);
        benchmark::DoNotOptimize(result.prices.data());
    }
}
BENCHMARK(BM_AB_FullSolve)->Unit(benchmark::kMillisecond);

void
BM_BR_FullSolve(benchmark::State &state)
{
    const auto &market = benchMarket();
    const alloc::BestResponsePolicy br;
    for (auto _ : state) {
        auto result = br.allocate(market);
        benchmark::DoNotOptimize(result.cores.data());
    }
}
BENCHMARK(BM_BR_FullSolve)->Unit(benchmark::kMillisecond);

void
BM_PF_FullSolve(benchmark::State &state)
{
    // The generic Eisenberg-Gale optimizer: what "markets for generic
    // utility functions" pay per allocation versus AB's closed forms.
    const auto &market = benchMarket();
    const alloc::ProportionalFairnessPolicy pf;
    for (auto _ : state) {
        auto result = pf.allocate(market);
        benchmark::DoNotOptimize(result.cores.data());
    }
}
BENCHMARK(BM_PF_FullSolve)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
