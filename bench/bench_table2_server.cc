/**
 * @file
 * Table II: the simulated server specification.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "sim/server.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader("Table II", "Server specification (simulated)");

    const sim::ServerConfig server;
    TablePrinter table;
    table.addColumn("Component", TablePrinter::Align::Left);
    table.addColumn("Specification", TablePrinter::Align::Left);
    table.addRow({"Processor", server.model});
    table.addRow({"Sockets",
                  std::to_string(server.sockets) + " Sockets, NUMA Node"});
    table.addRow({"Cores", std::to_string(server.coresPerSocket) +
                               " Cores per Socket, " +
                               std::to_string(server.threadsPerCore) +
                               " Threads per Core"});
    table.addRow({"Cache", server.l1ICache + " L1 ICache, " +
                               server.l1DCache + " L1 DCache, " +
                               server.l2Cache + " L2 Cache, " +
                               server.l3Cache + " L3 Cache"});
    table.addRow({"Memory", formatDouble(server.memoryGB, 0) + " GB DRAM, " +
                                formatDouble(server.memoryBandwidthGBps, 1) +
                                " GB/s bandwidth ceiling"});
    table.addRow({"Allocatable cores", std::to_string(server.cores())});
    table.print(std::cout);
    return 0;
}
