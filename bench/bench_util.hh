/**
 * @file
 * Shared helpers for the per-figure bench binaries.
 *
 * Every binary regenerates the rows/series of one table or figure from
 * the paper. Scale knobs default to a configuration that finishes in
 * seconds; set AMDAHL_BENCH_POPULATIONS / AMDAHL_BENCH_USERS to larger
 * values (the paper used 50 populations of 40-1000 users) for
 * higher-fidelity runs.
 */

#ifndef AMDAHL_BENCH_BENCH_UTIL_HH
#define AMDAHL_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/json.hh"
#include "common/table.hh"
#include "eval/experiment.hh"
#include "obs/metrics.hh"

namespace amdahl::bench {

/** Read a positive integer environment override. */
inline int
envInt(const char *name, int fallback)
{
    const char *value = std::getenv(name);
    if (value == nullptr)
        return fallback;
    const int parsed = std::atoi(value);
    return parsed > 0 ? parsed : fallback;
}

/** Shared experiment configuration for the Figure 9-13 benches. */
inline eval::ExperimentDriver::Config
benchConfig()
{
    eval::ExperimentDriver::Config cfg;
    cfg.seed = 0x48504341; // "HPCA"
    cfg.populationsPerPoint = envInt("AMDAHL_BENCH_POPULATIONS", 5);
    cfg.users = envInt("AMDAHL_BENCH_USERS", 48);
    cfg.serverMultiplier = 0.5;
    cfg.includeBestResponse = true;
    return cfg;
}

/** Print the standard bench header. */
inline void
printHeader(const std::string &experiment, const std::string &caption)
{
    std::cout << "== " << experiment << " ==\n"
              << caption << "\n\n";
}

/**
 * Abort the bench on a failed artifact write. A bench whose CSV/JSON
 * silently vanished (full disk, bad AMDAHL_BENCH_*_DIR) poisons every
 * downstream comparison; failing loudly is the only safe behavior.
 */
inline void
requireWrite(const Status &st, const std::string &path)
{
    if (!st.isOk()) {
        std::cerr << "error: writing " << path << ": " << st.toString()
                  << "\n";
        std::exit(1);
    }
}

/**
 * Print a result table and, when AMDAHL_BENCH_CSV_DIR is set, also
 * dump it as <dir>/<name>.csv for external re-plotting.
 */
inline void
emitTable(const TablePrinter &table, const std::string &name)
{
    table.print(std::cout);
    if (const char *dir = std::getenv("AMDAHL_BENCH_CSV_DIR")) {
        const std::string path = std::string(dir) + "/" + name + ".csv";
        std::ofstream out(path);
        if (out) {
            requireWrite(table.writeCsv(out), path);
            std::cerr << "wrote " << path << "\n";
        } else {
            requireWrite(Status::error(ErrorKind::IoError, 0,
                                       "could not open for writing"),
                         path);
        }
    }
}

/**
 * Dump a result table as machine-readable JSON: one `[json:<name>]`
 * marker line on stdout followed by the document, and, when
 * AMDAHL_BENCH_JSON_DIR is set, also <dir>/<name>.json for harnesses
 * that collect artifacts from a directory.
 */
inline void
emitJson(const TablePrinter &table, const std::string &name)
{
    std::cout << "[json:" << name << "]\n";
    requireWrite(table.writeJson(std::cout), "<stdout>");
    if (const char *dir = std::getenv("AMDAHL_BENCH_JSON_DIR")) {
        const std::string path =
            std::string(dir) + "/" + name + ".json";
        std::ofstream out(path);
        if (out) {
            requireWrite(table.writeJson(out), path);
            std::cerr << "wrote " << path << "\n";
        } else {
            requireWrite(Status::error(ErrorKind::IoError, 0,
                                       "could not open for writing"),
                         path);
        }
    }
}

/**
 * Dump the metrics-registry snapshot accumulated by this bench run,
 * wrapped with enough run metadata (seed, scale knobs, build flags) to
 * interpret the numbers later, as <dir>/<name>.metrics.json.
 *
 * Gated on AMDAHL_BENCH_METRICS_DIR: when the variable is unset this
 * is a no-op and the bench's stdout stays bit-identical to a build
 * without telemetry.
 */
inline void
emitMetrics(const std::string &name,
            const eval::ExperimentDriver::Config &cfg)
{
    const char *dir = std::getenv("AMDAHL_BENCH_METRICS_DIR");
    if (dir == nullptr)
        return;
    const std::string path =
        std::string(dir) + "/" + name + ".metrics.json";
    std::ofstream out(path);
    if (!out) {
        requireWrite(Status::error(ErrorKind::IoError, 0,
                                   "could not open for writing"),
                     path);
        return;
    }
    out << "{\"run\":{\"bench\":" << jsonEscape(name)
        << ",\"seed\":" << cfg.seed
        << ",\"populations\":" << cfg.populationsPerPoint
        << ",\"users\":" << cfg.users
        << ",\"server_multiplier\":" << jsonNumber(cfg.serverMultiplier)
        << ",\"build_flags\":" << jsonEscape(obs::buildFlagsString())
        << "},\"metrics\":";
    requireWrite(obs::metrics().writeJson(out), path);
    out << "}\n";
    out.flush();
    if (!out.good())
        requireWrite(Status::error(ErrorKind::IoError, 0,
                                   "stream failed after final write"),
                     path);
    std::cerr << "wrote " << path << "\n";
}

} // namespace amdahl::bench

#endif // AMDAHL_BENCH_BENCH_UTIL_HH
