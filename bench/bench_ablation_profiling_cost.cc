/**
 * @file
 * Ablation: the cost of profiling (Section III's premise).
 *
 * The paper's methodology exists because profiling full datasets at
 * every core count is too expensive to be routine. This ablation adds
 * up the *simulated* machine time each profiling strategy consumes
 * per workload and the parallel-fraction accuracy it buys:
 *
 *  - full grid: the original dataset at every ladder core count (the
 *    oracle, what the paper avoids);
 *  - sampled grid: the Section IV plan — small datasets at every
 *    ladder core count (what the paper does);
 *  - one-shot: a single (sampled dataset, one core count) Karp-Flatt
 *    probe (the cheapest conceivable estimate).
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/amdahl.hh"
#include "profiling/karp_flatt.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/task_sim.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Ablation: profiling cost",
        "Simulated machine-time budget vs estimation accuracy, per "
        "profiling strategy (aggregated over Table I)");

    const sim::TaskSimulator sim;
    const profiling::Profiler profiler(sim);

    double full_cost = 0.0, sampled_cost = 0.0, oneshot_cost = 0.0;
    OnlineStats sampled_err, oneshot_err;

    for (const auto &w : sim::workloadLibrary()) {
        // Oracle: full dataset over the whole ladder.
        const auto full = profiler.profile(w, {w.datasetGB});
        for (const auto &pt : full.points)
            full_cost += pt.seconds;
        const double truth =
            profiling::estimateFraction(full, w.datasetGB).expected;

        // The paper's sampled plan.
        const auto plan = profiling::planSamples(w);
        const auto sampled = profiler.profile(w, plan.sampleSizesGB);
        for (const auto &pt : sampled.points)
            sampled_cost += pt.seconds;
        sampled_err.add(std::abs(
            profiling::estimateFractionFromSamples(sampled) - truth));

        // One-shot: smallest sample, speedup at 8 vs 1 cores only.
        const double gb = plan.sampleSizesGB.front();
        const double t1 = sim.executionSeconds(w, gb, 1);
        const double t8 = sim.executionSeconds(w, gb, 8);
        oneshot_cost += t1 + t8;
        const double f = std::clamp(
            core::karpFlatt(t1 / t8, 8.0), 0.01, 1.0);
        oneshot_err.add(std::abs(f - truth));
    }

    TablePrinter table;
    table.addColumn("Strategy", TablePrinter::Align::Left);
    table.addColumn("machine-hours");
    table.addColumn("vs full");
    table.addColumn("mean |F err|");
    table.addColumn("max |F err|");
    table.beginRow()
        .cell("full grid (oracle)")
        .cell(full_cost / 3600.0, 2)
        .cell(1.0, 2)
        .cell(0.0, 3)
        .cell(0.0, 3);
    table.beginRow()
        .cell("sampled grid (paper)")
        .cell(sampled_cost / 3600.0, 2)
        .cell(sampled_cost / full_cost, 2)
        .cell(sampled_err.mean(), 3)
        .cell(sampled_err.max(), 3);
    table.beginRow()
        .cell("one-shot probe")
        .cell(oneshot_cost / 3600.0, 2)
        .cell(oneshot_cost / full_cost, 2)
        .cell(oneshot_err.mean(), 3)
        .cell(oneshot_err.max(), 3);
    bench::emitTable(table, "profiling_cost");

    std::cout << "\nTwo honest readings. (1) Per machine-hour the "
                 "sampled plan is comparable to one full-dataset "
                 "ladder here because our Spark inputs top out at "
                 "24 GB — but only the sampled plan also yields the "
                 "time-vs-dataset models prediction needs, and its "
                 "cost stays flat as production datasets grow 10-100x "
                 "while the full ladder's grows with them. (2) The "
                 "one-shot probe is ~20x cheaper than either but its "
                 "worst case (bandwidth- or overhead-bound workloads "
                 "probed at a single core count) is 0.36 absolute F "
                 "error — why Section IV averages over core counts "
                 "and datasets instead.\n";
    return 0;
}
