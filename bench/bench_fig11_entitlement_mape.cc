/**
 * @file
 * Figure 11: Mean Absolute Percentage Error of datacenter-wide core
 * allocations against entitlements, per policy and density.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "eval/population.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Figure 11", "MAPE of core allocations vs datacenter-wide "
                     "entitlements (%), per policy and density");

    eval::ExperimentDriver driver(bench::benchConfig());

    TablePrinter table;
    table.addColumn("Density", TablePrinter::Align::Left);
    for (const char *name : {"G", "PS", "AB", "BR", "UB"})
        table.addColumn(name);

    for (int density : eval::paperDensityLadder()) {
        const auto row = driver.runDensityPoint(density);
        table.beginRow().cell(std::to_string(density) + " App/Ser");
        for (const char *name : {"G", "PS", "AB", "BR", "UB"})
            table.cell(row.byPolicy.at(name).mape, 1);
    }
    bench::emitTable(table, "fig11");

    std::cout << "\nExpected shape (paper): G and UB err badly "
                 "(entitlement-blind); PS errs within-server; the "
                 "markets (AB, BR) track aggregate entitlements best, "
                 "improving as density frees them to trade.\n";
    return 0;
}
