/**
 * @file
 * Extension study: the market operated online (epoch re-clearing)
 * under increasing load, versus proportional sharing and greedy on
 * identical Poisson arrival streams.
 */

#include <iostream>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/greedy.hh"
#include "alloc/proportional_share.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "eval/online.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Extension: online market",
        "One hour of epoch-cleared operation (8 servers) under "
        "increasing load; all policies see identical arrivals");

    eval::CharacterizationCache cache;

    TablePrinter table;
    table.addColumn("Arrivals/srv/epoch");
    table.addColumn("Policy", TablePrinter::Align::Left);
    table.addColumn("completed");
    table.addColumn("work (1-core h)");
    table.addColumn("mean compl (min)");
    table.addColumn("weighted speedup");

    for (double rate : {0.5, 1.0, 2.0, 4.0}) {
        eval::OnlineOptions opts;
        opts.servers = 8;
        opts.users = 16;
        opts.arrivalsPerServerEpoch = rate;
        opts.workScaleMin = 0.5;
        opts.workScaleMax = 2.5;
        eval::OnlineSimulator sim(cache, opts);

        auto run = [&](const alloc::AllocationPolicy &policy,
                       eval::FractionSource source) {
            const auto m = sim.run(policy, source);
            table.beginRow()
                .cell(rate, 1)
                .cell(m.policyName)
                .cell(m.jobsCompleted)
                .cell(m.workCompleted / 3600.0, 1)
                .cell(m.meanCompletionSeconds / 60.0, 1)
                .cell(m.meanWeightedSpeedup, 2);
        };
        run(alloc::ProportionalShare(),
            eval::FractionSource::Measured);
        run(alloc::AmdahlBiddingPolicy(),
            eval::FractionSource::Estimated);
        run(alloc::GreedyPolicy(), eval::FractionSource::Measured);
    }
    bench::emitTable(table, "online");

    std::cout << "\nThe market holds the highest entitlement-weighted "
                 "speedup at every load while matching fair sharing's "
                 "completed work; greedy trades completions away for "
                 "raw speedup by starving poorly scaling jobs.\n\n";

    // Second sweep: placement disciplines under the market. Prices
    // double as congestion signals (Eq. 8), steering arrivals away
    // from contended servers.
    TablePrinter placement;
    placement.addColumn("Placement", TablePrinter::Align::Left);
    placement.addColumn("completed");
    placement.addColumn("mean compl (min)");
    placement.addColumn("p95 compl (min)");
    placement.addColumn("weighted speedup");
    auto sweep = [&](const std::vector<int> &cores,
                     alloc::PlacementRule rule) {
        eval::OnlineOptions opts;
        opts.servers = 8;
        opts.users = 16;
        opts.arrivalsPerServerEpoch = 2.0;
        opts.workScaleMin = 0.5;
        opts.workScaleMax = 2.5;
        opts.serverCores = cores;
        opts.placement = rule;
        eval::OnlineSimulator sim(cache, opts);
        const auto m = sim.run(alloc::AmdahlBiddingPolicy(),
                               eval::FractionSource::Estimated);
        placement.beginRow()
            .cell(std::string(cores.empty() ? "homogeneous "
                                            : "heterogeneous ") +
                  alloc::toString(rule))
            .cell(m.jobsCompleted)
            .cell(m.meanCompletionSeconds / 60.0, 1)
            .cell(m.p95CompletionSeconds / 60.0, 1)
            .cell(m.meanWeightedSpeedup, 2);
    };
    const std::vector<int> mixed = {4, 4, 8, 8, 12, 12, 24, 24};
    for (auto rule : {alloc::PlacementRule::RoundRobin,
                      alloc::PlacementRule::LeastLoaded,
                      alloc::PlacementRule::PriceAware}) {
        sweep({}, rule);
        sweep(mixed, rule);
    }
    std::cout << "Placement disciplines under Amdahl Bidding "
                 "(2.0 arrivals/server/epoch):\n";
    bench::emitTable(placement, "online_placement");
    std::cout
        << "\nPrices double as a congestion signal: price-aware "
           "placement keeps pace with dedicated load tracking on both "
           "cluster shapes without any instrumentation beyond the "
           "market itself.\n\n";

    // Third sweep: long-run fairness with deficit compensation.
    TablePrinter fairness;
    fairness.addColumn("Compensation", TablePrinter::Align::Left);
    fairness.addColumn("long-run MAPE %");
    fairness.addColumn("completed");
    fairness.addColumn("weighted speedup");
    for (bool comp : {false, true}) {
        eval::OnlineOptions opts;
        opts.servers = 8;
        opts.users = 16;
        opts.arrivalsPerServerEpoch = 2.0;
        opts.workScaleMin = 0.5;
        opts.workScaleMax = 2.5;
        opts.deficitCompensation = comp;
        eval::OnlineSimulator sim(cache, opts);
        const auto m = sim.run(alloc::AmdahlBiddingPolicy(),
                               eval::FractionSource::Estimated);
        fairness.beginRow()
            .cell(comp ? "on" : "off")
            .cell(m.longRunEntitlementMape, 1)
            .cell(m.jobsCompleted)
            .cell(m.meanWeightedSpeedup, 2);
    }
    std::cout << "Long-run entitlement tracking (cumulative "
                 "core-seconds vs entitled):\n";
    bench::emitTable(fairness, "online_fairness");
    std::cout << "\nBoosting under-served tenants' budgets by their "
                 "deficit ratio tightens cumulative entitlement "
                 "tracking at no throughput cost — deficit "
                 "round-robin's idea, expressed as market weights.\n";
    bench::emitMetrics("online_market", bench::benchConfig());
    return 0;
}
