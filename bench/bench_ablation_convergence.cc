/**
 * @file
 * Ablation: Amdahl Bidding convergence knobs.
 *
 * (a) Termination threshold epsilon: the paper stops when prices move
 *     less than a small threshold and reports convergence "often
 *     within ten iterations" — this sweep shows how iteration counts
 *     scale with epsilon, and that allocations are already accurate at
 *     loose thresholds.
 * (b) Damping: the plain proportional update (d = 1) against damped
 *     variants, measuring iterations to the same tolerance.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/bidding.hh"
#include "eval/experiment.hh"
#include "exec/thread_pool.hh"
#include "sim/workload_library.hh"

// Sweep points are independent solves over one shared (const) market,
// so each sweep fans out across the worker pool — results land in
// per-point slots and the tables print serially afterwards, identical
// at any AMDAHL_THREADS setting.

int
main()
{
    using namespace amdahl;
    bench::printHeader("Ablation: convergence",
                       "Iterations and allocation accuracy vs epsilon "
                       "and damping (48 users, s=0.5, d=12)");

    // A fixed mid-size market.
    Rng rng(0x5eed);
    eval::PopulationOptions popts;
    popts.users = bench::envInt("AMDAHL_BENCH_USERS", 48);
    popts.serverMultiplier = 0.5;
    popts.density = 12;
    popts.workloadCount = sim::workloadLibrary().size();
    const auto pop = eval::generatePopulation(rng, popts);
    eval::CharacterizationCache cache;
    const auto market =
        eval::buildMarket(pop, cache, eval::FractionSource::Estimated);

    // Reference: tight solve.
    core::BiddingOptions tight;
    tight.priceTolerance = 1e-10;
    tight.maxIterations = 200000;
    const auto reference = core::solveAmdahlBidding(market, tight);

    auto allocation_error = [&](const core::BiddingResult &r) {
        double worst = 0.0;
        for (std::size_t i = 0; i < r.allocation.size(); ++i) {
            for (std::size_t k = 0; k < r.allocation[i].size(); ++k) {
                worst = std::max(worst,
                                 std::abs(r.allocation[i][k] -
                                          reference.allocation[i][k]));
            }
        }
        return worst;
    };

    {
        TablePrinter table;
        table.addColumn("epsilon");
        table.addColumn("iterations");
        table.addColumn("max |x - x*| (cores)");
        const std::vector<double> epsilons{1e-2, 1e-3, 1e-4, 1e-5,
                                           1e-6};
        std::vector<core::BiddingResult> results(epsilons.size());
        exec::parallelFor(
            0, epsilons.size(), 1,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t s = lo; s < hi; ++s) {
                    core::BiddingOptions opts;
                    opts.priceTolerance = epsilons[s];
                    opts.maxIterations = 200000;
                    results[s] = core::solveAmdahlBidding(market, opts);
                }
            });
        for (std::size_t s = 0; s < epsilons.size(); ++s) {
            table.beginRow()
                .cell(formatDouble(epsilons[s], 6))
                .cell(results[s].iterations)
                .cell(allocation_error(results[s]), 4);
        }
        std::cout << "(a) termination threshold sweep\n";
        table.print(std::cout);
        std::cout << "\nLoose thresholds already land within a "
                     "fraction of a core of the exact equilibrium — "
                     "the paper's ~10-iteration regime.\n\n";
    }

    {
        TablePrinter table;
        table.addColumn("damping");
        table.addColumn("iterations");
        table.addColumn("converged");
        const std::vector<double> dampings{1.0, 0.9, 0.7, 0.5, 0.3};
        std::vector<core::BiddingResult> results(dampings.size());
        exec::parallelFor(
            0, dampings.size(), 1,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t s = lo; s < hi; ++s) {
                    core::BiddingOptions opts;
                    opts.priceTolerance = 1e-6;
                    opts.maxIterations = 200000;
                    opts.damping = dampings[s];
                    results[s] = core::solveAmdahlBidding(market, opts);
                }
            });
        for (std::size_t s = 0; s < dampings.size(); ++s) {
            table.beginRow()
                .cell(dampings[s], 1)
                .cell(results[s].iterations)
                .cell(results[s].converged ? "yes" : "no");
        }
        std::cout << "(b) damping sweep (epsilon = 1e-6)\n";
        table.print(std::cout);
        std::cout << "\nThe plain proportional update (damping 1.0) is "
                     "fastest; damping only trades speed for stability "
                     "margin.\n\n";
    }

    {
        TablePrinter table;
        table.addColumn("schedule", TablePrinter::Align::Left);
        table.addColumn("iterations");
        table.addColumn("max |x - x*| (cores)");
        const std::vector<core::UpdateSchedule> schedules{
            core::UpdateSchedule::Synchronous,
            core::UpdateSchedule::GaussSeidel};
        std::vector<core::BiddingResult> results(schedules.size());
        exec::parallelFor(
            0, schedules.size(), 1,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t s = lo; s < hi; ++s) {
                    core::BiddingOptions opts;
                    opts.priceTolerance = 1e-6;
                    opts.maxIterations = 200000;
                    opts.schedule = schedules[s];
                    results[s] = core::solveAmdahlBidding(market, opts);
                }
            });
        for (std::size_t s = 0; s < schedules.size(); ++s) {
            table.beginRow()
                .cell(schedules[s] == core::UpdateSchedule::Synchronous
                          ? "synchronous"
                          : "gauss-seidel")
                .cell(results[s].iterations)
                .cell(allocation_error(results[s]), 4);
        }
        std::cout << "(c) update schedule (epsilon = 1e-6)\n";
        table.print(std::cout);
        std::cout << "\nGauss-Seidel (a centralized coordinator's "
                     "natural order) reaches the same equilibrium; "
                     "synchronous updates model the distributed "
                     "deployment where users bid in parallel.\n\n";
    }

    {
        // (d) warm start: an epoch-based deployment re-clears a
        // slightly perturbed market; last epoch's bids are nearly
        // right. Perturb every parallel fraction by a few percent and
        // re-solve cold vs warm.
        core::FisherMarket perturbed(market.capacities());
        Rng jitter(0x3a97);
        for (std::size_t i = 0; i < market.userCount(); ++i) {
            core::MarketUser user = market.user(i);
            for (auto &job : user.jobs) {
                job.parallelFraction = std::min(
                    0.999, std::max(0.05, job.parallelFraction *
                                              jitter.uniform(0.97,
                                                             1.03)));
            }
            perturbed.addUser(std::move(user));
        }
        core::BiddingOptions cold;
        cold.priceTolerance = 1e-6;
        cold.maxIterations = 200000;
        const auto cold_run = core::solveAmdahlBidding(perturbed, cold);
        auto warm = cold;
        warm.initialBids = reference.bids; // unperturbed equilibrium
        const auto warm_run = core::solveAmdahlBidding(perturbed, warm);

        TablePrinter table;
        table.addColumn("start", TablePrinter::Align::Left);
        table.addColumn("iterations");
        table.beginRow().cell("cold (even split)").cell(
            cold_run.iterations);
        table.beginRow().cell("warm (previous equilibrium)").cell(
            warm_run.iterations);
        std::cout << "(d) warm start on a +/-3%-perturbed market "
                     "(epsilon = 1e-6)\n";
        table.print(std::cout);
        std::cout << "\nRe-clearing from the previous epoch's bids "
                     "cuts convergence work — the natural deployment "
                     "optimization for periodic markets.\n";
    }
    return 0;
}
