/**
 * @file
 * Figure 9: average system performance (SysProgress) of the five
 * allocation policies across workload densities, normalized to
 * Proportional Sharing.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "eval/population.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Figure 9", "System performance by policy and density, "
                    "normalized to Proportional Sharing (PS = 1.00)");

    eval::ExperimentDriver driver(bench::benchConfig());

    TablePrinter table;
    table.addColumn("Density", TablePrinter::Align::Left);
    for (const char *name : {"G", "PS", "AB", "BR", "UB"})
        table.addColumn(name);
    table.addColumn("AB/UB");

    for (int density : eval::paperDensityLadder()) {
        const auto row = driver.runDensityPoint(density);
        const double ps = row.byPolicy.at("PS").sysProgress;
        table.beginRow().cell(std::to_string(density) + " App/Ser");
        for (const char *name : {"G", "PS", "AB", "BR", "UB"})
            table.cell(row.byPolicy.at(name).sysProgress / ps, 3);
        table.cell(row.byPolicy.at("AB").sysProgress /
                       row.byPolicy.at("UB").sysProgress,
                   3);
    }
    bench::emitTable(table, "fig9");

    std::cout << "\nExpected shape (paper): AB > PS everywhere; AB "
                 "within ~90% of UB; G's advantage shrinks as density "
                 "grows (the paper's G dips below PS); AB ~= BR.\n";
    return 0;
}
