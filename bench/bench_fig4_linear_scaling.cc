/**
 * @file
 * Figure 4: execution time scales linearly with dataset size for the
 * representative workload (correlation). One linear model per profiled
 * core count, fitted on sampled dataset sizes and extrapolated to the
 * full 24 GB input.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/workload_library.hh"
#include "solver/linear_model.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Figure 4", "Linear models of execution time vs dataset size "
                    "(correlation), one per core count");

    const auto &w = sim::findWorkload("correlation");
    const std::vector<int> cores = {1, 4, 12, 24};
    const profiling::Profiler profiler{sim::TaskSimulator(),
                                       std::vector<int>(cores)};
    const auto plan = profiling::planSamples(w);
    const auto profile = profiler.profile(w, plan.sampleSizesGB);

    TablePrinter table;
    table.addColumn("Cores");
    for (double gb : plan.sampleSizesGB)
        table.addColumn("T(" + formatDouble(gb, 0) + "GB)");
    table.addColumn("slope(s/GB)");
    table.addColumn("intercept(s)");
    table.addColumn("R^2");
    table.addColumn("pred T(24GB)");
    table.addColumn("meas T(24GB)");

    sim::TaskSimulator sim;
    for (int x : cores) {
        std::vector<double> sizes, times;
        for (double gb : plan.sampleSizesGB) {
            sizes.push_back(gb);
            times.push_back(profile.secondsAt(gb, x));
        }
        const auto model = solver::fitLinear(sizes, times);
        table.beginRow().cell(x);
        for (double t : times)
            table.cell(t, 1);
        table.cell(model.slope, 2)
            .cell(model.intercept, 2)
            .cell(model.r2, 5)
            .cell(model.predict(w.datasetGB), 1)
            .cell(sim.executionSeconds(w, w.datasetGB, x), 1);
    }
    bench::emitTable(table, "fig4");
    std::cout << "\nR^2 ~= 1 on every row: execution time is linear in "
                 "dataset size, so sparse sampled profiles extrapolate "
                 "to the full input.\n";
    return 0;
}
