/**
 * @file
 * Section VI-F deployment arithmetic: end-to-end equilibrium latency
 * under the paper's measured constants and under this machine's
 * measured constants, for distributed vs centralized deployments and
 * AB vs BR mechanisms.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "eval/deployment.hh"

int
main()
{
    using namespace amdahl;
    using eval::Architecture;
    using eval::Mechanism;

    bench::printHeader(
        "Section VI-F model",
        "End-to-end equilibrium latency (ms): iterations x (bid update "
        "+ price update + network) + finalization");

    // (a) The paper's constants: 12.35 ms at 10 iterations.
    const eval::DeploymentModel paper_model;
    {
        TablePrinter table;
        table.addColumn("Config", TablePrinter::Align::Left);
        table.addColumn("bid upd");
        table.addColumn("price upd");
        table.addColumn("network");
        table.addColumn("finalize");
        table.addColumn("total ms");
        auto row = [&](const char *label, int iters, int users,
                       Architecture arch, Mechanism mech) {
            const auto b =
                paper_model.latency(iters, users, arch, mech);
            table.beginRow()
                .cell(label)
                .cell(b.bidUpdatesMs, 2)
                .cell(b.priceUpdatesMs, 2)
                .cell(b.networkMs, 2)
                .cell(b.finalizationMs, 2)
                .cell(b.totalMs(), 2);
        };
        row("AB distributed (paper headline)", 10, 100,
            Architecture::Distributed, Mechanism::AmdahlBidding);
        row("BR distributed", 10, 100, Architecture::Distributed,
            Mechanism::BestResponse);
        row("AB centralized, 100 users", 10, 100,
            Architecture::Centralized, Mechanism::AmdahlBidding);
        row("BR centralized, 100 users", 10, 100,
            Architecture::Centralized, Mechanism::BestResponse);
        row("BR centralized, 1000 users", 10, 1000,
            Architecture::Centralized, Mechanism::BestResponse);
        std::cout << "(a) with the paper's measured constants\n";
        table.print(std::cout);
    }

    // (b) this machine's constants (from bench_overheads): AB user
    // update 41 ns, one market round ~4.2 us for 40 users, BR update
    // 27.4 us, rounding 16.6 us.
    eval::DeploymentCosts ours;
    ours.userBidUpdateMs = 41e-6;
    ours.priceUpdateMs = 4.2e-3;
    ours.receiveBidsMs = 0.30; // network-bound, unchanged
    ours.roundingMs = 16.6e-3;
    ours.bestResponseMultiplier = 27.4e-3 / 41e-6;
    const eval::DeploymentModel our_model(ours);
    {
        TablePrinter table;
        table.addColumn("Config", TablePrinter::Align::Left);
        table.addColumn("total ms");
        auto row = [&](const char *label, int iters, int users,
                       Architecture arch, Mechanism mech) {
            table.beginRow().cell(label).cell(
                our_model.totalMs(iters, users, arch, mech), 3);
        };
        row("AB distributed", 10, 100, Architecture::Distributed,
            Mechanism::AmdahlBidding);
        row("BR distributed", 10, 100, Architecture::Distributed,
            Mechanism::BestResponse);
        row("AB centralized, 1000 users", 10, 1000,
            Architecture::Centralized, Mechanism::AmdahlBidding);
        row("BR centralized, 1000 users", 10, 1000,
            Architecture::Centralized, Mechanism::BestResponse);
        std::cout << "\n(b) with this machine's measured constants\n";
        table.print(std::cout);
    }

    std::cout << "\nThe paper's observation reproduces: BR is "
                 "tolerable when network time dominates (distributed) "
                 "but its bid updates dominate centralized "
                 "deployments, scaling with the user count.\n";
    return 0;
}
