/**
 * @file
 * Figure 12: Mean Absolute Error in core allocations when one user's
 * parallel fractions are over-estimated (interference sensitivity,
 * Section VI-E).
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "eval/population.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Figure 12", "MAE (cores) of the perturbed user's allocations "
                     "when her F is over-estimated by the given range");

    auto cfg = bench::benchConfig();
    eval::ExperimentDriver driver(cfg);

    const std::vector<std::pair<double, double>> buckets = {
        {5, 10}, {10, 15}, {15, 20}, {20, 25}, {25, 30}, {30, 35}};

    TablePrinter table;
    table.addColumn("Density", TablePrinter::Align::Left);
    for (const auto &b : buckets) {
        table.addColumn(formatDouble(b.first, 0) + "-" +
                        formatDouble(b.second, 0) + "%");
    }

    const int trials = cfg.populationsPerPoint;
    for (int density : eval::paperDensityLadder()) {
        table.beginRow().cell(std::to_string(density) + " App/Ser");
        for (const auto &bucket : buckets)
            table.cell(driver.runSensitivity(density, bucket, trials),
                       3);
    }
    bench::emitTable(table, "fig12");

    std::cout << "\nExpected shape (paper): over-estimating F by 5-15% "
                 "shifts allocations by only one or two cores at "
                 "moderate densities — contention scales all of a "
                 "user's jobs, so her budget split barely moves.\n";
    return 0;
}
