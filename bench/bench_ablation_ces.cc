/**
 * @file
 * Ablation: why Amdahl utility needed new market theory (Section V-D).
 *
 * Prior proportional-response theory covers CES utilities. This
 * ablation fits the best CES surrogate c * x^rho to each workload's
 * Amdahl speedup curve, runs the classical CES market with the
 * surrogates, and scores the resulting allocation with the *true*
 * Amdahl utilities — quantifying what the approximation costs versus
 * the paper's exact Amdahl Bidding.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/amdahl.hh"
#include "core/bidding.hh"
#include "core/ces_market.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Ablation: CES surrogate",
        "Fit c*x^rho to Amdahl speedup curves; compare CES-market "
        "allocations against exact Amdahl Bidding");

    // Part 1: fit quality per parallel fraction.
    TablePrinter fits;
    fits.addColumn("f");
    fits.addColumn("fitted rho");
    fits.addColumn("fitted c");
    fits.addColumn("RMS rel err");
    for (double f : {0.53, 0.68, 0.85, 0.93, 0.96, 0.99}) {
        double scale = 0.0, rho = 0.0;
        const double err = core::fitCesToAmdahl(f, 24, scale, rho);
        fits.beginRow().cell(f, 2).cell(rho, 3).cell(scale, 3).cell(
            err, 4);
    }
    std::cout << "(a) CES fits to Amdahl speedup curves (1-24 cores)\n";
    fits.print(std::cout);
    std::cout << "\nLow-f curves saturate hard; a power law cannot "
                 "track them, so the fit error grows as f falls.\n\n";

    // Part 2: allocation quality. Two servers, three users.
    struct Job
    {
        std::size_t server;
        double f;
    };
    const std::vector<std::vector<Job>> user_jobs = {
        {{0, 0.53}, {1, 0.93}},
        {{0, 0.96}, {1, 0.68}},
        {{0, 0.85}, {1, 0.99}},
    };
    const std::vector<double> budgets = {1.0, 1.0, 2.0};

    core::FisherMarket amdahl_market({10.0, 10.0});
    core::CesMarket ces_market({10.0, 10.0});
    for (std::size_t i = 0; i < user_jobs.size(); ++i) {
        core::MarketUser mu;
        mu.name = "u" + std::to_string(i);
        mu.budget = budgets[i];
        core::CesUser cu;
        cu.name = mu.name;
        cu.budget = budgets[i];
        double rho_sum = 0.0;
        std::vector<double> scales;
        for (const auto &job : user_jobs[i]) {
            mu.jobs.push_back({job.server, job.f, 1.0});
            double scale = 0.0, rho = 0.0;
            core::fitCesToAmdahl(job.f, 24, scale, rho);
            rho_sum += rho;
            scales.push_back(scale);
        }
        // One rho per CES user: average of her jobs' fitted exponents;
        // per-job scale enters through the weight (w^rho ~= c).
        cu.rho = rho_sum / static_cast<double>(user_jobs[i].size());
        for (std::size_t k = 0; k < user_jobs[i].size(); ++k) {
            cu.jobs.push_back(
                {user_jobs[i][k].server,
                 std::pow(scales[k], 1.0 / cu.rho)});
        }
        amdahl_market.addUser(std::move(mu));
        ces_market.addUser(std::move(cu));
    }

    const auto exact = core::solveAmdahlBidding(amdahl_market);
    const auto surrogate = core::solveCesMarket(ces_market);

    TablePrinter table;
    table.addColumn("User", TablePrinter::Align::Left);
    table.addColumn("AB x0");
    table.addColumn("AB x1");
    table.addColumn("CES x0");
    table.addColumn("CES x1");
    table.addColumn("u(AB)");
    table.addColumn("u(CES)");
    table.addColumn("loss %");
    double worst_loss = 0.0;
    for (std::size_t i = 0; i < user_jobs.size(); ++i) {
        const auto utility = amdahl_market.utilityOf(i);
        const double u_ab = utility.value(exact.allocation[i]);
        const double u_ces = utility.value(surrogate.allocation[i]);
        const double loss = 100.0 * (u_ab - u_ces) / u_ab;
        worst_loss = std::max(worst_loss, loss);
        table.beginRow()
            .cell("u" + std::to_string(i))
            .cell(exact.allocation[i][0], 2)
            .cell(exact.allocation[i][1], 2)
            .cell(surrogate.allocation[i][0], 2)
            .cell(surrogate.allocation[i][1], 2)
            .cell(u_ab, 3)
            .cell(u_ces, 3)
            .cell(loss, 2);
    }
    std::cout << "(b) allocations and true-Amdahl utilities\n";
    table.print(std::cout);
    std::cout << "\nAB iterations: " << exact.iterations
              << ", CES PRD iterations: " << surrogate.iterations
              << "; worst per-user utility loss of the surrogate: "
              << formatDouble(worst_loss, 2)
              << "%.\nThe surrogate misprices saturation, shifting "
                 "cores toward jobs whose Amdahl curves have already "
                 "flattened — the gap Amdahl Bidding closes by "
                 "construction.\n";
    return 0;
}
