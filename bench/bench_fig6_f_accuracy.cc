/**
 * @file
 * Figure 6: accuracy of the parallel fraction estimated from sampled
 * datasets against the value measured on the real (full) dataset.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "eval/characterization.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Figure 6", "Parallel fraction: measured on the real dataset vs "
                    "estimated from sampled datasets");

    // The paper's Figure 6 workload subset.
    const std::vector<std::string> names = {
        "svm",      "correlation", "linear", "decision", "blackscholes",
        "bodytrack", "canneal",    "ferret", "vips",     "x264"};

    eval::CharacterizationCache cache;
    const auto &library = sim::workloadLibrary();

    TablePrinter table;
    table.addColumn("Workload", TablePrinter::Align::Left);
    table.addColumn("F measured");
    table.addColumn("F estimated");
    table.addColumn("abs error");

    double worst = 0.0;
    std::string worst_name;
    for (const auto &name : names) {
        std::size_t index = 0;
        for (std::size_t i = 0; i < library.size(); ++i) {
            if (library[i].name == name)
                index = i;
        }
        const auto &c = cache.of(index);
        const double err =
            std::abs(c.estimatedFraction - c.measuredFraction);
        table.beginRow()
            .cell(name)
            .cell(c.measuredFraction, 3)
            .cell(c.estimatedFraction, 3)
            .cell(err, 3);
        if (err > worst) {
            worst = err;
            worst_name = name;
        }
    }
    bench::emitTable(table, "fig6");
    std::cout << "\nLargest error: " << worst_name << " ("
              << formatDouble(worst, 3)
              << ") — memory-intensive workloads' sampled datasets miss "
                 "the bandwidth ceiling and over-estimate F.\n";
    return 0;
}
