/**
 * @file
 * User-scaling study of the bid-update kernel and the delta
 * re-clearing machinery (DESIGN.md §16).
 *
 * Four experiments over dense synthetic markets from 10^4 to 10^6
 * users (the datacenter regime of the paper's title — populations far
 * past the 40-1000 users of Section VI):
 *
 *  - `scaling_users`: fixed-iteration clearing throughput and
 *    ns/bid-update of the scalar reference kernel vs the AVX2 kernel
 *    (when compiled in and supported by the host), with a bitwise
 *    identity verdict — the SIMD path must reproduce the scalar
 *    prices, bids, and allocations byte for byte.
 *  - `scaling_accel`: rounds to equilibrium of plain proportional
 *    response vs the Anderson-accelerated solver on contended
 *    markets. Round counts are deterministic (no timing).
 *  - `scaling_delta`: incremental re-clearing: rounds and wall time
 *    of a cold even-split clear vs a warm-started clear with a
 *    patched kernel cache at 0%, 1%, and 10% churn, plus the
 *    bitwise-invisibility verdict of the cache path (cache on vs
 *    cache off, same seed bids, must match exactly).
 *  - `scaling_roofline`: analytic bytes and flops per bid-update vs
 *    the achieved GB/s and GFLOP/s of the best kernel — a loose
 *    sanity bound, not a gated measurement.
 *
 * A grain sweep (`scaling_grain`) rides along: the per-chunk user
 * count is a performance knob (exec::setBidUpdateGrain), never a
 * semantic one, so every grain must produce byte-identical results.
 *
 * Scale knobs: AMDAHL_BENCH_SCALING_ITERS, AMDAHL_BENCH_REPS, and
 * AMDAHL_BENCH_SCALING_BIG=1 to add the 10^6-user point (seconds per
 * solve). Exit status is non-zero when any identity verdict fails.
 */

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "core/bidding.hh"
#include "core/bidding_kernel.hh"
#include "core/bidding_simd.hh"
#include "core/market.hh"
#include "exec/parallelism.hh"

namespace {

using namespace amdahl;

/** Dense synthetic market: every user bids on `jobsPerUser` servers,
 *  server i%m is forced so each server hosts at least one job. The
 *  first `churned` users get mutated budgets and parallel fractions
 *  (same structure — only values move), modeling tenant churn between
 *  two epochs of an online run. */
core::FisherMarket
syntheticMarket(int users, int servers, int jobsPerUser,
                std::uint64_t seed, int churned = 0)
{
    Rng rng(seed);
    std::vector<double> capacities(
        static_cast<std::size_t>(servers), 24.0);
    core::FisherMarket market(std::move(capacities));
    for (int i = 0; i < users; ++i) {
        core::MarketUser user;
        user.name = "user" + std::to_string(i);
        user.budget = static_cast<double>(rng.uniformInt(1, 5));
        const bool mutate = i < churned;
        if (mutate) {
            user.budget =
                1.0 + static_cast<double>(
                          (static_cast<int>(user.budget)) % 5);
        }
        for (int k = 0; k < jobsPerUser; ++k) {
            core::JobSpec job;
            job.server =
                k == 0 ? static_cast<std::size_t>(i % servers)
                       : static_cast<std::size_t>(
                             rng.uniformInt(0, servers - 1));
            job.parallelFraction = rng.uniform(0.5, 0.999);
            if (mutate)
                job.parallelFraction = 1.499 - job.parallelFraction;
            job.weight = 1.0;
            user.jobs.push_back(job);
        }
        market.addUser(std::move(user));
    }
    return market;
}

bool
sameMatrix(const core::JobMatrix &a, const core::JobMatrix &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) // exact: the contract is byte-identity
            return false;
    }
    return true;
}

bool
sameResult(const core::BiddingResult &a, const core::BiddingResult &b)
{
    return a.prices == b.prices && sameMatrix(a.bids, b.bids) &&
           sameMatrix(a.allocation, b.allocation);
}

/** Best-of-reps wall time of one solve configuration. */
template <typename Solve>
double
bestSeconds(int reps, core::BiddingResult &out, Solve &&solve)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        out = solve();
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (r == 0 || seconds < best)
            best = seconds;
    }
    return best;
}

int
serversFor(int users)
{
    return std::clamp(users / 100, 64, 1000);
}

} // namespace

int
main()
{
    bench::printHeader(
        "Scaling: users (bid kernel, acceleration, delta re-clearing)",
        "Clearing cost from 10^4 to 10^6 users: SIMD vs scalar "
        "kernel (byte-identical), Anderson-accelerated round counts, "
        "and incremental re-clearing under churn");

    const int iterations =
        bench::envInt("AMDAHL_BENCH_SCALING_ITERS", 20);
    const int reps = bench::envInt("AMDAHL_BENCH_REPS", 3);
    const int jobs_per_user = 4;
    constexpr std::uint64_t kSeed = 0xa3da41dceaULL;

    std::vector<int> sizes{10'000, 100'000};
    if (bench::envInt("AMDAHL_BENCH_SCALING_BIG", 0) > 0)
        sizes.push_back(1'000'000);

    const bool simd_available =
        core::kSimdKernelCompiled && core::simdKernelSupported();
    const int previous_threads = exec::setThreadCount(1);
    bool all_identical = true;

    // ---- 1. Kernel throughput: scalar vs SIMD, byte-identical. ----
    TablePrinter kernels;
    kernels.addColumn("users");
    kernels.addColumn("kernel", TablePrinter::Align::Left);
    kernels.addColumn("update (ms)");
    kernels.addColumn("ns/bid-update");
    kernels.addColumn("Mupdates/sec");
    kernels.addColumn("speedup");
    kernels.addColumn("solve (ms)");
    kernels.addColumn("identical", TablePrinter::Align::Left);

    std::vector<double> best_update_ns;
    for (const int users : sizes) {
        const auto market = syntheticMarket(
            users, serversFor(users), jobs_per_user, kSeed + users);
        core::BiddingOptions opts;
        // Effectively unreachable tolerance: every run performs
        // exactly `iterations` rounds, so both kernels do identical
        // work and the results can be compared bit for bit.
        opts.priceTolerance = 1e-300;
        opts.maxIterations = iterations;

        const double updates =
            static_cast<double>(users) *
            static_cast<double>(jobs_per_user) *
            static_cast<double>(iterations);

        // The bid-update phase in isolation: the solver's exact call
        // pattern (chunks of kUserGrain users against fixed posted
        // prices), minus the price gather and convergence test that
        // are byte-for-byte the same code in both rows. Bids restart
        // from the even split before every rep so each rep performs
        // identical work.
        auto kernel = core::detail::buildKernel(market);
        core::JobMatrix seed_bids;
        core::detail::initializeBids(market, opts, seed_bids);
        core::detail::flattenBids(seed_bids, kernel);
        std::vector<double> posted(kernel.serverCount);
        core::detail::gatherPrices(kernel, posted);
        const std::size_t n = kernel.userCount;
        const std::size_t grain = core::detail::kUserGrain;
        auto update_seconds = [&](int run_reps) {
            double best = 0.0;
            for (int r = 0; r < run_reps; ++r) {
                core::detail::flattenBids(seed_bids, kernel);
                const auto start = std::chrono::steady_clock::now();
                for (int it = 0; it < iterations; ++it) {
                    for (std::size_t u = 0; u < n; u += grain) {
                        core::detail::updateUsersRange(
                            kernel, u, std::min(n, u + grain), posted,
                            opts.damping);
                    }
                }
                const double seconds =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                if (r == 0 || seconds < best)
                    best = seconds;
            }
            return best;
        };

        core::BiddingResult reference;
        core::setBidKernelMode(core::BidKernelMode::Scalar);
        const double scalar_update = update_seconds(reps);
        const double scalar_solve =
            bestSeconds(reps, reference, [&] {
                return core::solveAmdahlBidding(market, opts);
            });
        kernels.beginRow()
            .cell(users)
            .cell("scalar")
            .cell(scalar_update * 1e3, 2)
            .cell(scalar_update * 1e9 / updates, 2)
            .cell(updates / scalar_update / 1e6, 1)
            .cell(1.0, 2)
            .cell(scalar_solve * 1e3, 2)
            .cell("ref");
        double best_seconds = scalar_update;

        if (simd_available) {
            core::BiddingResult simd_result;
            core::setBidKernelMode(core::BidKernelMode::Simd);
            const double simd_update = update_seconds(reps);
            const double simd_solve =
                bestSeconds(reps, simd_result, [&] {
                    return core::solveAmdahlBidding(market, opts);
                });
            const bool identical = sameResult(simd_result, reference);
            all_identical = all_identical && identical;
            kernels.beginRow()
                .cell(users)
                .cell("simd")
                .cell(simd_update * 1e3, 2)
                .cell(simd_update * 1e9 / updates, 2)
                .cell(updates / simd_update / 1e6, 1)
                .cell(scalar_update / simd_update, 2)
                .cell(simd_solve * 1e3, 2)
                .cell(identical ? "yes" : "NO");
            best_seconds = std::min(best_seconds, simd_update);
        }
        core::setBidKernelMode(core::BidKernelMode::Auto);
        best_update_ns.push_back(best_seconds * 1e9 / updates);
    }
    bench::emitTable(kernels, "scaling_users");
    std::cout << "\nns/bid-update counts one proportional-response "
                 "update of one (user, job) bid through the "
                 "bid-update kernel alone (the solver's chunked call "
                 "pattern against fixed posted prices); solve (ms) "
                 "is a full fixed-iteration solve including the "
                 "price gather and convergence test, which are the "
                 "same code in both rows. The identity verdict "
                 "compares full-solve prices, bids, and allocations "
                 "bit for bit. Best of " << reps << " reps, 1 thread. "
              << (simd_available
                      ? "SIMD rows use the AVX2 kernel."
                      : "SIMD kernel not compiled in or not "
                        "supported by this host; scalar rows only.")
              << "\n\n";
    bench::emitJson(kernels, "scaling_users");

    // ---- 2. Anderson acceleration: deterministic round counts. ----
    TablePrinter accel;
    accel.addColumn("users");
    accel.addColumn("plain rounds");
    accel.addColumn("accel rounds");
    accel.addColumn("accepted");
    accel.addColumn("rejected");
    accel.addColumn("reduction");
    accel.addColumn("agree", TablePrinter::Align::Left);

    bool accel_always_fewer = true;
    for (const int users : {1024, 4096, 16384}) {
        const auto market = syntheticMarket(
            users, serversFor(users), jobs_per_user, kSeed + users);
        core::BiddingOptions plain;
        plain.priceTolerance = 1e-7;
        plain.maxIterations = 5000;
        core::BiddingOptions accelerated = plain;
        accelerated.accel.enabled = true;

        const auto base = core::solveAmdahlBidding(market, plain);
        const auto fast =
            core::solveAmdahlBidding(market, accelerated);

        // Both must land on the same equilibrium to solver
        // tolerance; the trajectories differ, so this is a relative
        // price comparison, not a bitwise one.
        bool agree = base.converged && fast.converged &&
                     base.prices.size() == fast.prices.size();
        for (std::size_t j = 0; agree && j < base.prices.size();
             ++j) {
            const double rel =
                std::abs(base.prices[j] - fast.prices[j]) /
                std::max(1e-300, std::abs(base.prices[j]));
            agree = rel <= 1e-4;
        }
        all_identical = all_identical && agree;
        accel_always_fewer =
            accel_always_fewer && fast.iterations < base.iterations;

        accel.beginRow()
            .cell(users)
            .cell(base.iterations)
            .cell(fast.iterations)
            .cell(fast.accelAccepted)
            .cell(fast.accelRejected)
            .cell(formatDouble(
                      100.0 *
                          (1.0 -
                           static_cast<double>(fast.iterations) /
                               static_cast<double>(base.iterations)),
                      1) +
                  "%")
            .cell(agree ? "yes" : "NO");
    }
    bench::emitTable(accel, "scaling_accel");
    std::cout << "\nRounds to a 1e-7 relative price tolerance; "
                 "counts are deterministic (no timing). "
              << (accel_always_fewer
                      ? "Acceleration reduced the round count on "
                        "every scenario."
                      : "WARNING: acceleration did not reduce rounds "
                        "on some scenario.")
              << "\n\n";
    bench::emitJson(accel, "scaling_accel");

    // ---- 3. Delta re-clearing under churn. ----
    TablePrinter delta;
    delta.addColumn("churn");
    delta.addColumn("cold rounds");
    delta.addColumn("warm rounds");
    delta.addColumn("mean-field rounds");
    delta.addColumn("reduction");
    delta.addColumn("patched users");
    delta.addColumn("cold (ms)");
    delta.addColumn("delta (ms)");
    delta.addColumn("cache identical", TablePrinter::Align::Left);

    {
        const int users = 10'000;
        const int servers = serversFor(users);
        const auto base = syntheticMarket(users, servers,
                                          jobs_per_user, kSeed);
        core::BiddingOptions opts;
        opts.priceTolerance = 1e-7;
        opts.maxIterations = 5000;

        // Warm the cache and produce the "previous equilibrium".
        core::KernelCache cache;
        core::BiddingOptions warm_opts = opts;
        warm_opts.kernelCache = &cache;
        const auto equilibrium =
            core::solveAmdahlBidding(base, warm_opts);

        for (const int churn_pct : {0, 1, 10}) {
            const int churned = users * churn_pct / 100;
            const auto mutated = syntheticMarket(
                users, servers, jobs_per_user, kSeed, churned);

            // Cold clear: even-split start, fresh kernel.
            core::BiddingResult cold;
            const double cold_seconds =
                bestSeconds(reps, cold, [&] {
                    return core::solveAmdahlBidding(mutated, opts);
                });

            // The sound path: same even-split start *through the
            // cache* (structure reused, churned rows patched) must be
            // byte-identical to the cold clear.
            const std::uint64_t patched_before = cache.patchedUsers;
            core::BiddingOptions cached_opts = opts;
            cached_opts.kernelCache = &cache;
            const auto via_cache =
                core::solveAmdahlBidding(mutated, cached_opts);
            const bool identical = sameResult(via_cache, cold);
            all_identical = all_identical && identical;

            // Warm start from the previous equilibrium, cache kept.
            core::BiddingOptions delta_opts = cached_opts;
            delta_opts.initialBids = equilibrium.bids;
            core::BiddingResult warm;
            const double delta_seconds =
                bestSeconds(reps, warm, [&] {
                    return core::solveAmdahlBidding(mutated,
                                                    delta_opts);
                });

            // The cold-start fallback eval/online uses above the
            // churn threshold: the analytic mean-field seed.
            core::BiddingOptions mf_opts = cached_opts;
            mf_opts.initialBids = core::meanFieldSeedBids(mutated);
            const auto mf =
                core::solveAmdahlBidding(mutated, mf_opts);

            delta.beginRow()
                .cell(std::to_string(churn_pct) + "%")
                .cell(cold.iterations)
                .cell(warm.iterations)
                .cell(mf.iterations)
                .cell(formatDouble(
                          100.0 *
                              (1.0 -
                               static_cast<double>(
                                   warm.iterations) /
                                   static_cast<double>(
                                       cold.iterations)),
                          1) +
                      "%")
                .cell(static_cast<long long>(cache.patchedUsers -
                                             patched_before))
                .cell(cold_seconds * 1e3, 2)
                .cell(delta_seconds * 1e3, 2)
                .cell(identical ? "yes" : "NO");
        }
    }
    bench::emitTable(delta, "scaling_delta");
    std::cout << "\n'cache identical' compares the even-split solve "
                 "through the patched kernel cache against a fresh "
                 "build, bit for bit (the cache is bitwise "
                 "invisible). Warm rounds start from the previous "
                 "equilibrium's bids — fewer rounds, different (but "
                 "equally valid) low-order bits.\n\n";
    bench::emitJson(delta, "scaling_delta");

    // ---- 4. Roofline-style accounting for the best kernel. ----
    // Analytic per-update traffic of one bid update, counting the
    // propensity row (index + gathered price + bid + fraction +
    // sqrtFw reads, scratch write), the serial fold, the normalize
    // pass, and the price gather: ~96 bytes and ~13 flops (div and
    // sqrt counted once each). These are estimates for orientation —
    // the gated signal is ns/bid-update above.
    TablePrinter roofline;
    roofline.addColumn("users");
    roofline.addColumn("bytes/update");
    roofline.addColumn("flops/update");
    roofline.addColumn("achieved GB/s");
    roofline.addColumn("achieved GFLOP/s");
    roofline.addColumn("ns/update");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        const double ns = best_update_ns[i];
        roofline.beginRow()
            .cell(sizes[i])
            .cell(96)
            .cell(13)
            .cell(96.0 / ns, 2)
            .cell(13.0 / ns, 2)
            .cell(ns, 2);
    }
    bench::emitTable(roofline, "scaling_roofline");
    std::cout << "\n\n";
    bench::emitJson(roofline, "scaling_roofline");

    // ---- 5. Grain sweep: a performance knob, never a semantic one. -
    TablePrinter grains;
    grains.addColumn("grain");
    grains.addColumn("time (ms)");
    grains.addColumn("identical", TablePrinter::Align::Left);
    {
        const int users = sizes.size() > 1 ? sizes[1] : sizes[0];
        const auto market = syntheticMarket(
            users, serversFor(users), jobs_per_user, kSeed + users);
        core::BiddingOptions opts;
        opts.priceTolerance = 1e-300;
        opts.maxIterations = iterations;

        core::BiddingResult reference;
        for (const std::size_t grain : {std::size_t{32},
                                        std::size_t{8},
                                        std::size_t{128},
                                        std::size_t{512}}) {
            exec::setBidUpdateGrain(grain);
            core::BiddingResult result;
            const double seconds = bestSeconds(reps, result, [&] {
                return core::solveAmdahlBidding(market, opts);
            });
            bool identical = true;
            if (grain == 32)
                reference = result;
            else
                identical = sameResult(result, reference);
            all_identical = all_identical && identical;
            grains.beginRow()
                .cell(static_cast<long long>(grain))
                .cell(seconds * 1e3, 2)
                .cell(grain == 32 ? "ref"
                                  : (identical ? "yes" : "NO"));
        }
        exec::setBidUpdateGrain(0);
    }
    bench::emitTable(grains, "scaling_grain");
    std::cout << "\nEvery users-per-chunk grain must produce "
                 "byte-identical results (AMDAHL_BID_GRAIN / "
                 "exec::setBidUpdateGrain is a performance knob "
                 "only).\n\n";
    bench::emitJson(grains, "scaling_grain");

    exec::setThreadCount(previous_threads);

    eval::ExperimentDriver::Config cfg;
    cfg.seed = static_cast<std::uint64_t>(kSeed);
    cfg.populationsPerPoint = reps;
    cfg.users = sizes.back();
    bench::emitMetrics("scaling_users", cfg);

    if (!all_identical) {
        std::cout << "IDENTITY VIOLATION: see the verdict columns "
                     "above.\n";
        return 1;
    }
    return 0;
}
