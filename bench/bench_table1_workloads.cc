/**
 * @file
 * Table I: workloads and datasets, extended with the measured
 * characterization our simulator produces for each benchmark.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "eval/characterization.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Table I", "Workloads and datasets (12 Spark + 10 PARSEC), with "
                   "measured/estimated parallel fractions");

    eval::CharacterizationCache cache;

    TablePrinter table;
    table.addColumn("ID");
    table.addColumn("Name", TablePrinter::Align::Left);
    table.addColumn("Application", TablePrinter::Align::Left);
    table.addColumn("Suite", TablePrinter::Align::Left);
    table.addColumn("Dataset", TablePrinter::Align::Left);
    table.addColumn("Size(GB)");
    table.addColumn("T1(s)");
    table.addColumn("F(meas)");
    table.addColumn("F(est)");

    const auto &library = sim::workloadLibrary();
    for (std::size_t i = 0; i < library.size(); ++i) {
        const auto &w = library[i];
        const auto &c = cache.of(i);
        table.beginRow()
            .cell(w.id)
            .cell(w.name)
            .cell(w.application)
            .cell(toString(w.suite))
            .cell(w.dataset)
            .cell(w.datasetGB, 3)
            .cell(c.t1Seconds, 1)
            .cell(c.measuredFraction, 3)
            .cell(c.estimatedFraction, 3);
    }
    bench::emitTable(table, "table1");
    return 0;
}
