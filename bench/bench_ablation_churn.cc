/**
 * @file
 * Ablation: server churn and degraded-mode operation.
 *
 * Sweeps the per-server crash rate and the outage length for the
 * online market running with the fallback ladder enabled, against the
 * zero-churn baseline on the identical arrival stream. Reports
 * throughput and latency degradation plus the resilience accounting:
 * crashes, re-placements, rolled-back work, fallback epochs, and both
 * fairness views (entitlement against full vs live capacity).
 */

#include <iostream>

#include "alloc/fallback_policy.hh"
#include "bench_util.hh"
#include "common/table.hh"
#include "eval/online.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader(
        "Ablation: server churn",
        "One hour of epoch-cleared operation (8 servers) under a "
        "deterministic crash schedule; fallback ladder enabled");

    eval::CharacterizationCache cache;

    TablePrinter table;
    table.addColumn("Crash rate");
    table.addColumn("Down epochs");
    table.addColumn("crashes");
    table.addColumn("replaced");
    table.addColumn("completed");
    table.addColumn("mean compl (min)");
    table.addColumn("p95 compl (min)");
    table.addColumn("work lost (1-core min)");
    table.addColumn("fallback d/p");
    table.addColumn("MAPE %");
    table.addColumn("avail MAPE %");

    // A tight primary iteration cap plus heavy message loss makes the
    // degraded modes actually fire; checkpoints every 4 epochs leave
    // rollback work for crashes to take.
    core::BiddingOptions primary;
    primary.maxIterations = 600;
    alloc::FallbackOptions ladder;
    ladder.retryMaxIterations = 4000;
    const alloc::FallbackPolicy policy(primary, ladder);
    for (double rate : {0.0, 0.02, 0.05, 0.10}) {
        for (int down : {1, 4}) {
            if (rate == 0.0 && down != 1)
                continue; // the fault-free baseline needs one row
            eval::OnlineOptions opts;
            opts.servers = 8;
            opts.users = 16;
            opts.arrivalsPerServerEpoch = 2.0;
            opts.workScaleMin = 0.5;
            opts.workScaleMax = 2.5;
            opts.faults.enabled = rate > 0.0;
            opts.faults.crashRatePerServerEpoch = rate;
            opts.faults.downEpochs = down;
            opts.faults.checkpointEpochs = 4;
            opts.faults.bidLossRate = rate > 0.0 ? 0.25 : 0.0;
            eval::OnlineSimulator sim(cache, opts);
            const auto m =
                sim.run(policy, eval::FractionSource::Estimated);
            table.beginRow()
                .cell(formatDouble(100.0 * rate, 0) + "%")
                .cell(down)
                .cell(m.crashEvents)
                .cell(m.replacements)
                .cell(m.jobsCompleted)
                .cell(m.meanCompletionSeconds / 60.0, 1)
                .cell(m.p95CompletionSeconds / 60.0, 1)
                .cell(m.workLostSeconds / 60.0, 1)
                .cell(std::to_string(m.fallbackEpochsDamped) + "/" +
                      std::to_string(m.fallbackEpochsProportional))
                .cell(m.longRunEntitlementMape, 1)
                .cell(m.availabilityWeightedEntitlementMape, 1);
        }
    }
    bench::emitTable(table, "churn");
    bench::emitJson(table, "churn");

    std::cout
        << "\nChurn costs capacity, not correctness: every epoch "
           "still clears over the live servers, crashed servers' jobs "
           "roll back to their last checkpoint and re-enter through "
           "the regular placement path, and the damped/proportional "
           "fallback ladder absorbs the epochs where lossy bidding "
           "fails to settle. Entitlement tracking against *live* "
           "capacity stays close to the fault-free baseline even when "
           "tracking against nameplate capacity drifts.\n";
    return 0;
}
