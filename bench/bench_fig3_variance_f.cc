/**
 * @file
 * Figure 3: variance of the Karp-Flatt estimate across core counts.
 * Low variance indicates a good fit with Amdahl's Law.
 */

#include <iostream>

#include "bench_util.hh"
#include "common/table.hh"
#include "profiling/karp_flatt.hh"
#include "profiling/profiler.hh"
#include "sim/workload_library.hh"

int
main()
{
    using namespace amdahl;
    bench::printHeader("Figure 3",
                       "Variance of the parallel-fraction estimate, "
                       "Var(F), per application");

    const profiling::Profiler profiler((sim::TaskSimulator()));

    TablePrinter table;
    table.addColumn("ID");
    table.addColumn("Workload", TablePrinter::Align::Left);
    table.addColumn("Var(F)");
    table.addColumn("Fit", TablePrinter::Align::Left);

    for (const auto &w : sim::workloadLibrary()) {
        const auto profile = profiler.profile(w, {w.datasetGB});
        const auto est =
            profiling::estimateFraction(profile, w.datasetGB);
        table.beginRow()
            .cell(w.id)
            .cell(w.name)
            .cell(formatDouble(est.variance, 6))
            .cell(est.variance < 1e-3 ? "amdahl-friendly"
                                      : "overhead-dominated");
    }
    bench::emitTable(table, "fig3");
    std::cout << "\nHigh-variance workloads (graph analytics, dedup, "
                 "kmeans) are those whose overheads grow with core "
                 "count, so the Karp-Flatt estimate drifts.\n";
    return 0;
}
