/**
 * @file
 * The bid-update kernel contract: scalar/SIMD bit-identity, grain and
 * kernel-mode invariance, Anderson acceleration, the kernel cache,
 * and the mean-field warm start.
 *
 * The load-bearing claims (DESIGN.md §16), each pinned here with
 * exact `==` where the contract is bitwise:
 *
 *  - The default build's solve is byte-identical at every combination
 *    of thread count, update grain, and kernel mode available to it.
 *  - The AVX2 kernel (when compiled in and supported) reproduces the
 *    scalar kernel bit for bit, both through a full solve and through
 *    a direct kernel-level update, damped and undamped, on ragged
 *    rows and degenerate inputs.
 *  - The kernel cache is a pure structural cache: solving through a
 *    warmed (even cross-market patched) cache returns the same bytes
 *    as solving fresh.
 *  - Anderson acceleration converges in fewer rounds to the same
 *    equilibrium (within tolerance — acceleration legitimately
 *    changes low-order bits) and is self-reproducing.
 */

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/bidding.hh"
#include "core/bidding_kernel.hh"
#include "core/bidding_simd.hh"
#include "core/market.hh"
#include "exec/parallelism.hh"

namespace amdahl::core {
namespace {

/** Scoped thread-count override; restores the previous setting. */
class ThreadGuard
{
  public:
    explicit ThreadGuard(int n) : previous_(exec::setThreadCount(n)) {}
    ~ThreadGuard() { exec::setThreadCount(previous_); }
    ThreadGuard(const ThreadGuard &) = delete;
    ThreadGuard &operator=(const ThreadGuard &) = delete;

  private:
    int previous_;
};

/** Scoped bid-update grain override; restores the default. */
class GrainGuard
{
  public:
    explicit GrainGuard(std::size_t n)
        : previous_(exec::setBidUpdateGrain(n))
    {
    }
    ~GrainGuard() { exec::setBidUpdateGrain(previous_); }
    GrainGuard(const GrainGuard &) = delete;
    GrainGuard &operator=(const GrainGuard &) = delete;

  private:
    std::size_t previous_;
};

/** Scoped kernel-mode override; restores the previous setting. */
class KernelGuard
{
  public:
    explicit KernelGuard(BidKernelMode mode)
        : previous_(setBidKernelMode(mode))
    {
    }
    ~KernelGuard() { setBidKernelMode(previous_); }
    KernelGuard(const KernelGuard &) = delete;
    KernelGuard &operator=(const KernelGuard &) = delete;

  private:
    BidKernelMode previous_;
};

/**
 * A market whose user fan-out spans several chunks, with ragged rows
 * (1-4 jobs) and mixed parallel fractions. `mutateFirst` perturbs the
 * values (budgets, weights, fractions) of the first N users while
 * keeping the structure — the bench's churn model, used here to
 * exercise the kernel cache's patch path.
 */
FisherMarket
testMarket(int users = 96, int servers = 12,
           std::uint64_t seed = 0x51b7d, int mutateFirst = 0)
{
    Rng rng(seed);
    std::vector<double> capacities(static_cast<std::size_t>(servers),
                                   16.0);
    FisherMarket market(std::move(capacities));
    for (int i = 0; i < users; ++i) {
        MarketUser user;
        user.name = "u" + std::to_string(i);
        user.budget = rng.uniform(0.5, 2.0);
        if (i < mutateFirst)
            user.budget *= 1.5;
        const int jobs = 1 + static_cast<int>(rng.uniformInt(0, 3));
        for (int k = 0; k < jobs; ++k) {
            JobSpec job;
            job.server = static_cast<std::size_t>(
                rng.uniformInt(0, servers - 1));
            job.parallelFraction = rng.uniform(0.05, 0.999);
            job.weight = rng.uniform(0.5, 2.0);
            if (i < mutateFirst)
                job.weight *= 0.8;
            user.jobs.push_back(job);
        }
        market.addUser(std::move(user));
    }
    return market;
}

/** Exact (bitwise) equality of two outcomes. */
void
expectIdentical(const BiddingResult &a, const BiddingResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.iterations, b.iterations) << what;
    EXPECT_EQ(a.converged, b.converged) << what;
    ASSERT_EQ(a.prices.size(), b.prices.size()) << what;
    for (std::size_t j = 0; j < a.prices.size(); ++j)
        ASSERT_EQ(a.prices[j], b.prices[j]) << what << ": price " << j;
    ASSERT_EQ(a.bids.size(), b.bids.size()) << what;
    for (std::size_t i = 0; i < a.bids.size(); ++i) {
        ASSERT_EQ(a.bids[i].size(), b.bids[i].size()) << what;
        for (std::size_t k = 0; k < a.bids[i].size(); ++k) {
            ASSERT_EQ(a.bids[i][k], b.bids[i][k])
                << what << ": bid (" << i << "," << k << ")";
            ASSERT_EQ(a.allocation[i][k], b.allocation[i][k])
                << what << ": allocation (" << i << "," << k << ")";
        }
    }
}

/** Max relative price disagreement between two outcomes. */
double
priceDisagreement(const BiddingResult &a, const BiddingResult &b)
{
    double worst = 0.0;
    for (std::size_t j = 0; j < a.prices.size(); ++j) {
        const double scale = std::max(a.prices[j], 1e-12);
        worst = std::max(worst,
                         std::abs(a.prices[j] - b.prices[j]) / scale);
    }
    return worst;
}

bool
simdAvailable()
{
    return kSimdKernelCompiled && simdKernelSupported();
}

// ---------------------------------------------------------------------
// Kernel-mode plumbing.

TEST(BidKernelMode, ParsesTheCliVocabulary)
{
    EXPECT_EQ(parseBidKernelMode("auto"), BidKernelMode::Auto);
    EXPECT_EQ(parseBidKernelMode("scalar"), BidKernelMode::Scalar);
    EXPECT_THROW(parseBidKernelMode("sse9"), FatalError);
    if (simdAvailable())
        EXPECT_EQ(parseBidKernelMode("simd"), BidKernelMode::Simd);
}

TEST(BidKernelMode, ResolvedModeIsNeverAuto)
{
    EXPECT_NE(bidKernelMode(), BidKernelMode::Auto);
}

TEST(BidKernelMode, SelectingUnavailableSimdIsFatal)
{
    if (simdAvailable())
        GTEST_SKIP() << "SIMD kernel available on this build/host";
    EXPECT_THROW(setBidKernelMode(BidKernelMode::Simd), FatalError);
}

// ---------------------------------------------------------------------
// Byte-identity across performance knobs.

TEST(BidKernelIdentity, SolveIsGrainAndThreadIndependent)
{
    const auto market = testMarket();
    BiddingOptions opts;
    const auto reference = solveAmdahlBidding(market, opts);
    EXPECT_TRUE(reference.converged);

    for (const int threads : {1, 4}) {
        for (const std::size_t grain : {8u, 32u, 128u, 512u}) {
            ThreadGuard t(threads);
            GrainGuard g(grain);
            expectIdentical(
                solveAmdahlBidding(market, opts), reference,
                "threads=" + std::to_string(threads) +
                    " grain=" + std::to_string(grain));
        }
    }
}

TEST(BidKernelIdentity, SimdSolveMatchesScalarBitForBit)
{
    if (!simdAvailable())
        GTEST_SKIP() << "SIMD kernel not compiled in or no AVX2";
    const auto market = testMarket(192, 16);
    BiddingOptions opts;

    BiddingResult scalar;
    {
        KernelGuard mode(BidKernelMode::Scalar);
        scalar = solveAmdahlBidding(market, opts);
    }
    EXPECT_TRUE(scalar.converged);
    {
        KernelGuard mode(BidKernelMode::Simd);
        expectIdentical(solveAmdahlBidding(market, opts), scalar,
                        "simd full solve");
        for (const int threads : {1, 4}) {
            for (const std::size_t grain : {8u, 32u, 512u}) {
                ThreadGuard t(threads);
                GrainGuard g(grain);
                expectIdentical(
                    solveAmdahlBidding(market, opts), scalar,
                    "simd threads=" + std::to_string(threads) +
                        " grain=" + std::to_string(grain));
            }
        }
    }
}

TEST(BidKernelIdentity, SimdKernelUpdateMatchesScalarDirectly)
{
    if (!simdAvailable())
        GTEST_SKIP() << "SIMD kernel not compiled in or no AVX2";
    // Kernel-level comparison, no solver in the loop: same built
    // kernel, same posted prices, scalar vs SIMD update of every
    // chunk shape the fan-out can produce — including rows longer
    // than one vector, scalar tails, and a damped blend.
    const auto market = testMarket(67, 9, 0xbeef);
    for (const double damping : {1.0, 0.7}) {
        auto a = detail::buildKernel(market);
        BiddingOptions opts;
        JobMatrix seed;
        detail::initializeBids(market, opts, seed);
        detail::flattenBids(seed, a);
        std::vector<double> posted(a.serverCount);
        detail::gatherPrices(a, posted);
        auto b = a;

        for (int round = 0; round < 3; ++round) {
            for (std::size_t u = 0; u < a.userCount; u += 5) {
                const std::size_t hi =
                    std::min(a.userCount, u + 5);
                for (std::size_t i = u; i < hi; ++i)
                    detail::updateOneUser(a, i, posted, damping);
                detail::updateUsersRangeSimd(b, u, hi, posted,
                                             damping);
            }
            ASSERT_EQ(a.bids, b.bids)
                << "damping=" << damping << " round=" << round;
            detail::gatherPrices(a, posted);
        }
    }
}

// ---------------------------------------------------------------------
// Kernel cache: a pure structural cache, bitwise invisible.

TEST(KernelCache, RepeatSolvesThroughTheCacheAreIdentical)
{
    const auto market = testMarket();
    BiddingOptions plain;
    const auto fresh = solveAmdahlBidding(market, plain);

    KernelCache cache;
    BiddingOptions cached = plain;
    cached.kernelCache = &cache;
    expectIdentical(solveAmdahlBidding(market, cached), fresh,
                    "first solve through cache");
    EXPECT_EQ(cache.rebuilds, 1u);
    expectIdentical(solveAmdahlBidding(market, cached), fresh,
                    "second solve through cache");
    EXPECT_EQ(cache.rebuilds, 1u);
    EXPECT_GE(cache.reuses, 1u);
}

TEST(KernelCache, PatchedReuseMatchesAFreshBuild)
{
    // Same structure, different budgets/weights: the cache patches
    // the changed user rows instead of rebuilding, and the result
    // must equal a cache-free solve of the mutated market.
    const auto market = testMarket();
    KernelCache cache;
    BiddingOptions cached;
    cached.kernelCache = &cache;
    (void)solveAmdahlBidding(market, cached);

    const auto mutated = testMarket(96, 12, 0x51b7d, 12);
    const auto fresh = solveAmdahlBidding(mutated, BiddingOptions{});
    expectIdentical(solveAmdahlBidding(mutated, cached), fresh,
                    "patched cache vs fresh");
    EXPECT_EQ(cache.rebuilds, 1u);
    EXPECT_GT(cache.patchedUsers, 0u);
}

TEST(KernelCache, StructuralChangeRebuildsAndStaysCorrect)
{
    KernelCache cache;
    BiddingOptions cached;
    cached.kernelCache = &cache;
    (void)solveAmdahlBidding(testMarket(96, 12), cached);

    const auto other = testMarket(64, 8, 0x77);
    const auto fresh = solveAmdahlBidding(other, BiddingOptions{});
    expectIdentical(solveAmdahlBidding(other, cached), fresh,
                    "rebuilt cache vs fresh");
    EXPECT_EQ(cache.rebuilds, 2u);
}

// ---------------------------------------------------------------------
// Anderson acceleration.

BiddingOptions
accelOptions()
{
    BiddingOptions opts;
    opts.priceTolerance = 1e-7;
    opts.maxIterations = 5000;
    opts.accel.enabled = true;
    return opts;
}

TEST(Acceleration, ConvergesInFewerRoundsToTheSameEquilibrium)
{
    const auto market = testMarket(256, 6);
    BiddingOptions plain;
    plain.priceTolerance = 1e-7;
    plain.maxIterations = 5000;
    const auto slow = solveAmdahlBidding(market, plain);
    ASSERT_TRUE(slow.converged);

    const auto fast = solveAmdahlBidding(market, accelOptions());
    ASSERT_TRUE(fast.converged);
    EXPECT_LT(fast.iterations, slow.iterations / 2);
    EXPECT_GT(fast.accelAccepted, 0);
    EXPECT_LT(priceDisagreement(fast, slow), 1e-4);
}

TEST(Acceleration, IsSelfReproducing)
{
    const auto market = testMarket(128, 6);
    const auto first = solveAmdahlBidding(market, accelOptions());
    const auto second = solveAmdahlBidding(market, accelOptions());
    expectIdentical(second, first, "accel repeat");
    EXPECT_EQ(first.accelAccepted, second.accelAccepted);
    EXPECT_EQ(first.accelRejected, second.accelRejected);
}

TEST(Acceleration, IsThreadAndGrainIndependent)
{
    const auto market = testMarket(128, 6);
    const auto reference = solveAmdahlBidding(market, accelOptions());
    for (const int threads : {1, 4}) {
        ThreadGuard t(threads);
        GrainGuard g(16);
        expectIdentical(solveAmdahlBidding(market, accelOptions()),
                        reference,
                        "accel threads=" + std::to_string(threads));
    }
}

TEST(Acceleration, OffPathIsUntouched)
{
    // accel.enabled=false must be byte-identical to a default-options
    // solve: the feature off is indistinguishable from the feature
    // not existing.
    const auto market = testMarket();
    BiddingOptions off;
    off.accel.depth = 5; // Ignored while disabled.
    expectIdentical(solveAmdahlBidding(market, off),
                    solveAmdahlBidding(market, BiddingOptions{}),
                    "accel disabled");
}

TEST(Acceleration, ValidatesItsOptions)
{
    const auto market = testMarket(8, 2);
    auto bad = accelOptions();
    bad.accel.depth = 0;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
    bad = accelOptions();
    bad.accel.depth = 9;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
    bad = accelOptions();
    bad.accel.ridge = -1.0;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
    bad = accelOptions();
    bad.accel.maxMixWeight = 0.0;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
    bad = accelOptions();
    bad.schedule = UpdateSchedule::GaussSeidel;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
}

// ---------------------------------------------------------------------
// Mean-field warm start.

TEST(MeanFieldSeed, IsDeterministicPositiveAndWellShaped)
{
    const auto market = testMarket();
    const JobMatrix seed = meanFieldSeedBids(market);
    ASSERT_EQ(seed.size(), market.userCount());
    for (std::size_t i = 0; i < seed.size(); ++i) {
        ASSERT_EQ(seed[i].size(), market.user(i).jobs.size());
        for (const double bid : seed[i])
            EXPECT_GT(bid, 0.0);
    }
    EXPECT_EQ(meanFieldSeedBids(market), seed);
}

TEST(MeanFieldSeed, SeededSolveReachesTheSameEquilibrium)
{
    const auto market = testMarket(128, 6);
    BiddingOptions cold;
    cold.priceTolerance = 1e-8;
    cold.maxIterations = 20000;
    const auto reference = solveAmdahlBidding(market, cold);
    ASSERT_TRUE(reference.converged);

    BiddingOptions seeded = cold;
    seeded.initialBids = meanFieldSeedBids(market);
    const auto warm = solveAmdahlBidding(market, seeded);
    ASSERT_TRUE(warm.converged);
    EXPECT_LT(priceDisagreement(warm, reference), 1e-5);
}

} // namespace
} // namespace amdahl::core
