/**
 * @file
 * Unit tests for Hamilton (largest-remainder) rounding.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "core/bidding.hh"
#include "core/rounding.hh"

namespace amdahl::core {
namespace {

TEST(Hamilton, IntegersPassThrough)
{
    const auto r = hamiltonRound({3.0, 5.0, 4.0}, 12);
    EXPECT_EQ(r, (std::vector<int>{3, 5, 4}));
}

TEST(Hamilton, LargestRemainderWinsTheExtraCore)
{
    const auto r = hamiltonRound({2.7, 3.2, 4.1}, 10);
    // Floors: 2, 3, 4 (9 total); the extra core goes to .7.
    EXPECT_EQ(r, (std::vector<int>{3, 3, 4}));
}

TEST(Hamilton, MultipleExtrasGoInRemainderOrder)
{
    const auto r = hamiltonRound({1.9, 1.8, 1.2, 1.1}, 8);
    // Floors: 1,1,1,1; extras (4) to .9, .8, .2, .1 in order.
    EXPECT_EQ(r, (std::vector<int>{2, 2, 2, 2}));

    const auto r2 = hamiltonRound({1.9, 1.8, 1.2, 1.1}, 7);
    EXPECT_EQ(r2, (std::vector<int>{2, 2, 2, 1}));
}

TEST(Hamilton, TiesBreakByIndexDeterministically)
{
    const auto r = hamiltonRound({1.5, 1.5, 1.0}, 5);
    EXPECT_EQ(r, (std::vector<int>{2, 2, 1}));
}

TEST(Hamilton, SumEqualsCapacityWhenFractionsExhaustIt)
{
    const std::vector<double> frac = {0.3, 5.45, 2.25, 3.6, 0.4};
    const auto r = hamiltonRound(frac, 12);
    EXPECT_EQ(std::accumulate(r.begin(), r.end(), 0), 12);
}

TEST(Hamilton, NoEntryMovesByAFullCore)
{
    const std::vector<double> frac = {0.3, 5.45, 2.25, 3.6, 0.4};
    const auto r = hamiltonRound(frac, 12);
    for (std::size_t k = 0; k < frac.size(); ++k) {
        EXPECT_GE(r[k], static_cast<int>(std::floor(frac[k])));
        EXPECT_LE(r[k], static_cast<int>(std::floor(frac[k])) + 1);
    }
}

TEST(Hamilton, ZeroCapacity)
{
    const auto r = hamiltonRound({0.0, 0.0}, 0);
    EXPECT_EQ(r, (std::vector<int>{0, 0}));
}

TEST(Hamilton, ToleratesTinyNegativeNoise)
{
    const auto r = hamiltonRound({-1e-12, 4.0}, 4);
    EXPECT_EQ(r, (std::vector<int>{0, 4}));
}

TEST(Hamilton, RejectsOversubscription)
{
    EXPECT_THROW(hamiltonRound({3.0, 3.0}, 5), FatalError);
}

TEST(Hamilton, RejectsSubstantialNegatives)
{
    EXPECT_THROW(hamiltonRound({-1.0, 2.0}, 1), FatalError);
}

TEST(Hamilton, RejectsUnderSubscribedServer)
{
    // Capacity 10 but only ~2 cores of fractional allocation across 2
    // jobs: Hamilton cannot invent 8 cores.
    EXPECT_THROW(hamiltonRound({1.0, 1.0}, 10), FatalError);
}

TEST(Hamilton, RejectsNegativeCapacity)
{
    EXPECT_THROW(hamiltonRound({1.0}, -1), FatalError);
}

TEST(RoundOutcome, PreservesServerCapacities)
{
    FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 1.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 1.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});
    const auto result = solveAmdahlBidding(market);
    const auto rounded = roundOutcome(market, result);

    std::vector<int> load(2, 0);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k)
            load[jobs[k].server] += rounded[i][k];
    }
    EXPECT_EQ(load[0], 10);
    EXPECT_EQ(load[1], 10);
}

TEST(RoundOutcome, StaysWithinOneCoreOfFractional)
{
    FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 1.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 1.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});
    const auto result = solveAmdahlBidding(market);
    const auto rounded = roundOutcome(market, result);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        for (std::size_t k = 0; k < rounded[i].size(); ++k) {
            EXPECT_LT(std::abs(rounded[i][k] -
                               result.allocation[i][k]),
                      1.0 + 1e-9);
        }
    }
}

TEST(RoundOutcome, ValidatesShape)
{
    FisherMarket market({10.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    MarketOutcome outcome; // empty allocation
    EXPECT_THROW(roundOutcome(market, outcome), FatalError);
}

} // namespace
} // namespace amdahl::core
