/**
 * @file
 * Unit tests for market-file parsing and serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "core/market_io.hh"

namespace amdahl::core {
namespace {

constexpr const char *aliceBobFile = R"(# the paper's example
servers 10 10
user Alice budget 1
job server 0 fraction 0.53
job server 1 fraction 0.93
user Bob budget 1
job server 0 fraction 0.96 weight 2
job server 1 fraction 0.68
)";

TEST(MarketIo, ParsesTheExampleFile)
{
    const auto market = parseMarketString(aliceBobFile);
    EXPECT_EQ(market.serverCount(), 2u);
    EXPECT_EQ(market.userCount(), 2u);
    EXPECT_EQ(market.user(0).name, "Alice");
    EXPECT_DOUBLE_EQ(market.user(0).budget, 1.0);
    ASSERT_EQ(market.user(1).jobs.size(), 2u);
    EXPECT_DOUBLE_EQ(market.user(1).jobs[0].parallelFraction, 0.96);
    EXPECT_DOUBLE_EQ(market.user(1).jobs[0].weight, 2.0);
    EXPECT_NO_THROW(market.validate());
}

TEST(MarketIo, CommentsAndBlankLinesIgnored)
{
    const auto market = parseMarketString(
        "\n# header\nservers 4\n\nuser u budget 2  # inline\n"
        "job server 0 fraction 0.5\n\n");
    EXPECT_EQ(market.userCount(), 1u);
    EXPECT_DOUBLE_EQ(market.user(0).budget, 2.0);
}

TEST(MarketIo, AnonymousUserAndDefaultBudget)
{
    const auto market = parseMarketString(
        "servers 4\nuser\njob server 0 fraction 0.5\n");
    EXPECT_TRUE(market.user(0).name.empty());
    EXPECT_DOUBLE_EQ(market.user(0).budget, 1.0);
}

TEST(MarketIo, JobKeysInAnyOrder)
{
    const auto market = parseMarketString(
        "servers 4\nuser u\n"
        "job fraction 0.7 weight 3 server 0\n");
    EXPECT_DOUBLE_EQ(market.user(0).jobs[0].parallelFraction, 0.7);
    EXPECT_DOUBLE_EQ(market.user(0).jobs[0].weight, 3.0);
}

TEST(MarketIo, RoundTripsThroughWrite)
{
    const auto market = parseMarketString(aliceBobFile);
    std::ostringstream os;
    writeMarket(os, market);
    const auto reparsed = parseMarketString(os.str());
    ASSERT_EQ(reparsed.userCount(), market.userCount());
    ASSERT_EQ(reparsed.serverCount(), market.serverCount());
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        EXPECT_EQ(reparsed.user(i).name, market.user(i).name);
        EXPECT_DOUBLE_EQ(reparsed.user(i).budget,
                         market.user(i).budget);
        ASSERT_EQ(reparsed.user(i).jobs.size(),
                  market.user(i).jobs.size());
        for (std::size_t k = 0; k < market.user(i).jobs.size(); ++k) {
            EXPECT_EQ(reparsed.user(i).jobs[k].server,
                      market.user(i).jobs[k].server);
            EXPECT_DOUBLE_EQ(
                reparsed.user(i).jobs[k].parallelFraction,
                market.user(i).jobs[k].parallelFraction);
            EXPECT_DOUBLE_EQ(reparsed.user(i).jobs[k].weight,
                             market.user(i).jobs[k].weight);
        }
    }
}

TEST(MarketIo, ErrorsCarryLineNumbers)
{
    try {
        parseMarketString("servers 4\nuser u\njob server 0\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("line 3"),
                  std::string::npos);
    }
}

TEST(MarketIo, RejectsMalformedInput)
{
    EXPECT_THROW(parseMarketString(""), FatalError);
    EXPECT_THROW(parseMarketString("servers\n"), FatalError);
    EXPECT_THROW(parseMarketString("servers 4\n"), FatalError);
    EXPECT_THROW(parseMarketString("user u\n"), FatalError);
    EXPECT_THROW(
        parseMarketString("servers 4\njob server 0 fraction 0.5\n"),
        FatalError);
    EXPECT_THROW(parseMarketString("servers 4\nservers 4\nuser u\n"
                                   "job server 0 fraction 0.5\n"),
                 FatalError);
    EXPECT_THROW(parseMarketString("servers 4\nbogus\n"), FatalError);
    EXPECT_THROW(parseMarketString("servers x\n"), FatalError);
    EXPECT_THROW(
        parseMarketString(
            "servers 4\nuser u\njob server 0 fraction abc\n"),
        FatalError);
    EXPECT_THROW(
        parseMarketString(
            "servers 4\nuser u\njob server 0 fraction 0.5 oops 1\n"),
        FatalError);
}

TEST(MarketIo, OutOfRangeValuesRejectedByMarket)
{
    // Parsing delegates semantic validation to FisherMarket.
    EXPECT_THROW(
        parseMarketString(
            "servers 4\nuser u\njob server 9 fraction 0.5\n"),
        FatalError);
    EXPECT_THROW(
        parseMarketString(
            "servers 4\nuser u budget -1\njob server 0 fraction 0.5\n"),
        FatalError);
}

} // namespace
} // namespace amdahl::core
