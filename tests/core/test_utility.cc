/**
 * @file
 * Unit tests for the Amdahl utility function (paper Eq. 4).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/amdahl.hh"
#include "core/utility.hh"

namespace amdahl::core {
namespace {

TEST(Utility, UnitAllocationIsExactlyOne)
{
    // "Utility is one when the user receives one core per server."
    const AmdahlUtility u({{0.53, 1.0}, {0.93, 2.5}, {0.99, 0.3}});
    EXPECT_DOUBLE_EQ(u.unitAllocationValue(), 1.0);
    EXPECT_DOUBLE_EQ(u.value({1.0, 1.0, 1.0}), 1.0);
}

TEST(Utility, SingleJobEqualsSpeedup)
{
    const AmdahlUtility u({{0.8, 1.0}});
    for (double x : {0.0, 1.0, 4.0, 16.0})
        EXPECT_DOUBLE_EQ(u.value({x}), amdahlSpeedup(0.8, x));
}

TEST(Utility, PaperExampleAliceUtility)
{
    // Alice runs dedup (f=0.53) and bodytrack (f=0.93) with equal
    // weights; u = 0.5 (s_dedup + s_bodytrack).
    const AmdahlUtility alice({{0.53, 1.0}, {0.93, 1.0}});
    const double x_c = 1.34, x_d = 8.68;
    const double expected =
        0.5 * (amdahlSpeedup(0.53, x_c) + amdahlSpeedup(0.93, x_d));
    EXPECT_NEAR(alice.value({x_c, x_d}), expected, 1e-12);
}

TEST(Utility, WeightsActAsWorkRates)
{
    // A job with double weight contributes double un-normalized
    // utility at the same allocation.
    const AmdahlUtility u({{0.9, 2.0}, {0.9, 1.0}});
    EXPECT_DOUBLE_EQ(u.jobUtility(0, 4.0), 2.0 * u.jobUtility(1, 4.0));
    // But the normalized value at one core each is still 1.
    EXPECT_DOUBLE_EQ(u.value({1.0, 1.0}), 1.0);
}

TEST(Utility, ValueIsMonotone)
{
    const AmdahlUtility u({{0.7, 1.0}, {0.95, 1.0}});
    EXPECT_LT(u.value({1.0, 1.0}), u.value({2.0, 1.0}));
    EXPECT_LT(u.value({2.0, 1.0}), u.value({2.0, 3.0}));
}

TEST(Utility, ValueIsConcaveAlongCoordinates)
{
    const AmdahlUtility u({{0.85, 1.0}});
    // Midpoint value above chord: u((a+b)/2) >= (u(a)+u(b))/2.
    const double a = 1.0, b = 9.0;
    EXPECT_GE(u.value({0.5 * (a + b)}),
              0.5 * (u.value({a}) + u.value({b})));
}

TEST(Utility, GradientMatchesFiniteDifferences)
{
    const AmdahlUtility u({{0.6, 1.0}, {0.9, 3.0}});
    const std::vector<double> x = {2.0, 5.0};
    const auto grad = u.gradient(x);
    const double h = 1e-6;
    for (std::size_t j = 0; j < x.size(); ++j) {
        auto xp = x, xm = x;
        xp[j] += h;
        xm[j] -= h;
        const double numeric =
            (u.value(xp) - u.value(xm)) / (2.0 * h);
        EXPECT_NEAR(grad[j], numeric, 1e-6);
    }
}

TEST(Utility, MarginalDecreases)
{
    const AmdahlUtility u({{0.9, 1.0}});
    EXPECT_GT(u.jobMarginal(0, 1.0), u.jobMarginal(0, 2.0));
    EXPECT_GT(u.jobMarginal(0, 2.0), u.jobMarginal(0, 8.0));
}

TEST(Utility, AccessorsAndBounds)
{
    const AmdahlUtility u({{0.5, 1.0}, {0.6, 2.0}});
    EXPECT_EQ(u.size(), 2u);
    EXPECT_DOUBLE_EQ(u.totalWeight(), 3.0);
    EXPECT_DOUBLE_EQ(u.term(1).parallelFraction, 0.6);
    EXPECT_THROW(u.term(2), FatalError);
}

TEST(Utility, ValidatesConstruction)
{
    EXPECT_THROW(AmdahlUtility({}), FatalError);
    EXPECT_THROW(AmdahlUtility({{1.5, 1.0}}), FatalError);
    EXPECT_THROW(AmdahlUtility({{-0.1, 1.0}}), FatalError);
    EXPECT_THROW(AmdahlUtility({{0.5, 0.0}}), FatalError);
    EXPECT_THROW(AmdahlUtility({{0.5, -2.0}}), FatalError);
}

TEST(Utility, ValidatesAllocationArity)
{
    const AmdahlUtility u({{0.5, 1.0}, {0.6, 1.0}});
    EXPECT_THROW(u.value({1.0}), FatalError);
    EXPECT_THROW(u.gradient({1.0, 2.0, 3.0}), FatalError);
}

TEST(Utility, SerialJobContributesConstantUtility)
{
    const AmdahlUtility u({{0.0, 1.0}, {0.9, 1.0}});
    // The serial job's speedup is 1 for any positive allocation.
    EXPECT_DOUBLE_EQ(u.jobUtility(0, 1.0), u.jobUtility(0, 100.0));
}

} // namespace
} // namespace amdahl::core
