/**
 * @file
 * Unit tests for the Amdahl Bidding procedure (Section V-D/E).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/amdahl.hh"
#include "core/bidding.hh"

namespace amdahl::core {
namespace {

FisherMarket
aliceBobMarket()
{
    FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 1.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 1.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});
    return market;
}

TEST(Bidding, ReproducesPaperSectionVExample)
{
    // Paper Section V-C: equilibrium prices p = (0.100, 0.099),
    // Alice x_A = (1.34, 8.68), Bob x_B = (8.66, 1.32).
    BiddingOptions opts;
    opts.priceTolerance = 1e-10;
    const auto r = solveAmdahlBidding(aliceBobMarket(), opts);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.prices[0], 0.100, 0.001);
    EXPECT_NEAR(r.prices[1], 0.099, 0.001);
    EXPECT_NEAR(r.allocation[0][0], 1.34, 0.01);
    EXPECT_NEAR(r.allocation[0][1], 8.68, 0.01);
    EXPECT_NEAR(r.allocation[1][0], 8.66, 0.01);
    EXPECT_NEAR(r.allocation[1][1], 1.32, 0.01);
}

TEST(Bidding, MoreParallelJobDrawsMoreCores)
{
    // "She requests more processors on server D because her bodytrack
    // computation has more parallelism."
    const auto r = solveAmdahlBidding(aliceBobMarket());
    EXPECT_GT(r.allocation[0][1], r.allocation[0][0]); // Alice: D > C.
    EXPECT_GT(r.allocation[1][0], r.allocation[1][1]); // Bob: C > D.
}

TEST(Bidding, MarketClearsEveryServer)
{
    const auto market = aliceBobMarket();
    const auto r = solveAmdahlBidding(market);
    for (std::size_t j = 0; j < market.serverCount(); ++j)
        EXPECT_NEAR(r.serverLoad(market, j), market.capacity(j), 1e-6);
}

TEST(Bidding, BudgetsAreExhausted)
{
    const auto market = aliceBobMarket();
    const auto r = solveAmdahlBidding(market);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        double spent = 0.0;
        for (double b : r.bids[i])
            spent += b;
        EXPECT_NEAR(spent, market.user(i).budget, 1e-9);
    }
}

TEST(Bidding, FixedPointSatisfiesPaperEquationNine)
{
    // b_ij^2 / b_ik^2 == f_ij p_j u_ij^2 / (f_ik p_k u_ik^2) with
    // u_ij = w_ij s_ij(x_ij) (unit weights here).
    BiddingOptions opts;
    opts.priceTolerance = 1e-12;
    const auto market = aliceBobMarket();
    const auto r = solveAmdahlBidding(market, opts);
    for (std::size_t i = 0; i < 2; ++i) {
        const auto &jobs = market.user(i).jobs;
        const double lhs =
            (r.bids[i][0] * r.bids[i][0]) / (r.bids[i][1] * r.bids[i][1]);
        const double u0 =
            amdahlSpeedup(jobs[0].parallelFraction, r.allocation[i][0]);
        const double u1 =
            amdahlSpeedup(jobs[1].parallelFraction, r.allocation[i][1]);
        const double rhs =
            (jobs[0].parallelFraction * r.prices[0] * u0 * u0) /
            (jobs[1].parallelFraction * r.prices[1] * u1 * u1);
        EXPECT_NEAR(lhs, rhs, 1e-6 * rhs);
    }
}

TEST(Bidding, EntitlementDominance)
{
    // u_i(x*) >= u_i(x_ent): users do no worse than their entitlement
    // allocation (the paper's fairness theorem).
    const auto market = aliceBobMarket();
    const auto r = solveAmdahlBidding(market);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto u = market.utilityOf(i);
        std::vector<double> entitled(market.user(i).jobs.size());
        for (std::size_t k = 0; k < entitled.size(); ++k) {
            entitled[k] = market.entitledCoresOnServer(
                i, market.user(i).jobs[k].server);
        }
        EXPECT_GE(u.value(r.allocation[i]), u.value(entitled) - 1e-9);
    }
}

TEST(Bidding, SymmetricUsersGetSymmetricAllocations)
{
    FisherMarket market({8.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"b", 1.0, {{0, 0.9, 1.0}}});
    const auto r = solveAmdahlBidding(market);
    EXPECT_NEAR(r.allocation[0][0], 4.0, 1e-6);
    EXPECT_NEAR(r.allocation[1][0], 4.0, 1e-6);
}

TEST(Bidding, BudgetsScaleAllocations)
{
    FisherMarket market({9.0});
    market.addUser({"small", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"big", 2.0, {{0, 0.9, 1.0}}});
    const auto r = solveAmdahlBidding(market);
    // Single server, identical jobs: allocations proportional to
    // budgets.
    EXPECT_NEAR(r.allocation[1][0], 2.0 * r.allocation[0][0], 1e-6);
}

TEST(Bidding, SingleUserTakesEverything)
{
    FisherMarket market({6.0, 12.0});
    market.addUser({"solo", 3.0, {{0, 0.8, 1.0}, {1, 0.95, 1.0}}});
    const auto r = solveAmdahlBidding(market);
    EXPECT_NEAR(r.allocation[0][0], 6.0, 1e-6);
    EXPECT_NEAR(r.allocation[0][1], 12.0, 1e-6);
}

TEST(Bidding, ConvergesWithinTensOfIterations)
{
    // "prices converge, often within ten iterations" — allow slack but
    // catch pathological slowness.
    const auto r = solveAmdahlBidding(aliceBobMarket());
    EXPECT_TRUE(r.converged);
    EXPECT_LE(r.iterations, 100);
}

TEST(Bidding, TrackedHistoryIsMonotoneTail)
{
    BiddingOptions opts;
    opts.trackHistory = true;
    opts.priceTolerance = 1e-10;
    const auto r = solveAmdahlBidding(aliceBobMarket(), opts);
    ASSERT_EQ(r.priceDeltaHistory.size(),
              static_cast<std::size_t>(r.iterations));
    // The final delta must be below tolerance.
    EXPECT_LT(r.priceDeltaHistory.back(), opts.priceTolerance);
}

TEST(Bidding, DampingStillConverges)
{
    BiddingOptions opts;
    opts.damping = 0.5;
    const auto r = solveAmdahlBidding(aliceBobMarket(), opts);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.prices[0], 0.100, 0.002);
}

TEST(Bidding, UpdateUserBidsNormalizesToBudget)
{
    MarketUser user{"u", 2.0, {{0, 0.9, 1.0}, {1, 0.7, 1.0}}};
    std::vector<double> bids = {1.0, 1.0};
    updateUserBids(user, {0.1, 0.2}, bids);
    EXPECT_NEAR(bids[0] + bids[1], 2.0, 1e-12);
    EXPECT_GT(bids[0], 0.0);
    EXPECT_GT(bids[1], 0.0);
}

TEST(Bidding, UpdateUserBidsFallsBackForSerialJobs)
{
    // All-serial user: propensities vanish; bids fall back to an even
    // split.
    MarketUser user{"serial", 3.0, {{0, 0.0, 1.0}, {1, 0.0, 1.0}}};
    std::vector<double> bids = {1.5, 1.5};
    updateUserBids(user, {0.1, 0.1}, bids);
    EXPECT_DOUBLE_EQ(bids[0], 1.5);
    EXPECT_DOUBLE_EQ(bids[1], 1.5);
}

TEST(Bidding, ValidatesOptions)
{
    const auto market = aliceBobMarket();
    BiddingOptions bad;
    bad.priceTolerance = 0.0;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
    bad = BiddingOptions{};
    bad.maxIterations = 0;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
    bad = BiddingOptions{};
    bad.damping = 0.0;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
    bad = BiddingOptions{};
    bad.damping = 1.5;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
}

TEST(Bidding, ReportsNonConvergenceHonestly)
{
    BiddingOptions opts;
    opts.maxIterations = 1;
    opts.priceTolerance = 1e-15;
    const auto r = solveAmdahlBidding(aliceBobMarket(), opts);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.iterations, 1);
}

TEST(Bidding, WarmStartConvergesFaster)
{
    // Solve once, perturb nothing, re-solve from the equilibrium
    // bids: convergence should be near-immediate versus cold start.
    const auto market = aliceBobMarket();
    BiddingOptions cold;
    cold.priceTolerance = 1e-9;
    const auto first = solveAmdahlBidding(market, cold);

    BiddingOptions warm = cold;
    warm.initialBids = first.bids;
    const auto second = solveAmdahlBidding(market, warm);
    EXPECT_TRUE(second.converged);
    EXPECT_LT(second.iterations, first.iterations / 2);
    EXPECT_NEAR(second.prices[0], first.prices[0], 1e-6);
}

TEST(Bidding, WarmStartRescalesToBudget)
{
    // Warm-start bids are renormalized per user, so stale bids from a
    // different budget still exhaust the current one.
    const auto market = aliceBobMarket();
    BiddingOptions warm;
    warm.maxIterations = 1;
    warm.priceTolerance = 1e-15;
    warm.initialBids = {{5.0, 5.0}, {0.2, 0.2}};
    const auto r = solveAmdahlBidding(market, warm);
    for (std::size_t i = 0; i < 2; ++i) {
        double spent = 0.0;
        for (double b : r.bids[i])
            spent += b;
        EXPECT_NEAR(spent, market.user(i).budget, 1e-9);
    }
}

TEST(Bidding, WarmStartFallsBackOnGarbage)
{
    const auto market = aliceBobMarket();
    BiddingOptions warm;
    warm.initialBids = {{0.0, 0.0}, {-1.0, 2.0}};
    const auto r = solveAmdahlBidding(market, warm);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.prices[0], 0.100, 0.002);
}

TEST(Bidding, WarmStartShapeChecked)
{
    const auto market = aliceBobMarket();
    BiddingOptions warm;
    warm.initialBids = {{1.0, 1.0}}; // wrong user count
    EXPECT_THROW(solveAmdahlBidding(market, warm), FatalError);
    warm.initialBids = {{1.0}, {1.0, 1.0}}; // wrong job count
    EXPECT_THROW(solveAmdahlBidding(market, warm), FatalError);
}

TEST(Bidding, WarmStartFallsBackPerRow)
{
    // One garbage row falls back to the even split without disturbing
    // the other user's (valid, renormalized) seed. Near-zero damping
    // keeps the first iteration's bids close to the seed itself.
    const auto market = aliceBobMarket();
    BiddingOptions warm;
    warm.maxIterations = 1;
    warm.priceTolerance = 1e-15;
    warm.damping = 1e-9;
    warm.initialBids = {{-3.0, 0.0}, {6.0, 2.0}};
    const auto r = solveAmdahlBidding(market, warm);
    EXPECT_NEAR(r.bids[0][0], 0.5, 1e-6);  // even split of budget 1
    EXPECT_NEAR(r.bids[0][1], 0.5, 1e-6);
    EXPECT_NEAR(r.bids[1][0], 0.75, 1e-6); // 6:2 rescaled to budget 1
    EXPECT_NEAR(r.bids[1][1], 0.25, 1e-6);
}

TEST(Bidding, WarmStartFallsBackOnNonFiniteRow)
{
    const auto market = aliceBobMarket();
    BiddingOptions warm;
    warm.initialBids = {{std::nan(""), 1.0}, {1.0, 1.0}};
    const auto r = solveAmdahlBidding(market, warm);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.prices[0], 0.100, 0.002);
}

TEST(Bidding, SoundTransportMatchesDefault)
{
    // lossRate 0 must leave the procedure bit-identical, whatever the
    // seed says.
    const auto market = aliceBobMarket();
    BiddingOptions lossless;
    lossless.transport.lossRate = 0.0;
    lossless.transport.seed = 0xdeadbeef;
    const auto a = solveAmdahlBidding(market);
    const auto b = solveAmdahlBidding(market, lossless);
    EXPECT_EQ(a.iterations, b.iterations);
    for (std::size_t j = 0; j < market.serverCount(); ++j)
        EXPECT_DOUBLE_EQ(a.prices[j], b.prices[j]);
}

TEST(Bidding, LossyTransportIsDeterministicGivenSeed)
{
    const auto market = aliceBobMarket();
    BiddingOptions lossy;
    lossy.transport.lossRate = 0.3;
    lossy.transport.seed = 42;
    const auto a = solveAmdahlBidding(market, lossy);
    const auto b = solveAmdahlBidding(market, lossy);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.converged, b.converged);
    for (std::size_t j = 0; j < market.serverCount(); ++j)
        EXPECT_DOUBLE_EQ(a.prices[j], b.prices[j]);
}

TEST(Bidding, LossyTransportStillReachesTheEquilibrium)
{
    // Lost updates delay convergence but cannot move the fixed point:
    // the same equilibrium prices as the sound run, more slowly.
    const auto market = aliceBobMarket();
    BiddingOptions lossy;
    lossy.priceTolerance = 1e-9;
    lossy.transport.lossRate = 0.4;
    lossy.transport.seed = 7;
    const auto clean = solveAmdahlBidding(market);
    const auto noisy = solveAmdahlBidding(market, lossy);
    ASSERT_TRUE(noisy.converged);
    EXPECT_GT(noisy.iterations, clean.iterations);
    for (std::size_t j = 0; j < market.serverCount(); ++j)
        EXPECT_NEAR(noisy.prices[j], clean.prices[j], 1e-5);
}

TEST(Bidding, TotalMessageLossNeverConverges)
{
    // With every update lost, prices never move — but a round with
    // losses must not be declared converged.
    const auto market = aliceBobMarket();
    BiddingOptions dead;
    dead.maxIterations = 50;
    dead.transport.lossRate = 1.0;
    dead.transport.seed = 3;
    const auto r = solveAmdahlBidding(market, dead);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.iterations, 50);
}

TEST(Bidding, ValidatesTransportLossRate)
{
    const auto market = aliceBobMarket();
    BiddingOptions bad;
    bad.transport.lossRate = -0.1;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
    bad.transport.lossRate = 1.5;
    EXPECT_THROW(solveAmdahlBidding(market, bad), FatalError);
}

TEST(Bidding, GaussSeidelReachesTheSameEquilibrium)
{
    BiddingOptions sync;
    sync.priceTolerance = 1e-10;
    BiddingOptions gs = sync;
    gs.schedule = UpdateSchedule::GaussSeidel;

    const auto market = aliceBobMarket();
    const auto a = solveAmdahlBidding(market, sync);
    const auto b = solveAmdahlBidding(market, gs);
    ASSERT_TRUE(a.converged);
    ASSERT_TRUE(b.converged);
    for (std::size_t j = 0; j < market.serverCount(); ++j)
        EXPECT_NEAR(a.prices[j], b.prices[j], 1e-6);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        for (std::size_t k = 0; k < a.allocation[i].size(); ++k) {
            EXPECT_NEAR(a.allocation[i][k], b.allocation[i][k],
                        1e-4);
        }
    }
}

TEST(Bidding, GaussSeidelEquilibriumVerifies)
{
    BiddingOptions gs;
    gs.schedule = UpdateSchedule::GaussSeidel;
    gs.priceTolerance = 1e-10;
    const auto market = aliceBobMarket();
    const auto r = solveAmdahlBidding(market, gs);
    const auto check = verifyEquilibrium(market, r);
    EXPECT_TRUE(check.pass(1e-5));
}

TEST(Bidding, UserWithJobsOnSameServer)
{
    // Two jobs of one user colocated on one server: bids split by
    // parallelizability, allocations still clear the server.
    FisherMarket market({12.0});
    market.addUser({"multi", 1.0, {{0, 0.95, 1.0}, {0, 0.6, 1.0}}});
    market.addUser({"other", 1.0, {{0, 0.8, 1.0}}});
    const auto r = solveAmdahlBidding(market);
    EXPECT_NEAR(r.serverLoad(market, 0), 12.0, 1e-6);
    EXPECT_GT(r.allocation[0][0], r.allocation[0][1]);
}

} // namespace
} // namespace amdahl::core
