/**
 * @file
 * Thread-count determinism of the market-clearing engine.
 *
 * The solver's contract (DESIGN.md §11): the thread count is a
 * performance knob, never a results knob. Every test here compares
 * with exact `==` — bids, prices, and allocations must be
 * *byte-identical* at 1, 2, and 8 threads, in the plain solve and
 * under every feature that interacts with the parallel fan-out
 * (bid-message loss, anytime deadlines, Gauss-Seidel, damping,
 * warm starts). A tolerance here would hide exactly the class of bug
 * the execution layer is designed against.
 *
 * Also pins the factored-sqrt agreement between the public
 * updateUserBids() and the solver's structure-of-arrays kernel: one
 * Synchronous round of the solver must reproduce, bit for bit, what
 * the reference function computes from the same posted prices.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/bidding.hh"
#include "core/market.hh"
#include "exec/parallelism.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace amdahl::core {
namespace {

/** Scoped thread-count override; restores the previous setting. */
class ThreadGuard
{
  public:
    explicit ThreadGuard(int n) : previous_(exec::setThreadCount(n)) {}
    ~ThreadGuard() { exec::setThreadCount(previous_); }
    ThreadGuard(const ThreadGuard &) = delete;
    ThreadGuard &operator=(const ThreadGuard &) = delete;

  private:
    int previous_;
};

/** A market wide enough that the user fan-out spans many chunks. */
FisherMarket
testMarket(int users = 96, int servers = 12)
{
    Rng rng(0xd15c0);
    std::vector<double> capacities(static_cast<std::size_t>(servers),
                                   16.0);
    FisherMarket market(std::move(capacities));
    for (int i = 0; i < users; ++i) {
        MarketUser user;
        user.name = "u" + std::to_string(i);
        user.budget = rng.uniform(0.5, 2.0);
        const int jobs = 1 + static_cast<int>(rng.uniformInt(1, 3));
        for (int k = 0; k < jobs; ++k) {
            JobSpec job;
            job.server = k == 0 ? static_cast<std::size_t>(i % servers)
                                : static_cast<std::size_t>(
                                      rng.uniformInt(0, servers - 1));
            job.parallelFraction = rng.uniform(0.3, 0.999);
            job.weight = rng.uniform(0.5, 2.0);
            user.jobs.push_back(job);
        }
        market.addUser(std::move(user));
    }
    return market;
}

/** Exact (bitwise) equality of two outcomes, with useful messages. */
void
expectIdentical(const BiddingResult &a, const BiddingResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.iterations, b.iterations) << what;
    EXPECT_EQ(a.converged, b.converged) << what;
    EXPECT_EQ(a.deadlineExpired, b.deadlineExpired) << what;
    ASSERT_EQ(a.prices.size(), b.prices.size()) << what;
    for (std::size_t j = 0; j < a.prices.size(); ++j)
        ASSERT_EQ(a.prices[j], b.prices[j])
            << what << ": price " << j;
    ASSERT_EQ(a.bids.size(), b.bids.size()) << what;
    for (std::size_t i = 0; i < a.bids.size(); ++i) {
        ASSERT_EQ(a.bids[i].size(), b.bids[i].size()) << what;
        for (std::size_t k = 0; k < a.bids[i].size(); ++k) {
            ASSERT_EQ(a.bids[i][k], b.bids[i][k])
                << what << ": bid (" << i << "," << k << ")";
            ASSERT_EQ(a.allocation[i][k], b.allocation[i][k])
                << what << ": allocation (" << i << "," << k << ")";
        }
    }
}

/** Solve at a given thread count. */
BiddingResult
solveAt(int threads, const FisherMarket &market,
        const BiddingOptions &opts)
{
    ThreadGuard guard(threads);
    return solveAmdahlBidding(market, opts);
}

TEST(BiddingDeterminism, SynchronousSolveIsThreadCountIndependent)
{
    const auto market = testMarket();
    BiddingOptions opts;
    const auto reference = solveAt(1, market, opts);
    EXPECT_TRUE(reference.converged);
    for (int threads : {2, 8}) {
        expectIdentical(solveAt(threads, market, opts), reference,
                        "threads=" + std::to_string(threads));
    }
}

TEST(BiddingDeterminism, LossFaultsAreThreadCountIndependent)
{
    // Loss decisions come from counter-based per-(user, round)
    // substreams, so the realization — and hence the whole solve — is
    // a pure function of the seed at any thread count.
    const auto market = testMarket();
    BiddingOptions opts;
    opts.transport.lossRate = 0.3;
    opts.transport.seed = 0x10ad;
    const auto reference = solveAt(1, market, opts);
    for (int threads : {2, 8}) {
        expectIdentical(solveAt(threads, market, opts), reference,
                        "loss, threads=" + std::to_string(threads));
    }

    // Different seeds must produce different realizations (otherwise
    // the substreams are broken and the test above proves nothing).
    auto other = opts;
    other.transport.seed = 0xbeef;
    const auto different = solveAt(1, market, other);
    EXPECT_NE(different.iterations, 0);
    bool any_difference =
        different.iterations != reference.iterations;
    for (std::size_t i = 0; !any_difference && i < reference.bids.size();
         ++i) {
        any_difference = different.bids[i] != reference.bids[i];
    }
    EXPECT_TRUE(any_difference);
}

TEST(BiddingDeterminism, DeadlineBoundedSolveIsThreadCountIndependent)
{
    // The anytime iteration budget restores the best-so-far snapshot;
    // that snapshot selection must also be thread-count independent.
    const auto market = testMarket();
    BiddingOptions opts;
    opts.deadline.iterationBudget = 3;
    const auto reference = solveAt(1, market, opts);
    EXPECT_TRUE(reference.deadlineExpired);
    for (int threads : {2, 8}) {
        expectIdentical(solveAt(threads, market, opts), reference,
                        "deadline, threads=" + std::to_string(threads));
    }
}

TEST(BiddingDeterminism, GaussSeidelAndKnobsAreThreadCountIndependent)
{
    const auto market = testMarket(48, 8);
    BiddingOptions gs;
    gs.schedule = UpdateSchedule::GaussSeidel;
    expectIdentical(solveAt(8, market, gs), solveAt(1, market, gs),
                    "gauss-seidel");

    BiddingOptions damped;
    damped.damping = 0.7;
    const auto reference = solveAt(1, market, damped);
    expectIdentical(solveAt(8, market, damped), reference, "damped");

    BiddingOptions warm;
    warm.initialBids = reference.bids;
    expectIdentical(solveAt(8, market, warm),
                    solveAt(1, market, warm), "warm start");
}

TEST(BiddingDeterminism, TraceBytesAreThreadCountIndependent)
{
    const auto market = testMarket();
    BiddingOptions opts;
    opts.transport.lossRate = 0.1;
    opts.transport.seed = 0x7ace;
    auto capture = [&](int threads) {
        std::ostringstream os;
        obs::TraceSink sink(os);
        obs::TraceGuard guard(sink);
        solveAt(threads, market, opts);
        return os.str();
    };
    const std::string reference = capture(1);
    EXPECT_NE(reference.find("\"ev\":\"bidding_iter\""),
              std::string::npos);
    for (int threads : {2, 8})
        EXPECT_EQ(capture(threads), reference)
            << "trace diverged at " << threads << " threads";
}

TEST(BiddingDeterminism, MetricsAreThreadCountIndependentModuloSteal)
{
    // Every counter the solve path touches must match across thread
    // counts except exec.steal, which counts chunks run by pool
    // workers — scheduling telemetry, explicitly outside the
    // determinism contract (DESIGN.md §11).
    const auto market = testMarket();
    BiddingOptions opts;
    opts.transport.lossRate = 0.2;
    opts.transport.seed = 0x5eed;
    auto counterSamples = [&](int threads) {
        obs::metrics().reset();
        solveAt(threads, market, opts);
        auto snapshot = obs::metrics().snapshot();
        std::vector<std::pair<std::string, std::uint64_t>> out;
        for (const auto &c : snapshot.counters) {
            if (c.name != "exec.steal")
                out.emplace_back(c.name, c.value);
        }
        return out;
    };
    const auto reference = counterSamples(1);
    EXPECT_FALSE(reference.empty());
    for (int threads : {2, 8})
        EXPECT_EQ(counterSamples(threads), reference)
            << "counters diverged at " << threads << " threads";
}

TEST(BiddingDeterminism, KernelMatchesUpdateUserBidsExactly)
{
    // One Synchronous round, no damping: the solver's SoA kernel must
    // reproduce the reference per-user update bit for bit. This is
    // what licenses hoisting sqrt(f w) out of the iteration — both
    // paths use the factored propensity sqrt(f w) * sqrt(p) * s(x).
    const auto market = testMarket(32, 6);
    BiddingOptions opts;
    opts.maxIterations = 1;
    opts.priceTolerance = 1e-300; // never reached: exactly one round
    const auto one_round = solveAt(8, market, opts);

    // Reference: even-split bids, gather prices user-major, then the
    // public updateUserBids per user against those posted prices.
    const std::size_t n = market.userCount();
    const std::size_t m = market.serverCount();
    JobMatrix bids(n);
    std::vector<double> prices(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        const MarketUser &user = market.user(i);
        const double even =
            user.budget / static_cast<double>(user.jobs.size());
        bids[i].assign(user.jobs.size(), even);
        for (std::size_t k = 0; k < user.jobs.size(); ++k)
            prices[user.jobs[k].server] += even;
    }
    for (std::size_t j = 0; j < m; ++j)
        prices[j] /= market.capacity(j);
    for (std::size_t i = 0; i < n; ++i)
        updateUserBids(market.user(i), prices, bids[i]);

    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(one_round.bids[i].size(), bids[i].size());
        for (std::size_t k = 0; k < bids[i].size(); ++k)
            ASSERT_EQ(one_round.bids[i][k], bids[i][k])
                << "user " << i << " job " << k;
    }
}

} // namespace
} // namespace amdahl::core
