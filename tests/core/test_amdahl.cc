/**
 * @file
 * Unit tests for Amdahl's Law and the Karp-Flatt metric.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/amdahl.hh"

namespace amdahl::core {
namespace {

TEST(Amdahl, BoundaryValues)
{
    EXPECT_DOUBLE_EQ(amdahlSpeedup(0.9, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedup(0.9, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedup(0.0, 5.0), 1.0); // serial workload
    EXPECT_DOUBLE_EQ(amdahlSpeedup(1.0, 5.0), 5.0); // fully parallel
}

TEST(Amdahl, PaperEquationOneForm)
{
    // s(x) = x / (x (1 - F) + F): check a hand-computed point.
    // f = 0.5, x = 4: 4 / (4*0.5 + 0.5) = 1.6.
    EXPECT_DOUBLE_EQ(amdahlSpeedup(0.5, 4.0), 1.6);
}

TEST(Amdahl, AcceptsFractionalAllocations)
{
    const double s_half = amdahlSpeedup(0.8, 0.5);
    EXPECT_GT(s_half, 0.0);
    EXPECT_LT(s_half, 1.0);
    EXPECT_NEAR(s_half, 0.5 / (0.8 + 0.2 * 0.5), 1e-15);
}

TEST(Amdahl, MonotonicInAllocation)
{
    double prev = 0.0;
    for (double x = 0.0; x <= 64.0; x += 0.5) {
        const double s = amdahlSpeedup(0.9, x);
        EXPECT_GE(s, prev);
        prev = s;
    }
}

TEST(Amdahl, MonotonicInParallelFraction)
{
    double prev = 0.0;
    for (double f = 0.0; f <= 1.0; f += 0.05) {
        const double s = amdahlSpeedup(f, 16.0);
        EXPECT_GE(s, prev - 1e-12);
        prev = s;
    }
}

TEST(Amdahl, SpeedupBoundedByLimit)
{
    for (double f : {0.5, 0.9, 0.99}) {
        const double limit = amdahlSpeedupLimit(f);
        EXPECT_LT(amdahlSpeedup(f, 1e9), limit);
        EXPECT_NEAR(amdahlSpeedup(f, 1e9), limit, limit * 1e-6);
    }
}

TEST(Amdahl, LimitValues)
{
    EXPECT_DOUBLE_EQ(amdahlSpeedupLimit(0.5), 2.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedupLimit(0.9), 10.0);
    EXPECT_TRUE(std::isinf(amdahlSpeedupLimit(1.0)));
}

TEST(Amdahl, DerivativeMatchesFiniteDifference)
{
    const double h = 1e-7;
    for (double f : {0.3, 0.7, 0.95}) {
        for (double x : {0.5, 1.0, 4.0, 16.0}) {
            const double numeric =
                (amdahlSpeedup(f, x + h) - amdahlSpeedup(f, x - h)) /
                (2.0 * h);
            EXPECT_NEAR(amdahlSpeedupDerivative(f, x), numeric, 1e-5);
        }
    }
}

TEST(Amdahl, DomainEdgesAreWellDefined)
{
    // x = 0 and f = 1 corners must produce finite, meaningful values,
    // never inf/NaN: zero cores run nothing, a fully parallel job
    // scales linearly, and a serial job's speedup is constant 1 with
    // derivative 0 everywhere (including the 0/0 corner at x = 0).
    EXPECT_DOUBLE_EQ(amdahlSpeedup(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedup(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedup(1.0, 7.0), 7.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedupDerivative(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedupDerivative(0.0, 4.0), 0.0);
    EXPECT_DOUBLE_EQ(amdahlSpeedupDerivative(1.0, 0.0), 1.0);
}

TEST(Amdahl, DerivativeShowsDiminishingReturns)
{
    double prev = amdahlSpeedupDerivative(0.9, 0.0);
    for (double x = 1.0; x <= 32.0; x += 1.0) {
        const double d = amdahlSpeedupDerivative(0.9, x);
        EXPECT_LT(d, prev);
        EXPECT_GT(d, 0.0);
        prev = d;
    }
}

TEST(Amdahl, ValidatesInputs)
{
    EXPECT_THROW(amdahlSpeedup(-0.1, 1.0), FatalError);
    EXPECT_THROW(amdahlSpeedup(1.1, 1.0), FatalError);
    EXPECT_THROW(amdahlSpeedup(0.5, -1.0), FatalError);
    EXPECT_THROW(amdahlSpeedupDerivative(0.5, -1.0), FatalError);
    EXPECT_THROW(amdahlSpeedupLimit(2.0), FatalError);
}

TEST(KarpFlatt, InvertsAmdahlExactly)
{
    // F recovered from a noiseless Amdahl speedup equals f, for any
    // measurement core count (the Figure 1 flat-line property).
    for (double f : {0.55, 0.8, 0.97}) {
        for (double x : {2.0, 4.0, 8.0, 24.0, 48.0}) {
            const double s = amdahlSpeedup(f, x);
            EXPECT_NEAR(karpFlatt(s, x), f, 1e-12);
        }
    }
}

TEST(KarpFlatt, PaperEquationTwoForm)
{
    // F = (1 - 1/s)(1 - 1/x)^-1: hand-computed s=3, x=4 -> (2/3)/(3/4).
    EXPECT_NEAR(karpFlatt(3.0, 4.0), (2.0 / 3.0) / (3.0 / 4.0), 1e-15);
}

TEST(KarpFlatt, SubAmdahlSpeedupLowersEstimate)
{
    // Overheads reduce measured speedup below the Amdahl bound; the
    // estimate must drop below the true structural fraction.
    const double f = 0.9;
    const double x = 16.0;
    const double degraded = 0.8 * amdahlSpeedup(f, x);
    EXPECT_LT(karpFlatt(degraded, x), f);
}

TEST(KarpFlatt, SpeedupBelowOneGivesNegativeFraction)
{
    // A "slowdown" measurement yields F < 0; callers clamp.
    EXPECT_LT(karpFlatt(0.5, 8.0), 0.0);
}

TEST(KarpFlatt, ValidatesInputs)
{
    EXPECT_THROW(karpFlatt(0.0, 4.0), FatalError);
    EXPECT_THROW(karpFlatt(-1.0, 4.0), FatalError);
    EXPECT_THROW(karpFlatt(2.0, 0.5), FatalError);
}

TEST(KarpFlatt, SingleCoreIsWellDefined)
{
    // F is 0/0 at x = 1; the implementation returns the clamped limit
    // instead of inf/NaN: no measurable speedup means fully serial,
    // superlinear single-core "speedup" clamps to fully parallel.
    EXPECT_DOUBLE_EQ(karpFlatt(1.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(karpFlatt(0.5, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(karpFlatt(2.0, 1.0), 1.0);
    EXPECT_TRUE(std::isfinite(karpFlatt(1.0, 1.0)));
}

TEST(CoresForSpeedup, InvertsTheLaw)
{
    for (double f : {0.6, 0.9, 0.99}) {
        for (double target : {1.0, 1.5, 3.0}) {
            if (target >= amdahlSpeedupLimit(f))
                continue;
            const double x = coresForSpeedup(f, target);
            EXPECT_NEAR(amdahlSpeedup(f, x), target, 1e-9);
        }
    }
}

TEST(CoresForSpeedup, RejectsUnreachableTargets)
{
    EXPECT_THROW(coresForSpeedup(0.5, 2.0), FatalError);
    EXPECT_THROW(coresForSpeedup(0.5, 5.0), FatalError);
    EXPECT_THROW(coresForSpeedup(0.0, 1.5), FatalError);
}

} // namespace
} // namespace amdahl::core
