/**
 * @file
 * Unit tests for entitlement accounting (Figure 11's MAPE inputs).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/entitlement.hh"

namespace amdahl::core {
namespace {

FisherMarket
threeUserMarket()
{
    // The Section II-B example: three 12-core servers, equal
    // entitlements.
    FisherMarket market({12.0, 12.0, 12.0});
    market.addUser({"u1", 1.0, {{0, 0.9, 1.0}, {1, 0.9, 1.0}}});
    market.addUser({"u2", 1.0, {{1, 0.9, 1.0}, {2, 0.9, 1.0}}});
    market.addUser(
        {"u3", 1.0, {{0, 0.9, 1.0}, {1, 0.9, 1.0}, {2, 0.9, 1.0}}});
    return market;
}

TEST(Entitlement, EntitledCoresPerUser)
{
    const auto market = threeUserMarket();
    const auto entitled = entitledCoresPerUser(market);
    ASSERT_EQ(entitled.size(), 3u);
    for (double e : entitled)
        EXPECT_DOUBLE_EQ(e, 12.0);
}

TEST(Entitlement, AllocatedCoresPerUserSums)
{
    const auto market = threeUserMarket();
    const JobMatrix alloc = {{6.0, 4.0}, {4.0, 6.0}, {6.0, 4.0, 6.0}};
    const auto totals = allocatedCoresPerUser(market, alloc);
    EXPECT_DOUBLE_EQ(totals[0], 10.0);
    EXPECT_DOUBLE_EQ(totals[1], 10.0);
    EXPECT_DOUBLE_EQ(totals[2], 16.0);
}

TEST(Entitlement, IntegerOverload)
{
    const auto market = threeUserMarket();
    const std::vector<std::vector<int>> alloc = {
        {6, 4}, {4, 6}, {6, 4, 6}};
    const auto totals = allocatedCoresPerUser(market, alloc);
    EXPECT_DOUBLE_EQ(totals[2], 16.0);
}

TEST(Entitlement, MapeOfSectionTwoExample)
{
    // The Fair Share allocation (10, 10, 16) against entitlements
    // (12, 12, 12): per-user errors 2/12, 2/12, 4/12 -> mean 22.22%.
    const auto market = threeUserMarket();
    const JobMatrix alloc = {{6.0, 4.0}, {4.0, 6.0}, {6.0, 4.0, 6.0}};
    EXPECT_NEAR(entitlementMape(market, alloc), 100.0 * (8.0 / 36.0),
                1e-9);
}

TEST(Entitlement, PerfectAllocationHasZeroMape)
{
    // The trading allocation of Section II-B: everyone gets 12.
    const auto market = threeUserMarket();
    const JobMatrix alloc = {{8.0, 4.0}, {4.0, 8.0}, {4.0, 4.0, 4.0}};
    EXPECT_NEAR(entitlementMape(market, alloc), 0.0, 1e-12);
}

TEST(Entitlement, ShapeValidation)
{
    const auto market = threeUserMarket();
    EXPECT_THROW(allocatedCoresPerUser(market, JobMatrix{{1.0}}),
                 FatalError);
    const JobMatrix wrong_jobs = {{1.0}, {1.0, 2.0}, {1.0, 2.0, 3.0}};
    EXPECT_THROW(allocatedCoresPerUser(market, wrong_jobs), FatalError);
}

} // namespace
} // namespace amdahl::core
