/**
 * @file
 * Unit tests for CES utilities and the classical proportional-response
 * market.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/amdahl.hh"
#include "core/ces_market.hh"

namespace amdahl::core {
namespace {

TEST(CesUtility, ValueAndMarginal)
{
    const CesUtility u({2.0, 1.0}, 0.5);
    EXPECT_DOUBLE_EQ(u.value({2.0, 4.0}), std::sqrt(4.0) + 2.0);
    EXPECT_DOUBLE_EQ(u.jobValue(0, 2.0), 2.0);
    // d/dx (w x)^rho = rho w^rho x^(rho-1).
    EXPECT_NEAR(u.jobMarginal(0, 2.0),
                0.5 * std::sqrt(2.0) / std::sqrt(2.0), 1e-12);
}

TEST(CesUtility, MarginalMatchesFiniteDifference)
{
    const CesUtility u({1.5}, 0.7);
    const double h = 1e-7;
    const double numeric =
        (u.jobValue(0, 3.0 + h) - u.jobValue(0, 3.0 - h)) / (2.0 * h);
    EXPECT_NEAR(u.jobMarginal(0, 3.0), numeric, 1e-6);
}

TEST(CesUtility, ValidatesConstruction)
{
    EXPECT_THROW(CesUtility({}, 0.5), FatalError);
    EXPECT_THROW(CesUtility({1.0}, 0.0), FatalError);
    EXPECT_THROW(CesUtility({1.0}, 1.5), FatalError);
    EXPECT_THROW(CesUtility({0.0}, 0.5), FatalError);
}

TEST(CesUtility, DemandExhaustsBudgetAndIsOptimal)
{
    const CesUtility u({2.0, 1.0, 1.5}, 0.4);
    const std::vector<double> prices = {0.2, 0.5, 0.3};
    const double budget = 3.0;
    const auto x = u.demand(prices, budget);

    double spent = 0.0;
    for (std::size_t j = 0; j < x.size(); ++j)
        spent += prices[j] * x[j];
    EXPECT_NEAR(spent, budget, 1e-9);

    // KKT: marginal utility per dollar equal across jobs.
    const double ratio0 = u.jobMarginal(0, x[0]) / prices[0];
    for (std::size_t j = 1; j < x.size(); ++j) {
        EXPECT_NEAR(u.jobMarginal(j, x[j]) / prices[j], ratio0,
                    1e-6 * ratio0);
    }

    // Local perturbations cannot improve.
    const double best = u.value(x);
    for (double shift : {-0.1, 0.1}) {
        auto y = x;
        y[0] += shift / prices[0];
        y[1] -= shift / prices[1];
        if (y[0] <= 0.0 || y[1] <= 0.0)
            continue;
        EXPECT_LE(u.value(y), best + 1e-9);
    }
}

TEST(CesUtility, LinearDemandPicksBestRatio)
{
    const CesUtility u({3.0, 1.0}, 1.0);
    const auto x = u.demand({1.0, 1.0}, 2.0);
    EXPECT_DOUBLE_EQ(x[0], 2.0);
    EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(CesMarket, ValidatesConstruction)
{
    EXPECT_THROW(CesMarket({}), FatalError);
    EXPECT_THROW(CesMarket({0.0}), FatalError);

    CesMarket market({10.0});
    EXPECT_THROW(market.addUser({"x", 0.0, 0.5, {{0, 1.0}}}),
                 FatalError);
    EXPECT_THROW(market.addUser({"x", 1.0, 1.0, {{0, 1.0}}}),
                 FatalError); // rho must be < 1 for PRD
    EXPECT_THROW(market.addUser({"x", 1.0, 0.5, {}}), FatalError);
    EXPECT_THROW(market.addUser({"x", 1.0, 0.5, {{3, 1.0}}}),
                 FatalError);
}

TEST(CesMarket, PrdClearsAndExhaustsBudgets)
{
    CesMarket market({8.0, 12.0});
    market.addUser({"a", 1.0, 0.5, {{0, 1.0}, {1, 2.0}}});
    market.addUser({"b", 2.0, 0.3, {{0, 2.0}, {1, 1.0}}});
    const auto r = solveCesMarket(market);
    ASSERT_TRUE(r.converged);

    std::vector<double> load(2, 0.0);
    for (std::size_t i = 0; i < 2; ++i) {
        const auto &jobs = market.user(i).jobs;
        double spent = 0.0;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            load[jobs[k].server] += r.allocation[i][k];
            spent += r.bids[i][k];
        }
        EXPECT_NEAR(spent, market.user(i).budget, 1e-9);
    }
    EXPECT_NEAR(load[0], 8.0, 1e-6);
    EXPECT_NEAR(load[1], 12.0, 1e-6);
}

TEST(CesMarket, PrdFixedPointMatchesClosedFormDemand)
{
    // At equilibrium prices, each user's allocation must equal her
    // closed-form CES demand.
    CesMarket market({10.0, 10.0});
    market.addUser({"a", 1.0, 0.5, {{0, 1.0}, {1, 3.0}}});
    market.addUser({"b", 1.5, 0.6, {{0, 2.0}, {1, 1.0}}});
    CesOptions opts;
    opts.priceTolerance = 1e-11;
    const auto r = solveCesMarket(market, opts);
    ASSERT_TRUE(r.converged);

    for (std::size_t i = 0; i < 2; ++i) {
        const auto &user = market.user(i);
        std::vector<double> weights, prices;
        for (const auto &job : user.jobs) {
            weights.push_back(job.weight);
            prices.push_back(r.prices[job.server]);
        }
        const CesUtility utility(weights, user.rho);
        const auto demand = utility.demand(prices, user.budget);
        for (std::size_t k = 0; k < demand.size(); ++k)
            EXPECT_NEAR(r.allocation[i][k], demand[k], 1e-5);
    }
}

TEST(CesMarket, SymmetricUsersSplitEvenly)
{
    CesMarket market({9.0});
    market.addUser({"a", 1.0, 0.5, {{0, 1.0}}});
    market.addUser({"b", 2.0, 0.5, {{0, 1.0}}});
    const auto r = solveCesMarket(market);
    EXPECT_NEAR(r.allocation[0][0], 3.0, 1e-6);
    EXPECT_NEAR(r.allocation[1][0], 6.0, 1e-6);
}

TEST(CesMarket, ValidateDetectsOrphanServer)
{
    CesMarket market({4.0, 4.0});
    market.addUser({"a", 1.0, 0.5, {{0, 1.0}}});
    EXPECT_THROW(solveCesMarket(market), FatalError);
}

TEST(FitCesToAmdahl, RecoversNearLinearCurves)
{
    // f near 1: speedup ~ x, so rho ~ 1 and the fit is tight.
    double scale = 0.0, rho = 0.0;
    const double err = fitCesToAmdahl(0.99, 24, scale, rho);
    EXPECT_GT(rho, 0.85);
    EXPECT_LT(err, 0.05);
}

TEST(FitCesToAmdahl, SaturatingCurvesFitPoorly)
{
    double scale_hi = 0.0, rho_hi = 0.0;
    double scale_lo = 0.0, rho_lo = 0.0;
    const double err_hi = fitCesToAmdahl(0.99, 24, scale_hi, rho_hi);
    const double err_lo = fitCesToAmdahl(0.55, 24, scale_lo, rho_lo);
    EXPECT_GT(err_lo, err_hi);
    EXPECT_LT(rho_lo, rho_hi); // saturating curve -> smaller exponent
}

TEST(FitCesToAmdahl, ValidatesInputs)
{
    double s = 0.0, r = 0.0;
    EXPECT_THROW(fitCesToAmdahl(0.0, 24, s, r), FatalError);
    EXPECT_THROW(fitCesToAmdahl(1.0, 24, s, r), FatalError);
    EXPECT_THROW(fitCesToAmdahl(0.9, 1, s, r), FatalError);
}

} // namespace
} // namespace amdahl::core
