/**
 * @file
 * Unit tests for the Fisher market description and equilibrium
 * verification.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/bidding.hh"
#include "core/market.hh"

namespace amdahl::core {
namespace {

FisherMarket
aliceBobMarket()
{
    FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 1.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 1.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});
    return market;
}

TEST(Market, BasicAccessors)
{
    const auto market = aliceBobMarket();
    EXPECT_EQ(market.userCount(), 2u);
    EXPECT_EQ(market.serverCount(), 2u);
    EXPECT_DOUBLE_EQ(market.capacity(0), 10.0);
    EXPECT_DOUBLE_EQ(market.totalBudget(), 2.0);
    EXPECT_DOUBLE_EQ(market.totalCores(), 20.0);
    EXPECT_EQ(market.user(0).name, "Alice");
}

TEST(Market, EntitlementAccounting)
{
    FisherMarket market({12.0, 12.0, 12.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"b", 3.0, {{1, 0.9, 1.0}, {2, 0.8, 1.0}}});
    EXPECT_DOUBLE_EQ(market.entitlementShare(0), 0.25);
    EXPECT_DOUBLE_EQ(market.entitlementShare(1), 0.75);
    EXPECT_DOUBLE_EQ(market.entitledCores(0), 9.0);
    EXPECT_DOUBLE_EQ(market.entitledCores(1), 27.0);
    EXPECT_DOUBLE_EQ(market.entitledCoresOnServer(0, 2), 3.0);
}

TEST(Market, UtilityOfBuildsFromJobs)
{
    const auto market = aliceBobMarket();
    const auto u = market.utilityOf(0);
    EXPECT_EQ(u.size(), 2u);
    EXPECT_DOUBLE_EQ(u.term(0).parallelFraction, 0.53);
    EXPECT_DOUBLE_EQ(u.term(1).parallelFraction, 0.93);
}

TEST(Market, ValidatesConstruction)
{
    EXPECT_THROW(FisherMarket({}), FatalError);
    EXPECT_THROW(FisherMarket({0.0}), FatalError);
    EXPECT_THROW(FisherMarket({-2.0}), FatalError);
}

TEST(Market, ValidatesUsers)
{
    FisherMarket market({10.0});
    EXPECT_THROW(market.addUser({"x", 0.0, {{0, 0.5, 1.0}}}),
                 FatalError);
    EXPECT_THROW(market.addUser({"x", 1.0, {}}), FatalError);
    EXPECT_THROW(market.addUser({"x", 1.0, {{1, 0.5, 1.0}}}),
                 FatalError);
    EXPECT_THROW(market.addUser({"x", 1.0, {{0, 1.5, 1.0}}}),
                 FatalError);
    EXPECT_THROW(market.addUser({"x", 1.0, {{0, 0.5, 0.0}}}),
                 FatalError);
}

TEST(Market, ValidateRejectsEmptyAndBidderlessServers)
{
    FisherMarket empty({10.0});
    EXPECT_THROW(empty.validate(), FatalError);

    FisherMarket orphan({10.0, 10.0});
    orphan.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    EXPECT_THROW(orphan.validate(), FatalError);

    FisherMarket ok({10.0, 10.0});
    ok.addUser({"a", 1.0, {{0, 0.9, 1.0}, {1, 0.8, 1.0}}});
    EXPECT_NO_THROW(ok.validate());
}

TEST(Market, OutcomeHelpers)
{
    const auto market = aliceBobMarket();
    MarketOutcome outcome;
    outcome.allocation = {{1.0, 9.0}, {9.0, 1.0}};
    EXPECT_DOUBLE_EQ(outcome.userCores(0), 10.0);
    EXPECT_DOUBLE_EQ(outcome.serverLoad(market, 0), 10.0);
    EXPECT_DOUBLE_EQ(outcome.serverLoad(market, 1), 10.0);
    EXPECT_THROW(outcome.userCores(5), FatalError);
}

TEST(Market, VerifyAcceptsTrueEquilibrium)
{
    const auto market = aliceBobMarket();
    BiddingOptions opts;
    opts.priceTolerance = 1e-12;
    const auto result = solveAmdahlBidding(market, opts);
    const auto check = verifyEquilibrium(market, result);
    EXPECT_TRUE(check.pass(1e-6));
}

TEST(Market, VerifyRejectsNonClearingAllocation)
{
    const auto market = aliceBobMarket();
    BiddingOptions opts;
    opts.priceTolerance = 1e-12;
    auto result = solveAmdahlBidding(market, opts);
    result.allocation[0][0] *= 0.5; // Break market clearing.
    const auto check = verifyEquilibrium(market, result);
    EXPECT_FALSE(check.pass(1e-6));
    EXPECT_GT(check.maxClearingResidual, 1e-3);
}

TEST(Market, VerifyRejectsSuboptimalAllocation)
{
    const auto market = aliceBobMarket();
    BiddingOptions opts;
    opts.priceTolerance = 1e-12;
    auto result = solveAmdahlBidding(market, opts);
    // Swap Alice's allocations: still feasible and budget-exhausting if
    // prices were equal, but strictly worse for her utility.
    std::swap(result.allocation[0][0], result.allocation[0][1]);
    std::swap(result.allocation[1][0], result.allocation[1][1]);
    const auto check = verifyEquilibrium(market, result);
    EXPECT_GT(check.maxOptimalityGap, 0.01);
}

TEST(Market, VerifyChecksShapes)
{
    const auto market = aliceBobMarket();
    MarketOutcome outcome;
    outcome.prices = {0.1};
    EXPECT_THROW(verifyEquilibrium(market, outcome), FatalError);
}

} // namespace
} // namespace amdahl::core
