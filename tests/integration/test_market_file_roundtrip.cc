/**
 * @file
 * Integration: serialize generated markets to the text format, parse
 * them back, and verify the round-tripped market solves to the same
 * equilibrium — the CLI's data path, exercised on non-trivial content.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/bidding.hh"
#include "core/market_io.hh"
#include "eval/experiment.hh"
#include "sim/workload_library.hh"

namespace amdahl {
namespace {

TEST(MarketFileRoundTrip, GeneratedPopulationsSolveIdentically)
{
    eval::CharacterizationCache cache;
    for (std::uint64_t seed : {401u, 402u}) {
        Rng rng(seed);
        eval::PopulationOptions opts;
        opts.users = 15;
        opts.serverMultiplier = 0.5;
        opts.density = 8;
        opts.workloadCount = sim::workloadLibrary().size();
        const auto pop = eval::generatePopulation(rng, opts);
        const auto market = eval::buildMarket(
            pop, cache, eval::FractionSource::Estimated);

        std::ostringstream os;
        core::writeMarket(os, market);
        // Generated markets may give one user several jobs on one
        // server; the round-trip of our own serialization is trusted,
        // so relax the tenant-facing duplicate rejection.
        core::MarketParseOptions relaxed;
        relaxed.rejectDuplicateServerJobs = false;
        auto reparse = core::tryParseMarketString(os.str(), relaxed);
        ASSERT_TRUE(reparse.ok()) << reparse.status().toString();
        const auto reparsed = reparse.take();

        core::BiddingOptions bopts;
        bopts.priceTolerance = 1e-8;
        bopts.maxIterations = 50000;
        const auto original = core::solveAmdahlBidding(market, bopts);
        const auto roundtrip =
            core::solveAmdahlBidding(reparsed, bopts);
        ASSERT_TRUE(original.converged);
        ASSERT_TRUE(roundtrip.converged);

        for (std::size_t j = 0; j < market.serverCount(); ++j) {
            EXPECT_NEAR(original.prices[j], roundtrip.prices[j],
                        1e-6 * original.prices[j])
                << "seed " << seed << " server " << j;
        }
        for (std::size_t i = 0; i < market.userCount(); ++i) {
            for (std::size_t k = 0;
                 k < original.allocation[i].size(); ++k) {
                EXPECT_NEAR(original.allocation[i][k],
                            roundtrip.allocation[i][k], 1e-4)
                    << "seed " << seed << " user " << i;
            }
        }
    }
}

TEST(MarketFileRoundTrip, PrecisionSurvivesTextForm)
{
    // Fractions round-trip exactly: writeMarket emits max_digits10.
    core::FisherMarket market({10.0});
    market.addUser({"u", 1.0, {{0, 0.9349862, 1.0}}});
    std::ostringstream os;
    core::writeMarket(os, market);
    const auto reparsed = core::parseMarketString(os.str());
    EXPECT_DOUBLE_EQ(reparsed.user(0).jobs[0].parallelFraction,
                     0.9349862);
}

} // namespace
} // namespace amdahl
