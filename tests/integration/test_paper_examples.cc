/**
 * @file
 * Integration tests against the paper's worked examples.
 *
 * These lock the reproduction to the concrete numbers printed in the
 * paper: the Section II-B three-user motivation and the Section V-B/C
 * Alice/Bob market.
 */

#include <gtest/gtest.h>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/proportional_share.hh"
#include "core/bidding.hh"
#include "core/entitlement.hh"
#include "sim/task_sim.hh"
#include "sim/workload_library.hh"

namespace amdahl {
namespace {

TEST(PaperExamples, SectionTwoFairShareViolatesAggregateEntitlements)
{
    // Three users with equal entitlements on three 12-core servers;
    // demands u1=(8,4,0), u2=(0,4,8), u3=(8,8,8). Fair Share gives
    // 10/10/16 cores in aggregate — violating the 12/12/12
    // entitlement.
    core::FisherMarket market({12.0, 12.0, 12.0});
    market.addUser({"u1", 1.0, {{0, 0.9, 1.0}, {1, 0.9, 1.0}}});
    market.addUser({"u2", 1.0, {{1, 0.9, 1.0}, {2, 0.9, 1.0}}});
    market.addUser(
        {"u3", 1.0, {{0, 0.9, 1.0}, {1, 0.9, 1.0}, {2, 0.9, 1.0}}});

    const alloc::ProportionalShare ps(std::vector<std::vector<double>>{
        {8.0, 4.0}, {4.0, 8.0}, {8.0, 8.0, 8.0}});
    const auto result = ps.allocate(market);
    EXPECT_EQ(result.userCores(0), 10);
    EXPECT_EQ(result.userCores(1), 10);
    EXPECT_EQ(result.userCores(2), 16);

    // Everyone was entitled to 12 cores.
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(market.entitledCores(i), 12.0);
}

TEST(PaperExamples, SectionTwoTradingAllocationIsEquilibriumLike)
{
    // The paper's preferred allocation — u1=(8,4,0), u2=(0,4,8),
    // u3=(4,4,4) — satisfies aggregate entitlements exactly. The
    // market reproduces the *aggregate* fairness property.
    core::FisherMarket market({12.0, 12.0, 12.0});
    market.addUser({"u1", 1.0, {{0, 0.95, 1.0}, {1, 0.80, 1.0}}});
    market.addUser({"u2", 1.0, {{1, 0.80, 1.0}, {2, 0.95, 1.0}}});
    market.addUser(
        {"u3", 1.0, {{0, 0.9, 1.0}, {1, 0.9, 1.0}, {2, 0.9, 1.0}}});

    const auto r = core::solveAmdahlBidding(market);
    ASSERT_TRUE(r.converged);
    // Users 1 and 2 shift cores toward their more parallel jobs; user
    // 3 receives roughly even allocations; all receive at least their
    // entitled utility.
    for (std::size_t i = 0; i < 3; ++i) {
        const auto u = market.utilityOf(i);
        std::vector<double> ent(market.user(i).jobs.size());
        for (std::size_t k = 0; k < ent.size(); ++k) {
            ent[k] = market.entitledCoresOnServer(
                i, market.user(i).jobs[k].server);
        }
        EXPECT_GE(u.value(r.allocation[i]), u.value(ent) - 1e-9);
    }
    EXPECT_GT(r.allocation[0][0], r.allocation[0][1]);
    EXPECT_GT(r.allocation[1][1], r.allocation[1][0]);
}

TEST(PaperExamples, SectionFiveAliceBobFullPipeline)
{
    // Run the complete mechanism (bidding + rounding) on the paper's
    // Alice/Bob example, using parallel fractions *measured from the
    // simulated workloads themselves* rather than the paper's numbers.
    sim::TaskSimulator simulator;
    auto fraction_of = [&](const char *name) {
        const auto &w = sim::findWorkload(name);
        // Quick Karp-Flatt at 16 cores on the full dataset.
        const double s = simulator.speedup(w, w.datasetGB, 16);
        return (1.0 - 1.0 / s) / (1.0 - 1.0 / 16.0);
    };

    core::FisherMarket market({10.0, 10.0});
    market.addUser({"Alice",
                    1.0,
                    {{0, fraction_of("dedup"), 1.0},
                     {1, fraction_of("bodytrack"), 1.0}}});
    market.addUser({"Bob",
                    1.0,
                    {{0, fraction_of("x264"), 1.0},
                     {1, fraction_of("raytrace"), 1.0}}});

    const alloc::AmdahlBiddingPolicy ab;
    const auto result = ab.allocate(market);
    EXPECT_TRUE(result.outcome.converged);

    // Qualitative reproduction: Alice concentrates on server D
    // (bodytrack >> dedup parallelism), Bob on server C.
    EXPECT_GT(result.cores[0][1], result.cores[0][0]);
    EXPECT_GT(result.cores[1][0], result.cores[1][1]);
    // Servers exactly allocated.
    EXPECT_EQ(result.cores[0][0] + result.cores[1][0], 10);
    EXPECT_EQ(result.cores[0][1] + result.cores[1][1], 10);
}

TEST(PaperExamples, EquilibriumPricesSatisfyBudgetIdentity)
{
    // Paper Eq. 6: sum_j C_j p_j = B.
    core::FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 1.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 1.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});
    const auto r = core::solveAmdahlBidding(market);
    const double lhs =
        10.0 * r.prices[0] + 10.0 * r.prices[1];
    EXPECT_NEAR(lhs, market.totalBudget(), 1e-9);
}

TEST(PaperExamples, EntitledAllocationIsAffordableAtEquilibrium)
{
    // The fairness proof's key step: sum_j x_ent_ij p_j = b_i.
    core::FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 2.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 3.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});
    const auto r = core::solveAmdahlBidding(market);
    for (std::size_t i = 0; i < 2; ++i) {
        double cost = 0.0;
        for (std::size_t j = 0; j < 2; ++j)
            cost += market.entitledCoresOnServer(i, j) * r.prices[j];
        EXPECT_NEAR(cost, market.user(i).budget, 1e-9);
    }
}

} // namespace
} // namespace amdahl
