/**
 * @file
 * Malformed-input corpus: nothing crosses the trust boundary.
 *
 * Every file under tests/data/malformed/ is a hostile or corrupted
 * input for one of the three ingestion paths — market files
 * (market_*.txt), raw CSV (csv_*.csv), and profile CSV
 * (profile_*.csv). The contract under test: each produces a
 * *structured* error — classified kind, diagnostic message — and
 * never a crash, an uncaught exception, or a silently accepted value.
 *
 * A prefix-truncation fuzz pass complements the corpus: every byte
 * prefix of a known-good document must either parse cleanly or fail
 * with a structured error, so no truncation point leaves the parser
 * in a throwing or crashing state.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.hh"
#include "common/status.hh"
#include "core/market_io.hh"
#include "profiling/profile_io.hh"

namespace amdahl {
namespace {

namespace fs = std::filesystem;

fs::path
corpusDir()
{
    return fs::path(AMDAHL_TEST_DATA_DIR) / "malformed";
}

std::vector<fs::path>
corpusFiles(const std::string &prefix)
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(corpusDir())) {
        if (entry.path().filename().string().rfind(prefix, 0) == 0)
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(MalformedCorpus, CorpusIsPresent)
{
    ASSERT_TRUE(fs::exists(corpusDir()))
        << "missing corpus dir " << corpusDir();
    EXPECT_GE(corpusFiles("market_").size(), 10u);
    EXPECT_GE(corpusFiles("csv_").size(), 4u);
    EXPECT_GE(corpusFiles("profile_").size(), 6u);
}

TEST(MalformedCorpus, MarketFilesProduceStructuredErrors)
{
    for (const auto &path : corpusFiles("market_")) {
        SCOPED_TRACE(path.filename().string());
        auto result = core::loadMarket(path.string());
        ASSERT_FALSE(result.ok())
            << "malformed market accepted: " << path;
        EXPECT_FALSE(result.status().message().empty());
        // Kind is one of the taxonomy's values and prints cleanly.
        EXPECT_FALSE(
            std::string(toString(result.status().kind())).empty());
    }
}

TEST(MalformedCorpus, CsvFilesProduceStructuredErrors)
{
    for (const auto &path : corpusFiles("csv_")) {
        SCOPED_TRACE(path.filename().string());
        std::ifstream in(path);
        ASSERT_TRUE(in.good());
        auto result = parseCsv(in);
        ASSERT_FALSE(result.ok()) << "malformed CSV accepted: " << path;
        EXPECT_FALSE(result.status().toString().empty());
    }
}

TEST(MalformedCorpus, ProfileFilesProduceStructuredErrors)
{
    for (const auto &path : corpusFiles("profile_")) {
        SCOPED_TRACE(path.filename().string());
        auto result =
            profiling::loadProfileCsv(path.string(), "corpus");
        ASSERT_FALSE(result.ok())
            << "malformed profile accepted: " << path;
        EXPECT_FALSE(result.status().message().empty());
    }
}

TEST(MalformedCorpus, MissingFileIsAnIoError)
{
    auto market = core::loadMarket(
        (corpusDir() / "no_such_file.txt").string());
    ASSERT_FALSE(market.ok());
    EXPECT_EQ(market.status().kind(), ErrorKind::IoError);

    auto profile = profiling::loadProfileCsv(
        (corpusDir() / "no_such_file.csv").string(), "missing");
    ASSERT_FALSE(profile.ok());
    EXPECT_EQ(profile.status().kind(), ErrorKind::IoError);
}

// --- Prefix-truncation fuzz ------------------------------------------

const char kGoodMarket[] =
    "# comment line\n"
    "servers 10 10\n"
    "user Alice budget 1.5\n"
    "job server 0 fraction 0.53 weight 2\n"
    "job server 1 fraction 0.93\n"
    "user Bob budget 1\n"
    "job server 0 fraction 0.96\n"
    "job server 1 fraction 0.68\n";

const char kGoodProfile[] =
    "dataset_gb,cores,seconds\n"
    "1.0,1,100\n"
    "1.0,2,60\n"
    "1.0,4,40\n"
    "2.0,1,210\n"
    "2.0,2,120\n"
    "2.0,4,75\n";

const char kGoodCsv[] =
    "name,\"the value\",note\n"
    "alpha,1,\"line\nbreak\"\n"
    "beta,2,\"say \"\"hi\"\"\"\n"
    "gamma,3,plain\r\n";

TEST(MalformedCorpus, EveryMarketPrefixIsOkOrStructuredError)
{
    const std::string text(kGoodMarket);
    int ok_count = 0;
    for (std::size_t n = 0; n <= text.size(); ++n) {
        auto result = core::tryParseMarketString(text.substr(0, n));
        if (result.ok()) {
            ++ok_count;
        } else {
            EXPECT_FALSE(result.status().message().empty());
        }
    }
    // The full document parses; so do prefixes ending after a
    // complete user block.
    EXPECT_GT(ok_count, 0);
    EXPECT_TRUE(core::tryParseMarketString(text).ok());
}

TEST(MalformedCorpus, EveryProfilePrefixIsOkOrStructuredError)
{
    const std::string text(kGoodProfile);
    for (std::size_t n = 0; n <= text.size(); ++n) {
        auto result = profiling::tryParseProfileCsvString(
            text.substr(0, n), "fuzz");
        if (!result.ok()) {
            EXPECT_FALSE(result.status().message().empty());
        }
    }
    EXPECT_TRUE(
        profiling::tryParseProfileCsvString(text, "fuzz").ok());
}

TEST(MalformedCorpus, EveryCsvPrefixIsOkOrStructuredError)
{
    const std::string text(kGoodCsv);
    for (std::size_t n = 0; n <= text.size(); ++n) {
        auto result = parseCsvString(text.substr(0, n));
        if (!result.ok()) {
            EXPECT_FALSE(result.status().toString().empty());
        }
    }
    EXPECT_TRUE(parseCsvString(text).ok());
}

// Single-character corruption at every position of a valid market:
// flip each byte to a hostile value and require ok-or-structured.
TEST(MalformedCorpus, SingleByteCorruptionNeverEscapes)
{
    const std::string text(kGoodMarket);
    const char hostile[] = {'\0', '"', '-', 'x', '\xff'};
    for (char c : hostile) {
        for (std::size_t pos = 0; pos < text.size(); ++pos) {
            std::string mutated = text;
            mutated[pos] = c;
            auto result = core::tryParseMarketString(mutated);
            if (!result.ok()) {
                EXPECT_FALSE(result.status().message().empty());
            }
        }
    }
}

} // namespace
} // namespace amdahl
