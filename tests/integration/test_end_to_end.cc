/**
 * @file
 * End-to-end integration tests: profile -> estimate -> market ->
 * round -> measure, over random populations.
 */

#include <gtest/gtest.h>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/best_response.hh"
#include "alloc/proportional_share.hh"
#include "core/entitlement.hh"
#include "eval/experiment.hh"
#include "eval/metrics.hh"
#include "sim/workload_library.hh"

namespace amdahl {
namespace {

eval::Population
makePopulation(std::uint64_t seed, int users, int density)
{
    Rng rng(seed);
    eval::PopulationOptions opts;
    opts.users = users;
    opts.serverMultiplier = 0.5;
    opts.density = density;
    opts.workloadCount = sim::workloadLibrary().size();
    return eval::generatePopulation(rng, opts);
}

TEST(EndToEnd, FullPipelineProducesValidAllocation)
{
    const auto pop = makePopulation(11, 24, 10);
    eval::CharacterizationCache cache;
    const auto market =
        eval::buildMarket(pop, cache, eval::FractionSource::Estimated);

    const alloc::AmdahlBiddingPolicy ab;
    const auto result = ab.allocate(market);
    ASSERT_TRUE(result.outcome.converged);

    // Every server's cores fully and exactly allocated.
    std::vector<int> load(pop.serverCount, 0);
    for (std::size_t i = 0; i < pop.userCount(); ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            EXPECT_GE(result.cores[i][k], 0);
            load[jobs[k].server] += result.cores[i][k];
        }
    }
    for (std::size_t j = 0; j < pop.serverCount; ++j)
        EXPECT_EQ(load[j], pop.coresPerServer) << "server " << j;

    // Measured progress is positive and at least entitlement-like.
    eval::ProgressEvaluator evaluator(cache);
    EXPECT_GT(evaluator.systemProgress(pop, result.cores), 1.0);
}

TEST(EndToEnd, EquilibriumVerifiesOnRandomPopulations)
{
    for (std::uint64_t seed : {21u, 22u, 23u}) {
        const auto pop = makePopulation(seed, 18, 8);
        eval::CharacterizationCache cache;
        const auto market = eval::buildMarket(
            pop, cache, eval::FractionSource::Estimated);
        // PRD has a slow geometric tail on instances where a bid
        // decays toward a corner; 1e-7 on prices is far tighter than
        // the 1e-3 equilibrium residual this test verifies.
        core::BiddingOptions opts;
        opts.priceTolerance = 1e-7;
        opts.maxIterations = 50000;
        const auto r = core::solveAmdahlBidding(market, opts);
        ASSERT_TRUE(r.converged) << "seed " << seed;
        const auto check = core::verifyEquilibrium(market, r);
        EXPECT_TRUE(check.pass(1e-3))
            << "seed " << seed << ": clearing "
            << check.maxClearingResidual << ", budget "
            << check.maxBudgetResidual << ", optimality "
            << check.maxOptimalityGap;
    }
}

TEST(EndToEnd, EntitlementDominanceHoldsAcrossPopulation)
{
    const auto pop = makePopulation(31, 30, 12);
    eval::CharacterizationCache cache;
    const auto market =
        eval::buildMarket(pop, cache, eval::FractionSource::Estimated);
    const auto r = core::solveAmdahlBidding(market);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto u = market.utilityOf(i);
        std::vector<double> ent(market.user(i).jobs.size());
        for (std::size_t k = 0; k < ent.size(); ++k) {
            ent[k] = market.entitledCoresOnServer(
                i, market.user(i).jobs[k].server);
        }
        EXPECT_GE(u.value(r.allocation[i]), u.value(ent) - 1e-6)
            << "user " << i;
    }
}

TEST(EndToEnd, AbAndBrConvergeAtHighDensity)
{
    // Section VI-B: as density increases, price-anticipating users
    // become price-taking and BR's Nash approaches AB's equilibrium.
    const auto dense = makePopulation(41, 16, 20);
    eval::CharacterizationCache cache;
    const auto market = eval::buildMarket(
        dense, cache, eval::FractionSource::Estimated);

    const auto ab = alloc::AmdahlBiddingPolicy().allocate(market);
    const auto br = alloc::BestResponsePolicy().allocate(market);

    const auto ab_cores = core::allocatedCoresPerUser(
        market, ab.outcome.allocation);
    const auto br_cores = core::allocatedCoresPerUser(
        market, br.outcome.allocation);
    double total_diff = 0.0, total = 0.0;
    for (std::size_t i = 0; i < ab_cores.size(); ++i) {
        total_diff += std::abs(ab_cores[i] - br_cores[i]);
        total += ab_cores[i];
    }
    // Aggregate per-user allocations differ by under 15%.
    EXPECT_LT(total_diff / total, 0.15);
}

TEST(EndToEnd, MarketBeatsProportionalShareOnMeasuredProgress)
{
    eval::CharacterizationCache cache;
    eval::ProgressEvaluator evaluator(cache);
    double ab_wins = 0, trials = 0;
    for (std::uint64_t seed : {51u, 52u, 53u}) {
        const auto pop = makePopulation(seed, 24, 16);
        const auto market = eval::buildMarket(
            pop, cache, eval::FractionSource::Estimated);
        const auto ab = alloc::AmdahlBiddingPolicy().allocate(market);
        const auto ps = alloc::ProportionalShare().allocate(market);
        const double ab_prog =
            evaluator.systemProgress(pop, ab.cores);
        const double ps_prog =
            evaluator.systemProgress(pop, ps.cores);
        ab_wins += ab_prog > ps_prog;
        trials += 1;
    }
    EXPECT_EQ(ab_wins, trials);
}

TEST(EndToEnd, HeterogeneousClusterClearsEveryServer)
{
    // Mixed-generation cluster: 12- and 24-core servers. The market
    // must clear each server at its own capacity.
    Rng rng(77);
    eval::PopulationOptions opts;
    opts.users = 20;
    opts.serverMultiplier = 0.5;
    opts.density = 10;
    opts.coreChoices = {12, 24};
    opts.workloadCount = sim::workloadLibrary().size();
    const auto pop = eval::generatePopulation(rng, opts);

    eval::CharacterizationCache cache;
    const auto market =
        eval::buildMarket(pop, cache, eval::FractionSource::Estimated);
    const auto result = alloc::AmdahlBiddingPolicy().allocate(market);

    std::vector<int> load(pop.serverCount, 0);
    for (std::size_t i = 0; i < pop.userCount(); ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k)
            load[jobs[k].server] += result.cores[i][k];
    }
    for (std::size_t j = 0; j < pop.serverCount; ++j)
        EXPECT_EQ(load[j], pop.coresOf(j)) << "server " << j;

    // And measured progress is still computable (allocations never
    // exceed the characterization simulator's 24-core server).
    eval::ProgressEvaluator evaluator(cache);
    EXPECT_GT(evaluator.systemProgress(pop, result.cores), 0.0);
}

TEST(EndToEnd, EstimatedFractionsAreGoodEnoughForAllocation)
{
    // Allocations from estimated fractions should be close to those
    // from measured fractions (the estimation pipeline's whole point).
    const auto pop = makePopulation(61, 20, 12);
    eval::CharacterizationCache cache;
    const auto est_market = eval::buildMarket(
        pop, cache, eval::FractionSource::Estimated);
    const auto meas_market = eval::buildMarket(
        pop, cache, eval::FractionSource::Measured);
    const auto est = alloc::AmdahlBiddingPolicy().allocate(est_market);
    const auto meas =
        alloc::AmdahlBiddingPolicy().allocate(meas_market);

    const auto est_cores = core::allocatedCoresPerUser(
        est_market, est.outcome.allocation);
    const auto meas_cores = core::allocatedCoresPerUser(
        meas_market, meas.outcome.allocation);
    for (std::size_t i = 0; i < est_cores.size(); ++i)
        EXPECT_NEAR(est_cores[i], meas_cores[i],
                    0.2 * meas_cores[i] + 1.0);
}

} // namespace
} // namespace amdahl
