/**
 * @file
 * Unit tests for the market-invariant contract layer: every checker
 * accepts clean states, rejects each violation class with PanicError
 * (a contract break is a library bug, never a caller error), and the
 * check.hh macros behave per build configuration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.hh"
#include "common/invariants.hh"
#include "common/logging.hh"

namespace amdahl::invariants {
namespace {

constexpr double nan_v = std::numeric_limits<double>::quiet_NaN();
constexpr double inf_v = std::numeric_limits<double>::infinity();

TEST(CheckParallelFraction, AcceptsTheClosedUnitInterval)
{
    EXPECT_NO_THROW(CheckParallelFraction(0.0, "test"));
    EXPECT_NO_THROW(CheckParallelFraction(0.5, "test"));
    EXPECT_NO_THROW(CheckParallelFraction(1.0, "test"));
}

TEST(CheckParallelFraction, RejectsOutOfRangeAndNonFinite)
{
    EXPECT_THROW(CheckParallelFraction(-0.01, "test"), PanicError);
    EXPECT_THROW(CheckParallelFraction(1.01, "test"), PanicError);
    EXPECT_THROW(CheckParallelFraction(nan_v, "test"), PanicError);
    EXPECT_THROW(CheckParallelFraction(inf_v, "test"), PanicError);
    EXPECT_THROW(CheckParallelFraction(-inf_v, "test"), PanicError);
}

TEST(CheckMarketState, AcceptsPositivePricesAndNonNegativeBids)
{
    EXPECT_NO_THROW(CheckMarketState({1.0, 0.25},
                                     {{0.5, 0.0}, {0.25, 2.0}},
                                     "test"));
    // Empty bid matrix is fine (prices can be audited standalone).
    EXPECT_NO_THROW(CheckMarketState({2.0}, {}, "test"));
}

TEST(CheckMarketState, RejectsBadPrices)
{
    EXPECT_THROW(CheckMarketState({0.0}, {}, "test"), PanicError);
    EXPECT_THROW(CheckMarketState({-1.0}, {}, "test"), PanicError);
    EXPECT_THROW(CheckMarketState({nan_v}, {}, "test"), PanicError);
    EXPECT_THROW(CheckMarketState({inf_v}, {}, "test"), PanicError);
    EXPECT_THROW(CheckMarketState({1.0, 0.0}, {}, "test"), PanicError);
}

TEST(CheckMarketState, RejectsBadBids)
{
    EXPECT_THROW(CheckMarketState({1.0}, {{-0.1}}, "test"), PanicError);
    EXPECT_THROW(CheckMarketState({1.0}, {{nan_v}}, "test"),
                 PanicError);
    EXPECT_THROW(CheckMarketState({1.0}, {{0.5}, {inf_v}}, "test"),
                 PanicError);
}

TEST(CheckBidBudgets, AcceptsConservedBudgets)
{
    EXPECT_NO_THROW(CheckBidBudgets({{0.6, 0.4}, {2.0}}, {1.0, 2.0},
                                    1e-9, "test"));
    // Drift inside tolerance passes.
    EXPECT_NO_THROW(CheckBidBudgets({{1.0 + 1e-12}}, {1.0}, 1e-9,
                                    "test"));
}

TEST(CheckBidBudgets, RejectsDriftAndShapeMismatch)
{
    // Over- and under-spending beyond tolerance.
    EXPECT_THROW(CheckBidBudgets({{0.5, 0.4}}, {1.0}, 1e-9, "test"),
                 PanicError);
    EXPECT_THROW(CheckBidBudgets({{1.1}}, {1.0}, 1e-9, "test"),
                 PanicError);
    // User count mismatch.
    EXPECT_THROW(CheckBidBudgets({{1.0}}, {1.0, 2.0}, 1e-9, "test"),
                 PanicError);
    // Non-positive budget and non-finite spend.
    EXPECT_THROW(CheckBidBudgets({{0.0}}, {0.0}, 1e-9, "test"),
                 PanicError);
    EXPECT_THROW(CheckBidBudgets({{nan_v}}, {1.0}, 1e-9, "test"),
                 PanicError);
}

TEST(CheckAllocationFeasible, AcceptsLoadsWithinCapacity)
{
    EXPECT_NO_THROW(CheckAllocationFeasible({24.0, 12.0}, {24.0, 24.0},
                                            1e-9, "test"));
    // Exactly clearing with tolerance-level excess passes.
    EXPECT_NO_THROW(CheckAllocationFeasible({24.0 + 1e-9}, {24.0},
                                            1e-6, "test"));
    EXPECT_NO_THROW(CheckAllocationFeasible({0.0}, {24.0}, 1e-9,
                                            "test"));
}

TEST(CheckAllocationFeasible, RejectsOverloadAndBadShapes)
{
    EXPECT_THROW(CheckAllocationFeasible({25.0}, {24.0}, 1e-6, "test"),
                 PanicError);
    EXPECT_THROW(CheckAllocationFeasible({1.0, 1.0}, {24.0}, 1e-6,
                                         "test"),
                 PanicError);
    EXPECT_THROW(CheckAllocationFeasible({-0.5}, {24.0}, 1e-6, "test"),
                 PanicError);
    EXPECT_THROW(CheckAllocationFeasible({nan_v}, {24.0}, 1e-6,
                                         "test"),
                 PanicError);
    EXPECT_THROW(CheckAllocationFeasible({1.0}, {0.0}, 1e-6, "test"),
                 PanicError);
}

TEST(CheckMacros, MatchBuildConfiguration)
{
    // checkedBuild mirrors the AMDAHL_CHECKED compile definition; the
    // macros fire only in checked builds and are inert (but still
    // type-checked and side-effect free) otherwise.
    int evaluations = 0;
    auto count = [&evaluations]() {
        ++evaluations;
        return true;
    };
    AMDAHL_ASSERT(count(), "must never fire on a true condition");
    if constexpr (checkedBuild) {
        EXPECT_EQ(evaluations, 1);
        EXPECT_THROW(AMDAHL_ASSERT(1 == 2, "fires"), PanicError);
        EXPECT_THROW(AMDAHL_CHECK_FINITE(nan_v), PanicError);
        EXPECT_THROW(AMDAHL_CHECK_FINITE(inf_v), PanicError);
        EXPECT_NO_THROW(AMDAHL_CHECK_FINITE(1.0));
    } else {
        // Unevaluated: the condition's side effects never run.
        EXPECT_EQ(evaluations, 0);
        EXPECT_NO_THROW(AMDAHL_ASSERT(1 == 2, "inert"));
        EXPECT_NO_THROW(AMDAHL_CHECK_FINITE(nan_v));
    }
}

} // namespace
} // namespace amdahl::invariants
