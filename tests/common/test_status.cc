/**
 * @file
 * Unit tests for the Status/Result trust-boundary error types.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/logging.hh"
#include "common/status.hh"

namespace amdahl {
namespace {

TEST(Status, OkIsOk)
{
    const auto st = Status::ok();
    EXPECT_TRUE(st.isOk());
    EXPECT_EQ(st.line(), 0);
    EXPECT_TRUE(st.message().empty());
}

TEST(Status, ErrorCarriesKindLineAndMessage)
{
    const auto st = Status::error(ErrorKind::DomainError, 7,
                                  "budget ", 3.5, " is too rich");
    EXPECT_FALSE(st.isOk());
    EXPECT_EQ(st.kind(), ErrorKind::DomainError);
    EXPECT_EQ(st.line(), 7);
    EXPECT_EQ(st.message(), "budget 3.5 is too rich");
    EXPECT_EQ(st.toString(), "domain error at line 7: budget 3.5 is "
                             "too rich");
}

TEST(Status, ZeroLineOmitsLineFromDiagnostic)
{
    const auto st =
        Status::error(ErrorKind::IoError, 0, "cannot open file");
    EXPECT_EQ(st.toString(), "io error: cannot open file");
}

TEST(Status, KindLabelsCoverTheTaxonomy)
{
    EXPECT_STREQ(toString(ErrorKind::ParseError), "parse error");
    EXPECT_STREQ(toString(ErrorKind::DomainError), "domain error");
    EXPECT_STREQ(toString(ErrorKind::SemanticError), "semantic error");
    EXPECT_STREQ(toString(ErrorKind::IoError), "io error");
}

TEST(Result, HoldsValue)
{
    Result<int> r(42);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.take(), 42);
}

TEST(Result, HoldsStatus)
{
    Result<int> r(
        Status::error(ErrorKind::ParseError, 3, "bad token"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().kind(), ErrorKind::ParseError);
    EXPECT_EQ(r.status().line(), 3);
}

TEST(Result, ValueOnFailurePanics)
{
    Result<int> r(Status::error(ErrorKind::ParseError, 1, "nope"));
    EXPECT_THROW((void)r.value(), PanicError);
    EXPECT_THROW((void)r.take(), PanicError);
}

TEST(Result, OkStatusWithoutValuePanics)
{
    EXPECT_THROW(Result<int>(Status::ok()), PanicError);
}

TEST(Result, OrFatalReturnsValueOrThrowsFatal)
{
    Result<std::string> good(std::string("fine"));
    EXPECT_EQ(good.orFatal(), "fine");

    Result<std::string> bad(
        Status::error(ErrorKind::SemanticError, 9, "inconsistent"));
    try {
        bad.orFatal();
        FAIL() << "orFatal did not throw";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("semantic error"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("line 9"),
                  std::string::npos);
    }
}

} // namespace
} // namespace amdahl
