/**
 * @file
 * Unit tests for statistical summaries.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace amdahl {
namespace {

TEST(OnlineStats, EmptyAccumulator)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleObservation)
{
    OnlineStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(OnlineStats, KnownMeanAndVariance)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic textbook sample
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_NEAR(s.sampleVariance(), 32.0 / 7.0, 1e-12);
}

TEST(OnlineStats, TracksExtremes)
{
    OnlineStats s;
    for (double x : {3.0, -1.0, 7.0, 2.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(OnlineStats, MergeMatchesSequential)
{
    OnlineStats whole, left, right;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10.0;
        whole.add(x);
        (i < 20 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity)
{
    OnlineStats s, empty;
    s.add(1.0);
    s.add(3.0);
    s.merge(empty);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);

    OnlineStats other;
    other.merge(s);
    EXPECT_EQ(other.count(), 2u);
    EXPECT_DOUBLE_EQ(other.mean(), 2.0);
}

TEST(Stats, MeanOfVector)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, MeanOfEmptyIsFatal)
{
    EXPECT_THROW(mean({}), FatalError);
}

TEST(Stats, VarianceOfVector)
{
    EXPECT_DOUBLE_EQ(variance({1.0, 1.0, 1.0}), 0.0);
    EXPECT_DOUBLE_EQ(variance({0.0, 2.0}), 1.0);
}

TEST(Stats, GeometricMeanKnownValues)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(Stats, GeometricMeanRejectsNonPositive)
{
    EXPECT_THROW(geometricMean({1.0, 0.0}), FatalError);
    EXPECT_THROW(geometricMean({-2.0}), FatalError);
    EXPECT_THROW(geometricMean({}), FatalError);
}

TEST(Stats, QuantileEndpoints)
{
    const std::vector<double> xs = {3.0, 1.0, 2.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 3.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.0);
}

TEST(Stats, QuantileInterpolates)
{
    // Type-7 interpolation: q=0.25 on {1,2,3,4} is 1.75.
    EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.25), 1.75);
}

TEST(Stats, QuantileValidatesInput)
{
    EXPECT_THROW(quantile({}, 0.5), FatalError);
    EXPECT_THROW(quantile({1.0}, -0.1), FatalError);
    EXPECT_THROW(quantile({1.0}, 1.1), FatalError);
}

TEST(Stats, BoxplotFiveNumberSummary)
{
    const auto b = boxplot({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_DOUBLE_EQ(b.min, 1.0);
    EXPECT_DOUBLE_EQ(b.q1, 2.0);
    EXPECT_DOUBLE_EQ(b.median, 3.0);
    EXPECT_DOUBLE_EQ(b.q3, 4.0);
    EXPECT_DOUBLE_EQ(b.max, 5.0);
}

TEST(Stats, MapeKnownValue)
{
    // |10-8|/8 = 0.25 and |6-6|/6 = 0 -> mean 12.5%.
    EXPECT_NEAR(
        meanAbsolutePercentageError({10.0, 6.0}, {8.0, 6.0}), 12.5,
        1e-12);
}

TEST(Stats, MapeValidatesInput)
{
    EXPECT_THROW(meanAbsolutePercentageError({1.0}, {1.0, 2.0}),
                 FatalError);
    EXPECT_THROW(meanAbsolutePercentageError({1.0}, {0.0}), FatalError);
    EXPECT_THROW(meanAbsolutePercentageError({}, {}), FatalError);
}

TEST(Stats, MaeKnownValue)
{
    EXPECT_DOUBLE_EQ(meanAbsoluteError({1.0, 5.0}, {2.0, 3.0}), 1.5);
}

TEST(Stats, MaeValidatesInput)
{
    EXPECT_THROW(meanAbsoluteError({1.0}, {}), FatalError);
    EXPECT_THROW(meanAbsoluteError({}, {}), FatalError);
}

} // namespace
} // namespace amdahl
