/**
 * @file
 * Unit tests for the small numeric helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace amdahl {
namespace {

TEST(MathUtil, ApproxEqualExactValues)
{
    EXPECT_TRUE(approxEqual(1.0, 1.0));
    EXPECT_TRUE(approxEqual(0.0, 0.0));
    EXPECT_TRUE(approxEqual(-3.5, -3.5));
}

TEST(MathUtil, ApproxEqualRelativeTolerance)
{
    EXPECT_TRUE(approxEqual(1e9, 1e9 * (1.0 + 1e-10)));
    EXPECT_FALSE(approxEqual(1e9, 1e9 * 1.01));
}

TEST(MathUtil, ApproxEqualAbsoluteToleranceNearZero)
{
    EXPECT_TRUE(approxEqual(0.0, 1e-13));
    EXPECT_FALSE(approxEqual(0.0, 1e-6));
    EXPECT_TRUE(approxEqual(0.0, 1e-6, 1e-9, 1e-5));
}

TEST(MathUtil, SumOfVector)
{
    EXPECT_DOUBLE_EQ(sum({1.0, 2.0, 3.5}), 6.5);
    EXPECT_DOUBLE_EQ(sum({}), 0.0);
    EXPECT_DOUBLE_EQ(sum({-1.0, 1.0}), 0.0);
}

TEST(MathUtil, MaxAbsDiff)
{
    EXPECT_DOUBLE_EQ(maxAbsDiff({1.0, 5.0}, {1.5, 4.0}), 1.0);
    EXPECT_DOUBLE_EQ(maxAbsDiff({}, {}), 0.0);
    // Extra entries in the longer vector are ignored (min length).
    EXPECT_DOUBLE_EQ(maxAbsDiff({1.0}, {1.0, 100.0}), 0.0);
}

TEST(MathUtil, ClampTo)
{
    EXPECT_DOUBLE_EQ(clampTo(5.0, 0.0, 10.0), 5.0);
    EXPECT_DOUBLE_EQ(clampTo(-1.0, 0.0, 10.0), 0.0);
    EXPECT_DOUBLE_EQ(clampTo(11.0, 0.0, 10.0), 10.0);
    EXPECT_DOUBLE_EQ(clampTo(0.0, 0.0, 0.0), 0.0);
}

TEST(Logging, LevelFiltersWarnings)
{
    const LogLevel original = setLogLevel(LogLevel::Quiet);
    ::testing::internal::CaptureStderr();
    warn("should be suppressed");
    inform("also suppressed");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    warn("visible warning");
    inform("still suppressed");
    const std::string warn_only =
        ::testing::internal::GetCapturedStderr();
    EXPECT_NE(warn_only.find("warn: visible warning"),
              std::string::npos);
    EXPECT_EQ(warn_only.find("info:"), std::string::npos);

    setLogLevel(LogLevel::Inform);
    ::testing::internal::CaptureStderr();
    inform("now visible");
    EXPECT_NE(::testing::internal::GetCapturedStderr().find(
                  "info: now visible"),
              std::string::npos);
    setLogLevel(original);
}

} // namespace
} // namespace amdahl
