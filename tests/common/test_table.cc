/**
 * @file
 * Unit tests for the console table printer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace amdahl {
namespace {

TEST(Table, FormatDoubleFixedPrecision)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatDouble(1.0, 3), "1.000");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(Table, RendersHeaderSeparatorAndRows)
{
    TablePrinter t;
    t.addColumn("name", TablePrinter::Align::Left);
    t.addColumn("value");
    t.addRow({"alpha", "1"});
    t.addRow({"b", "23"});
    const std::string out = t.toString();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    // Right-aligned "1" under "value": padded to width 5.
    EXPECT_NE(out.find("    1"), std::string::npos);
}

TEST(Table, FluentRowBuilding)
{
    TablePrinter t;
    t.addColumn("a");
    t.addColumn("b");
    t.beginRow().cell(1).cell(2.5, 1);
    t.beginRow().cell("x").cell(std::size_t{7});
    EXPECT_EQ(t.toString().find("2.5") != std::string::npos, true);
    EXPECT_EQ(t.rowCount(), 2u); // toString() flushed the pending row
}

TEST(Table, RowArityIsChecked)
{
    TablePrinter t;
    t.addColumn("only");
    EXPECT_THROW(t.addRow({"a", "b"}), FatalError);
}

TEST(Table, PendingRowArityCheckedAtRender)
{
    TablePrinter t;
    t.addColumn("a");
    t.addColumn("b");
    t.beginRow().cell("just one");
    EXPECT_THROW(t.toString(), FatalError);
}

TEST(Table, CellWithoutBeginRowIsFatal)
{
    TablePrinter t;
    t.addColumn("a");
    EXPECT_THROW(t.cell("x"), FatalError);
}

TEST(Table, TooManyCellsIsFatal)
{
    TablePrinter t;
    t.addColumn("a");
    t.beginRow().cell("1");
    EXPECT_THROW(t.cell("2"), FatalError);
}

TEST(Table, AddColumnAfterRowsIsFatal)
{
    TablePrinter t;
    t.addColumn("a");
    t.addRow({"1"});
    EXPECT_THROW(t.addColumn("late"), FatalError);
}

TEST(Table, PrintWritesToStream)
{
    TablePrinter t;
    t.addColumn("x");
    t.addRow({"42"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(Table, WriteCsvMatchesContent)
{
    TablePrinter t;
    t.addColumn("name", TablePrinter::Align::Left);
    t.addColumn("v");
    t.addRow({"a,b", "1"});
    std::ostringstream os;
    EXPECT_TRUE(t.writeCsv(os).isOk());
    EXPECT_EQ(os.str(), "name,v\n\"a,b\",1\n");
}

TEST(Table, AccessorsFlushPendingRow)
{
    TablePrinter t;
    t.addColumn("x");
    t.beginRow().cell("7");
    EXPECT_EQ(t.dataRows().size(), 1u);
    EXPECT_EQ(t.columnHeaders(), (std::vector<std::string>{"x"}));
    EXPECT_EQ(t.dataRows()[0][0], "7");
}

TEST(Sparkline, EmptyAndDegenerateInputs)
{
    EXPECT_EQ(sparkline({}), "");
    EXPECT_EQ(sparkline({1.0, 2.0}, 0), "");
}

TEST(Sparkline, ConstantSeriesRendersMidHeight)
{
    const std::string s = sparkline({5.0, 5.0, 5.0});
    EXPECT_EQ(s, "▄▄▄"); // three mid-height blocks
}

TEST(Sparkline, MonotoneSeriesStartsLowEndsHigh)
{
    const std::string s = sparkline({0.0, 1.0, 2.0, 3.0});
    // First glyph is the lowest block, last is the full block.
    EXPECT_EQ(s.substr(0, 3), "▁");
    EXPECT_EQ(s.substr(s.size() - 3), "█");
}

TEST(Sparkline, DownsamplesLongSeries)
{
    std::vector<double> values(1000);
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = static_cast<double>(i);
    const std::string s = sparkline(values, 10);
    // 10 glyphs, 3 bytes each (UTF-8 block elements).
    EXPECT_EQ(s.size(), 30u);
}

TEST(Table, WriteJsonEmitsRowObjects)
{
    TablePrinter t;
    t.addColumn("policy", TablePrinter::Align::Left);
    t.addColumn("speedup");
    t.beginRow().cell("AB").cell(3.25, 2);
    t.beginRow().cell("PS").cell(1.5, 1);
    std::ostringstream os;
    EXPECT_TRUE(t.writeJson(os).isOk());
    EXPECT_EQ(os.str(), "[\n"
                        " {\"policy\": \"AB\", \"speedup\": \"3.25\"},\n"
                        " {\"policy\": \"PS\", \"speedup\": \"1.5\"}\n"
                        "]\n");
}

TEST(Table, WriteJsonEscapesSpecials)
{
    TablePrinter t;
    t.addColumn("name");
    t.addRow({"say \"hi\"\\\n"});
    std::ostringstream os;
    EXPECT_TRUE(t.writeJson(os).isOk());
    EXPECT_EQ(os.str(), "[\n"
                        " {\"name\": \"say \\\"hi\\\"\\\\\\n\"}\n"
                        "]\n");
}

TEST(Table, WriteJsonEmptyTable)
{
    TablePrinter t;
    t.addColumn("only");
    std::ostringstream os;
    EXPECT_TRUE(t.writeJson(os).isOk());
    EXPECT_EQ(os.str(), "[]\n");
}

TEST(Table, LeftAlignmentPadsRight)
{
    TablePrinter t;
    t.addColumn("col", TablePrinter::Align::Left);
    t.addRow({"abcdef"});
    t.addRow({"x"});
    const std::string out = t.toString();
    EXPECT_NE(out.find("x     \n"), std::string::npos);
}

} // namespace
} // namespace amdahl
