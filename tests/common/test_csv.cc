/**
 * @file
 * Unit tests for the CSV writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hh"
#include "common/logging.hh"

namespace amdahl {
namespace {

TEST(Csv, WritesHeaderOnConstruction)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    EXPECT_EQ(os.str(), "a,b\n");
}

TEST(Csv, WritesRows)
{
    std::ostringstream os;
    CsvWriter csv(os, {"x", "y"});
    csv.writeRow({"1", "2"});
    csv.writeRow({"3", "4"});
    EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(Csv, RejectsEmptyHeader)
{
    std::ostringstream os;
    EXPECT_THROW(CsvWriter(os, {}), FatalError);
}

TEST(Csv, RejectsWrongArity)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    EXPECT_THROW(csv.writeRow({"only one"}), FatalError);
}

TEST(Csv, EscapePassesPlainFields)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, EscapeQuotesCommas)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapeDoublesEmbeddedQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapeQuotesNewlines)
{
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, RowWithSpecialCharactersRoundTrips)
{
    std::ostringstream os;
    CsvWriter csv(os, {"c"});
    csv.writeRow({"v1,v2"});
    EXPECT_EQ(os.str(), "c\n\"v1,v2\"\n");
}

} // namespace
} // namespace amdahl
