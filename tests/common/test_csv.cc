/**
 * @file
 * Unit tests for the CSV writer and the validated reader.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hh"
#include "common/logging.hh"

namespace amdahl {
namespace {

TEST(Csv, WritesHeaderOnConstruction)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    EXPECT_EQ(os.str(), "a,b\n");
}

TEST(Csv, WritesRows)
{
    std::ostringstream os;
    CsvWriter csv(os, {"x", "y"});
    csv.writeRow({"1", "2"});
    csv.writeRow({"3", "4"});
    EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
    EXPECT_EQ(csv.rowsWritten(), 2u);
}

TEST(Csv, RejectsEmptyHeader)
{
    std::ostringstream os;
    EXPECT_THROW(CsvWriter(os, {}), FatalError);
}

TEST(Csv, RejectsWrongArity)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b"});
    EXPECT_THROW(csv.writeRow({"only one"}), FatalError);
}

TEST(Csv, EscapePassesPlainFields)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, EscapeQuotesCommas)
{
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
}

TEST(Csv, EscapeDoublesEmbeddedQuotes)
{
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, EscapeQuotesNewlines)
{
    EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, RowWithSpecialCharactersRoundTrips)
{
    std::ostringstream os;
    CsvWriter csv(os, {"c"});
    csv.writeRow({"v1,v2"});
    EXPECT_EQ(os.str(), "c\n\"v1,v2\"\n");
}

// --- Reader ----------------------------------------------------------

TEST(CsvReader, ParsesPlainTable)
{
    auto result = parseCsvString("a,b,c\n1,2,3\n4,5,6\n");
    ASSERT_TRUE(result.ok()) << result.status().toString();
    const auto table = result.take();
    EXPECT_EQ(table.header,
              (std::vector<std::string>{"a", "b", "c"}));
    ASSERT_EQ(table.rows.size(), 2u);
    EXPECT_EQ(table.rows[1],
              (std::vector<std::string>{"4", "5", "6"}));
    EXPECT_EQ(table.columnIndex("b"), 1u);
    EXPECT_EQ(table.columnIndex("missing"), CsvTable::npos);
}

TEST(CsvReader, HandlesQuotesCrlfAndEmbeddedNewlines)
{
    auto result = parseCsvString(
        "h1,h2\r\n\"a,b\",\"line\nbreak\"\r\n\"say \"\"hi\"\"\",x\n");
    ASSERT_TRUE(result.ok()) << result.status().toString();
    const auto table = result.take();
    ASSERT_EQ(table.rows.size(), 2u);
    EXPECT_EQ(table.rows[0][0], "a,b");
    EXPECT_EQ(table.rows[0][1], "line\nbreak");
    EXPECT_EQ(table.rows[1][0], "say \"hi\"");
}

TEST(CsvReader, SkipsBlankLines)
{
    auto result = parseCsvString("a\n\n1\n\n2\n\n");
    ASSERT_TRUE(result.ok()) << result.status().toString();
    EXPECT_EQ(result.value().rows.size(), 2u);
}

TEST(CsvReader, EmptyInputIsParseError)
{
    auto result = parseCsvString("");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().kind(), ErrorKind::ParseError);
}

TEST(CsvReader, UnterminatedQuoteIsParseErrorWithLine)
{
    auto result = parseCsvString("a,b\n1,\"oops\n");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().kind(), ErrorKind::ParseError);
    EXPECT_EQ(result.status().line(), 2);
}

TEST(CsvReader, DataAfterClosingQuoteIsParseError)
{
    auto result = parseCsvString("a,b\n\"closed\" smuggled,2\n");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().kind(), ErrorKind::ParseError);
}

TEST(CsvReader, QuoteMidFieldIsParseError)
{
    auto result = parseCsvString("a\nval\"ue\n");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().kind(), ErrorKind::ParseError);
}

TEST(CsvReader, RaggedRowIsSemanticErrorUnlessAllowed)
{
    const std::string text = "a,b\n1,2,3\n";
    auto strict = parseCsvString(text);
    ASSERT_FALSE(strict.ok());
    EXPECT_EQ(strict.status().kind(), ErrorKind::SemanticError);
    EXPECT_EQ(strict.status().line(), 2);

    CsvParseOptions opts;
    opts.allowRagged = true;
    auto relaxed = parseCsvString(text, opts);
    ASSERT_TRUE(relaxed.ok());
    EXPECT_EQ(relaxed.value().rows[0],
              (std::vector<std::string>{"1", "2"}));
}

TEST(CsvReader, RowCapIsSemanticError)
{
    CsvParseOptions opts;
    opts.maxRows = 2;
    auto result = parseCsvString("a\n1\n2\n3\n", opts);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().kind(), ErrorKind::SemanticError);
}

TEST(CsvReader, WriterOutputRoundTrips)
{
    std::ostringstream os;
    CsvWriter csv(os, {"k", "v"});
    csv.writeRow({"plain", "a,b"});
    csv.writeRow({"quoted \"q\"", "multi\nline"});
    auto result = parseCsvString(os.str());
    ASSERT_TRUE(result.ok()) << result.status().toString();
    const auto table = result.take();
    ASSERT_EQ(table.rows.size(), 2u);
    EXPECT_EQ(table.rows[0][1], "a,b");
    EXPECT_EQ(table.rows[1][0], "quoted \"q\"");
    EXPECT_EQ(table.rows[1][1], "multi\nline");
}

} // namespace
} // namespace amdahl
