/**
 * @file
 * Unit tests for the logging/error-reporting facilities.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace amdahl {
namespace {

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad input"), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("broken invariant"), PanicError);
}

TEST(Logging, FatalMessageIsPrefixedAndConcatenated)
{
    try {
        fatal("value ", 42, " is wrong");
        FAIL() << "fatal() returned";
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "fatal: value 42 is wrong");
    }
}

TEST(Logging, PanicMessageIsPrefixed)
{
    try {
        panic("x=", 1.5);
        FAIL() << "panic() returned";
    } catch (const PanicError &err) {
        EXPECT_STREQ(err.what(), "panic: x=1.5");
    }
}

TEST(Logging, FatalIsARuntimeError)
{
    // Library users should be able to catch the std hierarchy.
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Logging, PanicIsALogicError)
{
    EXPECT_THROW(panic("x"), std::logic_error);
}

TEST(Logging, EnsurePassesOnTrue)
{
    EXPECT_NO_THROW(ensure(true, "never shown"));
}

TEST(Logging, EnsurePanicsOnFalse)
{
    EXPECT_THROW(ensure(false, "invariant ", 7), PanicError);
}

TEST(Logging, SetLogLevelReturnsPrevious)
{
    const LogLevel original = logLevel();
    const LogLevel before = setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(before, original);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(original);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    const LogLevel original = setLogLevel(LogLevel::Quiet);
    EXPECT_NO_THROW(warn("suppressed warning ", 1));
    EXPECT_NO_THROW(inform("suppressed info ", 2));
    setLogLevel(original);
}

} // namespace
} // namespace amdahl
