/**
 * @file
 * Unit tests for the shared JSON helpers (common/json.hh) — the one
 * escaping/formatting implementation behind TablePrinter::writeJson,
 * the metrics exporters, and the trace sink.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "common/json.hh"
#include "common/table.hh"

namespace amdahl {
namespace {

TEST(Json, EscapesQuotesAndBackslashes)
{
    EXPECT_EQ(jsonEscape("plain"), "\"plain\"");
    EXPECT_EQ(jsonEscape("say \"hi\""), "\"say \\\"hi\\\"\"");
    EXPECT_EQ(jsonEscape("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(jsonEscape("C:\\path\\\"x\""),
              "\"C:\\\\path\\\\\\\"x\\\"\"");
}

TEST(Json, EscapesControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\nb"), "\"a\\nb\"");
    EXPECT_EQ(jsonEscape("a\tb"), "\"a\\tb\"");
    EXPECT_EQ(jsonEscape("a\rb"), "\"a\\rb\"");
    // Other C0 controls take the \u00XX form.
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\"\\u0001\"");
    EXPECT_EQ(jsonEscape(std::string(1, '\x1f')), "\"\\u001f\"");
    // 0x7f and non-ASCII bytes pass through untouched.
    EXPECT_EQ(jsonEscape("\x7f"), "\"\x7f\"");
}

TEST(Json, AppendVariantMatchesEscape)
{
    std::string out = "prefix:";
    appendJsonEscaped(out, "a\"b");
    EXPECT_EQ(out, "prefix:\"a\\\"b\"");
}

TEST(Json, NumberNonFiniteIsNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
              "null");
}

TEST(Json, NumberIntegersStayIntegers)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(60.0), "60");
    EXPECT_EQ(jsonNumber(-17.0), "-17");
    EXPECT_EQ(jsonNumber(1e6), "1000000");
}

TEST(Json, NumberRoundTripsExactly)
{
    for (double v : {0.1, 1.0 / 3.0, 3.8593122034517444e-12, -2.5,
                     1e300, 5e-324}) {
        const std::string text = jsonNumber(v);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), v)
            << "round-trip failed for " << text;
    }
}

TEST(Json, NumberPrefersShortForm)
{
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(0.1), "0.1");
}

TEST(Json, TablePrinterUsesSharedEscaping)
{
    TablePrinter t;
    t.addColumn("name", TablePrinter::Align::Left);
    t.addColumn("value");
    t.addRow({"quote\"backslash\\", "1"});
    std::ostringstream os;
    EXPECT_TRUE(t.writeJson(os).isOk());
    const std::string out = os.str();
    EXPECT_NE(out.find("quote\\\"backslash\\\\"), std::string::npos)
        << out;
}

} // namespace
} // namespace amdahl
