/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "common/logging.hh"
#include "common/random.hh"

namespace amdahl {
namespace {

TEST(Random, SameSeedSameStream)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Random, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, UniformMeanIsCentered)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Random, UniformRejectsInvertedBounds)
{
    Rng rng(1);
    EXPECT_THROW(rng.uniform(2.0, 1.0), FatalError);
}

TEST(Random, UniformIntCoversFullInclusiveRange)
{
    Rng rng(17);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(1, 5));
    EXPECT_EQ(seen.size(), 5u);
    EXPECT_EQ(*seen.begin(), 1);
    EXPECT_EQ(*seen.rbegin(), 5);
}

TEST(Random, UniformIntDegenerateRange)
{
    Rng rng(19);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Random, UniformIntHandlesNegativeRanges)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(-10, -5);
        EXPECT_GE(v, -10);
        EXPECT_LE(v, -5);
    }
}

TEST(Random, UniformIntRejectsInvertedBounds)
{
    Rng rng(1);
    EXPECT_THROW(rng.uniformInt(5, 4), FatalError);
}

TEST(Random, UniformIntIsRoughlyUnbiased)
{
    Rng rng(29);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[static_cast<std::size_t>(rng.uniformInt(0, 9))];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Random, GaussianMomentsAreStandard)
{
    Rng rng(31);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Random, GaussianScaledMoments)
{
    Rng rng(37);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Random, BernoulliEdgeCases)
{
    Rng rng(41);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Random, BernoulliFrequencyMatchesP)
{
    Rng rng(43);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Random, PoissonZeroMean)
{
    Rng rng(61);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Random, PoissonMomentsMatch)
{
    Rng rng(67);
    const double lambda = 3.0;
    const int n = 50000;
    double sum = 0.0, sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const int k = rng.poisson(lambda);
        EXPECT_GE(k, 0);
        sum += k;
        sq += static_cast<double>(k) * k;
    }
    const double mean_hat = sum / n;
    const double var_hat = sq / n - mean_hat * mean_hat;
    EXPECT_NEAR(mean_hat, lambda, 0.05);
    EXPECT_NEAR(var_hat, lambda, 0.15);
}

TEST(Random, PoissonRejectsNegativeMean)
{
    Rng rng(71);
    EXPECT_THROW(rng.poisson(-1.0), FatalError);
}

TEST(Random, WeightedIndexRespectsWeights)
{
    Rng rng(47);
    std::vector<double> weights = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(weights)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Random, WeightedIndexRejectsDegenerateInput)
{
    Rng rng(53);
    EXPECT_THROW(rng.weightedIndex({0.0, 0.0}), FatalError);
    EXPECT_THROW(rng.weightedIndex({-1.0, 2.0}), FatalError);
}

TEST(Random, SplitProducesIndependentStream)
{
    Rng parent(59);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += parent.next() == child.next();
    EXPECT_LT(equal, 3);
}

TEST(Random, SplitMix64KnownFirstOutputs)
{
    // Reference values from the SplitMix64 reference implementation
    // seeded with 0.
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
}

TEST(Random, Mix64MatchesSplitMix64Finalizer)
{
    // mix64 is SplitMix64's output finalizer: mix64(seed + gamma) is
    // the generator's first output.
    EXPECT_EQ(mix64(0), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(mix64(1), 0x910a2dec89025cc1ULL);
}

TEST(Random, SubstreamSeedIsPinned)
{
    // Regression pins for the counter-based substream derivation. The
    // bid-loss realization in core/bidding.cc is a pure function of
    // these values, so a change here silently re-randomizes every
    // fault-injection experiment — hence exact pins, generated from
    // the implementation at the time the contract was frozen.
    EXPECT_EQ(substreamSeed(0, 0, 0), 0x238275bc38fcbe91ULL);
    EXPECT_EQ(substreamSeed(0, 0, 1), 0x2f32a78496c67c60ULL);
    EXPECT_EQ(substreamSeed(0, 1, 0), 0x44e5b98100c67fb0ULL);
    EXPECT_EQ(substreamSeed(0, 7, 3), 0x131c537753c06f4cULL);
    EXPECT_EQ(substreamSeed(42, 7, 3), 0xf55e4254d4655539ULL);

    // The two counters are not interchangeable.
    EXPECT_NE(substreamSeed(0, 0, 1), substreamSeed(0, 1, 0));
}

TEST(Random, CounterUniformIsInUnitIntervalAndPinned)
{
    EXPECT_EQ(counterUniform(mix64(substreamSeed(0, 0, 0))),
              0.12964561829974741);
    for (std::uint64_t x :
         {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0}}) {
        const double u = counterUniform(x);
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, CounterBernoulliSeedZeroRealizationIsPinned)
{
    // The seed-0, p=0.3 loss mask for users 0..7 over rounds 0..3 —
    // the exact realization fault-injection experiments at seed 0
    // observe, independent of schedule or thread count.
    const int expected[8][4] = {
        {1, 0, 0, 1}, {0, 0, 0, 0}, {0, 0, 1, 0}, {1, 1, 0, 1},
        {0, 0, 0, 0}, {1, 1, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 0},
    };
    for (std::uint64_t u = 0; u < 8; ++u) {
        for (std::uint64_t r = 0; r < 4; ++r) {
            EXPECT_EQ(counterBernoulli(0, u, r, 0.3),
                      expected[u][r] == 1)
                << "user " << u << " round " << r;
        }
    }
}

TEST(Random, CounterBernoulliEdgeCasesNeedNoDraw)
{
    EXPECT_FALSE(counterBernoulli(0, 0, 0, 0.0));
    EXPECT_FALSE(counterBernoulli(0, 0, 0, -1.0));
    EXPECT_TRUE(counterBernoulli(0, 0, 0, 1.0));
    EXPECT_TRUE(counterBernoulli(0, 0, 0, 2.0));
}

TEST(Random, CounterBernoulliFrequencyMatchesP)
{
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += counterBernoulli(99, static_cast<std::uint64_t>(i),
                                 7, 0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

} // namespace
} // namespace amdahl
