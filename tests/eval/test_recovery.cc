/**
 * @file
 * Crash-recovery equivalence for the durable online runtime.
 *
 * The contract under test is the strongest one the durability layer
 * makes: a run killed after any committed epoch and restarted from its
 * state directory produces the *same* simulation — identical job log,
 * identical metrics (modulo the recovery counters, which describe the
 * process rather than the simulation), and a byte-identical final
 * snapshot — as a run that was never interrupted. Determinism is the
 * redo log, and the journaled per-epoch digest is its proof
 * obligation: these tests also check that a tampered digest refuses to
 * replay instead of silently rewriting history.
 *
 * Process-level kill coverage (SIGKILL at the literal kill points,
 * trace-file equivalence) lives in tools/chaos_recovery.py; these
 * tests drive the same commit layout in-process so they can assert on
 * states and Status values directly.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "alloc/amdahl_bidding_policy.hh"
#include "common/crc32.hh"
#include "eval/online.hh"
#include "robustness/durability/durable_store.hh"
#include "robustness/fault_injector.hh"

namespace amdahl::eval {
namespace {

namespace fs = std::filesystem;

/** A per-test scratch directory, wiped at the start of each test. */
fs::path
freshDir()
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    fs::path dir = fs::temp_directory_path() / "amdahl_recovery_test" /
                   (std::string(info->test_suite_name()) + "." +
                    info->name());
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

OnlineOptions
smallScenario()
{
    OnlineOptions opts;
    opts.seed = 7707;
    opts.users = 6;
    opts.servers = 3;
    opts.epochSeconds = 60.0;
    opts.horizonSeconds = 600.0; // 10 epochs
    opts.arrivalsPerServerEpoch = 0.5;
    return opts;
}

durability::DurableStateStore
openStore(const fs::path &dir, int snapshotEvery)
{
    durability::DurabilityOptions opts;
    opts.stateDir = dir.string();
    opts.snapshotEvery = snapshotEvery;
    auto opened = durability::DurableStateStore::open(opts);
    EXPECT_TRUE(opened.ok()) << opened.status().toString();
    return opened.take();
}

/**
 * Drive the first @p epochs epochs through the store with exactly the
 * commit layout runDurable uses (digest entry + envelope-wrapped
 * state), then drop everything — the in-process stand-in for a
 * process killed after its Nth commit.
 */
void
runAndAbandonAfter(const OnlineSimulator &sim,
                   const alloc::AllocationPolicy &policy,
                   durability::DurableStateStore &store, int epochs,
                   std::uint32_t digestXor = 0)
{
    ASSERT_TRUE(store.beginFresh().isOk());
    const robustness::FaultInjector injector(
        sim.options().faults,
        static_cast<std::size_t>(sim.options().servers),
        sim.epochCount());
    OnlineRunState state = sim.initState(policy);
    for (int e = 0; e < epochs; ++e) {
        sim.runEpoch(state, policy, FractionSource::Estimated,
                     injector);
        const std::string encoded =
            encodeOnlineState(state, sim.options());
        durability::JournalEntry entry;
        entry.epoch = static_cast<std::uint64_t>(state.epoch);
        entry.eventCrc = crc32(encoded) ^ digestXor;
        durability::OnlineSnapshotEnvelope env;
        ASSERT_TRUE(store
                        .commitEpoch(entry,
                                     [&] {
                                         env.state = encoded;
                                         return encodeSnapshotEnvelope(
                                             env);
                                     })
                        .isOk());
    }
}

/** The two metrics objects describe the same simulation. */
void
expectSameSimulation(const OnlineMetrics &a, const OnlineMetrics &b)
{
    EXPECT_EQ(a.policyName, b.policyName);
    EXPECT_EQ(a.jobsArrived, b.jobsArrived);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_DOUBLE_EQ(a.workCompleted, b.workCompleted);
    EXPECT_DOUBLE_EQ(a.meanCompletionSeconds, b.meanCompletionSeconds);
    EXPECT_DOUBLE_EQ(a.p95CompletionSeconds, b.p95CompletionSeconds);
    EXPECT_DOUBLE_EQ(a.meanJobsInSystem, b.meanJobsInSystem);
    EXPECT_DOUBLE_EQ(a.longRunEntitlementMape,
                     b.longRunEntitlementMape);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t k = 0; k < a.jobs.size(); ++k) {
        EXPECT_EQ(a.jobs[k].user, b.jobs[k].user);
        EXPECT_EQ(a.jobs[k].server, b.jobs[k].server);
        EXPECT_DOUBLE_EQ(a.jobs[k].remainingWork,
                         b.jobs[k].remainingWork);
        EXPECT_DOUBLE_EQ(a.jobs[k].completionSeconds,
                         b.jobs[k].completionSeconds);
    }
    EXPECT_EQ(a.occupancyHistory, b.occupancyHistory);
    EXPECT_EQ(a.speedupHistory, b.speedupHistory);
}

TEST(Recovery, EncodedStateRoundTripsByteIdentically)
{
    CharacterizationCache cache;
    const OnlineOptions opts = smallScenario();
    OnlineSimulator sim(cache, opts);
    const alloc::AmdahlBiddingPolicy ab;
    const robustness::FaultInjector injector(
        opts.faults, static_cast<std::size_t>(opts.servers),
        sim.epochCount());

    OnlineRunState state = sim.initState(ab);
    for (int e = 0; e < 4; ++e)
        sim.runEpoch(state, ab, FractionSource::Estimated, injector);

    const std::string encoded = encodeOnlineState(state, opts);
    auto decoded = decodeOnlineState(encoded, opts, ab.name());
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_EQ(encodeOnlineState(decoded.value(), opts), encoded);
    EXPECT_EQ(decoded.value().epoch, 4);
}

TEST(Recovery, DecodeRejectsScenarioPolicyAndFormatSkew)
{
    CharacterizationCache cache;
    const OnlineOptions opts = smallScenario();
    OnlineSimulator sim(cache, opts);
    const alloc::AmdahlBiddingPolicy ab;
    const std::string encoded =
        encodeOnlineState(sim.initState(ab), opts);

    auto wrongPolicy = decodeOnlineState(encoded, opts, "PS");
    ASSERT_FALSE(wrongPolicy.ok());
    EXPECT_EQ(wrongPolicy.status().kind(), ErrorKind::SemanticError);

    OnlineOptions reseeded = opts;
    reseeded.seed ^= 1;
    auto wrongScenario = decodeOnlineState(encoded, reseeded, ab.name());
    ASSERT_FALSE(wrongScenario.ok());
    EXPECT_EQ(wrongScenario.status().kind(), ErrorKind::SemanticError);

    auto truncated = decodeOnlineState(
        std::string_view(encoded).substr(0, encoded.size() / 2), opts,
        ab.name());
    EXPECT_FALSE(truncated.ok());
}

TEST(Recovery, ReplayOfTheSameEpochsIsBitIdentical)
{
    // Determinism is the redo log: two independent drives of the same
    // scenario must agree on every per-epoch digest.
    CharacterizationCache cache;
    const OnlineOptions opts = smallScenario();
    OnlineSimulator sim(cache, opts);
    const alloc::AmdahlBiddingPolicy ab;
    const robustness::FaultInjector injector(
        opts.faults, static_cast<std::size_t>(opts.servers),
        sim.epochCount());

    OnlineRunState a = sim.initState(ab);
    OnlineRunState b = sim.initState(ab);
    for (int e = 0; e < sim.epochCount(); ++e) {
        sim.runEpoch(a, ab, FractionSource::Estimated, injector);
        sim.runEpoch(b, ab, FractionSource::Estimated, injector);
        EXPECT_EQ(crc32(encodeOnlineState(a, opts)),
                  crc32(encodeOnlineState(b, opts)))
            << "divergence at epoch " << e + 1;
    }
}

TEST(Recovery, DurableFreshRunMatchesThePlainRun)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const OnlineMetrics plain = sim.run(ab, FractionSource::Estimated);

    auto store = openStore(freshDir(), 4);
    auto durable =
        sim.runDurable(ab, FractionSource::Estimated, store);
    ASSERT_TRUE(durable.ok()) << durable.status().toString();
    expectSameSimulation(durable.value(), plain);
    EXPECT_FALSE(durable.value().recovered);
    EXPECT_EQ(durable.value().journalCommits,
              static_cast<std::uint64_t>(sim.epochCount()));
    EXPECT_GT(durable.value().snapshotsWritten, 0u);
}

TEST(Recovery, KillAfterAnyCommitRecoversTheUninterruptedOutcome)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const OnlineMetrics plain = sim.run(ab, FractionSource::Estimated);

    // An uninterrupted durable run pins the expected final snapshot.
    const fs::path goldenDir = freshDir() / "golden";
    auto goldenStore = openStore(goldenDir, 3);
    ASSERT_TRUE(
        sim.runDurable(ab, FractionSource::Estimated, goldenStore)
            .ok());
    auto goldenSnapshot = durability::readFileBytes(
        durability::SnapshotStore(goldenDir.string(), 2)
            .pathFor(static_cast<std::uint64_t>(sim.epochCount())));
    ASSERT_TRUE(goldenSnapshot.ok());

    for (int killAfter = 1; killAfter < sim.epochCount(); ++killAfter) {
        SCOPED_TRACE("killed after epoch " + std::to_string(killAfter));
        const fs::path dir =
            goldenDir.parent_path() /
            ("kill" + std::to_string(killAfter));
        fs::create_directories(dir);
        {
            auto store = openStore(dir, 3);
            runAndAbandonAfter(sim, ab, store, killAfter);
        }

        auto store = openStore(dir, 3);
        const durability::RecoveredState rec = store.recover();
        ASSERT_EQ(rec.frontierEpoch(),
                  static_cast<std::uint64_t>(killAfter));
        auto resumed = sim.runDurable(ab, FractionSource::Estimated,
                                      store, &rec);
        ASSERT_TRUE(resumed.ok()) << resumed.status().toString();

        expectSameSimulation(resumed.value(), plain);
        EXPECT_TRUE(resumed.value().recovered);
        EXPECT_EQ(resumed.value().recoveryFrontierEpoch,
                  static_cast<std::uint64_t>(killAfter));
        EXPECT_EQ(resumed.value().recoveryReplayedEpochs,
                  static_cast<int>(rec.entries.size()));

        // The recovery-equivalence oracle, at its strongest: the final
        // snapshot bytes are identical to the uninterrupted run's.
        auto snapshot = durability::readFileBytes(
            durability::SnapshotStore(dir.string(), 2)
                .pathFor(static_cast<std::uint64_t>(sim.epochCount())));
        ASSERT_TRUE(snapshot.ok());
        EXPECT_EQ(snapshot.value(), goldenSnapshot.value());
    }
}

TEST(Recovery, TamperedJournalDigestRefusesToReplay)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const fs::path dir = freshDir();
    {
        auto store = openStore(dir, 0); // no snapshot: all journaled
        runAndAbandonAfter(sim, ab, store, 3,
                           /*digestXor=*/0x1u); // corrupt every digest
    }
    auto store = openStore(dir, 0);
    const durability::RecoveredState rec = store.recover();
    ASSERT_FALSE(rec.entries.empty());
    auto resumed =
        sim.runDurable(ab, FractionSource::Estimated, store, &rec);
    ASSERT_FALSE(resumed.ok());
    EXPECT_EQ(resumed.status().kind(), ErrorKind::SemanticError);
    EXPECT_NE(resumed.status().message().find("replay divergence"),
              std::string::npos);
}

TEST(Recovery, CompletedRunResumesWithZeroReplay)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const fs::path dir = freshDir();
    auto store = openStore(dir, 4);
    auto first = sim.runDurable(ab, FractionSource::Estimated, store);
    ASSERT_TRUE(first.ok()) << first.status().toString();

    auto reopened = openStore(dir, 4);
    const durability::RecoveredState rec = reopened.recover();
    EXPECT_EQ(rec.frontierEpoch(),
              static_cast<std::uint64_t>(sim.epochCount()));
    auto again = sim.runDurable(ab, FractionSource::Estimated,
                                reopened, &rec);
    ASSERT_TRUE(again.ok()) << again.status().toString();
    expectSameSimulation(again.value(), first.value());
    EXPECT_TRUE(again.value().recovered);
    EXPECT_EQ(again.value().recoveryReplayedEpochs, 0);
}

OnlineOptions
deltaScenario()
{
    OnlineOptions opts = smallScenario();
    opts.delta.reuseKernel = true;
    opts.delta.warmStartBids = true;
    return opts;
}

TEST(Recovery, DeltaStateRoundTripsWithItsWarmStartBids)
{
    // Delta re-clearing makes the previous equilibrium part of the
    // run state (OnlineRunState::lastBids): the encoding must carry
    // it, and a decoded state must resume bit-identically.
    CharacterizationCache cache;
    const OnlineOptions opts = deltaScenario();
    OnlineSimulator sim(cache, opts);
    const alloc::AmdahlBiddingPolicy ab;
    const robustness::FaultInjector injector(
        opts.faults, static_cast<std::size_t>(opts.servers),
        sim.epochCount());

    OnlineRunState state = sim.initState(ab);
    for (int e = 0; e < 4; ++e)
        sim.runEpoch(state, ab, FractionSource::Estimated, injector);
    EXPECT_FALSE(state.lastBids.empty());

    const std::string encoded = encodeOnlineState(state, opts);
    auto decoded = decodeOnlineState(encoded, opts, ab.name());
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_EQ(decoded.value().lastBids, state.lastBids);
    EXPECT_EQ(encodeOnlineState(decoded.value(), opts), encoded);

    // Resuming the decoded state must match the uninterrupted drive.
    OnlineRunState resumed = decoded.take();
    sim.runEpoch(state, ab, FractionSource::Estimated, injector);
    sim.runEpoch(resumed, ab, FractionSource::Estimated, injector);
    EXPECT_EQ(crc32(encodeOnlineState(resumed, opts)),
              crc32(encodeOnlineState(state, opts)));
}

TEST(Recovery, KillMidRunRecoversTheDeltaOutcome)
{
    // The crash-recovery oracle with delta re-clearing on: warm-start
    // bids survive the crash through the journal, so the recovered
    // run must land on the uninterrupted outcome exactly.
    CharacterizationCache cache;
    OnlineSimulator sim(cache, deltaScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const OnlineMetrics plain = sim.run(ab, FractionSource::Estimated);

    const fs::path dir = freshDir();
    {
        auto store = openStore(dir, 3);
        runAndAbandonAfter(sim, ab, store, 5);
    }
    auto store = openStore(dir, 3);
    const durability::RecoveredState rec = store.recover();
    ASSERT_EQ(rec.frontierEpoch(), 5u);
    auto resumed =
        sim.runDurable(ab, FractionSource::Estimated, store, &rec);
    ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
    expectSameSimulation(resumed.value(), plain);
    EXPECT_TRUE(resumed.value().recovered);
}

} // namespace
} // namespace amdahl::eval
