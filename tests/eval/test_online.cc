/**
 * @file
 * Unit tests for the online (epoch-based) market simulator.
 */

#include <gtest/gtest.h>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/proportional_share.hh"
#include "common/logging.hh"
#include "eval/online.hh"

namespace amdahl::eval {
namespace {

OnlineOptions
smallScenario()
{
    OnlineOptions opts;
    opts.seed = 404;
    opts.users = 8;
    opts.servers = 4;
    opts.epochSeconds = 60.0;
    opts.horizonSeconds = 1800.0;
    opts.arrivalsPerServerEpoch = 0.5;
    return opts;
}

TEST(Online, JobsArriveAndComplete)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const auto m = sim.run(ab, FractionSource::Estimated);
    EXPECT_GT(m.jobsArrived, 0);
    EXPECT_GT(m.jobsCompleted, 0);
    EXPECT_LE(m.jobsCompleted, m.jobsArrived);
    EXPECT_GT(m.workCompleted, 0.0);
    EXPECT_EQ(m.policyName, "AB");
}

TEST(Online, CompletionTimesAreSane)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const auto m = sim.run(ab, FractionSource::Estimated);
    EXPECT_GT(m.meanCompletionSeconds, 0.0);
    EXPECT_GE(m.p95CompletionSeconds, m.meanCompletionSeconds * 0.5);
    for (const auto &job : m.jobs) {
        if (job.done()) {
            EXPECT_GE(job.completionSeconds, job.arrivalSeconds);
            EXPECT_DOUBLE_EQ(job.remainingWork, 0.0);
        } else {
            EXPECT_GT(job.remainingWork, 0.0);
            EXPECT_LE(job.remainingWork, job.totalWork);
        }
    }
}

TEST(Online, IdenticalArrivalStreamAcrossPolicies)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const auto ab = sim.run(alloc::AmdahlBiddingPolicy(),
                            FractionSource::Estimated);
    const auto ps = sim.run(alloc::ProportionalShare(),
                            FractionSource::Estimated);
    ASSERT_EQ(ab.jobsArrived, ps.jobsArrived);
    ASSERT_EQ(ab.jobs.size(), ps.jobs.size());
    for (std::size_t k = 0; k < ab.jobs.size(); ++k) {
        EXPECT_EQ(ab.jobs[k].server, ps.jobs[k].server);
        EXPECT_EQ(ab.jobs[k].workloadIndex, ps.jobs[k].workloadIndex);
        EXPECT_DOUBLE_EQ(ab.jobs[k].totalWork, ps.jobs[k].totalWork);
    }
}

TEST(Online, DeterministicGivenSeed)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const auto a = sim.run(ab, FractionSource::Estimated);
    const auto b = sim.run(ab, FractionSource::Estimated);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_DOUBLE_EQ(a.meanCompletionSeconds, b.meanCompletionSeconds);
}

TEST(Online, MarketBeatsProportionalShareOnThroughput)
{
    // The paper's one-shot advantage should compound over epochs:
    // under the same arrival stream, AB completes at least as much
    // work as PS.
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.arrivalsPerServerEpoch = 0.8; // enough load to differentiate
    OnlineSimulator sim(cache, opts);
    const auto ab = sim.run(alloc::AmdahlBiddingPolicy(),
                            FractionSource::Estimated);
    const auto ps = sim.run(alloc::ProportionalShare(),
                            FractionSource::Estimated);
    EXPECT_GE(ab.workCompleted, 0.98 * ps.workCompleted);
    EXPECT_GE(ab.meanWeightedSpeedup, 0.98 * ps.meanWeightedSpeedup);
}

TEST(Online, ZeroArrivalRateMeansNothingHappens)
{
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.arrivalsPerServerEpoch = 0.0;
    OnlineSimulator sim(cache, opts);
    const auto m = sim.run(alloc::AmdahlBiddingPolicy(),
                           FractionSource::Estimated);
    EXPECT_EQ(m.jobsArrived, 0);
    EXPECT_EQ(m.jobsCompleted, 0);
    EXPECT_DOUBLE_EQ(m.workCompleted, 0.0);
}

TEST(Online, PlacementRulesProduceValidRuns)
{
    CharacterizationCache cache;
    for (auto rule : {alloc::PlacementRule::RoundRobin,
                      alloc::PlacementRule::LeastLoaded,
                      alloc::PlacementRule::PriceAware}) {
        auto opts = smallScenario();
        opts.placement = rule;
        OnlineSimulator sim(cache, opts);
        const auto m = sim.run(alloc::AmdahlBiddingPolicy(),
                               FractionSource::Estimated);
        EXPECT_GT(m.jobsCompleted, 0) << toString(rule);
    }
}

TEST(Online, PlacementAffectsOutcomeUnderLoad)
{
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.arrivalsPerServerEpoch = 1.5;
    opts.workScaleMax = 1.5;

    opts.placement = alloc::PlacementRule::RoundRobin;
    const auto rr = OnlineSimulator(cache, opts)
                        .run(alloc::AmdahlBiddingPolicy(),
                             FractionSource::Estimated);
    opts.placement = alloc::PlacementRule::PriceAware;
    const auto pa = OnlineSimulator(cache, opts)
                        .run(alloc::AmdahlBiddingPolicy(),
                             FractionSource::Estimated);
    // Same arrival batches, different placements: completions differ.
    EXPECT_EQ(rr.jobsArrived, pa.jobsArrived);
    EXPECT_NE(rr.meanCompletionSeconds, pa.meanCompletionSeconds);
}

TEST(Online, LongRunMapeIsReported)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const auto m = sim.run(alloc::AmdahlBiddingPolicy(),
                           FractionSource::Estimated);
    EXPECT_GT(m.longRunEntitlementMape, 0.0);
    EXPECT_LT(m.longRunEntitlementMape, 200.0);
}

TEST(Online, DeficitCompensationImprovesLongRunFairness)
{
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.arrivalsPerServerEpoch = 1.5;
    opts.workScaleMax = 1.5;

    OnlineSimulator plain(cache, opts);
    const auto base = plain.run(alloc::AmdahlBiddingPolicy(),
                                FractionSource::Estimated);
    opts.deficitCompensation = true;
    OnlineSimulator compensated(cache, opts);
    const auto comp = compensated.run(alloc::AmdahlBiddingPolicy(),
                                      FractionSource::Estimated);
    EXPECT_LE(comp.longRunEntitlementMape,
              base.longRunEntitlementMape + 1.0);
}

TEST(Online, ValidatesOptions)
{
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.users = 0;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts = smallScenario();
    opts.epochSeconds = 0.0;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts = smallScenario();
    opts.workScaleMax = 0.05; // below min
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts = smallScenario();
    opts.coresPerServer = 999;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts = smallScenario();
    opts.arrivalsPerServerEpoch = -1.0;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
}

} // namespace
} // namespace amdahl::eval
