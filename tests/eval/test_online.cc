/**
 * @file
 * Unit tests for the online (epoch-based) market simulator.
 */

#include <gtest/gtest.h>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/fallback_policy.hh"
#include "alloc/proportional_share.hh"
#include "common/logging.hh"
#include "eval/online.hh"

namespace amdahl::eval {
namespace {

OnlineOptions
smallScenario()
{
    OnlineOptions opts;
    opts.seed = 404;
    opts.users = 8;
    opts.servers = 4;
    opts.epochSeconds = 60.0;
    opts.horizonSeconds = 1800.0;
    opts.arrivalsPerServerEpoch = 0.5;
    return opts;
}

TEST(Online, JobsArriveAndComplete)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const auto m = sim.run(ab, FractionSource::Estimated);
    EXPECT_GT(m.jobsArrived, 0);
    EXPECT_GT(m.jobsCompleted, 0);
    EXPECT_LE(m.jobsCompleted, m.jobsArrived);
    EXPECT_GT(m.workCompleted, 0.0);
    EXPECT_EQ(m.policyName, "AB");
}

TEST(Online, CompletionTimesAreSane)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const auto m = sim.run(ab, FractionSource::Estimated);
    EXPECT_GT(m.meanCompletionSeconds, 0.0);
    EXPECT_GE(m.p95CompletionSeconds, m.meanCompletionSeconds * 0.5);
    for (const auto &job : m.jobs) {
        if (job.done()) {
            EXPECT_GE(job.completionSeconds, job.arrivalSeconds);
            EXPECT_DOUBLE_EQ(job.remainingWork, 0.0);
        } else {
            EXPECT_GT(job.remainingWork, 0.0);
            EXPECT_LE(job.remainingWork, job.totalWork);
        }
    }
}

TEST(Online, IdenticalArrivalStreamAcrossPolicies)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const auto ab = sim.run(alloc::AmdahlBiddingPolicy(),
                            FractionSource::Estimated);
    const auto ps = sim.run(alloc::ProportionalShare(),
                            FractionSource::Estimated);
    ASSERT_EQ(ab.jobsArrived, ps.jobsArrived);
    ASSERT_EQ(ab.jobs.size(), ps.jobs.size());
    for (std::size_t k = 0; k < ab.jobs.size(); ++k) {
        EXPECT_EQ(ab.jobs[k].server, ps.jobs[k].server);
        EXPECT_EQ(ab.jobs[k].workloadIndex, ps.jobs[k].workloadIndex);
        EXPECT_DOUBLE_EQ(ab.jobs[k].totalWork, ps.jobs[k].totalWork);
    }
}

TEST(Online, DeterministicGivenSeed)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const auto a = sim.run(ab, FractionSource::Estimated);
    const auto b = sim.run(ab, FractionSource::Estimated);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_DOUBLE_EQ(a.meanCompletionSeconds, b.meanCompletionSeconds);
}

TEST(Online, MarketBeatsProportionalShareOnThroughput)
{
    // The paper's one-shot advantage should compound over epochs:
    // under the same arrival stream, AB completes at least as much
    // work as PS.
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.arrivalsPerServerEpoch = 0.8; // enough load to differentiate
    OnlineSimulator sim(cache, opts);
    const auto ab = sim.run(alloc::AmdahlBiddingPolicy(),
                            FractionSource::Estimated);
    const auto ps = sim.run(alloc::ProportionalShare(),
                            FractionSource::Estimated);
    EXPECT_GE(ab.workCompleted, 0.98 * ps.workCompleted);
    EXPECT_GE(ab.meanWeightedSpeedup, 0.98 * ps.meanWeightedSpeedup);
}

TEST(Online, ZeroArrivalRateMeansNothingHappens)
{
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.arrivalsPerServerEpoch = 0.0;
    OnlineSimulator sim(cache, opts);
    const auto m = sim.run(alloc::AmdahlBiddingPolicy(),
                           FractionSource::Estimated);
    EXPECT_EQ(m.jobsArrived, 0);
    EXPECT_EQ(m.jobsCompleted, 0);
    EXPECT_DOUBLE_EQ(m.workCompleted, 0.0);
}

TEST(Online, PlacementRulesProduceValidRuns)
{
    CharacterizationCache cache;
    for (auto rule : {alloc::PlacementRule::RoundRobin,
                      alloc::PlacementRule::LeastLoaded,
                      alloc::PlacementRule::PriceAware}) {
        auto opts = smallScenario();
        opts.placement = rule;
        OnlineSimulator sim(cache, opts);
        const auto m = sim.run(alloc::AmdahlBiddingPolicy(),
                               FractionSource::Estimated);
        EXPECT_GT(m.jobsCompleted, 0) << toString(rule);
    }
}

TEST(Online, PlacementAffectsOutcomeUnderLoad)
{
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.arrivalsPerServerEpoch = 1.5;
    opts.workScaleMax = 1.5;

    opts.placement = alloc::PlacementRule::RoundRobin;
    const auto rr = OnlineSimulator(cache, opts)
                        .run(alloc::AmdahlBiddingPolicy(),
                             FractionSource::Estimated);
    opts.placement = alloc::PlacementRule::PriceAware;
    const auto pa = OnlineSimulator(cache, opts)
                        .run(alloc::AmdahlBiddingPolicy(),
                             FractionSource::Estimated);
    // Same arrival batches, different placements: completions differ.
    EXPECT_EQ(rr.jobsArrived, pa.jobsArrived);
    EXPECT_NE(rr.meanCompletionSeconds, pa.meanCompletionSeconds);
}

TEST(Online, LongRunMapeIsReported)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const auto m = sim.run(alloc::AmdahlBiddingPolicy(),
                           FractionSource::Estimated);
    EXPECT_GT(m.longRunEntitlementMape, 0.0);
    EXPECT_LT(m.longRunEntitlementMape, 200.0);
}

TEST(Online, DeficitCompensationImprovesLongRunFairness)
{
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.arrivalsPerServerEpoch = 1.5;
    opts.workScaleMax = 1.5;

    OnlineSimulator plain(cache, opts);
    const auto base = plain.run(alloc::AmdahlBiddingPolicy(),
                                FractionSource::Estimated);
    opts.deficitCompensation = true;
    OnlineSimulator compensated(cache, opts);
    const auto comp = compensated.run(alloc::AmdahlBiddingPolicy(),
                                      FractionSource::Estimated);
    EXPECT_LE(comp.longRunEntitlementMape,
              base.longRunEntitlementMape + 1.0);
}

namespace {

/** Full bit-level comparison of two runs' metrics and job logs. */
void
expectBitIdentical(const OnlineMetrics &a, const OnlineMetrics &b)
{
    EXPECT_EQ(a.jobsArrived, b.jobsArrived);
    EXPECT_EQ(a.jobsCompleted, b.jobsCompleted);
    EXPECT_DOUBLE_EQ(a.workCompleted, b.workCompleted);
    EXPECT_DOUBLE_EQ(a.meanCompletionSeconds, b.meanCompletionSeconds);
    EXPECT_DOUBLE_EQ(a.p95CompletionSeconds, b.p95CompletionSeconds);
    EXPECT_DOUBLE_EQ(a.meanJobsInSystem, b.meanJobsInSystem);
    EXPECT_DOUBLE_EQ(a.meanWeightedSpeedup, b.meanWeightedSpeedup);
    EXPECT_DOUBLE_EQ(a.longRunEntitlementMape,
                     b.longRunEntitlementMape);
    EXPECT_DOUBLE_EQ(a.availabilityWeightedEntitlementMape,
                     b.availabilityWeightedEntitlementMape);
    EXPECT_EQ(a.nonConvergedEpochs, b.nonConvergedEpochs);
    EXPECT_EQ(a.fallbackEpochsDamped, b.fallbackEpochsDamped);
    EXPECT_EQ(a.fallbackEpochsProportional,
              b.fallbackEpochsProportional);
    EXPECT_EQ(a.crashEvents, b.crashEvents);
    EXPECT_EQ(a.replacements, b.replacements);
    EXPECT_DOUBLE_EQ(a.workLostSeconds, b.workLostSeconds);
    ASSERT_EQ(a.occupancyHistory.size(), b.occupancyHistory.size());
    for (std::size_t e = 0; e < a.occupancyHistory.size(); ++e)
        EXPECT_DOUBLE_EQ(a.occupancyHistory[e], b.occupancyHistory[e]);
    ASSERT_EQ(a.speedupHistory.size(), b.speedupHistory.size());
    for (std::size_t e = 0; e < a.speedupHistory.size(); ++e)
        EXPECT_DOUBLE_EQ(a.speedupHistory[e], b.speedupHistory[e]);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t k = 0; k < a.jobs.size(); ++k) {
        EXPECT_EQ(a.jobs[k].user, b.jobs[k].user);
        EXPECT_EQ(a.jobs[k].server, b.jobs[k].server);
        EXPECT_EQ(a.jobs[k].workloadIndex, b.jobs[k].workloadIndex);
        EXPECT_DOUBLE_EQ(a.jobs[k].totalWork, b.jobs[k].totalWork);
        EXPECT_DOUBLE_EQ(a.jobs[k].remainingWork,
                         b.jobs[k].remainingWork);
        EXPECT_DOUBLE_EQ(a.jobs[k].completionSeconds,
                         b.jobs[k].completionSeconds);
    }
}

OnlineOptions
churnScenario()
{
    auto opts = smallScenario();
    opts.horizonSeconds = 3600.0;
    opts.arrivalsPerServerEpoch = 1.0;
    opts.faults.enabled = true;
    opts.faults.crashRatePerServerEpoch = 0.04;
    opts.faults.downEpochs = 2;
    opts.faults.checkpointEpochs = 4;
    opts.faults.bidLossRate = 0.1;
    opts.faults.fractionNoiseStddev = 0.05;
    return opts;
}

} // namespace

TEST(Online, RunsAreBitIdenticalGivenSeed)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    expectBitIdentical(sim.run(ab, FractionSource::Estimated),
                       sim.run(ab, FractionSource::Estimated));
}

TEST(Online, FaultScheduleRunsAreBitIdenticalGivenSeed)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, churnScenario());
    const alloc::FallbackPolicy fb;
    expectBitIdentical(sim.run(fb, FractionSource::Estimated),
                       sim.run(fb, FractionSource::Estimated));
}

TEST(Online, KernelReuseIsBitwiseInvisible)
{
    // reuseKernel is a pure structural cache: the run with it on must
    // be byte-identical to the plain run — same equilibria, same job
    // log, same histories. (warmStartBids legitimately changes
    // low-order equilibrium bits, so it gets determinism tests, not
    // an identity test.)
    CharacterizationCache cache;
    OnlineSimulator plain(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const auto reference = plain.run(ab, FractionSource::Estimated);

    OnlineOptions delta = smallScenario();
    delta.delta.reuseKernel = true;
    OnlineSimulator cachedSim(cache, delta);
    expectBitIdentical(cachedSim.run(ab, FractionSource::Estimated),
                       reference);
}

TEST(Online, DeltaRunsAreBitIdenticalGivenSeed)
{
    CharacterizationCache cache;
    OnlineOptions opts = smallScenario();
    opts.delta.reuseKernel = true;
    opts.delta.warmStartBids = true;
    OnlineSimulator sim(cache, opts);
    const alloc::AmdahlBiddingPolicy ab;
    expectBitIdentical(sim.run(ab, FractionSource::Estimated),
                       sim.run(ab, FractionSource::Estimated));
}

TEST(Online, DeltaRunCompletesComparableWork)
{
    // Warm starts change which equilibrium bits the solver lands on,
    // never the economics: the delta run must complete the same jobs
    // to within the usual cross-policy slack.
    CharacterizationCache cache;
    OnlineSimulator plain(cache, smallScenario());
    const alloc::AmdahlBiddingPolicy ab;
    const auto reference = plain.run(ab, FractionSource::Estimated);

    OnlineOptions opts = smallScenario();
    opts.delta.reuseKernel = true;
    opts.delta.warmStartBids = true;
    OnlineSimulator sim(cache, opts);
    const auto delta = sim.run(ab, FractionSource::Estimated);
    EXPECT_EQ(delta.jobsArrived, reference.jobsArrived);
    EXPECT_NEAR(delta.workCompleted, reference.workCompleted,
                0.02 * reference.workCompleted);
}

TEST(Online, IdenticalArrivalStreamAcrossPoliciesUnderFaults)
{
    // Crashes change completion order, which changes placement state,
    // so server assignments may diverge across policies — but the
    // arrival stream itself (who, what, how much, when) must not.
    CharacterizationCache cache;
    OnlineSimulator sim(cache, churnScenario());
    const auto ab = sim.run(alloc::AmdahlBiddingPolicy(),
                            FractionSource::Estimated);
    const auto ps = sim.run(alloc::ProportionalShare(),
                            FractionSource::Estimated);
    ASSERT_EQ(ab.jobsArrived, ps.jobsArrived);
    ASSERT_EQ(ab.jobs.size(), ps.jobs.size());
    for (std::size_t k = 0; k < ab.jobs.size(); ++k) {
        EXPECT_EQ(ab.jobs[k].user, ps.jobs[k].user);
        EXPECT_EQ(ab.jobs[k].workloadIndex, ps.jobs[k].workloadIndex);
        EXPECT_DOUBLE_EQ(ab.jobs[k].totalWork, ps.jobs[k].totalWork);
        EXPECT_DOUBLE_EQ(ab.jobs[k].arrivalSeconds,
                         ps.jobs[k].arrivalSeconds);
    }
    // The crash schedule is policy-independent too.
    EXPECT_EQ(ab.crashEvents, ps.crashEvents);
}

TEST(Online, FaultFreeRunsReportZeroResilienceCounters)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, smallScenario());
    const auto m = sim.run(alloc::AmdahlBiddingPolicy(),
                           FractionSource::Estimated);
    EXPECT_EQ(m.nonConvergedEpochs, 0);
    EXPECT_EQ(m.fallbackEpochsDamped, 0);
    EXPECT_EQ(m.fallbackEpochsProportional, 0);
    EXPECT_EQ(m.crashEvents, 0);
    EXPECT_EQ(m.replacements, 0);
    EXPECT_DOUBLE_EQ(m.workLostSeconds, 0.0);
    EXPECT_GT(m.availabilityWeightedEntitlementMape, 0.0);
}

TEST(Online, ChurnProducesResilienceAccountingAndCompletes)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, churnScenario());
    const auto m = sim.run(alloc::FallbackPolicy(),
                           FractionSource::Estimated);
    EXPECT_GT(m.crashEvents, 0);
    EXPECT_GT(m.replacements, 0);
    EXPECT_GT(m.workLostSeconds, 0.0);
    EXPECT_GT(m.jobsCompleted, 0);
    for (const auto &job : m.jobs) {
        if (job.done()) {
            EXPECT_DOUBLE_EQ(job.remainingWork, 0.0);
        }
    }
}

TEST(Online, CheckpointIntervalBoundsLostWork)
{
    // A single scripted crash: with per-epoch checkpoints the crash
    // epoch itself makes no durable progress but nothing older is
    // lost; with no effective checkpointing the job's whole history
    // rolls back. Trajectories are identical until the crash, so the
    // comparison isolates the checkpoint knob.
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.arrivalsPerServerEpoch = 1.0;
    // Jobs must span several epochs, or there is no uncheckpointed
    // progress for the crash to take.
    opts.workScaleMin = 2.0;
    opts.workScaleMax = 4.0;
    opts.faults.enabled = true;
    opts.faults.scriptedCrashes = {{1, 12, 15}};

    opts.faults.checkpointEpochs = 1;
    const auto tight = OnlineSimulator(cache, opts)
                           .run(alloc::AmdahlBiddingPolicy(),
                                FractionSource::Estimated);
    opts.faults.checkpointEpochs = 1000; // never checkpoints
    const auto loose = OnlineSimulator(cache, opts)
                           .run(alloc::AmdahlBiddingPolicy(),
                                FractionSource::Estimated);
    EXPECT_EQ(tight.crashEvents, 1);
    EXPECT_EQ(loose.crashEvents, 1);
    EXPECT_DOUBLE_EQ(tight.workLostSeconds, 0.0);
    EXPECT_GT(loose.workLostSeconds, 0.0);
}

TEST(Online, TotalOutageParksJobsUntilRecovery)
{
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.servers = 2;
    opts.arrivalsPerServerEpoch = 1.0;
    opts.faults.enabled = true;
    // Both servers down over epochs 6..14; the whole cluster is out.
    opts.faults.scriptedCrashes = {{0, 4, 15}, {1, 5, 15}};
    OnlineSimulator sim(cache, opts);
    const auto m = sim.run(alloc::AmdahlBiddingPolicy(),
                           FractionSource::Estimated);
    EXPECT_EQ(m.crashEvents, 2);
    EXPECT_GT(m.replacements, 0);
    // Arrivals kept coming during the outage and were parked; after
    // recovery everything is placed and work resumes.
    EXPECT_GT(m.jobsCompleted, 0);
    for (const auto &job : m.jobs)
        EXPECT_NE(job.server, OnlineJob::kUnplaced);
}

TEST(Online, NonConvergenceIsCountedWithoutFallback)
{
    // A plain AB policy with a starved iteration budget: epochs are
    // served unconverged (warned, rate-limited) and counted, with no
    // fallback rungs involved.
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.arrivalsPerServerEpoch = 1.0;
    OnlineSimulator sim(cache, opts);
    core::BiddingOptions starved;
    starved.maxIterations = 1;
    starved.priceTolerance = 1e-15;
    const auto m = sim.run(alloc::AmdahlBiddingPolicy(starved),
                           FractionSource::Estimated);
    EXPECT_GT(m.nonConvergedEpochs, 0);
    EXPECT_EQ(m.fallbackEpochsDamped, 0);
    EXPECT_EQ(m.fallbackEpochsProportional, 0);
}

TEST(Online, FallbackLadderAbsorbsNonConvergedEpochs)
{
    // Under the ladder every non-converged epoch is served by a
    // degraded rung, so the counters must reconcile exactly.
    CharacterizationCache cache;
    auto opts = churnScenario();
    opts.faults.bidLossRate = 0.9;
    OnlineSimulator sim(cache, opts);
    core::BiddingOptions primary;
    primary.maxIterations = 60;
    const auto m = sim.run(alloc::FallbackPolicy(primary),
                           FractionSource::Estimated);
    EXPECT_GT(m.nonConvergedEpochs, 0);
    EXPECT_EQ(m.nonConvergedEpochs,
              m.fallbackEpochsDamped + m.fallbackEpochsProportional);
}

TEST(Online, ValidatesFaultOptions)
{
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.faults.bidLossRate = 2.0;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts = smallScenario();
    opts.faults.checkpointEpochs = 0;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
}

TEST(Online, ValidatesOptions)
{
    CharacterizationCache cache;
    auto opts = smallScenario();
    opts.users = 0;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts = smallScenario();
    opts.epochSeconds = 0.0;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts = smallScenario();
    opts.workScaleMax = 0.05; // below min
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts = smallScenario();
    opts.coresPerServer = 999;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts = smallScenario();
    opts.arrivalsPerServerEpoch = -1.0;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
}

} // namespace
} // namespace amdahl::eval
