/**
 * @file
 * Unit tests for the Section VI population generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hh"
#include "eval/population.hh"

namespace amdahl::eval {
namespace {

PopulationOptions
smallOptions()
{
    PopulationOptions opts;
    opts.users = 50;
    opts.serverMultiplier = 0.5;
    opts.density = 12;
    return opts;
}

TEST(Population, ServerCountFollowsMultiplier)
{
    Rng rng(1);
    const auto pop = generatePopulation(rng, smallOptions());
    EXPECT_EQ(pop.serverCount, 25u);
    EXPECT_EQ(pop.userCount(), 50u);
}

TEST(Population, FractionalMultiplierRoundsUp)
{
    Rng rng(2);
    PopulationOptions opts = smallOptions();
    opts.users = 10;
    opts.serverMultiplier = 0.25;
    const auto pop = generatePopulation(rng, opts);
    EXPECT_EQ(pop.serverCount, 3u); // ceil(2.5)
}

TEST(Population, BudgetsAreIntegerClasses)
{
    Rng rng(3);
    const auto pop = generatePopulation(rng, smallOptions());
    for (double b : pop.budgets) {
        EXPECT_GE(b, 1.0);
        EXPECT_LE(b, 5.0);
        EXPECT_DOUBLE_EQ(b, std::floor(b));
    }
}

TEST(Population, AllBudgetClassesAppear)
{
    Rng rng(4);
    PopulationOptions opts = smallOptions();
    opts.users = 500;
    const auto pop = generatePopulation(rng, opts);
    std::vector<int> seen(6, 0);
    for (std::size_t i = 0; i < pop.userCount(); ++i)
        ++seen[static_cast<std::size_t>(pop.entitlementClass(i))];
    for (int cls = 1; cls <= 5; ++cls)
        EXPECT_GT(seen[static_cast<std::size_t>(cls)], 0) << cls;
}

TEST(Population, EveryUserHasAJob)
{
    Rng rng(5);
    for (int trial = 0; trial < 10; ++trial) {
        const auto pop = generatePopulation(rng, smallOptions());
        for (const auto &jobs : pop.userJobs)
            EXPECT_FALSE(jobs.empty());
    }
}

TEST(Population, EveryServerHostsAJob)
{
    Rng rng(6);
    const auto pop = generatePopulation(rng, smallOptions());
    std::vector<int> jobs_on(pop.serverCount, 0);
    for (const auto &jobs : pop.userJobs)
        for (const auto &job : jobs)
            ++jobs_on[job.server];
    for (int count : jobs_on)
        EXPECT_GE(count, 1);
}

TEST(Population, DensityBoundsMostlyHold)
{
    // Servers host between ceil(d/2) and d jobs; the every-user-runs
    // fix-up can add at most a handful beyond d when all servers are
    // saturated, which cannot happen at these sizes.
    Rng rng(7);
    PopulationOptions opts = smallOptions();
    opts.density = 8;
    const auto pop = generatePopulation(rng, opts);
    std::vector<int> jobs_on(pop.serverCount, 0);
    for (const auto &jobs : pop.userJobs)
        for (const auto &job : jobs)
            ++jobs_on[job.server];
    for (int count : jobs_on)
        EXPECT_LE(count, 8);
}

TEST(Population, WorkloadIndicesInRange)
{
    Rng rng(8);
    PopulationOptions opts = smallOptions();
    opts.workloadCount = 22;
    const auto pop = generatePopulation(rng, opts);
    for (const auto &jobs : pop.userJobs)
        for (const auto &job : jobs)
            EXPECT_LT(job.workloadIndex, 22u);
}

TEST(Population, DeterministicGivenSeed)
{
    Rng a(99), b(99);
    const auto p1 = generatePopulation(a, smallOptions());
    const auto p2 = generatePopulation(b, smallOptions());
    EXPECT_EQ(p1.budgets, p2.budgets);
    ASSERT_EQ(p1.userJobs.size(), p2.userJobs.size());
    for (std::size_t i = 0; i < p1.userJobs.size(); ++i) {
        ASSERT_EQ(p1.userJobs[i].size(), p2.userJobs[i].size());
        for (std::size_t k = 0; k < p1.userJobs[i].size(); ++k) {
            EXPECT_EQ(p1.userJobs[i][k].server,
                      p2.userJobs[i][k].server);
            EXPECT_EQ(p1.userJobs[i][k].workloadIndex,
                      p2.userJobs[i][k].workloadIndex);
        }
    }
}

TEST(Population, JobCountSums)
{
    Rng rng(10);
    const auto pop = generatePopulation(rng, smallOptions());
    std::size_t manual = 0;
    for (const auto &jobs : pop.userJobs)
        manual += jobs.size();
    EXPECT_EQ(pop.jobCount(), manual);
    EXPECT_GE(pop.jobCount(), pop.userCount());
}

TEST(Population, HomogeneousCoresOf)
{
    Rng rng(71);
    const auto pop = generatePopulation(rng, smallOptions());
    EXPECT_TRUE(pop.serverCores.empty());
    EXPECT_EQ(pop.coresOf(0), 24);
    EXPECT_DOUBLE_EQ(pop.totalCores(), 24.0 * pop.serverCount);
}

TEST(Population, HeterogeneousClusterDrawsFromChoices)
{
    Rng rng(72);
    PopulationOptions opts = smallOptions();
    opts.users = 200;
    opts.coreChoices = {12, 24, 48};
    const auto pop = generatePopulation(rng, opts);
    ASSERT_EQ(pop.serverCores.size(), pop.serverCount);
    std::set<int> seen;
    for (std::size_t j = 0; j < pop.serverCount; ++j) {
        const int c = pop.coresOf(j);
        EXPECT_TRUE(c == 12 || c == 24 || c == 48);
        seen.insert(c);
    }
    EXPECT_EQ(seen.size(), 3u); // at 100 servers all choices appear
}

TEST(Population, HeterogeneousValidation)
{
    Rng rng(73);
    PopulationOptions opts = smallOptions();
    opts.coreChoices = {12, 0};
    EXPECT_THROW(generatePopulation(rng, opts), FatalError);
}

TEST(Population, CoresOfBoundsChecked)
{
    Rng rng(74);
    const auto pop = generatePopulation(rng, smallOptions());
    EXPECT_THROW(pop.coresOf(pop.serverCount), FatalError);
}

TEST(Population, ValidatesOptions)
{
    Rng rng(11);
    PopulationOptions bad = smallOptions();
    bad.users = 0;
    EXPECT_THROW(generatePopulation(rng, bad), FatalError);
    bad = smallOptions();
    bad.serverMultiplier = 0.0;
    EXPECT_THROW(generatePopulation(rng, bad), FatalError);
    bad = smallOptions();
    bad.density = 0;
    EXPECT_THROW(generatePopulation(rng, bad), FatalError);
    bad = smallOptions();
    bad.minBudget = 3;
    bad.maxBudget = 2;
    EXPECT_THROW(generatePopulation(rng, bad), FatalError);
    bad = smallOptions();
    bad.workloadCount = 0;
    EXPECT_THROW(generatePopulation(rng, bad), FatalError);
}

TEST(Population, PaperLadders)
{
    const auto users = paperUserLadder();
    EXPECT_EQ(users.front(), 40);
    EXPECT_EQ(users.back(), 1000);
    EXPECT_EQ(users.size(), 13u);
    EXPECT_EQ(paperServerMultipliers(),
              (std::vector<double>{0.25, 0.5, 1.0, 2.0, 4.0}));
    EXPECT_EQ(paperDensityLadder(),
              (std::vector<int>{4, 8, 12, 16, 20, 24}));
}

} // namespace
} // namespace amdahl::eval
