/**
 * @file
 * Unit tests for the experiment drivers (scaled down for test speed).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "eval/experiment.hh"
#include "sim/workload_library.hh"

namespace amdahl::eval {
namespace {

ExperimentDriver::Config
tinyConfig()
{
    ExperimentDriver::Config cfg;
    cfg.seed = 7;
    cfg.populationsPerPoint = 2;
    cfg.users = 20;
    cfg.serverMultiplier = 0.5;
    cfg.includeBestResponse = false; // keep unit tests fast
    return cfg;
}

TEST(Experiment, BuildMarketMirrorsPopulation)
{
    Rng rng(3);
    PopulationOptions opts;
    opts.users = 15;
    opts.serverMultiplier = 0.5;
    opts.density = 8;
    opts.workloadCount = sim::workloadLibrary().size();
    const auto pop = generatePopulation(rng, opts);

    CharacterizationCache cache;
    const auto market =
        buildMarket(pop, cache, FractionSource::Estimated);
    EXPECT_EQ(market.userCount(), pop.userCount());
    EXPECT_EQ(market.serverCount(), pop.serverCount);
    EXPECT_NO_THROW(market.validate());
    for (std::size_t i = 0; i < pop.userCount(); ++i) {
        EXPECT_DOUBLE_EQ(market.user(i).budget, pop.budgets[i]);
        ASSERT_EQ(market.user(i).jobs.size(), pop.userJobs[i].size());
        for (std::size_t k = 0; k < pop.userJobs[i].size(); ++k) {
            EXPECT_EQ(market.user(i).jobs[k].server,
                      pop.userJobs[i][k].server);
            EXPECT_DOUBLE_EQ(
                market.user(i).jobs[k].parallelFraction,
                cache.fraction(pop.userJobs[i][k].workloadIndex,
                               FractionSource::Estimated));
        }
    }
}

TEST(Experiment, DensityPointRunsAllPolicies)
{
    ExperimentDriver driver(tinyConfig());
    const auto row = driver.runDensityPoint(8);
    EXPECT_EQ(row.density, 8);
    EXPECT_EQ(row.policies,
              (std::vector<std::string>{"G", "PS", "AB", "UB"}));
    for (const auto &name : row.policies) {
        const auto &m = row.byPolicy.at(name);
        EXPECT_GT(m.sysProgress, 0.0) << name;
        EXPECT_GE(m.mape, 0.0) << name;
    }
}

TEST(Experiment, AmdahlBiddingBeatsProportionalShare)
{
    // The headline Figure 9 ordering at moderate density.
    ExperimentDriver driver(tinyConfig());
    const auto row = driver.runDensityPoint(12);
    EXPECT_GT(row.byPolicy.at("AB").sysProgress,
              row.byPolicy.at("PS").sysProgress);
}

TEST(Experiment, UpperBoundIsUpperBound)
{
    ExperimentDriver driver(tinyConfig());
    const auto row = driver.runDensityPoint(12);
    const double ub = row.byPolicy.at("UB").sysProgress;
    for (const auto &[name, metrics] : row.byPolicy)
        EXPECT_LE(metrics.sysProgress, ub * 1.02) << name;
}

TEST(Experiment, MarketHasLowerMapeThanPerformancePolicies)
{
    // Figure 11: AB tracks entitlements far better than G/UB.
    ExperimentDriver driver(tinyConfig());
    const auto row = driver.runDensityPoint(12);
    EXPECT_LT(row.byPolicy.at("AB").mape,
              row.byPolicy.at("G").mape);
    EXPECT_LT(row.byPolicy.at("AB").mape,
              row.byPolicy.at("UB").mape);
}

TEST(Experiment, ClassProgressCoversEntitlementClasses)
{
    ExperimentDriver driver(tinyConfig());
    const auto row = driver.runDensityPoint(8);
    const auto &ab = row.byPolicy.at("AB");
    EXPECT_FALSE(ab.classProgress.empty());
    for (const auto &[cls, progress] : ab.classProgress) {
        EXPECT_GE(cls, 1);
        EXPECT_LE(cls, 5);
        EXPECT_GT(progress, 0.0);
    }
}

TEST(Experiment, SensitivityGrowsWithPerturbation)
{
    auto cfg = tinyConfig();
    cfg.populationsPerPoint = 1;
    ExperimentDriver driver(cfg);
    const double small = driver.runSensitivity(8, {5.0, 10.0}, 4);
    const double large = driver.runSensitivity(8, {30.0, 35.0}, 4);
    EXPECT_GE(small, 0.0);
    // Larger F over-estimation shifts allocations more (Figure 12's
    // monotone trend).
    EXPECT_GT(large, small);
}

TEST(Experiment, SensitivityShiftsAreModest)
{
    // "over-estimating F by 5 to 15% shifts an allocation by one or
    // two cores."
    ExperimentDriver driver(tinyConfig());
    const double mae = driver.runSensitivity(12, {5.0, 15.0}, 4);
    EXPECT_LT(mae, 3.0);
}

TEST(Experiment, BiddingIterationsArePositiveAndBounded)
{
    ExperimentDriver driver(tinyConfig());
    const double iters = driver.meanBiddingIterations(20, 0.5, 8, 2);
    EXPECT_GE(iters, 1.0);
    EXPECT_LT(iters, 2000.0);
}

TEST(Experiment, MisreportStudyRuns)
{
    ExperimentDriver driver(tinyConfig());
    const auto study = driver.runMisreport(16, 8, 0.6, 4);
    EXPECT_GT(study.meanTruthfulUtility, 0.0);
    EXPECT_GT(study.meanMisreportUtility, 0.0);
    EXPECT_GE(study.maxGainPercent, study.meanGainPercent);
}

TEST(Experiment, MisreportingDoesNotPayOnAverage)
{
    // Exaggerating parallelism distorts the liar's own budget split;
    // averaged over trials she does not profit.
    ExperimentDriver driver(tinyConfig());
    const auto study = driver.runMisreport(24, 12, 0.6, 6);
    EXPECT_LT(study.meanGainPercent, 1.0);
}

TEST(Experiment, MisreportValidatesArguments)
{
    ExperimentDriver driver(tinyConfig());
    EXPECT_THROW(driver.runMisreport(16, 8, 0.0, 1), FatalError);
    EXPECT_THROW(driver.runMisreport(16, 8, 1.5, 1), FatalError);
    EXPECT_THROW(driver.runMisreport(16, 8, 0.5, 0), FatalError);
}

TEST(Experiment, ValidatesArguments)
{
    ExperimentDriver driver(tinyConfig());
    EXPECT_THROW(driver.runSensitivity(8, {10.0, 5.0}, 1), FatalError);
    EXPECT_THROW(driver.runSensitivity(8, {5.0, 10.0}, 0), FatalError);
    EXPECT_THROW(driver.meanBiddingIterations(10, 0.5, 8, 0),
                 FatalError);
    ExperimentDriver::Config bad = tinyConfig();
    bad.populationsPerPoint = 0;
    EXPECT_THROW(ExperimentDriver{bad}, FatalError);
}

} // namespace
} // namespace amdahl::eval
