/**
 * @file
 * Unit tests for the progress metrics (Section VI).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "eval/metrics.hh"

namespace amdahl::eval {
namespace {

Population
twoUserPopulation()
{
    Population pop;
    pop.budgets = {1.0, 3.0};
    pop.serverCount = 2;
    pop.coresPerServer = 24;
    pop.userJobs = {
        {{0, 0}, {1, 13}}, // user 0: correlation, bodytrack
        {{1, 15}},         // user 1: dedup
    };
    return pop;
}

TEST(Metrics, ZeroCoresMeansZeroProgress)
{
    CharacterizationCache cache;
    const ProgressEvaluator eval(cache);
    EXPECT_DOUBLE_EQ(eval.jobProgress(0, 0), 0.0);
}

TEST(Metrics, OneCoreMeansUnitProgress)
{
    CharacterizationCache cache;
    const ProgressEvaluator eval(cache);
    EXPECT_DOUBLE_EQ(eval.jobProgress(0, 1), 1.0);
}

TEST(Metrics, ProgressIsMeasuredSpeedup)
{
    CharacterizationCache cache;
    const ProgressEvaluator eval(cache);
    const double t1 = cache.fullDatasetSeconds(0, 1);
    const double t8 = cache.fullDatasetSeconds(0, 8);
    EXPECT_DOUBLE_EQ(eval.jobProgress(0, 8), t1 / t8);
    EXPECT_GT(eval.jobProgress(0, 8), 1.0);
}

TEST(Metrics, NegativeCoresIsFatal)
{
    CharacterizationCache cache;
    const ProgressEvaluator eval(cache);
    EXPECT_THROW(eval.jobProgress(0, -1), FatalError);
}

TEST(Metrics, UserProgressAveragesJobProgress)
{
    CharacterizationCache cache;
    const ProgressEvaluator eval(cache);
    const auto pop = twoUserPopulation();
    const double expected = 0.5 * (eval.jobProgress(0, 4) +
                                   eval.jobProgress(13, 8));
    EXPECT_DOUBLE_EQ(eval.userProgress(pop, 0, {4, 8}), expected);
}

TEST(Metrics, UserProgressAtUnitAllocationIsOne)
{
    CharacterizationCache cache;
    const ProgressEvaluator eval(cache);
    const auto pop = twoUserPopulation();
    EXPECT_DOUBLE_EQ(eval.userProgress(pop, 0, {1, 1}), 1.0);
}

TEST(Metrics, SystemProgressIsBudgetWeighted)
{
    CharacterizationCache cache;
    const ProgressEvaluator eval(cache);
    const auto pop = twoUserPopulation();
    const std::vector<std::vector<int>> cores = {{4, 8}, {2}};
    const auto per_user = eval.allUserProgress(pop, cores);
    const double expected =
        (1.0 * per_user[0] + 3.0 * per_user[1]) / 4.0;
    EXPECT_DOUBLE_EQ(eval.systemProgress(pop, cores), expected);
}

TEST(Metrics, ShapeValidation)
{
    CharacterizationCache cache;
    const ProgressEvaluator eval(cache);
    const auto pop = twoUserPopulation();
    EXPECT_THROW(eval.userProgress(pop, 0, {4}), FatalError);
    EXPECT_THROW(eval.allUserProgress(pop, {{1, 1}}), FatalError);
}

TEST(Metrics, MoreCoresMoreProgress)
{
    CharacterizationCache cache;
    const ProgressEvaluator eval(cache);
    const auto pop = twoUserPopulation();
    EXPECT_GT(eval.userProgress(pop, 0, {8, 8}),
              eval.userProgress(pop, 0, {2, 2}));
}

} // namespace
} // namespace amdahl::eval
