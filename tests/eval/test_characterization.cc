/**
 * @file
 * Unit tests for the workload characterization cache.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "eval/characterization.hh"
#include "sim/workload_library.hh"

namespace amdahl::eval {
namespace {

TEST(Characterization, FractionsAreInRange)
{
    CharacterizationCache cache;
    for (std::size_t i = 0; i < sim::workloadLibrary().size(); ++i) {
        const auto &c = cache.of(i);
        EXPECT_GT(c.measuredFraction, 0.3) << c.name;
        EXPECT_LE(c.measuredFraction, 1.0) << c.name;
        EXPECT_GT(c.estimatedFraction, 0.3) << c.name;
        EXPECT_LE(c.estimatedFraction, 1.0) << c.name;
        EXPECT_GT(c.t1Seconds, 0.0) << c.name;
    }
}

TEST(Characterization, EstimatesTrackMeasurements)
{
    // Figure 6's relative accuracy: across workloads the estimate
    // tracks the measurement.
    CharacterizationCache cache;
    for (std::size_t i = 0; i < sim::workloadLibrary().size(); ++i) {
        const auto &c = cache.of(i);
        EXPECT_NEAR(c.estimatedFraction, c.measuredFraction, 0.12)
            << c.name;
    }
}

TEST(Characterization, FractionSourceSelectsCorrectly)
{
    CharacterizationCache cache;
    const auto &c = cache.of(0);
    EXPECT_DOUBLE_EQ(cache.fraction(0, FractionSource::Measured),
                     c.measuredFraction);
    EXPECT_DOUBLE_EQ(cache.fraction(0, FractionSource::Estimated),
                     c.estimatedFraction);
}

TEST(Characterization, CacheReturnsSameObject)
{
    CharacterizationCache cache;
    const auto *a = &cache.of(3);
    const auto *b = &cache.of(3);
    EXPECT_EQ(a, b);
}

TEST(Characterization, FullDatasetSecondsMemoized)
{
    CharacterizationCache cache;
    const double t1 = cache.fullDatasetSeconds(0, 4);
    const double t2 = cache.fullDatasetSeconds(0, 4);
    EXPECT_DOUBLE_EQ(t1, t2);
    EXPECT_GT(cache.fullDatasetSeconds(0, 1),
              cache.fullDatasetSeconds(0, 8));
}

TEST(Characterization, OutOfRangeIndexIsFatal)
{
    CharacterizationCache cache;
    EXPECT_THROW(cache.of(22), FatalError);
    EXPECT_THROW(cache.fullDatasetSeconds(22, 1), FatalError);
}

TEST(Characterization, NamesMatchLibrary)
{
    CharacterizationCache cache;
    EXPECT_EQ(cache.of(0).name, "correlation");
    EXPECT_EQ(cache.of(15).name, "dedup");
}

} // namespace
} // namespace amdahl::eval
