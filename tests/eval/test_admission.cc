/**
 * @file
 * Unit tests for overload admission control in the online simulator:
 * bounded occupancy, bounded queues with shedding, metric accounting,
 * and bit-identical behavior when the feature is disabled.
 */

#include <gtest/gtest.h>

#include <limits>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/fallback_policy.hh"
#include "common/logging.hh"
#include "eval/online.hh"

namespace amdahl::eval {
namespace {

/** A deliberately overloaded scenario: ~10 arrivals per server-epoch
 *  of mid-sized jobs on a small cluster. */
OnlineOptions
overloadScenario()
{
    OnlineOptions opts;
    opts.seed = 9090;
    opts.users = 8;
    opts.servers = 4;
    opts.epochSeconds = 60.0;
    opts.horizonSeconds = 1800.0;
    opts.arrivalsPerServerEpoch = 10.0;
    opts.workScaleMin = 0.5;
    opts.workScaleMax = 1.5;
    return opts;
}

OnlineMetrics
runWith(const OnlineOptions &opts)
{
    CharacterizationCache cache;
    OnlineSimulator sim(cache, opts);
    const alloc::AmdahlBiddingPolicy ab;
    return sim.run(ab, FractionSource::Estimated);
}

TEST(Admission, DisabledFeatureIsBitIdentical)
{
    auto base = overloadScenario();
    auto knobs_changed = base;
    // Disabled admission options must be inert: changing every knob
    // while enabled stays false cannot perturb the run.
    knobs_changed.admission.maxLoadFactor = 1.0;
    knobs_changed.admission.maxQueueLength = 0;
    knobs_changed.admission.shedByEntitlement = false;

    const auto a = runWith(base);
    const auto b = runWith(knobs_changed);
    ASSERT_EQ(a.jobsArrived, b.jobsArrived);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    EXPECT_EQ(a.occupancyHistory, b.occupancyHistory);
    EXPECT_EQ(a.meanCompletionSeconds, b.meanCompletionSeconds);
    EXPECT_EQ(a.workCompleted, b.workCompleted);
    // And the overload counters stay zero without the feature.
    EXPECT_EQ(a.jobsQueued, 0);
    EXPECT_EQ(a.jobsShed, 0);
    EXPECT_EQ(a.jobsQueuedAtHorizon, 0);
    EXPECT_EQ(a.sheddingRate, 0.0);
    EXPECT_EQ(a.meanQueueDelaySeconds, 0.0);
    EXPECT_EQ(a.peakQueueLength, 0);
}

TEST(Admission, ArrivalStreamUnchangedByAdmission)
{
    auto open = overloadScenario();
    auto gated = overloadScenario();
    gated.admission.enabled = true;
    gated.admission.maxLoadFactor = 4.0;
    const auto a = runWith(open);
    const auto b = runWith(gated);
    // Same seed, same demand: admission only decides what happens
    // after each job is drawn.
    EXPECT_EQ(a.jobsArrived, b.jobsArrived);
}

TEST(Admission, OccupancyIsBoundedByTheCap)
{
    auto opts = overloadScenario();
    opts.admission.enabled = true;
    opts.admission.maxLoadFactor = 4.0;
    const auto m = runWith(opts);
    const double cap =
        opts.admission.maxLoadFactor * opts.servers;
    for (double occ : m.occupancyHistory)
        EXPECT_LE(occ, cap);
    EXPECT_GT(m.jobsCompleted, 0);
    // The open system, by contrast, blows straight through the cap.
    const auto open = runWith(overloadScenario());
    double peak = 0.0;
    for (double occ : open.occupancyHistory)
        peak = std::max(peak, occ);
    EXPECT_GT(peak, cap);
    EXPECT_LT(m.meanJobsInSystem, open.meanJobsInSystem);
}

TEST(Admission, JobAccountingConserves)
{
    auto opts = overloadScenario();
    opts.admission.enabled = true;
    opts.admission.maxLoadFactor = 3.0;
    opts.admission.maxQueueLength = 8;
    const auto m = runWith(opts);
    // Every drawn arrival is admitted (in the job log), still queued,
    // or shed — nothing vanishes.
    EXPECT_EQ(static_cast<int>(m.jobs.size()) +
                  m.jobsQueuedAtHorizon + m.jobsShed,
              m.jobsArrived);
    EXPECT_GT(m.jobsQueued, 0);
    EXPECT_GT(m.jobsShed, 0);
    EXPECT_LE(m.jobsShed, m.jobsQueued);
    EXPECT_NEAR(m.sheddingRate,
                static_cast<double>(m.jobsShed) / m.jobsArrived,
                1e-12);
    EXPECT_LE(m.peakQueueLength, opts.admission.maxQueueLength);
    EXPECT_GT(m.meanQueueDelaySeconds, 0.0);
}

TEST(Admission, ZeroQueueShedsEveryOverCapArrival)
{
    auto opts = overloadScenario();
    opts.admission.enabled = true;
    opts.admission.maxLoadFactor = 2.0;
    opts.admission.maxQueueLength = 0;
    const auto m = runWith(opts);
    // With no queue, backpressure degenerates to immediate shedding:
    // everything that ever queued was shed in the same step.
    EXPECT_EQ(m.jobsShed, m.jobsQueued);
    EXPECT_EQ(m.jobsQueuedAtHorizon, 0);
    EXPECT_EQ(m.peakQueueLength, 0);
    EXPECT_EQ(m.meanQueueDelaySeconds, 0.0);
    EXPECT_GT(m.jobsShed, 0);
}

TEST(Admission, SheddingDisciplinesBothConserve)
{
    auto opts = overloadScenario();
    opts.admission.enabled = true;
    opts.admission.maxLoadFactor = 3.0;
    opts.admission.maxQueueLength = 4;
    opts.minBudget = 1;
    opts.maxBudget = 5;

    auto tail = opts;
    tail.admission.shedByEntitlement = false;
    for (const auto &m : {runWith(opts), runWith(tail)}) {
        EXPECT_GT(m.jobsShed, 0);
        EXPECT_EQ(static_cast<int>(m.jobs.size()) +
                      m.jobsQueuedAtHorizon + m.jobsShed,
                  m.jobsArrived);
    }
}

TEST(Admission, InvalidOptionsThrow)
{
    CharacterizationCache cache;
    auto opts = overloadScenario();
    opts.admission.maxLoadFactor = 0.0;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts.admission.maxLoadFactor =
        std::numeric_limits<double>::infinity();
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
    opts = overloadScenario();
    opts.admission.maxQueueLength = -1;
    EXPECT_THROW(OnlineSimulator(cache, opts), FatalError);
}

TEST(Admission, DeadlineEpochsAreCounted)
{
    // A one-iteration clearing deadline on a loaded scenario must
    // surface in the overload metrics and still complete jobs.
    auto opts = overloadScenario();
    opts.arrivalsPerServerEpoch = 2.0;
    CharacterizationCache cache;
    OnlineSimulator sim(cache, opts);
    core::BiddingOptions primary;
    primary.deadline.iterationBudget = 1;
    const alloc::FallbackPolicy policy(primary);
    const auto m = sim.run(policy, FractionSource::Estimated);
    EXPECT_GT(m.deadlineExpiredEpochs, 0);
    EXPECT_EQ(m.deadlineExpiredEpochs, m.fallbackEpochsDeadline);
    EXPECT_GT(m.jobsCompleted, 0);
}

} // namespace
} // namespace amdahl::eval
