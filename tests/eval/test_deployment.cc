/**
 * @file
 * Unit tests for the Section VI-F deployment cost model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "eval/deployment.hh"

namespace amdahl::eval {
namespace {

TEST(Deployment, PaperHeadlineNumber)
{
    // 12.35 ms = 10 * (0.10 + 0.85 + 0.25) + (0.30 + 0.05).
    const DeploymentModel model;
    EXPECT_NEAR(model.totalMs(10, 100, Architecture::Distributed,
                              Mechanism::AmdahlBidding),
                12.35, 1e-9);
}

TEST(Deployment, BreakdownComponentsSum)
{
    const DeploymentModel model;
    const auto b = model.latency(10, 100, Architecture::Distributed,
                                 Mechanism::AmdahlBidding);
    EXPECT_DOUBLE_EQ(b.bidUpdatesMs, 1.0);
    EXPECT_DOUBLE_EQ(b.priceUpdatesMs, 8.5);
    EXPECT_DOUBLE_EQ(b.networkMs, 2.5);
    EXPECT_DOUBLE_EQ(b.finalizationMs, 0.35);
    EXPECT_DOUBLE_EQ(b.totalMs(), 12.35);
}

TEST(Deployment, BestResponseMultiplierApplies)
{
    const DeploymentModel model;
    const auto ab = model.latency(10, 100, Architecture::Distributed,
                                  Mechanism::AmdahlBidding);
    const auto br = model.latency(10, 100, Architecture::Distributed,
                                  Mechanism::BestResponse);
    EXPECT_NEAR(br.bidUpdatesMs, 22.0 * ab.bidUpdatesMs, 1e-12);
    // Non-bid components unchanged.
    EXPECT_DOUBLE_EQ(br.priceUpdatesMs, ab.priceUpdatesMs);
    EXPECT_DOUBLE_EQ(br.networkMs, ab.networkMs);
}

TEST(Deployment, CentralizedSerializesAcrossUsers)
{
    const DeploymentModel model;
    const auto few = model.latency(10, 10, Architecture::Centralized,
                                   Mechanism::AmdahlBidding);
    const auto many = model.latency(10, 1000, Architecture::Centralized,
                                    Mechanism::AmdahlBidding);
    EXPECT_NEAR(many.bidUpdatesMs, 100.0 * few.bidUpdatesMs, 1e-9);
    EXPECT_DOUBLE_EQ(few.networkMs, 0.0);
}

TEST(Deployment, DistributedIsUserCountInvariant)
{
    const DeploymentModel model;
    EXPECT_DOUBLE_EQ(model.totalMs(10, 10, Architecture::Distributed,
                                   Mechanism::AmdahlBidding),
                     model.totalMs(10, 10000,
                                   Architecture::Distributed,
                                   Mechanism::AmdahlBidding));
}

TEST(Deployment, CentralizedBrDominatedByBidUpdates)
{
    // The paper's Section VI-F point: centralized BR overheads are
    // prohibitive because bid updates become the dominant share.
    const DeploymentModel model;
    const auto b = model.latency(10, 1000, Architecture::Centralized,
                                 Mechanism::BestResponse);
    EXPECT_GT(b.bidUpdatesMs / b.totalMs(), 0.99);
}

TEST(Deployment, LatencyScalesLinearlyWithIterations)
{
    const DeploymentModel model;
    const auto one = model.latency(1, 100, Architecture::Distributed,
                                   Mechanism::AmdahlBidding);
    const auto ten = model.latency(10, 100, Architecture::Distributed,
                                   Mechanism::AmdahlBidding);
    EXPECT_NEAR(ten.totalMs() - ten.finalizationMs,
                10.0 * (one.totalMs() - one.finalizationMs), 1e-9);
}

TEST(Deployment, ValidatesInputs)
{
    const DeploymentModel model;
    EXPECT_THROW(model.latency(0, 10, Architecture::Distributed,
                               Mechanism::AmdahlBidding),
                 FatalError);
    EXPECT_THROW(model.latency(10, 0, Architecture::Distributed,
                               Mechanism::AmdahlBidding),
                 FatalError);

    DeploymentCosts bad;
    bad.userBidUpdateMs = -1.0;
    EXPECT_THROW(DeploymentModel{bad}, FatalError);
    bad = DeploymentCosts{};
    bad.networkRttMaxMs = 0.1; // below min
    EXPECT_THROW(DeploymentModel{bad}, FatalError);
    bad = DeploymentCosts{};
    bad.bestResponseMultiplier = 0.5;
    EXPECT_THROW(DeploymentModel{bad}, FatalError);
}

} // namespace
} // namespace amdahl::eval
