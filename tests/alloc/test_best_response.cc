/**
 * @file
 * Unit tests for the price-anticipating Best Response (BR) baseline.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "alloc/best_response.hh"
#include "common/logging.hh"
#include "core/amdahl.hh"
#include "core/bidding.hh"

namespace amdahl::alloc {
namespace {

core::FisherMarket
aliceBobMarket()
{
    core::FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 1.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 1.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});
    return market;
}

TEST(BestResponse, ConvergesAndClearsServers)
{
    const auto market = aliceBobMarket();
    const BestResponsePolicy br;
    const auto result = br.allocate(market);
    EXPECT_TRUE(result.outcome.converged);
    for (std::size_t j = 0; j < market.serverCount(); ++j) {
        EXPECT_NEAR(result.outcome.serverLoad(market, j), 10.0, 1e-6)
            << "server " << j;
    }
}

TEST(BestResponse, NashAllocationNearFisherInSmallMarket)
{
    // With two users the Nash and Fisher equilibria differ but remain
    // qualitatively aligned: each user still concentrates on the
    // server with more parallelism.
    const auto market = aliceBobMarket();
    const auto nash = BestResponsePolicy().allocate(market);
    EXPECT_GT(nash.outcome.allocation[0][1],
              nash.outcome.allocation[0][0]);
    EXPECT_GT(nash.outcome.allocation[1][0],
              nash.outcome.allocation[1][1]);
}

TEST(BestResponse, NoUserBenefitsFromDeviating)
{
    // Nash property: any unilateral bid rebalancing must not raise a
    // user's utility.
    const auto market = aliceBobMarket();
    const auto result = BestResponsePolicy().allocate(market);

    for (std::size_t i = 0; i < 2; ++i) {
        const auto &user = market.user(i);
        // Opposing bids on each of the user's jobs' servers.
        std::vector<double> opposing(user.jobs.size(), 0.0);
        for (std::size_t k = 0; k < user.jobs.size(); ++k) {
            const std::size_t other = 1 - i;
            for (std::size_t k2 = 0;
                 k2 < market.user(other).jobs.size(); ++k2) {
                if (market.user(other).jobs[k2].server ==
                    user.jobs[k].server) {
                    opposing[k] += result.outcome.bids[other][k2];
                }
            }
        }
        auto utility = [&](const std::vector<double> &bids) {
            double total = 0.0;
            for (std::size_t k = 0; k < user.jobs.size(); ++k) {
                const double cap =
                    market.capacity(user.jobs[k].server);
                const double x =
                    cap * bids[k] / (opposing[k] + bids[k]);
                total += core::amdahlSpeedup(
                    user.jobs[k].parallelFraction, x);
            }
            return total;
        };
        const double equilibrium_utility =
            utility(result.outcome.bids[i]);
        for (double shift : {-0.2, -0.05, 0.05, 0.2}) {
            auto deviated = result.outcome.bids[i];
            deviated[0] += shift;
            deviated[1] -= shift;
            if (deviated[0] <= 0.0 || deviated[1] <= 0.0)
                continue;
            EXPECT_LE(utility(deviated), equilibrium_utility + 1e-4);
        }
    }
}

TEST(BestResponse, StrategicUsersHoldBackOnUncontestedServers)
{
    // A price-anticipating sole bidder on a server gets its full
    // capacity regardless of bid size, so she shifts budget to the
    // contested server (Section VI-D's discussion).
    core::FisherMarket market({10.0, 10.0});
    market.addUser({"solo", 1.0, {{0, 0.9, 1.0}, {1, 0.9, 1.0}}});
    market.addUser({"contender", 1.0, {{1, 0.9, 1.0}}});
    const auto nash = BestResponsePolicy().allocate(market);
    const auto fisher = core::solveAmdahlBidding(market);
    // Solo's bid on server 0 (uncontested) is tiny under BR.
    EXPECT_LT(nash.outcome.bids[0][0], 0.05);
    // But she still receives all of server 0.
    EXPECT_NEAR(nash.outcome.allocation[0][0], 10.0, 1e-6);
    // And her allocation on the contested server exceeds the
    // price-taking (Fisher) allocation.
    EXPECT_GT(nash.outcome.allocation[0][1],
              fisher.allocation[0][1] - 1e-6);
}

TEST(BestResponse, BudgetsAreRespected)
{
    const auto market = aliceBobMarket();
    const auto result = BestResponsePolicy().allocate(market);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        double spent = 0.0;
        for (double b : result.outcome.bids[i])
            spent += b;
        EXPECT_LE(spent, market.user(i).budget + 1e-6);
    }
}

TEST(BestResponse, RoundedAllocationPreservesCapacity)
{
    const auto market = aliceBobMarket();
    const auto result = BestResponsePolicy().allocate(market);
    std::vector<int> load(2, 0);
    for (std::size_t i = 0; i < 2; ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k)
            load[jobs[k].server] += result.cores[i][k];
    }
    EXPECT_EQ(load[0], 10);
    EXPECT_EQ(load[1], 10);
}

TEST(BestResponse, BestResponseBidsValidatesShape)
{
    const core::MarketUser user{"u", 1.0, {{0, 0.9, 1.0}}};
    EXPECT_THROW(BestResponsePolicy::bestResponseBids(
                     user, {10.0}, {0.5, 0.5}),
                 FatalError);
}

TEST(BestResponse, SymmetricDuopolySplitsEvenly)
{
    core::FisherMarket market({8.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"b", 1.0, {{0, 0.9, 1.0}}});
    const auto result = BestResponsePolicy().allocate(market);
    EXPECT_NEAR(result.outcome.allocation[0][0], 4.0, 0.05);
    EXPECT_NEAR(result.outcome.allocation[1][0], 4.0, 0.05);
}

TEST(BestResponse, PolicyNameIsBR)
{
    EXPECT_EQ(BestResponsePolicy().name(), "BR");
}

} // namespace
} // namespace amdahl::alloc
