/**
 * @file
 * Unit tests for the lottery-scheduling baseline.
 */

#include <gtest/gtest.h>

#include "alloc/lottery.hh"
#include "common/logging.hh"

namespace amdahl::alloc {
namespace {

core::FisherMarket
duopoly(double budget_a, double budget_b, double capacity = 12.0)
{
    core::FisherMarket market({capacity});
    market.addUser({"a", budget_a, {{0, 0.9, 1.0}}});
    market.addUser({"b", budget_b, {{0, 0.9, 1.0}}});
    return market;
}

TEST(Lottery, AllocatesEveryCore)
{
    const LotteryPolicy lottery;
    const auto result = lottery.allocate(duopoly(1.0, 1.0));
    EXPECT_EQ(result.userCores(0) + result.userCores(1), 12);
}

TEST(Lottery, DeterministicGivenSeed)
{
    const auto market = duopoly(1.0, 3.0);
    const auto a = LotteryPolicy(7).allocate(market);
    const auto b = LotteryPolicy(7).allocate(market);
    EXPECT_EQ(a.cores, b.cores);
}

TEST(Lottery, DifferentSeedsDifferentRaffles)
{
    // Two seeds occasionally raffle the same split; across several
    // seeds at least one must differ from the first.
    const auto market = duopoly(1.0, 1.0, 24.0);
    const auto reference = LotteryPolicy(1).allocate(market);
    bool differed = false;
    for (std::uint64_t s = 2; s <= 8 && !differed; ++s)
        differed = LotteryPolicy(s).allocate(market).cores !=
                   reference.cores;
    EXPECT_TRUE(differed);
}

TEST(Lottery, ExpectedSharesTrackEntitlements)
{
    // Average over many raffles: shares approach budget proportions
    // (the mechanism's defining property).
    const auto market = duopoly(1.0, 3.0, 24.0);
    double total_a = 0.0;
    const int raffles = 400;
    for (int s = 0; s < raffles; ++s)
        total_a += LotteryPolicy(static_cast<std::uint64_t>(s))
                       .allocate(market)
                       .userCores(0);
    const double mean_a = total_a / raffles;
    EXPECT_NEAR(mean_a, 6.0, 0.5); // entitled to 24 * 1/4
}

TEST(Lottery, SingleRaffleHasVariance)
{
    // Unlike PS, individual raffles deviate from exact shares.
    const auto market = duopoly(1.0, 1.0, 24.0);
    bool deviated = false;
    for (int s = 0; s < 50 && !deviated; ++s) {
        const auto r =
            LotteryPolicy(static_cast<std::uint64_t>(s) + 100)
                .allocate(market);
        deviated = r.userCores(0) != 12;
    }
    EXPECT_TRUE(deviated);
}

TEST(Lottery, MultiJobUserTicketsDoNotMultiply)
{
    // A user gains no tickets by splitting into more jobs on one
    // server (the entitlement anti-gaming property of Section II-A).
    core::FisherMarket market({24.0});
    market.addUser({"many", 1.0,
                    {{0, 0.9, 1.0}, {0, 0.9, 1.0}, {0, 0.9, 1.0}}});
    market.addUser({"one", 1.0, {{0, 0.9, 1.0}}});
    double total_many = 0.0;
    const int raffles = 400;
    for (int s = 0; s < raffles; ++s) {
        total_many += LotteryPolicy(static_cast<std::uint64_t>(s))
                          .allocate(market)
                          .userCores(0);
    }
    EXPECT_NEAR(total_many / raffles, 12.0, 0.6);
}

TEST(Lottery, PolicyNameIsLS)
{
    EXPECT_EQ(LotteryPolicy().name(), "LS");
}

} // namespace
} // namespace amdahl::alloc
