/**
 * @file
 * Unit tests for the Amdahl Bidding policy adapter.
 */

#include <gtest/gtest.h>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/policy.hh"
#include "common/logging.hh"

namespace amdahl::alloc {
namespace {

core::FisherMarket
aliceBobMarket()
{
    core::FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 1.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 1.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});
    return market;
}

TEST(AmdahlBiddingPolicy, ProducesRoundedEquilibrium)
{
    const AmdahlBiddingPolicy ab;
    const auto result = ab.allocate(aliceBobMarket());
    EXPECT_EQ(result.policyName, "AB");
    EXPECT_TRUE(result.outcome.converged);
    // Fractional equilibrium (1.34, 8.68)/(8.66, 1.32) rounds to
    // (1, 9)/(9, 1).
    EXPECT_EQ(result.cores[0], (std::vector<int>{1, 9}));
    EXPECT_EQ(result.cores[1], (std::vector<int>{9, 1}));
}

TEST(AmdahlBiddingPolicy, PricesAreReported)
{
    const AmdahlBiddingPolicy ab;
    const auto result = ab.allocate(aliceBobMarket());
    ASSERT_EQ(result.outcome.prices.size(), 2u);
    EXPECT_NEAR(result.outcome.prices[0], 0.100, 0.002);
    EXPECT_NEAR(result.outcome.prices[1], 0.099, 0.002);
}

TEST(AmdahlBiddingPolicy, OptionsArePassedThrough)
{
    core::BiddingOptions opts;
    opts.maxIterations = 1;
    opts.priceTolerance = 1e-15;
    const AmdahlBiddingPolicy ab(opts);
    const auto result = ab.allocate(aliceBobMarket());
    EXPECT_FALSE(result.outcome.converged);
    EXPECT_EQ(result.outcome.iterations, 1);
}

TEST(AmdahlBiddingPolicy, UserCoresHelper)
{
    const AmdahlBiddingPolicy ab;
    const auto result = ab.allocate(aliceBobMarket());
    EXPECT_EQ(result.userCores(0), 10);
    EXPECT_EQ(result.userCores(1), 10);
}

TEST(JobsOnServer, LocatesJobs)
{
    const auto market = aliceBobMarket();
    const auto on0 = jobsOnServer(market, 0);
    ASSERT_EQ(on0.size(), 2u);
    EXPECT_EQ(on0[0], (std::pair<std::size_t, std::size_t>{0, 0}));
    EXPECT_EQ(on0[1], (std::pair<std::size_t, std::size_t>{1, 0}));
}

} // namespace
} // namespace amdahl::alloc
