/**
 * @file
 * Unit tests for Proportional Sharing, including the paper's
 * Section II-B worked example.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "alloc/proportional_share.hh"
#include "common/logging.hh"

namespace amdahl::alloc {
namespace {

/** Section II-B: three equal users, three 12-core servers. */
core::FisherMarket
sectionTwoMarket()
{
    core::FisherMarket market({12.0, 12.0, 12.0});
    // User 1 demands (8, 4, 0): jobs on servers A and B only.
    market.addUser({"u1", 1.0, {{0, 0.9, 1.0}, {1, 0.9, 1.0}}});
    // User 2 demands (0, 4, 8).
    market.addUser({"u2", 1.0, {{1, 0.9, 1.0}, {2, 0.9, 1.0}}});
    // User 3 demands (8, 8, 8).
    market.addUser(
        {"u3", 1.0, {{0, 0.9, 1.0}, {1, 0.9, 1.0}, {2, 0.9, 1.0}}});
    return market;
}

TEST(ProportionalShare, ReproducesSectionTwoExample)
{
    // With the paper's demand vectors, the Fair Share Scheduler
    // allocates u1=(6A,4B,0C), u2=(0A,4B,6C), u3=(6A,4B,6C).
    const auto market = sectionTwoMarket();
    const std::vector<std::vector<double>> demands = {
        {8.0, 4.0}, {4.0, 8.0}, {8.0, 8.0, 8.0}};
    const ProportionalShare ps(demands);
    const auto result = ps.allocate(market);

    EXPECT_EQ(result.cores[0], (std::vector<int>{6, 4}));
    EXPECT_EQ(result.cores[1], (std::vector<int>{4, 6}));
    EXPECT_EQ(result.cores[2], (std::vector<int>{6, 4, 6}));

    // Aggregate: 10, 10, 16 — violating datacenter-wide entitlements
    // of 12 each (the paper's motivating observation).
    EXPECT_EQ(result.userCores(0), 10);
    EXPECT_EQ(result.userCores(1), 10);
    EXPECT_EQ(result.userCores(2), 16);
}

TEST(ProportionalShare, UncappedUsersSplitByEntitlement)
{
    core::FisherMarket market({12.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"b", 2.0, {{0, 0.9, 1.0}}});
    const ProportionalShare ps;
    const auto result = ps.allocate(market);
    EXPECT_EQ(result.cores[0][0], 4);
    EXPECT_EQ(result.cores[1][0], 8);
}

TEST(ProportionalShare, AbsentUserShareIsRedistributed)
{
    // "If a user does not compute on a server, her share is reassigned
    // to other users on that server in proportion to entitlements."
    core::FisherMarket market({12.0, 12.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"b", 1.0, {{0, 0.9, 1.0}, {1, 0.9, 1.0}}});
    const ProportionalShare ps;
    const auto result = ps.allocate(market);
    // Server 0 split between a and b; server 1 entirely b's.
    EXPECT_EQ(result.cores[0][0], 6);
    EXPECT_EQ(result.cores[1][0], 6);
    EXPECT_EQ(result.cores[1][1], 12);
}

TEST(ProportionalShare, DemandCapsLeaveCoresIdle)
{
    core::FisherMarket market({12.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"b", 1.0, {{0, 0.9, 1.0}}});
    const ProportionalShare ps(
        std::vector<std::vector<double>>{{2.0}, {3.0}});
    const auto result = ps.allocate(market);
    EXPECT_EQ(result.cores[0][0], 2);
    EXPECT_EQ(result.cores[1][0], 3);
}

TEST(ProportionalShare, CapRedistributionCascades)
{
    // a capped at 1 core; remaining 11 split between b and c (2:1).
    core::FisherMarket market({12.0});
    market.addUser({"a", 5.0, {{0, 0.9, 1.0}}});
    market.addUser({"b", 2.0, {{0, 0.9, 1.0}}});
    market.addUser({"c", 1.0, {{0, 0.9, 1.0}}});
    const ProportionalShare ps(
        std::vector<std::vector<double>>{{1.0}, {100.0}, {100.0}});
    const auto result = ps.allocate(market);
    EXPECT_EQ(result.cores[0][0], 1);
    EXPECT_EQ(result.cores[1][0], 7);  // 11 * 2/3 = 7.33 -> 7
    EXPECT_EQ(result.cores[2][0], 4);  // 11 * 1/3 = 3.67 -> 4
}

TEST(ProportionalShare, ServersAreFullyAllocatedWithoutCaps)
{
    const auto market = sectionTwoMarket();
    const ProportionalShare ps;
    const auto result = ps.allocate(market);
    std::vector<int> load(3, 0);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k)
            load[jobs[k].server] += result.cores[i][k];
    }
    for (int l : load)
        EXPECT_EQ(l, 12);
}

TEST(ProportionalShare, MultipleJobsOfOneUserSplitHerShare)
{
    core::FisherMarket market({12.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}, {0, 0.5, 1.0}}});
    market.addUser({"b", 1.0, {{0, 0.9, 1.0}}});
    const ProportionalShare ps;
    const auto result = ps.allocate(market);
    // a's 6-core share split evenly across her two jobs.
    EXPECT_EQ(result.cores[0][0] + result.cores[0][1], 6);
    EXPECT_EQ(result.cores[1][0], 6);
}

TEST(ProportionalShare, FractionalAllocationsRecordedBeforeRounding)
{
    core::FisherMarket market({10.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"b", 2.0, {{0, 0.9, 1.0}}});
    const ProportionalShare ps;
    const auto result = ps.allocate(market);
    EXPECT_NEAR(result.outcome.allocation[0][0], 10.0 / 3.0, 1e-9);
    EXPECT_NEAR(result.outcome.allocation[1][0], 20.0 / 3.0, 1e-9);
    EXPECT_EQ(result.cores[0][0] + result.cores[1][0], 10);
}

TEST(ProportionalShare, ValidatesDemandShape)
{
    const auto market = sectionTwoMarket();
    const ProportionalShare bad_users(
        std::vector<std::vector<double>>{{1.0}});
    EXPECT_THROW(bad_users.allocate(market), FatalError);
    const ProportionalShare bad_jobs(std::vector<std::vector<double>>{
        {1.0}, {1.0, 1.0}, {1.0, 1.0, 1.0}});
    EXPECT_THROW(bad_jobs.allocate(market), FatalError);
}

TEST(ProportionalShare, PolicyNameIsPS)
{
    EXPECT_EQ(ProportionalShare().name(), "PS");
}

} // namespace
} // namespace amdahl::alloc
