/**
 * @file
 * Unit tests for job placement policies.
 */

#include <gtest/gtest.h>

#include "alloc/placement.hh"
#include "common/logging.hh"

namespace amdahl::alloc {
namespace {

TEST(Placement, RuleNames)
{
    EXPECT_EQ(toString(PlacementRule::RoundRobin), "round-robin");
    EXPECT_EQ(toString(PlacementRule::LeastLoaded), "least-loaded");
    EXPECT_EQ(toString(PlacementRule::PriceAware), "price-aware");
}

TEST(Placement, RoundRobinCycles)
{
    JobPlacer placer(PlacementRule::RoundRobin, 3);
    EXPECT_EQ(placer.place(), 0u);
    EXPECT_EQ(placer.place(), 1u);
    EXPECT_EQ(placer.place(), 2u);
    EXPECT_EQ(placer.place(), 0u);
}

TEST(Placement, LeastLoadedPicksEmptiest)
{
    JobPlacer placer(PlacementRule::LeastLoaded, 3);
    EXPECT_EQ(placer.place(), 0u); // loads: 1,0,0
    EXPECT_EQ(placer.place(), 1u); // loads: 1,1,0
    EXPECT_EQ(placer.place(), 2u); // loads: 1,1,1
    placer.jobFinished(1);
    EXPECT_EQ(placer.place(), 1u);
}

TEST(Placement, LeastLoadedTiesBreakLow)
{
    JobPlacer placer(PlacementRule::LeastLoaded, 2);
    EXPECT_EQ(placer.place(), 0u);
    placer.jobFinished(0);
    EXPECT_EQ(placer.place(), 0u);
}

TEST(Placement, PriceAwarePicksCheapest)
{
    JobPlacer placer(PlacementRule::PriceAware, 3);
    placer.updatePrices({0.5, 0.1, 0.3});
    EXPECT_EQ(placer.place(), 1u);
    placer.updatePrices({0.05, 0.1, 0.3});
    EXPECT_EQ(placer.place(), 0u);
}

TEST(Placement, PriceAwareDefaultsToFirstWhenUnpriced)
{
    JobPlacer placer(PlacementRule::PriceAware, 3);
    EXPECT_EQ(placer.place(), 0u); // all prices 0: lowest index wins
}

TEST(Placement, LoadTracking)
{
    JobPlacer placer(PlacementRule::RoundRobin, 2);
    placer.place();
    placer.place();
    placer.place();
    EXPECT_EQ(placer.load(0), 2);
    EXPECT_EQ(placer.load(1), 1);
    placer.jobFinished(0);
    EXPECT_EQ(placer.load(0), 1);
}

TEST(Placement, Validation)
{
    EXPECT_THROW(JobPlacer(PlacementRule::RoundRobin, 0), FatalError);
    JobPlacer placer(PlacementRule::RoundRobin, 2);
    EXPECT_THROW(placer.jobFinished(2), FatalError);
    EXPECT_THROW(placer.load(2), FatalError);
    EXPECT_THROW(placer.updatePrices({0.1}), FatalError);
    EXPECT_THROW(placer.jobFinished(0), PanicError); // none placed
}

} // namespace
} // namespace amdahl::alloc
