/**
 * @file
 * Unit tests for the Greedy (G) and Upper-Bound (UB) policies.
 */

#include <gtest/gtest.h>

#include "alloc/greedy.hh"
#include "common/logging.hh"
#include "core/amdahl.hh"

namespace amdahl::alloc {
namespace {

TEST(Greedy, AllocatesEveryCore)
{
    core::FisherMarket market({12.0, 12.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}, {1, 0.8, 1.0}}});
    market.addUser({"b", 2.0, {{0, 0.7, 1.0}, {1, 0.95, 1.0}}});
    const GreedyPolicy g;
    const auto result = g.allocate(market);
    std::vector<int> load(2, 0);
    for (std::size_t i = 0; i < 2; ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k)
            load[jobs[k].server] += result.cores[i][k];
    }
    EXPECT_EQ(load[0], 12);
    EXPECT_EQ(load[1], 12);
}

TEST(Greedy, MoreParallelJobGetsMoreCores)
{
    core::FisherMarket market({12.0});
    market.addUser({"a", 1.0, {{0, 0.98, 1.0}}});
    market.addUser({"b", 1.0, {{0, 0.55, 1.0}}});
    const GreedyPolicy g;
    const auto result = g.allocate(market);
    EXPECT_GT(result.cores[0][0], result.cores[1][0]);
}

TEST(Greedy, IgnoresEntitlements)
{
    // Same jobs, wildly different budgets: G allocates identically.
    core::FisherMarket market({12.0});
    market.addUser({"poor", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"rich", 5.0, {{0, 0.9, 1.0}}});
    const GreedyPolicy g;
    const auto result = g.allocate(market);
    EXPECT_EQ(result.cores[0][0], result.cores[1][0]);
}

TEST(UpperBound, FavorsHighBudgetUsers)
{
    // Same jobs, different budgets: UB weights marginal progress by
    // entitlement and gives the rich user more.
    core::FisherMarket market({12.0});
    market.addUser({"poor", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"rich", 5.0, {{0, 0.9, 1.0}}});
    const UpperBoundPolicy ub;
    const auto result = ub.allocate(market);
    EXPECT_GT(result.cores[1][0], result.cores[0][0]);
}

TEST(UpperBound, MaximizesSystemProgressObjective)
{
    // UB's integral allocation must beat every neighboring integral
    // allocation on the Eq. 10 objective (with Amdahl-model progress).
    core::FisherMarket market({8.0});
    market.addUser({"a", 1.0, {{0, 0.95, 1.0}}});
    market.addUser({"b", 3.0, {{0, 0.7, 1.0}}});
    const UpperBoundPolicy ub;
    const auto result = ub.allocate(market);

    auto objective = [&](int xa, int xb) {
        return 1.0 * core::amdahlSpeedup(0.95, xa) +
               3.0 * core::amdahlSpeedup(0.7, xb);
    };
    const int xa = result.cores[0][0];
    const int xb = result.cores[1][0];
    const double best = objective(xa, xb);
    if (xa > 0) {
        EXPECT_GE(best, objective(xa - 1, xb + 1) - 1e-12);
    }
    if (xb > 0) {
        EXPECT_GE(best, objective(xa + 1, xb - 1) - 1e-12);
    }
}

TEST(Greedy, MaximizesUnweightedProgressObjective)
{
    core::FisherMarket market({8.0});
    market.addUser({"a", 1.0, {{0, 0.95, 1.0}}});
    market.addUser({"b", 3.0, {{0, 0.7, 1.0}}});
    const GreedyPolicy g;
    const auto result = g.allocate(market);

    auto objective = [&](int xa, int xb) {
        return core::amdahlSpeedup(0.95, xa) +
               core::amdahlSpeedup(0.7, xb);
    };
    const int xa = result.cores[0][0];
    const int xb = result.cores[1][0];
    const double best = objective(xa, xb);
    if (xa > 0) {
        EXPECT_GE(best, objective(xa - 1, xb + 1) - 1e-12);
    }
    if (xb > 0) {
        EXPECT_GE(best, objective(xa + 1, xb - 1) - 1e-12);
    }
}

TEST(Greedy, UserWeightNormalizationMatters)
{
    // A user with many jobs has each job's marginal diluted by her
    // weight sum, mirroring the UserProgress definition.
    core::FisherMarket market({6.0});
    market.addUser({"many", 1.0,
                    {{0, 0.9, 1.0}, {0, 0.9, 1.0}, {0, 0.9, 1.0}}});
    market.addUser({"one", 1.0, {{0, 0.9, 1.0}}});
    const GreedyPolicy g;
    const auto result = g.allocate(market);
    // The single-job user's marginal is 3x each of the many-job
    // user's, so she collects more cores than any individual job.
    EXPECT_GT(result.cores[1][0], result.cores[0][0]);
    EXPECT_GT(result.cores[1][0], result.cores[0][1]);
}

TEST(Greedy, FractionalOutcomeMirrorsIntegers)
{
    core::FisherMarket market({7.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"b", 1.0, {{0, 0.6, 1.0}}});
    const GreedyPolicy g;
    const auto result = g.allocate(market);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_DOUBLE_EQ(result.outcome.allocation[i][0],
                         static_cast<double>(result.cores[i][0]));
    }
}

TEST(Greedy, PolicyNames)
{
    EXPECT_EQ(GreedyPolicy().name(), "G");
    EXPECT_EQ(UpperBoundPolicy().name(), "UB");
}

TEST(Greedy, ValidatesMarket)
{
    core::FisherMarket empty({4.0});
    EXPECT_THROW(GreedyPolicy().allocate(empty), FatalError);
}

} // namespace
} // namespace amdahl::alloc
