/**
 * @file
 * Unit tests for the degraded-mode fallback ladder.
 */

#include <gtest/gtest.h>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/fallback_policy.hh"
#include "alloc/proportional_share.hh"
#include "common/logging.hh"
#include "core/bidding.hh"

namespace amdahl::alloc {
namespace {

core::FisherMarket
smallMarket()
{
    core::FisherMarket market({24.0, 24.0});
    market.addUser({"a", 3.0, {{0, 0.95, 1.0}, {1, 0.60, 1.0}}});
    market.addUser({"b", 1.0, {{0, 0.85, 1.0}}});
    market.addUser({"c", 2.0, {{1, 0.99, 1.0}, {0, 0.30, 1.0}}});
    return market;
}

TEST(Fallback, PrimaryServesConvergingMarkets)
{
    const auto market = smallMarket();
    const FallbackPolicy fb;
    const auto result = fb.allocate(market);
    EXPECT_EQ(result.mode, ServeMode::Primary);
    EXPECT_TRUE(result.outcome.converged);
    EXPECT_EQ(result.policyName, "AB+FB");

    // Identical to the unwrapped policy under the same options.
    const AmdahlBiddingPolicy ab;
    const auto plain = ab.allocate(market);
    ASSERT_EQ(result.cores.size(), plain.cores.size());
    for (std::size_t i = 0; i < result.cores.size(); ++i)
        EXPECT_EQ(result.cores[i], plain.cores[i]);
}

TEST(Fallback, DampedRetryRescuesTightIterationBudget)
{
    const auto market = smallMarket();
    core::BiddingOptions primary;
    primary.maxIterations = 2;
    primary.priceTolerance = 1e-12;
    FallbackOptions ladder;
    ladder.retryMaxIterations = 20000;
    const FallbackPolicy fb(primary, ladder);
    const auto result = fb.allocate(market);
    EXPECT_EQ(result.mode, ServeMode::DampedRetry);
    EXPECT_TRUE(result.outcome.converged);
    // Iterations accumulate across rungs.
    EXPECT_GT(result.outcome.iterations, 2);
}

TEST(Fallback, ProportionalFallbackWhenBothMarketAttemptsFail)
{
    const auto market = smallMarket();
    core::BiddingOptions primary;
    primary.maxIterations = 2;
    primary.priceTolerance = 1e-15;
    FallbackOptions ladder;
    ladder.retryMaxIterations = 3;
    const FallbackPolicy fb(primary, ladder);
    const auto result = fb.allocate(market);
    EXPECT_EQ(result.mode, ServeMode::ProportionalFallback);
    EXPECT_FALSE(result.outcome.converged);
    EXPECT_EQ(result.outcome.iterations, 5);
    EXPECT_EQ(result.policyName, "AB+FB");

    // The emergency allocation is exactly proportional share by
    // entitlement: feasible and budget-respecting.
    const auto ps = ProportionalShare().allocate(market);
    ASSERT_EQ(result.cores.size(), ps.cores.size());
    for (std::size_t i = 0; i < result.cores.size(); ++i)
        EXPECT_EQ(result.cores[i], ps.cores[i]);
    std::vector<int> perServer(2, 0);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        for (std::size_t k = 0; k < market.user(i).jobs.size(); ++k) {
            perServer[market.user(i).jobs[k].server] +=
                result.cores[i][k];
        }
    }
    EXPECT_LE(perServer[0], 24);
    EXPECT_LE(perServer[1], 24);
}

TEST(Fallback, DisabledLadderServesPrimaryVerbatim)
{
    const auto market = smallMarket();
    core::BiddingOptions primary;
    primary.maxIterations = 2;
    primary.priceTolerance = 1e-15;
    FallbackOptions ladder;
    ladder.enabled = false;
    const FallbackPolicy fb(primary, ladder);
    const auto result = fb.allocate(market);
    // Pre-ladder behavior: the unconverged primary result, with
    // non-convergence still visible to the caller.
    EXPECT_EQ(result.mode, ServeMode::Primary);
    EXPECT_FALSE(result.outcome.converged);
    EXPECT_EQ(result.outcome.iterations, 2);
}

TEST(Fallback, TotalMessageLossFallsThroughToProportional)
{
    const auto market = smallMarket();
    core::BiddingOptions primary;
    primary.maxIterations = 200;
    FallbackOptions ladder;
    ladder.retryMaxIterations = 200;
    const FallbackPolicy fb(primary, ladder);
    core::BidTransportFaults transport;
    transport.lossRate = 1.0; // nothing ever reaches the coordinator
    transport.seed = 99;
    const auto result = fb.allocate(market, transport);
    EXPECT_EQ(result.mode, ServeMode::ProportionalFallback);
    EXPECT_FALSE(result.outcome.converged);
}

TEST(Fallback, ServeModeNames)
{
    EXPECT_STREQ(toString(ServeMode::Primary), "primary");
    EXPECT_STREQ(toString(ServeMode::DampedRetry), "damped-retry");
    EXPECT_STREQ(toString(ServeMode::ProportionalFallback),
                 "proportional-fallback");
}

TEST(Fallback, ValidatesOptions)
{
    FallbackOptions bad;
    bad.retryDampingFactor = 0.0;
    EXPECT_THROW(FallbackPolicy({}, bad), FatalError);
    bad.retryDampingFactor = 1.0;
    EXPECT_THROW(FallbackPolicy({}, bad), FatalError);
    bad = FallbackOptions{};
    bad.retryMaxIterations = -1;
    EXPECT_THROW(FallbackPolicy({}, bad), FatalError);
}

} // namespace
} // namespace amdahl::alloc
