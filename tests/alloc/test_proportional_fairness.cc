/**
 * @file
 * Unit tests for the Proportional Fairness (Eisenberg-Gale) policy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/proportional_fairness.hh"
#include "common/logging.hh"

namespace amdahl::alloc {
namespace {

core::FisherMarket
aliceBobMarket()
{
    core::FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 1.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 1.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});
    return market;
}

TEST(ProportionalFairness, ClearsServersAndRounds)
{
    const ProportionalFairnessPolicy pf;
    const auto result = pf.allocate(aliceBobMarket());
    EXPECT_EQ(result.policyName, "PF");
    EXPECT_TRUE(result.outcome.converged);
    EXPECT_EQ(result.cores[0][0] + result.cores[1][0], 10);
    EXPECT_EQ(result.cores[0][1] + result.cores[1][1], 10);
}

TEST(ProportionalFairness, TracksButDiffersFromTheMarket)
{
    const auto market = aliceBobMarket();
    const auto pf = ProportionalFairnessPolicy().allocate(market);
    const auto ab = AmdahlBiddingPolicy().allocate(market);
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t k = 0; k < 2; ++k) {
            EXPECT_NEAR(pf.outcome.allocation[i][k],
                        ab.outcome.allocation[i][k], 0.6);
        }
    }
    // Distinct solution concept (Amdahl utility not homogeneous).
    EXPECT_GT(std::abs(pf.outcome.allocation[0][0] -
                       ab.outcome.allocation[0][0]),
              0.05);
}

TEST(ProportionalFairness, MaximizesLogUtilityOverTheMarket)
{
    const auto market = aliceBobMarket();
    const auto pf = ProportionalFairnessPolicy().allocate(market);
    const auto ab = AmdahlBiddingPolicy().allocate(market);
    auto eg_objective = [&](const core::JobMatrix &x) {
        double phi = 0.0;
        for (std::size_t i = 0; i < market.userCount(); ++i) {
            phi += market.user(i).budget *
                   std::log(market.utilityOf(i).value(x[i]));
        }
        return phi;
    };
    EXPECT_GE(eg_objective(pf.outcome.allocation),
              eg_objective(ab.outcome.allocation) - 1e-9);
}

TEST(ProportionalFairness, RespectsWeightsAndBudgets)
{
    core::FisherMarket market({12.0});
    market.addUser({"small", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"big", 3.0, {{0, 0.9, 1.0}}});
    const auto result = ProportionalFairnessPolicy().allocate(market);
    // Higher budget weighs the log term more: the big user gets more.
    EXPECT_GT(result.outcome.allocation[1][0],
              result.outcome.allocation[0][0]);
}

TEST(ProportionalFairness, ValidatesMarket)
{
    core::FisherMarket empty({4.0});
    EXPECT_THROW(ProportionalFairnessPolicy().allocate(empty),
                 FatalError);
}

} // namespace
} // namespace amdahl::alloc
