/**
 * @file
 * Unit tests for the grid profiler.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "profiling/profiler.hh"
#include "sim/workload_library.hh"

namespace amdahl::profiling {
namespace {

TEST(Profiler, DefaultLadderIncludesOneAndMax)
{
    const Profiler profiler((sim::TaskSimulator()));
    const auto &cores = profiler.coreCounts();
    ASSERT_FALSE(cores.empty());
    EXPECT_EQ(cores.front(), 1);
    EXPECT_EQ(cores.back(), profiler.simulator().server().cores());
}

TEST(Profiler, CustomLadderGetsOneInserted)
{
    const Profiler profiler(sim::TaskSimulator(), {4, 8});
    const auto &cores = profiler.coreCounts();
    EXPECT_EQ(cores, (std::vector<int>{1, 4, 8}));
}

TEST(Profiler, LadderIsSortedAndDeduplicated)
{
    const Profiler profiler(sim::TaskSimulator(), {8, 4, 8, 1});
    EXPECT_EQ(profiler.coreCounts(), (std::vector<int>{1, 4, 8}));
}

TEST(Profiler, RejectsInvalidCoreCounts)
{
    EXPECT_THROW(Profiler(sim::TaskSimulator(), {0}), FatalError);
    EXPECT_THROW(Profiler(sim::TaskSimulator(), {25}), FatalError);
}

TEST(Profiler, ProfilesFullGrid)
{
    const Profiler profiler(sim::TaskSimulator(), {2, 4});
    const auto &w = sim::findWorkload("kmeans");
    const auto profile = profiler.profile(w, {0.1, 0.2});
    EXPECT_EQ(profile.points.size(), 6u); // 3 core counts x 2 datasets.
    EXPECT_EQ(profile.workloadName, "kmeans");
    EXPECT_GT(profile.secondsAt(0.1, 1), 0.0);
    EXPECT_GT(profile.secondsAt(0.2, 4), 0.0);
}

TEST(Profiler, SpeedupsAreRelativeToOneCore)
{
    const Profiler profiler(sim::TaskSimulator(), {2, 8});
    const auto &w = sim::findWorkload("swaptions");
    const auto profile = profiler.profile(w, {w.datasetGB});
    const auto speedups = profile.speedups(w.datasetGB);
    ASSERT_EQ(speedups.size(), 2u);
    EXPECT_GT(speedups[0], 1.5);
    EXPECT_GT(speedups[1], speedups[0]);
}

TEST(Profiler, MultiCoreCountsExcludeOne)
{
    const Profiler profiler(sim::TaskSimulator(), {2, 4});
    const auto &w = sim::findWorkload("vips");
    const auto profile = profiler.profile(w, {w.datasetGB});
    EXPECT_EQ(profile.multiCoreCounts(), (std::vector<int>{2, 4}));
}

TEST(Profiler, MissingGridCellIsFatal)
{
    const Profiler profiler(sim::TaskSimulator(), {2});
    const auto &w = sim::findWorkload("vips");
    const auto profile = profiler.profile(w, {1.0});
    EXPECT_THROW(profile.secondsAt(2.0, 2), FatalError);
    EXPECT_THROW(profile.secondsAt(1.0, 16), FatalError);
}

TEST(Profiler, RejectsEmptyOrInvalidDatasets)
{
    const Profiler profiler((sim::TaskSimulator()));
    const auto &w = sim::findWorkload("vips");
    EXPECT_THROW(profiler.profile(w, {}), FatalError);
    EXPECT_THROW(profiler.profile(w, {-1.0}), FatalError);
}

TEST(Profiler, DatasetsAreSortedInProfile)
{
    const Profiler profiler(sim::TaskSimulator(), {2});
    const auto &w = sim::findWorkload("vips");
    const auto profile = profiler.profile(w, {2.0, 0.5, 1.0});
    EXPECT_EQ(profile.datasetsGB,
              (std::vector<double>{0.5, 1.0, 2.0}));
}

} // namespace
} // namespace amdahl::profiling
