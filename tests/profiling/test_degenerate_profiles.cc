/**
 * @file
 * End-to-end tests for degenerate profiling inputs: single-point
 * curves, sub-serial speedups, non-monotone dips, and parallel
 * fractions of exactly 0 and 1 must flow through Karp-Flatt, the
 * predictor, and market clearing without ever producing NaN or Inf.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "common/invariants.hh"
#include "core/bidding.hh"
#include "core/market.hh"
#include "profiling/karp_flatt.hh"
#include "profiling/predictor.hh"
#include "profiling/profiler.hh"
#include "profiling/sanitize.hh"

namespace amdahl::profiling {
namespace {

/** Hand-build a grid profile from a T(dataset, cores) function. */
WorkloadProfile
makeProfile(std::vector<int> cores, std::vector<double> datasets,
            const std::function<double(double, int)> &seconds)
{
    WorkloadProfile profile;
    profile.workloadName = "synthetic";
    profile.coreCounts = std::move(cores);
    profile.datasetsGB = std::move(datasets);
    for (double gb : profile.datasetsGB) {
        for (int x : profile.coreCounts)
            profile.points.push_back({gb, x, seconds(gb, x)});
    }
    return profile;
}

/** Solve a one-server market holding a single job with fraction f and
 *  assert the outcome is finite and feasible. */
core::BiddingResult
clearWithFraction(double f)
{
    core::FisherMarket market({16.0});
    core::MarketUser user;
    user.name = "degenerate";
    user.budget = 1.0;
    user.jobs.push_back({0, f, 1.0});
    market.addUser(std::move(user));
    core::MarketUser peer;
    peer.name = "peer";
    peer.budget = 1.0;
    peer.jobs.push_back({0, 0.5, 1.0});
    market.addUser(std::move(peer));

    const auto outcome = core::solveAmdahlBidding(market);
    invariants::CheckMarketState(outcome.prices, outcome.bids,
                                 "degenerate clearing");
    std::vector<double> loads(market.serverCount(), 0.0);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        for (std::size_t k = 0; k < market.user(i).jobs.size(); ++k)
            loads[market.user(i).jobs[k].server] +=
                outcome.allocation[i][k];
    }
    invariants::CheckAllocationFeasible(loads, market.capacities(),
                                        1e-6, "degenerate clearing");
    return outcome;
}

TEST(DegenerateProfiles, SinglePointCurveEstimatesFiniteFraction)
{
    // Only one core count above 1: Karp-Flatt has a single sample, so
    // the variance is zero and the estimate is that one F(x).
    const auto profile = makeProfile(
        {1, 8}, {4.0}, [](double, int x) {
            return 10.0 * (0.25 + 0.75 / static_cast<double>(x));
        });
    const auto est = estimateFraction(profile, 4.0);
    ASSERT_EQ(est.fractions.size(), 1u);
    EXPECT_TRUE(std::isfinite(est.expected));
    EXPECT_DOUBLE_EQ(est.variance, 0.0);
    EXPECT_DOUBLE_EQ(est.medianF, est.expected);
    EXPECT_NEAR(est.expected, 0.75, 1e-9);
}

TEST(DegenerateProfiles, SubSerialSpeedupsClampNotExplode)
{
    // More cores make it *slower* (s(x) < 1 everywhere): the raw
    // Karp-Flatt estimate leaves [0, 1] but the pipeline clamps.
    const auto profile = makeProfile(
        {1, 2, 4, 8}, {4.0}, [](double, int x) {
            return 10.0 * (1.0 + 0.1 * static_cast<double>(x));
        });
    const auto est = estimateFraction(profile, 4.0);
    for (double f : est.fractions) {
        EXPECT_TRUE(std::isfinite(f));
        EXPECT_GE(f, minClampedFraction);
        EXPECT_LE(f, 1.0);
    }
    EXPECT_TRUE(std::isfinite(estimateFractionFromSamples(profile)));

    auto speedups = profile.speedups(4.0);
    const auto repair = sanitizeSpeedups(
        speedups, profile.multiCoreCounts());
    EXPECT_EQ(repair.subSerialClamped, 0); // s in (0,1) is legal
    for (double s : speedups)
        EXPECT_GT(s, 0.0);
}

TEST(DegenerateProfiles, NonMonotoneCurveFlowsThroughPipeline)
{
    // A dip at 4 cores (contention) then recovery: estimates stay
    // finite, and the isotonic repair removes the dip when asked.
    const auto profile = makeProfile(
        {1, 2, 4, 8}, {4.0}, [](double, int x) {
            if (x == 4)
                return 9.0; // slower than the 2-core run
            return 10.0 * (0.2 + 0.8 / static_cast<double>(x));
        });
    const auto est = estimateFraction(profile, 4.0);
    for (double f : est.fractions)
        EXPECT_TRUE(std::isfinite(f));
    EXPECT_TRUE(std::isfinite(est.medianF));

    auto speedups = profile.speedups(4.0);
    SanitizeOptions opts;
    opts.enforceMonotone = true;
    const auto repair =
        sanitizeSpeedups(speedups, profile.multiCoreCounts(), opts);
    EXPECT_GE(repair.monotoneRaised, 1);
    for (std::size_t k = 1; k < speedups.size(); ++k)
        EXPECT_GE(speedups[k], speedups[k - 1]);
}

TEST(DegenerateProfiles, FlatCurveGivesSerialFractionAndClears)
{
    // Identical times at every core count: s(x) = 1, raw F = 0, the
    // clamp floors it, and the market still clears with that f.
    const auto profile = makeProfile(
        {1, 2, 4, 8}, {4.0}, [](double, int) { return 10.0; });
    const auto est = estimateFraction(profile, 4.0);
    for (double f : est.fractions)
        EXPECT_DOUBLE_EQ(f, minClampedFraction);
    const auto outcome = clearWithFraction(est.expected);
    EXPECT_TRUE(outcome.converged);
}

TEST(DegenerateProfiles, LinearCurveGivesPerfectFractionAndClears)
{
    // Perfect scaling: s(x) = x, F(x) = 1 exactly. The estimate must
    // be exactly 1 (not 1 + epsilon) and clearing must stay finite.
    const auto profile = makeProfile(
        {1, 2, 4, 8}, {4.0}, [](double, int x) {
            return 10.0 / static_cast<double>(x);
        });
    const auto est = estimateFraction(profile, 4.0);
    for (double f : est.fractions)
        EXPECT_DOUBLE_EQ(f, 1.0);
    const auto outcome = clearWithFraction(est.expected);
    EXPECT_TRUE(outcome.converged);
}

TEST(DegenerateProfiles, ExtremeFractionsClearDirectly)
{
    // f exactly 0 and exactly 1 are legal market inputs and must not
    // produce NaN prices or infeasible allocations.
    for (double f : {0.0, 1.0}) {
        const auto outcome = clearWithFraction(f);
        EXPECT_TRUE(outcome.converged) << "f = " << f;
        for (double p : outcome.prices)
            EXPECT_TRUE(std::isfinite(p) && p > 0.0) << "f = " << f;
    }
}

TEST(DegenerateProfiles, PredictorSurvivesDegenerateGrid)
{
    // Two datasets (the fit minimum) over a flat, sub-serial curve:
    // the fitted fraction and every prediction must be finite.
    const auto profile = makeProfile(
        {1, 2, 4}, {1.0, 2.0}, [](double gb, int x) {
            return gb * (5.0 + 0.2 * static_cast<double>(x));
        });
    const auto predictor = PerformancePredictor::fit(profile);
    EXPECT_TRUE(std::isfinite(predictor.parallelFraction()));
    EXPECT_GE(predictor.parallelFraction(), 0.0);
    EXPECT_LE(predictor.parallelFraction(), 1.0);
    for (int cores : {1, 2, 4, 16, 64}) {
        const double t = predictor.predictSeconds(3.0, cores);
        EXPECT_TRUE(std::isfinite(t)) << cores;
        EXPECT_GT(t, 0.0) << cores;
    }
}

TEST(DegenerateProfiles, SanitizedEstimateFeedsMarketEndToEnd)
{
    // The whole trust boundary in one pass: a hostile profile (dip +
    // sub-serial tail) is sanitized, estimated, policed, and cleared.
    const auto profile = makeProfile(
        {1, 2, 4, 8}, {4.0}, [](double, int x) {
            if (x == 4)
                return 12.0; // worse than serial
            return 10.0 * (0.3 + 0.7 / static_cast<double>(x));
        });
    auto speedups = profile.speedups(4.0);
    SanitizeOptions opts;
    opts.enforceMonotone = true;
    sanitizeSpeedups(speedups, profile.multiCoreCounts(), opts);

    const double f = estimateFraction(profile, 4.0).medianF;
    ASSERT_TRUE(std::isfinite(f));

    core::MarketUser report;
    report.name = "tenant";
    report.budget = 1.0;
    report.jobs.push_back({0, f, 1.0});
    core::MarketUser peer;
    peer.name = "peer";
    peer.budget = 1.0;
    peer.jobs.push_back({0, 0.5, 1.0});
    ReportPolicy policy;
    policy.minFraction = 0.01;
    policy.maxFraction = 0.999;
    std::vector<core::MarketUser> reports;
    reports.push_back(std::move(report));
    reports.push_back(std::move(peer));
    const auto market = sanitizeMarketReports(
        {16.0}, std::move(reports), policy);

    const auto outcome = core::solveAmdahlBidding(market);
    EXPECT_TRUE(outcome.converged);
    invariants::CheckMarketState(outcome.prices, outcome.bids,
                                 "sanitized end-to-end");
}

} // namespace
} // namespace amdahl::profiling
