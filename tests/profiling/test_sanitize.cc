/**
 * @file
 * Unit tests for speedup-curve sanitization, robust aggregation, and
 * market-report policing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "core/market.hh"
#include "profiling/sanitize.hh"

namespace amdahl::profiling {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(SanitizeSpeedups, CleanCurveIsUntouched)
{
    std::vector<double> s{1.8, 3.2, 5.5};
    const std::vector<double> before = s;
    const auto report = sanitizeSpeedups(s, {2, 4, 8});
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(report.total(), 0);
    EXPECT_EQ(s, before);
}

TEST(SanitizeSpeedups, RepairsNonFiniteToSerial)
{
    std::vector<double> s{kNan, 3.0, kInf};
    const auto report = sanitizeSpeedups(s, {2, 4, 8});
    EXPECT_EQ(report.nonFiniteRepaired, 2);
    EXPECT_EQ(s[0], 1.0);
    EXPECT_EQ(s[1], 3.0);
    EXPECT_EQ(s[2], 1.0);
}

TEST(SanitizeSpeedups, ClampsSubSerialAndSuperLinear)
{
    std::vector<double> s{-2.0, 3.0, 100.0};
    SanitizeOptions opts;
    const auto report = sanitizeSpeedups(s, {2, 4, 8}, opts);
    EXPECT_EQ(report.subSerialClamped, 1);
    EXPECT_EQ(report.superLinearClamped, 1);
    EXPECT_EQ(s[0], opts.minSpeedup);
    EXPECT_EQ(s[2], opts.superLinearSlack * 8.0);
}

TEST(SanitizeSpeedups, MonotoneRepairIsOptIn)
{
    std::vector<double> dip{2.0, 1.5, 5.0};
    auto copy = dip;
    EXPECT_TRUE(sanitizeSpeedups(copy, {2, 4, 8}).clean());

    SanitizeOptions opts;
    opts.enforceMonotone = true;
    const auto report = sanitizeSpeedups(dip, {2, 4, 8}, opts);
    EXPECT_EQ(report.monotoneRaised, 1);
    EXPECT_EQ(dip[1], 2.0);
    EXPECT_EQ(dip[2], 5.0);
}

TEST(SanitizeSpeedups, CallerBugsThrow)
{
    std::vector<double> s{2.0};
    EXPECT_THROW(sanitizeSpeedups(s, {2, 4}), FatalError);
    SanitizeOptions bad;
    bad.minSpeedup = 0.0;
    EXPECT_THROW(sanitizeSpeedups(s, {2}, bad), FatalError);
    bad = {};
    bad.superLinearSlack = 0.5;
    EXPECT_THROW(sanitizeSpeedups(s, {2}, bad), FatalError);
    EXPECT_THROW(sanitizeSpeedups(s, {1}), FatalError);
}

core::FisherMarket
twoUserMarket(double fA, double fB, double weightB = 1.0)
{
    core::FisherMarket market({10.0, 10.0});
    core::MarketUser a;
    a.name = "A";
    a.budget = 2.0;
    a.jobs.push_back({0, 0.5, 1.0});
    a.jobs.push_back({1, fA, 1.0});
    market.addUser(std::move(a));
    core::MarketUser b;
    b.name = "B";
    b.budget = 1.0;
    b.jobs.push_back({0, fB, weightB});
    market.addUser(std::move(b));
    return market;
}

TEST(SanitizeReports, InBandMarketPassesUnchanged)
{
    const auto market = twoUserMarket(0.9, 0.4);
    ReportPolicy policy;
    policy.minFraction = 0.01;
    policy.maxFraction = 0.999;
    ReportAudit audit;
    const auto out = sanitizeMarketReports(market, policy, &audit);
    EXPECT_TRUE(audit.clean());
    EXPECT_EQ(audit.penalizedUsers, 0);
    EXPECT_EQ(out.user(0).budget, 2.0);
    EXPECT_EQ(out.user(1).jobs[0].parallelFraction, 0.4);
}

TEST(SanitizeReports, ClampsOutOfBandFractionAndPenalizes)
{
    const auto market = twoUserMarket(0.9, 1.0);
    ReportPolicy policy;
    policy.minFraction = 0.01;
    policy.maxFraction = 0.99;
    policy.misreportPenalty = 0.5;
    ReportAudit audit;
    const auto out = sanitizeMarketReports(market, policy, &audit);
    EXPECT_EQ(audit.clampedJobs, 1);
    EXPECT_EQ(audit.penalizedUsers, 1);
    ASSERT_EQ(audit.flagged.size(), 2u);
    EXPECT_EQ(audit.flagged[0], 0);
    EXPECT_EQ(audit.flagged[1], 1);
    EXPECT_EQ(out.user(1).jobs[0].parallelFraction, 0.99);
    EXPECT_EQ(out.user(1).budget, 0.5); // 1.0 * penalty
    EXPECT_EQ(out.user(0).budget, 2.0); // honest user untouched
}

TEST(SanitizeReports, InflatedFReportIsUnprofitable)
{
    // The §VI-E incentive: claiming f = 1.0 past the policy band must
    // not grow the claimant's allocation once the penalty applies.
    const auto honest = twoUserMarket(0.9, 0.95);
    const auto inflated = twoUserMarket(0.9, 1.0);
    ReportPolicy policy;
    policy.maxFraction = 0.99;
    policy.misreportPenalty = 0.8;
    const auto cleared = sanitizeMarketReports(inflated, policy);
    // The inflated report was clamped to the band edge and the budget
    // docked, so the liar's entitlement share strictly shrank.
    EXPECT_LT(cleared.entitlementShare(1),
              honest.entitlementShare(1));
    EXPECT_EQ(cleared.user(1).jobs[0].parallelFraction, 0.99);
}

TEST(SanitizeReports, RepairsNonFiniteReports)
{
    // FisherMarket::addUser rejects non-finite values outright, so a
    // hostile report only exists as a raw spec — the pre-admission
    // overload is the one place the repair path can fire.
    core::MarketUser hostile;
    hostile.name = "sly";
    hostile.budget = 1.0;
    hostile.jobs.push_back({0, kNan, kInf});
    core::MarketUser honest;
    honest.name = "ok";
    honest.budget = 2.0;
    honest.jobs.push_back({0, 0.5, 1.0});

    ReportPolicy policy;
    policy.minFraction = 0.2;
    policy.maxFraction = 0.8;
    policy.misreportPenalty = 0.5;
    ReportAudit audit;
    std::vector<core::MarketUser> reports;
    reports.push_back(std::move(hostile));
    reports.push_back(std::move(honest));
    const auto market = sanitizeMarketReports(
        {8.0}, std::move(reports), policy, &audit);

    EXPECT_EQ(audit.repairedJobs, 2); // fraction + weight
    EXPECT_EQ(audit.clampedJobs, 0);
    EXPECT_EQ(audit.penalizedUsers, 1);
    ASSERT_EQ(audit.flagged.size(), 2u);
    EXPECT_EQ(audit.flagged[0], 1);
    EXPECT_EQ(audit.flagged[1], 0);
    // NaN fraction repairs to the band midpoint, Inf weight to 1.
    EXPECT_EQ(market.user(0).jobs[0].parallelFraction, 0.5);
    EXPECT_EQ(market.user(0).jobs[0].weight, 1.0);
    EXPECT_EQ(market.user(0).budget, 0.5); // 1.0 * penalty
    EXPECT_EQ(market.user(1).budget, 2.0);
    // The repaired market passes full validation and can clear.
    market.validate();
}

TEST(SanitizeReports, BadPolicyThrows)
{
    const auto market = twoUserMarket(0.5, 0.5);
    ReportPolicy bad;
    bad.minFraction = 0.9;
    bad.maxFraction = 0.1;
    EXPECT_THROW(sanitizeMarketReports(market, bad), FatalError);
    bad = {};
    bad.misreportPenalty = 0.0;
    EXPECT_THROW(sanitizeMarketReports(market, bad), FatalError);
    bad.misreportPenalty = 1.5;
    EXPECT_THROW(sanitizeMarketReports(market, bad), FatalError);
}

} // namespace
} // namespace amdahl::profiling
