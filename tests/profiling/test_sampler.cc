/**
 * @file
 * Unit tests for dataset sampling plans.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "profiling/sampler.hh"
#include "sim/workload_library.hh"

namespace amdahl::profiling {
namespace {

TEST(Sampler, SparkLadderForLargeDataset)
{
    // A 24 GB Spark input samples the paper's 1-6 GB ladder.
    const auto plan = planSamples(sim::findWorkload("correlation"));
    EXPECT_EQ(plan.sampleSizesGB.size(), 6u);
    EXPECT_DOUBLE_EQ(plan.sampleSizesGB.front(), 1.0);
    EXPECT_DOUBLE_EQ(plan.sampleSizesGB.back(), 6.0);
    EXPECT_DOUBLE_EQ(plan.fullSizeGB, 24.0);
}

TEST(Sampler, LadderClippedBelowDatasetSize)
{
    // A 5.3 GB input keeps only ladder entries below 5.3 GB.
    const auto plan = planSamples(sim::findWorkload("pagerank"));
    for (double gb : plan.sampleSizesGB)
        EXPECT_LT(gb, 5.3);
    EXPECT_GE(plan.sampleSizesGB.size(), 3u);
}

TEST(Sampler, SmallDatasetFallsBackToFractions)
{
    // kmeans's 327 MB input cannot use the 1-6 GB ladder.
    const auto &kmeans = sim::findWorkload("kmeans");
    const auto plan = planSamples(kmeans);
    EXPECT_GE(plan.sampleSizesGB.size(), 1u);
    for (double gb : plan.sampleSizesGB) {
        EXPECT_GT(gb, 0.0);
        EXPECT_LE(gb, kmeans.datasetGB);
    }
}

TEST(Sampler, MinimumParallelismFootnoteRespected)
{
    // Samples of large datasets must produce at least the configured
    // number of tasks (paper footnote 1).
    SamplerOptions opts;
    opts.minTasksPerSample = 100;
    const auto &corr = sim::findWorkload("correlation");
    const auto plan = planSamples(corr, opts);
    for (double gb : plan.sampleSizesGB)
        EXPECT_GE(gb / corr.blockSizeGB, 99.999);
}

TEST(Sampler, ParsecUsesSimlargeFractions)
{
    const auto &ferret = sim::findWorkload("ferret");
    const auto plan = planSamples(ferret);
    EXPECT_EQ(plan.sampleSizesGB.size(), 4u);
    for (double gb : plan.sampleSizesGB)
        EXPECT_LT(gb, ferret.datasetGB);
    EXPECT_DOUBLE_EQ(plan.sampleSizesGB.front(),
                     0.2 * ferret.datasetGB);
}

TEST(Sampler, SamplesAreAscending)
{
    for (const auto &w : sim::workloadLibrary()) {
        const auto plan = planSamples(w);
        for (std::size_t i = 1; i < plan.sampleSizesGB.size(); ++i) {
            EXPECT_GT(plan.sampleSizesGB[i],
                      plan.sampleSizesGB[i - 1] - 1e-12)
                << w.name;
        }
    }
}

TEST(Sampler, EveryLibraryWorkloadGetsAPlan)
{
    for (const auto &w : sim::workloadLibrary()) {
        const auto plan = planSamples(w);
        EXPECT_FALSE(plan.sampleSizesGB.empty()) << w.name;
        EXPECT_DOUBLE_EQ(plan.fullSizeGB, w.datasetGB) << w.name;
    }
}

} // namespace
} // namespace amdahl::profiling
