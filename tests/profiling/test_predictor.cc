/**
 * @file
 * Unit tests for the two-dimensional performance predictor
 * (Section IV-B/C).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "profiling/predictor.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/workload_library.hh"

namespace amdahl::profiling {
namespace {

PerformancePredictor
fitFor(const char *name)
{
    const auto &w = sim::findWorkload(name);
    const Profiler profiler((sim::TaskSimulator()));
    const auto plan = planSamples(w);
    return PerformancePredictor::fit(
        profiler.profile(w, plan.sampleSizesGB));
}

TEST(Predictor, LinearModelsAreGoodFits)
{
    // Figure 4: execution time scales linearly with dataset size; the
    // per-core-count linear models should have R^2 near 1.
    const auto &w = sim::findWorkload("correlation");
    const Profiler profiler((sim::TaskSimulator()));
    const auto plan = planSamples(w);
    const auto profile = profiler.profile(w, plan.sampleSizesGB);
    const auto predictor = PerformancePredictor::fit(profile);
    for (int cores : predictor.modeledCoreCounts())
        EXPECT_GT(predictor.modelForCores(cores).r2, 0.99) << cores;
}

TEST(Predictor, FractionWithinLibraryRange)
{
    for (const auto &w : sim::workloadLibrary()) {
        const Profiler profiler((sim::TaskSimulator()));
        const auto plan = planSamples(w);
        const auto predictor = PerformancePredictor::fit(
            profiler.profile(w, plan.sampleSizesGB));
        EXPECT_GT(predictor.parallelFraction(), 0.3) << w.name;
        EXPECT_LE(predictor.parallelFraction(), 1.0) << w.name;
    }
}

TEST(Predictor, PredictsFullDatasetTimesAccurately)
{
    // Figure 7: predictions on the full dataset across allocations.
    // Clean workloads should land within ~15% (the paper reports
    // 5-15% average error).
    const auto &w = sim::findWorkload("decision");
    const auto predictor = fitFor("decision");
    sim::TaskSimulator sim;
    for (int x : {1, 2, 4, 8, 16, 24}) {
        const double predicted =
            predictor.predictSeconds(w.datasetGB, x);
        const double measured =
            sim.executionSeconds(w, w.datasetGB, x);
        EXPECT_NEAR(predicted, measured, 0.15 * measured)
            << x << " cores";
    }
}

TEST(Predictor, EvaluateReportsErrors)
{
    const auto &w = sim::findWorkload("decision");
    const auto predictor = fitFor("decision");
    const sim::TaskSimulator sim;
    const auto report = evaluatePredictor(predictor, sim, w,
                                          w.datasetGB, {2, 4, 8, 16});
    ASSERT_EQ(report.errorPercent.size(), 4u);
    EXPECT_LT(report.meanErrorPercent, 20.0);
    EXPECT_GE(report.errorSummary.max, report.errorSummary.median);
    for (double err : report.errorPercent)
        EXPECT_GE(err, 0.0);
}

TEST(Predictor, CannealHasLargerErrorThanCleanWorkloads)
{
    // Figure 8: cache/memory-intensive canneal is poorly modeled from
    // sampled datasets.
    const sim::TaskSimulator sim;
    const auto &canneal = sim::findWorkload("canneal");
    const auto &swaptions = sim::findWorkload("swaptions");
    const auto canneal_report =
        evaluatePredictor(fitFor("canneal"), sim, canneal,
                          canneal.datasetGB, {4, 8, 16, 24});
    const auto swaptions_report =
        evaluatePredictor(fitFor("swaptions"), sim, swaptions,
                          swaptions.datasetGB, {4, 8, 16, 24});
    EXPECT_GT(canneal_report.meanErrorPercent,
              swaptions_report.meanErrorPercent);
}

TEST(Predictor, DefaultPipelineStaysLinear)
{
    // The paper's evaluated pipeline uses linear models even for
    // quadratic workloads; model selection must be opt-in.
    const auto &qr = sim::findExtensionWorkload("qr");
    const Profiler profiler((sim::TaskSimulator()));
    const auto plan = planSamples(qr);
    const auto predictor = PerformancePredictor::fit(
        profiler.profile(qr, plan.sampleSizesGB));
    EXPECT_EQ(predictor.scalingDegree(), 1u);
}

TEST(Predictor, QuadraticSelectionEngagesForQr)
{
    const auto &qr = sim::findExtensionWorkload("qr");
    const Profiler profiler((sim::TaskSimulator()));
    const auto plan = planSamples(qr);
    const auto profile = profiler.profile(qr, plan.sampleSizesGB);

    PredictorOptions opts;
    opts.allowQuadratic = true;
    const auto quad = PerformancePredictor::fit(profile, opts);
    EXPECT_EQ(quad.scalingDegree(), 2u);

    // And it slashes the full-dataset prediction error.
    const sim::TaskSimulator sim;
    const auto lin_report = evaluatePredictor(
        PerformancePredictor::fit(profile), sim, qr, qr.datasetGB,
        {4, 8, 16});
    const auto quad_report =
        evaluatePredictor(quad, sim, qr, qr.datasetGB, {4, 8, 16});
    EXPECT_LT(quad_report.meanErrorPercent,
              0.5 * lin_report.meanErrorPercent);
}

TEST(Predictor, QuadraticSelectionLeavesLinearWorkloadsAlone)
{
    const auto &w = sim::findWorkload("correlation");
    const Profiler profiler((sim::TaskSimulator()));
    const auto plan = planSamples(w);
    PredictorOptions opts;
    opts.allowQuadratic = true;
    const auto predictor = PerformancePredictor::fit(
        profiler.profile(w, plan.sampleSizesGB), opts);
    EXPECT_EQ(predictor.scalingDegree(), 1u);
}

TEST(Predictor, NeedsAtLeastTwoDatasets)
{
    const auto &w = sim::findWorkload("vips");
    const Profiler profiler((sim::TaskSimulator()));
    const auto profile = profiler.profile(w, {1.0});
    EXPECT_THROW(PerformancePredictor::fit(profile), FatalError);
}

TEST(Predictor, ValidatesPredictArguments)
{
    const auto predictor = fitFor("vips");
    EXPECT_THROW(predictor.predictSeconds(0.0, 4), FatalError);
    EXPECT_THROW(predictor.predictSeconds(1.0, 0), FatalError);
    EXPECT_THROW(predictor.modelForCores(999), FatalError);
}

TEST(Predictor, MorCoresPredictsFasterExecution)
{
    const auto predictor = fitFor("ferret");
    const double t4 = predictor.predictSeconds(2.0, 4);
    const double t16 = predictor.predictSeconds(2.0, 16);
    EXPECT_GT(t4, t16);
}

TEST(Predictor, LargerDatasetPredictsSlowerExecution)
{
    const auto predictor = fitFor("correlation");
    EXPECT_GT(predictor.predictSeconds(24.0, 8),
              predictor.predictSeconds(6.0, 8));
}

} // namespace
} // namespace amdahl::profiling
