/**
 * @file
 * Unit tests for the Karp-Flatt estimation pipeline (Section IV).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/stats.hh"
#include "profiling/karp_flatt.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/workload_library.hh"

namespace amdahl::profiling {
namespace {

WorkloadProfile
profileOf(const char *name, std::vector<int> cores = {2, 4, 8, 16, 24})
{
    const Profiler profiler(sim::TaskSimulator(), std::move(cores));
    const auto &w = sim::findWorkload(name);
    return profiler.profile(w, {w.datasetGB});
}

TEST(KarpFlatt, EstimateNearStructuralFractionForCleanWorkloads)
{
    const auto &w = sim::findWorkload("correlation");
    const auto est =
        estimateFraction(profileOf("correlation"), w.datasetGB);
    EXPECT_NEAR(est.expected, w.structuralParallelFraction(), 0.02);
}

TEST(KarpFlatt, LowVarianceForAmdahlFriendlyWorkloads)
{
    // Figure 3: well-behaved workloads have tiny Var(F).
    const auto &w = sim::findWorkload("swaptions");
    const auto est =
        estimateFraction(profileOf("swaptions"), w.datasetGB);
    EXPECT_LT(est.variance, 1e-3);
}

TEST(KarpFlatt, GraphWorkloadEstimateFallsWithCoreCount)
{
    // Figure 1: communication overheads make F(x) decrease in x for
    // graph analytics.
    const auto &w = sim::findWorkload("pagerank");
    const auto est = estimateFraction(profileOf("pagerank"), w.datasetGB);
    ASSERT_GE(est.fractions.size(), 3u);
    EXPECT_GT(est.fractions.front(), est.fractions.back() + 0.01);
}

TEST(KarpFlatt, GraphWorkloadsHaveHigherVarianceThanClean)
{
    const auto &pr = sim::findWorkload("pagerank");
    const auto &bs = sim::findWorkload("blackscholes");
    const double var_graph =
        estimateFraction(profileOf("pagerank"), pr.datasetGB).variance;
    const double var_clean =
        estimateFraction(profileOf("blackscholes"), bs.datasetGB)
            .variance;
    EXPECT_GT(var_graph, var_clean);
}

TEST(KarpFlatt, EstimatesAreClamped)
{
    for (const auto &w : sim::workloadLibrary()) {
        const Profiler profiler(sim::TaskSimulator(), {2, 8, 24});
        const auto profile = profiler.profile(w, {w.datasetGB});
        const auto est = estimateFraction(profile, w.datasetGB);
        for (double f : est.fractions) {
            EXPECT_GE(f, minClampedFraction) << w.name;
            EXPECT_LE(f, 1.0) << w.name;
        }
    }
}

TEST(KarpFlatt, ExpectedIsMeanOfPerCoreEstimates)
{
    const auto &w = sim::findWorkload("ferret");
    const auto est = estimateFraction(profileOf("ferret"), w.datasetGB);
    double mean = 0.0;
    for (double f : est.fractions)
        mean += f;
    mean /= static_cast<double>(est.fractions.size());
    EXPECT_DOUBLE_EQ(est.expected, mean);
}

TEST(KarpFlatt, NeedsMultiCoreProfiles)
{
    const Profiler profiler(sim::TaskSimulator(), {1});
    const auto &w = sim::findWorkload("ferret");
    const auto profile = profiler.profile(w, {w.datasetGB});
    EXPECT_THROW(estimateFraction(profile, w.datasetGB), FatalError);
}

TEST(KarpFlatt, SampledEstimateIsGeometricMeanAcrossDatasets)
{
    const auto &w = sim::findWorkload("decision");
    const Profiler profiler(sim::TaskSimulator(), {2, 4, 8, 16, 24});
    const auto plan = planSamples(w);
    const auto profile = profiler.profile(w, plan.sampleSizesGB);
    const double estimate = estimateFractionFromSamples(profile);

    std::vector<double> expectations;
    for (double gb : profile.datasetsGB)
        expectations.push_back(estimateFraction(profile, gb).expected);
    EXPECT_NEAR(estimate, amdahl::geometricMean(expectations), 1e-12);
}

TEST(KarpFlatt, SampledEstimateTracksFullDatasetForCleanWorkloads)
{
    // Figure 6: sampled and full-dataset estimates agree for most
    // workloads.
    for (const char *name : {"svm", "correlation", "linear", "decision",
                             "blackscholes", "bodytrack", "ferret",
                             "vips", "x264"}) {
        const auto &w = sim::findWorkload(name);
        const Profiler profiler((sim::TaskSimulator()));
        const auto plan = planSamples(w);
        const auto sampled = profiler.profile(w, plan.sampleSizesGB);
        const auto full = profiler.profile(w, {w.datasetGB});
        const double est = estimateFractionFromSamples(sampled);
        const double meas =
            estimateFraction(full, w.datasetGB).expected;
        EXPECT_NEAR(est, meas, 0.05) << name;
    }
}

TEST(KarpFlatt, CannealSampledEstimateOverestimates)
{
    // Figure 6's outlier: canneal is memory-intensive; small sampled
    // datasets miss the bandwidth ceiling and over-estimate F.
    const auto &w = sim::findWorkload("canneal");
    const Profiler profiler((sim::TaskSimulator()));
    const auto plan = planSamples(w);
    const auto sampled = profiler.profile(w, plan.sampleSizesGB);
    const auto full = profiler.profile(w, {w.datasetGB});
    const double est = estimateFractionFromSamples(sampled);
    const double meas = estimateFraction(full, w.datasetGB).expected;
    EXPECT_GT(est, meas + 0.01);
}

} // namespace
} // namespace amdahl::profiling
