/**
 * @file
 * Unit tests for the metrics registry (obs/metrics.hh): counter
 * saturation, histogram bucket boundaries and quantile estimates,
 * snapshot/reset semantics, and the exporters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace amdahl::obs {
namespace {

TEST(Counter, CountsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SaturatesInsteadOfWrapping)
{
    const std::uint64_t max = ~std::uint64_t{0};
    Counter c;
    c.add(max - 1);
    c.add(10); // Would wrap; must pin to max.
    EXPECT_EQ(c.value(), max);
    c.add();
    EXPECT_EQ(c.value(), max);
}

TEST(Gauge, LastWriteWins)
{
    Gauge g;
    g.set(2.5);
    g.add(0.5);
    EXPECT_DOUBLE_EQ(g.value(), 3.0);
    g.set(-1.0);
    EXPECT_DOUBLE_EQ(g.value(), -1.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, RejectsBadBounds)
{
    EXPECT_THROW(Histogram({}), FatalError);
    EXPECT_THROW(Histogram({1.0, 1.0}), FatalError);
    EXPECT_THROW(Histogram({2.0, 1.0}), FatalError);
    EXPECT_THROW(
        Histogram({std::numeric_limits<double>::infinity()}),
        FatalError);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpper)
{
    Histogram h({1.0, 10.0, 100.0});
    h.record(1.0);   // == bound 0: bucket 0
    h.record(1.5);   // bucket 1
    h.record(10.0);  // == bound 1: bucket 1
    h.record(100.0); // == bound 2: bucket 2
    h.record(100.1); // overflow
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.minSeen(), 1.0);
    EXPECT_DOUBLE_EQ(h.maxSeen(), 100.1);
}

TEST(Histogram, NanLandsInOverflowBucket)
{
    Histogram h({1.0, 2.0});
    h.record(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.bucketCount(2), 1u);
}

TEST(Histogram, QuantileInterpolatesWithinBucket)
{
    Histogram h({10.0, 20.0, 30.0});
    // Four samples in [10, 20]: the p50 rank (2 of 4) falls inside
    // that bucket, interpolated between the observed min and the
    // bucket's upper bound.
    for (double v : {12.0, 14.0, 16.0, 18.0})
        h.record(v);
    const double p50 = h.quantile(0.5);
    EXPECT_GE(p50, 12.0);
    EXPECT_LE(p50, 20.0);
    // Every quantile stays inside the observed range.
    EXPECT_GE(h.quantile(0.0), 12.0);
    EXPECT_LE(h.quantile(1.0), 18.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), h.quantile(0.5)); // finite
}

TEST(Histogram, QuantileEmptyIsZero)
{
    Histogram h({1.0});
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileOverflowReportsMax)
{
    Histogram h({1.0});
    h.record(5.0);
    h.record(7.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 7.0);
}

TEST(Registry, RegistersOnceAndAccumulates)
{
    MetricsRegistry reg;
    reg.counter("a").add(3);
    reg.counter("a").add(4);
    EXPECT_EQ(reg.counter("a").value(), 7u);
    reg.gauge("g").set(1.5);
    reg.histogram("h", {1.0, 2.0}).record(1.5);
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].name, "a");
    EXPECT_EQ(snap.counters[0].value, 7u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 1u);
    EXPECT_FALSE(snap.empty());
}

TEST(Registry, ConflictingHistogramBoundsAreFatal)
{
    MetricsRegistry reg;
    reg.histogram("h", {1.0, 2.0});
    EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), FatalError);
    // Re-registration with identical (or omitted) bounds is fine.
    reg.histogram("h", {1.0, 2.0}).record(0.5);
    reg.histogram("h", {}).record(0.5);
    EXPECT_EQ(reg.histogram("h", {}).count(), 2u);
}

TEST(Registry, ResetZeroesValuesButKeepsNames)
{
    MetricsRegistry reg;
    reg.counter("c").add(5);
    reg.gauge("g").set(2.0);
    reg.histogram("h", {1.0}).record(0.5);
    reg.reset();
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.counters[0].value, 0u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].value, 0.0);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 0u);
    // Dimensions survive the reset so re-registration stays cheap.
    EXPECT_EQ(snap.histograms[0].upperBounds.size(), 1u);
}

TEST(Registry, JsonExportHasStableShape)
{
    MetricsRegistry reg;
    reg.counter("solves").add(2);
    reg.gauge("residual").set(0.5);
    reg.histogram("lat_us", {1.0, 4.0}).record(2.0);
    std::ostringstream os;
    EXPECT_TRUE(reg.writeJson(os).isOk());
    const std::string out = os.str();
    EXPECT_NE(out.find("\"counters\":{\"solves\":2}"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"gauges\":{\"residual\":0.5}"),
              std::string::npos)
        << out;
    EXPECT_NE(out.find("\"lat_us\":{\"count\":1"), std::string::npos)
        << out;
    // The overflow bucket's bound serializes as null.
    EXPECT_NE(out.find("{\"le\":null,\"count\":0}"),
              std::string::npos)
        << out;
}

TEST(Registry, TextExportListsEveryMetric)
{
    MetricsRegistry reg;
    reg.counter("c").add();
    reg.gauge("g").set(1.0);
    reg.histogram("h", {1.0}).record(0.5);
    std::ostringstream os;
    EXPECT_TRUE(reg.writeText(os).isOk());
    const std::string out = os.str();
    EXPECT_NE(out.find("counter c = 1"), std::string::npos);
    EXPECT_NE(out.find("gauge g = 1"), std::string::npos);
    EXPECT_NE(out.find("histogram h count=1"), std::string::npos);
}

TEST(Registry, GlobalRegistryIsSingleton)
{
    EXPECT_EQ(&metrics(), &metrics());
}

TEST(BuildFlags, ReportsAssertMode)
{
    const std::string flags = buildFlagsString();
    EXPECT_TRUE(flags.find("ndebug") != std::string::npos ||
                flags.find("debug-asserts") != std::string::npos)
        << flags;
}

} // namespace
} // namespace amdahl::obs
