/**
 * @file
 * Tests for the structured trace sink (obs/trace.hh): event line
 * formatting, sink installation, warn()/inform() routing, and the
 * golden-determinism contract — two same-seed online simulations
 * produce byte-identical JSONL traces.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/fallback_policy.hh"
#include "common/logging.hh"
#include "eval/online.hh"
#include "exec/parallelism.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"

namespace amdahl::obs {
namespace {

/** Split captured JSONL into lines (dropping the trailing blank). */
std::vector<std::string>
lines(const std::string &text)
{
    std::vector<std::string> out;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);)
        out.push_back(line);
    return out;
}

TEST(Trace, DisabledByDefault)
{
    EXPECT_EQ(traceSink(), nullptr);
}

TEST(Trace, EventFormatsExactLine)
{
    std::ostringstream os;
    TraceSink sink(os);
    TraceEvent(sink, "unit")
        .field("s", "tex\"t")
        .field("d", 0.5)
        .field("i", -3)
        .field("u", std::size_t{7})
        .field("b", true);
    EXPECT_EQ(os.str(), "{\"seq\":1,\"ev\":\"unit\",\"s\":\"tex\\\"t\""
                        ",\"d\":0.5,\"i\":-3,\"u\":7,\"b\":true}\n");
}

TEST(Trace, SequenceNumbersAreMonotonicFromOne)
{
    std::ostringstream os;
    TraceSink sink(os);
    TraceEvent(sink, "a");
    TraceEvent(sink, "b");
    const auto out = lines(os.str());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].rfind("{\"seq\":1,\"ev\":\"a\"", 0), 0u);
    EXPECT_EQ(out[1].rfind("{\"seq\":2,\"ev\":\"b\"", 0), 0u);
}

TEST(Trace, GuardInstallsAndRestores)
{
    std::ostringstream os;
    TraceSink sink(os);
    {
        TraceGuard guard(sink);
        EXPECT_EQ(traceSink(), &sink);
        std::ostringstream os2;
        TraceSink inner(os2);
        {
            TraceGuard nested(inner);
            EXPECT_EQ(traceSink(), &inner);
        }
        EXPECT_EQ(traceSink(), &sink);
    }
    EXPECT_EQ(traceSink(), nullptr);
}

TEST(Trace, WarnRoutesIntoSinkAsLogEvent)
{
    // Silence stderr for the duration; the hook fires regardless of
    // the verbosity filter.
    const LogLevel previous = setLogLevel(LogLevel::Quiet);
    std::ostringstream os;
    TraceSink sink(os);
    {
        TraceGuard guard(sink);
        warn("suspicious ", 42);
        inform("status");
    }
    warn("after uninstall"); // Must not reach the stream.
    setLogLevel(previous);
    const auto out = lines(os.str());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NE(out[0].find("\"ev\":\"log\""), std::string::npos);
    EXPECT_NE(out[0].find("\"severity\":\"warn\""),
              std::string::npos);
    EXPECT_NE(out[0].find("suspicious 42"), std::string::npos);
    EXPECT_NE(out[1].find("\"severity\":\"info\""),
              std::string::npos);
}

/** Run one seeded online scenario with tracing into a string. */
std::string
captureTrace(std::uint64_t seed)
{
    eval::OnlineOptions opts;
    opts.seed = seed;
    opts.users = 8;
    opts.servers = 3;
    opts.coresPerServer = 16;
    opts.horizonSeconds = opts.epochSeconds * 10;
    opts.faults.enabled = true;
    opts.faults.crashRatePerServerEpoch = 0.05;
    opts.faults.bidLossRate = 0.05;
    opts.admission.enabled = true;
    opts.admission.maxLoadFactor = 1.0;
    opts.admission.maxQueueLength = 2;

    std::ostringstream os;
    TraceSink sink(os);
    TraceGuard guard(sink);
    eval::CharacterizationCache cache;
    eval::OnlineSimulator simulator(cache, opts);
    const alloc::FallbackPolicy policy;
    simulator.run(policy, eval::FractionSource::Estimated);
    return os.str();
}

TEST(Trace, GoldenSameSeedRunsAreByteIdentical)
{
    const std::string first = captureTrace(0xfeedULL);
    const std::string second = captureTrace(0xfeedULL);
    EXPECT_EQ(first, second);
    EXPECT_NE(first, captureTrace(0xbeefULL));
}

TEST(Trace, GoldenTraceIsThreadCountIndependent)
{
    // The execution layer's determinism contract extends to traces:
    // solvers emit events only from the submitting thread, and every
    // pool construct is order-deterministic, so the same seed yields
    // the same bytes at any thread count (DESIGN.md §11).
    const int original = exec::setThreadCount(1);
    const std::string reference = captureTrace(0xfeedULL);
    for (int threads : {2, 8}) {
        exec::setThreadCount(threads);
        EXPECT_EQ(captureTrace(0xfeedULL), reference)
            << "trace diverged at " << threads << " threads";
    }
    exec::setThreadCount(original);
}

TEST(Trace, SimulationTraceHasWellFormedLines)
{
    const auto out = lines(captureTrace(0x5eedULL));
    ASSERT_FALSE(out.empty());
    EXPECT_NE(out.front().find("\"ev\":\"run_start\""),
              std::string::npos);
    EXPECT_NE(out.back().find("\"ev\":\"run_end\""),
              std::string::npos);
    std::uint64_t expected_seq = 0;
    bool saw_bidding = false;
    for (const auto &line : out) {
        ++expected_seq;
        const std::string prefix =
            "{\"seq\":" + std::to_string(expected_seq) + ",\"ev\":\"";
        ASSERT_EQ(line.rfind(prefix, 0), 0u) << line;
        ASSERT_EQ(line.back(), '}') << line;
        if (line.find("\"ev\":\"bidding_start\"") !=
            std::string::npos) {
            saw_bidding = true;
        }
    }
    EXPECT_TRUE(saw_bidding);
}

TEST(Trace, TimingStaysOutOfTraces)
{
    // Timing histograms carry wall time; traces must stay
    // deterministic even when timing is enabled.
    setTimingEnabled(true);
    const std::string first = captureTrace(0x70ffULL);
    const std::string second = captureTrace(0x70ffULL);
    setTimingEnabled(false);
    EXPECT_EQ(first, second);
}

TEST(Timer, DisabledTimingRecordsNothing)
{
    setTimingEnabled(false);
    EXPECT_EQ(timeHistogram("time.test.unit_us"), nullptr);
    setTimingEnabled(true);
    Histogram *h = timeHistogram("time.test.unit_us");
    ASSERT_NE(h, nullptr);
    const auto before = h->count();
    {
        ScopedTimer timer(h);
    }
    EXPECT_EQ(h->count(), before + 1);
    setTimingEnabled(false);
    {
        ScopedTimer noop(timeHistogram("time.test.unit_us"));
    }
    EXPECT_EQ(h->count(), before + 1);
}

} // namespace
} // namespace amdahl::obs
