/**
 * @file
 * Tests for causal span tracing (obs/span.hh): deterministic span
 * IDs, the off-by-default contract, golden byte-identity of the span
 * stream across thread and shard counts, and the critical-path
 * attribution invariant — every round's virtual-time latency is
 * charged to causes that sum exactly to it, with a pinned breakdown
 * for one faulted seed.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "core/bidding.hh"
#include "core/market.hh"
#include "exec/parallelism.hh"
#include "net/options.hh"
#include "obs/span.hh"
#include "obs/trace.hh"

namespace amdahl::obs {
namespace {

/** Scoped thread-count override; restores the previous setting. */
class ThreadGuard
{
  public:
    explicit ThreadGuard(int n) : previous_(exec::setThreadCount(n)) {}
    ~ThreadGuard() { exec::setThreadCount(previous_); }
    ThreadGuard(const ThreadGuard &) = delete;
    ThreadGuard &operator=(const ThreadGuard &) = delete;

  private:
    int previous_;
};

/** Scoped span-tracing enable; restores the previous setting. */
class SpanGuard
{
  public:
    explicit SpanGuard(bool on) : previous_(setSpanTracingEnabled(on))
    {
    }
    ~SpanGuard() { setSpanTracingEnabled(previous_); }
    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

  private:
    bool previous_;
};

/** A market with four real price blocks for four-shard splits. */
core::FisherMarket
spanMarket(int users = 64, int servers = 8)
{
    Rng rng(0x5fa9);
    std::vector<double> capacities(static_cast<std::size_t>(servers),
                                   16.0);
    core::FisherMarket market(std::move(capacities));
    for (int i = 0; i < users; ++i) {
        core::MarketUser user;
        user.name = "u" + std::to_string(i);
        user.budget = rng.uniform(0.5, 2.0);
        core::JobSpec job;
        job.server = static_cast<std::size_t>(i % servers);
        job.parallelFraction = rng.uniform(0.3, 0.99);
        job.weight = rng.uniform(0.5, 2.0);
        user.jobs.push_back(job);
        market.addUser(std::move(user));
    }
    return market;
}

/** One instrumented sharded solve; returns the raw trace bytes. */
std::string
capture(const core::FisherMarket &market,
        const net::ShardedOptions &sharded, int threads, bool spans,
        core::BiddingResult *result = nullptr)
{
    ThreadGuard guard(threads);
    SpanGuard spanGuard(spans);
    std::ostringstream stream;
    TraceSink sink(stream);
    {
        TraceGuard traceGuard(sink);
        core::BiddingOptions opts;
        auto r = core::solveShardedBidding(market, opts, sharded);
        if (result != nullptr)
            *result = std::move(r);
    }
    return stream.str();
}

/** Count lines carrying a span event. */
std::size_t
spanLines(const std::string &trace)
{
    std::size_t count = 0;
    std::istringstream in(trace);
    std::string line;
    while (std::getline(in, line))
        if (line.find("\"ev\":\"span\"") != std::string::npos)
            ++count;
    return count;
}

/** Extract an unsigned field from a flat JSON line; -1 if absent. */
std::int64_t
fieldOf(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return -1;
    return std::stoll(line.substr(pos + needle.size()));
}

TEST(SpanTracing, IdsArePureOddAndCollisionResistant)
{
    const std::uint64_t a = spanId(SpanKind::Round, 1, 2, 3);
    EXPECT_EQ(a, spanId(SpanKind::Round, 1, 2, 3));
    EXPECT_NE(a, spanId(SpanKind::Round, 1, 2, 4));
    EXPECT_NE(a, spanId(SpanKind::Barrier, 1, 2, 3));

    // 0 is the reserved no-parent sentinel; forcing the low bit keeps
    // every id odd, so no derivation can ever produce it.
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 512; ++i) {
        const std::uint64_t id = spanId(SpanKind::Xfer, i, i / 2, i % 7);
        EXPECT_EQ(id & 1u, 1u);
        EXPECT_NE(id, 0u);
        seen.insert(id);
    }
    EXPECT_EQ(seen.size(), 512u);
}

TEST(SpanTracing, DisabledByDefaultAndInvisibleWhenOff)
{
    const auto market = spanMarket();
    net::ShardedOptions sharded;
    sharded.shards = 4;

    EXPECT_FALSE(spanTracingEnabled());
    EXPECT_EQ(spanSink(), nullptr);

    // An installed trace sink alone must not produce span events, and
    // the captured bytes must match a capture from before the span
    // layer existed — i.e. enabling and disabling leaves no residue.
    const std::string off = capture(market, sharded, 1, false);
    EXPECT_EQ(spanLines(off), 0u);
    (void)capture(market, sharded, 1, true);
    const std::string again = capture(market, sharded, 1, false);
    EXPECT_EQ(again, off);
}

TEST(SpanTracing, GoldenByteIdentityAcrossThreadsAndReruns)
{
    const auto market = spanMarket();
    for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        net::ShardedOptions sharded;
        sharded.shards = shards;
        const std::string what = "shards=" + std::to_string(shards);
        const std::string reference =
            capture(market, sharded, 1, true);
        EXPECT_GT(spanLines(reference), 0u) << what;
        for (int threads : {1, 8}) {
            EXPECT_EQ(capture(market, sharded, threads, true),
                      reference)
                << what << " threads=" << threads;
        }
    }
}

TEST(SpanTracing, ZeroFaultRoundsAttributeEverythingToCompute)
{
    const auto market = spanMarket();
    net::ShardedOptions sharded;
    sharded.shards = 4;
    core::BiddingResult result;
    const std::string trace =
        capture(market, sharded, 1, true, &result);

    // The sound-mode bridge must hold with spans on: same equilibrium
    // as the in-process kernel, bit for bit.
    const auto reference = core::solveAmdahlBidding(market);
    ASSERT_EQ(result.iterations, reference.iterations);
    for (std::size_t j = 0; j < reference.prices.size(); ++j)
        EXPECT_EQ(result.prices[j], reference.prices[j]);

    EXPECT_EQ(result.net.latencyTicks, 0u);
    EXPECT_EQ(result.net.delayTicks, 0u);
    EXPECT_EQ(result.net.retransmitTicks, 0u);
    EXPECT_EQ(result.net.partitionWaitTicks, 0u);
    EXPECT_EQ(result.net.quorumWaitTicks, 0u);

    // Every round span: zero latency, cause "compute".
    std::istringstream in(trace);
    std::string line;
    std::size_t rounds = 0;
    while (std::getline(in, line)) {
        if (line.find("\"ev\":\"span\"") == std::string::npos ||
            line.find("\"name\":\"round\"") == std::string::npos)
            continue;
        ++rounds;
        EXPECT_EQ(fieldOf(line, "ticks"), 0);
        EXPECT_EQ(fieldOf(line, "t0"), fieldOf(line, "t1"));
        EXPECT_NE(line.find("\"cause\":\"compute\""),
                  std::string::npos)
            << line;
    }
    EXPECT_EQ(rounds,
              static_cast<std::size_t>(reference.iterations));
}

TEST(SpanTracing, FaultedAttributionSumsExactlyAndIsPinned)
{
    const auto market = spanMarket();
    net::ShardedOptions sharded;
    sharded.shards = 4;
    sharded.faults.seed = 0x5eed;
    sharded.faults.lossRate = 0.2;
    sharded.faults.delayMin = 1;
    sharded.faults.delayMax = 3;
    core::BiddingResult result;
    const std::string trace =
        capture(market, sharded, 1, true, &result);

    const auto &net = result.net;
    EXPECT_EQ(net.delayTicks + net.retransmitTicks +
                  net.partitionWaitTicks + net.quorumWaitTicks,
              net.latencyTicks);
    EXPECT_GT(net.latencyTicks, 0u);

    // Per-round spans must carry the same exact-sum invariant.
    std::istringstream in(trace);
    std::string line;
    std::uint64_t totalTicks = 0;
    std::size_t rounds = 0;
    while (std::getline(in, line)) {
        if (line.find("\"ev\":\"span\"") == std::string::npos ||
            line.find("\"name\":\"round\"") == std::string::npos)
            continue;
        ++rounds;
        const std::int64_t ticks = fieldOf(line, "ticks");
        const std::int64_t sum = fieldOf(line, "c_delay") +
                                 fieldOf(line, "c_retransmit") +
                                 fieldOf(line, "c_partition") +
                                 fieldOf(line, "c_quorum");
        ASSERT_GE(ticks, 0) << line;
        EXPECT_EQ(sum, ticks) << line;
        totalTicks += static_cast<std::uint64_t>(ticks);
    }
    EXPECT_GT(rounds, 0u);
    EXPECT_EQ(totalTicks, net.latencyTicks);

    // Golden breakdown for this seed: any change to the transport's
    // draw order, the barrier's close rule, or the attribution math
    // shows up here first. Re-pin only with a DESIGN.md §15 update.
    EXPECT_EQ(net.latencyTicks, 70u);
    EXPECT_EQ(net.delayTicks, 6u);
    EXPECT_EQ(net.retransmitTicks, 0u);
    EXPECT_EQ(net.partitionWaitTicks, 0u);
    EXPECT_EQ(net.quorumWaitTicks, 64u);

    // Same-seed rerun: byte-identical span stream.
    EXPECT_EQ(capture(market, sharded, 8, true, nullptr), trace);
}

} // namespace
} // namespace amdahl::obs
