/**
 * @file
 * Unit tests for the colocation interference model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/interference.hh"

namespace amdahl::sim {
namespace {

TEST(Interference, NoCorunnersNoSlowdown)
{
    const InterferenceModel model;
    EXPECT_DOUBLE_EQ(model.slowdown(4, 0, ServerConfig{}), 1.0);
}

TEST(Interference, FullContentionHitsMaxDegradation)
{
    const InterferenceModel model(0.15);
    const ServerConfig server; // 24 cores
    EXPECT_DOUBLE_EQ(model.slowdown(4, 20, server), 1.15);
}

TEST(Interference, PartialContentionScalesLinearly)
{
    const InterferenceModel model(0.10);
    const ServerConfig server;
    EXPECT_DOUBLE_EQ(model.slowdown(4, 10, server), 1.0 + 0.10 * 0.5);
}

TEST(Interference, WholeMachineOwnerIsImmune)
{
    const InterferenceModel model(0.15);
    const ServerConfig server;
    EXPECT_DOUBLE_EQ(model.slowdown(24, 0, server), 1.0);
}

TEST(Interference, ValidatesCoreCounts)
{
    const InterferenceModel model;
    const ServerConfig server;
    EXPECT_THROW(model.slowdown(-1, 0, server), FatalError);
    EXPECT_THROW(model.slowdown(0, -1, server), FatalError);
    EXPECT_THROW(model.slowdown(20, 10, server), FatalError);
}

TEST(Interference, ValidatesDegradationRange)
{
    EXPECT_THROW(InterferenceModel(-0.1), FatalError);
    EXPECT_THROW(InterferenceModel(1.0), FatalError);
    EXPECT_NO_THROW(InterferenceModel(0.0));
}

TEST(Interference, ReduceParallelFractionPaperRange)
{
    // The paper reduces F by 5-15% to model cache/memory contention.
    EXPECT_DOUBLE_EQ(
        InterferenceModel::reduceParallelFraction(0.90, 10.0), 0.81);
    EXPECT_DOUBLE_EQ(
        InterferenceModel::reduceParallelFraction(0.90, 0.0), 0.90);
    EXPECT_DOUBLE_EQ(
        InterferenceModel::reduceParallelFraction(0.50, 100.0), 0.0);
}

TEST(Interference, ReduceParallelFractionValidates)
{
    EXPECT_THROW(InterferenceModel::reduceParallelFraction(1.5, 10.0),
                 FatalError);
    EXPECT_THROW(InterferenceModel::reduceParallelFraction(0.5, -1.0),
                 FatalError);
    EXPECT_THROW(InterferenceModel::reduceParallelFraction(0.5, 101.0),
                 FatalError);
}

} // namespace
} // namespace amdahl::sim
