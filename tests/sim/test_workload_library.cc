/**
 * @file
 * Unit tests for the Table I workload library.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.hh"
#include "sim/task_sim.hh"
#include "sim/workload_library.hh"

namespace amdahl::sim {
namespace {

TEST(WorkloadLibrary, HasTwentyTwoEntries)
{
    EXPECT_EQ(workloadLibrary().size(), 22u);
}

TEST(WorkloadLibrary, TwelveSparkTenParsec)
{
    int spark = 0, parsec = 0;
    for (const auto &w : workloadLibrary())
        (w.suite == Suite::Spark ? spark : parsec) += 1;
    EXPECT_EQ(spark, 12);
    EXPECT_EQ(parsec, 10);
}

TEST(WorkloadLibrary, IdsMatchTableIOrder)
{
    const auto &lib = workloadLibrary();
    for (std::size_t i = 0; i < lib.size(); ++i)
        EXPECT_EQ(lib[i].id, static_cast<int>(i) + 1);
}

TEST(WorkloadLibrary, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &w : workloadLibrary())
        names.insert(w.name);
    EXPECT_EQ(names.size(), workloadLibrary().size());
}

TEST(WorkloadLibrary, AllSpecsValidate)
{
    for (const auto &w : workloadLibrary())
        EXPECT_NO_THROW(w.validate()) << w.name;
}

TEST(WorkloadLibrary, FindByName)
{
    const auto &dedup = findWorkload("dedup");
    EXPECT_EQ(dedup.id, 16);
    EXPECT_EQ(dedup.suite, Suite::Parsec);
    EXPECT_EQ(dedup.application, "Storage");
}

TEST(WorkloadLibrary, FindUnknownIsFatal)
{
    EXPECT_THROW(findWorkload("no-such-benchmark"), FatalError);
}

TEST(WorkloadLibrary, WorkloadNamesMatchesLibrary)
{
    const auto names = workloadNames();
    ASSERT_EQ(names.size(), workloadLibrary().size());
    EXPECT_EQ(names.front(), "correlation");
    EXPECT_EQ(names.back(), "x264");
}

TEST(WorkloadLibrary, StructuralFractionsSpanPaperRange)
{
    // Figure 2: parallel fractions range from ~0.55 to ~0.99.
    double lo = 1.0, hi = 0.0;
    for (const auto &w : workloadLibrary()) {
        const double f = w.structuralParallelFraction();
        lo = std::min(lo, f);
        hi = std::max(hi, f);
        EXPECT_GT(f, 0.4) << w.name;
        EXPECT_LE(f, 1.0) << w.name;
    }
    EXPECT_LT(lo, 0.75);
    EXPECT_GT(hi, 0.98);
}

TEST(WorkloadLibrary, KmeansHasElevenTasksOnCensusData)
{
    // The paper: kmeans's 327 MB dataset yields only 11 tasks.
    const auto &kmeans = findWorkload("kmeans");
    TaskSimulator sim;
    const auto result = sim.execute(kmeans, kmeans.datasetGB, 4);
    int max_stage_tasks = 0;
    for (const auto &stage : result.stages)
        max_stage_tasks = std::max(max_stage_tasks, stage.tasks);
    EXPECT_EQ(max_stage_tasks, 11);
}

TEST(WorkloadLibrary, GraphWorkloadsCarryCommunicationCosts)
{
    for (const char *name : {"pagerank", "connected", "triangle"})
        EXPECT_GT(findWorkload(name).commSecondsPerWorker, 0.0) << name;
}

TEST(WorkloadLibrary, DedupIsCommunicationBound)
{
    // The paper reports dedup's effective parallel fraction ~= 0.53,
    // far below clean workloads, because of inter-thread communication.
    const auto &dedup = findWorkload("dedup");
    EXPECT_GT(dedup.commSecondsPerWorker, 0.0);
    TaskSimulator sim;
    const double s24 = sim.speedup(dedup, dedup.datasetGB, 24);
    EXPECT_LT(s24, 2.5); // Severely limited scalability.
}

TEST(WorkloadLibrary, CannealIsBandwidthBound)
{
    const auto &canneal = findWorkload("canneal");
    EXPECT_GT(canneal.memBandwidthPerCoreGBps, 0.0);
    EXPECT_GT(canneal.memBandwidthSaturationGB, 0.0);
    TaskSimulator sim;
    // Full dataset throttles at high core counts; a small sample does
    // not (that is why sampled profiles over-estimate canneal's F).
    const auto full = sim.execute(canneal, canneal.datasetGB, 24);
    const auto sample = sim.execute(canneal, 0.2, 24);
    double full_slowdown = 1.0, sample_slowdown = 1.0;
    for (const auto &stage : full.stages)
        full_slowdown = std::max(full_slowdown, stage.bandwidthSlowdown);
    for (const auto &stage : sample.stages) {
        sample_slowdown =
            std::max(sample_slowdown, stage.bandwidthSlowdown);
    }
    EXPECT_GT(full_slowdown, 1.5);
    EXPECT_LT(sample_slowdown, full_slowdown);
}

TEST(WorkloadLibrary, SparkReferenceTimesAreReasonable)
{
    // Single-core reference times within ~1% of their calibration.
    TaskSimulator sim;
    const auto &corr = findWorkload("correlation");
    EXPECT_NEAR(sim.executionSeconds(corr, corr.datasetGB, 1), 2000.0,
                40.0);
}

TEST(WorkloadLibrary, ExtensionWorkloadsExist)
{
    const auto &extensions = extensionWorkloads();
    ASSERT_FALSE(extensions.empty());
    for (const auto &w : extensions)
        EXPECT_NO_THROW(w.validate()) << w.name;
}

TEST(WorkloadLibrary, QrScalesQuadratically)
{
    const auto &qr = findExtensionWorkload("qr");
    EXPECT_DOUBLE_EQ(qr.timeExponent, 2.0);
    TaskSimulator sim;
    const double t_half =
        sim.executionSeconds(qr, qr.datasetGB / 2.0, 1);
    const double t_full = sim.executionSeconds(qr, qr.datasetGB, 1);
    EXPECT_NEAR(t_full / t_half, 4.0, 0.2);
}

TEST(WorkloadLibrary, UnknownExtensionIsFatal)
{
    EXPECT_THROW(findExtensionWorkload("nope"), FatalError);
}

TEST(WorkloadLibrary, GraphWorkloadsHaveSkewedCommScaling)
{
    // Sparse-graph communication grows super-linearly in the sampled
    // fraction (Section IV-A's skewed-dataset caveat).
    for (const char *name : {"pagerank", "connected", "triangle"})
        EXPECT_GT(findWorkload(name).commDatasetExponent, 1.0) << name;
}

TEST(WorkloadLibrary, SkewedCommMakesSampledEstimatesOptimistic)
{
    // Small samples under-represent graph communication, so measured
    // speedups on them look more parallel than the full dataset's.
    const auto &pr = findWorkload("pagerank");
    TaskSimulator sim;
    const double s_sample = sim.speedup(pr, 1.0, 24);
    const double s_full = sim.speedup(pr, pr.datasetGB, 24);
    EXPECT_GT(s_sample, s_full);
}

TEST(WorkloadLibrary, LibraryIsCachedAndStable)
{
    const auto *first = &workloadLibrary();
    const auto *second = &workloadLibrary();
    EXPECT_EQ(first, second);
}

} // namespace
} // namespace amdahl::sim
