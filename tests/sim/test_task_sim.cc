/**
 * @file
 * Unit tests for the event-driven task simulator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/amdahl.hh"
#include "sim/task_sim.hh"

namespace amdahl::sim {
namespace {

/** A clean Amdahl-like workload: no overheads, no skew. */
WorkloadSpec
cleanWorkload(double serial, double parallel, int tasks = 480)
{
    WorkloadSpec w;
    w.name = "clean";
    w.datasetGB = 1.0;
    StageSpec s;
    s.label = "serial";
    s.serialSeconds = serial;
    if (serial > 0.0)
        w.stages.push_back(s);
    StageSpec p;
    p.label = "parallel";
    p.parallelSeconds = parallel;
    p.scaling = TaskScaling::FixedTasks;
    p.fixedTasks = tasks;
    p.taskSkew = 0.0;
    w.stages.push_back(p);
    return w;
}

TEST(TaskSim, SingleCoreTimeMatchesTotalWork)
{
    TaskSimulator sim;
    const auto w = cleanWorkload(10.0, 90.0);
    EXPECT_NEAR(sim.executionSeconds(w, 1.0, 1), 100.0, 1e-9);
}

TEST(TaskSim, SpeedupIsOneOnOneCore)
{
    TaskSimulator sim;
    const auto w = cleanWorkload(10.0, 90.0);
    EXPECT_DOUBLE_EQ(sim.speedup(w, 1.0, 1), 1.0);
}

TEST(TaskSim, PureParallelWorkloadScalesLinearly)
{
    TaskSimulator sim;
    const auto w = cleanWorkload(0.0, 96.0, 960);
    for (int x : {2, 4, 8, 12, 24})
        EXPECT_NEAR(sim.speedup(w, 1.0, x), x, 0.05 * x);
}

TEST(TaskSim, CleanWorkloadTracksAmdahlsLaw)
{
    TaskSimulator sim;
    const auto w = cleanWorkload(20.0, 80.0, 2400);
    for (int x : {2, 4, 8, 16, 24}) {
        const double predicted = core::amdahlSpeedup(0.8, x);
        EXPECT_NEAR(sim.speedup(w, 1.0, x), predicted,
                    0.03 * predicted);
    }
}

TEST(TaskSim, SpeedupNeverExceedsCoreCount)
{
    TaskSimulator sim;
    const auto w = cleanWorkload(5.0, 95.0);
    for (int x : {2, 4, 8, 16, 24})
        EXPECT_LE(sim.speedup(w, 1.0, x), static_cast<double>(x) + 1e-9);
}

TEST(TaskSim, MoreCoresNeverSlower)
{
    TaskSimulator sim;
    const auto w = cleanWorkload(10.0, 90.0);
    double prev = sim.executionSeconds(w, 1.0, 1);
    for (int x = 2; x <= 24; ++x) {
        const double t = sim.executionSeconds(w, 1.0, x);
        EXPECT_LE(t, prev + 1e-9) << "at " << x << " cores";
        prev = t;
    }
}

TEST(TaskSim, TaskCountLimitsParallelism)
{
    // With 11 tasks (the kmeans pathology), 12 and 24 cores perform
    // identically.
    TaskSimulator sim;
    const auto w = cleanWorkload(0.0, 110.0, 11);
    EXPECT_NEAR(sim.executionSeconds(w, 1.0, 12),
                sim.executionSeconds(w, 1.0, 24), 1e-9);
    // And speedup is capped by the task count.
    EXPECT_LE(sim.speedup(w, 1.0, 24), 11.0 + 1e-9);
}

TEST(TaskSim, BlockScalingCreatesOneTaskPerBlock)
{
    WorkloadSpec w;
    w.name = "spark";
    w.datasetGB = 1.0;
    w.blockSizeGB = 0.032;
    StageSpec p;
    p.label = "read";
    p.parallelSeconds = 32.0;
    p.scaling = TaskScaling::BlocksOfDataset;
    w.stages = {p};

    TaskSimulator sim;
    const auto result = sim.execute(w, 1.0, 4);
    EXPECT_EQ(result.totalTasks(), 32); // ceil(1.0 / 0.032) = 32.
    const auto result24 = sim.execute(w, 24.0, 4);
    EXPECT_EQ(result24.totalTasks(), 750); // the paper's ~800 blocks.
}

TEST(TaskSim, DispatchOverheadSerializesTinyTasks)
{
    // 1000 tiny tasks with 10 ms dispatch each: runtime is dominated by
    // the serialized dispatcher regardless of core count.
    WorkloadSpec w = cleanWorkload(0.0, 1.0, 1000);
    w.dispatchSecondsPerTask = 0.01;
    TaskSimulator sim;
    const double t24 = sim.executionSeconds(w, 1.0, 24);
    EXPECT_GE(t24, 10.0); // 1000 * 0.01 dispatch floor.
    EXPECT_LT(sim.speedup(w, 1.0, 24), 2.0);
}

TEST(TaskSim, CommunicationGrowsWithWorkers)
{
    WorkloadSpec w = cleanWorkload(0.0, 100.0, 2400);
    w.commSecondsPerWorker = 1.0;
    TaskSimulator sim;
    const auto r4 = sim.execute(w, 1.0, 4);
    const auto r24 = sim.execute(w, 1.0, 24);
    EXPECT_NEAR(r4.totalCommSeconds(), 3.0, 1e-9);
    EXPECT_NEAR(r24.totalCommSeconds(), 23.0, 1e-9);
}

TEST(TaskSim, BandwidthCeilingThrottlesParallelWork)
{
    WorkloadSpec w = cleanWorkload(0.0, 100.0, 2400);
    w.memBandwidthPerCoreGBps = 20.0;
    TaskSimulator sim; // default server: 119.4 GB/s.
    // 4 workers demand 80 GB/s: no throttle. 24 demand 480: 4x slower.
    const auto r4 = sim.execute(w, 1.0, 4);
    const auto r24 = sim.execute(w, 1.0, 24);
    EXPECT_DOUBLE_EQ(r4.stages[0].bandwidthSlowdown, 1.0);
    EXPECT_NEAR(r24.stages[0].bandwidthSlowdown, 480.0 / 119.4, 1e-9);
    // Net effect: 24 cores barely beat 4 cores.
    EXPECT_LT(sim.speedup(w, 1.0, 24) / sim.speedup(w, 1.0, 4), 2.0);
}

TEST(TaskSim, BandwidthSaturationSparesSmallDatasets)
{
    WorkloadSpec w = cleanWorkload(0.0, 100.0, 2400);
    w.memBandwidthPerCoreGBps = 20.0;
    w.memBandwidthSaturationGB = 2.0;
    TaskSimulator sim;
    // A 0.2 GB sample demands only 10% of nominal bandwidth.
    const auto small = sim.execute(w, 0.2, 24);
    EXPECT_DOUBLE_EQ(small.stages[0].bandwidthSlowdown, 1.0);
    const auto full = sim.execute(w, 2.0, 24);
    EXPECT_GT(full.stages[0].bandwidthSlowdown, 3.0);
}

TEST(TaskSim, ExecutionTimeScalesLinearlyWithDataset)
{
    TaskSimulator sim;
    const auto w = cleanWorkload(10.0, 90.0);
    const double t1 = sim.executionSeconds(w, 1.0, 8);
    const double t2 = sim.executionSeconds(w, 2.0, 8);
    const double t4 = sim.executionSeconds(w, 4.0, 8);
    EXPECT_NEAR(t2 / t1, 2.0, 0.1);
    EXPECT_NEAR(t4 / t2, 2.0, 0.1);
}

TEST(TaskSim, QuadraticTimeExponent)
{
    TaskSimulator sim;
    auto w = cleanWorkload(10.0, 90.0);
    w.timeExponent = 2.0;
    const double t1 = sim.executionSeconds(w, 1.0, 1);
    const double t2 = sim.executionSeconds(w, 2.0, 1);
    EXPECT_NEAR(t2 / t1, 4.0, 1e-6);
}

TEST(TaskSim, InterferenceSlowsParallelWork)
{
    TaskSimulator isolated;
    TaskSimulator contended;
    contended.setInterferenceSlowdown(1.15);
    const auto w = cleanWorkload(10.0, 90.0);
    const double t_iso = isolated.executionSeconds(w, 1.0, 8);
    const double t_con = contended.executionSeconds(w, 1.0, 8);
    EXPECT_GT(t_con, t_iso);
    // Serial time unaffected: total slowdown below 15%.
    EXPECT_LT(t_con / t_iso, 1.15);
}

TEST(TaskSim, InterferenceReducesMeasuredParallelism)
{
    TaskSimulator isolated;
    TaskSimulator contended;
    contended.setInterferenceSlowdown(1.15);
    const auto w = cleanWorkload(20.0, 80.0, 2400);
    EXPECT_LT(contended.speedup(w, 1.0, 24),
              isolated.speedup(w, 1.0, 24));
}

TEST(TaskSim, DeterministicAcrossCalls)
{
    TaskSimulator sim;
    auto w = cleanWorkload(5.0, 95.0);
    w.stages.back().taskSkew = 0.3;
    const double a = sim.executionSeconds(w, 1.0, 7);
    const double b = sim.executionSeconds(w, 1.0, 7);
    EXPECT_DOUBLE_EQ(a, b);
}

TEST(TaskSim, SkewPreservesApproximateMeanWork)
{
    TaskSimulator sim;
    auto skewed = cleanWorkload(0.0, 100.0, 1000);
    skewed.stages.back().taskSkew = 0.5;
    // On one core, total time equals total work regardless of skew
    // (up to the jitter's symmetric distribution).
    EXPECT_NEAR(sim.executionSeconds(skewed, 1.0, 1), 100.0, 2.0);
}

TEST(TaskSim, ZeroFailureRateIsBitIdentical)
{
    TaskSimulator plain;
    TaskSimulator with_knob;
    with_knob.setTaskFailureRate(0.0);
    const auto w = cleanWorkload(10.0, 90.0);
    EXPECT_DOUBLE_EQ(plain.executionSeconds(w, 1.0, 8),
                     with_knob.executionSeconds(w, 1.0, 8));
}

TEST(TaskSim, FailuresExtendExecution)
{
    TaskSimulator reliable;
    TaskSimulator flaky;
    flaky.setTaskFailureRate(0.1);
    const auto w = cleanWorkload(10.0, 90.0);
    const double t_ok = reliable.executionSeconds(w, 1.0, 8);
    const double t_flaky = flaky.executionSeconds(w, 1.0, 8);
    EXPECT_GT(t_flaky, t_ok);
    // ~10% of tasks re-run once: at most ~2x, typically ~1.1x.
    EXPECT_LT(t_flaky, 1.5 * t_ok);
}

TEST(TaskSim, FailureCountsAreReported)
{
    TaskSimulator flaky;
    flaky.setTaskFailureRate(0.2);
    const auto w = cleanWorkload(0.0, 96.0, 960);
    const auto result = flaky.execute(w, 1.0, 8);
    int failures = 0;
    for (const auto &stage : result.stages)
        failures += stage.failures;
    // E[failures] = 192; allow generous slack for the deterministic
    // stream.
    EXPECT_GT(failures, 120);
    EXPECT_LT(failures, 280);
}

TEST(TaskSim, FailuresAreDeterministic)
{
    TaskSimulator a, b;
    a.setTaskFailureRate(0.15);
    b.setTaskFailureRate(0.15);
    const auto w = cleanWorkload(5.0, 95.0);
    EXPECT_DOUBLE_EQ(a.executionSeconds(w, 1.0, 6),
                     b.executionSeconds(w, 1.0, 6));
}

TEST(TaskSim, FailureRateValidated)
{
    TaskSimulator sim;
    EXPECT_THROW(sim.setTaskFailureRate(-0.1), FatalError);
    EXPECT_THROW(sim.setTaskFailureRate(1.0), FatalError);
}

TEST(TaskSim, CriticalPathRetriesHurtWideAllocations)
{
    // With many task waves, retry work spreads across waves and
    // inflates T(1) and T(x) proportionally. With a single wave
    // (tasks == cores), one retry doubles the whole wave: the retry
    // sits on the critical path and wide allocations lose speedup.
    TaskSimulator reliable;
    TaskSimulator flaky;
    flaky.setTaskFailureRate(0.15);
    auto w = cleanWorkload(5.0, 95.0, 24);
    const double s_ok = reliable.speedup(w, 1.0, 24);
    const double s_flaky = flaky.speedup(w, 1.0, 24);
    EXPECT_LT(s_flaky, s_ok);
}

TEST(TaskSim, ValidatesArguments)
{
    TaskSimulator sim;
    const auto w = cleanWorkload(1.0, 9.0);
    EXPECT_THROW(sim.executionSeconds(w, 0.0, 1), FatalError);
    EXPECT_THROW(sim.executionSeconds(w, 1.0, 0), FatalError);
    EXPECT_THROW(sim.executionSeconds(w, 1.0, 25), FatalError);
    EXPECT_THROW(sim.setInterferenceSlowdown(0.9), FatalError);
}

TEST(TaskSim, StageBreakdownIsConsistent)
{
    TaskSimulator sim;
    const auto w = cleanWorkload(10.0, 90.0);
    const auto result = sim.execute(w, 1.0, 4);
    ASSERT_EQ(result.stages.size(), 2u);
    EXPECT_DOUBLE_EQ(result.stages.front().startSeconds, 0.0);
    EXPECT_DOUBLE_EQ(result.stages.back().endSeconds,
                     result.totalSeconds);
    for (std::size_t s = 1; s < result.stages.size(); ++s) {
        EXPECT_DOUBLE_EQ(result.stages[s].startSeconds,
                         result.stages[s - 1].endSeconds);
    }
}

TEST(TaskSim, WorkersNeverExceedTasksOrCores)
{
    TaskSimulator sim;
    const auto w = cleanWorkload(0.0, 10.0, 5);
    const auto result = sim.execute(w, 1.0, 24);
    EXPECT_EQ(result.stages[0].workers, 5);
    const auto result2 = sim.execute(w, 1.0, 3);
    EXPECT_EQ(result2.stages[0].workers, 3);
}

} // namespace
} // namespace amdahl::sim
