/**
 * @file
 * Unit tests for server and cluster models.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/server.hh"

namespace amdahl::sim {
namespace {

TEST(Server, DefaultMatchesTableII)
{
    const ServerConfig config;
    EXPECT_EQ(config.sockets, 2);
    EXPECT_EQ(config.coresPerSocket, 12);
    EXPECT_EQ(config.threadsPerCore, 2);
    EXPECT_EQ(config.cores(), 24);
    EXPECT_DOUBLE_EQ(config.memoryGB, 256.0);
}

TEST(Server, CoresScaleWithSockets)
{
    ServerConfig config;
    config.sockets = 4;
    config.coresPerSocket = 8;
    EXPECT_EQ(config.cores(), 32);
}

TEST(Cluster, HomogeneousConstruction)
{
    const auto cluster = Cluster::homogeneous(3);
    EXPECT_EQ(cluster.size(), 3u);
    EXPECT_DOUBLE_EQ(cluster.totalCores(), 72.0);
    const auto caps = cluster.capacities();
    ASSERT_EQ(caps.size(), 3u);
    for (double c : caps)
        EXPECT_DOUBLE_EQ(c, 24.0);
}

TEST(Cluster, HeterogeneousServers)
{
    Cluster cluster;
    ServerConfig small;
    small.sockets = 1;
    small.coresPerSocket = 8;
    EXPECT_EQ(cluster.addServer(small), 0u);
    EXPECT_EQ(cluster.addServer(ServerConfig{}), 1u);
    EXPECT_EQ(cluster.size(), 2u);
    EXPECT_EQ(cluster.server(0).cores(), 8);
    EXPECT_EQ(cluster.server(1).cores(), 24);
    EXPECT_DOUBLE_EQ(cluster.totalCores(), 32.0);
}

TEST(Cluster, RejectsCorelessServer)
{
    Cluster cluster;
    ServerConfig bad;
    bad.sockets = 0;
    EXPECT_THROW(cluster.addServer(bad), FatalError);
}

TEST(Cluster, ServerIndexIsChecked)
{
    const auto cluster = Cluster::homogeneous(1);
    EXPECT_THROW(cluster.server(1), FatalError);
}

TEST(Cluster, EmptyClusterHasNoCores)
{
    const Cluster cluster;
    EXPECT_EQ(cluster.size(), 0u);
    EXPECT_DOUBLE_EQ(cluster.totalCores(), 0.0);
}

} // namespace
} // namespace amdahl::sim
