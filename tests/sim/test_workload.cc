/**
 * @file
 * Unit tests for workload specifications.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/workload.hh"

namespace amdahl::sim {
namespace {

WorkloadSpec
minimalSpec()
{
    WorkloadSpec w;
    w.name = "toy";
    w.datasetGB = 2.0;
    StageSpec serial;
    serial.label = "s";
    serial.serialSeconds = 10.0;
    StageSpec parallel;
    parallel.label = "p";
    parallel.parallelSeconds = 90.0;
    w.stages = {serial, parallel};
    return w;
}

TEST(Workload, SuiteNames)
{
    EXPECT_EQ(toString(Suite::Spark), "Spark");
    EXPECT_EQ(toString(Suite::Parsec), "PARSEC");
}

TEST(Workload, ReferenceSingleCoreSeconds)
{
    EXPECT_DOUBLE_EQ(minimalSpec().referenceSingleCoreSeconds(), 100.0);
}

TEST(Workload, StructuralParallelFraction)
{
    EXPECT_DOUBLE_EQ(minimalSpec().structuralParallelFraction(), 0.9);
}

TEST(Workload, ValidSpecPassesValidation)
{
    EXPECT_NO_THROW(minimalSpec().validate());
}

TEST(Workload, RejectsEmptyName)
{
    auto w = minimalSpec();
    w.name.clear();
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(Workload, RejectsNoStages)
{
    auto w = minimalSpec();
    w.stages.clear();
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(Workload, RejectsNonPositiveDataset)
{
    auto w = minimalSpec();
    w.datasetGB = 0.0;
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(Workload, RejectsNegativeOverheads)
{
    auto w = minimalSpec();
    w.dispatchSecondsPerTask = -0.1;
    EXPECT_THROW(w.validate(), FatalError);

    w = minimalSpec();
    w.commSecondsPerWorker = -1.0;
    EXPECT_THROW(w.validate(), FatalError);

    w = minimalSpec();
    w.memBandwidthPerCoreGBps = -1.0;
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(Workload, RejectsEmptyStage)
{
    auto w = minimalSpec();
    StageSpec empty;
    empty.label = "empty";
    w.stages.push_back(empty);
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(Workload, RejectsBadTaskCount)
{
    auto w = minimalSpec();
    w.stages[1].scaling = TaskScaling::FixedTasks;
    w.stages[1].fixedTasks = 0;
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(Workload, RejectsBadSkew)
{
    auto w = minimalSpec();
    w.stages[1].taskSkew = 1.0;
    EXPECT_THROW(w.validate(), FatalError);
    w.stages[1].taskSkew = -0.1;
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(Workload, RejectsNonPositiveTimeExponent)
{
    auto w = minimalSpec();
    w.timeExponent = 0.0;
    EXPECT_THROW(w.validate(), FatalError);
}

TEST(Workload, PureSerialWorkloadHasZeroFraction)
{
    WorkloadSpec w;
    w.name = "serial";
    w.datasetGB = 1.0;
    StageSpec s;
    s.label = "only";
    s.serialSeconds = 10.0;
    w.stages = {s};
    EXPECT_DOUBLE_EQ(w.structuralParallelFraction(), 0.0);
}

} // namespace
} // namespace amdahl::sim
