/**
 * @file
 * Wire codec contract for the clearing transport's typed messages.
 *
 * The determinism bridge routes every price broadcast and bid
 * aggregate through encodeMessage()/decodeMessage(), so the codec must
 * be lossless down to the f64 bit pattern — and every malformed frame
 * class must map to the documented Status kind: ParseError for
 * truncation and grammar violations, SemanticError for magic or CRC
 * mismatches (bytes that parse but cannot be trusted).
 */

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "net/message.hh"

namespace amdahl::net {
namespace {

Message
sampleBid()
{
    Message msg;
    msg.kind = MsgKind::Bid;
    msg.src = shardNode(3);
    msg.dst = kCoordinatorNode;
    msg.seq = 41;
    msg.attempt = 2;
    msg.bid.shard = 3;
    msg.bid.round = 117;
    msg.bid.partials = {
        {0, 6, 1.25},
        {1, 6, 0.0},
        {2, 7, -0.0},
        {7, 7, 3.0e-308}, // subnormal-adjacent: memcpy, not printf
        {11, 8, 12345.6789},
    };
    return msg;
}

Message
samplePrice()
{
    Message msg;
    msg.kind = MsgKind::Price;
    msg.src = kCoordinatorNode;
    msg.dst = shardNode(0);
    msg.seq = 9;
    msg.attempt = 0;
    msg.price.round = 118;
    msg.price.prices = {0.5, 1.0 / 3.0, 0.0,
                        std::numeric_limits<double>::min()};
    return msg;
}

TEST(NetMessage, BidRoundtripIsLossless)
{
    const Message msg = sampleBid();
    auto decoded = decodeMessage(encodeMessage(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    const Message out = decoded.take();
    EXPECT_EQ(out.kind, MsgKind::Bid);
    EXPECT_EQ(out.src, msg.src);
    EXPECT_EQ(out.dst, msg.dst);
    EXPECT_EQ(out.seq, msg.seq);
    EXPECT_EQ(out.attempt, msg.attempt);
    EXPECT_EQ(out.bid.shard, msg.bid.shard);
    EXPECT_EQ(out.bid.round, msg.bid.round);
    ASSERT_EQ(out.bid.partials.size(), msg.bid.partials.size());
    for (std::size_t i = 0; i < msg.bid.partials.size(); ++i) {
        EXPECT_EQ(out.bid.partials[i].server,
                  msg.bid.partials[i].server);
        EXPECT_EQ(out.bid.partials[i].block, msg.bid.partials[i].block);
        // Bitwise, not value, equality: -0.0 must survive as -0.0.
        EXPECT_EQ(std::signbit(out.bid.partials[i].partial),
                  std::signbit(msg.bid.partials[i].partial));
        EXPECT_EQ(out.bid.partials[i].partial,
                  msg.bid.partials[i].partial);
    }
}

TEST(NetMessage, PriceRoundtripIsLossless)
{
    const Message msg = samplePrice();
    auto decoded = decodeMessage(encodeMessage(msg));
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    const Message out = decoded.take();
    EXPECT_EQ(out.kind, MsgKind::Price);
    EXPECT_EQ(out.price.round, msg.price.round);
    ASSERT_EQ(out.price.prices.size(), msg.price.prices.size());
    for (std::size_t j = 0; j < msg.price.prices.size(); ++j)
        EXPECT_EQ(out.price.prices[j], msg.price.prices[j]);
}

TEST(NetMessage, EmptyPartialListRoundtrips)
{
    Message msg = sampleBid();
    msg.bid.partials.clear();
    auto decoded = decodeMessage(encodeMessage(msg));
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.take().bid.partials.empty());
}

TEST(NetMessage, TruncationAtEveryLengthIsParseError)
{
    const std::string wire = encodeMessage(sampleBid());
    for (std::size_t len = 0; len < wire.size(); ++len) {
        auto decoded = decodeMessage(wire.substr(0, len));
        ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
        // A prefix that still holds the intact header fails the
        // payload-length check (ParseError); slicing into the magic
        // itself can surface as a bad-magic SemanticError only if the
        // four bytes happen to read as some other value — here they
        // are simply missing, so everything is ParseError.
        EXPECT_EQ(decoded.status().kind(), ErrorKind::ParseError)
            << "prefix length " << len << ": "
            << decoded.status().toString();
    }
}

TEST(NetMessage, BadMagicIsSemanticError)
{
    std::string wire = encodeMessage(samplePrice());
    wire[0] = static_cast<char>(wire[0] ^ 0x01);
    auto decoded = decodeMessage(wire);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().kind(), ErrorKind::SemanticError);
}

TEST(NetMessage, CorruptedPayloadFailsCrc)
{
    // Flip one bit in every payload byte position in turn: the CRC
    // must catch each (header is 33 bytes, payload follows).
    const std::string wire = encodeMessage(sampleBid());
    constexpr std::size_t kHeader = 33;
    ASSERT_GT(wire.size(), kHeader);
    for (std::size_t pos = kHeader; pos < wire.size(); ++pos) {
        std::string corrupt = wire;
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x40);
        auto decoded = decodeMessage(corrupt);
        ASSERT_FALSE(decoded.ok()) << "payload byte " << pos;
        EXPECT_EQ(decoded.status().kind(), ErrorKind::SemanticError)
            << "payload byte " << pos;
    }
}

TEST(NetMessage, UnknownKindIsParseError)
{
    std::string wire = encodeMessage(samplePrice());
    wire[4] = 7; // kind byte: neither Bid (1) nor Price (2)
    auto decoded = decodeMessage(wire);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().kind(), ErrorKind::ParseError);
}

TEST(NetMessage, TrailingBytesAreParseError)
{
    // Extra bytes after the declared payload length change the
    // payload-size check, not the CRC — still a ParseError.
    std::string wire = encodeMessage(samplePrice());
    wire.push_back('\0');
    auto decoded = decodeMessage(wire);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().kind(), ErrorKind::ParseError);
}

} // namespace
} // namespace amdahl::net
