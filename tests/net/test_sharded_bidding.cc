/**
 * @file
 * The determinism bridge: sharded clearing vs the in-process kernel.
 *
 * The acceptance criterion of the sharded clearing engine (DESIGN.md
 * §14): with every fault rate zero, any shard count at any thread
 * count must reproduce solveAmdahlBidding() *byte for byte* — bids,
 * prices, allocations, iteration count, the trace stream, and the
 * metrics registry modulo the work-stealing and timing families that
 * are scheduling noise by design. With faults enabled the bridge
 * weakens to self-consistency: any (shard count, thread count) pair
 * must reproduce itself exactly.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/bidding.hh"
#include "core/market.hh"
#include "exec/parallelism.hh"
#include "net/options.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace amdahl::core {
namespace {

/** Scoped thread-count override; restores the previous setting. */
class ThreadGuard
{
  public:
    explicit ThreadGuard(int n) : previous_(exec::setThreadCount(n)) {}
    ~ThreadGuard() { exec::setThreadCount(previous_); }
    ThreadGuard(const ThreadGuard &) = delete;
    ThreadGuard &operator=(const ThreadGuard &) = delete;

  private:
    int previous_;
};

/** Nine price blocks, so an eight-shard split is genuinely uneven. */
FisherMarket
bridgeMarket(int users = 288, int servers = 12)
{
    Rng rng(0xb41d6e);
    std::vector<double> capacities(static_cast<std::size_t>(servers),
                                   24.0);
    FisherMarket market(std::move(capacities));
    for (int i = 0; i < users; ++i) {
        MarketUser user;
        user.name = "u" + std::to_string(i);
        user.budget = rng.uniform(0.5, 2.0);
        const int jobs = 1 + static_cast<int>(rng.uniformInt(1, 3));
        for (int k = 0; k < jobs; ++k) {
            JobSpec job;
            job.server = k == 0 ? static_cast<std::size_t>(i % servers)
                                : static_cast<std::size_t>(
                                      rng.uniformInt(0, servers - 1));
            job.parallelFraction = rng.uniform(0.3, 0.999);
            job.weight = rng.uniform(0.5, 2.0);
            user.jobs.push_back(job);
        }
        market.addUser(std::move(user));
    }
    return market;
}

/** Exact (bitwise) agreement of two bidding results. */
void
expectIdentical(const BiddingResult &a, const BiddingResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.iterations, b.iterations) << what;
    EXPECT_EQ(a.converged, b.converged) << what;
    EXPECT_EQ(a.deadlineExpired, b.deadlineExpired) << what;
    ASSERT_EQ(a.prices.size(), b.prices.size()) << what;
    for (std::size_t j = 0; j < a.prices.size(); ++j)
        ASSERT_EQ(a.prices[j], b.prices[j]) << what << ": price " << j;
    ASSERT_EQ(a.bids.size(), b.bids.size()) << what;
    for (std::size_t i = 0; i < a.bids.size(); ++i) {
        for (std::size_t k = 0; k < a.bids[i].size(); ++k) {
            ASSERT_EQ(a.bids[i][k], b.bids[i][k])
                << what << ": bid (" << i << "," << k << ")";
            ASSERT_EQ(a.allocation[i][k], b.allocation[i][k])
                << what << ": allocation (" << i << "," << k << ")";
        }
    }
}

/**
 * Metrics registry rendered as text, with the families that are
 * legitimately schedule-dependent removed: exec.* (work stealing) and
 * time.* (wall-clock histograms). Everything else — including the
 * absence of any net.* name in a sound run — must match exactly.
 */
std::string
comparableMetrics()
{
    std::ostringstream os;
    const Status st = obs::metrics().writeText(os);
    EXPECT_TRUE(st.isOk()) << st.toString();
    std::istringstream in(os.str());
    std::string line;
    std::string kept;
    while (std::getline(in, line)) {
        if (line.find("exec.") != std::string::npos ||
            line.find("time.") != std::string::npos)
            continue;
        kept += line;
        kept += '\n';
    }
    return kept;
}

struct Observed
{
    BiddingResult result;
    std::string trace;
    std::string metrics;
};

/** One fully-instrumented solve at a given (shards, threads). */
Observed
observe(const FisherMarket &market, const BiddingOptions &opts,
        const net::ShardedOptions *sharded, int threads)
{
    ThreadGuard guard(threads);
    obs::metrics().reset();
    std::ostringstream traceStream;
    obs::TraceSink sink(traceStream);
    Observed out;
    {
        obs::TraceGuard traceGuard(sink);
        out.result = sharded
                         ? solveShardedBidding(market, opts, *sharded)
                         : solveAmdahlBidding(market, opts);
    }
    out.trace = traceStream.str();
    out.metrics = comparableMetrics();
    return out;
}

TEST(ShardedBridge, SoundNetworkReproducesInProcessByteForByte)
{
    const auto market = bridgeMarket();
    BiddingOptions opts;
    const Observed reference = observe(market, opts, nullptr, 1);
    ASSERT_TRUE(reference.result.converged);
    EXPECT_NE(reference.trace.find("bidding_iter"), std::string::npos);

    for (std::size_t shards : {std::size_t{1}, std::size_t{2},
                               std::size_t{8}}) {
        net::ShardedOptions sharded;
        sharded.shards = shards;
        for (int threads : {1, 8}) {
            const std::string what = "shards=" +
                                     std::to_string(shards) +
                                     " threads=" +
                                     std::to_string(threads);
            const Observed run =
                observe(market, opts, &sharded, threads);
            expectIdentical(run.result, reference.result, what);
            EXPECT_EQ(run.trace, reference.trace) << what;
            EXPECT_EQ(run.metrics, reference.metrics) << what;
            // Sound-mode invisibility: the simulated network leaves
            // no metrics footprint at all.
            EXPECT_EQ(run.metrics.find("net."), std::string::npos)
                << what;
        }
    }
}

TEST(ShardedBridge, SoundBridgeHoldsUnderDampingAndWarmStart)
{
    const auto market = bridgeMarket(96, 8);
    BiddingOptions opts;
    opts.damping = 0.7;
    const auto seeded = solveAmdahlBidding(market, opts);
    opts.initialBids = seeded.bids;

    const Observed reference = observe(market, opts, nullptr, 1);
    for (std::size_t shards : {std::size_t{2}, std::size_t{3}}) {
        net::ShardedOptions sharded;
        sharded.shards = shards;
        const Observed run = observe(market, opts, &sharded, 8);
        expectIdentical(run.result, reference.result,
                        "damped shards=" + std::to_string(shards));
        EXPECT_EQ(run.trace, reference.trace);
    }
}

TEST(ShardedBridge, SoundBridgeHoldsUnderAnytimeBudget)
{
    // Cut the solve off mid-stream: the anytime snapshot logic in the
    // sharded loop must restore the same best state the in-process
    // solver restores.
    const auto market = bridgeMarket(96, 8);
    BiddingOptions opts;
    opts.deadline.iterationBudget = 5;
    const Observed reference = observe(market, opts, nullptr, 1);
    EXPECT_TRUE(reference.result.deadlineExpired);

    net::ShardedOptions sharded;
    sharded.shards = 2;
    const Observed run = observe(market, opts, &sharded, 8);
    expectIdentical(run.result, reference.result, "anytime bridge");
    EXPECT_EQ(run.trace, reference.trace);
}

TEST(ShardedBridge, FaultedRunsReproduceThemselvesAcrossThreads)
{
    const auto market = bridgeMarket();
    BiddingOptions opts;
    net::ShardedOptions sharded;
    sharded.shards = 4;
    sharded.faults.lossRate = 0.15;
    sharded.faults.delayMin = 1;
    sharded.faults.delayMax = 6;
    sharded.faults.duplicationRate = 0.1;
    sharded.faults.seed = 42;

    const Observed reference = observe(market, opts, &sharded, 1);
    EXPECT_TRUE(reference.result.converged);
    for (int threads : {2, 8}) {
        const Observed run = observe(market, opts, &sharded, threads);
        expectIdentical(run.result, reference.result,
                        "faulted threads=" + std::to_string(threads));
        EXPECT_EQ(run.trace, reference.trace);
        EXPECT_EQ(run.metrics, reference.metrics);
    }
    // A faulted run does leave a net.* footprint.
    EXPECT_NE(reference.metrics.find("net.msgs_sent"),
              std::string::npos);
}

TEST(ShardedBridge, ShardCountIsAResultsKnobOnlyUnderFaults)
{
    // Under faults the shard count legitimately changes the network
    // (different edges, different substreams) — the bridge does NOT
    // promise cross-shard-count identity there, only determinism per
    // count. Sanity-check both halves on one market.
    const auto market = bridgeMarket(96, 8);
    BiddingOptions opts;
    net::ShardedOptions a;
    a.shards = 2;
    a.faults.lossRate = 0.3;
    a.faults.seed = 7;
    net::ShardedOptions b = a;
    b.shards = 3;

    const auto ra1 = solveShardedBidding(market, opts, a);
    const auto ra2 = solveShardedBidding(market, opts, a);
    expectIdentical(ra1, ra2, "shards=2 run-vs-run");
    const auto rb = solveShardedBidding(market, opts, b);
    EXPECT_NE(ra1.iterations == rb.iterations &&
                  ra1.net.retransmits == rb.net.retransmits &&
                  ra1.net.degradedRounds == rb.net.degradedRounds,
              true)
        << "different shard counts under loss should see different "
           "networks";
}

} // namespace
} // namespace amdahl::core
