/**
 * @file
 * Delivery-order and bookkeeping contracts of VirtualTransport.
 *
 * The barrier loop's determinism rests on the transport exposing one
 * total delivery order — (tick, kind, edge, seq, copy) with prices
 * ranked ahead of bids at equal ticks — and on per-edge sequence
 * numbers surviving in the session. These tests drive the transport
 * directly, without the solver on top.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault_model.hh"
#include "net/message.hh"
#include "net/session.hh"
#include "net/transport.hh"

namespace amdahl::net {
namespace {

Message
bidMsg(std::size_t shard, std::uint64_t round)
{
    Message msg;
    msg.kind = MsgKind::Bid;
    msg.src = shardNode(shard);
    msg.dst = kCoordinatorNode;
    msg.bid.shard = static_cast<std::uint32_t>(shard);
    msg.bid.round = round;
    return msg;
}

Message
priceMsg(std::size_t shard, std::uint64_t round)
{
    Message msg;
    msg.kind = MsgKind::Price;
    msg.src = kCoordinatorNode;
    msg.dst = shardNode(shard);
    msg.price.round = round;
    msg.price.prices = {1.0, 2.0};
    return msg;
}

NetSession
sessionFor(std::size_t shards)
{
    NetSession sess;
    sess.edgeSeq.assign(2 * shards, 0);
    return sess;
}

TEST(NetTransport, AssignsSequenceNumbersPerEdge)
{
    const NetFaultModel sound(NetFaultOptions{}, {});
    NetSession sess = sessionFor(2);
    VirtualTransport transport(sound, sess, nullptr);

    transport.send(bidMsg(0, 0), bidEdge(0), 0, 0, 0, 0);
    transport.send(bidMsg(0, 1), bidEdge(0), 0, 1, 1, 0);
    transport.send(bidMsg(1, 0), bidEdge(1), 1, 0, 0, 0);
    EXPECT_EQ(sess.edgeSeq[bidEdge(0)], 2u);
    EXPECT_EQ(sess.edgeSeq[bidEdge(1)], 1u);
    EXPECT_EQ(sess.edgeSeq[priceEdge(0)], 0u);

    // Decoded frames carry the per-edge counter values in send order.
    Delivery d;
    std::vector<std::uint64_t> seqs;
    while (transport.popNext(0, d))
        seqs.push_back(decodeMessage(d.wire).take().seq);
    ASSERT_EQ(seqs.size(), 3u);
    // Total order at one tick: bidEdge(0)=1 before bidEdge(1)=3,
    // seq 0 before seq 1 within an edge.
    EXPECT_EQ(seqs[0], 0u);
    EXPECT_EQ(seqs[1], 1u);
    EXPECT_EQ(seqs[2], 0u);
}

TEST(NetTransport, PricesDrainBeforeBidsAtEqualTicks)
{
    const NetFaultModel sound(NetFaultOptions{}, {});
    NetSession sess = sessionFor(1);
    VirtualTransport transport(sound, sess, nullptr);

    // Send the bid first: arrival order must still put the price
    // broadcast ahead, because edge parity ranks it.
    transport.send(bidMsg(0, 4), bidEdge(0), 0, 4, 4, 7);
    transport.send(priceMsg(0, 5), priceEdge(0), 0, 5, 5, 7);

    Delivery d;
    ASSERT_TRUE(transport.popNext(7, d));
    EXPECT_EQ(d.edge, priceEdge(0));
    ASSERT_TRUE(transport.popNext(7, d));
    EXPECT_EQ(d.edge, bidEdge(0));
}

TEST(NetTransport, PopRespectsTheUpToBound)
{
    NetFaultOptions delayed;
    delayed.delayMin = 5;
    delayed.delayMax = 5;
    const NetFaultModel model(delayed, {});
    NetSession sess = sessionFor(1);
    VirtualTransport transport(model, sess, nullptr);

    transport.send(bidMsg(0, 0), bidEdge(0), 0, 0, 0, 10);
    Ticks at = 0;
    std::uint64_t edge = 0;
    ASSERT_TRUE(transport.peekNext(at, edge));
    EXPECT_EQ(at, Ticks{15});
    EXPECT_EQ(edge, bidEdge(0));

    Delivery d;
    EXPECT_FALSE(transport.popNext(14, d)); // one tick early: stays
    ASSERT_TRUE(transport.popNext(15, d));  // exactly at bound: pops
    EXPECT_EQ(d.at, Ticks{15});
    EXPECT_EQ(d.sentAt, Ticks{10});
    EXPECT_FALSE(transport.peekNext(at, edge));
}

TEST(NetTransport, PartitionDropsBothDirectionsButKeepsSequencing)
{
    const std::vector<PartitionWindow> windows = {{0, 2, 4}};
    const NetFaultModel model(NetFaultOptions{}, windows);
    NetSession sess = sessionFor(1);
    VirtualTransport transport(model, sess, nullptr);

    transport.send(priceMsg(0, 2), priceEdge(0), 0, 2, 2, 0);
    transport.send(bidMsg(0, 2), bidEdge(0), 0, 2, 2, 0);
    EXPECT_EQ(transport.pendingCount(), 0u); // both dropped
    // Sequence numbers advance even for dropped frames: a drop is a
    // network event, not a send that never happened.
    EXPECT_EQ(sess.edgeSeq[priceEdge(0)], 1u);
    EXPECT_EQ(sess.edgeSeq[bidEdge(0)], 1u);

    // Outside the window the same edges deliver again.
    transport.send(priceMsg(0, 4), priceEdge(0), 0, 4, 4, 0);
    EXPECT_EQ(transport.pendingCount(), 1u);
}

TEST(NetTransport, PartitionCutsByPartitionRoundNotStreamRound)
{
    // A retransmit keys its substreams by the original round but
    // crosses the wire "now": a partition that opened since must drop
    // it even though its stream round predates the window.
    const std::vector<PartitionWindow> windows = {{0, 10, 20}};
    const NetFaultModel model(NetFaultOptions{}, windows);
    NetSession sess = sessionFor(1);
    VirtualTransport transport(model, sess, nullptr);

    transport.send(bidMsg(0, 8), bidEdge(0), 0, 8, 12, 0);
    EXPECT_EQ(transport.pendingCount(), 0u);
    transport.send(bidMsg(0, 8), bidEdge(0), 0, 8, 9, 0);
    EXPECT_EQ(transport.pendingCount(), 1u);
}

TEST(NetTransport, DuplicationEnqueuesACopyWithTheSameSeq)
{
    NetFaultOptions dup;
    dup.duplicationRate = 0.9;
    dup.delayMax = 4;
    dup.seed = 0xd0b1e;
    const NetFaultModel model(dup, {});
    NetSession sess = sessionFor(1);
    VirtualTransport transport(model, sess, nullptr);

    std::size_t duplicated = 0;
    for (std::uint64_t g = 0; g < 32; ++g) {
        const std::size_t before = transport.pendingCount();
        transport.send(bidMsg(0, g), bidEdge(0), 0, g, g, 0);
        const std::size_t added = transport.pendingCount() - before;
        ASSERT_GE(added, 1u);
        ASSERT_LE(added, 2u);
        if (added == 2)
            ++duplicated;
    }
    EXPECT_GT(duplicated, 0u);

    // Both copies of a duplicated frame decode to the same seq — that
    // identity is what receiver-side suppression keys on.
    NetSession sess2 = sessionFor(1);
    VirtualTransport t2(model, sess2, nullptr);
    std::uint64_t dupRound = 0;
    for (std::uint64_t g = 0; g < 32; ++g) {
        if (model.duplicated(bidEdge(0), g, 0)) {
            dupRound = g;
            break;
        }
    }
    t2.send(bidMsg(0, dupRound), bidEdge(0), 0, dupRound, dupRound, 0);
    ASSERT_EQ(t2.pendingCount(), 2u);
    Delivery a;
    Delivery b;
    ASSERT_TRUE(t2.popNext(100, a));
    ASSERT_TRUE(t2.popNext(100, b));
    EXPECT_EQ(decodeMessage(a.wire).take().seq,
              decodeMessage(b.wire).take().seq);
    EXPECT_LE(a.at, b.at); // delivery order is sorted by arrival
}

TEST(NetTransport, FramesSurviveTheWireIntact)
{
    const NetFaultModel sound(NetFaultOptions{}, {});
    NetSession sess = sessionFor(1);
    VirtualTransport transport(sound, sess, nullptr);

    Message msg = priceMsg(0, 12);
    msg.price.prices = {0.125, -0.0, 3.0e9};
    transport.send(msg, priceEdge(0), 0, 12, 12, 3);
    Delivery d;
    ASSERT_TRUE(transport.popNext(3, d));
    auto decoded = decodeMessage(d.wire);
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    const Message out = decoded.take();
    EXPECT_EQ(out.price.round, 12u);
    ASSERT_EQ(out.price.prices.size(), 3u);
    EXPECT_EQ(out.price.prices[0], 0.125);
    EXPECT_EQ(out.price.prices[2], 3.0e9);
}

} // namespace
} // namespace amdahl::net
