/**
 * @file
 * Protocol edge cases of the epoch-barrier sharded clearing loop.
 *
 * Each test constructs a small two-shard market and drives
 * solveShardedBidding() through one sharply-posed scenario: a message
 * landing exactly on the barrier deadline, a deadline one tick too
 * short, retransmit recovery under loss with duplicate suppression, a
 * partition that heals before the final round, and both sides of the
 * quorum floor. Assertions are exact where determinism promises
 * exactness (run-vs-run, and constant-delay vs in-process).
 */

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/bidding.hh"
#include "core/market.hh"
#include "net/options.hh"
#include "net/session.hh"

namespace amdahl::core {
namespace {

/** Two price blocks' worth of users so two shards are non-trivial. */
FisherMarket
barrierMarket(int users = 72, int servers = 8)
{
    Rng rng(0xba55);
    std::vector<double> capacities(static_cast<std::size_t>(servers),
                                   12.0);
    FisherMarket market(std::move(capacities));
    for (int i = 0; i < users; ++i) {
        MarketUser user;
        user.name = "u" + std::to_string(i);
        user.budget = rng.uniform(0.5, 1.5);
        JobSpec job;
        job.server = static_cast<std::size_t>(i % servers);
        job.parallelFraction = rng.uniform(0.4, 0.99);
        job.weight = rng.uniform(0.5, 2.0);
        user.jobs.push_back(job);
        JobSpec second;
        second.server = static_cast<std::size_t>(
            rng.uniformInt(0, servers - 1));
        second.parallelFraction = rng.uniform(0.4, 0.99);
        second.weight = rng.uniform(0.5, 2.0);
        user.jobs.push_back(second);
        market.addUser(std::move(user));
    }
    return market;
}

net::ShardedOptions
twoShards()
{
    net::ShardedOptions sharded;
    sharded.shards = 2;
    return sharded;
}

/** Exact (bitwise) agreement of two bidding results. */
void
expectIdentical(const BiddingResult &a, const BiddingResult &b,
                const std::string &what)
{
    EXPECT_EQ(a.iterations, b.iterations) << what;
    EXPECT_EQ(a.converged, b.converged) << what;
    EXPECT_EQ(a.deadlineExpired, b.deadlineExpired) << what;
    ASSERT_EQ(a.prices.size(), b.prices.size()) << what;
    for (std::size_t j = 0; j < a.prices.size(); ++j)
        ASSERT_EQ(a.prices[j], b.prices[j]) << what << ": price " << j;
    ASSERT_EQ(a.bids.size(), b.bids.size()) << what;
    for (std::size_t i = 0; i < a.bids.size(); ++i) {
        for (std::size_t k = 0; k < a.bids[i].size(); ++k) {
            ASSERT_EQ(a.bids[i][k], b.bids[i][k])
                << what << ": bid (" << i << "," << k << ")";
            ASSERT_EQ(a.allocation[i][k], b.allocation[i][k])
                << what << ": allocation (" << i << "," << k << ")";
        }
    }
}

TEST(NetBarrier, MessageExactlyAtTheDeadlineStillClosesFresh)
{
    // Constant one-way delay d: the price lands at T+d, the bid
    // aggregate at T+2d. A barrier of exactly 2d admits it — the
    // deadline bound is inclusive — so every round is fresh and the
    // solve is *bitwise* the in-process solve, delays notwithstanding.
    const auto market = barrierMarket();
    BiddingOptions opts;
    net::ShardedOptions sharded = twoShards();
    sharded.faults.delayMin = 4;
    sharded.faults.delayMax = 4;
    sharded.faults.seed = 0xca11;
    sharded.barrierDeadline = 8;

    const auto viaNet = solveShardedBidding(market, opts, sharded);
    const auto inProcess = solveAmdahlBidding(market, opts);
    EXPECT_TRUE(viaNet.converged);
    EXPECT_EQ(viaNet.net.degradedRounds, 0u);
    EXPECT_EQ(viaNet.net.retransmits, 0u);
    EXPECT_EQ(viaNet.net.minQuorum, 2u);
    expectIdentical(viaNet, inProcess, "deadline == 2d");
}

TEST(NetBarrier, DeadlineOneTickShortDegradesEveryRound)
{
    // Shrink the barrier to 2d - 1: the same aggregates now always
    // miss, every round clears on last round's table, and the solve
    // can never converge (stale shards haven't answered these
    // prices). The staleness bound keeps quorum intact throughout.
    const auto market = barrierMarket();
    BiddingOptions opts;
    opts.maxIterations = 12;
    net::ShardedOptions sharded = twoShards();
    sharded.faults.delayMin = 4;
    sharded.faults.delayMax = 4;
    sharded.faults.seed = 0xca11;
    sharded.barrierDeadline = 7;

    const auto result = solveShardedBidding(market, opts, sharded);
    EXPECT_FALSE(result.converged);
    EXPECT_EQ(result.iterations, 12);
    EXPECT_EQ(result.net.degradedRounds, 12u);
    EXPECT_FALSE(result.net.quorumCollapsed);
    EXPECT_FALSE(result.net.partitionDegraded);
    // Every round served both shards stale.
    EXPECT_EQ(result.net.staleBidRounds, 24u);
}

TEST(NetBarrier, RetransmitsRecoverFromLossDeterministically)
{
    // Lossy, delayed, duplicating network: retransmits must fire, the
    // solve must still converge, and two identical runs must agree
    // bit for bit — including every net counter.
    const auto market = barrierMarket();
    BiddingOptions opts;
    net::ShardedOptions sharded = twoShards();
    sharded.faults.lossRate = 0.3;
    sharded.faults.delayMin = 1;
    sharded.faults.delayMax = 3;
    sharded.faults.duplicationRate = 0.2;
    sharded.faults.seed = 0x10ad;

    const auto a = solveShardedBidding(market, opts, sharded);
    const auto b = solveShardedBidding(market, opts, sharded);
    EXPECT_TRUE(a.converged);
    EXPECT_GT(a.net.retransmits, 0u);
    expectIdentical(a, b, "faulted run-vs-run");
    EXPECT_EQ(a.net.retransmits, b.net.retransmits);
    EXPECT_EQ(a.net.degradedRounds, b.net.degradedRounds);
    EXPECT_EQ(a.net.staleBidRounds, b.net.staleBidRounds);
    EXPECT_EQ(a.net.healedReentries, b.net.healedReentries);
    EXPECT_EQ(a.net.minQuorum, b.net.minQuorum);

    // A different seed is a different network: the realization must
    // actually depend on it (otherwise the substreams are dead).
    net::ShardedOptions other = sharded;
    other.faults.seed = 0xbeef;
    const auto c = solveShardedBidding(market, opts, other);
    EXPECT_NE(a.net.retransmits, c.net.retransmits);
}

TEST(NetBarrier, PartitionHealsBeforeTheFinalRound)
{
    // Shard 1 is cut off for the first four global rounds. With the
    // default quorum floor the coordinator clears degraded rounds on
    // its stale aggregate, then the heal triggers a damped warm-start
    // re-entry and the solve still reaches a fresh, converged round.
    const auto market = barrierMarket();
    BiddingOptions opts;
    net::ShardedOptions sharded = twoShards();
    sharded.partitions = {{1, 0, 4}};

    const auto result = solveShardedBidding(market, opts, sharded);
    EXPECT_TRUE(result.converged);
    EXPECT_TRUE(result.net.partitionDegraded);
    EXPECT_FALSE(result.net.quorumCollapsed);
    EXPECT_GE(result.net.degradedRounds, 4u);
    EXPECT_GE(result.net.healedReentries, 1u);
    // Four silent rounds sit inside the default staleness allowance
    // (8), so the partitioned shard never leaves the usable set.
    EXPECT_EQ(result.net.minQuorum, 2u);

    // The healed equilibrium is the *same* equilibrium: prices match
    // the fault-free solve to solver tolerance (not bitwise — the
    // degraded prefix takes a different path to the fixed point).
    const auto clean = solveAmdahlBidding(market, opts);
    ASSERT_EQ(result.prices.size(), clean.prices.size());
    for (std::size_t j = 0; j < clean.prices.size(); ++j)
        EXPECT_NEAR(result.prices[j], clean.prices[j],
                    1e-3 * clean.prices[j])
            << "price " << j;
}

TEST(NetBarrier, LoneUsableShardSurvivesAtQuorumFloorOne)
{
    // Quorum floor low enough that ceil(floor * 2) == 1: with shard 1
    // partitioned for the whole run and zero staleness allowance, the
    // coordinator keeps clearing degraded rounds on shard 0 alone —
    // degraded service, never a collapse.
    const auto market = barrierMarket();
    BiddingOptions opts;
    opts.maxIterations = 10;
    net::ShardedOptions sharded = twoShards();
    sharded.quorumFloor = 0.01;
    sharded.maxStaleRounds = 0;
    sharded.partitions = {{1, 0, 1000}};

    const auto result = solveShardedBidding(market, opts, sharded);
    EXPECT_FALSE(result.converged);
    EXPECT_FALSE(result.net.quorumCollapsed);
    EXPECT_TRUE(result.net.partitionDegraded);
    EXPECT_EQ(result.net.degradedRounds, 10u);
    EXPECT_EQ(result.net.minQuorum, 1u);
}

TEST(NetBarrier, FullQuorumFloorCollapsesOnFirstSilentShard)
{
    // quorumFloor = 1.0 demands every shard every round; the first
    // round shard 1 misses (staleness bound zero) aborts the solve
    // for the fallback ladder.
    const auto market = barrierMarket();
    BiddingOptions opts;
    net::ShardedOptions sharded = twoShards();
    sharded.quorumFloor = 1.0;
    sharded.maxStaleRounds = 0;
    sharded.partitions = {{1, 0, 1000}};

    const auto result = solveShardedBidding(market, opts, sharded);
    EXPECT_FALSE(result.converged);
    EXPECT_TRUE(result.net.quorumCollapsed);
    EXPECT_EQ(result.iterations, 1);
    EXPECT_EQ(result.net.minQuorum, 1u);
    EXPECT_EQ(result.net.degradedRounds, 0u); // collapsed, not served
}

TEST(NetBarrier, SessionCarriesPartitionWindowsAcrossSolves)
{
    // A window over global rounds [2, 50) spans two back-to-back
    // solves sharing one session: the first solve converges before
    // round 2 opens wide... or degrades inside it; the second solve
    // starts *inside* the window and must see it immediately.
    const auto market = barrierMarket();
    BiddingOptions opts;
    opts.maxIterations = 6;
    net::ShardedOptions sharded = twoShards();
    sharded.partitions = {{1, 2, 50}};

    net::NetSession sess;
    const auto first =
        solveShardedBidding(market, opts, sharded, &sess);
    EXPECT_EQ(sess.globalRound, 6u); // budget exhausted inside window
    EXPECT_TRUE(first.net.partitionDegraded);

    const auto second =
        solveShardedBidding(market, opts, sharded, &sess);
    EXPECT_TRUE(second.net.partitionDegraded);
    EXPECT_GE(second.net.degradedRounds, 1u);
    EXPECT_EQ(sess.globalRound, 12u);
}

} // namespace
} // namespace amdahl::core
