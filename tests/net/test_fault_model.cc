/**
 * @file
 * Purity and substream contracts of the seed-driven fault model.
 *
 * Every realization must be a pure function of (seed, edge, round,
 * attempt): asking twice, asking in any order, or asking from any
 * thread gives the same answer. The pinned-realization table guards
 * the exact substream layout — reshuffling substreamSeed purposes or
 * mix rounds would silently re-randomize every recorded faulted run,
 * so a layout change must be a deliberate, test-breaking act.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault_model.hh"
#include "net/options.hh"

namespace amdahl::net {
namespace {

NetFaultOptions
pinnedOptions()
{
    NetFaultOptions f;
    f.lossRate = 0.25;
    f.duplicationRate = 0.25;
    f.delayMin = 2;
    f.delayMax = 9;
    f.seed = 0xfeedbeef;
    return f;
}

struct PinnedRealization
{
    std::uint64_t edge;
    std::uint64_t round;
    std::uint32_t attempt;
    bool lost;
    bool duplicated;
    Ticks delay;
    Ticks duplicateDelay;
};

/**
 * Captured once from the implementation and frozen. A failure here
 * means the substream layout changed and every seeded faulted run in
 * every golden trace is invalidated — bump with care.
 */
const std::vector<PinnedRealization> &
pinnedTable()
{
    static const std::vector<PinnedRealization> table = {
        {0u, 0u, 0u, 0, 0, 5, 7}, {0u, 0u, 1u, 0, 0, 7, 9},
        {0u, 0u, 3u, 1, 0, 4, 6}, {0u, 7u, 0u, 0, 0, 9, 9},
        {0u, 7u, 1u, 0, 0, 7, 4}, {0u, 7u, 3u, 1, 0, 4, 4},
        {1u, 0u, 0u, 0, 0, 8, 6}, {1u, 0u, 1u, 0, 0, 9, 9},
        {1u, 0u, 3u, 0, 0, 8, 4}, {1u, 7u, 0u, 1, 0, 8, 4},
        {1u, 7u, 1u, 0, 0, 3, 4}, {1u, 7u, 3u, 0, 0, 9, 4},
        {5u, 0u, 0u, 0, 1, 2, 5}, {5u, 0u, 1u, 0, 1, 8, 4},
        {5u, 0u, 3u, 0, 0, 3, 2}, {5u, 7u, 0u, 1, 1, 2, 2},
        {5u, 7u, 1u, 1, 1, 4, 7}, {5u, 7u, 3u, 0, 0, 3, 5},
    };
    return table;
}

TEST(NetFaultModel, PinnedRealizationsAreFrozen)
{
    const NetFaultModel model(pinnedOptions(), {});
    for (const PinnedRealization &p : pinnedTable()) {
        EXPECT_EQ(model.lost(p.edge, p.round, p.attempt), p.lost)
            << "lost(" << p.edge << "," << p.round << "," << p.attempt
            << ")";
        EXPECT_EQ(model.duplicated(p.edge, p.round, p.attempt),
                  p.duplicated)
            << "dup(" << p.edge << "," << p.round << "," << p.attempt
            << ")";
        EXPECT_EQ(model.delay(p.edge, p.round, p.attempt), p.delay)
            << "delay(" << p.edge << "," << p.round << ","
            << p.attempt << ")";
        EXPECT_EQ(model.duplicateDelay(p.edge, p.round, p.attempt),
                  p.duplicateDelay)
            << "dupDelay(" << p.edge << "," << p.round << ","
            << p.attempt << ")";
    }
}

TEST(NetFaultModel, RealizationsAreOrderIndependent)
{
    // Ask the same questions backwards and interleaved: the model
    // holds no generator state, so the answers cannot move.
    const NetFaultModel model(pinnedOptions(), {});
    const auto &table = pinnedTable();
    for (std::size_t i = table.size(); i-- > 0;) {
        const PinnedRealization &p = table[i];
        // Interleave a foreign query between every pair of reads.
        (void)model.delay(p.edge + 1, p.round, p.attempt);
        EXPECT_EQ(model.lost(p.edge, p.round, p.attempt), p.lost);
        (void)model.duplicated(p.edge, p.round + 3, p.attempt);
        EXPECT_EQ(model.delay(p.edge, p.round, p.attempt), p.delay);
    }
}

TEST(NetFaultModel, NeighboringCoordinatesDecorrelate)
{
    // Adjacent (edge, round, attempt) coordinates must not share
    // realizations wholesale; count disagreements over a grid.
    const NetFaultModel model(pinnedOptions(), {});
    int delayDiffers = 0;
    int total = 0;
    for (std::uint64_t edge = 0; edge < 8; ++edge) {
        for (std::uint64_t g = 0; g < 8; ++g) {
            ++total;
            if (model.delay(edge, g, 0) != model.delay(edge, g + 1, 0))
                ++delayDiffers;
        }
    }
    EXPECT_GT(delayDiffers, total / 2);
}

TEST(NetFaultModel, ZeroRatesDrawNothing)
{
    NetFaultOptions sound;
    sound.seed = 0xfeedbeef; // a seed alone must not create faults
    const NetFaultModel model(sound, {});
    EXPECT_FALSE(model.active());
    for (std::uint64_t edge = 0; edge < 4; ++edge) {
        for (std::uint64_t g = 0; g < 16; ++g) {
            EXPECT_FALSE(model.lost(edge, g, 0));
            EXPECT_FALSE(model.duplicated(edge, g, 0));
            EXPECT_EQ(model.delay(edge, g, 0), Ticks{0});
            EXPECT_EQ(model.duplicateDelay(edge, g, 0), Ticks{0});
        }
    }
}

TEST(NetFaultModel, DelaysRespectConfiguredBounds)
{
    const NetFaultOptions opts = pinnedOptions();
    const NetFaultModel model(opts, {});
    for (std::uint64_t edge = 0; edge < 6; ++edge) {
        for (std::uint64_t g = 0; g < 64; ++g) {
            for (std::uint32_t a = 0; a < 4; ++a) {
                const Ticks d = model.delay(edge, g, a);
                EXPECT_GE(d, opts.delayMin);
                EXPECT_LE(d, opts.delayMax);
                const Ticks dd = model.duplicateDelay(edge, g, a);
                EXPECT_GE(dd, opts.delayMin);
                EXPECT_LE(dd, opts.delayMax);
            }
        }
    }
}

TEST(NetFaultModel, SeedsSelectDistinctRealizations)
{
    NetFaultOptions other = pinnedOptions();
    other.seed = 0xbeef;
    const NetFaultModel a(pinnedOptions(), {});
    const NetFaultModel b(other, {});
    int differs = 0;
    for (std::uint64_t g = 0; g < 32; ++g) {
        if (a.delay(0, g, 0) != b.delay(0, g, 0))
            ++differs;
    }
    EXPECT_GT(differs, 0);
}

TEST(NetFaultModel, PartitionWindowsAreHalfOpenOnGlobalRounds)
{
    const std::vector<PartitionWindow> windows = {
        {2, 10, 40},
        {0, 5, 6},
    };
    const NetFaultModel model(NetFaultOptions{}, windows);
    EXPECT_TRUE(model.active()); // scheduled faults count as active
    EXPECT_FALSE(model.partitioned(2, 9));
    EXPECT_TRUE(model.partitioned(2, 10));
    EXPECT_TRUE(model.partitioned(2, 39));
    EXPECT_FALSE(model.partitioned(2, 40));
    EXPECT_FALSE(model.partitioned(1, 20)); // other shards unaffected
    EXPECT_TRUE(model.partitioned(0, 5));
    EXPECT_FALSE(model.partitioned(0, 6));
}

TEST(NetFaultModel, ValidationRejectsAbsurdShardCounts)
{
    ShardedOptions opts;
    opts.shards = kMaxShards;
    EXPECT_TRUE(validateShardedOptions(opts).isOk());
    opts.shards = kMaxShards + 1;
    EXPECT_FALSE(validateShardedOptions(opts).isOk());
    // "-1" wrapped through an unsigned parse must be a structured
    // DomainError, not a failed session-state allocation.
    opts.shards = static_cast<std::size_t>(-1);
    const Status st = validateShardedOptions(opts);
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.kind(), ErrorKind::DomainError);
}

} // namespace
} // namespace amdahl::net
