/**
 * @file
 * amdahl_lint engine tests over the fixture corpus.
 *
 * The corpus under fixtures/ mirrors the repo's directory contract
 * (src/core, src/common, src/obs, src/exec), one known-violation file
 * and one clean counterpart per rule, plus suppression, malformed
 * marker, and decoy (strings/comments) cases. Counts asserted here
 * are exact: a rule that over-fires is as broken as one that stays
 * silent.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "baseline.hh"
#include "linter.hh"
#include "rules.hh"

#ifndef AMDAHL_LINT_FIXTURE_DIR
#error "AMDAHL_LINT_FIXTURE_DIR must point at the fixture corpus"
#endif

namespace amdahl::lint {
namespace {

const std::string kRoot = AMDAHL_LINT_FIXTURE_DIR;

LintReport
lintCorpus(Baseline baseline = {})
{
    auto files = discoverFiles(kRoot);
    auto report = lintFiles(kRoot, files, std::move(baseline));
    EXPECT_TRUE(report.ok()) << report.status().toString();
    return report.take();
}

/** Findings per (file, rule), silenced ones included. */
std::map<std::pair<std::string, std::string>, int>
tally(const LintReport &report)
{
    std::map<std::pair<std::string, std::string>, int> counts;
    for (const Finding &f : report.findings)
        ++counts[{f.file, f.rule}];
    return counts;
}

TEST(LintCorpus, DiscoversTheWholeFixtureTree)
{
    const auto files = discoverFiles(kRoot);
    EXPECT_EQ(files.size(), 27u);
    // Sorted, repo-relative, forward slashes.
    EXPECT_FALSE(files.empty());
    EXPECT_EQ(files.front().substr(0, 4), "src/");
}

TEST(LintCorpus, EachRuleFiresExactlyOnItsFixture)
{
    const auto counts = tally(lintCorpus());
    const std::map<std::pair<std::string, std::string>, int> expected{
        {{"src/core/det_rand_violation.cc", "DET-rand"}, 4},
        {{"src/core/det_clock_violation.cc", "DET-clock"}, 2},
        {{"src/net/det_clock_violation.cc", "DET-clock"}, 2},
        {{"src/obs/span_clock_violation.cc", "DET-clock"}, 2},
        {{"src/net/det_rand_violation.cc", "DET-rand"}, 4},
        {{"src/core/det_exec_violation.cc", "DET-exec"}, 2},
        {{"src/core/det_unordered_violation.cc", "DET-unordered"}, 1},
        {{"src/core/det_simd_violation.cc", "DET-simd"}, 3},
        {{"src/core/trust_throw_violation.cc", "TRUST-throw"}, 1},
        {{"src/core/trust_catch_violation.cc", "TRUST-catch"}, 1},
        {{"src/core/obs_io_violation.cc", "OBS-io"}, 2},
        {{"src/core/trust_fio_violation.cc", "TRUST-fio"}, 3},
        {{"src/core/conc_global_violation.cc", "CONC-global"}, 2},
        {{"src/core/suppressed.cc", "CONC-global"}, 2},
        {{"src/core/alint_malformed.cc", "META-alint"}, 2},
        {{"src/core/alint_malformed.cc", "CONC-global"}, 2},
    };
    EXPECT_EQ(counts, expected);
}

TEST(LintCorpus, CleanCounterpartsAndAllowlistedOwnersStaySilent)
{
    const auto counts = tally(lintCorpus());
    for (const char *file : {
             "src/core/det_rand_clean.cc",
             "src/core/det_unordered_clean.cc",
             "src/core/bidding_simd.cc",
             "src/core/trust_clean.cc",
             "src/core/conc_global_clean.cc",
             "src/core/strings_and_comments_clean.cc",
             "src/core/clean.cc",
             "src/common/random.cc",
             "src/common/logging.cc",
             "src/obs/timer_clock_allowed.cc",
             "src/exec/probe_allowed.cc",
             "src/robustness/durability/fio_allowed.cc",
         }) {
        for (const auto &[key, count] : counts)
            EXPECT_NE(key.first, file)
                << key.second << " fired " << count << "x on " << file;
    }
}

TEST(LintCorpus, InlineSuppressionSilencesButStaysVisible)
{
    const LintReport report = lintCorpus();
    int suppressed = 0;
    for (const Finding &f : report.findings) {
        if (f.file == "src/core/suppressed.cc") {
            EXPECT_TRUE(f.suppressed) << f.rule << ':' << f.line;
            ++suppressed;
        }
    }
    EXPECT_EQ(suppressed, 2);

    const FindingCounts counts = countFindings(report);
    EXPECT_EQ(counts.total, 35);
    EXPECT_EQ(counts.suppressed, 2);
    EXPECT_EQ(counts.baselined, 0);
    EXPECT_EQ(counts.active, 33);
}

TEST(LintCorpus, MalformedMarkersNeverSuppress)
{
    const LintReport report = lintCorpus();
    for (const Finding &f : report.findings) {
        if (f.file == "src/core/alint_malformed.cc") {
            EXPECT_FALSE(f.suppressed) << f.rule << ':' << f.line;
        }
    }
}

TEST(LintBaseline, MatchesByRuleFileAndLineText)
{
    auto parsed = parseBaseline(
        "# why: fixture entry for the baseline round-trip test.\n"
        "TRUST-throw|src/core/trust_throw_violation.cc|"
        "throw std::runtime_error(\"value must be non-negative\");\n");
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    ASSERT_EQ(parsed.value().entries.size(), 1u);
    EXPECT_TRUE(parsed.value().entries[0].justified);

    const LintReport report = lintCorpus(parsed.take());
    bool sawBaselined = false;
    for (const Finding &f : report.findings) {
        if (f.rule == "TRUST-throw") {
            EXPECT_TRUE(f.baselined);
            sawBaselined = true;
        }
    }
    EXPECT_TRUE(sawBaselined);
    const FindingCounts counts = countFindings(report);
    EXPECT_EQ(counts.baselined, 1);
    EXPECT_EQ(counts.active, 32);
    EXPECT_TRUE(report.staleBaseline.empty());
}

TEST(LintBaseline, UnmatchedEntriesReportAsStale)
{
    auto parsed = parseBaseline(
        "# why: points at a line nobody has anymore.\n"
        "DET-clock|src/core/clean.cc|auto t = steady_clock::now();\n");
    ASSERT_TRUE(parsed.ok());
    const LintReport report = lintCorpus(parsed.take());
    ASSERT_EQ(report.staleBaseline.size(), 1u);
    EXPECT_EQ(report.staleBaseline[0].rule, "DET-clock");
    EXPECT_EQ(countFindings(report).baselined, 0);
}

TEST(LintBaseline, RejectsEntriesWithoutTheThreeFields)
{
    EXPECT_FALSE(parseBaseline("DET-clock only-two|fields\n").ok());
    EXPECT_FALSE(parseBaseline("a||b\n").ok());
    const auto st = parseBaseline("garbage\n").status();
    EXPECT_EQ(st.kind(), ErrorKind::ParseError);
    EXPECT_EQ(st.line(), 1);
}

TEST(LintBaseline, TracksJustificationPerCommentBlock)
{
    auto parsed = parseBaseline(
        "# why: the first block is justified.\n"
        "DET-clock|a.cc|x\n"
        "\n"
        "# a comment that is not a justification\n"
        "DET-rand|b.cc|y\n");
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.value().entries.size(), 2u);
    EXPECT_TRUE(parsed.value().entries[0].justified);
    EXPECT_FALSE(parsed.value().entries[1].justified);
}

TEST(LintBaseline, SquashNormalizesWhitespaceOnly)
{
    EXPECT_EQ(squashWhitespace("  a\tb   c  "), "a b c");
    EXPECT_EQ(squashWhitespace("abc"), "abc");
    EXPECT_EQ(squashWhitespace("   "), "");
}

TEST(LintReportFormat, JsonCarriesTheDocumentedSchema)
{
    const std::string json = formatJson(lintCorpus());
    EXPECT_EQ(json.substr(0, 25), "{\"version\":1,\"findings\":[");
    EXPECT_NE(json.find("\"rule\":\"DET-rand\""), std::string::npos);
    EXPECT_NE(json.find("\"file\":\"src/core/det_rand_violation.cc\""),
              std::string::npos);
    EXPECT_NE(json.find("\"counts\":{\"total\":35,\"active\":33,"
                        "\"baselined\":0,\"suppressed\":2}"),
              std::string::npos);
    EXPECT_NE(json.find("\"filesScanned\":27"), std::string::npos);
    EXPECT_EQ(json.back(), '}');
}

TEST(LintReportFormat, HumanReportNamesFileLineAndRule)
{
    const std::string text = formatHuman(lintCorpus(), false);
    EXPECT_NE(text.find("src/core/trust_throw_violation.cc:"),
              std::string::npos);
    EXPECT_NE(text.find("[TRUST-throw]"), std::string::npos);
    // Suppressed findings are hidden unless asked for.
    EXPECT_EQ(text.find("src/core/suppressed.cc"), std::string::npos);
    EXPECT_NE(formatHuman(lintCorpus(), true)
                  .find("src/core/suppressed.cc"),
              std::string::npos);
}

TEST(LintCatalog, EveryEmittedRuleIsCatalogued)
{
    const LintReport report = lintCorpus();
    for (const Finding &f : report.findings) {
        bool known = false;
        for (const RuleInfo &info : ruleCatalog())
            known = known || f.rule == info.id;
        EXPECT_TRUE(known) << f.rule;
    }
}

TEST(LintCatalog, ExplicitPathLintsJustThatFile)
{
    auto report = lintFiles(
        kRoot, {"src/core/trust_throw_violation.cc"}, Baseline{});
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().filesScanned, 1);
    ASSERT_EQ(report.value().findings.size(), 1u);
    EXPECT_EQ(report.value().findings[0].rule, "TRUST-throw");
}

TEST(LintCatalog, MissingExplicitPathFailsLoudly)
{
    auto report =
        lintFiles(kRoot, {"src/core/no_such_file.cc"}, Baseline{});
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.status().kind(), ErrorKind::IoError);
}

} // namespace
} // namespace amdahl::lint
