// Fixture: the durability layer is the designated owner of raw file
// IO — the same constructs that fire as TRUST-fio in core/ stay
// silent here.
#include <cstdio>
#include <fstream>

namespace fixture {

void
journalAppend(const char *path)
{
    std::ofstream out(path, std::ios::app);
    out << "record\n";
}

void
atomicPublish(const char *tmp, const char *final_path)
{
    std::rename(tmp, final_path);
}

} // namespace fixture
