// Fixture: wall-clock reads in transport code, where all time must be
// virtual ticks. Expected: 2 DET-clock findings
// (high_resolution_clock, gettimeofday).

#include <chrono>

namespace fx {

long
transportDeadlineNanos()
{
    const auto t = std::chrono::high_resolution_clock::now();
    struct timeval tv;
    gettimeofday(&tv, nullptr);
    return t.time_since_epoch().count() + tv.tv_usec;
}

} // namespace fx
