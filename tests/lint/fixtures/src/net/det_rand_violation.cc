// Fixture: stateful randomness in fault-injection code, which must use
// counter-based substreams instead. Expected: 4 DET-rand findings
// (srand, default_random_engine, ranlux48, normal_distribution).

#include <cstdlib>
#include <random>

namespace fx {

double
jitterTicks()
{
    std::srand(7);
    std::default_random_engine engine(42);
    std::ranlux48 slow(43);
    std::normal_distribution<double> noise(0.0, 1.5);
    return noise(engine) + static_cast<double>(slow());
}

} // namespace fx
