// Fixture: the designated randomness owner. The same engines that are
// violations everywhere else are allowed here. Expected: 0 findings.

#include <random>

namespace fx {

unsigned
seedStream(unsigned seed)
{
    std::mt19937 gen(seed);
    return static_cast<unsigned>(gen());
}

} // namespace fx
