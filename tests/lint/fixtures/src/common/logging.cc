// Fixture: the logging hook itself — the one file in src/ allowed to
// touch std::cerr, because it *is* the route everything else must
// take. Expected: 0 findings.

#include <iostream>
#include <string>

namespace fx {

void
emit(const std::string &msg)
{
    std::cerr << msg << '\n';
}

} // namespace fx
