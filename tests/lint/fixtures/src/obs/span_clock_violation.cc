// Fixture: the span layer must stamp spans with virtual ticks only —
// a wall-clock read here would break the byte-identical span-stream
// contract. Expected: 2 DET-clock findings (steady_clock,
// clock_gettime).

#include <chrono>
#include <cstdint>
#include <ctime>

namespace fx {

std::uint64_t
spanBeginTick()
{
    const auto now = std::chrono::steady_clock::now();
    timespec ts{};
    clock_gettime(0, &ts);
    return static_cast<std::uint64_t>(
               now.time_since_epoch().count()) +
           static_cast<std::uint64_t>(ts.tv_nsec);
}

} // namespace fx
