// Fixture: the timer (src/obs/timer*) owns timing; the same clock
// read that is a violation anywhere else in obs/ is allowed here.
// Expected: 0 findings.

#include <chrono>

namespace fx {

double
elapsedUs(std::chrono::steady_clock::time_point start)
{
    const auto delta = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::micro>(delta).count();
}

} // namespace fx
