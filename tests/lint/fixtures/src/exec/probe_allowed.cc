// Fixture: exec/ is the designated owner of machine-shape and
// environment probes. Expected: 0 findings.

#include <cstdlib>
#include <thread>

namespace fx {

int
defaultWorkerCount()
{
    if (std::getenv("FX_THREADS") != nullptr)
        return 1;
    return static_cast<int>(std::thread::hardware_concurrency());
}

} // namespace fx
