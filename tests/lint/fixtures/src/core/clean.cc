// Fixture: ordinary deterministic kernel code touching none of the
// rule families. Expected: 0 findings.

#include <cmath>
#include <vector>

namespace fx {

double
amdahlSpeedup(double parallelFraction, int cores)
{
    const double serial = 1.0 - parallelFraction;
    return 1.0 / (serial + parallelFraction / cores);
}

double
totalUtility(const std::vector<double> &allocations, double f)
{
    double sum = 0.0;
    for (const double x : allocations)
        sum += std::log(amdahlSpeedup(f, static_cast<int>(x) + 1));
    return sum;
}

} // namespace fx
