// Fixture: every accepted form of namespace-scope state — atomic,
// sync primitive, thread_local, and const/constexpr. Expected: 0
// findings.

#include <atomic>
#include <mutex>
#include <string>

namespace fx {

std::atomic<int> solveCounter{0};
std::atomic<bool> timingEnabled{false};
std::mutex priceLock;
thread_local int recursionDepth = 0;
constexpr double kEpsilon = 1e-9;
const char *const kMarketName = "amdahl";
static const std::string kVersion = "1.0";

int
bump()
{
    return solveCounter.fetch_add(1) + recursionDepth;
}

} // namespace fx
