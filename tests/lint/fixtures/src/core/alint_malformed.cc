// Fixture: broken suppressions must not suppress, and must be
// findings themselves. Expected: 2 META-alint findings plus the 2
// CONC-global findings the markers failed to silence (4 active).

namespace fx {

// ALINT(CONC-global) missing the colon and the reason
int unguardedOne = 0;

// ALINT(NOT-A-RULE): the reason is fine but the rule id is not
int unguardedTwo = 0;

} // namespace fx
