// Fixture: both inline suppression styles — the whole-line comment
// above the finding and the trailing comment on its line. Expected:
// 2 CONC-global findings, both suppressed (0 active).

namespace fx {

// ALINT(CONC-global): written once at startup before threads exist.
int registryGeneration = 0;

long tallied = 0; // ALINT(CONC-global): single-threaded CLI tally.

} // namespace fx
