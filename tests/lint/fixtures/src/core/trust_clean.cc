// Fixture: the boundary-conformant shape — an explicit result type
// instead of an exception, and recovery catches by const reference.
// Expected: 0 findings.

namespace fx {

struct ParseOutcome
{
    bool ok;
    int value;
};

ParseOutcome
parsePositive(int value)
{
    return ParseOutcome{value >= 0, value};
}

int
shielded(int (*fn)())
{
    try {
        return fn();
    } catch (const int &code) {
        return code;
    } catch (...) {
        return -1;
    }
}

} // namespace fx
