// Fixture: the designated kernel TU (src/core/bidding_simd.*) owns
// vector intrinsics; the same include and intrinsics that are a
// violation anywhere else are allowed here.
// Expected: 0 findings.

#include <immintrin.h>

namespace fx {

double
horizontalFirst(const double *values)
{
    const __m256d v = _mm256_loadu_pd(values);
    const __m128d lo = _mm256_castpd256_pd128(v);
    return _mm_cvtsd_f64(lo);
}

} // namespace fx
