// Fixture: catch-by-value slices a typed error down to its base.
// Expected: 1 TRUST-catch finding.

#include <exception>

namespace fx {

int
shield(int (*fn)())
{
    try {
        return fn();
    } catch (std::exception err) {
        return -1;
    }
}

} // namespace fx
