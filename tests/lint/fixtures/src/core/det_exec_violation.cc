// Fixture: machine-shape and environment probes in kernel code.
// Expected: 2 DET-exec findings (getenv, hardware_concurrency).

#include <cstdlib>
#include <thread>

namespace fx {

int
workerCount()
{
    const char *env = std::getenv("FX_THREADS");
    if (env != nullptr)
        return 1;
    return static_cast<int>(std::thread::hardware_concurrency());
}

} // namespace fx
