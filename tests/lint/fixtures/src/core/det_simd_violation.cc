// Fixture: vector intrinsics outside the designated kernel TU.
// Expected: 3 DET-simd findings (the immintrin include, the __m256d
// vector type, and the _mm256_loadu_pd intrinsic — the latter two on
// one line).

#include <immintrin.h>

namespace fx {

double
firstLane(const double *values)
{
    const __m256d v = _mm256_loadu_pd(values);
    return ((const double *)&v)[0];
}

} // namespace fx
