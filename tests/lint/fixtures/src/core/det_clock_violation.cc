// Fixture: wall-clock reads in kernel code. Expected: 2 DET-clock
// findings (steady_clock, system_clock).

#include <chrono>

namespace fx {

double
nowSeconds()
{
    const auto mono = std::chrono::steady_clock::now();
    const auto wall = std::chrono::system_clock::now();
    return std::chrono::duration<double>(
               mono.time_since_epoch()).count() +
           std::chrono::duration<double>(
               wall.time_since_epoch()).count();
}

} // namespace fx
