// Fixture: raw file IO in core code. Durable artifacts must go
// through robustness/durability or a designated sink; each construct
// below is a TRUST-fio finding.
#include <cstdio>
#include <fstream>

namespace fixture {

void
writeArtifact(const char *path)
{
    std::ofstream out(path);
    out << "data\n";
}

void
publish(const char *from, const char *to)
{
    std::FILE *f = std::fopen(from, "wb");
    if (f != nullptr)
        std::fclose(f);
    std::rename(from, to);
}

} // namespace fixture
