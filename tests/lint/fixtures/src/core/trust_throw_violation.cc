// Fixture: a raw throw on a parse path — exactly what the trust
// boundary forbids. Expected: 1 TRUST-throw finding.

#include <stdexcept>

namespace fx {

int
parsePositive(int value)
{
    if (value < 0)
        throw std::runtime_error("value must be non-negative");
    return value;
}

} // namespace fx
