// Fixture: a hash-order-dependent reduction — the float sum over an
// unordered_map picks up a different rounding order per
// implementation. Expected: 1 DET-unordered finding.

#include <unordered_map>

namespace fx {

double
totalLoad(const std::unordered_map<int, double> &loadByServer)
{
    double sum = 0.0;
    for (const auto &entry : loadByServer)
        sum += entry.second;
    return sum;
}

} // namespace fx
