// Fixture: every trigger word, but only in comments and string
// literals — a lexing linter must see none of them. Expected: 0
// findings.
//
// This comment mentions std::rand(), steady_clock, throw, and
// hardware_concurrency on purpose.

/* Block comment: random_device, system_clock, std::cerr, printf,
   catch (std::exception byValue), getenv("HOME"). */

#include <string>

namespace fx {

std::string
decoys()
{
    return "rand() throw steady_clock printf std::cerr getenv";
}

const char *const kRawDecoy =
    R"(for (auto &kv : unordered_map) sum += kv.second; throw;)";

} // namespace fx
