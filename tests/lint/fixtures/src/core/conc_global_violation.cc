// Fixture: unguarded mutable globals — data races waiting for the
// thread pool to find them. Expected: 2 CONC-global findings.

namespace fx {

int solveCounter = 0;
double lastClearingPrice = 1.0;

} // namespace fx
