// Fixture: library code writing straight to the process streams,
// invisible to the logging hook and trace sink. Expected: 2 OBS-io
// findings (std::cerr, std::printf).

#include <cstdio>
#include <iostream>

namespace fx {

void
reportProgress(int round)
{
    std::cerr << "round " << round << "\n";
    std::printf("round %d\n", round);
}

} // namespace fx
