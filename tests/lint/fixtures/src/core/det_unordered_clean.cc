// Fixture: the clean counterparts — accumulating over an *ordered*
// map is fine, and an unordered set used for membership tests only
// never exposes its iteration order. Expected: 0 findings.

#include <map>
#include <unordered_set>

namespace fx {

double
totalLoad(const std::map<int, double> &loadByServer)
{
    double sum = 0.0;
    for (const auto &entry : loadByServer)
        sum += entry.second;
    return sum;
}

bool
anyInRange(const std::unordered_set<int> &members, int lo, int hi)
{
    for (int v = lo; v < hi; ++v) {
        if (members.count(v) > 0)
            return true;
    }
    return false;
}

} // namespace fx
