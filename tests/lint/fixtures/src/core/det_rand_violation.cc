// Fixture: every flavour of nondeterministic randomness DET-rand
// must catch. Expected: 4 DET-rand findings.

#include <cstdlib>
#include <random>

namespace fx {

int
roll()
{
    std::random_device entropy;
    std::mt19937 gen(entropy());
    std::uniform_int_distribution<int> die(1, 6);
    return die(gen) + std::rand();
}

} // namespace fx
