// Fixture: deterministic arithmetic only; DET-rand stays silent.
// Expected: 0 findings.

namespace fx {

// A counter-based mix in the style of common/random — no library
// randomness involved.
unsigned
mix(unsigned counter, unsigned stream)
{
    unsigned x = counter * 0x9E3779B9u + stream;
    x ^= x >> 16;
    x *= 0x85EBCA6Bu;
    x ^= x >> 13;
    return x;
}

} // namespace fx
