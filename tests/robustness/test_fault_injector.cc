/**
 * @file
 * Unit tests for the deterministic fault-injection schedule.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "robustness/fault_injector.hh"

namespace amdahl::robustness {
namespace {

FaultOptions
churnOptions()
{
    FaultOptions opts;
    opts.enabled = true;
    opts.crashRatePerServerEpoch = 0.05;
    opts.downEpochs = 3;
    return opts;
}

TEST(FaultInjector, DisabledMeansEmptySchedule)
{
    FaultOptions opts = churnOptions();
    opts.enabled = false;
    const FaultInjector injector(opts, 8, 100);
    EXPECT_TRUE(injector.schedule().empty());
    EXPECT_TRUE(injector.liveForClearing(0, 50));
}

TEST(FaultInjector, ZeroRateMeansEmptySchedule)
{
    FaultOptions opts = churnOptions();
    opts.crashRatePerServerEpoch = 0.0;
    const FaultInjector injector(opts, 8, 100);
    EXPECT_TRUE(injector.schedule().empty());
}

TEST(FaultInjector, ScheduleIsDeterministic)
{
    const FaultInjector a(churnOptions(), 8, 200);
    const FaultInjector b(churnOptions(), 8, 200);
    ASSERT_FALSE(a.schedule().empty());
    ASSERT_EQ(a.schedule().size(), b.schedule().size());
    for (std::size_t i = 0; i < a.schedule().size(); ++i) {
        EXPECT_EQ(a.schedule()[i].server, b.schedule()[i].server);
        EXPECT_EQ(a.schedule()[i].crashEpoch,
                  b.schedule()[i].crashEpoch);
        EXPECT_EQ(a.schedule()[i].recoverEpoch,
                  b.schedule()[i].recoverEpoch);
    }
}

TEST(FaultInjector, SeedChangesSchedule)
{
    FaultOptions other = churnOptions();
    other.seed = 12345;
    const FaultInjector a(churnOptions(), 8, 200);
    const FaultInjector b(other, 8, 200);
    ASSERT_FALSE(a.schedule().empty());
    ASSERT_FALSE(b.schedule().empty());
    bool differs = a.schedule().size() != b.schedule().size();
    for (std::size_t i = 0;
         !differs && i < a.schedule().size(); ++i) {
        differs = a.schedule()[i].server != b.schedule()[i].server ||
                  a.schedule()[i].crashEpoch !=
                      b.schedule()[i].crashEpoch;
    }
    EXPECT_TRUE(differs);
}

TEST(FaultInjector, IntervalsAreWellFormed)
{
    const int epochs = 300;
    const std::size_t servers = 6;
    const FaultInjector injector(churnOptions(), servers, epochs);
    ASSERT_FALSE(injector.schedule().empty());
    std::vector<int> down_until(servers, 0);
    for (const auto &event : injector.schedule()) {
        EXPECT_LT(event.server, servers);
        EXPECT_GE(event.crashEpoch, 0);
        EXPECT_LT(event.crashEpoch, epochs);
        EXPECT_EQ(event.recoverEpoch,
                  event.crashEpoch + churnOptions().downEpochs + 1);
        // A down server cannot crash again.
        EXPECT_GE(event.crashEpoch, down_until[event.server]);
        down_until[event.server] = event.recoverEpoch;
    }
}

TEST(FaultInjector, LiveForClearingMatchesSchedule)
{
    const FaultInjector injector(churnOptions(), 6, 300);
    ASSERT_FALSE(injector.schedule().empty());
    for (const auto &event : injector.schedule()) {
        // Cleared at the crash epoch (the crash happens mid-epoch)...
        EXPECT_TRUE(
            injector.liveForClearing(event.server, event.crashEpoch));
        // ...absent while down...
        for (int e = event.crashEpoch + 1; e < event.recoverEpoch;
             ++e) {
            EXPECT_FALSE(injector.liveForClearing(event.server, e));
        }
        // ...back at the recovery epoch.
        EXPECT_TRUE(
            injector.liveForClearing(event.server, event.recoverEpoch));
    }
}

TEST(FaultInjector, CrashAndRecoveryQueriesMatchSchedule)
{
    const FaultInjector injector(churnOptions(), 6, 300);
    std::size_t crashes = 0;
    std::size_t recoveries = 0;
    for (int epoch = 0; epoch < 320; ++epoch) {
        for (std::size_t j : injector.crashesDuring(epoch)) {
            (void)j;
            ++crashes;
        }
        for (std::size_t j : injector.recoveriesAt(epoch)) {
            (void)j;
            ++recoveries;
        }
    }
    EXPECT_EQ(crashes, injector.schedule().size());
    EXPECT_EQ(recoveries, injector.schedule().size());
}

TEST(FaultInjector, ScriptedCrashesAreHonoredVerbatim)
{
    FaultOptions opts;
    opts.enabled = true;
    opts.crashRatePerServerEpoch = 0.9; // ignored: script wins
    opts.scriptedCrashes = {{2, 5, 9}, {0, 1, 3}};
    const FaultInjector injector(opts, 4, 20);
    ASSERT_EQ(injector.schedule().size(), 2u);
    // Sorted by crash epoch.
    EXPECT_EQ(injector.schedule()[0].server, 0u);
    EXPECT_EQ(injector.schedule()[1].server, 2u);
    EXPECT_FALSE(injector.liveForClearing(2, 6));
    EXPECT_FALSE(injector.liveForClearing(2, 8));
    EXPECT_TRUE(injector.liveForClearing(2, 9));
    EXPECT_TRUE(injector.liveForClearing(1, 6));
}

TEST(FaultInjector, RejectsOverlappingScript)
{
    FaultOptions opts;
    opts.enabled = true;
    opts.scriptedCrashes = {{1, 2, 8}, {1, 5, 10}};
    EXPECT_THROW(FaultInjector(opts, 4, 20), FatalError);
}

TEST(FaultInjector, RejectsScriptNamingMissingServer)
{
    FaultOptions opts;
    opts.enabled = true;
    opts.scriptedCrashes = {{7, 2, 5}};
    EXPECT_THROW(FaultInjector(opts, 4, 20), FatalError);
}

TEST(FaultInjector, ValidatesOptionRanges)
{
    auto expectFatal = [](auto mutate) {
        FaultOptions opts;
        mutate(opts);
        EXPECT_THROW(validateFaultOptions(opts), FatalError);
    };
    expectFatal([](FaultOptions &o) {
        o.crashRatePerServerEpoch = -0.1;
    });
    expectFatal([](FaultOptions &o) {
        o.crashRatePerServerEpoch = 1.5;
    });
    expectFatal([](FaultOptions &o) { o.downEpochs = 0; });
    expectFatal([](FaultOptions &o) { o.checkpointEpochs = 0; });
    expectFatal([](FaultOptions &o) { o.bidLossRate = -0.2; });
    expectFatal([](FaultOptions &o) { o.bidLossRate = 1.01; });
    expectFatal([](FaultOptions &o) {
        o.fractionNoiseStddev = -1.0;
    });
    expectFatal([](FaultOptions &o) { o.staleRefreshEpochs = 0; });
    expectFatal([](FaultOptions &o) {
        o.scriptedCrashes = {{0, 5, 5}};
    });
    validateFaultOptions(FaultOptions{}); // defaults are valid
}

TEST(FaultInjector, PerturbFractionIsIdentityWhenDisabled)
{
    FaultOptions opts = churnOptions();
    opts.fractionNoiseStddev = 0.0;
    const FaultInjector injector(opts, 4, 50);
    EXPECT_DOUBLE_EQ(injector.perturbFraction(3, 2, 0.87), 0.87);

    FaultOptions off = churnOptions();
    off.enabled = false;
    off.fractionNoiseStddev = 0.5;
    const FaultInjector dormant(off, 4, 50);
    EXPECT_DOUBLE_EQ(dormant.perturbFraction(3, 2, 0.87), 0.87);
}

TEST(FaultInjector, PerturbFractionIsDeterministicAndBounded)
{
    FaultOptions opts = churnOptions();
    opts.fractionNoiseStddev = 0.2;
    opts.staleRefreshEpochs = 4;
    const FaultInjector injector(opts, 4, 50);
    for (int epoch = 0; epoch < 40; ++epoch) {
        for (std::size_t w = 0; w < 5; ++w) {
            const double p = injector.perturbFraction(epoch, w, 0.9);
            EXPECT_GE(p, 0.005);
            EXPECT_LE(p, 0.999);
            EXPECT_DOUBLE_EQ(p,
                             injector.perturbFraction(epoch, w, 0.9));
        }
    }
}

TEST(FaultInjector, PerturbFractionIsStaleWithinWindows)
{
    FaultOptions opts = churnOptions();
    opts.fractionNoiseStddev = 0.1;
    opts.staleRefreshEpochs = 4;
    const FaultInjector injector(opts, 4, 50);
    // Same estimate throughout a staleness window...
    EXPECT_DOUBLE_EQ(injector.perturbFraction(0, 1, 0.7),
                     injector.perturbFraction(3, 1, 0.7));
    // ...a fresh (still wrong) one after the refresh.
    EXPECT_NE(injector.perturbFraction(3, 1, 0.7),
              injector.perturbFraction(4, 1, 0.7));
    // Workloads drift independently.
    EXPECT_NE(injector.perturbFraction(0, 1, 0.7),
              injector.perturbFraction(0, 2, 0.7));
}

TEST(FaultInjector, BidSeedsAreDeterministicPerEpoch)
{
    const FaultInjector a(churnOptions(), 4, 50);
    const FaultInjector b(churnOptions(), 4, 50);
    EXPECT_EQ(a.bidSeed(7), b.bidSeed(7));
    EXPECT_NE(a.bidSeed(7), a.bidSeed(8));
}

TEST(FaultInjector, NeedsAtLeastOneServer)
{
    EXPECT_THROW(FaultInjector(churnOptions(), 0, 10), FatalError);
}

} // namespace
} // namespace amdahl::robustness
