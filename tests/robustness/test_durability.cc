/**
 * @file
 * Unit tests for the durability layer: codec, journal, snapshots,
 * deterministic IO-fault injection, and the DurableStateStore commit
 * and recovery protocol.
 *
 * On-disk corruption coverage lives in two places: synthetic
 * corruption is crafted inline here (torn tails, bit flips, stale
 * records), and the checked-in corpus under
 * tests/data/malformed/durability/ pins the byte-level formats so a
 * codec change that silently accepts garbage fails loudly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.hh"
#include "common/status.hh"
#include "robustness/durability/codec.hh"
#include "robustness/durability/durable_store.hh"
#include "robustness/durability/io_faults.hh"
#include "robustness/durability/journal.hh"
#include "robustness/durability/posix_io.hh"
#include "robustness/durability/snapshot.hh"

#ifndef AMDAHL_TEST_DATA_DIR
#error "AMDAHL_TEST_DATA_DIR must point at tests/data"
#endif

namespace amdahl::durability {
namespace {

namespace fs = std::filesystem;

/** A per-test scratch directory, wiped at the start of each test. */
fs::path
freshDir()
{
    const auto *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    fs::path dir = fs::temp_directory_path() / "amdahl_durability_test" /
                   (std::string(info->test_suite_name()) + "." +
                    info->name());
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

void
writeBytes(const fs::path &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

std::string
readBytes(const fs::path &path)
{
    auto bytes = readFileBytes(path.string());
    EXPECT_TRUE(bytes.ok()) << bytes.status().toString();
    return bytes.ok() ? bytes.take() : std::string();
}

/** An IoContext with injection disabled, for direct layer tests. */
struct PlainIo
{
    DurabilityCounters counters;
    IoContext io{IoFaultInjector(IoFaultOptions{}), &counters};
};

// --- codec -----------------------------------------------------------

TEST(DurabilityCodec, RoundTripsEveryPrimitive)
{
    ByteWriter w;
    w.putU32(0xDEADBEEFu);
    w.putU64(0x0123456789ABCDEFull);
    w.putF64(-1234.5678);
    w.putString("length-prefixed \0 bytes");
    w.putF64Vector({0.0, -0.25, 1e300});
    w.putU64Vector({1, 2, 3});

    ByteReader r(w.bytes());
    EXPECT_EQ(r.readU32(), 0xDEADBEEFu);
    EXPECT_EQ(r.readU64(), 0x0123456789ABCDEFull);
    EXPECT_DOUBLE_EQ(r.readF64(), -1234.5678);
    EXPECT_EQ(r.readString(), "length-prefixed \0 bytes");
    EXPECT_EQ(r.readF64Vector(),
              (std::vector<double>{0.0, -0.25, 1e300}));
    EXPECT_EQ(r.readU64Vector(), (std::vector<std::uint64_t>{1, 2, 3}));
    r.expectEnd();
    EXPECT_TRUE(r.ok()) << r.status().toString();
}

TEST(DurabilityCodec, UnderrunLatchesAParseError)
{
    ByteWriter w;
    w.putU32(7);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.readU64(), 0u); // only 4 bytes present
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().kind(), ErrorKind::ParseError);
    // Every subsequent read stays zero instead of touching memory.
    EXPECT_EQ(r.readU32(), 0u);
    EXPECT_EQ(r.readString(), "");
    EXPECT_TRUE(r.readF64Vector().empty());
}

TEST(DurabilityCodec, ImplausibleLengthPrefixIsRejected)
{
    ByteWriter w;
    w.putU64(1ull << 40); // string claims a terabyte
    ByteReader r(w.bytes());
    EXPECT_EQ(r.readString(), "");
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().kind(), ErrorKind::ParseError);
}

TEST(DurabilityCodec, TrailingGarbageFailsExpectEnd)
{
    ByteWriter w;
    w.putU32(1);
    w.putU32(2);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.readU32(), 1u);
    r.expectEnd();
    EXPECT_FALSE(r.ok());
}

TEST(DurabilityCodec, JournalEntryRoundTrips)
{
    const JournalEntry entry{42, 0xCAFEF00Du, 9001, 17};
    auto decoded =
        DurableStateStore::decodeEntry(DurableStateStore::encodeEntry(entry));
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_EQ(decoded.value().epoch, entry.epoch);
    EXPECT_EQ(decoded.value().eventCrc, entry.eventCrc);
    EXPECT_EQ(decoded.value().traceBytes, entry.traceBytes);
    EXPECT_EQ(decoded.value().traceSeq, entry.traceSeq);
}

TEST(DurabilityCodec, JournalEntryRejectsEpochZeroAndShortPayloads)
{
    const std::string good =
        DurableStateStore::encodeEntry(JournalEntry{0, 1, 2, 3});
    auto zero = DurableStateStore::decodeEntry(good);
    ASSERT_FALSE(zero.ok());
    EXPECT_EQ(zero.status().kind(), ErrorKind::SemanticError);

    const std::string truncated =
        DurableStateStore::encodeEntry(JournalEntry{1, 1, 2, 3})
            .substr(0, 10);
    EXPECT_FALSE(DurableStateStore::decodeEntry(truncated).ok());
}

TEST(DurabilityCodec, SnapshotEnvelopeRoundTrips)
{
    OnlineSnapshotEnvelope env;
    env.completed = true;
    env.traceBytes = 123456;
    env.traceSeq = 789;
    env.state = std::string("opaque state bytes\0with nul", 27);
    auto decoded = decodeSnapshotEnvelope(encodeSnapshotEnvelope(env));
    ASSERT_TRUE(decoded.ok()) << decoded.status().toString();
    EXPECT_TRUE(decoded.value().completed);
    EXPECT_EQ(decoded.value().traceBytes, env.traceBytes);
    EXPECT_EQ(decoded.value().traceSeq, env.traceSeq);
    EXPECT_EQ(decoded.value().state, env.state);
}

TEST(DurabilityCodec, SnapshotEnvelopeRejectsBadFlagAndTruncation)
{
    ByteWriter w;
    w.putU32(2); // completed must be 0 or 1
    w.putU64(0);
    w.putU64(0);
    w.putString("");
    auto badFlag = decodeSnapshotEnvelope(w.bytes());
    ASSERT_FALSE(badFlag.ok());
    EXPECT_EQ(badFlag.status().kind(), ErrorKind::SemanticError);

    const std::string good =
        encodeSnapshotEnvelope(OnlineSnapshotEnvelope{false, 1, 2, "s"});
    EXPECT_FALSE(decodeSnapshotEnvelope(good.substr(0, 8)).ok());
    EXPECT_FALSE(decodeSnapshotEnvelope(good + "x").ok());
}

// --- journal ---------------------------------------------------------

TEST(DurabilityJournal, AppendScanRoundTrip)
{
    const fs::path dir = freshDir();
    const std::string path = (dir / "journal.amjl").string();
    PlainIo ctx;
    auto journal = Journal::create(path, ctx.io);
    ASSERT_TRUE(journal.ok()) << journal.status().toString();
    Journal j = journal.take();
    const std::vector<std::string> payloads{"alpha", "beta",
                                            std::string(1000, 'z')};
    for (const auto &p : payloads)
        ASSERT_TRUE(j.append(p, ctx.io).isOk());

    const JournalScan scan = Journal::scan(path);
    EXPECT_TRUE(scan.usable);
    EXPECT_FALSE(scan.tornTail);
    EXPECT_TRUE(scan.notes.empty());
    ASSERT_EQ(scan.records.size(), payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i)
        EXPECT_EQ(scan.records[i].payload, payloads[i]);
    EXPECT_EQ(scan.validBytes, j.sizeBytes());
}

TEST(DurabilityJournal, MissingFileScansEmptyAndNonUsable)
{
    const fs::path dir = freshDir();
    const JournalScan scan =
        Journal::scan((dir / "no_such.amjl").string());
    EXPECT_FALSE(scan.usable);
    EXPECT_FALSE(scan.tornTail);
    EXPECT_TRUE(scan.records.empty());
    EXPECT_TRUE(scan.notes.empty()); // fresh start, not an anomaly
}

TEST(DurabilityJournal, TornTailIsDetectedAndResumable)
{
    const fs::path dir = freshDir();
    const std::string path = (dir / "journal.amjl").string();
    PlainIo ctx;
    {
        auto journal = Journal::create(path, ctx.io);
        ASSERT_TRUE(journal.ok());
        Journal j = journal.take();
        ASSERT_TRUE(j.append("first", ctx.io).isOk());
        ASSERT_TRUE(j.append("second", ctx.io).isOk());
    }
    // A crash mid-append: a record header claiming 100 payload bytes
    // with only a handful present.
    const std::string intact = readBytes(path);
    ByteWriter torn;
    torn.putU32(100);
    torn.putU32(0);
    writeBytes(path, intact + torn.bytes() + "shortfall");

    const JournalScan scan = Journal::scan(path);
    EXPECT_TRUE(scan.usable);
    EXPECT_TRUE(scan.tornTail);
    EXPECT_FALSE(scan.notes.empty());
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.validBytes, intact.size());

    // Resume truncates the tail; appends continue from the prefix.
    auto resumed = Journal::openResume(path, scan.validBytes, ctx.io);
    ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
    Journal j = resumed.take();
    ASSERT_TRUE(j.append("third", ctx.io).isOk());
    const JournalScan rescanned = Journal::scan(path);
    EXPECT_FALSE(rescanned.tornTail);
    ASSERT_EQ(rescanned.records.size(), 3u);
    EXPECT_EQ(rescanned.records[2].payload, "third");
}

TEST(DurabilityJournal, BitFlipEndsTheValidPrefix)
{
    const fs::path dir = freshDir();
    const std::string path = (dir / "journal.amjl").string();
    PlainIo ctx;
    {
        auto journal = Journal::create(path, ctx.io);
        ASSERT_TRUE(journal.ok());
        Journal j = journal.take();
        ASSERT_TRUE(j.append("stays-valid", ctx.io).isOk());
        ASSERT_TRUE(j.append("gets-corrupted", ctx.io).isOk());
    }
    std::string bytes = readBytes(path);
    bytes[bytes.size() - 3] =
        static_cast<char>(bytes[bytes.size() - 3] ^ 0x40);
    writeBytes(path, bytes);

    const JournalScan scan = Journal::scan(path);
    EXPECT_TRUE(scan.usable);
    EXPECT_TRUE(scan.tornTail);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].payload, "stays-valid");
}

TEST(DurabilityJournal, BadHeaderMeansNonUsableWithNotes)
{
    const fs::path dir = freshDir();
    const std::string path = (dir / "journal.amjl").string();

    writeBytes(path, "");
    EXPECT_FALSE(Journal::scan(path).usable);
    EXPECT_FALSE(Journal::scan(path).notes.empty());

    ByteWriter badMagic;
    badMagic.putU32(0x4C4E524Au); // "JRNL"
    badMagic.putU32(Journal::kVersion);
    writeBytes(path, badMagic.bytes());
    EXPECT_FALSE(Journal::scan(path).usable);

    ByteWriter skew;
    skew.putU32(0x4C4A4D41u); // "AMJL"
    skew.putU32(Journal::kVersion + 41);
    writeBytes(path, skew.bytes());
    EXPECT_FALSE(Journal::scan(path).usable);
}

TEST(DurabilityJournal, ResetTruncatesBackToABareHeader)
{
    const fs::path dir = freshDir();
    const std::string path = (dir / "journal.amjl").string();
    PlainIo ctx;
    auto journal = Journal::create(path, ctx.io);
    ASSERT_TRUE(journal.ok());
    Journal j = journal.take();
    ASSERT_TRUE(j.append("soon redundant", ctx.io).isOk());
    ASSERT_TRUE(j.reset(ctx.io).isOk());
    EXPECT_EQ(j.sizeBytes(), Journal::kHeaderBytes);

    const JournalScan scan = Journal::scan(path);
    EXPECT_TRUE(scan.usable);
    EXPECT_TRUE(scan.records.empty());
    EXPECT_FALSE(scan.tornTail);
}

// --- snapshots -------------------------------------------------------

TEST(DurabilitySnapshot, WriteLoadRoundTrip)
{
    const fs::path dir = freshDir();
    PlainIo ctx;
    SnapshotStore store(dir.string(), 2);
    const std::string payload(4096, '\x5a');
    ASSERT_TRUE(store.write(8, payload, ctx.io).isOk());
    EXPECT_TRUE(fs::exists(store.pathFor(8)));

    const SnapshotLoad load = store.loadLatest();
    ASSERT_TRUE(load.snapshot.has_value());
    EXPECT_EQ(load.snapshot->epoch, 8u);
    EXPECT_EQ(load.snapshot->payload, payload);
    EXPECT_TRUE(load.rejected.empty());
}

TEST(DurabilitySnapshot, PrunesBeyondTheKeepCountAndStaleTmp)
{
    const fs::path dir = freshDir();
    PlainIo ctx;
    SnapshotStore store(dir.string(), 2);
    writeBytes(dir / "snapshot-00000099.amss.tmp", "crash residue");
    ASSERT_TRUE(store.write(4, "gen four", ctx.io).isOk());
    ASSERT_TRUE(store.write(8, "gen eight", ctx.io).isOk());
    ASSERT_TRUE(store.write(12, "gen twelve", ctx.io).isOk());

    EXPECT_FALSE(fs::exists(store.pathFor(4)));
    EXPECT_TRUE(fs::exists(store.pathFor(8)));
    EXPECT_TRUE(fs::exists(store.pathFor(12)));
    EXPECT_FALSE(fs::exists(dir / "snapshot-00000099.amss.tmp"));
    const SnapshotLoad load = store.loadLatest();
    ASSERT_TRUE(load.snapshot.has_value());
    EXPECT_EQ(load.snapshot->epoch, 12u);
}

TEST(DurabilitySnapshot, CorruptNewestFallsBackToThePreviousGeneration)
{
    const fs::path dir = freshDir();
    PlainIo ctx;
    SnapshotStore store(dir.string(), 2);
    ASSERT_TRUE(store.write(4, "good older state", ctx.io).isOk());
    ASSERT_TRUE(store.write(8, "rotten newer state", ctx.io).isOk());

    std::string bytes = readBytes(store.pathFor(8));
    bytes[bytes.size() - 1] =
        static_cast<char>(bytes[bytes.size() - 1] ^ 0x01);
    writeBytes(store.pathFor(8), bytes);

    const SnapshotLoad load = store.loadLatest();
    ASSERT_TRUE(load.snapshot.has_value());
    EXPECT_EQ(load.snapshot->epoch, 4u);
    EXPECT_EQ(load.snapshot->payload, "good older state");
    ASSERT_EQ(load.rejected.size(), 1u);
    EXPECT_NE(load.rejected[0].find("snapshot-00000008"),
              std::string::npos);
}

// --- IO fault injection ----------------------------------------------

TEST(DurabilityIoFaults, RealizationIsAPureFunctionOfTheSeed)
{
    IoFaultOptions opts;
    opts.enabled = true;
    opts.failureRate = 0.4;
    const IoFaultInjector a(opts);
    const IoFaultInjector b(opts);
    int faults = 0;
    for (std::uint64_t op = 0; op < 64; ++op) {
        for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
            EXPECT_EQ(a.injectFailure(op, attempt),
                      b.injectFailure(op, attempt));
            EXPECT_EQ(a.backoffUnits(op, attempt),
                      b.backoffUnits(op, attempt));
            faults += a.injectFailure(op, attempt) ? 1 : 0;
        }
    }
    EXPECT_GT(faults, 0);

    IoFaultOptions reseeded = opts;
    reseeded.seed ^= 0x9E3779B97F4A7C15ull;
    const IoFaultInjector c(reseeded);
    bool differs = false;
    for (std::uint64_t op = 0; op < 64 && !differs; ++op)
        differs = a.injectFailure(op, 0) != c.injectFailure(op, 0);
    EXPECT_TRUE(differs);
}

TEST(DurabilityIoFaults, DisabledOrZeroRateNeverFails)
{
    IoFaultOptions off;
    const IoFaultInjector disabled(off);
    IoFaultOptions zero;
    zero.enabled = true;
    zero.failureRate = 0.0;
    const IoFaultInjector zeroRate(zero);
    for (std::uint64_t op = 0; op < 32; ++op) {
        EXPECT_FALSE(disabled.injectFailure(op, 0));
        EXPECT_FALSE(zeroRate.injectFailure(op, 0));
    }
}

TEST(DurabilityIoFaults, BackoffIsExponentialWithBoundedJitter)
{
    IoFaultOptions opts;
    opts.enabled = true;
    opts.failureRate = 0.5;
    const IoFaultInjector injector(opts);
    for (std::uint64_t attempt = 0; attempt < 6; ++attempt) {
        const std::uint64_t base = 1ull << attempt;
        for (std::uint64_t op = 0; op < 16; ++op) {
            const std::uint64_t units = injector.backoffUnits(op, attempt);
            EXPECT_GE(units, base);
            EXPECT_LT(units, 2 * base);
        }
    }
}

TEST(DurabilityIoFaults, OptionValidationRejectsBadKnobs)
{
    IoFaultOptions rate;
    rate.enabled = true;
    rate.failureRate = 1.0; // must stay below certain failure
    EXPECT_EQ(validateIoFaultOptions(rate).kind(),
              ErrorKind::DomainError);
    IoFaultOptions retries;
    retries.maxRetries = 0;
    EXPECT_EQ(validateIoFaultOptions(retries).kind(),
              ErrorKind::DomainError);
}

// --- DurableStateStore protocol --------------------------------------

DurabilityOptions
storeOptions(const fs::path &dir, int snapshotEvery)
{
    DurabilityOptions opts;
    opts.stateDir = dir.string();
    opts.snapshotEvery = snapshotEvery;
    return opts;
}

/** Commit epochs 1..@p epochs with synthetic digests and payloads. */
void
commitEpochs(DurableStateStore &store, int epochs)
{
    for (int e = 1; e <= epochs; ++e) {
        const JournalEntry entry{
            static_cast<std::uint64_t>(e),
            crc32("state " + std::to_string(e)),
            static_cast<std::uint64_t>(100 * e),
            static_cast<std::uint64_t>(e)};
        ASSERT_TRUE(store
                        .commitEpoch(entry,
                                     [e] {
                                         return "payload for epoch " +
                                                std::to_string(e);
                                     })
                        .isOk())
            << "epoch " << e;
    }
}

TEST(DurableStore, RejectsInvalidOptions)
{
    EXPECT_FALSE(DurableStateStore::open(DurabilityOptions{}).ok());
    DurabilityOptions opts = storeOptions(freshDir(), -1);
    auto bad = DurableStateStore::open(opts);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().kind(), ErrorKind::DomainError);
}

TEST(DurableStore, CommitRecoverRoundTripOnTheSnapshotCadence)
{
    const fs::path dir = freshDir();
    auto opened = DurableStateStore::open(storeOptions(dir, 3));
    ASSERT_TRUE(opened.ok()) << opened.status().toString();
    DurableStateStore store = opened.take();
    ASSERT_TRUE(store.beginFresh().isOk());
    commitEpochs(store, 7); // snapshots at 3 and 6; 7 journaled

    const RecoveredState rec = store.recover();
    EXPECT_TRUE(rec.hasSnapshot);
    EXPECT_EQ(rec.snapshotEpoch, 6u);
    EXPECT_EQ(rec.snapshotPayload, "payload for epoch 6");
    ASSERT_EQ(rec.entries.size(), 1u);
    EXPECT_EQ(rec.entries[0].epoch, 7u);
    EXPECT_EQ(rec.entries[0].traceBytes, 700u);
    EXPECT_EQ(rec.frontierEpoch(), 7u);
    EXPECT_TRUE(rec.journalUsable);
    EXPECT_FALSE(rec.tornTail);
    EXPECT_EQ(store.counters().journalAppends, 7u);
    EXPECT_EQ(store.counters().snapshotsWritten, 2u);
}

TEST(DurableStore, BeginFreshDiscardsOwnedArtifactsOnly)
{
    const fs::path dir = freshDir();
    writeBytes(dir / "unrelated.txt", "not ours");
    auto opened = DurableStateStore::open(storeOptions(dir, 2));
    ASSERT_TRUE(opened.ok());
    DurableStateStore store = opened.take();
    ASSERT_TRUE(store.beginFresh().isOk());
    commitEpochs(store, 4);
    ASSERT_TRUE(store.recover().hasSnapshot);

    ASSERT_TRUE(store.beginFresh().isOk());
    const RecoveredState rec = store.recover();
    EXPECT_FALSE(rec.hasSnapshot);
    EXPECT_TRUE(rec.entries.empty());
    EXPECT_TRUE(fs::exists(dir / "unrelated.txt"));
}

TEST(DurableStore, RecoverSkipsStaleRecordsAfterASnapshotCrash)
{
    // Crash window between snapshot.write and journal.reset: the
    // journal still holds epochs at or before the snapshot.
    const fs::path dir = freshDir();
    PlainIo ctx;
    SnapshotStore snapshots(dir.string(), 2);
    ASSERT_TRUE(snapshots
                    .write(4,
                           encodeSnapshotEnvelope(
                               OnlineSnapshotEnvelope{false, 0, 0, "s4"}),
                           ctx.io)
                    .isOk());
    auto journal =
        Journal::create((dir / "journal.amjl").string(), ctx.io);
    ASSERT_TRUE(journal.ok());
    Journal j = journal.take();
    for (std::uint64_t e : {3u, 4u, 5u})
        ASSERT_TRUE(j.append(DurableStateStore::encodeEntry(
                                 JournalEntry{e, 0, 0, 0}),
                             ctx.io)
                        .isOk());

    auto opened = DurableStateStore::open(storeOptions(dir, 4));
    ASSERT_TRUE(opened.ok());
    const RecoveredState rec = opened.value().recover();
    EXPECT_EQ(rec.snapshotEpoch, 4u);
    ASSERT_EQ(rec.entries.size(), 1u);
    EXPECT_EQ(rec.entries[0].epoch, 5u);
    EXPECT_FALSE(rec.tornTail);
    const bool noted = std::any_of(
        rec.notes.begin(), rec.notes.end(), [](const std::string &n) {
            return n.find("skipped records") != std::string::npos;
        });
    EXPECT_TRUE(noted);
}

TEST(DurableStore, ContiguityBreakEndsTheUsablePrefix)
{
    const fs::path dir = freshDir();
    PlainIo ctx;
    auto journal =
        Journal::create((dir / "journal.amjl").string(), ctx.io);
    ASSERT_TRUE(journal.ok());
    Journal j = journal.take();
    for (std::uint64_t e : {1u, 2u, 4u, 5u}) // gap at 3
        ASSERT_TRUE(j.append(DurableStateStore::encodeEntry(
                                 JournalEntry{e, 0, 0, 0}),
                             ctx.io)
                        .isOk());

    auto opened = DurableStateStore::open(storeOptions(dir, 8));
    ASSERT_TRUE(opened.ok());
    const RecoveredState rec = opened.value().recover();
    ASSERT_EQ(rec.entries.size(), 2u);
    EXPECT_EQ(rec.entries.back().epoch, 2u);
    EXPECT_TRUE(rec.tornTail);
    const bool noted = std::any_of(
        rec.notes.begin(), rec.notes.end(), [](const std::string &n) {
            return n.find("breaks contiguity") != std::string::npos;
        });
    EXPECT_TRUE(noted);

    // beginResume truncates the journal at the break; a rescan after
    // resume sees only the contiguous prefix.
    DurableStateStore store = opened.take();
    ASSERT_TRUE(store.beginResume(rec).isOk());
    const JournalScan scan =
        Journal::scan((dir / "journal.amjl").string());
    EXPECT_EQ(scan.records.size(), 2u);
}

TEST(DurableStore, TransientFaultsAreRetriedToSuccess)
{
    const fs::path dir = freshDir();
    DurabilityOptions opts = storeOptions(dir, 2);
    opts.ioFaults.enabled = true;
    opts.ioFaults.failureRate = 0.3;
    opts.ioFaults.maxRetries = 8;
    auto opened = DurableStateStore::open(opts);
    ASSERT_TRUE(opened.ok());
    DurableStateStore store = opened.take();
    ASSERT_TRUE(store.beginFresh().isOk());
    commitEpochs(store, 8);

    EXPECT_GT(store.counters().injectedFaults, 0u);
    EXPECT_GE(store.counters().ioRetries,
              store.counters().injectedFaults);
    EXPECT_GT(store.counters().backoffUnits, 0u);
    // Same data durable despite the faults.
    const RecoveredState rec = store.recover();
    EXPECT_EQ(rec.frontierEpoch(), 8u);
}

TEST(DurableStore, ExhaustedRetriesSurfaceAnIoError)
{
    const fs::path dir = freshDir();
    DurabilityOptions opts = storeOptions(dir, 2);
    opts.ioFaults.enabled = true;
    opts.ioFaults.failureRate = 0.999999;
    opts.ioFaults.maxRetries = 2;
    auto opened = DurableStateStore::open(opts);
    ASSERT_TRUE(opened.ok());
    DurableStateStore store = opened.take();
    const Status st = store.beginFresh();
    ASSERT_FALSE(st.isOk());
    EXPECT_EQ(st.kind(), ErrorKind::IoError);
}

// --- corruption corpus -----------------------------------------------

fs::path
corpusDir()
{
    return fs::path(AMDAHL_TEST_DATA_DIR) / "malformed" / "durability";
}

std::vector<fs::path>
corpusFiles(const std::string &extension)
{
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(corpusDir()))
        if (entry.path().extension() == extension)
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

TEST(DurabilityCorpus, CorpusIsPresent)
{
    ASSERT_TRUE(fs::exists(corpusDir()))
        << "missing corpus dir " << corpusDir();
    EXPECT_GE(corpusFiles(".amjl").size(), 6u);
    EXPECT_GE(corpusFiles(".amss").size(), 5u);
}

TEST(DurabilityCorpus, EveryMalformedJournalIsDetectedOnRecovery)
{
    for (const auto &path : corpusFiles(".amjl")) {
        SCOPED_TRACE(path.filename().string());
        const fs::path dir = freshDir() / path.stem();
        fs::create_directories(dir);
        fs::copy_file(path, dir / "journal.amjl");

        auto opened = DurableStateStore::open(storeOptions(dir, 8));
        ASSERT_TRUE(opened.ok());
        const RecoveredState rec = opened.value().recover();
        // Detected: either the file is unusable, or the corruption
        // ended the valid prefix — and in every case a note says why.
        EXPECT_TRUE(!rec.journalUsable || rec.tornTail);
        EXPECT_FALSE(rec.notes.empty());
        // Never applied: nothing corrupt ever reaches entries.
        for (const JournalEntry &entry : rec.entries)
            EXPECT_GT(entry.epoch, 0u);
        // And the store still resumes — recovery is never a dead end.
        DurableStateStore store = opened.take();
        EXPECT_TRUE(store.beginResume(rec).isOk());
    }
}

TEST(DurabilityCorpus, EveryMalformedSnapshotIsRejectedByDecode)
{
    for (const auto &path : corpusFiles(".amss")) {
        SCOPED_TRACE(path.filename().string());
        auto decoded = SnapshotStore::decodeFile(path.string());
        ASSERT_FALSE(decoded.ok())
            << "malformed snapshot accepted: " << path;
        EXPECT_FALSE(decoded.status().message().empty());
    }
}

TEST(DurabilityCorpus, MalformedSnapshotInPlaceFallsBackToLastGood)
{
    PlainIo ctx;
    for (const auto &path : corpusFiles(".amss")) {
        SCOPED_TRACE(path.filename().string());
        const fs::path dir = freshDir() / path.stem();
        fs::create_directories(dir);
        SnapshotStore store(dir.string(), 3);
        ASSERT_TRUE(store.write(2, "last good", ctx.io).isOk());
        // The corrupt file masquerades as a newer generation.
        fs::copy_file(path, dir / "snapshot-00000009.amss");

        const SnapshotLoad load = store.loadLatest();
        ASSERT_TRUE(load.snapshot.has_value());
        EXPECT_EQ(load.snapshot->epoch, 2u);
        EXPECT_EQ(load.snapshot->payload, "last good");
        EXPECT_FALSE(load.rejected.empty());
    }
}

} // namespace
} // namespace amdahl::durability
