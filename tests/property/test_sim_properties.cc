/**
 * @file
 * Property sweeps of the execution simulator across the full Table I
 * workload library.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "profiling/karp_flatt.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/task_sim.hh"
#include "sim/workload_library.hh"
#include "solver/linear_model.hh"

namespace amdahl::sim {
namespace {

class WorkloadProperty : public ::testing::TestWithParam<int>
{
  protected:
    const WorkloadSpec &
    workload() const
    {
        return workloadLibrary()[static_cast<std::size_t>(GetParam())];
    }
};

TEST_P(WorkloadProperty, TimesArePositiveAndFinite)
{
    TaskSimulator sim;
    const auto &w = workload();
    for (int x : {1, 2, 8, 24}) {
        const double t = sim.executionSeconds(w, w.datasetGB, x);
        EXPECT_GT(t, 0.0);
        EXPECT_TRUE(std::isfinite(t));
    }
}

TEST_P(WorkloadProperty, SpeedupNeverExceedsCoreCount)
{
    TaskSimulator sim;
    const auto &w = workload();
    for (int x : {2, 4, 8, 16, 24})
        EXPECT_LE(sim.speedup(w, w.datasetGB, x), x + 1e-9);
}

TEST_P(WorkloadProperty, MoreCoresNeverHurtMuch)
{
    // Clean workloads never degrade with more cores. Communication-
    // heavy ones (dedup, graph analytics) legitimately slow past their
    // sweet spot — the paper's "adding processors increases overheads"
    // pathology — but even they stay within a bounded penalty.
    TaskSimulator sim;
    const auto &w = workload();
    const double slack = w.commSecondsPerWorker > 0.0 ? 1.50 : 1.10;
    double best = sim.executionSeconds(w, w.datasetGB, 1);
    for (int x : {2, 4, 8, 16, 24}) {
        const double t = sim.executionSeconds(w, w.datasetGB, x);
        EXPECT_LT(t, best * slack) << x << " cores";
        best = std::min(best, t);
    }
}

TEST_P(WorkloadProperty, KarpFlattEstimateIsPlausible)
{
    const profiling::Profiler profiler((TaskSimulator()));
    const auto &w = workload();
    const auto profile = profiler.profile(w, {w.datasetGB});
    const auto est = profiling::estimateFraction(profile, w.datasetGB);
    EXPECT_GT(est.expected, 0.3) << w.name;
    EXPECT_LE(est.expected, 1.0) << w.name;
    // Measured fraction never exceeds the structural fraction by more
    // than estimation noise: overheads only reduce parallelism.
    EXPECT_LT(est.expected,
              w.structuralParallelFraction() + 0.05)
        << w.name;
}

TEST_P(WorkloadProperty, ExecutionTimeIsLinearInDatasetSize)
{
    // Figure 4's premise, workload by workload (all Table I entries
    // use linear scaling; quadratic models exist for QR-style codes).
    const auto &w = workload();
    TaskSimulator sim;
    // Tiny datasets (kmeans's 11 tasks) quantize multi-core makespans
    // into steps, and bandwidth-bound workloads (canneal) go
    // super-linear once the working set spills from cache; both are
    // only linear at one core — the paper notes exactly these as the
    // cases where linear models fall short.
    const int blocks =
        static_cast<int>(std::ceil(w.datasetGB / w.blockSizeGB));
    const bool tiny = w.suite == Suite::Spark && blocks < 100;
    const bool bandwidth_bound = w.memBandwidthPerCoreGBps > 0.0;
    const int cores = (tiny || bandwidth_bound) ? 1 : 8;
    std::vector<double> sizes, times;
    for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
        sizes.push_back(frac * w.datasetGB);
        times.push_back(
            sim.executionSeconds(w, frac * w.datasetGB, cores));
    }
    const auto model = solver::fitLinear(sizes, times);
    EXPECT_GT(model.r2, 0.98) << w.name;
}

TEST_P(WorkloadProperty, SamplingPlanSupportsPredictorFit)
{
    const auto &w = workload();
    const auto plan = profiling::planSamples(w);
    EXPECT_GE(plan.sampleSizesGB.size(), 2u) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, WorkloadProperty, ::testing::Range(0, 22),
    [](const ::testing::TestParamInfo<int> &info) {
        return workloadLibrary()[static_cast<std::size_t>(info.param)]
            .name;
    });

} // namespace
} // namespace amdahl::sim
