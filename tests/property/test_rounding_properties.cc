/**
 * @file
 * Property sweeps of Hamilton rounding over randomized fractional
 * allocations.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/random.hh"
#include "core/rounding.hh"

namespace amdahl::core {
namespace {

class HamiltonProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(HamiltonProperty, InvariantsOnRandomVectors)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 50; ++trial) {
        const int capacity = static_cast<int>(rng.uniformInt(1, 48));
        const int jobs = static_cast<int>(rng.uniformInt(1, 20));

        // Random fractional split summing exactly to the capacity.
        std::vector<double> weights(static_cast<std::size_t>(jobs));
        double total = 0.0;
        for (auto &v : weights) {
            v = rng.uniform(0.0, 1.0) + 1e-9;
            total += v;
        }
        std::vector<double> frac(weights.size());
        for (std::size_t k = 0; k < weights.size(); ++k)
            frac[k] = capacity * weights[k] / total;

        const auto rounded = hamiltonRound(frac, capacity);

        // (1) Exact capacity preservation.
        EXPECT_EQ(std::accumulate(rounded.begin(), rounded.end(), 0),
                  capacity);
        // (2) Every entry in {floor, floor+1}.
        for (std::size_t k = 0; k < frac.size(); ++k) {
            const int lo = static_cast<int>(std::floor(frac[k]));
            EXPECT_GE(rounded[k], lo);
            EXPECT_LE(rounded[k], lo + 1);
        }
    }
}

TEST_P(HamiltonProperty, MonotoneInFractionalShares)
{
    // A job with a strictly larger fractional share never receives
    // fewer cores after rounding (within the same server).
    Rng rng(GetParam() ^ 0xabcdULL);
    for (int trial = 0; trial < 50; ++trial) {
        const int capacity = static_cast<int>(rng.uniformInt(2, 24));
        const int jobs = static_cast<int>(rng.uniformInt(2, 8));
        std::vector<double> frac(static_cast<std::size_t>(jobs));
        double total = 0.0;
        for (auto &v : frac) {
            v = rng.uniform(0.0, 1.0) + 1e-9;
            total += v;
        }
        for (auto &v : frac)
            v *= capacity / total;
        const auto rounded = hamiltonRound(frac, capacity);
        for (std::size_t a = 0; a < frac.size(); ++a) {
            for (std::size_t b = 0; b < frac.size(); ++b) {
                if (frac[a] > frac[b] + 1.0) {
                    EXPECT_GE(rounded[a], rounded[b]);
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HamiltonProperty,
                         ::testing::Values(101, 202, 303, 404, 505));

} // namespace
} // namespace amdahl::core
