/**
 * @file
 * Cross-validation of the analytical model against the event-driven
 * simulator, across the full workload library.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"

#include "sim/analytical.hh"
#include "sim/task_sim.hh"
#include "sim/workload_library.hh"

namespace amdahl::sim {
namespace {

class AnalyticalCross : public ::testing::TestWithParam<int>
{
  protected:
    const WorkloadSpec &
    workload() const
    {
        return workloadLibrary()[static_cast<std::size_t>(GetParam())];
    }
};

TEST_P(AnalyticalCross, TimesTrackTheEventSimulator)
{
    // The analytical model ignores straggler skew and exact wave
    // packing, so allow 10% — the usual fidelity of a first-order
    // model against a detailed one.
    const TaskSimulator detailed;
    const AnalyticalModel fast;
    const auto &w = workload();
    for (int x : {1, 2, 4, 8, 16, 24}) {
        const double t_sim =
            detailed.executionSeconds(w, w.datasetGB, x);
        const double t_model =
            fast.executionSeconds(w, w.datasetGB, x);
        EXPECT_NEAR(t_model, t_sim, 0.10 * t_sim)
            << w.name << " at " << x << " cores";
    }
}

TEST_P(AnalyticalCross, SpeedupsTrackTheEventSimulator)
{
    const TaskSimulator detailed;
    const AnalyticalModel fast;
    const auto &w = workload();
    for (int x : {4, 12, 24}) {
        const double s_sim = detailed.speedup(w, w.datasetGB, x);
        const double s_model = fast.speedup(w, w.datasetGB, x);
        EXPECT_NEAR(s_model, s_sim, 0.12 * s_sim)
            << w.name << " at " << x << " cores";
    }
}

TEST_P(AnalyticalCross, MonotoneInCores)
{
    const AnalyticalModel fast;
    const auto &w = workload();
    // Communication-heavy workloads legitimately slow past their
    // sweet spot; others must be monotone.
    if (w.commSecondsPerWorker > 0.0)
        GTEST_SKIP() << "comm-bound workloads are not monotone";
    double prev = fast.executionSeconds(w, w.datasetGB, 1);
    for (int x : {2, 4, 8, 16, 24}) {
        const double t = fast.executionSeconds(w, w.datasetGB, x);
        EXPECT_LE(t, prev * 1.001) << x;
        prev = t;
    }
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, AnalyticalCross, ::testing::Range(0, 22),
    [](const ::testing::TestParamInfo<int> &info) {
        return workloadLibrary()[static_cast<std::size_t>(info.param)]
            .name;
    });

TEST(Analytical, ValidatesArguments)
{
    const AnalyticalModel model;
    const auto &w = workloadLibrary().front();
    EXPECT_THROW(model.executionSeconds(w, 0.0, 1), FatalError);
    EXPECT_THROW(model.executionSeconds(w, 1.0, 0), FatalError);
    EXPECT_THROW(model.executionSeconds(w, 1.0, 25), FatalError);
}

TEST(Analytical, QuadraticExtensionWorkloadTracks)
{
    const TaskSimulator detailed;
    const AnalyticalModel fast;
    const auto &qr = findExtensionWorkload("qr");
    for (int x : {1, 8, 24}) {
        const double t_sim =
            detailed.executionSeconds(qr, qr.datasetGB, x);
        const double t_model =
            fast.executionSeconds(qr, qr.datasetGB, x);
        EXPECT_NEAR(t_model, t_sim, 0.10 * t_sim);
    }
}

} // namespace
} // namespace amdahl::sim
