/**
 * @file
 * Property tests of deadline-bounded (anytime) clearing.
 *
 * The contract under test: whenever an anytime deadline fires — even
 * on iteration 1 — the returned state is budget-feasible. Prices are
 * finite and strictly positive, each user's spend equals her budget
 * (bids are renormalized every round), and x = b / p clears each
 * server exactly, so grants never exceed live capacity. And with the
 * deadline disabled, the solve path is bit-identical to one that has
 * never heard of deadlines.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/bidding.hh"

namespace amdahl::core {
namespace {

struct AnytimeCase
{
    std::uint64_t seed;
    int users;
    int servers;
    int iterationBudget;
};

void
PrintTo(const AnytimeCase &c, std::ostream *os)
{
    *os << "seed" << c.seed << "_u" << c.users << "_s" << c.servers
        << "_it" << c.iterationBudget;
}

FisherMarket
randomMarket(std::uint64_t seed, int users, int servers)
{
    Rng rng(seed);
    FisherMarket market(std::vector<double>(
        static_cast<std::size_t>(servers), 16.0));
    for (int i = 0; i < users; ++i) {
        MarketUser user;
        user.name = "u" + std::to_string(i);
        user.budget = rng.uniform(0.5, 4.0);
        const int jobs = static_cast<int>(rng.uniformInt(1, 3));
        for (int k = 0; k < jobs; ++k) {
            user.jobs.push_back(
                {static_cast<std::size_t>(
                     rng.uniformInt(0, servers - 1)),
                 rng.uniform(0.05, 0.999), rng.uniform(0.5, 2.0)});
        }
        market.addUser(std::move(user));
    }
    for (int j = 0; j < servers; ++j) {
        MarketUser anchor;
        anchor.name = "anchor" + std::to_string(j);
        anchor.budget = 1.0;
        anchor.jobs.push_back(
            {static_cast<std::size_t>(j), rng.uniform(0.3, 0.99), 1.0});
        market.addUser(std::move(anchor));
    }
    return market;
}

/** Assert the full feasibility contract on an anytime outcome. */
void
expectBudgetFeasible(const FisherMarket &market,
                     const BiddingResult &result)
{
    ASSERT_EQ(result.prices.size(), market.serverCount());
    for (double p : result.prices) {
        EXPECT_TRUE(std::isfinite(p));
        EXPECT_GT(p, 0.0);
    }
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        double spent = 0.0;
        for (double b : result.bids[i]) {
            EXPECT_TRUE(std::isfinite(b));
            EXPECT_GE(b, 0.0);
            spent += b;
        }
        // Renormalization makes spend *equal* the budget, which is the
        // strongest form of "spend never exceeds budget".
        EXPECT_NEAR(spent, market.user(i).budget,
                    1e-9 * market.user(i).budget);
    }
    for (std::size_t j = 0; j < market.serverCount(); ++j) {
        const double load = result.serverLoad(market, j);
        EXPECT_TRUE(std::isfinite(load));
        EXPECT_LE(load, market.capacity(j) * (1.0 + 1e-9));
    }
}

class AnytimeProperty : public ::testing::TestWithParam<AnytimeCase>
{
};

TEST_P(AnytimeProperty, ExpiredStateIsBudgetFeasible)
{
    const auto &c = GetParam();
    const auto market = randomMarket(c.seed, c.users, c.servers);
    BiddingOptions opts;
    opts.deadline.iterationBudget = c.iterationBudget;
    const auto result = solveAmdahlBidding(market, opts);
    // These markets need far more rounds than the budget allows, so
    // the deadline always fires; the state must still be feasible.
    ASSERT_TRUE(result.deadlineExpired);
    EXPECT_FALSE(result.converged);
    EXPECT_LE(result.iterations, c.iterationBudget);
    expectBudgetFeasible(market, result);
}

TEST_P(AnytimeProperty, DisabledDeadlineIsBitIdentical)
{
    const auto &c = GetParam();
    const auto market = randomMarket(c.seed, c.users, c.servers);
    const auto plain = solveAmdahlBidding(market, {});
    BiddingOptions armed_but_default;
    armed_but_default.deadline = DeadlineOptions{};
    const auto same = solveAmdahlBidding(market, armed_but_default);
    EXPECT_FALSE(plain.deadlineExpired);
    EXPECT_EQ(plain.iterations, same.iterations);
    EXPECT_EQ(plain.prices, same.prices);   // bitwise, not approximate
    EXPECT_EQ(plain.bids, same.bids);
    EXPECT_EQ(plain.allocation, same.allocation);
    EXPECT_EQ(plain.elapsedSeconds, 0.0);   // clock never read
}

TEST_P(AnytimeProperty, GenerousBudgetConvergesUnflagged)
{
    const auto &c = GetParam();
    const auto market = randomMarket(c.seed, c.users, c.servers);
    BiddingOptions opts;
    opts.deadline.iterationBudget = opts.maxIterations;
    const auto result = solveAmdahlBidding(market, opts);
    ASSERT_TRUE(result.converged);
    EXPECT_FALSE(result.deadlineExpired);

    // Converging under an armed-but-unreached deadline matches the
    // deadline-free solve exactly.
    const auto plain = solveAmdahlBidding(market, {});
    EXPECT_EQ(plain.prices, result.prices);
    EXPECT_EQ(plain.bids, result.bids);
}

INSTANTIATE_TEST_SUITE_P(
    RandomMarkets, AnytimeProperty,
    ::testing::Values(AnytimeCase{1, 4, 2, 1},
                      AnytimeCase{2, 8, 3, 1},
                      AnytimeCase{3, 16, 4, 1},
                      AnytimeCase{4, 6, 2, 2},
                      AnytimeCase{5, 12, 5, 3},
                      AnytimeCase{6, 24, 6, 5},
                      AnytimeCase{7, 10, 4, 10},
                      AnytimeCase{8, 32, 8, 1}),
    ::testing::PrintToStringParamName());

TEST(AnytimeDeadline, WallClockDeadlineStillFeasible)
{
    // Wall-clock expiry is machine-dependent, so only the feasibility
    // contract is asserted — whichever way the race goes.
    const auto market = randomMarket(42, 16, 4);
    BiddingOptions opts;
    opts.deadline.wallClockSeconds = 1e-9;
    const auto result = solveAmdahlBidding(market, opts);
    EXPECT_TRUE(result.deadlineExpired || result.converged);
    EXPECT_GE(result.elapsedSeconds, 0.0);
    expectBudgetFeasible(market, result);
}

TEST(AnytimeDeadline, InvalidDeadlinesThrow)
{
    const auto market = randomMarket(7, 4, 2);
    BiddingOptions opts;
    opts.deadline.wallClockSeconds = -1.0;
    EXPECT_THROW(solveAmdahlBidding(market, opts), FatalError);
    opts.deadline.wallClockSeconds =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(solveAmdahlBidding(market, opts), FatalError);
    opts = {};
    opts.deadline.iterationBudget = -3;
    EXPECT_THROW(solveAmdahlBidding(market, opts), FatalError);
}

} // namespace
} // namespace amdahl::core
