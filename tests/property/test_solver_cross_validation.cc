/**
 * @file
 * Cross-validation property sweeps: the three independent optimizers
 * in the repo — the closed-form water-filling solver, the log-barrier
 * interior-point solver, and the proportional-response fixed point —
 * must agree wherever their problems coincide. Any divergence flags a
 * bug in exactly one of them, which is the point of implementing them
 * separately.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "core/amdahl.hh"
#include "core/bidding.hh"
#include "solver/interior_point.hh"
#include "solver/water_filling.hh"

namespace amdahl {
namespace {

using solver::WaterFillItem;

/** The user's money-domain Amdahl objective for the interior point. */
class MoneyObjective : public solver::SeparableConcave
{
  public:
    explicit MoneyObjective(std::vector<WaterFillItem> items)
        : items_(std::move(items))
    {}

    std::size_t size() const override { return items_.size(); }

    double
    value(std::size_t j, double b) const override
    {
        const auto &it = items_[j];
        return it.weight * core::amdahlSpeedup(it.parallelFraction,
                                               b / it.price);
    }

    double
    gradient(std::size_t j, double b) const override
    {
        const auto &it = items_[j];
        return it.weight *
               core::amdahlSpeedupDerivative(it.parallelFraction,
                                             b / it.price) /
               it.price;
    }

    double
    hessian(std::size_t j, double b) const override
    {
        const auto &it = items_[j];
        const double f = it.parallelFraction;
        const double x = b / it.price;
        const double denom = f + (1.0 - f) * x;
        return -2.0 * it.weight * f * (1.0 - f) /
               (denom * denom * denom) / (it.price * it.price);
    }

  private:
    std::vector<WaterFillItem> items_;
};

class SolverCross : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    std::vector<WaterFillItem>
    randomItems(Rng &rng)
    {
        const int m = static_cast<int>(rng.uniformInt(2, 6));
        std::vector<WaterFillItem> items;
        for (int j = 0; j < m; ++j) {
            items.push_back({rng.uniform(0.5, 2.0),
                             rng.uniform(0.4, 0.98),
                             rng.uniform(0.05, 0.5)});
        }
        return items;
    }
};

TEST_P(SolverCross, WaterFillingMatchesInteriorPoint)
{
    Rng rng(GetParam());
    for (int trial = 0; trial < 10; ++trial) {
        const auto items = randomItems(rng);
        const double budget = rng.uniform(0.5, 5.0);

        const auto wf = solver::waterFill(items, budget);
        MoneyObjective objective(items);
        solver::InteriorPointOptions opts;
        opts.tolerance = 1e-10;
        const auto ip =
            solver::maximizeOnSimplex(objective, budget, opts);

        // Compare achieved utilities (allocations may differ slightly
        // near corners; utility is the invariant).
        double u_wf = 0.0, u_ip = 0.0;
        for (std::size_t j = 0; j < items.size(); ++j) {
            u_wf += objective.value(j, wf.spend[j]);
            u_ip += objective.value(j, ip[j]);
        }
        EXPECT_NEAR(u_wf, u_ip, 1e-4 * std::abs(u_wf));
        // And interior spends for interior water-fill coordinates
        // match closely.
        for (std::size_t j = 0; j < items.size(); ++j) {
            if (wf.spend[j] > 0.05 * budget) {
                EXPECT_NEAR(ip[j], wf.spend[j], 0.02 * budget);
            }
        }
    }
}

TEST_P(SolverCross, BiddingEquilibriumMatchesWaterFillDemand)
{
    // At equilibrium prices, each user's PRD allocation equals her
    // closed-form optimal demand — the defining fixed-point property,
    // checked on random two-user markets.
    Rng rng(GetParam() ^ 0x5afeULL);
    for (int trial = 0; trial < 5; ++trial) {
        core::FisherMarket market(
            {rng.uniform(6.0, 24.0), rng.uniform(6.0, 24.0)});
        for (int i = 0; i < 2; ++i) {
            core::MarketUser user;
            user.name = "u" + std::to_string(i);
            user.budget = rng.uniform(0.5, 3.0);
            user.jobs.push_back({0, rng.uniform(0.5, 0.98), 1.0});
            user.jobs.push_back({1, rng.uniform(0.5, 0.98), 1.0});
            market.addUser(std::move(user));
        }
        core::BiddingOptions opts;
        opts.priceTolerance = 1e-10;
        opts.maxIterations = 100000;
        const auto r = core::solveAmdahlBidding(market, opts);
        ASSERT_TRUE(r.converged);

        for (std::size_t i = 0; i < 2; ++i) {
            const auto &user = market.user(i);
            std::vector<WaterFillItem> items;
            for (const auto &job : user.jobs) {
                items.push_back({job.weight, job.parallelFraction,
                                 r.prices[job.server]});
            }
            const auto demand = solver::waterFill(items, user.budget);
            for (std::size_t k = 0; k < user.jobs.size(); ++k) {
                EXPECT_NEAR(r.allocation[i][k], demand.cores[k],
                            1e-3 * (demand.cores[k] + 1.0));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverCross,
                         ::testing::Values(1001, 2002, 3003, 4004,
                                           5005, 6006));

} // namespace
} // namespace amdahl
