/**
 * @file
 * Stress tests: degenerate and extreme markets the mechanism must
 * survive — monopolies, extreme budget ratios, near-serial job mixes,
 * heavily colocated jobs, and large single-server crowds.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "core/bidding.hh"
#include "core/rounding.hh"

namespace amdahl::core {
namespace {

BiddingOptions
tightOptions()
{
    BiddingOptions opts;
    opts.priceTolerance = 1e-8;
    opts.maxIterations = 200000;
    return opts;
}

TEST(MarketStress, ExtremeBudgetRatios)
{
    // A whale with a million times the minnow's budget: both still
    // get valid allocations and the whale dominates proportionally.
    FisherMarket market({24.0});
    market.addUser({"minnow", 1e-3, {{0, 0.9, 1.0}}});
    market.addUser({"whale", 1e3, {{0, 0.9, 1.0}}});
    const auto r = solveAmdahlBidding(market, tightOptions());
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.allocation[0][0] + r.allocation[1][0], 24.0, 1e-6);
    EXPECT_NEAR(r.allocation[1][0] / r.allocation[0][0], 1e6, 1e2);
}

TEST(MarketStress, NearSerialCrowd)
{
    // Everyone nearly serial: allocations exist, and the rounding
    // still exactly covers the server.
    FisherMarket market({24.0});
    for (int i = 0; i < 6; ++i) {
        market.addUser({"u" + std::to_string(i), 1.0,
                        {{0, 0.02 + 0.001 * i, 1.0}}});
    }
    const auto r = solveAmdahlBidding(market, tightOptions());
    ASSERT_TRUE(r.converged);
    const auto rounded = roundOutcome(market, r);
    int total = 0;
    for (const auto &row : rounded)
        total += row[0];
    EXPECT_EQ(total, 24);
}

TEST(MarketStress, SingleServerAllocatesByBudgetNotParallelism)
{
    // With a single server and one job each, users have nowhere to
    // shift budget, so equal budgets mean equal shares *regardless*
    // of parallelism — the entitlement guarantee in its purest form.
    // (A Greedy policy would starve the serial user here; the market
    // never does. Parallelism moves allocations only when users can
    // trade across servers.)
    FisherMarket market({24.0});
    market.addUser({"serial", 1.0, {{0, 0.01, 1.0}}});
    market.addUser({"linear", 1.0, {{0, 0.999, 1.0}}});
    const auto r = solveAmdahlBidding(market, tightOptions());
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.allocation[0][0], 12.0, 1e-6);
    EXPECT_NEAR(r.allocation[1][0], 12.0, 1e-6);
}

TEST(MarketStress, ParallelismMattersOnlyWithTradingRoom)
{
    // The same two jobs plus a second server where both users also
    // run: now the serial user shifts budget to her other job and the
    // parallel user picks up the slack — allocations diverge.
    FisherMarket market({24.0, 24.0});
    market.addUser({"serial", 1.0,
                    {{0, 0.01, 1.0}, {1, 0.95, 1.0}}});
    market.addUser({"linear", 1.0,
                    {{0, 0.999, 1.0}, {1, 0.95, 1.0}}});
    const auto r = solveAmdahlBidding(market, tightOptions());
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.allocation[1][0], r.allocation[0][0] + 1.0);
}

TEST(MarketStress, ManyJobsOfOneUserOnOneServer)
{
    // One user floods a server with 20 jobs while a rival runs one:
    // the flood gains no aggregate advantage (entitlements are per
    // user).
    FisherMarket market({24.0});
    MarketUser flooder{"flood", 1.0, {}};
    for (int k = 0; k < 20; ++k)
        flooder.jobs.push_back({0, 0.9, 1.0});
    market.addUser(std::move(flooder));
    market.addUser({"single", 1.0, {{0, 0.9, 1.0}}});
    const auto r = solveAmdahlBidding(market, tightOptions());
    ASSERT_TRUE(r.converged);
    // The flooder's 20 jobs split her half; they do not crowd out the
    // rival. (Utility normalization makes the split exactly even.)
    EXPECT_NEAR(r.userCores(0), 12.0, 0.5);
    EXPECT_NEAR(r.allocation[1][0], 12.0, 0.5);
}

TEST(MarketStress, LargeSingleServerCrowd)
{
    // 200 users on one 24-core server: fractional cores everywhere,
    // but clearing and rounding hold exactly.
    Rng rng(0xc0de);
    FisherMarket market({24.0});
    for (int i = 0; i < 200; ++i) {
        market.addUser({"u" + std::to_string(i),
                        static_cast<double>(rng.uniformInt(1, 5)),
                        {{0, rng.uniform(0.5, 0.99), 1.0}}});
    }
    const auto r = solveAmdahlBidding(market, tightOptions());
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.serverLoad(market, 0), 24.0, 1e-5);
    const auto rounded = roundOutcome(market, r);
    int total = 0;
    for (const auto &row : rounded)
        total += row[0];
    EXPECT_EQ(total, 24);
}

TEST(MarketStress, WideClusterSparseUsers)
{
    // 40 servers, each with exactly one (different) user: every user
    // is a monopolist; prices settle and each takes her server.
    FisherMarket market(std::vector<double>(40, 12.0));
    for (int j = 0; j < 40; ++j) {
        market.addUser({"u" + std::to_string(j), 1.0,
                        {{static_cast<std::size_t>(j), 0.9, 1.0}}});
    }
    const auto r = solveAmdahlBidding(market, tightOptions());
    ASSERT_TRUE(r.converged);
    for (int j = 0; j < 40; ++j)
        EXPECT_NEAR(r.allocation[static_cast<std::size_t>(j)][0], 12.0,
                    1e-6);
}

TEST(MarketStress, TinyCapacityServer)
{
    // A 1-core server shared by three users still clears; rounding
    // gives the core to exactly one of them.
    FisherMarket market({1.0});
    market.addUser({"a", 1.0, {{0, 0.9, 1.0}}});
    market.addUser({"b", 1.0, {{0, 0.8, 1.0}}});
    market.addUser({"c", 2.0, {{0, 0.7, 1.0}}});
    const auto r = solveAmdahlBidding(market, tightOptions());
    ASSERT_TRUE(r.converged);
    const auto rounded = roundOutcome(market, r);
    int total = 0, winners = 0;
    for (const auto &row : rounded) {
        total += row[0];
        winners += row[0] > 0;
    }
    EXPECT_EQ(total, 1);
    EXPECT_EQ(winners, 1);
}

} // namespace
} // namespace amdahl::core
