/**
 * @file
 * Property tests for the contract layer: every state the Amdahl
 * Bidding mechanism (and the policies built on it) actually produces
 * on randomized instances must satisfy the typed invariant checkers,
 * and hand-built violations must be rejected. This pins the contract
 * from both sides — the checkers are neither too strict (no false
 * alarms on real equilibria) nor vacuous (corrupted states fire).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/greedy.hh"
#include "alloc/proportional_share.hh"
#include "common/invariants.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "core/bidding.hh"
#include "core/rounding.hh"

namespace amdahl::core {
namespace {

/**
 * A random solvable market: 1-5 servers with integral capacities,
 * 2-10 users with 1-3 jobs each, every server guaranteed a bidder.
 */
FisherMarket
randomMarket(Rng &rng)
{
    const auto n = static_cast<std::size_t>(rng.uniformInt(2, 10));
    // m <= n so pinning user i's first job to server i % m covers
    // every server with a bidder (solvability).
    const auto m = static_cast<std::size_t>(rng.uniformInt(
        1, std::min<std::int64_t>(5, static_cast<std::int64_t>(n))));
    std::vector<double> capacities(m);
    for (auto &c : capacities)
        c = static_cast<double>(rng.uniformInt(4, 48));
    FisherMarket market(std::move(capacities));

    for (std::size_t i = 0; i < n; ++i) {
        MarketUser user;
        user.name = "u" + std::to_string(i);
        user.budget = rng.uniform(0.1, 5.0);
        const auto jobs = static_cast<std::size_t>(rng.uniformInt(1, 3));
        for (std::size_t k = 0; k < jobs; ++k) {
            const std::size_t server =
                k == 0 ? i % m
                       : static_cast<std::size_t>(rng.uniformInt(
                             0, static_cast<std::int64_t>(m) - 1));
            user.jobs.push_back(
                {server, rng.uniform(0.05, 0.999),
                 rng.uniform(0.2, 3.0)});
        }
        market.addUser(std::move(user));
    }
    return market;
}

std::vector<double>
budgetsOf(const FisherMarket &market)
{
    std::vector<double> budgets(market.userCount());
    for (std::size_t i = 0; i < market.userCount(); ++i)
        budgets[i] = market.user(i).budget;
    return budgets;
}

std::vector<double>
serverLoads(const FisherMarket &market,
            const std::vector<std::vector<double>> &allocation)
{
    std::vector<double> loads(market.serverCount(), 0.0);
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &jobs = market.user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k)
            loads[jobs[k].server] += allocation[i][k];
    }
    return loads;
}

TEST(InvariantProperty, BiddingStatesSatisfyEveryChecker)
{
    Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 60; ++trial) {
        const auto market = randomMarket(rng);
        BiddingOptions opts;
        opts.priceTolerance = 1e-8;
        opts.maxIterations = 100000;
        opts.schedule = trial % 2 == 0 ? UpdateSchedule::Synchronous
                                       : UpdateSchedule::GaussSeidel;
        if (trial % 3 == 0)
            opts.damping = 0.7;
        const auto r = solveAmdahlBidding(market, opts);
        ASSERT_TRUE(r.converged) << "trial " << trial;

        // The solved state satisfies every contract the hot path
        // asserts under AMDAHL_CHECKED.
        EXPECT_NO_THROW(invariants::CheckMarketState(
            r.prices, r.bids, "property"));
        EXPECT_NO_THROW(invariants::CheckBidBudgets(
            r.bids, budgetsOf(market), 1e-9, "property"));
        EXPECT_NO_THROW(invariants::CheckAllocationFeasible(
            serverLoads(market, r.allocation), market.capacities(),
            1e-6, "property"));
        for (std::size_t i = 0; i < market.userCount(); ++i) {
            for (const auto &job : market.user(i).jobs) {
                EXPECT_NO_THROW(invariants::CheckParallelFraction(
                    job.parallelFraction, "property"));
            }
        }
    }
}

TEST(InvariantProperty, PolicyOutputsPassTheAudit)
{
    // auditAllocation (active under AMDAHL_CHECKED inside the policy)
    // must accept what the policies produce on random instances; here
    // it runs explicitly so unchecked builds cover it too.
    Rng rng(0xFA1F);
    for (int trial = 0; trial < 15; ++trial) {
        const auto market = randomMarket(rng);
        const alloc::AmdahlBiddingPolicy bidding;
        const alloc::GreedyPolicy greedy;
        const alloc::ProportionalShare ps;
        for (const alloc::AllocationPolicy *policy :
             {static_cast<const alloc::AllocationPolicy *>(&bidding),
              static_cast<const alloc::AllocationPolicy *>(&greedy),
              static_cast<const alloc::AllocationPolicy *>(&ps)}) {
            const auto result = policy->allocate(market);
            EXPECT_NO_THROW(alloc::auditAllocation(market, result))
                << result.policyName << " trial " << trial;
        }
    }
}

TEST(InvariantProperty, RoundedOutcomesStayFeasible)
{
    Rng rng(0xBEEF);
    for (int trial = 0; trial < 20; ++trial) {
        const auto market = randomMarket(rng);
        BiddingOptions opts;
        opts.priceTolerance = 1e-8;
        opts.maxIterations = 100000;
        const auto r = solveAmdahlBidding(market, opts);
        ASSERT_TRUE(r.converged);
        const auto cores = roundOutcome(market, r);
        std::vector<std::vector<double>> integral(cores.size());
        for (std::size_t i = 0; i < cores.size(); ++i) {
            integral[i].assign(cores[i].begin(), cores[i].end());
        }
        EXPECT_NO_THROW(invariants::CheckAllocationFeasible(
            serverLoads(market, integral), market.capacities(), 1e-9,
            "property"));
    }
}

TEST(InvariantProperty, HandBuiltViolationsAreRejected)
{
    Rng rng(0xD00D);
    const auto market = randomMarket(rng);
    BiddingOptions opts;
    opts.priceTolerance = 1e-8;
    opts.maxIterations = 100000;
    auto r = solveAmdahlBidding(market, opts);
    ASSERT_TRUE(r.converged);

    // Corrupt one field at a time; the matching checker must fire.
    {
        auto broken = r.prices;
        broken[0] = 0.0;
        EXPECT_THROW(invariants::CheckMarketState(broken, r.bids,
                                                  "property"),
                     PanicError);
        broken[0] = std::numeric_limits<double>::quiet_NaN();
        EXPECT_THROW(invariants::CheckMarketState(broken, r.bids,
                                                  "property"),
                     PanicError);
    }
    {
        auto broken = r.bids;
        broken[0][0] = -1e-3;
        EXPECT_THROW(invariants::CheckMarketState(r.prices, broken,
                                                  "property"),
                     PanicError);
        EXPECT_THROW(invariants::CheckBidBudgets(broken,
                                                 budgetsOf(market),
                                                 1e-9, "property"),
                     PanicError);
    }
    {
        // Steal budget: scale one user's bids down by half.
        auto broken = r.bids;
        for (double &b : broken[0])
            b *= 0.5;
        EXPECT_THROW(invariants::CheckBidBudgets(broken,
                                                 budgetsOf(market),
                                                 1e-9, "property"),
                     PanicError);
    }
    {
        // Over-subscribe a server by doubling one allocation row.
        auto broken = r.allocation;
        for (double &x : broken[0])
            x *= 2.0;
        auto loads = serverLoads(market, broken);
        bool overloaded = false;
        for (std::size_t j = 0; j < loads.size(); ++j)
            overloaded |= loads[j] > market.capacity(j) * (1.0 + 1e-6);
        if (overloaded) {
            EXPECT_THROW(invariants::CheckAllocationFeasible(
                             loads, market.capacities(), 1e-6,
                             "property"),
                         PanicError);
        }
    }
}

} // namespace
} // namespace amdahl::core
