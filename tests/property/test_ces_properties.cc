/**
 * @file
 * Property sweeps of the CES market over randomized instances.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "core/ces_market.hh"

namespace amdahl::core {
namespace {

struct CesCase
{
    std::uint64_t seed;
    int users;
    int servers;
};

void
PrintTo(const CesCase &c, std::ostream *os)
{
    *os << "seed" << c.seed << "_u" << c.users << "_s" << c.servers;
}

CesMarket
randomCesMarket(const CesCase &c)
{
    Rng rng(c.seed);
    CesMarket market(
        std::vector<double>(static_cast<std::size_t>(c.servers), 16.0));
    for (int i = 0; i < c.users; ++i) {
        CesUser user;
        user.name = "u" + std::to_string(i);
        user.budget = rng.uniform(0.5, 4.0);
        user.rho = rng.uniform(0.2, 0.8);
        const int jobs = static_cast<int>(rng.uniformInt(1, 3));
        for (int k = 0; k < jobs; ++k) {
            user.jobs.push_back(
                {static_cast<std::size_t>(
                     rng.uniformInt(0, c.servers - 1)),
                 rng.uniform(0.5, 3.0)});
        }
        market.addUser(std::move(user));
    }
    for (int j = 0; j < c.servers; ++j) {
        CesUser anchor;
        anchor.name = "anchor" + std::to_string(j);
        anchor.budget = 1.0;
        anchor.rho = 0.5;
        anchor.jobs.push_back({static_cast<std::size_t>(j), 1.0});
        market.addUser(std::move(anchor));
    }
    return market;
}

class CesProperty : public ::testing::TestWithParam<CesCase>
{
  protected:
    void
    SetUp() override
    {
        market.emplace(randomCesMarket(GetParam()));
        CesOptions opts;
        opts.priceTolerance = 1e-10;
        result = solveCesMarket(*market, opts);
        ASSERT_TRUE(result.converged);
    }

    std::optional<CesMarket> market;
    CesResult result;
};

TEST_P(CesProperty, MarketClears)
{
    std::vector<double> load(market->serverCount(), 0.0);
    for (std::size_t i = 0; i < market->userCount(); ++i) {
        const auto &jobs = market->user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k)
            load[jobs[k].server] += result.allocation[i][k];
    }
    for (std::size_t j = 0; j < market->serverCount(); ++j)
        EXPECT_NEAR(load[j], market->capacity(j),
                    1e-6 * market->capacity(j));
}

TEST_P(CesProperty, BudgetsExhausted)
{
    for (std::size_t i = 0; i < market->userCount(); ++i) {
        double spent = 0.0;
        for (double b : result.bids[i])
            spent += b;
        EXPECT_NEAR(spent, market->user(i).budget, 1e-9);
    }
}

TEST_P(CesProperty, AllocationsMatchClosedFormDemand)
{
    for (std::size_t i = 0; i < market->userCount(); ++i) {
        const auto &user = market->user(i);
        std::vector<double> weights, prices;
        for (const auto &job : user.jobs) {
            weights.push_back(job.weight);
            prices.push_back(result.prices[job.server]);
        }
        const CesUtility utility(weights, user.rho);
        const auto demand = utility.demand(prices, user.budget);
        for (std::size_t k = 0; k < demand.size(); ++k) {
            EXPECT_NEAR(result.allocation[i][k], demand[k],
                        1e-4 * (demand[k] + 1.0));
        }
    }
}

TEST_P(CesProperty, PositivePrices)
{
    for (double p : result.prices)
        EXPECT_GT(p, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomCesMarkets, CesProperty,
    ::testing::Values(CesCase{11, 2, 2}, CesCase{12, 4, 3},
                      CesCase{13, 6, 2}, CesCase{14, 8, 4},
                      CesCase{15, 3, 5}),
    ::testing::PrintToStringParamName());

} // namespace
} // namespace amdahl::core
