/**
 * @file
 * Property-based tests of the market mechanism over randomized
 * instances (parameterized sweeps).
 *
 * For every generated market, the Amdahl Bidding equilibrium must
 * satisfy: market clearing, budget exhaustion, per-user optimality
 * (verified against the independent water-filling solver), entitlement
 * dominance, Pareto-style no-free-improvement via the KKT conditions,
 * and capacity-preserving rounding.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.hh"
#include "core/amdahl.hh"
#include "core/bidding.hh"
#include "core/rounding.hh"

namespace amdahl::core {
namespace {

struct MarketCase
{
    std::uint64_t seed;
    int users;
    int servers;
    int capacity;
};

void
PrintTo(const MarketCase &c, std::ostream *os)
{
    *os << "seed" << c.seed << "_u" << c.users << "_s" << c.servers
        << "_c" << c.capacity;
}

FisherMarket
randomMarket(const MarketCase &c)
{
    Rng rng(c.seed);
    FisherMarket market(std::vector<double>(
        c.servers, static_cast<double>(c.capacity)));
    for (int i = 0; i < c.users; ++i) {
        MarketUser user;
        user.name = "u" + std::to_string(i);
        user.budget = static_cast<double>(rng.uniformInt(1, 5));
        const int jobs = static_cast<int>(rng.uniformInt(1, 4));
        for (int k = 0; k < jobs; ++k) {
            JobSpec job;
            job.server = static_cast<std::size_t>(
                rng.uniformInt(0, c.servers - 1));
            job.parallelFraction = rng.uniform(0.5, 0.995);
            job.weight = rng.uniform(0.5, 2.0);
            user.jobs.push_back(job);
        }
        market.addUser(std::move(user));
    }
    // Guarantee every server hosts at least one job.
    for (int j = 0; j < c.servers; ++j) {
        MarketUser anchor;
        anchor.name = "anchor" + std::to_string(j);
        anchor.budget = 1.0;
        anchor.jobs.push_back(
            {static_cast<std::size_t>(j), rng.uniform(0.6, 0.99), 1.0});
        market.addUser(std::move(anchor));
    }
    return market;
}

class MarketProperty : public ::testing::TestWithParam<MarketCase>
{
  protected:
    void
    SetUp() override
    {
        market.emplace(randomMarket(GetParam()));
        BiddingOptions opts;
        opts.priceTolerance = 1e-8;
        opts.maxIterations = 50000;
        result = solveAmdahlBidding(*market, opts);
        ASSERT_TRUE(result.converged);
    }

    std::optional<FisherMarket> market;
    BiddingResult result;
};

TEST_P(MarketProperty, MarketClears)
{
    for (std::size_t j = 0; j < market->serverCount(); ++j) {
        EXPECT_NEAR(result.serverLoad(*market, j), market->capacity(j),
                    1e-5 * market->capacity(j));
    }
}

TEST_P(MarketProperty, BudgetsExhausted)
{
    for (std::size_t i = 0; i < market->userCount(); ++i) {
        double spent = 0.0;
        for (double b : result.bids[i])
            spent += b;
        EXPECT_NEAR(spent, market->user(i).budget, 1e-9);
    }
}

TEST_P(MarketProperty, AllocationsOptimalAtPrices)
{
    const auto check = verifyEquilibrium(*market, result);
    EXPECT_LT(check.maxOptimalityGap, 1e-3);
}

TEST_P(MarketProperty, EntitlementDominance)
{
    for (std::size_t i = 0; i < market->userCount(); ++i) {
        const auto u = market->utilityOf(i);
        const auto &jobs = market->user(i).jobs;
        // Each server's entitlement is split across the user's jobs on
        // that server (a user bidding twice on one server is still
        // entitled to one share of it).
        std::vector<double> ent(jobs.size());
        for (std::size_t k = 0; k < ent.size(); ++k) {
            std::size_t colocated = 0;
            for (const auto &other : jobs)
                colocated += other.server == jobs[k].server;
            ent[k] = market->entitledCoresOnServer(i, jobs[k].server) /
                     static_cast<double>(colocated);
        }
        EXPECT_GE(u.value(result.allocation[i]),
                  u.value(ent) - 1e-5);
    }
}

TEST_P(MarketProperty, PricesSumToBudgetIdentity)
{
    // Eq. 6: sum_j C_j p_j == B.
    double lhs = 0.0;
    for (std::size_t j = 0; j < market->serverCount(); ++j)
        lhs += market->capacity(j) * result.prices[j];
    EXPECT_NEAR(lhs, market->totalBudget(),
                1e-9 * market->totalBudget());
}

TEST_P(MarketProperty, KktRatioHoldsForInteriorBids)
{
    // For any two jobs of a user with non-negligible bids:
    // b_j^2 / b_k^2 == (w f s^2 p)_j / (w f s^2 p)_k.
    for (std::size_t i = 0; i < market->userCount(); ++i) {
        const auto &jobs = market->user(i).jobs;
        for (std::size_t a = 0; a < jobs.size(); ++a) {
            for (std::size_t b = a + 1; b < jobs.size(); ++b) {
                const double ba = result.bids[i][a];
                const double bb = result.bids[i][b];
                // Near-corner bids converge to the KKT ratio last;
                // only interior bids are checked tightly.
                if (ba < 1e-2 || bb < 1e-2)
                    continue;
                auto term = [&](std::size_t k) {
                    const double s = amdahlSpeedup(
                        jobs[k].parallelFraction,
                        result.allocation[i][k]);
                    return jobs[k].weight * jobs[k].parallelFraction *
                           s * s * result.prices[jobs[k].server];
                };
                const double lhs = (ba * ba) / (bb * bb);
                const double rhs = term(a) / term(b);
                EXPECT_NEAR(lhs, rhs, 1e-3 * rhs);
            }
        }
    }
}

TEST_P(MarketProperty, RoundingPreservesCapacityAndProximity)
{
    const auto rounded = roundOutcome(*market, result);
    std::vector<int> load(market->serverCount(), 0);
    for (std::size_t i = 0; i < market->userCount(); ++i) {
        const auto &jobs = market->user(i).jobs;
        for (std::size_t k = 0; k < jobs.size(); ++k) {
            load[jobs[k].server] += rounded[i][k];
            EXPECT_LT(std::abs(rounded[i][k] -
                               result.allocation[i][k]),
                      1.0 + 1e-6);
        }
    }
    for (std::size_t j = 0; j < market->serverCount(); ++j) {
        EXPECT_EQ(load[j], static_cast<int>(
                               std::llround(market->capacity(j))));
    }
}

TEST_P(MarketProperty, PositivePrices)
{
    for (double p : result.prices)
        EXPECT_GT(p, 0.0);
}

TEST_P(MarketProperty, ParetoEfficiencySpotCheck)
{
    // The first welfare theorem: no feasible allocation makes every
    // user at least as well off and someone strictly better. (Note
    // the equilibrium does NOT maximize the Eisenberg-Gale objective
    // here — Amdahl utility is not degree-1 homogeneous, so EG gives
    // the *proportional fairness* point instead; see THEORY.md 4a.)
    std::vector<double> equilibrium_utilities(market->userCount());
    for (std::size_t i = 0; i < market->userCount(); ++i) {
        equilibrium_utilities[i] =
            market->utilityOf(i).value(result.allocation[i]);
    }

    Rng rng(GetParam().seed ^ 0xE15EULL);
    for (int trial = 0; trial < 30; ++trial) {
        // Random feasible allocation: random proportions per server,
        // or a small perturbation of the equilibrium (perturbations
        // are the dangerous direction for a near-optimal point).
        JobMatrix candidate(market->userCount());
        for (std::size_t i = 0; i < market->userCount(); ++i)
            candidate[i].assign(market->user(i).jobs.size(), 0.0);
        const bool perturb = trial % 2 == 1;
        for (std::size_t j = 0; j < market->serverCount(); ++j) {
            std::vector<std::pair<std::size_t, std::size_t>> located;
            for (std::size_t i = 0; i < market->userCount(); ++i) {
                const auto &jobs = market->user(i).jobs;
                for (std::size_t k = 0; k < jobs.size(); ++k) {
                    if (jobs[k].server == j)
                        located.emplace_back(i, k);
                }
            }
            std::vector<double> weights(located.size());
            double total = 0.0;
            for (std::size_t k = 0; k < located.size(); ++k) {
                const auto &[i, kk] = located[k];
                weights[k] =
                    perturb ? std::max(1e-6,
                                       result.allocation[i][kk] *
                                           rng.uniform(0.8, 1.2))
                            : rng.uniform(0.01, 1.0);
                total += weights[k];
            }
            for (std::size_t k = 0; k < located.size(); ++k) {
                candidate[located[k].first][located[k].second] =
                    market->capacity(j) * weights[k] / total;
            }
        }

        bool weakly_better_for_all = true;
        bool strictly_better_for_one = false;
        for (std::size_t i = 0; i < market->userCount(); ++i) {
            const double u =
                market->utilityOf(i).value(candidate[i]);
            if (u < equilibrium_utilities[i] - 1e-9)
                weakly_better_for_all = false;
            if (u > equilibrium_utilities[i] + 1e-6)
                strictly_better_for_one = true;
        }
        EXPECT_FALSE(weakly_better_for_all && strictly_better_for_one)
            << "trial " << trial << " Pareto-dominates the equilibrium";
    }
}

INSTANTIATE_TEST_SUITE_P(
    RandomMarkets, MarketProperty,
    ::testing::Values(MarketCase{1, 3, 2, 12}, MarketCase{2, 5, 3, 24},
                      MarketCase{3, 8, 4, 12}, MarketCase{4, 12, 3, 24},
                      MarketCase{5, 2, 2, 8}, MarketCase{6, 20, 5, 24},
                      MarketCase{7, 6, 6, 16}, MarketCase{8, 10, 2, 48},
                      MarketCase{9, 4, 4, 12},
                      MarketCase{10, 16, 8, 24}),
    ::testing::PrintToStringParamName());

} // namespace
} // namespace amdahl::core
