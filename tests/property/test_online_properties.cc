/**
 * @file
 * Property sweeps of the online runtime across policies, loads, and
 * placement rules: conservation laws and bookkeeping invariants that
 * must hold for every configuration.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "alloc/amdahl_bidding_policy.hh"
#include "alloc/greedy.hh"
#include "alloc/lottery.hh"
#include "alloc/proportional_share.hh"
#include "eval/online.hh"

namespace amdahl::eval {
namespace {

using OnlineCase = std::tuple<int /*policy*/, double /*rate*/,
                              int /*placement*/>;

class OnlineProperty : public ::testing::TestWithParam<OnlineCase>
{
  protected:
    OnlineMetrics
    runScenario()
    {
        OnlineOptions opts;
        opts.seed = 777;
        opts.users = 10;
        opts.servers = 5;
        opts.horizonSeconds = 1200.0;
        opts.arrivalsPerServerEpoch = std::get<1>(GetParam());
        opts.placement = static_cast<alloc::PlacementRule>(
            std::get<2>(GetParam()));
        CharacterizationCache cache;
        OnlineSimulator sim(cache, opts);
        switch (std::get<0>(GetParam())) {
          case 0:
            return sim.run(alloc::ProportionalShare(),
                           FractionSource::Measured);
          case 1:
            return sim.run(alloc::AmdahlBiddingPolicy(),
                           FractionSource::Estimated);
          case 2:
            return sim.run(alloc::GreedyPolicy(),
                           FractionSource::Measured);
          default:
            return sim.run(alloc::LotteryPolicy(),
                           FractionSource::Measured);
        }
    }
};

TEST_P(OnlineProperty, ConservationLaws)
{
    const auto m = runScenario();

    // Completed never exceeds arrived; both match the job log.
    EXPECT_LE(m.jobsCompleted, m.jobsArrived);
    EXPECT_EQ(static_cast<int>(m.jobs.size()), m.jobsArrived);
    int done = 0;
    double arrived_work = 0.0, accounted_work = 0.0;
    for (const auto &job : m.jobs) {
        arrived_work += job.totalWork;
        accounted_work += job.totalWork - job.remainingWork;
        done += job.done();
        EXPECT_GE(job.remainingWork, 0.0);
        EXPECT_LE(job.remainingWork, job.totalWork + 1e-9);
        if (job.done()) {
            EXPECT_GE(job.completionSeconds,
                      job.arrivalSeconds - 1e-9);
        }
    }
    EXPECT_EQ(done, m.jobsCompleted);
    // Work accounting: metrics.workCompleted equals the log's sum and
    // never exceeds what arrived.
    EXPECT_NEAR(m.workCompleted, accounted_work,
                1e-6 * (accounted_work + 1.0));
    EXPECT_LE(m.workCompleted, arrived_work + 1e-6);
}

TEST_P(OnlineProperty, HistoriesSpanEveryEpoch)
{
    const auto m = runScenario();
    EXPECT_EQ(m.occupancyHistory.size(), 20u); // 1200 s / 60 s
    EXPECT_EQ(m.speedupHistory.size(), m.occupancyHistory.size());
    for (double occupancy : m.occupancyHistory)
        EXPECT_GE(occupancy, 0.0);
    for (double speedup : m.speedupHistory)
        EXPECT_GE(speedup, 0.0);
}

TEST_P(OnlineProperty, ThroughputCapRespected)
{
    // Work completes at most at the cluster's aggregate measured
    // speedup: never more than cores * horizon single-core seconds.
    const auto m = runScenario();
    const double cap = 5.0 * 24.0 * 1200.0;
    EXPECT_LE(m.workCompleted, cap + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OnlineProperty,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.3, 1.0, 3.0),
                       ::testing::Values(0, 1, 2)));

} // namespace
} // namespace amdahl::eval
