/**
 * @file
 * Property sweeps of the Amdahl/Karp-Flatt math over a parameter grid.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/amdahl.hh"
#include "core/utility.hh"

namespace amdahl::core {
namespace {

class AmdahlProperty
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
  protected:
    double f() const { return std::get<0>(GetParam()); }
    double x() const { return std::get<1>(GetParam()); }
};

TEST_P(AmdahlProperty, SpeedupBounds)
{
    const double s = amdahlSpeedup(f(), x());
    EXPECT_GE(s, 0.0);
    // Never super-linear; sub-core allocations of partly serial work
    // can still reach speedup 1 (s(x) <= max(1, x)).
    EXPECT_LE(s, std::max(1.0, x()) + 1e-12);
    if (f() < 1.0) {
        EXPECT_LE(s, amdahlSpeedupLimit(f()) + 1e-12);
    }
}

TEST_P(AmdahlProperty, KarpFlattRoundTrips)
{
    if (x() <= 1.0)
        GTEST_SKIP() << "Karp-Flatt needs x > 1";
    const double s = amdahlSpeedup(f(), x());
    if (s <= 0.0)
        GTEST_SKIP();
    EXPECT_NEAR(karpFlatt(s, x()), f(), 1e-9);
}

TEST_P(AmdahlProperty, MarginalIsPositiveAndDecreasing)
{
    if (f() == 0.0 && x() == 0.0)
        GTEST_SKIP();
    const double d1 = amdahlSpeedupDerivative(f(), x());
    const double d2 = amdahlSpeedupDerivative(f(), x() + 1.0);
    EXPECT_GE(d1, 0.0);
    EXPECT_GE(d1, d2 - 1e-15);
}

TEST_P(AmdahlProperty, ConcavityMidpointTest)
{
    const double a = x();
    const double b = x() + 7.0;
    const double mid = amdahlSpeedup(f(), 0.5 * (a + b));
    const double chord =
        0.5 * (amdahlSpeedup(f(), a) + amdahlSpeedup(f(), b));
    EXPECT_GE(mid, chord - 1e-12);
}

TEST_P(AmdahlProperty, CoresForSpeedupInverts)
{
    if (f() == 0.0)
        GTEST_SKIP();
    const double s = amdahlSpeedup(f(), x());
    if (s <= 0.0 || s >= amdahlSpeedupLimit(f()))
        GTEST_SKIP();
    EXPECT_NEAR(coresForSpeedup(f(), s), x(), 1e-6 * (x() + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AmdahlProperty,
    ::testing::Combine(
        ::testing::Values(0.0, 0.25, 0.53, 0.68, 0.9, 0.99, 1.0),
        ::testing::Values(0.0, 0.5, 1.0, 2.0, 5.5, 12.0, 24.0, 48.0)));

class UtilityProperty
    : public ::testing::TestWithParam<std::tuple<double, double>>
{
};

TEST_P(UtilityProperty, NormalizationInvariant)
{
    // u(1, 1) == 1 for every (f1, f2) pair regardless of weights.
    const auto [f1, f2] = GetParam();
    const AmdahlUtility u({{f1, 1.7}, {f2, 0.4}});
    EXPECT_NEAR(u.value({1.0, 1.0}), 1.0, 1e-12);
}

TEST_P(UtilityProperty, ScalingWeightsLeavesValueInvariant)
{
    // Utility is scale-free in the weights (Eq. 4 normalizes).
    const auto [f1, f2] = GetParam();
    const AmdahlUtility a({{f1, 1.0}, {f2, 2.0}});
    const AmdahlUtility b({{f1, 10.0}, {f2, 20.0}});
    const std::vector<double> x = {3.0, 7.0};
    EXPECT_NEAR(a.value(x), b.value(x), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UtilityProperty,
    ::testing::Combine(::testing::Values(0.2, 0.6, 0.95),
                       ::testing::Values(0.4, 0.8, 0.99)));

} // namespace
} // namespace amdahl::core
