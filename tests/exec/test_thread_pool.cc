/**
 * @file
 * Unit tests for the execution layer: parallelism configuration and
 * the deterministic thread pool.
 *
 * The pool's contract is stronger than "covers every index": chunk
 * layouts and reduction fold orders must be pure functions of the
 * range and grain, never the thread count, so floating-point results
 * are bit-identical at any setting. The tests here exercise that
 * contract directly (exact `==` on doubles throughout) plus the
 * operational corners: nesting, exception propagation, reuse after
 * failure, and the `exec.tasks` counter.
 */

#include <cmath>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "exec/parallelism.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"

namespace {

using namespace amdahl;

/** Scoped thread-count override; restores the previous setting. */
class ThreadGuard
{
  public:
    explicit ThreadGuard(int n) : previous_(exec::setThreadCount(n)) {}
    ~ThreadGuard() { exec::setThreadCount(previous_); }
    ThreadGuard(const ThreadGuard &) = delete;
    ThreadGuard &operator=(const ThreadGuard &) = delete;

  private:
    int previous_;
};

TEST(Parallelism, ParseThreadCount)
{
    EXPECT_EQ(exec::parseThreadCount("1"), 1);
    EXPECT_EQ(exec::parseThreadCount("8"), 8);
    EXPECT_EQ(exec::parseThreadCount("auto"), exec::hardwareThreads());
    EXPECT_EQ(exec::parseThreadCount("0"), exec::hardwareThreads());
    EXPECT_THROW(exec::parseThreadCount("fast"), FatalError);
    EXPECT_THROW(exec::parseThreadCount("-1"), FatalError);
    EXPECT_THROW(exec::parseThreadCount(""), FatalError);
}

TEST(Parallelism, SetThreadCountReturnsPrevious)
{
    const int original = exec::setThreadCount(3);
    EXPECT_EQ(exec::threadCount(), 3);
    EXPECT_EQ(exec::setThreadCount(original), 3);
    EXPECT_EQ(exec::threadCount(), original);
}

TEST(Parallelism, ZeroSelectsHardware)
{
    ThreadGuard guard(0);
    EXPECT_EQ(exec::threadCount(), exec::hardwareThreads());
}

TEST(ThreadPool, ChunkCountDependsOnlyOnRangeAndGrain)
{
    EXPECT_EQ(exec::ThreadPool::chunkCount(0, 0, 4), 0u);
    EXPECT_EQ(exec::ThreadPool::chunkCount(5, 5, 4), 0u);
    EXPECT_EQ(exec::ThreadPool::chunkCount(0, 1, 4), 1u);
    EXPECT_EQ(exec::ThreadPool::chunkCount(0, 8, 4), 2u);
    EXPECT_EQ(exec::ThreadPool::chunkCount(0, 9, 4), 3u);
    EXPECT_EQ(exec::ThreadPool::chunkCount(3, 9, 2), 3u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (int threads : {1, 2, 8}) {
        ThreadGuard guard(threads);
        constexpr std::size_t n = 1000;
        // Disjoint writes per index: plain ints are safe.
        std::vector<int> visits(n, 0);
        exec::parallelFor(0, n, 7,
                          [&](std::size_t lo, std::size_t hi) {
                              for (std::size_t i = lo; i < hi; ++i)
                                  ++visits[i];
                          });
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(visits[i], 1) << "index " << i << " at "
                                    << threads << " threads";
    }
}

TEST(ThreadPool, ChunkBoundsFollowTheFixedLayout)
{
    ThreadGuard guard(4);
    std::vector<std::pair<std::size_t, std::size_t>> seen(3);
    exec::parallelFor(2, 9, 3, [&](std::size_t lo, std::size_t hi) {
        seen[(lo - 2) / 3] = {lo, hi};
    });
    EXPECT_EQ(seen[0], (std::pair<std::size_t, std::size_t>{2, 5}));
    EXPECT_EQ(seen[1], (std::pair<std::size_t, std::size_t>{5, 8}));
    EXPECT_EQ(seen[2], (std::pair<std::size_t, std::size_t>{8, 9}));
}

TEST(ThreadPool, ReduceSumBitIdenticalAcrossThreadCounts)
{
    // Mixed magnitudes make the sum sensitive to re-association: any
    // change in fold order shows up in the low bits.
    constexpr std::size_t n = 4099;
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) {
        values[i] = (i % 3 == 0 ? 1e12 : 1.0) *
                    std::sin(static_cast<double>(i) * 0.7 + 0.1);
    }
    auto sumAt = [&](int threads) {
        ThreadGuard guard(threads);
        return exec::parallelReduce(
            std::size_t{0}, n, 32, 0.0,
            [&](std::size_t lo, std::size_t hi) {
                double s = 0.0;
                for (std::size_t i = lo; i < hi; ++i)
                    s += values[i];
                return s;
            },
            [](double a, double b) { return a + b; });
    };
    const double reference = sumAt(1);
    for (int threads : {2, 4, 8})
        EXPECT_EQ(sumAt(threads), reference)
            << "non-deterministic fold at " << threads << " threads";
}

TEST(ThreadPool, ReduceFoldOrderIsChunkOrder)
{
    // A non-commutative combine exposes the fold sequence: pairing
    // chunks out of order would produce a different nesting string.
    ThreadGuard guard(4);
    auto nest = [&]() {
        return exec::parallelReduce(
            std::size_t{0}, std::size_t{10}, 2, std::string{},
            [](std::size_t lo, std::size_t) {
                return std::to_string(lo / 2);
            },
            [](const std::string &a, const std::string &b) {
                return "(" + a + b + ")";
            });
    };
    const std::string once = nest();
    EXPECT_EQ(once, "(((01)(23))4)") << "tree shape changed";
    EXPECT_EQ(nest(), once);
}

TEST(ThreadPool, ReduceEmptyRangeReturnsIdentity)
{
    ThreadGuard guard(4);
    const double r = exec::parallelReduce(
        std::size_t{5}, std::size_t{5}, 4, -1.5,
        [](std::size_t, std::size_t) { return 99.0; },
        [](double a, double b) { return a + b; });
    EXPECT_EQ(r, -1.5);
}

TEST(ThreadPool, NestedRegionsRunInline)
{
    ThreadGuard guard(4);
    std::vector<int> counts(16, 0);
    exec::parallelFor(0, 4, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t outer = lo; outer < hi; ++outer) {
            // Must not deadlock the pool or fan out a second time.
            exec::parallelFor(0, 4, 1,
                              [&](std::size_t ilo, std::size_t ihi) {
                                  for (std::size_t j = ilo; j < ihi;
                                       ++j)
                                      ++counts[outer * 4 + j];
                              });
        }
    });
    for (int c : counts)
        EXPECT_EQ(c, 1);
}

TEST(ThreadPool, BodyExceptionRethrownOnSubmitter)
{
    ThreadGuard guard(4);
    EXPECT_THROW(
        exec::parallelFor(0, 100, 1,
                          [&](std::size_t lo, std::size_t) {
                              if (lo == 57)
                                  throw std::runtime_error("boom");
                          }),
        std::runtime_error);

    // The pool must stay usable after a failed region.
    std::vector<int> visits(20, 0);
    exec::parallelFor(0, 20, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            ++visits[i];
    });
    for (int v : visits)
        EXPECT_EQ(v, 1);
}

TEST(ThreadPool, TasksCounterIsThreadCountIndependent)
{
    auto tasksDelta = [&](int threads) {
        ThreadGuard guard(threads);
        const std::uint64_t before =
            obs::metrics().counter("exec.tasks").value();
        exec::parallelFor(0, 100, 7, [](std::size_t, std::size_t) {});
        return obs::metrics().counter("exec.tasks").value() - before;
    };
    const std::uint64_t expected =
        exec::ThreadPool::chunkCount(0, 100, 7);
    EXPECT_EQ(tasksDelta(1), expected);
    EXPECT_EQ(tasksDelta(4), expected);
    // exec.steal, by contrast, is scheduling telemetry and carries no
    // such guarantee — nothing to pin here.
}

} // namespace
