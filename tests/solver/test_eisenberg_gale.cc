/**
 * @file
 * Unit tests for the generic Eisenberg-Gale solver, including
 * cross-validation against Amdahl Bidding on the same markets.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/logging.hh"
#include "core/amdahl.hh"
#include "core/bidding.hh"
#include "solver/eisenberg_gale.hh"

namespace amdahl::solver {
namespace {

/** Build an EgUser from Amdahl jobs (fractions + servers). */
EgUser
amdahlUser(double budget, std::vector<std::size_t> servers,
           std::vector<double> fractions)
{
    EgUser user;
    user.budget = budget;
    user.servers = std::move(servers);
    const auto fracs = std::move(fractions);
    user.utility = [fracs](const std::vector<double> &x) {
        double total = 0.0;
        for (std::size_t k = 0; k < fracs.size(); ++k)
            total += core::amdahlSpeedup(fracs[k], x[k]);
        return total / static_cast<double>(fracs.size());
    };
    user.gradient = [fracs](const std::vector<double> &x) {
        std::vector<double> grad(fracs.size());
        for (std::size_t k = 0; k < fracs.size(); ++k) {
            grad[k] = core::amdahlSpeedupDerivative(fracs[k], x[k]) /
                      static_cast<double>(fracs.size());
        }
        return grad;
    };
    return user;
}

TEST(SimplexProjection, AlreadyFeasibleIsFixed)
{
    const auto p = projectOntoSimplex({3.0, 5.0, 4.0}, 12.0, 0.0);
    EXPECT_NEAR(p[0], 3.0, 1e-12);
    EXPECT_NEAR(p[1], 5.0, 1e-12);
    EXPECT_NEAR(p[2], 4.0, 1e-12);
}

TEST(SimplexProjection, SumAndNonNegativityEnforced)
{
    const auto p = projectOntoSimplex({10.0, -4.0, 1.0}, 6.0, 0.0);
    EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 6.0, 1e-9);
    for (double v : p)
        EXPECT_GE(v, 0.0);
    // The large coordinate keeps the mass.
    EXPECT_GT(p[0], p[1]);
    EXPECT_GT(p[0], p[2]);
}

TEST(SimplexProjection, UniformExcessSubtractsEvenly)
{
    const auto p = projectOntoSimplex({5.0, 5.0}, 6.0, 0.0);
    EXPECT_NEAR(p[0], 3.0, 1e-12);
    EXPECT_NEAR(p[1], 3.0, 1e-12);
}

TEST(SimplexProjection, FloorIsRespected)
{
    const auto p = projectOntoSimplex({10.0, 0.0}, 10.0, 0.5);
    EXPECT_GE(p[1], 0.5 - 1e-12);
    EXPECT_NEAR(p[0] + p[1], 10.0, 1e-9);
}

TEST(SimplexProjection, Validates)
{
    EXPECT_THROW(projectOntoSimplex({}, 1.0, 0.0), FatalError);
    EXPECT_THROW(projectOntoSimplex({1.0}, 1.0, 2.0), FatalError);
}

TEST(EisenbergGale, ProportionalFairnessNearButNotAtEquilibrium)
{
    // Amdahl utility is NOT homogeneous of degree one, so the EG
    // optimum (proportional fairness) is a *different* allocation
    // than the Fisher equilibrium — close (fractions of a core on the
    // paper's example) but with a strictly higher EG objective.
    std::vector<EgUser> users;
    users.push_back(amdahlUser(1.0, {0, 1}, {0.53, 0.93}));
    users.push_back(amdahlUser(1.0, {0, 1}, {0.96, 0.68}));
    EgOptions opts;
    opts.tolerance = 1e-12;
    const auto eg = solveEisenbergGale({10.0, 10.0}, users, opts);
    ASSERT_TRUE(eg.converged);
    // Near the market equilibrium (1.34, 8.68)/(8.66, 1.32)...
    EXPECT_NEAR(eg.allocation[0][0], 1.34, 0.5);
    EXPECT_NEAR(eg.allocation[0][1], 8.68, 0.5);
    // ...but measurably distinct (PF shaves the flatter curve).
    EXPECT_LT(eg.allocation[0][0], 1.30);
    EXPECT_GT(eg.allocation[1][0], 8.70);
}

TEST(EisenbergGale, ObjectiveWeaklyDominatesTheEquilibriums)
{
    // The EG maximizer's objective must be at least the market
    // equilibrium's (strictly more for non-homogeneous utilities).
    core::FisherMarket market({12.0, 8.0});
    market.addUser({"a", 2.0, {{0, 0.9, 1.0}, {1, 0.7, 1.0}}});
    market.addUser({"b", 1.0, {{0, 0.6, 1.0}, {1, 0.95, 1.0}}});
    core::BiddingOptions opts;
    opts.priceTolerance = 1e-10;
    const auto ab = core::solveAmdahlBidding(market, opts);

    std::vector<EgUser> users;
    users.push_back(amdahlUser(2.0, {0, 1}, {0.9, 0.7}));
    users.push_back(amdahlUser(1.0, {0, 1}, {0.6, 0.95}));
    EgOptions eopts;
    eopts.tolerance = 1e-12;
    const auto eg = solveEisenbergGale({12.0, 8.0}, users, eopts);

    double ab_phi = 0.0;
    for (std::size_t i = 0; i < 2; ++i) {
        ab_phi += market.user(i).budget *
                  std::log(users[i].utility(ab.allocation[i]));
    }
    EXPECT_GE(eg.objective, ab_phi - 1e-9);
}

TEST(EisenbergGale, NeitherSolutionParetoDominatesTheOther)
{
    // PF takes from one user to give to another: no Pareto ranking
    // between it and the market equilibrium (both are efficient).
    std::vector<EgUser> users;
    users.push_back(amdahlUser(1.0, {0, 1}, {0.53, 0.93}));
    users.push_back(amdahlUser(1.0, {0, 1}, {0.96, 0.68}));
    EgOptions opts;
    opts.tolerance = 1e-12;
    const auto eg = solveEisenbergGale({10.0, 10.0}, users, opts);

    core::FisherMarket market({10.0, 10.0});
    market.addUser({"Alice", 1.0, {{0, 0.53, 1.0}, {1, 0.93, 1.0}}});
    market.addUser({"Bob", 1.0, {{0, 0.96, 1.0}, {1, 0.68, 1.0}}});
    core::BiddingOptions bopts;
    bopts.priceTolerance = 1e-12;
    const auto ab = core::solveAmdahlBidding(market, bopts);

    const double alice_ab = users[0].utility(ab.allocation[0]);
    const double alice_eg = users[0].utility(eg.allocation[0]);
    const double bob_ab = users[1].utility(ab.allocation[1]);
    const double bob_eg = users[1].utility(eg.allocation[1]);
    // One gains, one loses, in each direction.
    EXPECT_GT(alice_ab, alice_eg);
    EXPECT_LT(bob_ab, bob_eg);
}

TEST(EisenbergGale, ClearsEveryServer)
{
    std::vector<EgUser> users;
    users.push_back(amdahlUser(1.0, {0, 1, 2}, {0.9, 0.8, 0.7}));
    users.push_back(amdahlUser(3.0, {0, 2}, {0.95, 0.6}));
    const std::vector<double> caps = {6.0, 10.0, 14.0};
    const auto eg = solveEisenbergGale(caps, users);
    std::vector<double> load(3, 0.0);
    for (std::size_t i = 0; i < users.size(); ++i) {
        for (std::size_t k = 0; k < users[i].servers.size(); ++k)
            load[users[i].servers[k]] += eg.allocation[i][k];
    }
    for (std::size_t j = 0; j < caps.size(); ++j)
        EXPECT_NEAR(load[j], caps[j], 1e-6 * caps[j]);
}

TEST(EisenbergGale, ValidatesInputs)
{
    std::vector<EgUser> users;
    users.push_back(amdahlUser(1.0, {0}, {0.9}));
    EXPECT_THROW(solveEisenbergGale({}, users), FatalError);
    EXPECT_THROW(solveEisenbergGale({4.0}, {}), FatalError);
    // Orphan server 1.
    EXPECT_THROW(solveEisenbergGale({4.0, 4.0}, users), FatalError);
    // Bad budget.
    auto bad = users;
    bad[0].budget = 0.0;
    EXPECT_THROW(solveEisenbergGale({4.0}, bad), FatalError);
}

TEST(EisenbergGale, HandlesNonAmdahlConcaveUtilities)
{
    // The point of the generic solver: plug in a CES-style utility
    // the closed-form machinery does not cover.
    EgUser a;
    a.budget = 1.0;
    a.servers = {0};
    a.utility = [](const std::vector<double> &x) {
        return std::sqrt(x[0]);
    };
    a.gradient = [](const std::vector<double> &x) {
        return std::vector<double>{0.5 / std::sqrt(x[0])};
    };
    EgUser b = a;
    b.budget = 3.0;
    const auto eg = solveEisenbergGale({8.0}, {a, b});
    ASSERT_TRUE(eg.converged);
    // EG with sqrt utilities splits proportionally to budgets.
    EXPECT_NEAR(eg.allocation[0][0], 2.0, 0.05);
    EXPECT_NEAR(eg.allocation[1][0], 6.0, 0.05);
}

} // namespace
} // namespace amdahl::solver
