/**
 * @file
 * Unit tests for the water-filling KKT solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "core/amdahl.hh"
#include "solver/water_filling.hh"

namespace amdahl::solver {
namespace {

double
utilityOf(const std::vector<WaterFillItem> &items,
          const std::vector<double> &cores)
{
    double u = 0.0;
    for (std::size_t j = 0; j < items.size(); ++j) {
        u += items[j].weight *
             core::amdahlSpeedup(items[j].parallelFraction, cores[j]);
    }
    return u;
}

TEST(WaterFill, SingleItemSpendsWholeBudget)
{
    const auto r = waterFill({{1.0, 0.9, 0.1}}, 2.0);
    EXPECT_NEAR(r.spend[0], 2.0, 1e-9);
    EXPECT_NEAR(r.cores[0], 20.0, 1e-6);
}

TEST(WaterFill, BudgetIsExhausted)
{
    const std::vector<WaterFillItem> items = {
        {1.0, 0.9, 0.2}, {1.0, 0.6, 0.1}, {2.0, 0.95, 0.3}};
    const auto r = waterFill(items, 5.0);
    double spent = 0.0;
    for (double b : r.spend)
        spent += b;
    EXPECT_NEAR(spent, 5.0, 1e-9);
}

TEST(WaterFill, SymmetricItemsSplitEvenly)
{
    const std::vector<WaterFillItem> items = {{1.0, 0.8, 0.5},
                                              {1.0, 0.8, 0.5}};
    const auto r = waterFill(items, 4.0);
    EXPECT_NEAR(r.spend[0], r.spend[1], 1e-9);
    EXPECT_NEAR(r.cores[0], 4.0, 1e-9);
}

TEST(WaterFill, MoreParallelJobGetsMore)
{
    const std::vector<WaterFillItem> items = {{1.0, 0.95, 0.5},
                                              {1.0, 0.60, 0.5}};
    const auto r = waterFill(items, 4.0);
    EXPECT_GT(r.cores[0], r.cores[1]);
}

TEST(WaterFill, CheaperServerGetsMoreCores)
{
    const std::vector<WaterFillItem> items = {{1.0, 0.9, 0.1},
                                              {1.0, 0.9, 0.4}};
    const auto r = waterFill(items, 2.0);
    EXPECT_GT(r.cores[0], r.cores[1]);
}

TEST(WaterFill, SatisfiesKktStationarity)
{
    const std::vector<WaterFillItem> items = {
        {1.0, 0.9, 0.2}, {2.0, 0.7, 0.5}, {1.5, 0.85, 0.35}};
    const auto r = waterFill(items, 3.0);
    // For every active coordinate, w s'(x) / p must equal lambda.
    for (std::size_t j = 0; j < items.size(); ++j) {
        if (r.cores[j] <= 1e-9)
            continue;
        const double marginal =
            items[j].weight *
            core::amdahlSpeedupDerivative(items[j].parallelFraction,
                                          r.cores[j]) /
            items[j].price;
        EXPECT_NEAR(marginal, r.multiplier, 1e-4 * r.multiplier);
    }
}

TEST(WaterFill, BeatsNeighboringFeasiblePoints)
{
    const std::vector<WaterFillItem> items = {{1.0, 0.9, 0.25},
                                              {1.0, 0.75, 0.4}};
    const double budget = 2.5;
    const auto r = waterFill(items, budget);
    const double best = utilityOf(items, r.cores);

    // Perturb spend between the two items; utility must not improve.
    for (double delta : {-0.2, -0.05, 0.05, 0.2}) {
        const double b0 = r.spend[0] + delta;
        const double b1 = r.spend[1] - delta;
        if (b0 < 0.0 || b1 < 0.0)
            continue;
        const std::vector<double> cores = {b0 / items[0].price,
                                           b1 / items[1].price};
        EXPECT_LE(utilityOf(items, cores), best + 1e-9);
    }
}

TEST(WaterFill, ReportsConsistentUtility)
{
    const std::vector<WaterFillItem> items = {{1.0, 0.9, 0.3},
                                              {2.0, 0.8, 0.2}};
    const auto r = waterFill(items, 1.5);
    EXPECT_NEAR(r.utility, utilityOf(items, r.cores), 1e-9);
}

TEST(WaterFill, NearlySerialJobStarved)
{
    // With one near-serial and one highly parallel job, almost all the
    // budget goes to the parallel one.
    const std::vector<WaterFillItem> items = {{1.0, 0.02, 0.5},
                                              {1.0, 0.98, 0.5}};
    const auto r = waterFill(items, 10.0);
    EXPECT_GT(r.spend[1], r.spend[0]);
}

TEST(WaterFill, HandlesExtremeFractions)
{
    // f == 1 (perfectly parallel) and f == 0 (serial) are clamped
    // internally; the solve must still succeed and exhaust the budget.
    const std::vector<WaterFillItem> items = {{1.0, 1.0, 0.5},
                                              {1.0, 0.0, 0.5}};
    const auto r = waterFill(items, 2.0);
    EXPECT_NEAR(r.spend[0] + r.spend[1], 2.0, 1e-9);
    EXPECT_GT(r.spend[0], r.spend[1]);
}

TEST(WaterFill, ValidatesInputs)
{
    EXPECT_THROW(waterFill({}, 1.0), FatalError);
    EXPECT_THROW(waterFill({{1.0, 0.5, 1.0}}, 0.0), FatalError);
    EXPECT_THROW(waterFill({{1.0, 0.5, -1.0}}, 1.0), FatalError);
    EXPECT_THROW(waterFill({{0.0, 0.5, 1.0}}, 1.0), FatalError);
}

} // namespace
} // namespace amdahl::solver
