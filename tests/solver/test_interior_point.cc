/**
 * @file
 * Unit tests for the log-barrier interior-point solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "solver/interior_point.hh"
#include "solver/water_filling.hh"

namespace amdahl::solver {
namespace {

/** A separable concave quadratic: sum_j (a_j b_j - 0.5 c_j b_j^2). */
class Quadratic : public SeparableConcave
{
  public:
    Quadratic(std::vector<double> a, std::vector<double> c)
        : a_(std::move(a)), c_(std::move(c))
    {}

    std::size_t size() const override { return a_.size(); }

    double
    value(std::size_t j, double b) const override
    {
        return a_[j] * b - 0.5 * c_[j] * b * b;
    }

    double
    gradient(std::size_t j, double b) const override
    {
        return a_[j] - c_[j] * b;
    }

    double
    hessian(std::size_t j, double) const override
    {
        return -c_[j];
    }

  private:
    std::vector<double> a_, c_;
};

/** Amdahl-style objective matching the water-filling problem. */
class AmdahlMoney : public SeparableConcave
{
  public:
    AmdahlMoney(std::vector<WaterFillItem> items)
        : items_(std::move(items))
    {}

    std::size_t size() const override { return items_.size(); }

    double
    value(std::size_t j, double b) const override
    {
        const auto &it = items_[j];
        const double x = b / it.price;
        return it.weight * x /
               (it.parallelFraction + (1.0 - it.parallelFraction) * x);
    }

    double
    gradient(std::size_t j, double b) const override
    {
        const auto &it = items_[j];
        const double f = it.parallelFraction;
        const double x = b / it.price;
        const double denom = f + (1.0 - f) * x;
        return it.weight * f / (denom * denom) / it.price;
    }

    double
    hessian(std::size_t j, double b) const override
    {
        const auto &it = items_[j];
        const double f = it.parallelFraction;
        const double x = b / it.price;
        const double denom = f + (1.0 - f) * x;
        return -2.0 * it.weight * f * (1.0 - f) /
               (denom * denom * denom) / (it.price * it.price);
    }

  private:
    std::vector<WaterFillItem> items_;
};

TEST(InteriorPoint, UnconstrainedInteriorOptimum)
{
    // max 4b - b^2 on [0, 10]: optimum b = 2 (interior).
    Quadratic obj({4.0}, {2.0});
    const auto b = maximizeOnSimplex(obj, 10.0);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_NEAR(b[0], 2.0, 1e-5);
}

TEST(InteriorPoint, BudgetBindsForLinearObjective)
{
    // Nearly linear objective: all budget should be spent on the
    // steeper coordinate.
    Quadratic obj({5.0, 1.0}, {1e-4, 1e-4});
    const auto b = maximizeOnSimplex(obj, 1.0);
    EXPECT_NEAR(b[0], 1.0, 1e-3);
    EXPECT_NEAR(b[1], 0.0, 1e-3);
}

TEST(InteriorPoint, SymmetricProblemSplitsEvenly)
{
    Quadratic obj({3.0, 3.0}, {1.0, 1.0});
    const auto b = maximizeOnSimplex(obj, 2.0);
    EXPECT_NEAR(b[0], b[1], 1e-5);
}

TEST(InteriorPoint, MatchesWaterFillingOnAmdahlObjective)
{
    // The interior-point and closed-form solvers must agree: this is
    // the cross-validation the BR baseline relies on.
    const std::vector<WaterFillItem> items = {
        {1.0, 0.9, 0.2}, {1.0, 0.7, 0.4}, {2.0, 0.85, 0.3}};
    const double budget = 3.0;
    AmdahlMoney obj(items);
    const auto ip = maximizeOnSimplex(obj, budget);
    const auto wf = waterFill(items, budget);
    for (std::size_t j = 0; j < items.size(); ++j)
        EXPECT_NEAR(ip[j], wf.spend[j], 2e-3 * budget);
}

TEST(InteriorPoint, StaysFeasible)
{
    Quadratic obj({1.0, 2.0, 3.0}, {0.5, 0.5, 0.5});
    const double budget = 1.0;
    const auto b = maximizeOnSimplex(obj, budget);
    double total = 0.0;
    for (double v : b) {
        EXPECT_GT(v, 0.0);
        total += v;
    }
    EXPECT_LE(total, budget + 1e-9);
}

TEST(InteriorPoint, ReportsStats)
{
    Quadratic obj({4.0}, {2.0});
    InteriorPointStats stats;
    maximizeOnSimplex(obj, 10.0, {}, &stats);
    EXPECT_GT(stats.barrierRounds, 0);
    EXPECT_GT(stats.newtonSteps, 0);
    EXPECT_LE(stats.finalGap, InteriorPointOptions{}.tolerance);
}

TEST(InteriorPoint, ValidatesInputs)
{
    Quadratic empty({}, {});
    EXPECT_THROW(maximizeOnSimplex(empty, 1.0), FatalError);
    Quadratic obj({1.0}, {1.0});
    EXPECT_THROW(maximizeOnSimplex(obj, 0.0), FatalError);
}

TEST(InteriorPoint, TighterToleranceImprovesAccuracy)
{
    Quadratic obj({4.0}, {2.0});
    InteriorPointOptions loose;
    loose.tolerance = 1e-3;
    InteriorPointOptions tight;
    tight.tolerance = 1e-10;
    const double err_loose =
        std::abs(maximizeOnSimplex(obj, 10.0, loose)[0] - 2.0);
    const double err_tight =
        std::abs(maximizeOnSimplex(obj, 10.0, tight)[0] - 2.0);
    EXPECT_LE(err_tight, err_loose + 1e-12);
}

} // namespace
} // namespace amdahl::solver
