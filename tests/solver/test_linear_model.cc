/**
 * @file
 * Unit tests for least-squares regression.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "solver/linear_model.hh"

namespace amdahl::solver {
namespace {

TEST(LinearModel, ExactLineIsRecovered)
{
    const auto m = fitLinear({1.0, 2.0, 3.0}, {5.0, 7.0, 9.0});
    EXPECT_NEAR(m.slope, 2.0, 1e-12);
    EXPECT_NEAR(m.intercept, 3.0, 1e-12);
    EXPECT_NEAR(m.r2, 1.0, 1e-12);
    EXPECT_EQ(m.n, 3u);
}

TEST(LinearModel, PredictEvaluatesTheLine)
{
    const auto m = fitLinear({0.0, 1.0}, {1.0, 3.0});
    EXPECT_NEAR(m.predict(2.0), 5.0, 1e-12);
    EXPECT_NEAR(m.predict(-1.0), -1.0, 1e-12);
}

TEST(LinearModel, NoisyDataHasR2BelowOne)
{
    const auto m = fitLinear({1.0, 2.0, 3.0, 4.0}, {1.1, 1.9, 3.2, 3.8});
    EXPECT_GT(m.r2, 0.97);
    EXPECT_LT(m.r2, 1.0);
    EXPECT_NEAR(m.slope, 1.0, 0.1);
}

TEST(LinearModel, ConstantResponseHasZeroSlope)
{
    const auto m = fitLinear({1.0, 2.0, 3.0}, {4.0, 4.0, 4.0});
    EXPECT_NEAR(m.slope, 0.0, 1e-12);
    EXPECT_NEAR(m.intercept, 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(m.r2, 1.0); // Perfect fit of a constant.
}

TEST(LinearModel, RejectsDegenerateInput)
{
    EXPECT_THROW(fitLinear({1.0}, {2.0}), FatalError);
    EXPECT_THROW(fitLinear({1.0, 2.0}, {1.0}), FatalError);
    EXPECT_THROW(fitLinear({2.0, 2.0}, {1.0, 3.0}), FatalError);
}

TEST(PolynomialModel, QuadraticIsRecovered)
{
    // y = 1 + 2x + 3x^2.
    std::vector<double> xs, ys;
    for (double x = -2.0; x <= 2.0; x += 0.5) {
        xs.push_back(x);
        ys.push_back(1.0 + 2.0 * x + 3.0 * x * x);
    }
    const auto m = fitPolynomial(xs, ys, 2);
    ASSERT_EQ(m.coeffs.size(), 3u);
    EXPECT_NEAR(m.coeffs[0], 1.0, 1e-9);
    EXPECT_NEAR(m.coeffs[1], 2.0, 1e-9);
    EXPECT_NEAR(m.coeffs[2], 3.0, 1e-9);
    EXPECT_NEAR(m.r2, 1.0, 1e-12);
    EXPECT_EQ(m.degree(), 2u);
}

TEST(PolynomialModel, DegreeZeroFitsTheMean)
{
    const auto m = fitPolynomial({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}, 0);
    ASSERT_EQ(m.coeffs.size(), 1u);
    EXPECT_NEAR(m.coeffs[0], 4.0, 1e-12);
}

TEST(PolynomialModel, DegreeOneMatchesLinearFit)
{
    const std::vector<double> xs = {1.0, 2.0, 3.0, 5.0};
    const std::vector<double> ys = {2.1, 4.2, 5.9, 10.3};
    const auto poly = fitPolynomial(xs, ys, 1);
    const auto lin = fitLinear(xs, ys);
    EXPECT_NEAR(poly.coeffs[0], lin.intercept, 1e-9);
    EXPECT_NEAR(poly.coeffs[1], lin.slope, 1e-9);
}

TEST(PolynomialModel, PredictUsesHorner)
{
    PolynomialModel m;
    m.coeffs = {1.0, 0.0, 2.0}; // 1 + 2x^2
    EXPECT_DOUBLE_EQ(m.predict(3.0), 19.0);
}

TEST(PolynomialModel, NeedsEnoughPoints)
{
    EXPECT_THROW(fitPolynomial({1.0, 2.0}, {1.0, 2.0}, 2), FatalError);
    EXPECT_THROW(fitPolynomial({1.0, 2.0}, {1.0}, 1), FatalError);
}

TEST(PolynomialModel, QuadraticDatasetScaling)
{
    // Execution time scaling quadratically with dataset size (the
    // paper's QR-decomposition case): a linear fit misses, the
    // quadratic fit nails it.
    std::vector<double> xs, ys;
    for (double gb = 1.0; gb <= 6.0; gb += 1.0) {
        xs.push_back(gb);
        ys.push_back(10.0 * gb * gb);
    }
    const auto quad = fitPolynomial(xs, ys, 2);
    const auto lin = fitLinear(xs, ys);
    EXPECT_NEAR(quad.predict(8.0), 640.0, 1e-6);
    EXPECT_GT(std::abs(lin.predict(8.0) - 640.0), 50.0);
}

} // namespace
} // namespace amdahl::solver
