/**
 * @file
 * Unit tests for scalar root finding and minimization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "solver/root_find.hh"

namespace amdahl::solver {
namespace {

TEST(Bisect, FindsSquareRoot)
{
    const double root =
        bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
    EXPECT_NEAR(root, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, AcceptsRootAtBracketEnd)
{
    EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(bisect([](double x) { return x - 1.0; }, 0.0, 1.0),
                     1.0);
}

TEST(Bisect, HandlesDecreasingFunctions)
{
    const double root =
        bisect([](double x) { return 5.0 - x; }, 0.0, 10.0);
    EXPECT_NEAR(root, 5.0, 1e-9);
}

TEST(Bisect, RejectsBadBracket)
{
    EXPECT_THROW(bisect([](double x) { return x; }, 2.0, 1.0),
                 FatalError);
    EXPECT_THROW(
        bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
        FatalError);
}

TEST(Bisect, RespectsTolerance)
{
    ScalarSolveOptions opts;
    opts.tolerance = 1e-3;
    const double root =
        bisect([](double x) { return x - 0.333; }, 0.0, 1.0, opts);
    EXPECT_NEAR(root, 0.333, 1e-3);
}

TEST(NewtonBracketed, QuadraticConvergesFast)
{
    const double root = newtonBracketed(
        [](double x) { return x * x - 9.0; },
        [](double x) { return 2.0 * x; }, 0.0, 10.0);
    EXPECT_NEAR(root, 3.0, 1e-9);
}

TEST(NewtonBracketed, SurvivesZeroDerivative)
{
    // f(x) = x^3 has f'(0) = 0; the bisection fallback must engage.
    const double root = newtonBracketed(
        [](double x) { return x * x * x; },
        [](double x) { return 3.0 * x * x; }, -1.0, 2.0);
    EXPECT_NEAR(root, 0.0, 1e-6);
}

TEST(NewtonBracketed, RejectsSameSignBracket)
{
    EXPECT_THROW(newtonBracketed([](double x) { return x * x + 1.0; },
                                 [](double x) { return 2.0 * x; }, -1.0,
                                 1.0),
                 FatalError);
}

TEST(NewtonBracketed, TranscendentalRoot)
{
    // x = cos(x) has root ~0.7390851.
    const double root = newtonBracketed(
        [](double x) { return x - std::cos(x); },
        [](double x) { return 1.0 + std::sin(x); }, 0.0, 1.0);
    EXPECT_NEAR(root, 0.7390851332151607, 1e-9);
}

TEST(MinimizeGolden, ParabolaMinimum)
{
    const double x = minimizeGolden(
        [](double v) { return (v - 1.5) * (v - 1.5); }, -10.0, 10.0);
    EXPECT_NEAR(x, 1.5, 1e-6);
}

TEST(MinimizeGolden, BoundaryMinimum)
{
    const double x =
        minimizeGolden([](double v) { return v; }, 2.0, 5.0);
    EXPECT_NEAR(x, 2.0, 1e-6);
}

TEST(MinimizeGolden, RejectsBadInterval)
{
    EXPECT_THROW(minimizeGolden([](double v) { return v; }, 1.0, 1.0),
                 FatalError);
}

} // namespace
} // namespace amdahl::solver
