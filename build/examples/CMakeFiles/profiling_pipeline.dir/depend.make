# Empty dependencies file for profiling_pipeline.
# This may be replaced when dependencies are built.
