file(REMOVE_RECURSE
  "CMakeFiles/profiling_pipeline.dir/profiling_pipeline.cpp.o"
  "CMakeFiles/profiling_pipeline.dir/profiling_pipeline.cpp.o.d"
  "profiling_pipeline"
  "profiling_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiling_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
