# Empty compiler generated dependencies file for datacenter_market.
# This may be replaced when dependencies are built.
