file(REMOVE_RECURSE
  "CMakeFiles/datacenter_market.dir/datacenter_market.cpp.o"
  "CMakeFiles/datacenter_market.dir/datacenter_market.cpp.o.d"
  "datacenter_market"
  "datacenter_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
