# Empty compiler generated dependencies file for entitlement_classes.
# This may be replaced when dependencies are built.
