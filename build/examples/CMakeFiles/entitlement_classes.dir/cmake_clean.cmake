file(REMOVE_RECURSE
  "CMakeFiles/entitlement_classes.dir/entitlement_classes.cpp.o"
  "CMakeFiles/entitlement_classes.dir/entitlement_classes.cpp.o.d"
  "entitlement_classes"
  "entitlement_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entitlement_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
