# Empty compiler generated dependencies file for online_datacenter.
# This may be replaced when dependencies are built.
