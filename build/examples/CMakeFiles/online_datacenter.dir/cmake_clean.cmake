file(REMOVE_RECURSE
  "CMakeFiles/online_datacenter.dir/online_datacenter.cpp.o"
  "CMakeFiles/online_datacenter.dir/online_datacenter.cpp.o.d"
  "online_datacenter"
  "online_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
