# Empty compiler generated dependencies file for simulator_trace.
# This may be replaced when dependencies are built.
