# Empty dependencies file for simulator_trace.
# This may be replaced when dependencies are built.
