file(REMOVE_RECURSE
  "CMakeFiles/simulator_trace.dir/simulator_trace.cpp.o"
  "CMakeFiles/simulator_trace.dir/simulator_trace.cpp.o.d"
  "simulator_trace"
  "simulator_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
