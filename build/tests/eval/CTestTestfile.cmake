# CMake generated Testfile for 
# Source directory: /root/repo/tests/eval
# Build directory: /root/repo/build/tests/eval
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/eval/test_eval_population[1]_include.cmake")
include("/root/repo/build/tests/eval/test_eval_characterization[1]_include.cmake")
include("/root/repo/build/tests/eval/test_eval_metrics[1]_include.cmake")
include("/root/repo/build/tests/eval/test_eval_experiment[1]_include.cmake")
include("/root/repo/build/tests/eval/test_eval_deployment[1]_include.cmake")
include("/root/repo/build/tests/eval/test_eval_online[1]_include.cmake")
