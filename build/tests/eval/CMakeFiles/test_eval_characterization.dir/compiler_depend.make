# Empty compiler generated dependencies file for test_eval_characterization.
# This may be replaced when dependencies are built.
