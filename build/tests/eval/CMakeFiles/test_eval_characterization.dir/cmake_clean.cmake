file(REMOVE_RECURSE
  "CMakeFiles/test_eval_characterization.dir/test_characterization.cc.o"
  "CMakeFiles/test_eval_characterization.dir/test_characterization.cc.o.d"
  "test_eval_characterization"
  "test_eval_characterization.pdb"
  "test_eval_characterization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
