file(REMOVE_RECURSE
  "CMakeFiles/test_eval_metrics.dir/test_metrics.cc.o"
  "CMakeFiles/test_eval_metrics.dir/test_metrics.cc.o.d"
  "test_eval_metrics"
  "test_eval_metrics.pdb"
  "test_eval_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
