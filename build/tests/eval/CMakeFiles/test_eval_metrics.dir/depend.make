# Empty dependencies file for test_eval_metrics.
# This may be replaced when dependencies are built.
