# Empty dependencies file for test_eval_online.
# This may be replaced when dependencies are built.
