file(REMOVE_RECURSE
  "CMakeFiles/test_eval_online.dir/test_online.cc.o"
  "CMakeFiles/test_eval_online.dir/test_online.cc.o.d"
  "test_eval_online"
  "test_eval_online.pdb"
  "test_eval_online[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
