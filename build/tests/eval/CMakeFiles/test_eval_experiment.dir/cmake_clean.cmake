file(REMOVE_RECURSE
  "CMakeFiles/test_eval_experiment.dir/test_experiment.cc.o"
  "CMakeFiles/test_eval_experiment.dir/test_experiment.cc.o.d"
  "test_eval_experiment"
  "test_eval_experiment.pdb"
  "test_eval_experiment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
