# Empty compiler generated dependencies file for test_eval_population.
# This may be replaced when dependencies are built.
