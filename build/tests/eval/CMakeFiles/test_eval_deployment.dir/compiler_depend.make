# Empty compiler generated dependencies file for test_eval_deployment.
# This may be replaced when dependencies are built.
