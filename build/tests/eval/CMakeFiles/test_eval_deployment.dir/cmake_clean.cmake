file(REMOVE_RECURSE
  "CMakeFiles/test_eval_deployment.dir/test_deployment.cc.o"
  "CMakeFiles/test_eval_deployment.dir/test_deployment.cc.o.d"
  "test_eval_deployment"
  "test_eval_deployment.pdb"
  "test_eval_deployment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eval_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
