# Empty compiler generated dependencies file for test_common_math_util.
# This may be replaced when dependencies are built.
