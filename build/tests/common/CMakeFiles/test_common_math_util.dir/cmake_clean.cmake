file(REMOVE_RECURSE
  "CMakeFiles/test_common_math_util.dir/test_math_util.cc.o"
  "CMakeFiles/test_common_math_util.dir/test_math_util.cc.o.d"
  "test_common_math_util"
  "test_common_math_util.pdb"
  "test_common_math_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_math_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
