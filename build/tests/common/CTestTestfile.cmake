# CMake generated Testfile for 
# Source directory: /root/repo/tests/common
# Build directory: /root/repo/build/tests/common
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common/test_common_logging[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_random[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_stats[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_table[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_csv[1]_include.cmake")
include("/root/repo/build/tests/common/test_common_math_util[1]_include.cmake")
