# Empty compiler generated dependencies file for test_alloc_proportional_fairness.
# This may be replaced when dependencies are built.
