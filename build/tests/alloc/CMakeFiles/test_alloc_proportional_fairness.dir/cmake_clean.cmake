file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_proportional_fairness.dir/test_proportional_fairness.cc.o"
  "CMakeFiles/test_alloc_proportional_fairness.dir/test_proportional_fairness.cc.o.d"
  "test_alloc_proportional_fairness"
  "test_alloc_proportional_fairness.pdb"
  "test_alloc_proportional_fairness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_proportional_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
