# Empty dependencies file for test_alloc_best_response.
# This may be replaced when dependencies are built.
