file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_best_response.dir/test_best_response.cc.o"
  "CMakeFiles/test_alloc_best_response.dir/test_best_response.cc.o.d"
  "test_alloc_best_response"
  "test_alloc_best_response.pdb"
  "test_alloc_best_response[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_best_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
