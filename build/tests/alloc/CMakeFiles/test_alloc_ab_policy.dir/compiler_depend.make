# Empty compiler generated dependencies file for test_alloc_ab_policy.
# This may be replaced when dependencies are built.
