file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_ab_policy.dir/test_ab_policy.cc.o"
  "CMakeFiles/test_alloc_ab_policy.dir/test_ab_policy.cc.o.d"
  "test_alloc_ab_policy"
  "test_alloc_ab_policy.pdb"
  "test_alloc_ab_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_ab_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
