file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_lottery.dir/test_lottery.cc.o"
  "CMakeFiles/test_alloc_lottery.dir/test_lottery.cc.o.d"
  "test_alloc_lottery"
  "test_alloc_lottery.pdb"
  "test_alloc_lottery[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_lottery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
