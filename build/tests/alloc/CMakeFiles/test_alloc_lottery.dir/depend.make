# Empty dependencies file for test_alloc_lottery.
# This may be replaced when dependencies are built.
