file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_proportional_share.dir/test_proportional_share.cc.o"
  "CMakeFiles/test_alloc_proportional_share.dir/test_proportional_share.cc.o.d"
  "test_alloc_proportional_share"
  "test_alloc_proportional_share.pdb"
  "test_alloc_proportional_share[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_proportional_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
