# Empty compiler generated dependencies file for test_alloc_proportional_share.
# This may be replaced when dependencies are built.
