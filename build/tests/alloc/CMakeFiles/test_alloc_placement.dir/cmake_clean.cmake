file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_placement.dir/test_placement.cc.o"
  "CMakeFiles/test_alloc_placement.dir/test_placement.cc.o.d"
  "test_alloc_placement"
  "test_alloc_placement.pdb"
  "test_alloc_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
