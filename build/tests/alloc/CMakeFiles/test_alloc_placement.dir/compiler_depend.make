# Empty compiler generated dependencies file for test_alloc_placement.
# This may be replaced when dependencies are built.
