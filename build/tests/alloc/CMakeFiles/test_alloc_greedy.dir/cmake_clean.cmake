file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_greedy.dir/test_greedy.cc.o"
  "CMakeFiles/test_alloc_greedy.dir/test_greedy.cc.o.d"
  "test_alloc_greedy"
  "test_alloc_greedy.pdb"
  "test_alloc_greedy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
