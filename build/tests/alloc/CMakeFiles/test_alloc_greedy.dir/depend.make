# Empty dependencies file for test_alloc_greedy.
# This may be replaced when dependencies are built.
