# CMake generated Testfile for 
# Source directory: /root/repo/tests/alloc
# Build directory: /root/repo/build/tests/alloc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/alloc/test_alloc_proportional_share[1]_include.cmake")
include("/root/repo/build/tests/alloc/test_alloc_greedy[1]_include.cmake")
include("/root/repo/build/tests/alloc/test_alloc_best_response[1]_include.cmake")
include("/root/repo/build/tests/alloc/test_alloc_ab_policy[1]_include.cmake")
include("/root/repo/build/tests/alloc/test_alloc_placement[1]_include.cmake")
include("/root/repo/build/tests/alloc/test_alloc_lottery[1]_include.cmake")
include("/root/repo/build/tests/alloc/test_alloc_proportional_fairness[1]_include.cmake")
