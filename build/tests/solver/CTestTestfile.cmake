# CMake generated Testfile for 
# Source directory: /root/repo/tests/solver
# Build directory: /root/repo/build/tests/solver
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/solver/test_solver_linear_model[1]_include.cmake")
include("/root/repo/build/tests/solver/test_solver_root_find[1]_include.cmake")
include("/root/repo/build/tests/solver/test_solver_water_filling[1]_include.cmake")
include("/root/repo/build/tests/solver/test_solver_interior_point[1]_include.cmake")
include("/root/repo/build/tests/solver/test_solver_eisenberg_gale[1]_include.cmake")
