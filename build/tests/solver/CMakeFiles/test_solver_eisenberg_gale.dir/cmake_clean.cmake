file(REMOVE_RECURSE
  "CMakeFiles/test_solver_eisenberg_gale.dir/test_eisenberg_gale.cc.o"
  "CMakeFiles/test_solver_eisenberg_gale.dir/test_eisenberg_gale.cc.o.d"
  "test_solver_eisenberg_gale"
  "test_solver_eisenberg_gale.pdb"
  "test_solver_eisenberg_gale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_eisenberg_gale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
