# Empty dependencies file for test_solver_eisenberg_gale.
# This may be replaced when dependencies are built.
