file(REMOVE_RECURSE
  "CMakeFiles/test_solver_root_find.dir/test_root_find.cc.o"
  "CMakeFiles/test_solver_root_find.dir/test_root_find.cc.o.d"
  "test_solver_root_find"
  "test_solver_root_find.pdb"
  "test_solver_root_find[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_root_find.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
