# Empty compiler generated dependencies file for test_solver_water_filling.
# This may be replaced when dependencies are built.
