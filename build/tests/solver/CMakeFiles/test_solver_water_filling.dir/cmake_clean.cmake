file(REMOVE_RECURSE
  "CMakeFiles/test_solver_water_filling.dir/test_water_filling.cc.o"
  "CMakeFiles/test_solver_water_filling.dir/test_water_filling.cc.o.d"
  "test_solver_water_filling"
  "test_solver_water_filling.pdb"
  "test_solver_water_filling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_water_filling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
