file(REMOVE_RECURSE
  "CMakeFiles/test_solver_interior_point.dir/test_interior_point.cc.o"
  "CMakeFiles/test_solver_interior_point.dir/test_interior_point.cc.o.d"
  "test_solver_interior_point"
  "test_solver_interior_point.pdb"
  "test_solver_interior_point[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_interior_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
