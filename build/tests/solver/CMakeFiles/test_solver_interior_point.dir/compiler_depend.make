# Empty compiler generated dependencies file for test_solver_interior_point.
# This may be replaced when dependencies are built.
