# Empty dependencies file for test_solver_linear_model.
# This may be replaced when dependencies are built.
