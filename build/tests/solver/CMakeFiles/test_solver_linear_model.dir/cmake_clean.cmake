file(REMOVE_RECURSE
  "CMakeFiles/test_solver_linear_model.dir/test_linear_model.cc.o"
  "CMakeFiles/test_solver_linear_model.dir/test_linear_model.cc.o.d"
  "test_solver_linear_model"
  "test_solver_linear_model.pdb"
  "test_solver_linear_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_linear_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
