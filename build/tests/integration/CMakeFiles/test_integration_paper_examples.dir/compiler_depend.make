# Empty compiler generated dependencies file for test_integration_paper_examples.
# This may be replaced when dependencies are built.
