file(REMOVE_RECURSE
  "CMakeFiles/test_integration_paper_examples.dir/test_paper_examples.cc.o"
  "CMakeFiles/test_integration_paper_examples.dir/test_paper_examples.cc.o.d"
  "test_integration_paper_examples"
  "test_integration_paper_examples.pdb"
  "test_integration_paper_examples[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_paper_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
