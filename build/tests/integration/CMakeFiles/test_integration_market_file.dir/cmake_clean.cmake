file(REMOVE_RECURSE
  "CMakeFiles/test_integration_market_file.dir/test_market_file_roundtrip.cc.o"
  "CMakeFiles/test_integration_market_file.dir/test_market_file_roundtrip.cc.o.d"
  "test_integration_market_file"
  "test_integration_market_file.pdb"
  "test_integration_market_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_market_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
