# Empty compiler generated dependencies file for test_integration_market_file.
# This may be replaced when dependencies are built.
