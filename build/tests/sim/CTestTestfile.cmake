# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim/test_sim_server[1]_include.cmake")
include("/root/repo/build/tests/sim/test_sim_workload[1]_include.cmake")
include("/root/repo/build/tests/sim/test_sim_task_sim[1]_include.cmake")
include("/root/repo/build/tests/sim/test_sim_workload_library[1]_include.cmake")
include("/root/repo/build/tests/sim/test_sim_interference[1]_include.cmake")
