# Empty dependencies file for test_sim_task_sim.
# This may be replaced when dependencies are built.
