file(REMOVE_RECURSE
  "CMakeFiles/test_sim_task_sim.dir/test_task_sim.cc.o"
  "CMakeFiles/test_sim_task_sim.dir/test_task_sim.cc.o.d"
  "test_sim_task_sim"
  "test_sim_task_sim.pdb"
  "test_sim_task_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_task_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
