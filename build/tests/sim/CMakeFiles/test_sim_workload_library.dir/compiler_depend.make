# Empty compiler generated dependencies file for test_sim_workload_library.
# This may be replaced when dependencies are built.
