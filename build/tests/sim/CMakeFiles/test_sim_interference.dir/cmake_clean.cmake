file(REMOVE_RECURSE
  "CMakeFiles/test_sim_interference.dir/test_interference.cc.o"
  "CMakeFiles/test_sim_interference.dir/test_interference.cc.o.d"
  "test_sim_interference"
  "test_sim_interference.pdb"
  "test_sim_interference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
