# Empty dependencies file for test_sim_interference.
# This may be replaced when dependencies are built.
