# CMake generated Testfile for 
# Source directory: /root/repo/tests/property
# Build directory: /root/repo/build/tests/property
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/property/test_property_market[1]_include.cmake")
include("/root/repo/build/tests/property/test_property_amdahl[1]_include.cmake")
include("/root/repo/build/tests/property/test_property_sim[1]_include.cmake")
include("/root/repo/build/tests/property/test_property_rounding[1]_include.cmake")
include("/root/repo/build/tests/property/test_property_ces[1]_include.cmake")
include("/root/repo/build/tests/property/test_property_solver_cross[1]_include.cmake")
include("/root/repo/build/tests/property/test_property_analytical[1]_include.cmake")
include("/root/repo/build/tests/property/test_property_market_stress[1]_include.cmake")
include("/root/repo/build/tests/property/test_property_online[1]_include.cmake")
