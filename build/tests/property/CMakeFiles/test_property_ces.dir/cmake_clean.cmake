file(REMOVE_RECURSE
  "CMakeFiles/test_property_ces.dir/test_ces_properties.cc.o"
  "CMakeFiles/test_property_ces.dir/test_ces_properties.cc.o.d"
  "test_property_ces"
  "test_property_ces.pdb"
  "test_property_ces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_ces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
