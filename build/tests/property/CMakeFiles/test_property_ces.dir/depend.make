# Empty dependencies file for test_property_ces.
# This may be replaced when dependencies are built.
