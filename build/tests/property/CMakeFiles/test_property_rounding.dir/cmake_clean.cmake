file(REMOVE_RECURSE
  "CMakeFiles/test_property_rounding.dir/test_rounding_properties.cc.o"
  "CMakeFiles/test_property_rounding.dir/test_rounding_properties.cc.o.d"
  "test_property_rounding"
  "test_property_rounding.pdb"
  "test_property_rounding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
