# Empty compiler generated dependencies file for test_property_rounding.
# This may be replaced when dependencies are built.
