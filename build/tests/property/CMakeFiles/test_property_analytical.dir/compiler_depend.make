# Empty compiler generated dependencies file for test_property_analytical.
# This may be replaced when dependencies are built.
