file(REMOVE_RECURSE
  "CMakeFiles/test_property_analytical.dir/test_analytical_properties.cc.o"
  "CMakeFiles/test_property_analytical.dir/test_analytical_properties.cc.o.d"
  "test_property_analytical"
  "test_property_analytical.pdb"
  "test_property_analytical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
