file(REMOVE_RECURSE
  "CMakeFiles/test_property_amdahl.dir/test_amdahl_properties.cc.o"
  "CMakeFiles/test_property_amdahl.dir/test_amdahl_properties.cc.o.d"
  "test_property_amdahl"
  "test_property_amdahl.pdb"
  "test_property_amdahl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_amdahl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
