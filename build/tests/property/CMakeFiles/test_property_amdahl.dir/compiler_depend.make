# Empty compiler generated dependencies file for test_property_amdahl.
# This may be replaced when dependencies are built.
