# Empty compiler generated dependencies file for test_property_online.
# This may be replaced when dependencies are built.
