file(REMOVE_RECURSE
  "CMakeFiles/test_property_online.dir/test_online_properties.cc.o"
  "CMakeFiles/test_property_online.dir/test_online_properties.cc.o.d"
  "test_property_online"
  "test_property_online.pdb"
  "test_property_online[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
