file(REMOVE_RECURSE
  "CMakeFiles/test_property_solver_cross.dir/test_solver_cross_validation.cc.o"
  "CMakeFiles/test_property_solver_cross.dir/test_solver_cross_validation.cc.o.d"
  "test_property_solver_cross"
  "test_property_solver_cross.pdb"
  "test_property_solver_cross[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_solver_cross.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
