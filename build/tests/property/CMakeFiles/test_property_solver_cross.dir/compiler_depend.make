# Empty compiler generated dependencies file for test_property_solver_cross.
# This may be replaced when dependencies are built.
