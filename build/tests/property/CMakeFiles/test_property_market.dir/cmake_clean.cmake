file(REMOVE_RECURSE
  "CMakeFiles/test_property_market.dir/test_market_properties.cc.o"
  "CMakeFiles/test_property_market.dir/test_market_properties.cc.o.d"
  "test_property_market"
  "test_property_market.pdb"
  "test_property_market[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
