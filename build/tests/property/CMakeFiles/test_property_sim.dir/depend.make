# Empty dependencies file for test_property_sim.
# This may be replaced when dependencies are built.
