file(REMOVE_RECURSE
  "CMakeFiles/test_property_sim.dir/test_sim_properties.cc.o"
  "CMakeFiles/test_property_sim.dir/test_sim_properties.cc.o.d"
  "test_property_sim"
  "test_property_sim.pdb"
  "test_property_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
