# Empty compiler generated dependencies file for test_profiling_karp_flatt.
# This may be replaced when dependencies are built.
