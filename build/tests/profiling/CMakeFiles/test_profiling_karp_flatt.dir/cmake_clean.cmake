file(REMOVE_RECURSE
  "CMakeFiles/test_profiling_karp_flatt.dir/test_karp_flatt.cc.o"
  "CMakeFiles/test_profiling_karp_flatt.dir/test_karp_flatt.cc.o.d"
  "test_profiling_karp_flatt"
  "test_profiling_karp_flatt.pdb"
  "test_profiling_karp_flatt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiling_karp_flatt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
