file(REMOVE_RECURSE
  "CMakeFiles/test_profiling_predictor.dir/test_predictor.cc.o"
  "CMakeFiles/test_profiling_predictor.dir/test_predictor.cc.o.d"
  "test_profiling_predictor"
  "test_profiling_predictor.pdb"
  "test_profiling_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiling_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
