# Empty dependencies file for test_profiling_predictor.
# This may be replaced when dependencies are built.
