file(REMOVE_RECURSE
  "CMakeFiles/test_profiling_sampler.dir/test_sampler.cc.o"
  "CMakeFiles/test_profiling_sampler.dir/test_sampler.cc.o.d"
  "test_profiling_sampler"
  "test_profiling_sampler.pdb"
  "test_profiling_sampler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_profiling_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
