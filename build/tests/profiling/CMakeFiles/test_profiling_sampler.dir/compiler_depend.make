# Empty compiler generated dependencies file for test_profiling_sampler.
# This may be replaced when dependencies are built.
