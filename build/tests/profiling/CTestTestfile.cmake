# CMake generated Testfile for 
# Source directory: /root/repo/tests/profiling
# Build directory: /root/repo/build/tests/profiling
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/profiling/test_profiling_sampler[1]_include.cmake")
include("/root/repo/build/tests/profiling/test_profiling_profiler[1]_include.cmake")
include("/root/repo/build/tests/profiling/test_profiling_karp_flatt[1]_include.cmake")
include("/root/repo/build/tests/profiling/test_profiling_predictor[1]_include.cmake")
