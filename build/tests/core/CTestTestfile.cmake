# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/test_core_amdahl[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_utility[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_market[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_bidding[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_rounding[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_entitlement[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_ces_market[1]_include.cmake")
include("/root/repo/build/tests/core/test_core_market_io[1]_include.cmake")
