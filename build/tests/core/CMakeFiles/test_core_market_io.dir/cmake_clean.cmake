file(REMOVE_RECURSE
  "CMakeFiles/test_core_market_io.dir/test_market_io.cc.o"
  "CMakeFiles/test_core_market_io.dir/test_market_io.cc.o.d"
  "test_core_market_io"
  "test_core_market_io.pdb"
  "test_core_market_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_market_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
