file(REMOVE_RECURSE
  "CMakeFiles/test_core_market.dir/test_market.cc.o"
  "CMakeFiles/test_core_market.dir/test_market.cc.o.d"
  "test_core_market"
  "test_core_market.pdb"
  "test_core_market[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
