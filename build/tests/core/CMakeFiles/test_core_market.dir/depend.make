# Empty dependencies file for test_core_market.
# This may be replaced when dependencies are built.
