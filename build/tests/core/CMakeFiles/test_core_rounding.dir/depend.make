# Empty dependencies file for test_core_rounding.
# This may be replaced when dependencies are built.
