file(REMOVE_RECURSE
  "CMakeFiles/test_core_rounding.dir/test_rounding.cc.o"
  "CMakeFiles/test_core_rounding.dir/test_rounding.cc.o.d"
  "test_core_rounding"
  "test_core_rounding.pdb"
  "test_core_rounding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
