file(REMOVE_RECURSE
  "CMakeFiles/test_core_ces_market.dir/test_ces_market.cc.o"
  "CMakeFiles/test_core_ces_market.dir/test_ces_market.cc.o.d"
  "test_core_ces_market"
  "test_core_ces_market.pdb"
  "test_core_ces_market[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_ces_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
