file(REMOVE_RECURSE
  "CMakeFiles/test_core_amdahl.dir/test_amdahl.cc.o"
  "CMakeFiles/test_core_amdahl.dir/test_amdahl.cc.o.d"
  "test_core_amdahl"
  "test_core_amdahl.pdb"
  "test_core_amdahl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_amdahl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
