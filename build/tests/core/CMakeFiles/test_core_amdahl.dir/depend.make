# Empty dependencies file for test_core_amdahl.
# This may be replaced when dependencies are built.
