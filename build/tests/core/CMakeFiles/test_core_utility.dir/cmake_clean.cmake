file(REMOVE_RECURSE
  "CMakeFiles/test_core_utility.dir/test_utility.cc.o"
  "CMakeFiles/test_core_utility.dir/test_utility.cc.o.d"
  "test_core_utility"
  "test_core_utility.pdb"
  "test_core_utility[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
