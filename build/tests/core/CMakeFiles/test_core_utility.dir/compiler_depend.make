# Empty compiler generated dependencies file for test_core_utility.
# This may be replaced when dependencies are built.
