# Empty dependencies file for test_core_bidding.
# This may be replaced when dependencies are built.
