file(REMOVE_RECURSE
  "CMakeFiles/test_core_bidding.dir/test_bidding.cc.o"
  "CMakeFiles/test_core_bidding.dir/test_bidding.cc.o.d"
  "test_core_bidding"
  "test_core_bidding.pdb"
  "test_core_bidding[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_bidding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
