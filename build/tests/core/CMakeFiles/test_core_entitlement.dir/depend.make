# Empty dependencies file for test_core_entitlement.
# This may be replaced when dependencies are built.
