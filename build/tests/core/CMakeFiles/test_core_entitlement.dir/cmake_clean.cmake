file(REMOVE_RECURSE
  "CMakeFiles/test_core_entitlement.dir/test_entitlement.cc.o"
  "CMakeFiles/test_core_entitlement.dir/test_entitlement.cc.o.d"
  "test_core_entitlement"
  "test_core_entitlement.pdb"
  "test_core_entitlement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_entitlement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
