file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_server.dir/bench_table2_server.cc.o"
  "CMakeFiles/bench_table2_server.dir/bench_table2_server.cc.o.d"
  "bench_table2_server"
  "bench_table2_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
