# Empty dependencies file for bench_table2_server.
# This may be replaced when dependencies are built.
