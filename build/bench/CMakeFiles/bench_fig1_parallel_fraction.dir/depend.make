# Empty dependencies file for bench_fig1_parallel_fraction.
# This may be replaced when dependencies are built.
