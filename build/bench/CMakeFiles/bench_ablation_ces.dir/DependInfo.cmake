
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_ces.cc" "bench/CMakeFiles/bench_ablation_ces.dir/bench_ablation_ces.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_ces.dir/bench_ablation_ces.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/amdahl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/amdahl_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/amdahl_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/amdahl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amdahl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/amdahl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/amdahl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
