file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ces.dir/bench_ablation_ces.cc.o"
  "CMakeFiles/bench_ablation_ces.dir/bench_ablation_ces.cc.o.d"
  "bench_ablation_ces"
  "bench_ablation_ces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
