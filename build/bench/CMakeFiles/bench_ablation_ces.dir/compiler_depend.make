# Empty compiler generated dependencies file for bench_ablation_ces.
# This may be replaced when dependencies are built.
