# Empty compiler generated dependencies file for bench_overheads_model.
# This may be replaced when dependencies are built.
