file(REMOVE_RECURSE
  "CMakeFiles/bench_overheads_model.dir/bench_overheads_model.cc.o"
  "CMakeFiles/bench_overheads_model.dir/bench_overheads_model.cc.o.d"
  "bench_overheads_model"
  "bench_overheads_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overheads_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
