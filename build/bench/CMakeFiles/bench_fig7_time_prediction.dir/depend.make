# Empty dependencies file for bench_fig7_time_prediction.
# This may be replaced when dependencies are built.
