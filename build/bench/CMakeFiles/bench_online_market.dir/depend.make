# Empty dependencies file for bench_online_market.
# This may be replaced when dependencies are built.
