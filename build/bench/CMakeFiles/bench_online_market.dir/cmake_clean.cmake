file(REMOVE_RECURSE
  "CMakeFiles/bench_online_market.dir/bench_online_market.cc.o"
  "CMakeFiles/bench_online_market.dir/bench_online_market.cc.o.d"
  "bench_online_market"
  "bench_online_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
