file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_error_boxplots.dir/bench_fig8_error_boxplots.cc.o"
  "CMakeFiles/bench_fig8_error_boxplots.dir/bench_fig8_error_boxplots.cc.o.d"
  "bench_fig8_error_boxplots"
  "bench_fig8_error_boxplots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_error_boxplots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
