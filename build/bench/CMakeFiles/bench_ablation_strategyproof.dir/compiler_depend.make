# Empty compiler generated dependencies file for bench_ablation_strategyproof.
# This may be replaced when dependencies are built.
