file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_strategyproof.dir/bench_ablation_strategyproof.cc.o"
  "CMakeFiles/bench_ablation_strategyproof.dir/bench_ablation_strategyproof.cc.o.d"
  "bench_ablation_strategyproof"
  "bench_ablation_strategyproof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_strategyproof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
