file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lottery.dir/bench_ablation_lottery.cc.o"
  "CMakeFiles/bench_ablation_lottery.dir/bench_ablation_lottery.cc.o.d"
  "bench_ablation_lottery"
  "bench_ablation_lottery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lottery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
