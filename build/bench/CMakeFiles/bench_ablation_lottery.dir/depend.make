# Empty dependencies file for bench_ablation_lottery.
# This may be replaced when dependencies are built.
