# Empty compiler generated dependencies file for bench_fig2_expected_f.
# This may be replaced when dependencies are built.
