file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_quadratic.dir/bench_ablation_quadratic.cc.o"
  "CMakeFiles/bench_ablation_quadratic.dir/bench_ablation_quadratic.cc.o.d"
  "bench_ablation_quadratic"
  "bench_ablation_quadratic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_quadratic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
