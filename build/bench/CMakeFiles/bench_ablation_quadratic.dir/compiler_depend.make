# Empty compiler generated dependencies file for bench_ablation_quadratic.
# This may be replaced when dependencies are built.
