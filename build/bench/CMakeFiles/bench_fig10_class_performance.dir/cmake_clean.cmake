file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_class_performance.dir/bench_fig10_class_performance.cc.o"
  "CMakeFiles/bench_fig10_class_performance.dir/bench_fig10_class_performance.cc.o.d"
  "bench_fig10_class_performance"
  "bench_fig10_class_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_class_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
