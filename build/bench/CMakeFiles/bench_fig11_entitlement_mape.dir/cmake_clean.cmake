file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_entitlement_mape.dir/bench_fig11_entitlement_mape.cc.o"
  "CMakeFiles/bench_fig11_entitlement_mape.dir/bench_fig11_entitlement_mape.cc.o.d"
  "bench_fig11_entitlement_mape"
  "bench_fig11_entitlement_mape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_entitlement_mape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
