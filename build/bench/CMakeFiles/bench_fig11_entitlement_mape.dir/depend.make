# Empty dependencies file for bench_fig11_entitlement_mape.
# This may be replaced when dependencies are built.
