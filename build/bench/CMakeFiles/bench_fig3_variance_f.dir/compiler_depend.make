# Empty compiler generated dependencies file for bench_fig3_variance_f.
# This may be replaced when dependencies are built.
