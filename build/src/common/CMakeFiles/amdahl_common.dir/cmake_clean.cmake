file(REMOVE_RECURSE
  "CMakeFiles/amdahl_common.dir/csv.cc.o"
  "CMakeFiles/amdahl_common.dir/csv.cc.o.d"
  "CMakeFiles/amdahl_common.dir/logging.cc.o"
  "CMakeFiles/amdahl_common.dir/logging.cc.o.d"
  "CMakeFiles/amdahl_common.dir/random.cc.o"
  "CMakeFiles/amdahl_common.dir/random.cc.o.d"
  "CMakeFiles/amdahl_common.dir/stats.cc.o"
  "CMakeFiles/amdahl_common.dir/stats.cc.o.d"
  "CMakeFiles/amdahl_common.dir/table.cc.o"
  "CMakeFiles/amdahl_common.dir/table.cc.o.d"
  "libamdahl_common.a"
  "libamdahl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdahl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
