file(REMOVE_RECURSE
  "libamdahl_common.a"
)
