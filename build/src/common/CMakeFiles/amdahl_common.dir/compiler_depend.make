# Empty compiler generated dependencies file for amdahl_common.
# This may be replaced when dependencies are built.
