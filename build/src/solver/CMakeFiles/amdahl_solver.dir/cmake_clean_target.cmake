file(REMOVE_RECURSE
  "libamdahl_solver.a"
)
