
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/eisenberg_gale.cc" "src/solver/CMakeFiles/amdahl_solver.dir/eisenberg_gale.cc.o" "gcc" "src/solver/CMakeFiles/amdahl_solver.dir/eisenberg_gale.cc.o.d"
  "/root/repo/src/solver/interior_point.cc" "src/solver/CMakeFiles/amdahl_solver.dir/interior_point.cc.o" "gcc" "src/solver/CMakeFiles/amdahl_solver.dir/interior_point.cc.o.d"
  "/root/repo/src/solver/linear_model.cc" "src/solver/CMakeFiles/amdahl_solver.dir/linear_model.cc.o" "gcc" "src/solver/CMakeFiles/amdahl_solver.dir/linear_model.cc.o.d"
  "/root/repo/src/solver/root_find.cc" "src/solver/CMakeFiles/amdahl_solver.dir/root_find.cc.o" "gcc" "src/solver/CMakeFiles/amdahl_solver.dir/root_find.cc.o.d"
  "/root/repo/src/solver/water_filling.cc" "src/solver/CMakeFiles/amdahl_solver.dir/water_filling.cc.o" "gcc" "src/solver/CMakeFiles/amdahl_solver.dir/water_filling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/amdahl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
