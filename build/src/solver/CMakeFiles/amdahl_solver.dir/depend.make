# Empty dependencies file for amdahl_solver.
# This may be replaced when dependencies are built.
