file(REMOVE_RECURSE
  "CMakeFiles/amdahl_solver.dir/eisenberg_gale.cc.o"
  "CMakeFiles/amdahl_solver.dir/eisenberg_gale.cc.o.d"
  "CMakeFiles/amdahl_solver.dir/interior_point.cc.o"
  "CMakeFiles/amdahl_solver.dir/interior_point.cc.o.d"
  "CMakeFiles/amdahl_solver.dir/linear_model.cc.o"
  "CMakeFiles/amdahl_solver.dir/linear_model.cc.o.d"
  "CMakeFiles/amdahl_solver.dir/root_find.cc.o"
  "CMakeFiles/amdahl_solver.dir/root_find.cc.o.d"
  "CMakeFiles/amdahl_solver.dir/water_filling.cc.o"
  "CMakeFiles/amdahl_solver.dir/water_filling.cc.o.d"
  "libamdahl_solver.a"
  "libamdahl_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdahl_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
