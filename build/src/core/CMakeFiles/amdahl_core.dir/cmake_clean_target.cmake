file(REMOVE_RECURSE
  "libamdahl_core.a"
)
