
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/amdahl.cc" "src/core/CMakeFiles/amdahl_core.dir/amdahl.cc.o" "gcc" "src/core/CMakeFiles/amdahl_core.dir/amdahl.cc.o.d"
  "/root/repo/src/core/bidding.cc" "src/core/CMakeFiles/amdahl_core.dir/bidding.cc.o" "gcc" "src/core/CMakeFiles/amdahl_core.dir/bidding.cc.o.d"
  "/root/repo/src/core/ces_market.cc" "src/core/CMakeFiles/amdahl_core.dir/ces_market.cc.o" "gcc" "src/core/CMakeFiles/amdahl_core.dir/ces_market.cc.o.d"
  "/root/repo/src/core/entitlement.cc" "src/core/CMakeFiles/amdahl_core.dir/entitlement.cc.o" "gcc" "src/core/CMakeFiles/amdahl_core.dir/entitlement.cc.o.d"
  "/root/repo/src/core/market.cc" "src/core/CMakeFiles/amdahl_core.dir/market.cc.o" "gcc" "src/core/CMakeFiles/amdahl_core.dir/market.cc.o.d"
  "/root/repo/src/core/market_io.cc" "src/core/CMakeFiles/amdahl_core.dir/market_io.cc.o" "gcc" "src/core/CMakeFiles/amdahl_core.dir/market_io.cc.o.d"
  "/root/repo/src/core/rounding.cc" "src/core/CMakeFiles/amdahl_core.dir/rounding.cc.o" "gcc" "src/core/CMakeFiles/amdahl_core.dir/rounding.cc.o.d"
  "/root/repo/src/core/utility.cc" "src/core/CMakeFiles/amdahl_core.dir/utility.cc.o" "gcc" "src/core/CMakeFiles/amdahl_core.dir/utility.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/amdahl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/amdahl_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
