# Empty compiler generated dependencies file for amdahl_core.
# This may be replaced when dependencies are built.
