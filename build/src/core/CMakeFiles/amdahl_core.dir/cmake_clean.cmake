file(REMOVE_RECURSE
  "CMakeFiles/amdahl_core.dir/amdahl.cc.o"
  "CMakeFiles/amdahl_core.dir/amdahl.cc.o.d"
  "CMakeFiles/amdahl_core.dir/bidding.cc.o"
  "CMakeFiles/amdahl_core.dir/bidding.cc.o.d"
  "CMakeFiles/amdahl_core.dir/ces_market.cc.o"
  "CMakeFiles/amdahl_core.dir/ces_market.cc.o.d"
  "CMakeFiles/amdahl_core.dir/entitlement.cc.o"
  "CMakeFiles/amdahl_core.dir/entitlement.cc.o.d"
  "CMakeFiles/amdahl_core.dir/market.cc.o"
  "CMakeFiles/amdahl_core.dir/market.cc.o.d"
  "CMakeFiles/amdahl_core.dir/market_io.cc.o"
  "CMakeFiles/amdahl_core.dir/market_io.cc.o.d"
  "CMakeFiles/amdahl_core.dir/rounding.cc.o"
  "CMakeFiles/amdahl_core.dir/rounding.cc.o.d"
  "CMakeFiles/amdahl_core.dir/utility.cc.o"
  "CMakeFiles/amdahl_core.dir/utility.cc.o.d"
  "libamdahl_core.a"
  "libamdahl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdahl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
