file(REMOVE_RECURSE
  "libamdahl_profiling.a"
)
