# Empty dependencies file for amdahl_profiling.
# This may be replaced when dependencies are built.
