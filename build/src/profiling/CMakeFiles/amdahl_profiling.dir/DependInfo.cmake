
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/karp_flatt.cc" "src/profiling/CMakeFiles/amdahl_profiling.dir/karp_flatt.cc.o" "gcc" "src/profiling/CMakeFiles/amdahl_profiling.dir/karp_flatt.cc.o.d"
  "/root/repo/src/profiling/predictor.cc" "src/profiling/CMakeFiles/amdahl_profiling.dir/predictor.cc.o" "gcc" "src/profiling/CMakeFiles/amdahl_profiling.dir/predictor.cc.o.d"
  "/root/repo/src/profiling/profiler.cc" "src/profiling/CMakeFiles/amdahl_profiling.dir/profiler.cc.o" "gcc" "src/profiling/CMakeFiles/amdahl_profiling.dir/profiler.cc.o.d"
  "/root/repo/src/profiling/sampler.cc" "src/profiling/CMakeFiles/amdahl_profiling.dir/sampler.cc.o" "gcc" "src/profiling/CMakeFiles/amdahl_profiling.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/amdahl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/amdahl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amdahl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/amdahl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
