file(REMOVE_RECURSE
  "CMakeFiles/amdahl_profiling.dir/karp_flatt.cc.o"
  "CMakeFiles/amdahl_profiling.dir/karp_flatt.cc.o.d"
  "CMakeFiles/amdahl_profiling.dir/predictor.cc.o"
  "CMakeFiles/amdahl_profiling.dir/predictor.cc.o.d"
  "CMakeFiles/amdahl_profiling.dir/profiler.cc.o"
  "CMakeFiles/amdahl_profiling.dir/profiler.cc.o.d"
  "CMakeFiles/amdahl_profiling.dir/sampler.cc.o"
  "CMakeFiles/amdahl_profiling.dir/sampler.cc.o.d"
  "libamdahl_profiling.a"
  "libamdahl_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdahl_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
