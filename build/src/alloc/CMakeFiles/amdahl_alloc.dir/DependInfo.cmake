
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/amdahl_bidding_policy.cc" "src/alloc/CMakeFiles/amdahl_alloc.dir/amdahl_bidding_policy.cc.o" "gcc" "src/alloc/CMakeFiles/amdahl_alloc.dir/amdahl_bidding_policy.cc.o.d"
  "/root/repo/src/alloc/best_response.cc" "src/alloc/CMakeFiles/amdahl_alloc.dir/best_response.cc.o" "gcc" "src/alloc/CMakeFiles/amdahl_alloc.dir/best_response.cc.o.d"
  "/root/repo/src/alloc/greedy.cc" "src/alloc/CMakeFiles/amdahl_alloc.dir/greedy.cc.o" "gcc" "src/alloc/CMakeFiles/amdahl_alloc.dir/greedy.cc.o.d"
  "/root/repo/src/alloc/lottery.cc" "src/alloc/CMakeFiles/amdahl_alloc.dir/lottery.cc.o" "gcc" "src/alloc/CMakeFiles/amdahl_alloc.dir/lottery.cc.o.d"
  "/root/repo/src/alloc/placement.cc" "src/alloc/CMakeFiles/amdahl_alloc.dir/placement.cc.o" "gcc" "src/alloc/CMakeFiles/amdahl_alloc.dir/placement.cc.o.d"
  "/root/repo/src/alloc/policy.cc" "src/alloc/CMakeFiles/amdahl_alloc.dir/policy.cc.o" "gcc" "src/alloc/CMakeFiles/amdahl_alloc.dir/policy.cc.o.d"
  "/root/repo/src/alloc/proportional_fairness.cc" "src/alloc/CMakeFiles/amdahl_alloc.dir/proportional_fairness.cc.o" "gcc" "src/alloc/CMakeFiles/amdahl_alloc.dir/proportional_fairness.cc.o.d"
  "/root/repo/src/alloc/proportional_share.cc" "src/alloc/CMakeFiles/amdahl_alloc.dir/proportional_share.cc.o" "gcc" "src/alloc/CMakeFiles/amdahl_alloc.dir/proportional_share.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/amdahl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/amdahl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/amdahl_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
