file(REMOVE_RECURSE
  "libamdahl_alloc.a"
)
