# Empty dependencies file for amdahl_alloc.
# This may be replaced when dependencies are built.
