file(REMOVE_RECURSE
  "CMakeFiles/amdahl_alloc.dir/amdahl_bidding_policy.cc.o"
  "CMakeFiles/amdahl_alloc.dir/amdahl_bidding_policy.cc.o.d"
  "CMakeFiles/amdahl_alloc.dir/best_response.cc.o"
  "CMakeFiles/amdahl_alloc.dir/best_response.cc.o.d"
  "CMakeFiles/amdahl_alloc.dir/greedy.cc.o"
  "CMakeFiles/amdahl_alloc.dir/greedy.cc.o.d"
  "CMakeFiles/amdahl_alloc.dir/lottery.cc.o"
  "CMakeFiles/amdahl_alloc.dir/lottery.cc.o.d"
  "CMakeFiles/amdahl_alloc.dir/placement.cc.o"
  "CMakeFiles/amdahl_alloc.dir/placement.cc.o.d"
  "CMakeFiles/amdahl_alloc.dir/policy.cc.o"
  "CMakeFiles/amdahl_alloc.dir/policy.cc.o.d"
  "CMakeFiles/amdahl_alloc.dir/proportional_fairness.cc.o"
  "CMakeFiles/amdahl_alloc.dir/proportional_fairness.cc.o.d"
  "CMakeFiles/amdahl_alloc.dir/proportional_share.cc.o"
  "CMakeFiles/amdahl_alloc.dir/proportional_share.cc.o.d"
  "libamdahl_alloc.a"
  "libamdahl_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdahl_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
