# Empty dependencies file for amdahl_sim.
# This may be replaced when dependencies are built.
