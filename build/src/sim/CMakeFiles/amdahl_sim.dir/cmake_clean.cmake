file(REMOVE_RECURSE
  "CMakeFiles/amdahl_sim.dir/analytical.cc.o"
  "CMakeFiles/amdahl_sim.dir/analytical.cc.o.d"
  "CMakeFiles/amdahl_sim.dir/interference.cc.o"
  "CMakeFiles/amdahl_sim.dir/interference.cc.o.d"
  "CMakeFiles/amdahl_sim.dir/server.cc.o"
  "CMakeFiles/amdahl_sim.dir/server.cc.o.d"
  "CMakeFiles/amdahl_sim.dir/task_sim.cc.o"
  "CMakeFiles/amdahl_sim.dir/task_sim.cc.o.d"
  "CMakeFiles/amdahl_sim.dir/workload.cc.o"
  "CMakeFiles/amdahl_sim.dir/workload.cc.o.d"
  "CMakeFiles/amdahl_sim.dir/workload_library.cc.o"
  "CMakeFiles/amdahl_sim.dir/workload_library.cc.o.d"
  "libamdahl_sim.a"
  "libamdahl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdahl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
