
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/analytical.cc" "src/sim/CMakeFiles/amdahl_sim.dir/analytical.cc.o" "gcc" "src/sim/CMakeFiles/amdahl_sim.dir/analytical.cc.o.d"
  "/root/repo/src/sim/interference.cc" "src/sim/CMakeFiles/amdahl_sim.dir/interference.cc.o" "gcc" "src/sim/CMakeFiles/amdahl_sim.dir/interference.cc.o.d"
  "/root/repo/src/sim/server.cc" "src/sim/CMakeFiles/amdahl_sim.dir/server.cc.o" "gcc" "src/sim/CMakeFiles/amdahl_sim.dir/server.cc.o.d"
  "/root/repo/src/sim/task_sim.cc" "src/sim/CMakeFiles/amdahl_sim.dir/task_sim.cc.o" "gcc" "src/sim/CMakeFiles/amdahl_sim.dir/task_sim.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/amdahl_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/amdahl_sim.dir/workload.cc.o.d"
  "/root/repo/src/sim/workload_library.cc" "src/sim/CMakeFiles/amdahl_sim.dir/workload_library.cc.o" "gcc" "src/sim/CMakeFiles/amdahl_sim.dir/workload_library.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/amdahl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
