file(REMOVE_RECURSE
  "libamdahl_sim.a"
)
