
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/characterization.cc" "src/eval/CMakeFiles/amdahl_eval.dir/characterization.cc.o" "gcc" "src/eval/CMakeFiles/amdahl_eval.dir/characterization.cc.o.d"
  "/root/repo/src/eval/deployment.cc" "src/eval/CMakeFiles/amdahl_eval.dir/deployment.cc.o" "gcc" "src/eval/CMakeFiles/amdahl_eval.dir/deployment.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/amdahl_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/amdahl_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/amdahl_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/amdahl_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/online.cc" "src/eval/CMakeFiles/amdahl_eval.dir/online.cc.o" "gcc" "src/eval/CMakeFiles/amdahl_eval.dir/online.cc.o.d"
  "/root/repo/src/eval/population.cc" "src/eval/CMakeFiles/amdahl_eval.dir/population.cc.o" "gcc" "src/eval/CMakeFiles/amdahl_eval.dir/population.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/amdahl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/amdahl_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/amdahl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/amdahl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/amdahl_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/amdahl_alloc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
