file(REMOVE_RECURSE
  "libamdahl_eval.a"
)
