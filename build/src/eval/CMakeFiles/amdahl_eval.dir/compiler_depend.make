# Empty compiler generated dependencies file for amdahl_eval.
# This may be replaced when dependencies are built.
