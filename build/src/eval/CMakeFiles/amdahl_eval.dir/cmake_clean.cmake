file(REMOVE_RECURSE
  "CMakeFiles/amdahl_eval.dir/characterization.cc.o"
  "CMakeFiles/amdahl_eval.dir/characterization.cc.o.d"
  "CMakeFiles/amdahl_eval.dir/deployment.cc.o"
  "CMakeFiles/amdahl_eval.dir/deployment.cc.o.d"
  "CMakeFiles/amdahl_eval.dir/experiment.cc.o"
  "CMakeFiles/amdahl_eval.dir/experiment.cc.o.d"
  "CMakeFiles/amdahl_eval.dir/metrics.cc.o"
  "CMakeFiles/amdahl_eval.dir/metrics.cc.o.d"
  "CMakeFiles/amdahl_eval.dir/online.cc.o"
  "CMakeFiles/amdahl_eval.dir/online.cc.o.d"
  "CMakeFiles/amdahl_eval.dir/population.cc.o"
  "CMakeFiles/amdahl_eval.dir/population.cc.o.d"
  "libamdahl_eval.a"
  "libamdahl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdahl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
