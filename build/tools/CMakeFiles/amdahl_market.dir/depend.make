# Empty dependencies file for amdahl_market.
# This may be replaced when dependencies are built.
