file(REMOVE_RECURSE
  "CMakeFiles/amdahl_market.dir/amdahl_market.cc.o"
  "CMakeFiles/amdahl_market.dir/amdahl_market.cc.o.d"
  "amdahl_market"
  "amdahl_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amdahl_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
