# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_example "/root/repo/build/tools/amdahl_market" "example")
set_tests_properties(cli_example PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_workloads "/root/repo/build/tools/amdahl_market" "workloads")
set_tests_properties(cli_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/amdahl_market" "profile" "kmeans")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/amdahl_market" "simulate" "dedup" "16")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_solve "/root/repo/build/tools/amdahl_market" "solve" "/root/repo/build/tools/example_market.txt")
set_tests_properties(cli_solve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_solve_gauss_seidel "/root/repo/build/tools/amdahl_market" "solve" "/root/repo/build/tools/example_market.txt" "--gauss-seidel" "--fractional" "--epsilon" "1e-8")
set_tests_properties(cli_solve_gauss_seidel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/amdahl_market" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
