#!/usr/bin/env bash
# Run the repo clang-tidy gate over the full first-party source tree.
#
# Usage: tools/run_clang_tidy.sh [build-dir]
#
#   build-dir  Directory holding compile_commands.json (default: build).
#              Configured automatically when missing.
#
# Exit status: 0 when every translation unit is clean; non-zero on
# any finding, because .clang-tidy promotes all warnings to errors.
# When clang-tidy is not installed the gate is advisory on developer
# machines (exit 0 with a notice) but hard in CI (exit 1 when $CI is
# set): a gate that silently skips where it matters is no gate.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

find_clang_tidy() {
    local candidate
    for candidate in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
        if command -v "$candidate" > /dev/null 2>&1; then
            echo "$candidate"
            return 0
        fi
    done
    return 1
}

if ! tidy=$(find_clang_tidy); then
    if [ -n "${CI:-}" ]; then
        echo "run_clang_tidy: clang-tidy not found on PATH in CI;" >&2
        echo "run_clang_tidy: the analysis job must install it" \
             "(apt-get install clang-tidy) — failing the gate" >&2
        exit 1
    fi
    echo "run_clang_tidy: clang-tidy not found on PATH; skipping gate" >&2
    echo "run_clang_tidy: install clang-tidy (>= 14) to run it locally" >&2
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_clang_tidy: configuring $build_dir for a compilation database"
    cmake -S "$repo_root" -B "$build_dir" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

# Every first-party translation unit under src/ — including the
# execution layer in src/exec/, whose lock-discipline code is exactly
# where the concurrency checks earn their keep. Tests and benches are
# linted by compiler warnings only (gtest/benchmark macros are noisy
# under several bugprone checks).
mapfile -t sources < <(find "$repo_root/src" -name '*.cc' | sort)
if [ "${#sources[@]}" -eq 0 ]; then
    echo "run_clang_tidy: no sources found under src/" >&2
    exit 1
fi

echo "run_clang_tidy: $tidy over ${#sources[@]} files ($build_dir)"
status=0
jobs=$(nproc 2> /dev/null || echo 4)
printf '%s\n' "${sources[@]}" |
    xargs -P "$jobs" -n 4 "$tidy" -p "$build_dir" --quiet || status=$?

if [ "$status" -ne 0 ]; then
    echo "run_clang_tidy: FAILED — fix the findings or, for a" >&2
    echo "third-party false positive, add a NOLINT with a reason." >&2
    exit "$status"
fi
echo "run_clang_tidy: clean"
