#!/usr/bin/env python3
"""Gate the amdahl_lint baseline ledger: no entry without receipts.

The baseline grandfathers lint findings, so the one way to defeat the
linter silently would be appending entries to it. This check makes
that impossible to do quietly:

  * every entry line must parse as ``rule|file|squashed-line-text``;
  * every entry must sit in a comment block containing a ``# why:``
    justification (a blank line ends a block);
  * every rule id must come from the linter's own catalog, taken from
    ``amdahl_lint --list-rules`` when a binary is given (so this
    script can never drift from the C++ rule table), with a static
    fallback list otherwise;
  * every referenced file must exist — an entry for a deleted file is
    stale, and stale entries are debt this gate refuses to carry.

Usage: check_lint_baseline.py [baseline] [--repo-root DIR]
                              [--lint-binary PATH]
"""

import argparse
import pathlib
import subprocess
import sys

FALLBACK_RULES = {
    "DET-rand", "DET-clock", "DET-exec", "DET-unordered",
    "TRUST-throw", "TRUST-catch", "OBS-io", "CONC-global", "META-alint",
}


def rule_ids(lint_binary):
    if lint_binary is None:
        return FALLBACK_RULES
    out = subprocess.run([lint_binary, "--list-rules"],
                         capture_output=True, text=True, check=True)
    ids = {line.split()[0] for line in out.stdout.splitlines()
           if line and not line.startswith(" ")}
    if not ids:
        raise SystemExit(f"{lint_binary} --list-rules printed no rules")
    return ids


def check(baseline_path, repo_root, known_rules):
    errors = []
    block_justified = False
    entries = 0
    for line_no, raw in enumerate(
            baseline_path.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line:
            block_justified = False
            continue
        if line.startswith("#"):
            if line.startswith("# why:") and line[6:].strip():
                block_justified = True
            continue
        entries += 1
        parts = raw.split("|", 2)
        if len(parts) != 3 or not all(p.strip() for p in parts):
            errors.append(f"line {line_no}: entry must be "
                          f"'rule|file|line-text', got: {raw!r}")
            continue
        rule, rel_file, _text = (p.strip() for p in parts)
        if not block_justified:
            errors.append(
                f"line {line_no}: entry '{rule}|{rel_file}' has no "
                f"'# why:' justification in its comment block — the "
                f"baseline must not grow without receipts")
        if rule not in known_rules:
            errors.append(f"line {line_no}: unknown rule id '{rule}' "
                          f"(known: {', '.join(sorted(known_rules))})")
        if not (repo_root / rel_file).is_file():
            errors.append(f"line {line_no}: baselined file "
                          f"'{rel_file}' does not exist — delete the "
                          f"stale entry")
    return entries, errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?",
                        default="tools/lint/amdahl_lint.baseline",
                        type=pathlib.Path)
    parser.add_argument("--repo-root", default=".", type=pathlib.Path)
    parser.add_argument("--lint-binary", default=None,
                        help="amdahl_lint binary for --list-rules "
                             "(fallback: built-in rule list)")
    args = parser.parse_args()

    if not args.baseline.is_file():
        print(f"check_lint_baseline: no baseline at {args.baseline}; "
              f"nothing to check")
        return 0

    entries, errors = check(args.baseline, args.repo_root,
                            rule_ids(args.lint_binary))
    for error in errors:
        print(f"check_lint_baseline: {args.baseline}: {error}",
              file=sys.stderr)
    if errors:
        return 1
    print(f"check_lint_baseline: {entries} entr"
          f"{'y' if entries == 1 else 'ies'}, all justified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
