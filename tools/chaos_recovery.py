#!/usr/bin/env python3
"""Chaos-recovery harness: SIGKILL-grade crash injection + equivalence.

Drives the amdahl_market CLI through the full kill-point catalog and
checks the durability layer's strongest contract end to end, at the
process level:

  1. A golden, uninterrupted trace run pins the expected output.
  2. A durable (journaled + snapshotted) run must reproduce the golden
     trace byte for byte — durability must not perturb the simulation.
  3. For every site in the commit-protocol kill catalog (and a later
     occurrence of each, to land mid-run rather than on the first
     epoch), a fresh durable run is started with that kill point armed.
     The process must die there with the dedicated exit code 86.
  4. The same command is re-run with --recover. It must exit 0, and the
     finished trace file and the final snapshot must be byte-identical
     to the uninterrupted run's.
  5. One double-crash scenario kills the *recovery* run too, then
     recovers again — recovery must be idempotent under repeated
     failure.

Any deviation (wrong exit code, a kill point never reached, a byte
difference) is a hard failure. The harness is deterministic: fixed
seeds, fixed scenario, no time- or randomness-dependent behavior.

Usage: chaos_recovery.py <path-to-amdahl_market> [--workdir DIR]
"""

import argparse
import filecmp
import shutil
import subprocess
import sys
from pathlib import Path

KILL_EXIT_CODE = 86
EPOCHS = 18
SNAPSHOT_EVERY = 4

SCENARIO = [
    "trace",
    "--epochs", str(EPOCHS),
    "--users", "8",
    "--servers", "3",
    "--faults",
    "--admission",
    "--log-level", "quiet",
]


def run(binary, extra, trace_out):
    cmd = [str(binary)] + SCENARIO + ["--trace-out", str(trace_out)] + extra
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE, text=True)
    return proc


def durable_args(state_dir, recover=False, kill=None):
    args = ["--state-dir", str(state_dir),
            "--snapshot-every", str(SNAPSHOT_EVERY)]
    if recover:
        args.append("--recover")
    if kill:
        args += ["--kill-point", kill]
    return args


def final_snapshot(state_dir):
    return Path(state_dir) / f"snapshot-{EPOCHS:08d}.amss"


def fail(msg, proc=None):
    print(f"FAIL: {msg}", file=sys.stderr)
    if proc is not None and proc.stderr:
        print(proc.stderr, file=sys.stderr)
    sys.exit(1)


def expect_identical(path_a, path_b, what):
    if not filecmp.cmp(path_a, path_b, shallow=False):
        fail(f"{what}: {path_a} differs from {path_b}")


def kill_catalog(binary):
    proc = subprocess.run([str(binary), "trace", "--list-kill-points"],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        fail("--list-kill-points failed", proc)
    sites = [line.strip() for line in proc.stdout.splitlines()
             if line.strip()]
    if len(sites) < 8:
        fail(f"implausibly small kill-point catalog: {sites}")
    return sites


def check_killed(proc, spec):
    if proc.returncode == 0:
        fail(f"kill point {spec} was never reached (run completed)")
    if proc.returncode != KILL_EXIT_CODE:
        fail(f"kill point {spec}: expected exit {KILL_EXIT_CODE}, "
             f"got {proc.returncode}", proc)


def recover_and_verify(binary, work, state, trace, golden_trace,
                       golden_snapshot, label):
    proc = run(binary, durable_args(state, recover=True), trace)
    if proc.returncode != 0:
        fail(f"{label}: recovery exited {proc.returncode}", proc)
    expect_identical(trace, golden_trace, f"{label}: trace")
    expect_identical(final_snapshot(state), golden_snapshot,
                     f"{label}: final snapshot")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("binary", type=Path)
    parser.add_argument("--workdir", type=Path,
                        default=Path("chaos_recovery_work"))
    opts = parser.parse_args()
    if not opts.binary.exists():
        fail(f"no such binary: {opts.binary}")

    work = opts.workdir
    shutil.rmtree(work, ignore_errors=True)
    work.mkdir(parents=True)

    sites = kill_catalog(opts.binary)

    # 1. Golden uninterrupted run, no durability.
    golden_trace = work / "golden.jsonl"
    proc = run(opts.binary, [], golden_trace)
    if proc.returncode != 0:
        fail("golden run failed", proc)

    # 2. Durable uninterrupted run: same trace, and it pins the
    #    expected final snapshot bytes.
    durable_state = work / "durable_state"
    durable_trace = work / "durable.jsonl"
    proc = run(opts.binary, durable_args(durable_state), durable_trace)
    if proc.returncode != 0:
        fail("durable run failed", proc)
    expect_identical(durable_trace, golden_trace,
                     "durable run must not perturb the trace")
    golden_snapshot = final_snapshot(durable_state)
    if not golden_snapshot.exists():
        fail(f"durable run left no final snapshot {golden_snapshot}")

    # 3 + 4. Kill matrix: first occurrence and a mid-run occurrence of
    #        every catalogued site.
    checked = 0
    for site in sites:
        for occurrence in (1, 3):
            spec = f"{site}:{occurrence}"
            tag = spec.replace(".", "_").replace(":", "_")
            state = work / f"state_{tag}"
            trace = work / f"trace_{tag}.jsonl"
            check_killed(
                run(opts.binary, durable_args(state, kill=spec), trace),
                spec)
            recover_and_verify(opts.binary, work, state, trace,
                               golden_trace, golden_snapshot,
                               f"kill {spec}")
            checked += 1
            print(f"ok: {spec} killed and recovered", flush=True)

    # 5. Double crash: the recovery run is itself killed, then the
    #    second recovery must still converge to the golden bytes.
    state = work / "state_double"
    trace = work / "trace_double.jsonl"
    check_killed(
        run(opts.binary,
            durable_args(state, kill="epoch.post_commit:6"), trace),
        "epoch.post_commit:6")
    check_killed(
        run(opts.binary,
            durable_args(state, recover=True,
                         kill="snapshot.pre_rename:1"), trace),
        "snapshot.pre_rename:1 (during recovery)")
    recover_and_verify(opts.binary, work, state, trace, golden_trace,
                       golden_snapshot, "double crash")
    print("ok: double crash recovered", flush=True)

    print(f"chaos-recovery: {checked} kill/recover cycles + 1 double "
          f"crash, all byte-identical to the uninterrupted run")


if __name__ == "__main__":
    main()
