#!/usr/bin/env python3
"""Compare two benchmark JSON artifacts produced by bench::emitJson.

Each artifact is a TablePrinter JSON dump: an array of row objects
whose values are all strings (numbers formatted by the bench, possibly
suffixed with '%' or embedded in specs like '1:16'). This tool diffs a
baseline against a candidate:

  - Rows pair up by position (bench tables emit rows in a fixed,
    deterministic sweep order); pass --key COL to pair by labeled
    sweep coordinates instead, making row order irrelevant.
  - Numeric cells compare within a tolerance: relative by default,
    absolute for values near zero. Percent signs are stripped before
    comparison.
  - Non-numeric cells (e.g. 'Converged': 'yes') must match exactly.
  - Missing or extra rows/columns are always failures.

Exit status: 0 when everything matches within tolerance, 1 on any
regression, 2 on usage/IO errors. Intended for CI jobs that pin a
golden network-ablation run and for local before/after comparisons.

Usage: bench_compare.py baseline.json candidate.json [--rel-tol R]
       [--abs-tol A] [--key COL ...]
"""

import argparse
import json
import sys
from pathlib import Path


def fail_usage(message):
    print(f"bench_compare: {message}", file=sys.stderr)
    sys.exit(2)


def load_rows(path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as err:
        fail_usage(f"cannot read {path}: {err}")
    except json.JSONDecodeError as err:
        fail_usage(f"{path} is not valid JSON: {err}")
    if not isinstance(doc, list) or not all(
        isinstance(row, dict) for row in doc
    ):
        fail_usage(f"{path}: expected an array of row objects")
    return doc


def parse_number(text):
    """Return the float value of a cell, or None if it is not numeric.

    Accepts plain numbers and percent-suffixed numbers ('47.5%').
    Compound specs such as '1:16' stay non-numeric on purpose: they
    are sweep coordinates, not measurements.
    """
    stripped = text.strip()
    if stripped.endswith("%"):
        stripped = stripped[:-1].strip()
    try:
        return float(stripped)
    except ValueError:
        return None


def row_key(row, keys, index):
    if not keys:
        return ("#row", index)
    return tuple(str(row.get(column, "")) for column in keys)


def index_rows(rows, keys, path):
    table = {}
    for i, row in enumerate(rows):
        key = row_key(row, keys, i)
        if key in table:
            fail_usage(
                f"{path}: duplicate row key {key}; pass --key to "
                "choose distinguishing columns"
            )
        table[key] = row
    return table


def compare(baseline, candidate, keys, rel_tol, abs_tol):
    problems = []
    base_table = index_rows(baseline, keys, "baseline")
    cand_table = index_rows(candidate, keys, "candidate")

    for key in base_table:
        if key not in cand_table:
            problems.append(f"row {key}: missing from candidate")
    for key in cand_table:
        if key not in base_table:
            problems.append(f"row {key}: not in baseline")

    for key, base_row in base_table.items():
        cand_row = cand_table.get(key)
        if cand_row is None:
            continue
        for column, base_cell in base_row.items():
            if column not in cand_row:
                problems.append(f"row {key}: column '{column}' missing")
                continue
            cand_cell = cand_row[column]
            base_num = parse_number(str(base_cell))
            cand_num = parse_number(str(cand_cell))
            if base_num is None or cand_num is None:
                if str(base_cell) != str(cand_cell):
                    problems.append(
                        f"row {key}, '{column}': "
                        f"'{base_cell}' != '{cand_cell}'"
                    )
                continue
            delta = abs(cand_num - base_num)
            allowed = max(abs_tol, rel_tol * abs(base_num))
            if delta > allowed:
                problems.append(
                    f"row {key}, '{column}': {base_num} -> "
                    f"{cand_num} (|delta| {delta:.6g} > "
                    f"allowed {allowed:.6g})"
                )
        for column in cand_row:
            if column not in base_row:
                problems.append(
                    f"row {key}: unexpected column '{column}'"
                )
    return problems


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench::emitJson artifacts with "
        "numeric tolerance."
    )
    parser.add_argument("baseline", type=Path)
    parser.add_argument("candidate", type=Path)
    parser.add_argument(
        "--rel-tol",
        type=float,
        default=0.05,
        help="relative tolerance for numeric cells (default 0.05)",
    )
    parser.add_argument(
        "--abs-tol",
        type=float,
        default=1e-9,
        help="absolute tolerance floor for numeric cells",
    )
    parser.add_argument(
        "--key",
        action="append",
        default=None,
        metavar="COL",
        help="row-identifying column (repeatable); default: pair "
        "rows by position",
    )
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    candidate = load_rows(args.candidate)
    if not baseline:
        fail_usage(f"{args.baseline}: baseline has no rows")

    keys = args.key or []
    problems = compare(
        baseline, candidate, keys, args.rel_tol, args.abs_tol
    )
    if problems:
        print(
            f"bench_compare: {len(problems)} difference(s) vs "
            f"{args.baseline}:",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        sys.exit(1)
    print(
        f"bench_compare: {len(baseline)} row(s) match within "
        f"rel {args.rel_tol}, abs {args.abs_tol}"
    )
    sys.exit(0)


if __name__ == "__main__":
    main()
