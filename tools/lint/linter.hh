/**
 * @file
 * amdahl_lint driver: file discovery, the per-file pipeline, and
 * report formatting.
 *
 * The scan set is the first-party code the contracts govern — `src/`,
 * `tools/`, and `bench/` under the repo root, every `.cc` and `.hh`,
 * in sorted order so reports (and the JSON the CI job archives) are
 * deterministic. Tests are deliberately out of scope: they exercise
 * violations on purpose (tests/lint/fixtures is a corpus of them).
 */

#ifndef AMDAHL_LINT_LINTER_HH
#define AMDAHL_LINT_LINTER_HH

#include <string>
#include <vector>

#include "common/status.hh"

#include "baseline.hh"
#include "rules.hh"

namespace amdahl::lint {

/** Outcome of one lint run. */
struct LintReport
{
    std::vector<Finding> findings; //!< Sorted by file, then line.
    int filesScanned = 0;
    /** Baseline entries that matched nothing — candidates for
     *  deletion, reported but never fatal. */
    std::vector<BaselineEntry> staleBaseline;
};

/** Tallies derived from a report. */
struct FindingCounts
{
    int total = 0;
    int suppressed = 0;
    int baselined = 0;
    int active = 0; //!< Neither suppressed nor baselined.
};

FindingCounts countFindings(const LintReport &report);

/**
 * @return The default scan set: every `.cc`/`.hh` under
 * `<root>/{src,tools,bench}` as sorted repo-relative paths. Missing
 * subtrees are skipped (fixture roots rarely have all three).
 */
std::vector<std::string> discoverFiles(const std::string &root);

/**
 * Lint @p relPaths (repo-relative, forward slashes) under @p root.
 *
 * @return The report, or a Status if a listed file cannot be read
 * (discovered files exist; an explicit path that does not is a
 * caller error worth failing loudly on).
 */
Result<LintReport> lintFiles(const std::string &root,
                             const std::vector<std::string> &relPaths,
                             Baseline baseline);

/** Render `file:line: [rule] message` lines plus a summary. */
std::string formatHuman(const LintReport &report, bool showSilenced);

/** Render the machine-readable report (schema in DESIGN.md §12). */
std::string formatJson(const LintReport &report);

} // namespace amdahl::lint

#endif // AMDAHL_LINT_LINTER_HH
