/**
 * @file
 * The amdahl_lint baseline: grandfathered findings, with receipts.
 *
 * A new rule landing on an old codebase surfaces findings that are
 * deliberate (the anytime deadline in core/bidding.cc reads the wall
 * clock *by design*). Fixing the build by weakening the rule would
 * also stop it catching new violations; fixing it by sprinkling
 * inline suppressions buries one-line judgments in production files.
 * The baseline is the third option: a checked-in ledger of accepted
 * findings, each carrying a written justification, that `--strict`
 * subtracts before failing. New code never starts baselined, so the
 * rule still bites everywhere it should.
 *
 * Format (one entry per line, `#` comments, blank lines ignored):
 *
 *     # why: <justification for the entries below>
 *     <rule>|<repo-relative file>|<whitespace-squashed source line>
 *
 * Matching is by rule + file + squashed line *text*, not line number,
 * so unrelated edits above the finding do not invalidate the entry —
 * but any edit to the offending line itself forces re-triage. Every
 * entry must be preceded by a `# why:` line in its comment block;
 * tools/check_lint_baseline.py enforces that in CI, so the baseline
 * cannot grow without justification.
 */

#ifndef AMDAHL_LINT_BASELINE_HH
#define AMDAHL_LINT_BASELINE_HH

#include <string>
#include <vector>

#include "common/status.hh"

#include "rules.hh"

namespace amdahl::lint {

/** One accepted finding from the baseline file. */
struct BaselineEntry
{
    std::string rule;
    std::string file;
    std::string squashedLine;
    int sourceLine = 0;   //!< Line in the baseline file, for errors.
    bool justified = false; //!< A `# why:` preceded it.
    bool used = false;      //!< Matched at least one finding this run.
};

/** The parsed baseline ledger. */
struct Baseline
{
    std::vector<BaselineEntry> entries;
};

/** @return @p text with whitespace runs collapsed to single spaces
 *  and outer whitespace trimmed — the line form entries match on. */
std::string squashWhitespace(std::string_view text);

/**
 * Parse baseline @p content (the file's text).
 *
 * @return The ledger, or a Status naming the first malformed line.
 */
Result<Baseline> parseBaseline(const std::string &content);

/**
 * Read and parse the baseline at @p path. A missing file is an empty
 * baseline, not an error (new checkouts and fixture runs have none).
 */
Result<Baseline> loadBaseline(const std::string &path);

/**
 * Mark every finding matched by @p baseline (sets
 * Finding::baselined) and every entry that matched (sets
 * BaselineEntry::used, so stale entries are reportable).
 */
void applyBaseline(Baseline &baseline, std::vector<Finding> &findings);

} // namespace amdahl::lint

#endif // AMDAHL_LINT_BASELINE_HH
