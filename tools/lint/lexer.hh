/**
 * @file
 * A minimal C++ lexer for amdahl_lint.
 *
 * The linter's rules are lexical: they look for identifiers (`throw`,
 * `steady_clock`, `rand`), punctuation shapes (a range-for's `:`, a
 * catch clause's missing `&`), and scope structure (namespace-level
 * declarations). None of that needs a semantic front end, but all of
 * it needs to *not* fire on comments, string literals, or the bodies
 * of preprocessor directives — a grep-based lint drowns in false
 * positives the moment a doc comment says "never call rand()". This
 * lexer therefore does exactly the part of translation phases 1-3
 * that matters: it strips comments, strings, char literals (including
 * raw strings and digit separators), and preprocessor directives, and
 * emits a flat token stream with line numbers.
 *
 * Comments are not discarded entirely: `// ALINT(rule): reason`
 * suppression annotations live in them, so the lexer parses every
 * comment for ALINT markers and reports them alongside the tokens.
 * A marker that does not match the required shape is reported as
 * malformed rather than silently ignored — an unreadable suppression
 * must never accidentally suppress.
 */

#ifndef AMDAHL_LINT_LEXER_HH
#define AMDAHL_LINT_LEXER_HH

#include <string>
#include <string_view>
#include <vector>

namespace amdahl::lint {

/** Lexical class of one token. */
enum class TokKind
{
    Identifier, //!< Identifiers and keywords (the lexer does not split them).
    Number,     //!< Integer and floating literals, digit separators included.
    String,     //!< String literal (ordinary or raw), prefix included.
    CharLit,    //!< Character literal.
    Punct,      //!< Operators and punctuation, longest-match.
};

/** One token with its 1-based source line. */
struct Token
{
    TokKind kind;
    std::string text;
    int line;
};

/**
 * One `ALINT(rule): reason` marker found in a comment.
 *
 * `line` is the line the marker appears on. Whether the suppression
 * covers that line only or also the next code line is the rule
 * engine's decision (see rules.cc); the lexer just reports position
 * and shape.
 */
struct Suppression
{
    int line;
    std::string rule;   //!< Rule id inside the parens; empty when malformed.
    std::string reason; //!< Justification after the colon; may be empty.
    bool malformed;     //!< Marker present but not `ALINT(rule): reason`.
};

/** Everything the rule engine needs from one source file. */
struct LexedFile
{
    std::vector<Token> tokens;
    std::vector<Suppression> suppressions;
    std::vector<std::string> lines; //!< Raw source lines, for snippets.
};

/**
 * Lex @p source. Never fails: unterminated literals are tolerated by
 * closing them at end of input (the compiler will reject the file; the
 * linter should still report what it can).
 */
LexedFile lex(std::string_view source);

} // namespace amdahl::lint

#endif // AMDAHL_LINT_LEXER_HH
