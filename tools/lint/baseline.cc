#include "baseline.hh"

#include <fstream>
#include <sstream>

namespace amdahl::lint {

std::string
squashWhitespace(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    bool pendingSpace = false;
    for (const char c : text) {
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            pendingSpace = !out.empty();
            continue;
        }
        if (pendingSpace) {
            out += ' ';
            pendingSpace = false;
        }
        out += c;
    }
    return out;
}

Result<Baseline>
parseBaseline(const std::string &content)
{
    Baseline baseline;
    std::istringstream in(content);
    std::string line;
    int lineNo = 0;
    // A `# why:` justifies every entry until the next blank line ends
    // its comment block.
    bool blockJustified = false;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string squashed = squashWhitespace(line);
        if (squashed.empty()) {
            blockJustified = false;
            continue;
        }
        if (squashed[0] == '#') {
            if (squashed.rfind("# why:", 0) == 0 &&
                squashed.size() > 6)
                blockJustified = true;
            continue;
        }
        const std::size_t bar1 = line.find('|');
        const std::size_t bar2 =
            bar1 == std::string::npos ? std::string::npos
                                      : line.find('|', bar1 + 1);
        if (bar2 == std::string::npos) {
            return Status::error(
                ErrorKind::ParseError, lineNo,
                "baseline entry needs `rule|file|line-text`, got '",
                line, "'");
        }
        BaselineEntry entry;
        entry.rule = squashWhitespace(line.substr(0, bar1));
        entry.file =
            squashWhitespace(line.substr(bar1 + 1, bar2 - bar1 - 1));
        entry.squashedLine = squashWhitespace(line.substr(bar2 + 1));
        entry.sourceLine = lineNo;
        entry.justified = blockJustified;
        if (entry.rule.empty() || entry.file.empty() ||
            entry.squashedLine.empty()) {
            return Status::error(
                ErrorKind::ParseError, lineNo,
                "baseline entry has an empty field: '", line, "'");
        }
        baseline.entries.push_back(std::move(entry));
    }
    return baseline;
}

Result<Baseline>
loadBaseline(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open())
        return Baseline{}; // Absent baseline == empty baseline.
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        return Status::error(ErrorKind::IoError, 0,
                             "cannot read baseline '", path, "'");
    }
    return parseBaseline(buffer.str());
}

void
applyBaseline(Baseline &baseline, std::vector<Finding> &findings)
{
    for (Finding &f : findings) {
        if (f.suppressed)
            continue;
        const std::string squashed = squashWhitespace(f.snippet);
        for (BaselineEntry &entry : baseline.entries) {
            if (entry.rule == f.rule && entry.file == f.file &&
                entry.squashedLine == squashed) {
                f.baselined = true;
                entry.used = true;
                break;
            }
        }
    }
}

} // namespace amdahl::lint
