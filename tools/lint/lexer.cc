#include "lexer.hh"

#include <cctype>

namespace amdahl::lint {

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentBody(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Multi-character punctuators the rules care to see whole, longest
 * first so greedy matching picks the right one. Everything else lexes
 * as a single character, which is all the rule engine needs.
 */
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=",
    "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "++", "--",
};

/** Split @p source into raw lines (no terminators), for snippets. */
std::vector<std::string>
splitLines(std::string_view source)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= source.size(); ++i) {
        if (i == source.size() || source[i] == '\n') {
            std::string_view line = source.substr(start, i - start);
            if (!line.empty() && line.back() == '\r')
                line.remove_suffix(1);
            lines.emplace_back(line);
            start = i + 1;
        }
    }
    if (!lines.empty() && lines.back().empty() && !source.empty() &&
        source.back() == '\n')
        lines.pop_back();
    return lines;
}

/**
 * Parse every ALINT marker inside one comment's text. The accepted
 * shape is `ALINT(rule-id): reason`, reason non-empty — anything else
 * that still says ALINT is reported as malformed so a typo cannot
 * silently fail to suppress (or worse, look like it did).
 */
void
parseAlint(std::string_view comment, int line,
           std::vector<Suppression> &out)
{
    // Only `ALINT(` opens a marker; the bare word in prose ("carry an
    // ALINT annotation") is not one. A marker that opens but does not
    // finish as `(rule): reason` is reported malformed — a typo must
    // never silently fail to suppress.
    std::size_t pos = 0;
    while ((pos = comment.find("ALINT(", pos)) !=
           std::string_view::npos) {
        // Count the lines preceding the marker inside a block comment.
        int markerLine = line;
        for (std::size_t i = 0; i < pos; ++i)
            if (comment[i] == '\n')
                ++markerLine;

        const std::size_t cursor = pos + 5; // At the '('.
        pos = cursor; // Resume the search after this marker either way.
        Suppression sup{markerLine, "", "", true};
        const std::size_t close = comment.find(')', cursor);
        if (close != std::string_view::npos) {
            std::string rule(
                comment.substr(cursor + 1, close - cursor - 1));
            std::size_t after = close + 1;
            if (after < comment.size() && comment[after] == ':') {
                ++after;
                // The reason runs to the end of the comment line.
                std::size_t end = comment.find('\n', after);
                if (end == std::string_view::npos)
                    end = comment.size();
                std::string reason(comment.substr(after, end - after));
                // Trim the reason; it must say something.
                while (!reason.empty() && reason.front() == ' ')
                    reason.erase(reason.begin());
                while (!reason.empty() &&
                       (reason.back() == ' ' || reason.back() == '/' ||
                        reason.back() == '*'))
                    reason.pop_back();
                if (!rule.empty() && !reason.empty())
                    sup = Suppression{markerLine, std::move(rule),
                                      std::move(reason), false};
            }
        }
        out.push_back(std::move(sup));
    }
}

} // namespace

LexedFile
lex(std::string_view source)
{
    LexedFile file;
    file.lines = splitLines(source);

    const std::size_t n = source.size();
    std::size_t i = 0;
    int line = 1;
    bool atLineStart = true; // Only whitespace so far on this line.

    auto advanceOver = [&](char c) {
        if (c == '\n') {
            ++line;
            atLineStart = true;
        }
    };

    while (i < n) {
        const char c = source[i];

        if (c == '\n' || c == ' ' || c == '\t' || c == '\r' ||
            c == '\f' || c == '\v') {
            advanceOver(c);
            ++i;
            continue;
        }

        // Preprocessor directive: swallow to end of line, honouring
        // backslash continuations. Directive bodies are invisible to
        // the rules (macro definitions are linted where they expand in
        // this repo's style, and `#include <random>` is not an *use*).
        if (c == '#' && atLineStart) {
            while (i < n) {
                if (source[i] == '\\' && i + 1 < n &&
                    (source[i + 1] == '\n' ||
                     (source[i + 1] == '\r' && i + 2 < n &&
                      source[i + 2] == '\n'))) {
                    i += source[i + 1] == '\r' ? 3 : 2;
                    ++line;
                    continue;
                }
                if (source[i] == '\n') {
                    ++line;
                    ++i;
                    break;
                }
                ++i;
            }
            atLineStart = true;
            continue;
        }
        atLineStart = false;

        // Line comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            std::size_t end = i + 2;
            while (end < n && source[end] != '\n')
                ++end;
            parseAlint(source.substr(i + 2, end - i - 2), line,
                       file.suppressions);
            i = end;
            continue;
        }

        // Block comment.
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            std::size_t end = i + 2;
            const int startLine = line;
            int newlines = 0;
            while (end + 1 < n &&
                   !(source[end] == '*' && source[end + 1] == '/')) {
                if (source[end] == '\n')
                    ++newlines;
                ++end;
            }
            const std::size_t bodyEnd = end + 1 < n ? end : n;
            parseAlint(source.substr(i + 2, bodyEnd - i - 2), startLine,
                       file.suppressions);
            line += newlines;
            i = end + 1 < n ? end + 2 : n;
            continue;
        }

        // Raw string literal: (prefix)R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
            std::size_t d = i + 2;
            std::string delim;
            while (d < n && source[d] != '(')
                delim += source[d++];
            const std::string close = ")" + delim + "\"";
            std::size_t end = source.find(close, d);
            if (end == std::string_view::npos)
                end = n;
            else
                end += close.size();
            for (std::size_t k = i; k < end && k < n; ++k)
                if (source[k] == '\n')
                    ++line;
            file.tokens.push_back({TokKind::String, "<raw-string>", line});
            i = end;
            continue;
        }

        // Ordinary string / char literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            const int startLine = line;
            std::size_t end = i + 1;
            while (end < n && source[end] != quote) {
                if (source[end] == '\\' && end + 1 < n)
                    ++end;
                if (source[end] == '\n')
                    ++line;
                ++end;
            }
            file.tokens.push_back(
                {quote == '"' ? TokKind::String : TokKind::CharLit,
                 "<literal>", startLine});
            i = end < n ? end + 1 : n;
            continue;
        }

        // Number: digits plus exponents, hex, and digit separators.
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
            std::size_t end = i + 1;
            while (end < n) {
                const char d = source[end];
                if (std::isalnum(static_cast<unsigned char>(d)) ||
                    d == '.' || d == '\'') {
                    ++end;
                    continue;
                }
                if ((d == '+' || d == '-') &&
                    (source[end - 1] == 'e' || source[end - 1] == 'E' ||
                     source[end - 1] == 'p' || source[end - 1] == 'P')) {
                    ++end;
                    continue;
                }
                break;
            }
            file.tokens.push_back(
                {TokKind::Number, std::string(source.substr(i, end - i)),
                 line});
            i = end;
            continue;
        }

        // Identifier or keyword. A string prefix (u8"...", L"...")
        // immediately followed by a quote is re-handled as a literal.
        if (isIdentStart(c)) {
            std::size_t end = i + 1;
            while (end < n && isIdentBody(source[end]))
                ++end;
            if (end < n && (source[end] == '"' || source[end] == '\'')) {
                const std::string_view prefix = source.substr(i, end - i);
                if (prefix == "u8" || prefix == "u" || prefix == "U" ||
                    prefix == "L" || prefix == "u8R" || prefix == "uR" ||
                    prefix == "UR" || prefix == "LR") {
                    i = end; // Fall through to the literal on next loop.
                    continue;
                }
            }
            file.tokens.push_back(
                {TokKind::Identifier,
                 std::string(source.substr(i, end - i)), line});
            i = end;
            continue;
        }

        // Punctuation, longest match first.
        bool matched = false;
        for (const std::string_view p : kPuncts) {
            if (source.substr(i, p.size()) == p) {
                file.tokens.push_back(
                    {TokKind::Punct, std::string(p), line});
                i += p.size();
                matched = true;
                break;
            }
        }
        if (!matched) {
            file.tokens.push_back(
                {TokKind::Punct, std::string(1, c), line});
            ++i;
        }
    }

    return file;
}

} // namespace amdahl::lint
