/**
 * @file
 * The amdahl_lint rule catalog and per-file rule engine.
 *
 * Each rule enforces one clause of the repo's two load-bearing
 * contracts — determinism ("thread/shard count is a performance knob,
 * never a results knob") and the trust boundary ("all external input
 * crosses Status/Result") — plus the observability and concurrency
 * conventions that keep those contracts checkable:
 *
 *  DET-rand       std::rand / random_device / <random> engines and
 *                 distributions outside common/random. Engine *output*
 *                 is standardized but distribution output is
 *                 implementation-defined, so any use outside the
 *                 deterministic RNG wrapper breaks cross-stdlib
 *                 reproducibility. Scope: src/, bench/.
 *  DET-clock      system_clock / steady_clock / C time reads outside
 *                 obs/ (which never lets timings into results) and
 *                 exec/ (which owns scheduling). A clock read anywhere
 *                 else is a nondeterminism source feeding results.
 *                 Scope: src/.
 *  DET-exec       hardware_concurrency / thread::get_id / getenv
 *                 outside exec/. Machine shape and environment must
 *                 enter through the one audited knob (AMDAHL_THREADS
 *                 via exec::threadCount), never ad hoc. Scope: src/.
 *  DET-unordered  Range-for over an unordered_map/unordered_set whose
 *                 body accumulates (+=, push_back, ...). Hash-table
 *                 iteration order is unspecified, so such reductions
 *                 are reduction-order hazards in the deterministic
 *                 kernels. Scope: src/core/, src/solver/, src/eval/.
 *  DET-simd       Vector intrinsics (_mm… or __m… names) or an intrinsics
 *                 header (<immintrin.h> family) outside the one
 *                 designated kernel TU. core/bidding_simd.cc carries
 *                 the proven bit-identity contract with the scalar
 *                 reference (elementwise correctly-rounded ops, no
 *                 FMA, serial semantic folds); an intrinsic anywhere
 *                 else has no such contract. Scope: src/, bench/;
 *                 allow: src/core/bidding_simd.*.
 *  TRUST-throw    A literal `throw` outside common/logging.hh (the
 *                 single place fatal()/panic() raise their typed
 *                 errors). Ingestion and parse paths must return
 *                 Result<T>/Status instead. Scope: src/, tools/.
 *  TRUST-catch    catch-by-value: a catch clause that is neither
 *                 by-reference nor `...`. Slicing a FatalError down to
 *                 std::exception loses the taxonomy the boundary
 *                 promises. Scope: everywhere scanned.
 *  OBS-io         Direct std::cerr/std::cout/printf-family output in
 *                 library code. Diagnostics must route through the
 *                 common/logging hook so the obs/ trace sink observes
 *                 them. Scope: src/.
 *  TRUST-fio      Raw file IO (fopen-family, ofstream/fstream,
 *                 rename) outside its designated owners. Durable
 *                 artifacts must go through robustness/durability
 *                 (fsync + atomic-rename commit protocol) or one of
 *                 the audited sinks (the amdahl_market CLI, the bench
 *                 emitters) so write failures surface as Status
 *                 instead of silently losing data. Scope: src/,
 *                 bench/, tools/; allow: src/robustness/durability/,
 *                 bench/bench_util.hh, tools/amdahl_market.cc,
 *                 tools/lint/.
 *  CONC-global    Mutable namespace-scope state that is not atomic,
 *                 a synchronization primitive, thread_local, or
 *                 explicitly ALINT-annotated as externally guarded.
 *                 Scope: src/.
 *  META-alint     An ALINT marker that does not parse as
 *                 `ALINT(rule): reason`. A suppression must name its
 *                 rule and justify itself, or it is itself a finding.
 *                 Scope: everywhere scanned.
 *
 * Findings can be silenced two ways: an inline
 * `// ALINT(rule): reason` on the offending line (or the whole-line
 * comment directly above it), or an entry in the checked-in baseline
 * for grandfathered findings (see baseline.hh). `--strict` fails only
 * on findings that are neither.
 */

#ifndef AMDAHL_LINT_RULES_HH
#define AMDAHL_LINT_RULES_HH

#include <string>
#include <vector>

#include "lexer.hh"

namespace amdahl::lint {

/** One rule violation at one source location. */
struct Finding
{
    std::string rule;    //!< Rule id, e.g. "DET-clock".
    std::string file;    //!< Repo-relative path, forward slashes.
    int line;            //!< 1-based source line.
    std::string message; //!< What is wrong and what to do instead.
    std::string snippet; //!< Trimmed source line text.
    bool suppressed = false; //!< Silenced by an inline ALINT marker.
    bool baselined = false;  //!< Matched a baseline entry.
};

/** Static description of one rule, for --list-rules and the docs. */
struct RuleInfo
{
    const char *id;
    const char *summary;
};

/** @return The catalog of rules, in reporting order. */
const std::vector<RuleInfo> &ruleCatalog();

/**
 * Run every applicable rule over one lexed file.
 *
 * @param relPath Repo-relative path with forward slashes; rules use it
 *        to decide applicability (scope and allowlist prefixes).
 * @param file The lexed token stream, suppressions, and raw lines.
 * @return Findings with `suppressed` already resolved against the
 *         file's ALINT markers; baseline matching is the caller's job.
 */
std::vector<Finding> runRules(const std::string &relPath,
                              const LexedFile &file);

} // namespace amdahl::lint

#endif // AMDAHL_LINT_RULES_HH
