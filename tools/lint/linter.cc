#include "linter.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/json.hh"

namespace amdahl::lint {

namespace fs = std::filesystem;

namespace {

Result<std::string>
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        return Status::error(ErrorKind::IoError, 0, "cannot open '",
                             path.string(), "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
        return Status::error(ErrorKind::IoError, 0, "cannot read '",
                             path.string(), "'");
    }
    return buffer.str();
}

bool
isLintable(const fs::path &path)
{
    const std::string ext = path.extension().string();
    return ext == ".cc" || ext == ".hh";
}

} // namespace

std::vector<std::string>
discoverFiles(const std::string &root)
{
    std::vector<std::string> files;
    for (const char *subtree : {"src", "tools", "bench"}) {
        const fs::path base = fs::path(root) / subtree;
        std::error_code ec;
        if (!fs::is_directory(base, ec))
            continue;
        for (fs::recursive_directory_iterator it(base, ec), end;
             !ec && it != end; it.increment(ec)) {
            if (it->is_regular_file(ec) && isLintable(it->path())) {
                files.push_back(fs::relative(it->path(), root, ec)
                                    .generic_string());
            }
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

FindingCounts
countFindings(const LintReport &report)
{
    FindingCounts counts;
    for (const Finding &f : report.findings) {
        ++counts.total;
        if (f.suppressed)
            ++counts.suppressed;
        else if (f.baselined)
            ++counts.baselined;
        else
            ++counts.active;
    }
    return counts;
}

Result<LintReport>
lintFiles(const std::string &root,
          const std::vector<std::string> &relPaths, Baseline baseline)
{
    LintReport report;
    for (const std::string &rel : relPaths) {
        auto content = readFile(fs::path(root) / rel);
        if (!content.ok())
            return content.status();
        const LexedFile lexed = lex(content.value());
        std::vector<Finding> findings = runRules(rel, lexed);
        report.findings.insert(report.findings.end(),
                               std::make_move_iterator(findings.begin()),
                               std::make_move_iterator(findings.end()));
        ++report.filesScanned;
    }
    applyBaseline(baseline, report.findings);
    for (const BaselineEntry &entry : baseline.entries) {
        if (!entry.used)
            report.staleBaseline.push_back(entry);
    }
    return report;
}

std::string
formatHuman(const LintReport &report, bool showSilenced)
{
    std::ostringstream out;
    for (const Finding &f : report.findings) {
        const bool silenced = f.suppressed || f.baselined;
        if (silenced && !showSilenced)
            continue;
        out << f.file << ':' << f.line << ": [" << f.rule << "] "
            << f.message;
        if (f.suppressed)
            out << " (suppressed)";
        else if (f.baselined)
            out << " (baselined)";
        out << "\n    " << f.snippet << '\n';
    }
    for (const BaselineEntry &entry : report.staleBaseline) {
        out << "note: stale baseline entry (matched nothing): "
            << entry.rule << '|' << entry.file << '|'
            << entry.squashedLine << '\n';
    }
    const FindingCounts counts = countFindings(report);
    out << "amdahl_lint: " << report.filesScanned << " files, "
        << counts.total << " finding(s): " << counts.active
        << " active, " << counts.baselined << " baselined, "
        << counts.suppressed << " suppressed\n";
    return out.str();
}

std::string
formatJson(const LintReport &report)
{
    const FindingCounts counts = countFindings(report);
    std::string out = "{\"version\":1,\"findings\":[";
    bool first = true;
    for (const Finding &f : report.findings) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"rule\":";
        appendJsonEscaped(out, f.rule);
        out += ",\"file\":";
        appendJsonEscaped(out, f.file);
        out += ",\"line\":" + std::to_string(f.line);
        out += ",\"message\":";
        appendJsonEscaped(out, f.message);
        out += ",\"snippet\":";
        appendJsonEscaped(out, f.snippet);
        out += ",\"suppressed\":";
        out += f.suppressed ? "true" : "false";
        out += ",\"baselined\":";
        out += f.baselined ? "true" : "false";
        out += '}';
    }
    out += "],\"staleBaseline\":[";
    first = true;
    for (const BaselineEntry &entry : report.staleBaseline) {
        if (!first)
            out += ',';
        first = false;
        out += "{\"rule\":";
        appendJsonEscaped(out, entry.rule);
        out += ",\"file\":";
        appendJsonEscaped(out, entry.file);
        out += '}';
    }
    out += "],\"counts\":{\"total\":" + std::to_string(counts.total);
    out += ",\"active\":" + std::to_string(counts.active);
    out += ",\"baselined\":" + std::to_string(counts.baselined);
    out += ",\"suppressed\":" + std::to_string(counts.suppressed);
    out += "},\"filesScanned\":" + std::to_string(report.filesScanned);
    out += "}";
    return out;
}

} // namespace amdahl::lint
