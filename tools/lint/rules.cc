#include "rules.hh"

#include <algorithm>
#include <cstddef>
#include <string_view>
#include <unordered_set> // ALINT(DET-unordered): lookup-only sets; nothing iterates them into an accumulation.

namespace amdahl::lint {

namespace {

// ---------------------------------------------------------------------
// Path scoping.

/** @return true when @p rel lives under the directory prefix @p dir. */
bool
underPrefix(std::string_view rel, std::string_view prefix)
{
    return rel.size() >= prefix.size() &&
           rel.substr(0, prefix.size()) == prefix;
}

/**
 * Scope spec for one rule: the rule fires only for files under one of
 * `scopes` (empty = every scanned file) and never for files under one
 * of `allow` (the designated owners of the construct).
 */
struct RuleScope
{
    std::vector<std::string_view> scopes;
    std::vector<std::string_view> allow;
};

bool
applies(const RuleScope &scope, std::string_view rel)
{
    if (!scope.scopes.empty() &&
        std::none_of(scope.scopes.begin(), scope.scopes.end(),
                     [&](std::string_view s) {
                         return underPrefix(rel, s);
                     }))
        return false;
    return std::none_of(scope.allow.begin(), scope.allow.end(),
                        [&](std::string_view a) {
                            return underPrefix(rel, a);
                        });
}

const RuleScope kScopeDetRand{{"src/", "bench/"}, {"src/common/random."}};
// Only the timer (src/obs/timer.*) may read wall clocks inside obs/:
// the span and trace layers carry virtual ticks exclusively, so a
// clock read there is a determinism bug, not telemetry.
const RuleScope kScopeDetClock{{"src/"},
                               {"src/obs/timer", "src/exec/"}};
const RuleScope kScopeDetExec{{"src/"}, {"src/exec/"}};
const RuleScope kScopeDetUnordered{
    {"src/core/", "src/solver/", "src/eval/"}, {}};
// Vector intrinsics live in exactly one translation unit
// (src/core/bidding_simd.cc, plus its header's declarations), where
// the bit-identity argument — elementwise correctly-rounded ops, no
// FMA, serial semantic folds — is written down and tested. An
// intrinsic anywhere else has no such contract and silently breaks
// the default build's byte-identity across -DAMDAHL_SIMD values.
const RuleScope kScopeDetSimd{{"src/", "bench/"},
                              {"src/core/bidding_simd."}};
const RuleScope kScopeTrustThrow{{"src/", "tools/"},
                                 {"src/common/logging.hh"}};
const RuleScope kScopeTrustCatch{{}, {}};
const RuleScope kScopeObsIo{{"src/"}, {"src/common/logging.cc"}};
// Raw file IO is confined to the crash-safe durability layer plus the
// two designated artifact sinks (CLI, bench emitters). The linter's
// own file loading is exempt: it is a read-only dev tool.
const RuleScope kScopeTrustFio{
    {"src/", "bench/", "tools/"},
    {"src/robustness/durability/", "bench/bench_util.hh",
     "tools/amdahl_market.cc", "tools/lint/"}};
const RuleScope kScopeConcGlobal{{"src/"}, {}};
// The linter's own sources document the marker grammar in comments,
// which would read as malformed markers; they are the one place
// allowed to spell it.
const RuleScope kScopeMetaAlint{{}, {"tools/lint/"}};

// ---------------------------------------------------------------------
// Token helpers.

bool
isPunct(const Token &t, std::string_view text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

bool
isIdent(const Token &t, std::string_view text)
{
    return t.kind == TokKind::Identifier && t.text == text;
}

/** @return Index of the matching close for the open paren at @p open. */
std::size_t
matchParen(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (isPunct(toks[i], "("))
            ++depth;
        else if (isPunct(toks[i], ")") && --depth == 0)
            return i;
    }
    return toks.size();
}

/** @return Index of the matching close for the open brace at @p open. */
std::size_t
matchBrace(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (isPunct(toks[i], "{"))
            ++depth;
        else if (isPunct(toks[i], "}") && --depth == 0)
            return i;
    }
    return toks.size();
}

// ---------------------------------------------------------------------
// Finding construction.

struct RuleContext
{
    const std::string &relPath;
    const LexedFile &file;
    std::vector<Finding> &out;
};

void
report(RuleContext &ctx, const char *rule, int line, std::string message)
{
    std::string snippet;
    if (line >= 1 &&
        static_cast<std::size_t>(line) <= ctx.file.lines.size()) {
        std::string_view s = ctx.file.lines[line - 1];
        while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
            s.remove_prefix(1);
        while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
            s.remove_suffix(1);
        snippet = std::string(s);
    }
    ctx.out.push_back(Finding{rule, ctx.relPath, line,
                              std::move(message), std::move(snippet)});
}

// ---------------------------------------------------------------------
// DET-rand: nondeterministic or stdlib-dependent randomness.

const std::unordered_set<std::string_view> kRandEngines{
    "srand", "random_device", "mt19937", "mt19937_64", "minstd_rand",
    "minstd_rand0", "ranlux24", "ranlux48", "ranlux24_base",
    "ranlux48_base", "knuth_b", "default_random_engine",
};

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

void
checkDetRand(RuleContext &ctx)
{
    const auto &toks = ctx.file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier)
            continue;
        const bool isRandCall =
            t.text == "rand" &&
            ((i + 1 < toks.size() && isPunct(toks[i + 1], "(")) ||
             (i > 0 && isPunct(toks[i - 1], "::")));
        if (isRandCall || kRandEngines.count(t.text) > 0 ||
            endsWith(t.text, "_distribution")) {
            report(ctx, "DET-rand", t.line,
                   "randomness source `" + t.text +
                       "` outside common/random; use amdahl::Rng (or a "
                       "counter-based substream) so same-seed runs stay "
                       "byte-identical across standard libraries");
        }
    }
}

// ---------------------------------------------------------------------
// DET-clock: wall-clock reads outside obs/timer and exec/.

const std::unordered_set<std::string_view> kClockIdents{
    "system_clock",   "steady_clock", "high_resolution_clock",
    "clock_gettime",  "gettimeofday", "timespec_get",
};

void
checkDetClock(RuleContext &ctx)
{
    const auto &toks = ctx.file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != TokKind::Identifier)
            continue;
        const bool stdTimeCall =
            (t.text == "time" || t.text == "clock") && i >= 2 &&
            isPunct(toks[i - 1], "::") && isIdent(toks[i - 2], "std") &&
            i + 1 < toks.size() && isPunct(toks[i + 1], "(");
        if (kClockIdents.count(t.text) > 0 || stdTimeCall) {
            report(ctx, "DET-clock", t.line,
                   "clock read `" + t.text +
                       "` outside obs/timer and exec/; results must not "
                       "depend on wall time — route timing through "
                       "obs::ScopedTimer or justify with an ALINT");
        }
    }
}

// ---------------------------------------------------------------------
// DET-exec: machine-shape and environment probes outside exec/.

const std::unordered_set<std::string_view> kExecIdents{
    "hardware_concurrency", "get_id", "getenv", "secure_getenv",
};

void
checkDetExec(RuleContext &ctx)
{
    for (const Token &t : ctx.file.tokens) {
        if (t.kind == TokKind::Identifier && kExecIdents.count(t.text)) {
            report(ctx, "DET-exec", t.line,
                   "machine/environment probe `" + t.text +
                       "` outside exec/; thread count and environment "
                       "enter through exec::threadCount() so they stay "
                       "a performance knob, never a results knob");
        }
    }
}

// ---------------------------------------------------------------------
// DET-unordered: hash-order-dependent reductions.

const std::unordered_set<std::string_view> kUnorderedTypes{
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
};

const std::unordered_set<std::string_view> kAccumulatePunct{
    "+=", "-=", "*=", "/=", "|=", "&=", "^=",
};

const std::unordered_set<std::string_view> kAccumulateCalls{
    "push_back", "emplace_back", "append",
};

/**
 * Names of variables declared with an unordered container type in
 * this file. Declarations are recognized as `unordered_X < ...> name`,
 * with references/pointers tolerated between the template close and
 * the name. A `>>` token closes two template levels.
 */
std::unordered_set<std::string>
collectUnorderedNames(const std::vector<Token> &toks)
{
    std::unordered_set<std::string> names;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::Identifier ||
            kUnorderedTypes.count(toks[i].text) == 0)
            continue;
        std::size_t j = i + 1;
        if (j >= toks.size() || !isPunct(toks[j], "<"))
            continue;
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (isPunct(toks[j], "<"))
                ++depth;
            else if (isPunct(toks[j], ">"))
                --depth;
            else if (isPunct(toks[j], ">>"))
                depth -= 2;
            if (depth <= 0) {
                ++j;
                break;
            }
        }
        while (j < toks.size() &&
               (isPunct(toks[j], "&") || isPunct(toks[j], "*") ||
                isIdent(toks[j], "const")))
            ++j;
        if (j < toks.size() && toks[j].kind == TokKind::Identifier)
            names.insert(toks[j].text);
    }
    return names;
}

void
checkDetUnordered(RuleContext &ctx)
{
    const auto &toks = ctx.file.tokens;
    const auto names = collectUnorderedNames(toks);
    if (names.empty())
        return;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks[i], "for") || !isPunct(toks[i + 1], "("))
            continue;
        const std::size_t close = matchParen(toks, i + 1);
        if (close >= toks.size())
            continue;
        // A range-for has a top-level ':' inside the parens ('::' is a
        // distinct token, so a plain ':' is unambiguous).
        std::size_t colon = toks.size();
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
            if (isPunct(toks[j], "("))
                ++depth;
            else if (isPunct(toks[j], ")"))
                --depth;
            else if (depth == 1 && isPunct(toks[j], ":")) {
                colon = j;
                break;
            }
        }
        if (colon >= close)
            continue;
        bool overUnordered = false;
        std::string rangeName;
        for (std::size_t j = colon + 1; j < close; ++j) {
            if (toks[j].kind == TokKind::Identifier &&
                names.count(toks[j].text) > 0) {
                overUnordered = true;
                rangeName = toks[j].text;
                break;
            }
        }
        if (!overUnordered)
            continue;
        // Body: a braced block or a single statement.
        std::size_t bodyBegin = close + 1;
        std::size_t bodyEnd;
        if (bodyBegin < toks.size() && isPunct(toks[bodyBegin], "{")) {
            bodyEnd = matchBrace(toks, bodyBegin);
        } else {
            bodyEnd = bodyBegin;
            while (bodyEnd < toks.size() && !isPunct(toks[bodyEnd], ";"))
                ++bodyEnd;
        }
        for (std::size_t j = bodyBegin; j < bodyEnd && j < toks.size();
             ++j) {
            const bool accumulates =
                (toks[j].kind == TokKind::Punct &&
                 kAccumulatePunct.count(toks[j].text) > 0) ||
                (toks[j].kind == TokKind::Identifier &&
                 kAccumulateCalls.count(toks[j].text) > 0);
            if (accumulates) {
                report(ctx, "DET-unordered", toks[i].line,
                       "iteration over unordered container `" +
                           rangeName +
                           "` feeds an accumulation; hash order is "
                           "unspecified, so the reduction order (and "
                           "any float sum) varies by implementation — "
                           "iterate a sorted index instead");
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------
// DET-simd: vector intrinsics outside the designated kernel TU.

const std::unordered_set<std::string_view> kSimdHeaders{
    "immintrin.h", "x86intrin.h", "xmmintrin.h", "emmintrin.h",
    "pmmintrin.h", "smmintrin.h", "tmmintrin.h", "nmmintrin.h",
    "wmmintrin.h", "ammintrin.h", "avxintrin.h", "avx2intrin.h",
    "avx512fintrin.h", "arm_neon.h", "arm_sve.h",
};

const std::unordered_set<std::string_view> kSimdVectorTypes{
    "__m64",   "__m128", "__m128d", "__m128i", "__m256",
    "__m256d", "__m256i", "__m512", "__m512d", "__m512i",
};

bool
isIntrinsicName(std::string_view text)
{
    return text.substr(0, 4) == "_mm_" ||
           text.substr(0, 7) == "_mm256_" ||
           text.substr(0, 7) == "_mm512_" ||
           text.substr(0, 15) == "__builtin_ia32_" ||
           kSimdVectorTypes.count(text) > 0;
}

void
checkDetSimd(RuleContext &ctx)
{
    // The lexer strips preprocessor directives from the token stream,
    // so the include boundary is checked on the raw lines: a line
    // whose first non-blank character is '#' cannot be a comment or a
    // string, making the match exact enough to pin counts on.
    for (std::size_t n = 0; n < ctx.file.lines.size(); ++n) {
        std::string_view line = ctx.file.lines[n];
        while (!line.empty() &&
               (line.front() == ' ' || line.front() == '\t'))
            line.remove_prefix(1);
        if (line.empty() || line.front() != '#' ||
            line.find("include") == std::string_view::npos)
            continue;
        for (const std::string_view header : kSimdHeaders) {
            if (line.find(header) != std::string_view::npos) {
                report(ctx, "DET-simd", static_cast<int>(n + 1),
                       "intrinsics header <" + std::string(header) +
                           "> outside core/bidding_simd; vector code "
                           "is confined to the one kernel whose "
                           "bit-identity contract is proven and "
                           "pinned by tests");
                break;
            }
        }
    }
    for (const Token &t : ctx.file.tokens) {
        if (t.kind == TokKind::Identifier && isIntrinsicName(t.text)) {
            report(ctx, "DET-simd", t.line,
                   "vector intrinsic `" + t.text +
                       "` outside core/bidding_simd; an intrinsic "
                       "here has no bit-identity contract with the "
                       "scalar reference kernel — move it into the "
                       "designated TU or justify with an ALINT");
        }
    }
}

// ---------------------------------------------------------------------
// TRUST-throw / TRUST-catch.

void
checkTrustThrow(RuleContext &ctx)
{
    for (const Token &t : ctx.file.tokens) {
        if (isIdent(t, "throw")) {
            report(ctx, "TRUST-throw", t.line,
                   "`throw` outside the common/logging boundary; "
                   "ingestion and parse paths return Result<T>/Status, "
                   "internal errors go through fatal()/panic()");
        }
    }
}

void
checkTrustCatch(RuleContext &ctx)
{
    const auto &toks = ctx.file.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks[i], "catch") || !isPunct(toks[i + 1], "("))
            continue;
        const std::size_t close = matchParen(toks, i + 1);
        bool byRefOrAll = false;
        for (std::size_t j = i + 2; j < close; ++j) {
            if (isPunct(toks[j], "&") || isPunct(toks[j], "...")) {
                byRefOrAll = true;
                break;
            }
        }
        if (!byRefOrAll) {
            report(ctx, "TRUST-catch", toks[i].line,
                   "catch-by-value slices the error type; catch by "
                   "const reference (or `...` at a last-resort "
                   "boundary) so FatalError/PanicError keep their "
                   "taxonomy");
        }
    }
}

// ---------------------------------------------------------------------
// OBS-io: direct output in library code.

const std::unordered_set<std::string_view> kDirectIo{
    "cerr", "cout", "clog", "printf", "fprintf", "vprintf", "vfprintf",
    "puts", "fputs", "putchar", "fputc",
};

void
checkObsIo(RuleContext &ctx)
{
    for (const Token &t : ctx.file.tokens) {
        if (t.kind == TokKind::Identifier && kDirectIo.count(t.text)) {
            report(ctx, "OBS-io", t.line,
                   "direct output `" + t.text +
                       "` in library code; route diagnostics through "
                       "warn()/inform() so the logging hook and trace "
                       "sink observe them");
        }
    }
}

// ---------------------------------------------------------------------
// TRUST-fio: raw file IO outside the designated owners.

const std::unordered_set<std::string_view> kRawFileIo{
    "fopen", "freopen", "tmpfile", "ofstream", "fstream", "rename",
};

void
checkTrustFio(RuleContext &ctx)
{
    for (const Token &t : ctx.file.tokens) {
        if (t.kind == TokKind::Identifier && kRawFileIo.count(t.text)) {
            report(ctx, "TRUST-fio", t.line,
                   "raw file IO `" + t.text +
                       "` outside the designated IO owners; durable "
                       "artifacts go through robustness/durability "
                       "(fsync + atomic-rename commit protocol) or a "
                       "designated CLI/bench sink so a write failure "
                       "is surfaced, never silently torn or lost");
        }
    }
}

// ---------------------------------------------------------------------
// CONC-global: unguarded mutable namespace-scope state.

const std::unordered_set<std::string_view> kSyncTypes{
    "mutex",          "shared_mutex",      "recursive_mutex",
    "timed_mutex",    "recursive_timed_mutex",
    "once_flag",      "condition_variable", "condition_variable_any",
};

const std::unordered_set<std::string_view> kImmutableQualifiers{
    "const", "constexpr", "constinit", "thread_local",
};

const std::unordered_set<std::string_view> kNonVariableLeads{
    "using",    "typedef", "static_assert", "extern",  "template",
    "friend",   "operator", "class",        "struct",  "union",
    "enum",     "concept",  "requires",     "asm",
};

/**
 * Collect one statement starting at @p i: tokens up to a top-level
 * `;`, or through a balanced `{...}` group (function body, class
 * body, or brace initializer) plus its optional trailing `;`.
 * Pre-group tokens are appended to @p stmt — they carry the
 * qualifiers and type names the classifier needs.
 *
 * @return Index one past the statement.
 */
std::size_t
collectStatement(const std::vector<Token> &toks, std::size_t i,
                 std::vector<std::size_t> &stmt)
{
    int parens = 0;
    while (i < toks.size()) {
        const Token &t = toks[i];
        if (t.kind == TokKind::Punct) {
            if (t.text == "(") {
                ++parens;
            } else if (t.text == ")") {
                parens = parens > 0 ? parens - 1 : 0;
            } else if (t.text == "{" && parens == 0) {
                std::size_t end = matchBrace(toks, i);
                if (end < toks.size())
                    ++end;
                if (end < toks.size() && isPunct(toks[end], ";"))
                    ++end;
                return end;
            } else if (t.text == ";" && parens == 0) {
                return i + 1;
            }
        }
        stmt.push_back(i);
        ++i;
    }
    return i;
}

void
checkConcGlobal(RuleContext &ctx)
{
    const auto &toks = ctx.file.tokens;
    std::size_t i = 0;
    while (i < toks.size()) {
        const Token &t = toks[i];
        // Enter namespaces; everything else at namespace scope is a
        // statement (whose braced groups collectStatement skips), so
        // a bare '}' here is always a namespace close.
        if (isIdent(t, "namespace")) {
            std::size_t j = i + 1;
            while (j < toks.size() && !isPunct(toks[j], "{") &&
                   !isPunct(toks[j], ";") && !isPunct(toks[j], "="))
                ++j;
            if (j < toks.size() && isPunct(toks[j], "=")) {
                // Namespace alias: skip to ';'.
                while (j < toks.size() && !isPunct(toks[j], ";"))
                    ++j;
            }
            i = j + 1;
            continue;
        }
        if (isPunct(t, "}") || isPunct(t, ";")) {
            ++i;
            continue;
        }

        std::vector<std::size_t> stmt;
        const std::size_t next = collectStatement(toks, i, stmt);
        const int line = toks[i].line;
        i = next;
        if (stmt.empty())
            continue;

        const Token &lead = toks[stmt.front()];
        if (lead.kind == TokKind::Identifier &&
            kNonVariableLeads.count(lead.text) > 0)
            continue;

        bool sawParenFirst = false;
        bool immutable = false;
        bool synchronized = false;
        std::string varName;
        for (const std::size_t k : stmt) {
            const Token &s = toks[k];
            if (s.kind == TokKind::Punct) {
                if (s.text == "(") {
                    sawParenFirst = true;
                    break;
                }
                if (s.text == "=")
                    break; // Initializer: what follows is a value.
                continue;
            }
            if (s.kind != TokKind::Identifier)
                continue;
            if (s.text == "operator") {
                // Out-of-line operator definition: the '=' of
                // `T::operator=` is part of the name, not an
                // initializer.
                sawParenFirst = true;
                break;
            }
            if (kImmutableQualifiers.count(s.text) > 0)
                immutable = true;
            if (kSyncTypes.count(s.text) > 0 ||
                s.text.find("atomic") != std::string::npos)
                synchronized = true;
            varName = s.text; // Last identifier before '='/';' wins.
        }
        if (sawParenFirst || immutable || synchronized)
            continue;
        if (varName.empty())
            continue;
        report(ctx, "CONC-global", line,
               "mutable namespace-scope state `" + varName +
                   "` is neither atomic, a sync primitive, nor "
                   "thread_local; make it one of those or annotate the "
                   "external guard with an ALINT");
    }
}

// ---------------------------------------------------------------------
// META-alint: unreadable or unknown suppressions.

bool
isKnownRule(std::string_view id)
{
    if (id == "*")
        return true;
    for (const RuleInfo &info : ruleCatalog())
        if (id == info.id)
            return true;
    return false;
}

void
checkMetaAlint(RuleContext &ctx)
{
    for (const Suppression &sup : ctx.file.suppressions) {
        if (sup.malformed) {
            report(ctx, "META-alint", sup.line,
                   "unreadable ALINT marker; the required shape is "
                   "`ALINT(rule-id): reason` with a non-empty reason");
        } else if (!isKnownRule(sup.rule)) {
            report(ctx, "META-alint", sup.line,
                   "ALINT names unknown rule `" + sup.rule +
                       "`; see amdahl_lint --list-rules");
        }
    }
}

// ---------------------------------------------------------------------
// Suppression resolution.

/**
 * An inline suppression covers its own line and the following line,
 * so both styles work:
 *
 *     badCall(); // ALINT(RULE): reason
 *
 *     // ALINT(RULE): reason
 *     badCall();
 */
void
applySuppressions(const LexedFile &file, std::vector<Finding> &findings)
{
    for (Finding &f : findings) {
        if (f.rule == "META-alint")
            continue; // A marker cannot vouch for itself.
        for (const Suppression &sup : file.suppressions) {
            if (sup.malformed)
                continue;
            if (sup.rule != "*" && sup.rule != f.rule)
                continue;
            if (f.line == sup.line || f.line == sup.line + 1) {
                f.suppressed = true;
                break;
            }
        }
    }
}

} // namespace

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog{
        {"DET-rand",
         "randomness outside common/random (std::rand, random_device, "
         "<random> engines/distributions)"},
        {"DET-clock",
         "clock reads outside obs/timer and exec/ (system_clock, "
         "steady_clock, C time APIs)"},
        {"DET-exec",
         "machine/environment probes outside exec/ "
         "(hardware_concurrency, thread::get_id, getenv)"},
        {"DET-unordered",
         "range-for over an unordered container feeding an "
         "accumulation in core/, solver/, eval/"},
        {"DET-simd",
         "vector intrinsics or intrinsics headers outside "
         "core/bidding_simd, the one TU with a bit-identity "
         "contract"},
        {"TRUST-throw",
         "literal `throw` outside common/logging.hh; boundary code "
         "returns Result<T>/Status"},
        {"TRUST-catch",
         "catch-by-value; catch by const reference or `...`"},
        {"OBS-io",
         "direct std::cerr/std::cout/printf-family output in src/"},
        {"TRUST-fio",
         "raw file IO (fopen-family, ofstream/fstream, rename) "
         "outside the durability layer and designated sinks"},
        {"CONC-global",
         "mutable namespace-scope state that is not atomic, a sync "
         "primitive, or thread_local"},
        {"META-alint",
         "ALINT marker that is malformed or names an unknown rule"},
    };
    return catalog;
}

std::vector<Finding>
runRules(const std::string &relPath, const LexedFile &file)
{
    std::vector<Finding> findings;
    RuleContext ctx{relPath, file, findings};

    if (applies(kScopeDetRand, relPath))
        checkDetRand(ctx);
    if (applies(kScopeDetClock, relPath))
        checkDetClock(ctx);
    if (applies(kScopeDetExec, relPath))
        checkDetExec(ctx);
    if (applies(kScopeDetUnordered, relPath))
        checkDetUnordered(ctx);
    if (applies(kScopeDetSimd, relPath))
        checkDetSimd(ctx);
    if (applies(kScopeTrustThrow, relPath))
        checkTrustThrow(ctx);
    if (applies(kScopeTrustCatch, relPath))
        checkTrustCatch(ctx);
    if (applies(kScopeObsIo, relPath))
        checkObsIo(ctx);
    if (applies(kScopeTrustFio, relPath))
        checkTrustFio(ctx);
    if (applies(kScopeConcGlobal, relPath))
        checkConcGlobal(ctx);
    if (applies(kScopeMetaAlint, relPath))
        checkMetaAlint(ctx);

    applySuppressions(file, findings);

    std::stable_sort(findings.begin(), findings.end(),
                     [](const Finding &a, const Finding &b) {
                         if (a.line != b.line)
                             return a.line < b.line;
                         return a.rule < b.rule;
                     });
    return findings;
}

} // namespace amdahl::lint
