/**
 * @file
 * amdahl_lint command-line entry point.
 *
 * Exit codes: 0 = clean (no active findings; baselined and suppressed
 * ones do not count), 1 = active findings, 2 = usage or I/O error.
 * `--strict` is the CI mode: identical checking, but stale baseline
 * notes are printed to stderr so the ledger shrinks over time.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "baseline.hh"
#include "linter.hh"
#include "rules.hh"

namespace {

using namespace amdahl;
using namespace amdahl::lint;

int
usage(std::ostream &out)
{
    out << "usage: amdahl_lint [options] [relative-paths...]\n"
           "\n"
           "Static enforcement of the repo's determinism and\n"
           "trust-boundary contracts over src/, tools/, and bench/.\n"
           "\n"
           "options:\n"
           "  --root DIR       repo root to scan (default: .)\n"
           "  --baseline FILE  baseline ledger (default:\n"
           "                   <root>/tools/lint/amdahl_lint.baseline)\n"
           "  --no-baseline    ignore the baseline ledger\n"
           "  --strict         CI mode: also report stale baseline\n"
           "                   entries on stderr\n"
           "  --json           machine-readable report on stdout\n"
           "  --show-silenced  include suppressed/baselined findings\n"
           "                   in the human report\n"
           "  --list-rules     print the rule catalog and exit\n"
           "\n"
           "With no paths, scans every .cc/.hh under\n"
           "<root>/{src,tools,bench}. Paths are relative to --root.\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string baselinePath;
    bool useBaseline = true;
    bool strict = false;
    bool json = false;
    bool showSilenced = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (arg == "--no-baseline") {
            useBaseline = false;
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--show-silenced") {
            showSilenced = true;
        } else if (arg == "--list-rules") {
            for (const RuleInfo &info : ruleCatalog())
                std::cout << info.id << "\n    " << info.summary
                          << '\n';
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "amdahl_lint: unknown option '" << arg
                      << "'\n";
            return usage(std::cerr);
        } else {
            paths.push_back(arg);
        }
    }

    Baseline baseline;
    if (useBaseline) {
        if (baselinePath.empty())
            baselinePath = root + "/tools/lint/amdahl_lint.baseline";
        auto loaded = loadBaseline(baselinePath);
        if (!loaded.ok()) {
            std::cerr << "amdahl_lint: " << loaded.status().toString()
                      << '\n';
            return 2;
        }
        baseline = loaded.take();
        for (const BaselineEntry &entry : baseline.entries) {
            if (!entry.justified) {
                std::cerr << "amdahl_lint: baseline entry at "
                          << baselinePath << ':' << entry.sourceLine
                          << " lacks a preceding '# why:' "
                             "justification\n";
                return 2;
            }
        }
    }

    if (paths.empty())
        paths = discoverFiles(root);
    if (paths.empty()) {
        std::cerr << "amdahl_lint: nothing to scan under '" << root
                  << "' (no src/, tools/, or bench/)\n";
        return 2;
    }

    auto result = lintFiles(root, paths, std::move(baseline));
    if (!result.ok()) {
        std::cerr << "amdahl_lint: " << result.status().toString()
                  << '\n';
        return 2;
    }
    const LintReport report = result.take();

    if (json)
        std::cout << formatJson(report) << '\n';
    else
        std::cout << formatHuman(report, showSilenced);

    if (strict && !json) {
        for (const BaselineEntry &entry : report.staleBaseline) {
            std::cerr << "amdahl_lint: stale baseline entry: "
                      << entry.rule << '|' << entry.file << '\n';
        }
    }

    return countFindings(report).active > 0 ? 1 : 0;
}
