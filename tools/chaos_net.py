#!/usr/bin/env python3
"""Network-chaos harness for sharded clearing over the simulated
transport.

Drives the amdahl_market CLI through faulted sharded scenarios and
checks the net layer's process-level contracts:

  1. Determinism: a lossy, delayed, duplicating run with a fixed
     --net-seed, executed twice, must produce byte-identical traces.
  2. Schema: the faulted trace (degraded_round events, reasoned
     fallback_serve) must pass check_trace_schema.py.
  3. Partition / heal: a scheduled partition window must produce
     degraded rounds attributed to the partition, zero quorum
     collapses at the default floor, and the run must reconverge —
     the final epoch's clearing ends converged.
  4. Crash mid-partition: a durable run killed inside the partition
     window and then recovered with --recover must finish with a
     trace byte-identical to the uninterrupted run's. The partition
     schedule is keyed by persisted global rounds, so recovery must
     land on the same network timeline.

Any deviation is a hard failure. Deterministic by construction: fixed
seeds, fixed windows, virtual time only.

Usage: chaos_net.py <path-to-amdahl_market> [--workdir DIR]
"""

import argparse
import filecmp
import json
import shutil
import subprocess
import sys
from pathlib import Path

KILL_EXIT_CODE = 86
EPOCHS = 12
SNAPSHOT_EVERY = 4

BASE = [
    "trace",
    "--epochs", str(EPOCHS),
    "--users", "8",
    "--servers", "3",
    "--log-level", "quiet",
    "--shards", "2",
]

FAULTS = [
    "--net-loss", "0.1",
    "--net-delay", "1:4",
    "--net-dup", "0.1",
    "--net-seed", "11",
]

# Half-open window on persisted global rounds, sized to stay within
# the staleness bound so the silenced shard degrades service without
# tripping the quorum floor (the tiny CLI market clamps to one shard).
PARTITION = ["--net-partition", "0:20:26"]


def run(binary, extra, trace_out):
    cmd = [str(binary)] + BASE + extra + ["--trace-out", str(trace_out)]
    return subprocess.run(cmd, stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE, text=True)


def fail(msg, proc=None):
    print(f"FAIL: {msg}", file=sys.stderr)
    if proc is not None and proc.stderr:
        print(proc.stderr, file=sys.stderr)
    sys.exit(1)


def expect_identical(path_a, path_b, what):
    if not filecmp.cmp(path_a, path_b, shallow=False):
        fail(f"{what}: {path_a} differs from {path_b}")


def events(trace_path):
    with open(trace_path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def durable_args(state_dir, recover=False, kill=None):
    args = ["--state-dir", str(state_dir),
            "--snapshot-every", str(SNAPSHOT_EVERY)]
    if recover:
        args.append("--recover")
    if kill:
        args += ["--kill-point", kill]
    return args


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("binary", type=Path)
    parser.add_argument("--workdir", type=Path,
                        default=Path("chaos_net_work"))
    opts = parser.parse_args()
    if not opts.binary.exists():
        fail(f"no such binary: {opts.binary}")

    work = opts.workdir
    shutil.rmtree(work, ignore_errors=True)
    work.mkdir(parents=True)

    # 1. Faulted determinism: same seed, same bytes.
    faulted_a = work / "faulted_a.jsonl"
    faulted_b = work / "faulted_b.jsonl"
    proc = run(opts.binary, FAULTS, faulted_a)
    if proc.returncode != 0:
        fail("faulted run failed", proc)
    proc = run(opts.binary, FAULTS, faulted_b)
    if proc.returncode != 0:
        fail("faulted re-run failed", proc)
    expect_identical(faulted_a, faulted_b,
                     "faulted run must reproduce itself")
    print("ok: faulted double-run byte-identical", flush=True)

    # 2. The faulted trace obeys the event schema.
    checker = Path(__file__).resolve().parent / "check_trace_schema.py"
    proc = subprocess.run(
        [sys.executable, str(checker), str(faulted_a)],
        capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"schema check failed:\n{proc.stderr}")
    print("ok: faulted trace passes the schema", flush=True)

    # 3. Partition / heal: degraded service attributed to the
    #    partition, no quorum collapse, reconvergence after the heal.
    part_trace = work / "partition.jsonl"
    proc = run(opts.binary, PARTITION, part_trace)
    if proc.returncode != 0:
        fail("partition run failed", proc)
    degraded = [e for e in events(part_trace)
                if e.get("ev") == "degraded_round"]
    if not any(e.get("reason") == "partition" for e in degraded):
        fail("partition window produced no partition-reasoned "
             "degraded rounds")
    if any(e.get("reason") == "quorum_floor" for e in degraded):
        fail("partition at the default quorum floor must not "
             "collapse quorum")
    endings = [e for e in events(part_trace)
               if e.get("ev") == "bidding_end"]
    if not endings:
        fail("partition trace has no bidding_end events")
    if not endings[-1].get("converged"):
        fail("final epoch did not reconverge after the heal")
    print(f"ok: partition/heal ({len(degraded)} degraded round(s), "
          "no collapse, reconverged)", flush=True)

    # 4. Crash mid-partition, recover, compare bytes. First pin the
    #    uninterrupted durable run (which must equal the non-durable
    #    trace), then kill inside the window and recover.
    golden_state = work / "state_golden"
    golden_trace = work / "partition_durable.jsonl"
    proc = run(opts.binary, PARTITION + durable_args(golden_state),
               golden_trace)
    if proc.returncode != 0:
        fail("durable partition run failed", proc)
    expect_identical(golden_trace, part_trace,
                     "durability must not perturb the faulted trace")

    for spec in ("epoch.post_commit:5", "journal.mid_append:7"):
        tag = spec.replace(".", "_").replace(":", "_")
        state = work / f"state_{tag}"
        trace = work / f"trace_{tag}.jsonl"
        proc = run(opts.binary,
                   PARTITION + durable_args(state, kill=spec), trace)
        if proc.returncode == 0:
            fail(f"kill point {spec} was never reached")
        if proc.returncode != KILL_EXIT_CODE:
            fail(f"kill {spec}: expected exit {KILL_EXIT_CODE}, got "
                 f"{proc.returncode}", proc)
        proc = run(opts.binary,
                   PARTITION + durable_args(state, recover=True),
                   trace)
        if proc.returncode != 0:
            fail(f"recovery after {spec} exited {proc.returncode}",
                 proc)
        expect_identical(trace, part_trace,
                         f"recovery after {spec}")
        print(f"ok: {spec} killed mid-partition and recovered "
              "byte-identically", flush=True)

    print("chaos-net: determinism, schema, partition/heal, and "
          "mid-partition crash recovery all hold")


if __name__ == "__main__":
    main()
