#!/usr/bin/env python3
"""Validate an amdahl_market JSONL trace against the event schema.

Usage: check_trace_schema.py [trace.jsonl]   (stdin when omitted)

Checks, per DESIGN.md section 10:
  - every line parses as a JSON object;
  - "seq" is present and strictly increasing from 1;
  - "ev" is present and names a known event type;
  - each event carries that type's required fields;
  - no event carries a wall-clock field (traces must be deterministic;
    timing lives in the metrics histograms).

Exit status 0 when the trace is clean, 1 otherwise.
"""

import json
import sys

# Required fields per event type. Extra fields are allowed (the schema
# grows), missing ones are errors.
REQUIRED = {
    "run_start": {"policy", "seed", "users", "servers",
                  "epoch_seconds", "horizon_seconds", "faults",
                  "admission"},
    "run_end": set(),
    "epoch_start": {"epoch", "now"},
    "epoch_end": {"epoch", "in_system", "idle"},
    "bidding_start": {"users", "servers", "schedule", "damping",
                      "warm_start", "deadline_armed"},
    "bidding_iter": {"iter", "max_delta"},
    "bidding_end": {"iterations", "converged", "deadline_expired"},
    "deadline_expired": {"iter", "best_delta"},
    "fallback_serve": {"rung", "reason", "converged", "iterations",
                       "deadline_expired"},
    "degraded_round": {"source", "reason", "round", "quorum", "stale"},
    "fault_schedule": {"server", "crash_epoch", "recover_epoch"},
    "churn": {"epoch", "kind", "server"},
    "checkpoint_rollback": {"epoch", "user", "server", "lost_work"},
    "admission": {"epoch", "action", "user"},
    "log": {"severity", "message"},
}

FORBIDDEN = {"time", "wall", "elapsed", "timestamp", "duration"}

# Structured degradation taxonomy (obs/degraded.hh). fallback_serve
# additionally allows "none" for a clean primary serve.
DEGRADED_REASONS = {"deadline_expired", "partition", "quorum_floor",
                    "non_converged"}
DEGRADED_SOURCES = {"barrier", "fallback"}


def check_enums(event, ev):
    """Return a list of enum-violation messages for this event."""
    problems = []
    if ev == "degraded_round":
        if event.get("reason") not in DEGRADED_REASONS:
            problems.append(
                f"degraded_round reason {event.get('reason')!r} not in "
                f"{sorted(DEGRADED_REASONS)}")
        if event.get("source") not in DEGRADED_SOURCES:
            problems.append(
                f"degraded_round source {event.get('source')!r} not in "
                f"{sorted(DEGRADED_SOURCES)}")
    elif ev == "fallback_serve":
        reason = event.get("reason")
        if reason not in DEGRADED_REASONS | {"none"}:
            problems.append(
                f"fallback_serve reason {reason!r} not in "
                f"{sorted(DEGRADED_REASONS | {'none'})}")
        if reason == "none" and event.get("rung") != "primary":
            problems.append(
                "fallback_serve: only a primary serve may carry "
                "reason 'none'")
    return problems


def fail(line_no, message):
    print(f"line {line_no}: {message}", file=sys.stderr)
    return 1


def main():
    stream = open(sys.argv[1]) if len(sys.argv) > 1 else sys.stdin
    errors = 0
    expected_seq = 0
    events = 0
    with stream:
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as err:
                errors += fail(line_no, f"not valid JSON: {err}")
                continue
            if not isinstance(event, dict):
                errors += fail(line_no, "not a JSON object")
                continue
            events += 1
            expected_seq += 1
            seq = event.get("seq")
            if seq != expected_seq:
                errors += fail(
                    line_no,
                    f"seq {seq!r}, expected {expected_seq}")
                expected_seq = seq if isinstance(seq, int) else \
                    expected_seq
            ev = event.get("ev")
            if ev not in REQUIRED:
                errors += fail(line_no, f"unknown event type {ev!r}")
                continue
            missing = REQUIRED[ev] - event.keys()
            if missing:
                errors += fail(
                    line_no,
                    f"{ev} missing field(s): {sorted(missing)}")
            for problem in check_enums(event, ev):
                errors += fail(line_no, problem)
            banned = {key for key in event
                      if any(word in key for word in FORBIDDEN)}
            if banned:
                errors += fail(
                    line_no,
                    f"{ev} carries wall-clock field(s): "
                    f"{sorted(banned)}")
    if events == 0:
        print("empty trace", file=sys.stderr)
        return 1
    if errors:
        print(f"{errors} schema error(s) in {events} event(s)",
              file=sys.stderr)
        return 1
    print(f"ok: {events} event(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
