#!/usr/bin/env python3
"""Validate an amdahl_market JSONL trace against the event schema.

Usage: check_trace_schema.py [trace.jsonl]   (stdin when omitted)

Checks, per DESIGN.md section 10:
  - every line parses as a JSON object;
  - "seq" is present and strictly increasing from 1;
  - "ev" is present and names a known event type;
  - each event carries that type's required fields;
  - no event carries a wall-clock field (traces must be deterministic;
    timing lives in the metrics histograms).

Exit status 0 when the trace is clean, 1 otherwise.
"""

import json
import sys

# Required fields per event type. Extra fields are allowed (the schema
# grows), missing ones are errors.
REQUIRED = {
    "run_start": {"policy", "seed", "users", "servers",
                  "epoch_seconds", "horizon_seconds", "faults",
                  "admission"},
    "run_end": set(),
    "epoch_start": {"epoch", "now"},
    "epoch_end": {"epoch", "in_system", "idle"},
    "bidding_start": {"users", "servers", "schedule", "damping",
                      "warm_start", "deadline_armed"},
    "bidding_iter": {"iter", "max_delta"},
    "bidding_accel": {"iter", "plain_delta", "accel_delta",
                      "accepted"},
    "bidding_end": {"iterations", "converged", "deadline_expired"},
    "deadline_expired": {"iter", "best_delta"},
    "fallback_serve": {"rung", "reason", "converged", "iterations",
                       "deadline_expired"},
    "degraded_round": {"source", "reason", "round", "quorum", "stale"},
    "fault_schedule": {"server", "crash_epoch", "recover_epoch"},
    "churn": {"epoch", "kind", "server"},
    "checkpoint_rollback": {"epoch", "user", "server", "lost_work"},
    "admission": {"epoch", "action", "user"},
    "log": {"severity", "message"},
    "span": {"name", "id", "parent", "t0", "t1"},
}

FORBIDDEN = {"time", "wall", "elapsed", "timestamp", "duration"}

# Structured degradation taxonomy (obs/degraded.hh). fallback_serve
# additionally allows "none" for a clean primary serve.
DEGRADED_REASONS = {"deadline_expired", "partition", "quorum_floor",
                    "non_converged"}
DEGRADED_SOURCES = {"barrier", "fallback"}

# Causal span taxonomy (obs/span.hh). Span IDs are pure functions of
# structural coordinates, so same-seed traces must agree byte-for-byte;
# parents may legitimately be *emitted* after their children (a round
# span closes after its transfers), hence the deferred second pass.
SPAN_NAMES = {"epoch", "rung", "round", "barrier", "compute", "fold",
              "price_xfer", "bid_xfer"}
SPAN_CAUSES = {"compute", "net_delay", "retransmit", "partition_wait",
               "quorum_wait"}
SPAN_XFER_OUTCOMES = {"delivered", "lost", "partition_drop",
                      "duplicate"}
SPAN_ROUND_COSTS = ("c_compute", "c_delay", "c_retransmit",
                    "c_partition", "c_quorum")


def check_span(event):
    """Return per-line problems for one span event (pass one)."""
    problems = []
    name = event.get("name")
    if name not in SPAN_NAMES:
        problems.append(
            f"span name {name!r} not in {sorted(SPAN_NAMES)}")
    for key in ("id", "parent", "t0", "t1"):
        if not isinstance(event.get(key), int):
            problems.append(f"span field {key!r} must be an integer")
            return problems
    if event["id"] == 0:
        problems.append("span id 0 is reserved for 'no parent'")
    if event["t0"] > event["t1"]:
        problems.append(
            f"span is time-inverted: t0 {event['t0']} > t1 "
            f"{event['t1']}")
    if name == "round":
        cause = event.get("cause")
        if cause not in SPAN_CAUSES:
            problems.append(
                f"round span cause {cause!r} not in "
                f"{sorted(SPAN_CAUSES)}")
        missing = [key for key in SPAN_ROUND_COSTS + ("ticks",)
                   if not isinstance(event.get(key), int)]
        if missing:
            problems.append(
                f"round span missing cost field(s): {missing}")
        else:
            latency = event["t1"] - event["t0"]
            total = sum(event[key] for key in SPAN_ROUND_COSTS)
            if event["ticks"] != latency:
                problems.append(
                    f"round span ticks {event['ticks']} != t1-t0 "
                    f"{latency}")
            if total != latency:
                problems.append(
                    f"round span causes sum to {total}, latency is "
                    f"{latency}")
    elif name in ("price_xfer", "bid_xfer"):
        outcome = event.get("outcome")
        if outcome not in SPAN_XFER_OUTCOMES:
            problems.append(
                f"xfer span outcome {outcome!r} not in "
                f"{sorted(SPAN_XFER_OUTCOMES)}")
    return problems


def check_span_graph(spans):
    """Cross-span validation once the whole stream is read.

    @param spans List of (line_no, event) for every span event.
    @return List of (line_no, message) problems: duplicate IDs,
            orphaned parent references, and parents that begin after
            their children (causality must respect virtual time).
    """
    problems = []
    by_id = {}
    for line_no, event in spans:
        sid = event.get("id")
        if not isinstance(sid, int):
            continue
        if sid in by_id:
            problems.append(
                (line_no, f"duplicate span id {sid} (first on line "
                          f"{by_id[sid][0]})"))
        else:
            by_id[sid] = (line_no, event)
    for line_no, event in spans:
        parent = event.get("parent")
        if not isinstance(parent, int) or parent == 0:
            continue
        if parent not in by_id:
            problems.append(
                (line_no,
                 f"orphaned span {event.get('id')}: parent {parent} "
                 f"never emitted"))
            continue
        parent_event = by_id[parent][1]
        if isinstance(event.get("t0"), int) and \
                isinstance(parent_event.get("t0"), int) and \
                parent_event["t0"] > event["t0"]:
            problems.append(
                (line_no,
                 f"span {event.get('id')} begins at t0 {event['t0']} "
                 f"before its parent {parent} at t0 "
                 f"{parent_event['t0']}"))
    return problems


def check_enums(event, ev):
    """Return a list of enum-violation messages for this event."""
    problems = []
    if ev == "degraded_round":
        if event.get("reason") not in DEGRADED_REASONS:
            problems.append(
                f"degraded_round reason {event.get('reason')!r} not in "
                f"{sorted(DEGRADED_REASONS)}")
        if event.get("source") not in DEGRADED_SOURCES:
            problems.append(
                f"degraded_round source {event.get('source')!r} not in "
                f"{sorted(DEGRADED_SOURCES)}")
    elif ev == "fallback_serve":
        reason = event.get("reason")
        if reason not in DEGRADED_REASONS | {"none"}:
            problems.append(
                f"fallback_serve reason {reason!r} not in "
                f"{sorted(DEGRADED_REASONS | {'none'})}")
        if reason == "none" and event.get("rung") != "primary":
            problems.append(
                "fallback_serve: only a primary serve may carry "
                "reason 'none'")
    return problems


def fail(line_no, message):
    print(f"line {line_no}: {message}", file=sys.stderr)
    return 1


def main():
    stream = open(sys.argv[1]) if len(sys.argv) > 1 else sys.stdin
    errors = 0
    expected_seq = 0
    events = 0
    spans = []
    with stream:
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as err:
                errors += fail(line_no, f"not valid JSON: {err}")
                continue
            if not isinstance(event, dict):
                errors += fail(line_no, "not a JSON object")
                continue
            events += 1
            expected_seq += 1
            seq = event.get("seq")
            if seq != expected_seq:
                errors += fail(
                    line_no,
                    f"seq {seq!r}, expected {expected_seq}")
                expected_seq = seq if isinstance(seq, int) else \
                    expected_seq
            ev = event.get("ev")
            if ev not in REQUIRED:
                errors += fail(line_no, f"unknown event type {ev!r}")
                continue
            missing = REQUIRED[ev] - event.keys()
            if missing:
                errors += fail(
                    line_no,
                    f"{ev} missing field(s): {sorted(missing)}")
            for problem in check_enums(event, ev):
                errors += fail(line_no, problem)
            if ev == "span":
                for problem in check_span(event):
                    errors += fail(line_no, problem)
                spans.append((line_no, event))
            banned = {key for key in event
                      if any(word in key for word in FORBIDDEN)}
            if banned:
                errors += fail(
                    line_no,
                    f"{ev} carries wall-clock field(s): "
                    f"{sorted(banned)}")
    for line_no, problem in check_span_graph(spans):
        errors += fail(line_no, problem)
    if events == 0:
        print("empty trace", file=sys.stderr)
        return 1
    if errors:
        print(f"{errors} schema error(s) in {events} event(s)",
              file=sys.stderr)
        return 1
    suffix = f", {len(spans)} span(s)" if spans else ""
    print(f"ok: {events} event(s){suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
