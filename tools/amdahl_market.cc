/**
 * @file
 * amdahl_market — command-line front end to the processor market.
 *
 * Subcommands:
 *
 *   solve <file> [options]   Run Amdahl Bidding on a market file and
 *                            print prices, allocations, and the
 *                            equilibrium certificate.
 *       --epsilon <e>        Price-change termination threshold
 *                            (default 1e-6).
 *       --max-iterations <n> Iteration cap (default 10000).
 *       --gauss-seidel       Use the Gauss-Seidel update schedule.
 *       --fractional         Skip Hamilton rounding in the output.
 *       --deadline-iterations <n>
 *                            Anytime iteration budget: serve the best
 *                            budget-feasible bid state after n rounds.
 *       --deadline-seconds <s>
 *                            Anytime wall-clock budget.
 *
 *   check <file>             Validate a market file against the trust
 *                            boundary: print the classified,
 *                            line-numbered error (parse/domain/
 *                            semantic) or a summary of the market.
 *       --allow-duplicate-jobs
 *                            Accept one user listing a server twice.
 *
 *   workloads                Print the Table I workload library with
 *                            measured characterizations.
 *
 *   profile <workload>       Run the Section IV pipeline on one
 *                            workload: sampled datasets, Karp-Flatt
 *                            estimates, fitted predictor, accuracy.
 *
 *   simulate <workload> <cores> [gb]
 *                            Execute one run on the simulator and
 *                            print the per-stage trace.
 *
 *   example                  Print a sample market file (the paper's
 *                            Alice/Bob example).
 *
 *   trace [options]          Run a seeded online simulation under the
 *                            fallback ladder and stream the JSONL
 *                            convergence trace (stdout unless
 *                            --trace-out redirects it); the run
 *                            summary goes to stderr.
 *
 *   trace analyze <file>     Reconstruct the span DAG from a captured
 *                            --span-trace stream: per-round critical-
 *                            path attribution (compute / net delay /
 *                            retransmit / partition / quorum), round
 *                            latency p50/p99 in ticks, and transfer
 *                            outcome counts. Verifies that per-cause
 *                            ticks sum exactly to each round's
 *                            latency (exit 1 on violation).
 *       --chrome <path>      Also export Chrome trace_event JSON for
 *                            chrome://tracing / Perfetto.
 *       --seed <n>           Scenario seed (default 0x0517e5).
 *       --users/--servers/--cores <n>
 *                            Cluster shape.
 *       --epochs <n>         Horizon in epochs (default 20).
 *       --faults             Enable server churn and bid-message loss.
 *       --admission          Enable overload admission control.
 *       --state-dir <dir>    Persist a write-ahead epoch journal and
 *                            checksummed snapshots under dir; the run
 *                            becomes crash-recoverable.
 *       --snapshot-every <n> Epochs between full snapshots (default 8;
 *                            0 = final snapshot only).
 *       --keep-snapshots <n> Snapshot generations to retain (default 2).
 *       --recover            Resume from the durable state in
 *                            --state-dir: verify the journal, truncate
 *                            the trace file to its durable frontier,
 *                            replay, and continue. The finished trace
 *                            is byte-identical to an uninterrupted run.
 *       --io-fault-rate <p>  Inject deterministic transient-IO faults
 *                            with per-attempt probability p.
 *       --io-fault-seed <n>  Substream seed for injected IO faults.
 *       --io-max-retries <n> Attempts per disk operation (default 4).
 *       --kill-point <site[:N]>
 *                            Hard-exit (code 86) the Nth time the named
 *                            commit-protocol site is reached; also read
 *                            from AMDAHL_KILL_POINT when absent.
 *       --list-kill-points   Print the crash-site catalog and exit.
 *
 *   stats <file> [options]   Solve a market file with phase timing
 *                            enabled and dump the metrics registry
 *                            (counters, gauges, timing histograms).
 *       --gauss-seidel       Use the Gauss-Seidel update schedule.
 *       --json               Emit the registry as JSON instead of text.
 *
 * Global flags (any subcommand, before or after it):
 *
 *   --trace-out <path>       Write the structured JSONL trace to path.
 *   --metrics-out <path>     Write a metrics-registry JSON snapshot to
 *                            path on exit (text when path ends .txt).
 *   --timing                 Record phase wall-time histograms (off by
 *                            default; timing never enters traces).
 *   --span-trace             Emit causal `span` events (virtual-time
 *                            rounds, barriers, transfers, rungs,
 *                            epochs) into the trace stream for
 *                            `trace analyze` / tools/trace_analyze.py.
 *   --log-level <level>      stderr verbosity: quiet, warn, or info.
 *   --threads <n|auto>       Worker threads for the parallel clearing
 *                            kernels (default 1, or AMDAHL_THREADS;
 *                            "auto" = hardware concurrency). Results
 *                            are byte-identical at any thread count.
 *   --kernel <mode>          Bid-update kernel: scalar, simd, or auto
 *                            (default auto, or AMDAHL_KERNEL). The
 *                            two kernels are bit-identical; asking
 *                            for simd in a build without it (or on a
 *                            CPU without AVX2) is a hard error.
 *
 * `solve` also accepts:
 *
 *   --accel                  Anderson-accelerate the proportional-
 *                            response iteration (DESIGN.md §16).
 *                            Typically tens of times fewer rounds on
 *                            slowly-mixing markets; each accepted
 *                            step is validated against the plain
 *                            update, so the iteration never regresses
 *                            below undamped proportional response.
 *   --accel-depth <n>        Anderson history window in [1, 8]
 *                            (default 3).
 */

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "alloc/fallback_policy.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "core/bidding.hh"
#include "core/bidding_simd.hh"
#include "core/market_io.hh"
#include "core/rounding.hh"
#include "eval/characterization.hh"
#include "eval/online.hh"
#include "exec/parallelism.hh"
#include "net/options.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/timer.hh"
#include "obs/trace.hh"
#include "profiling/karp_flatt.hh"
#include "robustness/durability/durable_store.hh"
#include "robustness/durability/kill_points.hh"
#include "profiling/predictor.hh"
#include "profiling/profiler.hh"
#include "profiling/sampler.hh"
#include "sim/task_sim.hh"
#include "sim/workload_library.hh"

namespace {

using namespace amdahl;

int
usage()
{
    std::cerr
        << "usage: amdahl_market solve <file> [--epsilon e]\n"
        << "                     [--max-iterations n] [--gauss-seidel]"
        << " [--fractional]\n"
        << "                     [--deadline-iterations n]"
        << " [--deadline-seconds s]\n"
        << "                     [--accel] [--accel-depth n]\n"
        << "       amdahl_market check <file> [--allow-duplicate-jobs]\n"
        << "       amdahl_market workloads\n"
        << "       amdahl_market profile <workload>\n"
        << "       amdahl_market simulate <workload> <cores> [gb]\n"
        << "       amdahl_market example\n"
        << "       amdahl_market trace [--seed n] [--users n]"
        << " [--servers n] [--cores n]\n"
        << "                     [--epochs n] [--faults] [--admission]\n"
        << "                     [--state-dir dir] [--snapshot-every n]"
        << " [--keep-snapshots n]\n"
        << "                     [--recover] [--io-fault-rate p]"
        << " [--io-fault-seed n]\n"
        << "                     [--io-max-retries n]"
        << " [--kill-point site[:N]] [--list-kill-points]\n"
        << "                     [--shards n] [--net-loss p]"
        << " [--net-delay max|min:max]\n"
        << "                     [--net-dup p] [--net-seed n]"
        << " [--net-partition shard:from:to]...\n"
        << "                     [--barrier-deadline ticks]"
        << " [--quorum f] [--max-stale n]\n"
        << "       amdahl_market trace analyze <trace.jsonl>"
        << " [--chrome out.json]\n"
        << "       amdahl_market stats <file> [--gauss-seidel]"
        << " [--json]\n"
        << "global flags: [--trace-out path] [--metrics-out path]"
        << " [--timing] [--span-trace]\n"
        << "              [--log-level quiet|warn|info]"
        << " [--threads n|auto]"
        << " [--kernel scalar|simd|auto]\n";
    return 2;
}

int
cmdSolve(const std::vector<std::string> &args)
{
    std::string path;
    core::BiddingOptions opts;
    bool fractional = false;
    for (std::size_t a = 0; a < args.size(); ++a) {
        const std::string &arg = args[a];
        if (arg == "--epsilon" && a + 1 < args.size()) {
            opts.priceTolerance = std::stod(args[++a]);
        } else if (arg == "--max-iterations" && a + 1 < args.size()) {
            opts.maxIterations = std::stoi(args[++a]);
        } else if (arg == "--gauss-seidel") {
            opts.schedule = core::UpdateSchedule::GaussSeidel;
        } else if (arg == "--fractional") {
            fractional = true;
        } else if (arg == "--deadline-iterations" &&
                   a + 1 < args.size()) {
            opts.deadline.iterationBudget = std::stoi(args[++a]);
        } else if (arg == "--deadline-seconds" && a + 1 < args.size()) {
            opts.deadline.wallClockSeconds = std::stod(args[++a]);
        } else if (arg == "--accel") {
            opts.accel.enabled = true;
        } else if (arg == "--accel-depth" && a + 1 < args.size()) {
            opts.accel.enabled = true;
            opts.accel.depth = std::stoi(args[++a]);
        } else if (path.empty() && !arg.empty() && arg[0] != '-') {
            path = arg;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage();
        }
    }
    if (path.empty())
        return usage();

    // Market files are tenant-supplied: reject with the classified,
    // line-numbered diagnostic rather than unwinding on the first bad
    // token.
    auto parsed = core::loadMarket(path);
    if (!parsed.ok()) {
        std::cerr << path << ": " << parsed.status().toString() << "\n";
        return 1;
    }
    const auto market = parsed.take();
    const auto result = core::solveAmdahlBidding(market, opts);

    std::cout << (result.converged ? "converged" : "NOT converged")
              << " after " << result.iterations << " iterations";
    if (result.deadlineExpired)
        std::cout << " (deadline expired; best anytime state)";
    std::cout << "\n\n";

    TablePrinter prices;
    prices.addColumn("Server");
    prices.addColumn("Capacity");
    prices.addColumn("Price");
    for (std::size_t j = 0; j < market.serverCount(); ++j) {
        prices.beginRow().cell(j).cell(market.capacity(j), 0).cell(
            result.prices[j], 4);
    }
    prices.print(std::cout);
    std::cout << '\n';

    const auto rounded = core::roundOutcome(market, result);
    TablePrinter alloc;
    alloc.addColumn("User", TablePrinter::Align::Left);
    alloc.addColumn("Job");
    alloc.addColumn("Server");
    alloc.addColumn(fractional ? "Cores (fractional)" : "Cores");
    alloc.addColumn("Bid");
    for (std::size_t i = 0; i < market.userCount(); ++i) {
        const auto &user = market.user(i);
        for (std::size_t k = 0; k < user.jobs.size(); ++k) {
            alloc.beginRow()
                .cell(user.name.empty() ? "user" + std::to_string(i)
                                        : user.name)
                .cell(k)
                .cell(user.jobs[k].server);
            if (fractional)
                alloc.cell(result.allocation[i][k], 3);
            else
                alloc.cell(rounded[i][k]);
            alloc.cell(result.bids[i][k], 4);
        }
    }
    alloc.print(std::cout);

    const auto check = core::verifyEquilibrium(market, result);
    std::cout << "\nequilibrium certificate: clearing "
              << formatDouble(check.maxClearingResidual, 9)
              << ", budget " << formatDouble(check.maxBudgetResidual, 9)
              << ", optimality gap "
              << formatDouble(check.maxOptimalityGap, 9) << "\n";
    // An anytime state served under a deadline is budget-feasible by
    // contract but not an equilibrium; don't fail on its certificate.
    if (result.deadlineExpired)
        return 0;
    return check.pass(1e-3) ? 0 : 1;
}

int
cmdCheck(const std::vector<std::string> &args)
{
    std::string path;
    core::MarketParseOptions opts;
    for (const std::string &arg : args) {
        if (arg == "--allow-duplicate-jobs") {
            opts.rejectDuplicateServerJobs = false;
        } else if (path.empty() && !arg.empty() && arg[0] != '-') {
            path = arg;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage();
        }
    }
    if (path.empty())
        return usage();

    auto parsed = core::loadMarket(path, opts);
    if (!parsed.ok()) {
        std::cerr << path << ": " << parsed.status().toString() << "\n";
        return 1;
    }
    const auto market = parsed.take();
    std::size_t job_count = 0;
    for (std::size_t i = 0; i < market.userCount(); ++i)
        job_count += market.user(i).jobs.size();
    std::cout << path << ": OK — " << market.serverCount()
              << " server(s), " << formatDouble(market.totalCores(), 0)
              << " cores, " << market.userCount() << " user(s), "
              << job_count << " job(s), total budget "
              << formatDouble(market.totalBudget(), 3) << "\n";
    return 0;
}

int
cmdWorkloads()
{
    eval::CharacterizationCache cache;
    TablePrinter table;
    table.addColumn("ID");
    table.addColumn("Name", TablePrinter::Align::Left);
    table.addColumn("Suite", TablePrinter::Align::Left);
    table.addColumn("F(meas)");
    table.addColumn("F(est)");
    table.addColumn("T1(s)");
    const auto &library = sim::workloadLibrary();
    for (std::size_t i = 0; i < library.size(); ++i) {
        const auto &c = cache.of(i);
        table.beginRow()
            .cell(library[i].id)
            .cell(library[i].name)
            .cell(toString(library[i].suite))
            .cell(c.measuredFraction, 3)
            .cell(c.estimatedFraction, 3)
            .cell(c.t1Seconds, 1);
    }
    table.print(std::cout);
    return 0;
}

int
cmdProfile(const std::vector<std::string> &args)
{
    if (args.size() != 1)
        return usage();
    const auto &workload = sim::findWorkload(args[0]);

    const profiling::Profiler profiler((sim::TaskSimulator()));
    const auto plan = profiling::planSamples(workload);
    const auto profile = profiler.profile(workload, plan.sampleSizesGB);

    TablePrinter kf;
    kf.addColumn("Dataset(GB)");
    kf.addColumn("E[F]");
    kf.addColumn("Var(F)");
    for (double gb : profile.datasetsGB) {
        const auto est = profiling::estimateFraction(profile, gb);
        kf.beginRow().cell(gb, 2).cell(est.expected, 3).cell(
            formatDouble(est.variance, 6));
    }
    kf.print(std::cout);

    const auto predictor = profiling::PerformancePredictor::fit(profile);
    const sim::TaskSimulator sim;
    const auto report = profiling::evaluatePredictor(
        predictor, sim, workload, workload.datasetGB,
        {1, 2, 4, 8, 16, 24});
    std::cout << "\nestimated parallel fraction: "
              << formatDouble(predictor.parallelFraction(), 3)
              << "\nfull-dataset prediction error: "
              << formatDouble(report.meanErrorPercent, 2) << "% mean, "
              << formatDouble(report.errorSummary.max, 2) << "% max\n";
    return 0;
}

int
cmdSimulate(const std::vector<std::string> &args)
{
    if (args.size() < 2 || args.size() > 3)
        return usage();
    const auto &workload = sim::findWorkload(args[0]);
    const int cores = std::stoi(args[1]);
    const double gb =
        args.size() == 3 ? std::stod(args[2]) : workload.datasetGB;

    const sim::TaskSimulator sim;
    const auto result = sim.execute(workload, gb, cores);
    TablePrinter table;
    table.addColumn("Stage", TablePrinter::Align::Left);
    table.addColumn("start(s)");
    table.addColumn("end(s)");
    table.addColumn("tasks");
    table.addColumn("workers");
    table.addColumn("comm(s)");
    table.addColumn("bw slowdown");
    for (const auto &stage : result.stages) {
        table.beginRow()
            .cell(stage.label)
            .cell(stage.startSeconds, 2)
            .cell(stage.endSeconds, 2)
            .cell(stage.tasks)
            .cell(stage.workers)
            .cell(stage.commSeconds, 2)
            .cell(stage.bandwidthSlowdown, 2);
    }
    table.print(std::cout);
    std::cout << "\ntotal " << formatDouble(result.totalSeconds, 2)
              << " s on " << cores << " core(s), speedup "
              << formatDouble(sim.speedup(workload, gb, cores), 2)
              << "\n";
    return 0;
}

/**
 * Flush the trace sink exactly once and surface its sticky Status.
 * Every cmdTrace exit after the sink is installed — including the
 * early aborts of the durable path — must route through here: a
 * swallowed trace-IO failure would let a run that silently lost
 * trace lines exit 0 and poison every downstream byte-identity check.
 */
int
finishTraceSink(std::optional<obs::TraceSink> &sink,
                const std::string &traceOut, int status)
{
    if (!sink)
        return status;
    (void)sink->flush();
    if (Status st = sink->status(); !st.isOk()) {
        std::cerr << "trace output '"
                  << (traceOut.empty() ? "<stdout>" : traceOut)
                  << "': " << st.toString() << "\n";
        if (status == 0)
            status = 1;
    }
    return status;
}

/**
 * One parsed `span` event. The sink emits spans with a fixed flat
 * shape (string name/cause/outcome fields, unsigned numeric fields,
 * no escapes in any enum token), so targeted key extraction is exact
 * without a general JSON parser.
 */
struct SpanRecord
{
    std::string name;
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
    std::uint64_t t0 = 0;
    std::uint64_t t1 = 0;
    std::uint64_t round = 0;
    bool hasRound = false;
    std::uint64_t shard = 0;
    bool hasShard = false;
    std::string cause;
    std::string outcome;
    std::uint64_t ticks = 0;
    std::uint64_t cDelay = 0;
    std::uint64_t cRetransmit = 0;
    std::uint64_t cPartition = 0;
    std::uint64_t cQuorum = 0;
};

bool
extractU64(const std::string &line, const std::string &key,
           std::uint64_t &out)
{
    const std::string needle = "\"" + key + "\":";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    std::size_t i = pos + needle.size();
    if (i >= line.size() || line[i] < '0' || line[i] > '9')
        return false;
    std::uint64_t v = 0;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
        ++i;
    }
    out = v;
    return true;
}

bool
extractToken(const std::string &line, const std::string &key,
             std::string &out)
{
    const std::string needle = "\"" + key + "\":\"";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    const auto start = pos + needle.size();
    const auto end = line.find('"', start);
    if (end == std::string::npos)
        return false;
    out = line.substr(start, end - start);
    return true;
}

int
cmdTraceAnalyze(const std::vector<std::string> &args)
{
    std::string path;
    std::string chromeOut;
    for (std::size_t a = 0; a < args.size(); ++a) {
        const std::string &arg = args[a];
        if (arg == "--chrome" && a + 1 < args.size()) {
            chromeOut = args[++a];
        } else if (path.empty() && !arg.empty() && arg[0] != '-') {
            path = arg;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage();
        }
    }
    if (path.empty())
        return usage();

    std::ifstream in(path);
    if (!in) {
        std::cerr << "cannot open trace '" << path << "'\n";
        return 1;
    }

    std::vector<SpanRecord> spans;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"ev\":\"span\"") == std::string::npos)
            continue;
        SpanRecord s;
        if (!extractToken(line, "name", s.name) ||
            !extractU64(line, "id", s.id) ||
            !extractU64(line, "t0", s.t0) ||
            !extractU64(line, "t1", s.t1)) {
            std::cerr << "malformed span line: " << line << "\n";
            return 1;
        }
        (void)extractU64(line, "parent", s.parent);
        s.hasRound = extractU64(line, "round", s.round);
        s.hasShard = extractU64(line, "shard", s.shard);
        (void)extractToken(line, "cause", s.cause);
        (void)extractToken(line, "outcome", s.outcome);
        (void)extractU64(line, "ticks", s.ticks);
        (void)extractU64(line, "c_delay", s.cDelay);
        (void)extractU64(line, "c_retransmit", s.cRetransmit);
        (void)extractU64(line, "c_partition", s.cPartition);
        (void)extractU64(line, "c_quorum", s.cQuorum);
        spans.push_back(std::move(s));
    }
    if (spans.empty()) {
        std::cerr << "no span events in '" << path
                  << "' (captured without --span-trace?)\n";
        return 1;
    }

    // Per-round attribution audit: the per-cause breakdown must sum
    // exactly to the round's virtual-time latency — an analyzer that
    // "mostly" accounts for a round cannot support an SLO post-mortem.
    std::vector<std::uint64_t> latencies;
    std::uint64_t totalTicks = 0;
    std::uint64_t cDelay = 0;
    std::uint64_t cRetransmit = 0;
    std::uint64_t cPartition = 0;
    std::uint64_t cQuorum = 0;
    std::uint64_t freshRounds = 0;
    std::uint64_t sumViolations = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    std::uint64_t partitionDrops = 0;
    std::uint64_t duplicates = 0;
    for (const SpanRecord &s : spans) {
        if (s.t1 < s.t0) {
            std::cerr << "span " << s.id << " (" << s.name
                      << ") is time-inverted: t0 " << s.t0 << " > t1 "
                      << s.t1 << "\n";
            return 1;
        }
        if (s.name == "round") {
            const std::uint64_t latency = s.t1 - s.t0;
            const std::uint64_t sum =
                s.cDelay + s.cRetransmit + s.cPartition + s.cQuorum;
            if (latency != s.ticks || sum != latency) {
                std::cerr << "round " << s.round
                          << ": cause ticks sum to " << sum
                          << " but latency is " << latency << "\n";
                ++sumViolations;
            }
            latencies.push_back(latency);
            totalTicks += latency;
            cDelay += s.cDelay;
            cRetransmit += s.cRetransmit;
            cPartition += s.cPartition;
            cQuorum += s.cQuorum;
            if (s.cause == "compute")
                ++freshRounds;
        } else if (s.name == "price_xfer" || s.name == "bid_xfer") {
            if (s.outcome == "delivered")
                ++delivered;
            else if (s.outcome == "lost")
                ++lost;
            else if (s.outcome == "partition_drop")
                ++partitionDrops;
            else if (s.outcome == "duplicate")
                ++duplicates;
        }
    }

    const auto percentile = [&](double p) -> std::uint64_t {
        if (latencies.empty())
            return 0;
        const auto idx = static_cast<std::size_t>(
            p * static_cast<double>(latencies.size() - 1));
        return latencies[idx];
    };
    std::sort(latencies.begin(), latencies.end());

    std::cout << spans.size() << " span(s), " << latencies.size()
              << " round(s)";
    if (!latencies.empty())
        std::cout << ", round latency p50 " << percentile(0.5)
                  << " / p99 " << percentile(0.99) << " tick(s)";
    std::cout << "\n"
              << "transfers: " << delivered << " delivered, " << lost
              << " lost, " << partitionDrops << " partition-dropped, "
              << duplicates << " duplicated\n\n";

    TablePrinter attribution;
    attribution.addColumn("Cause", TablePrinter::Align::Left);
    attribution.addColumn("Ticks");
    attribution.addColumn("Share");
    const auto share = [&](std::uint64_t t) {
        return totalTicks == 0
                   ? std::string("-")
                   : formatDouble(100.0 * static_cast<double>(t) /
                                      static_cast<double>(totalTicks),
                                  1) +
                         "%";
    };
    const std::uint64_t cCompute = 0;
    attribution.beginRow().cell("compute").cell(cCompute).cell(
        totalTicks == 0 ? "100.0%" : share(cCompute));
    attribution.beginRow().cell("net_delay").cell(cDelay).cell(
        share(cDelay));
    attribution.beginRow()
        .cell("retransmit")
        .cell(cRetransmit)
        .cell(share(cRetransmit));
    attribution.beginRow()
        .cell("partition_wait")
        .cell(cPartition)
        .cell(share(cPartition));
    attribution.beginRow()
        .cell("quorum_wait")
        .cell(cQuorum)
        .cell(share(cQuorum));
    attribution.print(std::cout);

    if (!chromeOut.empty()) {
        std::ofstream out(chromeOut);
        if (!out) {
            std::cerr << "cannot open chrome export '" << chromeOut
                      << "'\n";
            return 1;
        }
        out << "{\"traceEvents\":[";
        bool first = true;
        for (const SpanRecord &s : spans) {
            if (!first)
                out << ",";
            first = false;
            out << "{\"name\":\"" << s.name
                << "\",\"cat\":\"amdahl\",\"ph\":\"X\",\"ts\":" << s.t0
                << ",\"dur\":" << (s.t1 - s.t0) << ",\"pid\":1"
                << ",\"tid\":" << (s.hasShard ? s.shard + 1 : 0)
                << ",\"args\":{\"id\":\"" << s.id
                << "\",\"parent\":\"" << s.parent << "\"";
            if (s.hasRound)
                out << ",\"round\":" << s.round;
            if (!s.cause.empty())
                out << ",\"cause\":\"" << s.cause << "\"";
            if (!s.outcome.empty())
                out << ",\"outcome\":\"" << s.outcome << "\"";
            out << "}}";
        }
        out << "],\"displayTimeUnit\":\"ms\"}\n";
        out.flush();
        if (!out.good()) {
            std::cerr << "chrome export '" << chromeOut
                      << "': stream failed\n";
            return 1;
        }
        std::cerr << "wrote " << chromeOut << "\n";
    }

    if (sumViolations > 0) {
        std::cerr << "\n"
                  << sumViolations
                  << " round(s) with attribution-sum violations\n";
        return 1;
    }
    std::cout << "\nattribution: causes sum to round latency in "
              << latencies.size() << "/" << latencies.size()
              << " round(s)\n";
    return 0;
}

int
cmdTrace(const std::vector<std::string> &args,
         const std::string &traceOut)
{
    if (!args.empty() && args[0] == "analyze")
        return cmdTraceAnalyze(
            std::vector<std::string>(args.begin() + 1, args.end()));
    eval::OnlineOptions opts;
    durability::DurabilityOptions dur;
    int epochs = 20;
    bool durable = false;
    bool recover = false;
    bool io_knobs = false;
    std::string kill_spec;
    for (std::size_t a = 0; a < args.size(); ++a) {
        const std::string &arg = args[a];
        if (arg == "--seed" && a + 1 < args.size()) {
            opts.seed = std::stoull(args[++a]);
        } else if (arg == "--users" && a + 1 < args.size()) {
            opts.users = std::stoi(args[++a]);
        } else if (arg == "--servers" && a + 1 < args.size()) {
            opts.servers = std::stoi(args[++a]);
        } else if (arg == "--cores" && a + 1 < args.size()) {
            opts.coresPerServer = std::stoi(args[++a]);
        } else if (arg == "--epochs" && a + 1 < args.size()) {
            epochs = std::stoi(args[++a]);
        } else if (arg == "--faults") {
            opts.faults.enabled = true;
            opts.faults.crashRatePerServerEpoch = 0.02;
            opts.faults.bidLossRate = 0.05;
        } else if (arg == "--admission") {
            opts.admission.enabled = true;
        } else if (arg == "--state-dir" && a + 1 < args.size()) {
            dur.stateDir = args[++a];
            durable = true;
        } else if (arg == "--snapshot-every" && a + 1 < args.size()) {
            dur.snapshotEvery = std::stoi(args[++a]);
        } else if (arg == "--keep-snapshots" && a + 1 < args.size()) {
            dur.keepSnapshots = std::stoi(args[++a]);
        } else if (arg == "--recover") {
            recover = true;
        } else if (arg == "--io-fault-rate" && a + 1 < args.size()) {
            dur.ioFaults.failureRate = std::stod(args[++a]);
            dur.ioFaults.enabled = dur.ioFaults.failureRate > 0.0;
            io_knobs = true;
        } else if (arg == "--io-fault-seed" && a + 1 < args.size()) {
            dur.ioFaults.seed = std::stoull(args[++a]);
            io_knobs = true;
        } else if (arg == "--io-max-retries" && a + 1 < args.size()) {
            dur.ioFaults.maxRetries = std::stoi(args[++a]);
            io_knobs = true;
        } else if (arg == "--shards" && a + 1 < args.size()) {
            opts.net.shards =
                static_cast<std::size_t>(std::stoull(args[++a]));
        } else if (arg == "--net-loss" && a + 1 < args.size()) {
            opts.net.faults.lossRate = std::stod(args[++a]);
        } else if (arg == "--net-delay" && a + 1 < args.size()) {
            if (Status st =
                    net::parseDelaySpec(args[++a], opts.net.faults);
                !st.isOk()) {
                std::cerr << "--net-delay: " << st.toString() << "\n";
                return 2;
            }
        } else if (arg == "--net-dup" && a + 1 < args.size()) {
            opts.net.faults.duplicationRate = std::stod(args[++a]);
        } else if (arg == "--net-seed" && a + 1 < args.size()) {
            opts.net.faults.seed = std::stoull(args[++a]);
        } else if (arg == "--net-partition" && a + 1 < args.size()) {
            auto window = net::parsePartitionWindow(args[++a]);
            if (!window.ok()) {
                std::cerr << "--net-partition: "
                          << window.status().toString() << "\n";
                return 2;
            }
            opts.net.partitions.push_back(window.take());
        } else if (arg == "--barrier-deadline" && a + 1 < args.size()) {
            opts.net.barrierDeadline = std::stoull(args[++a]);
        } else if (arg == "--quorum" && a + 1 < args.size()) {
            opts.net.quorumFloor = std::stod(args[++a]);
        } else if (arg == "--max-stale" && a + 1 < args.size()) {
            opts.net.maxStaleRounds = std::stoull(args[++a]);
        } else if (arg == "--kill-point" && a + 1 < args.size()) {
            kill_spec = args[++a];
        } else if (arg == "--list-kill-points") {
            for (std::string_view site :
                 durability::killPointCatalog())
                std::cout << site << "\n";
            return 0;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage();
        }
    }
    if (epochs < 1) {
        std::cerr << "trace needs at least one epoch\n";
        return usage();
    }
    if (!durable && (recover || io_knobs || !kill_spec.empty())) {
        std::cerr << "--recover, --io-fault-*, and --kill-point "
                     "require --state-dir\n";
        return usage();
    }
    if (!opts.net.enabled() &&
        (opts.net.faults.stochastic() || !opts.net.partitions.empty())) {
        std::cerr << "--net-* fault options require --shards\n";
        return usage();
    }
    if (Status st = net::validateShardedOptions(opts.net);
        !st.isOk()) {
        std::cerr << "sharded clearing options: " << st.toString()
                  << "\n";
        return 2;
    }
    opts.horizonSeconds = opts.epochSeconds * epochs;

    // Kill points arm from here, not from src/: environment probes
    // stay outside the library per the DET-exec contract.
    if (kill_spec.empty() && durable) {
        if (const char *env = std::getenv("AMDAHL_KILL_POINT"))
            kill_spec = env;
    }
    if (!kill_spec.empty()) {
        if (Status st = durability::armKillPoint(kill_spec);
            !st.isOk()) {
            std::cerr << "--kill-point: " << st.toString() << "\n";
            return 2;
        }
    }

    // Plain (non-durable) run: stream to --trace-out or stdout.
    if (!durable) {
        std::ofstream trace_file;
        std::optional<obs::TraceSink> sink;
        std::optional<obs::TraceGuard> guard;
        if (!traceOut.empty()) {
            trace_file.open(traceOut);
            if (!trace_file) {
                std::cerr << "cannot open trace output '" << traceOut
                          << "'\n";
                return 1;
            }
            sink.emplace(trace_file);
        } else {
            sink.emplace(std::cout);
        }
        guard.emplace(*sink);

        eval::CharacterizationCache cache;
        eval::OnlineSimulator simulator(cache, opts);
        const alloc::FallbackPolicy policy;
        const auto metrics =
            simulator.run(policy, eval::FractionSource::Estimated);
        if (int rc = finishTraceSink(sink, traceOut, 0); rc != 0)
            return rc;

        std::cerr << "trace: " << epochs << " epoch(s), "
                  << metrics.jobsArrived << " job(s) arrived, "
                  << metrics.jobsCompleted << " completed, "
                  << metrics.nonConvergedEpochs
                  << " non-converged epoch(s)";
        if (opts.faults.enabled)
            std::cerr << ", " << metrics.crashEvents << " crash(es)";
        if (opts.admission.enabled)
            std::cerr << ", " << metrics.jobsShed << " shed";
        if (opts.net.enabled()) {
            std::cerr << ", " << metrics.netDegradedRounds
                      << " degraded round(s), "
                      << metrics.netQuorumCollapses
                      << " quorum collapse(s), "
                      << metrics.netRetransmits << " retransmit(s)";
        }
        std::cerr << "\n";
        return 0;
    }

    // Durable run: open the store first so bad knobs fail with their
    // classified Status before any file is touched.
    auto opened = durability::DurableStateStore::open(dur);
    if (!opened.ok()) {
        std::cerr << "--state-dir: " << opened.status().toString()
                  << "\n";
        return 1;
    }
    auto store = opened.take();

    durability::RecoveredState rec;
    bool resuming = false;
    std::uint64_t frontier_bytes = 0;
    std::uint64_t frontier_seq = 0;
    if (recover) {
        rec = store.recover();
        for (const std::string &note : rec.notes)
            std::cerr << "recover: " << note << "\n";
        resuming = rec.hasSnapshot || !rec.entries.empty();
        if (!rec.entries.empty()) {
            frontier_bytes = rec.entries.back().traceBytes;
            frontier_seq = rec.entries.back().traceSeq;
        } else if (rec.hasSnapshot) {
            auto env =
                durability::decodeSnapshotEnvelope(rec.snapshotPayload);
            if (!env.ok()) {
                std::cerr << "recover: " << env.status().toString()
                          << "\n";
                return 1;
            }
            frontier_bytes = env.value().traceBytes;
            frontier_seq = env.value().traceSeq;
        }
        if (!resuming)
            std::cerr << "recover: no durable state found; "
                         "starting fresh\n";
    }

    // The durable run owns its trace file: on recovery it truncates to
    // the journaled frontier and appends, so the finished file is
    // byte-identical to one from an uninterrupted run.
    std::ofstream trace_file;
    std::optional<obs::TraceSink> sink;
    std::optional<obs::TraceGuard> guard;
    if (!traceOut.empty()) {
        if (resuming) {
            std::error_code ec;
            const auto size =
                std::filesystem::file_size(traceOut, ec);
            if (ec || size < frontier_bytes) {
                std::cerr << "recover: trace file '" << traceOut
                          << "' is missing or shorter than the "
                             "durable frontier ("
                          << frontier_bytes << " bytes)\n";
                return 1;
            }
            std::filesystem::resize_file(traceOut, frontier_bytes,
                                         ec);
            if (ec) {
                std::cerr << "recover: cannot truncate '" << traceOut
                          << "': " << ec.message() << "\n";
                return 1;
            }
            trace_file.open(traceOut, std::ios::app);
        } else {
            trace_file.open(traceOut, std::ios::trunc);
        }
        if (!trace_file) {
            std::cerr << "cannot open trace output '" << traceOut
                      << "'\n";
            return 1;
        }
        sink.emplace(trace_file);
    } else {
        sink.emplace(std::cout);
    }
    if (resuming)
        sink->resume(frontier_bytes, frontier_seq);
    guard.emplace(*sink);

    eval::CharacterizationCache cache;
    eval::OnlineSimulator simulator(cache, opts);
    const alloc::FallbackPolicy policy;
    auto run = simulator.runDurable(policy,
                                    eval::FractionSource::Estimated,
                                    store, resuming ? &rec : nullptr);
    if (!run.ok()) {
        // The aborted run may still have buffered trace lines (and a
        // sticky IO error of its own) — flush and surface both.
        std::cerr << "trace: " << run.status().toString() << "\n";
        return finishTraceSink(sink, traceOut, 1);
    }
    const auto metrics = run.take();
    if (int rc = finishTraceSink(sink, traceOut, 0); rc != 0)
        return rc;

    std::cerr << "trace: " << epochs << " epoch(s), "
              << metrics.jobsArrived << " job(s) arrived, "
              << metrics.jobsCompleted << " completed, "
              << metrics.nonConvergedEpochs
              << " non-converged epoch(s)";
    if (opts.faults.enabled)
        std::cerr << ", " << metrics.crashEvents << " crash(es)";
    if (opts.admission.enabled)
        std::cerr << ", " << metrics.jobsShed << " shed";
    if (opts.net.enabled()) {
        std::cerr << ", " << metrics.netDegradedRounds
                  << " degraded round(s), "
                  << metrics.netQuorumCollapses
                  << " quorum collapse(s), " << metrics.netRetransmits
                  << " retransmit(s)";
    }
    std::cerr << ", " << metrics.journalCommits
              << " journal commit(s), " << metrics.snapshotsWritten
              << " snapshot(s)";
    if (metrics.ioInjectedFaults > 0)
        std::cerr << ", " << metrics.ioInjectedFaults
                  << " injected IO fault(s) (" << metrics.ioRetries
                  << " retried)";
    if (metrics.recovered)
        std::cerr << "; recovered from epoch "
                  << metrics.recoveryFrontierEpoch << " ("
                  << metrics.recoveryReplayedEpochs
                  << " epoch(s) replayed)";
    std::cerr << "\n";
    return 0;
}

int
cmdStats(const std::vector<std::string> &args)
{
    std::string path;
    bool json = false;
    core::BiddingOptions opts;
    for (const std::string &arg : args) {
        if (arg == "--gauss-seidel") {
            opts.schedule = core::UpdateSchedule::GaussSeidel;
        } else if (arg == "--json") {
            json = true;
        } else if (path.empty() && !arg.empty() && arg[0] != '-') {
            path = arg;
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage();
        }
    }
    if (path.empty())
        return usage();

    auto parsed = core::loadMarket(path);
    if (!parsed.ok()) {
        std::cerr << path << ": " << parsed.status().toString() << "\n";
        return 1;
    }
    const auto market = parsed.take();

    // Time every phase of this one solve, and zero whatever start-up
    // work already recorded so the dump attributes to the solve alone.
    obs::setTimingEnabled(true);
    obs::metrics().reset();
    const auto result = core::solveAmdahlBidding(market, opts);
    core::verifyEquilibrium(market, result);
    core::roundOutcome(market, result);

    const Status wst = json ? obs::metrics().writeJson(std::cout)
                            : obs::metrics().writeText(std::cout);
    if (!wst.isOk()) {
        std::cerr << "stats output: " << wst.toString() << "\n";
        return 1;
    }
    return result.converged ? 0 : 1;
}

int
cmdExample()
{
    std::cout << "# The paper's Section V example: two users, two\n"
              << "# 10-core servers, equal entitlements.\n"
              << "servers 10 10\n"
              << "user Alice budget 1\n"
              << "job server 0 fraction 0.53   # dedup\n"
              << "job server 1 fraction 0.93   # bodytrack\n"
              << "user Bob budget 1\n"
              << "job server 0 fraction 0.96   # x264\n"
              << "job server 1 fraction 0.68   # raytrace\n";
    return 0;
}

/** Telemetry destinations requested by the global flags. */
struct GlobalFlags
{
    std::string traceOut;
    std::string metricsOut;
    bool timing = false;
    bool spanTrace = false;
    bool ok = true;
};

/**
 * Strip the global observability flags (valid before or after the
 * subcommand) out of @p raw, applying --log-level and --timing
 * immediately. Accepts both `--flag value` and `--flag=value`.
 */
GlobalFlags
extractGlobalFlags(std::vector<std::string> &raw)
{
    GlobalFlags flags;
    auto bad = [&](const std::string &msg) {
        std::cerr << msg << "\n";
        flags.ok = false;
    };
    std::vector<std::string> kept;
    for (std::size_t a = 0; a < raw.size(); ++a) {
        const std::string &arg = raw[a];
        std::string name = arg;
        std::string value;
        bool inline_value = false;
        if (const auto eq = arg.find('='); eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
            inline_value = true;
        }
        if (name != "--trace-out" && name != "--metrics-out" &&
            name != "--log-level" && name != "--timing" &&
            name != "--span-trace" && name != "--threads" &&
            name != "--kernel") {
            kept.push_back(arg);
            continue;
        }
        if (name == "--timing") {
            if (inline_value) {
                bad("--timing takes no value");
                return flags;
            }
            flags.timing = true;
            continue;
        }
        if (name == "--span-trace") {
            if (inline_value) {
                bad("--span-trace takes no value");
                return flags;
            }
            flags.spanTrace = true;
            continue;
        }
        if (!inline_value) {
            if (a + 1 >= raw.size()) {
                bad(name + " needs a value");
                return flags;
            }
            value = raw[++a];
        }
        if (name == "--trace-out") {
            flags.traceOut = value;
        } else if (name == "--metrics-out") {
            flags.metricsOut = value;
        } else if (name == "--threads") {
            // Applied immediately: the worker pool sizes itself on
            // first use. Same-seed results are byte-identical at any
            // thread count, so this is purely a speed knob.
            try {
                exec::setThreadCount(exec::parseThreadCount(value));
            } catch (const FatalError &err) {
                bad(err.what());
                return flags;
            }
        } else if (name == "--kernel") {
            // Same contract as --threads: the scalar and SIMD kernels
            // are bit-identical, so this only moves speed. Asking for
            // an unavailable SIMD kernel is a configuration error.
            try {
                core::setBidKernelMode(core::parseBidKernelMode(value));
            } catch (const FatalError &err) {
                bad(err.what());
                return flags;
            }
        } else if (value == "quiet") {
            setLogLevel(LogLevel::Quiet);
        } else if (value == "warn") {
            setLogLevel(LogLevel::Warn);
        } else if (value == "info") {
            setLogLevel(LogLevel::Inform);
        } else {
            bad("unknown log level '" + value +
                "' (want quiet, warn, or info)");
            return flags;
        }
    }
    raw.swap(kept);
    return flags;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> raw(argv + 1, argv + argc);
    const GlobalFlags flags = extractGlobalFlags(raw);
    if (!flags.ok)
        return usage();
    if (raw.empty())
        return usage();
    if (flags.timing)
        obs::setTimingEnabled(true);
    if (flags.spanTrace)
        obs::setSpanTracingEnabled(true);

    const std::string command = raw[0];

    // The trace subcommand owns its trace file (crash recovery must
    // truncate-and-append rather than start over), so --trace-out is
    // handed to it instead of being opened here.
    std::ofstream trace_file;
    std::optional<obs::TraceSink> sink;
    std::optional<obs::TraceGuard> guard;
    if (!flags.traceOut.empty() && command != "trace") {
        trace_file.open(flags.traceOut);
        if (!trace_file) {
            std::cerr << "cannot open trace output '" << flags.traceOut
                      << "'\n";
            return 1;
        }
        sink.emplace(trace_file);
        guard.emplace(*sink);
    }

    std::vector<std::string> args(raw.begin() + 1, raw.end());
    int status = 2;
    bool known = true;
    try {
        if (command == "solve")
            status = cmdSolve(args);
        else if (command == "check")
            status = cmdCheck(args);
        else if (command == "workloads")
            status = cmdWorkloads();
        else if (command == "profile")
            status = cmdProfile(args);
        else if (command == "simulate")
            status = cmdSimulate(args);
        else if (command == "example")
            status = cmdExample();
        else if (command == "trace")
            status = cmdTrace(args, flags.traceOut);
        else if (command == "stats")
            status = cmdStats(args);
        else
            known = false;
    } catch (const std::exception &err) {
        std::cerr << err.what() << "\n";
        status = 1;
    }
    if (!known)
        return usage();

    if (sink) {
        (void)sink->flush();
        // Surface any write/flush failure the run latched: a trace
        // that silently lost lines must not exit 0.
        if (Status st = sink->status(); !st.isOk()) {
            std::cerr << "trace output '" << flags.traceOut
                      << "': " << st.toString() << "\n";
            if (status == 0)
                status = 1;
        }
    }
    if (!flags.metricsOut.empty()) {
        std::ofstream out(flags.metricsOut);
        if (!out) {
            std::cerr << "cannot open metrics output '"
                      << flags.metricsOut << "'\n";
            return 1;
        }
        const bool text = flags.metricsOut.size() >= 4 &&
                          flags.metricsOut.compare(
                              flags.metricsOut.size() - 4, 4,
                              ".txt") == 0;
        Status wst = text ? obs::metrics().writeText(out)
                          : obs::metrics().writeJson(out);
        out.flush();
        if (wst.isOk() && !out.good())
            wst = Status::error(ErrorKind::IoError, 0,
                                "stream failed after final write");
        if (!wst.isOk()) {
            std::cerr << "metrics output '" << flags.metricsOut
                      << "': " << wst.toString() << "\n";
            if (status == 0)
                status = 1;
        }
    }
    return status;
}
