#!/usr/bin/env python3
"""Reconstruct the span DAG of an amdahl_market trace and attribute
round latency along the virtual-time critical path.

Usage: trace_analyze.py trace.jsonl [--chrome out.json] [--validate]

Reads the `span` events emitted under --span-trace (obs/span.hh,
DESIGN.md section 15), rebuilds the per-round span DAG, and reports:

  - round-latency percentiles (p50/p99) in virtual ticks;
  - per-cause latency attribution (compute / net_delay / retransmit /
    partition_wait / quorum_wait) with the invariant that the causes
    of every round sum exactly to its latency;
  - a critical-path cross-check for fresh rounds: the price-broadcast
    and bid-aggregate transfer spans along the closing chain must
    reproduce the round's net_delay and retransmit charges;
  - transfer outcome counts (delivered / lost / partition_drop /
    duplicate).

--chrome exports every span as a Chrome trace_event "X" (complete)
event: ts/dur are virtual ticks, tid is the shard (0 for control
spans), span causality is kept in args. Load via chrome://tracing or
Perfetto.

--validate exits 1 on any structural violation (orphaned parents,
time inversion, duplicate IDs, attribution-sum mismatch, failed
critical-path cross-check); without it, violations are reported but
only attribution-sum failures are fatal.

Exit status: 0 clean, 1 on violations or an unreadable/span-free
trace, 2 on usage errors.
"""

import json
import sys

SPAN_NAMES = {"epoch", "rung", "round", "barrier", "compute", "fold",
              "price_xfer", "bid_xfer"}
SPAN_CAUSES = {"compute", "net_delay", "retransmit", "partition_wait",
               "quorum_wait"}
XFER_OUTCOMES = {"delivered", "lost", "partition_drop", "duplicate"}
ROUND_COSTS = ("c_compute", "c_delay", "c_retransmit", "c_partition",
               "c_quorum")


def load_spans(path):
    """Parse the trace, returning ([span dicts], [error strings])."""
    spans = []
    errors = []
    with open(path) as stream:
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as err:
                errors.append(f"line {line_no}: not valid JSON: {err}")
                continue
            if event.get("ev") != "span":
                continue
            event["_line"] = line_no
            spans.append(event)
    return spans, errors


def validate_graph(spans):
    """Structural checks over the whole DAG.

    Span parents may be emitted after their children (a round span
    closes after its transfers), so everything here runs after the
    full stream is loaded.
    """
    errors = []
    by_id = {}
    for span in spans:
        sid = span.get("id")
        where = f"line {span['_line']}"
        if span.get("name") not in SPAN_NAMES:
            errors.append(
                f"{where}: unknown span name {span.get('name')!r}")
        if not isinstance(sid, int) or sid == 0:
            errors.append(f"{where}: bad span id {sid!r}")
            continue
        if sid in by_id:
            errors.append(f"{where}: duplicate span id {sid}")
            continue
        by_id[sid] = span
        if span["t0"] > span["t1"]:
            errors.append(
                f"{where}: span {sid} time-inverted "
                f"(t0 {span['t0']} > t1 {span['t1']})")
    for span in spans:
        parent = span.get("parent", 0)
        if parent == 0:
            continue
        where = f"line {span['_line']}"
        if parent not in by_id:
            errors.append(
                f"{where}: orphaned span {span.get('id')}: parent "
                f"{parent} never emitted")
        elif by_id[parent]["t0"] > span["t0"]:
            errors.append(
                f"{where}: span {span.get('id')} begins before its "
                f"parent {parent}")
    return by_id, errors


def critical_path_check(rounds, xfers_by_parent, by_id):
    """Cross-check each fresh round's attribution against its DAG.

    A fresh round's latency decomposes along the closing chain —
    price broadcast to the closer shard, then the closer's bid
    transfer that satisfied the barrier. The transfer spans under the
    round's barrier must reproduce the round span's c_delay and
    c_retransmit charges; a mismatch means the emitter and the DAG
    disagree about what actually closed the barrier.
    """
    errors = []
    for rnd in rounds:
        if rnd.get("cause") not in ("net_delay", "retransmit"):
            continue  # degraded/collapsed or zero-latency round
        barrier = next(
            (sid for sid, span in by_id.items()
             if span.get("name") == "barrier" and
             span.get("parent") == rnd["id"]), None)
        if barrier is None:
            errors.append(
                f"round {rnd.get('round')}: no barrier span")
            continue
        xfers = xfers_by_parent.get(barrier, [])
        closer = rnd.get("closer", 0)
        price = [x for x in xfers
                 if x["name"] == "price_xfer" and
                 x.get("shard") == closer and
                 x.get("outcome") == "delivered" and
                 x["t0"] == rnd["t0"]]
        bids = [x for x in xfers
                if x["name"] == "bid_xfer" and
                x.get("shard") == closer and
                x.get("outcome") == "delivered" and
                x["t1"] == rnd["t1"]]
        want_delay = rnd.get("c_delay", 0)
        want_retr = rnd.get("c_retransmit", 0)
        ok = any(
            (p["t1"] - p["t0"]) + (b["t1"] - b["t0"]) == want_delay
            and b["t0"] - p["t1"] == want_retr
            for p in price for b in bids)
        if not ok:
            errors.append(
                f"round {rnd.get('round')}: no closing "
                f"price/bid transfer chain reproduces c_delay "
                f"{want_delay} + c_retransmit {want_retr}")
    return errors


def percentile(sorted_values, fraction):
    if not sorted_values:
        return 0
    index = int(fraction * (len(sorted_values) - 1))
    return sorted_values[index]


def chrome_export(spans, path):
    """Write a Chrome trace_event JSON file of complete ("X") events."""
    events = []
    for span in spans:
        args = {"id": str(span.get("id")),
                "parent": str(span.get("parent", 0))}
        for key in ("round", "cause", "outcome", "attempt", "epoch"):
            if key in span:
                args[key] = span[key]
        events.append({
            "name": span.get("name"),
            "cat": "amdahl",
            "ph": "X",
            "ts": span["t0"],
            "dur": span["t1"] - span["t0"],
            "pid": 1,
            "tid": span.get("shard", -1) + 1,
            "args": args,
        })
    with open(path, "w") as out:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                  out)
        out.write("\n")


def main():
    argv = sys.argv[1:]
    path = None
    chrome_out = None
    validate = False
    while argv:
        arg = argv.pop(0)
        if arg == "--chrome":
            if not argv:
                print("--chrome needs a value", file=sys.stderr)
                return 2
            chrome_out = argv.pop(0)
        elif arg == "--validate":
            validate = True
        elif path is None and not arg.startswith("-"):
            path = arg
        else:
            print(__doc__.strip().splitlines()[0], file=sys.stderr)
            return 2
    if path is None:
        print("usage: trace_analyze.py trace.jsonl "
              "[--chrome out.json] [--validate]", file=sys.stderr)
        return 2

    try:
        spans, errors = load_spans(path)
    except OSError as err:
        print(f"cannot read '{path}': {err}", file=sys.stderr)
        return 1
    if not spans:
        print(f"no span events in '{path}' (captured without "
              f"--span-trace?)", file=sys.stderr)
        return 1

    by_id, graph_errors = validate_graph(spans)
    errors.extend(graph_errors)

    rounds = [s for s in spans if s.get("name") == "round"]
    xfers_by_parent = {}
    outcomes = {key: 0 for key in sorted(XFER_OUTCOMES)}
    for span in spans:
        if span.get("name") in ("price_xfer", "bid_xfer"):
            xfers_by_parent.setdefault(
                span.get("parent", 0), []).append(span)
            if span.get("outcome") in outcomes:
                outcomes[span["outcome"]] += 1

    # Attribution-sum gate: always fatal. An analyzer that cannot
    # account for 100% of a round's latency is lying about the
    # critical path.
    sum_errors = []
    totals = {key: 0 for key in ROUND_COSTS}
    latencies = []
    for rnd in rounds:
        latency = rnd["t1"] - rnd["t0"]
        causes = sum(rnd.get(key, 0) for key in ROUND_COSTS)
        if causes != latency or rnd.get("ticks") != latency:
            sum_errors.append(
                f"round {rnd.get('round')}: causes sum to {causes}, "
                f"latency is {latency} (ticks field "
                f"{rnd.get('ticks')})")
        latencies.append(latency)
        for key in ROUND_COSTS:
            totals[key] += rnd.get(key, 0)
    latencies.sort()

    path_errors = critical_path_check(rounds, xfers_by_parent, by_id)

    total_ticks = sum(latencies)
    print(f"{len(spans)} span(s), {len(rounds)} round(s), "
          f"{sum(1 for r in rounds if not r.get('fresh', True))} "
          f"degraded")
    if rounds:
        print(f"round latency: p50 {percentile(latencies, 0.5)} / "
              f"p99 {percentile(latencies, 0.99)} / max "
              f"{latencies[-1]} tick(s)")
    print("transfers: " + ", ".join(
        f"{count} {name}" for name, count in outcomes.items()))
    print()
    print(f"{'cause':<16}{'ticks':>10}  share")
    labels = {"c_compute": "compute", "c_delay": "net_delay",
              "c_retransmit": "retransmit",
              "c_partition": "partition_wait",
              "c_quorum": "quorum_wait"}
    for key in ROUND_COSTS:
        ticks = totals[key]
        if total_ticks == 0:
            share = "100.0%" if key == "c_compute" else "-"
        else:
            share = f"{100.0 * ticks / total_ticks:.1f}%"
        print(f"{labels[key]:<16}{ticks:>10}  {share}")

    if chrome_out is not None:
        chrome_export(spans, chrome_out)
        print(f"\nwrote {chrome_out} "
              f"({len(spans)} trace_event span(s))")

    fatal = list(sum_errors)
    advisory = errors + path_errors
    if validate:
        fatal += advisory
        advisory = []
    for message in advisory:
        print(f"warning: {message}", file=sys.stderr)
    if fatal:
        for message in fatal:
            print(f"error: {message}", file=sys.stderr)
        print(f"{len(fatal)} violation(s)", file=sys.stderr)
        return 1
    print(f"\nattribution: causes sum to round latency in "
          f"{len(rounds)}/{len(rounds)} round(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
