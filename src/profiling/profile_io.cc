#include "profile_io.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "common/csv.hh"

namespace amdahl::profiling {

namespace {

/** Parse one CSV cell as a finite double (from_chars; no exceptions). */
Status
parseCell(const std::string &cell, int line, const char *what,
          double &value)
{
    double parsed = 0.0;
    const char *first = cell.data();
    const char *last = cell.data() + cell.size();
    const auto [ptr, ec] = std::from_chars(first, last, parsed);
    if (ec == std::errc::result_out_of_range) {
        return Status::error(ErrorKind::DomainError, line, what, " '",
                             cell, "' is out of range");
    }
    if (ec != std::errc() || ptr != last) {
        return Status::error(ErrorKind::ParseError, line,
                             "expected a number for ", what, ", got '",
                             cell, "'");
    }
    if (!std::isfinite(parsed)) {
        return Status::error(ErrorKind::DomainError, line, what,
                             " must be finite, got '", cell, "'");
    }
    value = parsed;
    return Status::ok();
}

} // namespace

Result<WorkloadProfile>
tryParseProfileCsv(std::istream &in, std::string workloadName)
{
    auto parsed = parseCsv(in);
    if (!parsed.ok())
        return parsed.status();
    const CsvTable table = parsed.take();

    const std::size_t col_gb = table.columnIndex("dataset_gb");
    const std::size_t col_cores = table.columnIndex("cores");
    const std::size_t col_seconds = table.columnIndex("seconds");
    if (col_gb == CsvTable::npos || col_cores == CsvTable::npos ||
        col_seconds == CsvTable::npos) {
        return Status::error(
            ErrorKind::SemanticError, 1,
            "profile CSV needs columns dataset_gb, cores, seconds");
    }

    WorkloadProfile profile;
    profile.workloadName = std::move(workloadName);
    std::set<std::pair<double, int>> seen;
    // Data rows start on line 2; quoted multi-line cells would shift
    // this, but numeric profiles have no business containing them.
    int line = 1;
    for (const auto &row : table.rows) {
        ++line;
        double gb = 0.0, cores_raw = 0.0, seconds = 0.0;
        if (auto st = parseCell(row[col_gb], line, "dataset_gb", gb);
            !st.isOk()) {
            return st;
        }
        if (auto st = parseCell(row[col_cores], line, "cores",
                                cores_raw);
            !st.isOk()) {
            return st;
        }
        if (auto st = parseCell(row[col_seconds], line, "seconds",
                                seconds);
            !st.isOk()) {
            return st;
        }
        if (gb <= 0.0) {
            return Status::error(ErrorKind::DomainError, line,
                                 "dataset_gb must be positive, got ",
                                 gb);
        }
        if (cores_raw < 1.0 ||
            cores_raw != std::floor(cores_raw) ||
            cores_raw > static_cast<double>(
                            std::numeric_limits<int>::max())) {
            return Status::error(ErrorKind::DomainError, line,
                                 "cores must be a positive integer, "
                                 "got '",
                                 row[col_cores], "'");
        }
        if (seconds <= 0.0) {
            return Status::error(ErrorKind::DomainError, line,
                                 "seconds must be positive, got ",
                                 seconds);
        }
        const int cores = static_cast<int>(cores_raw);
        if (!seen.insert({gb, cores}).second) {
            return Status::error(ErrorKind::SemanticError, line,
                                 "duplicate grid cell (", gb, " GB, ",
                                 cores, " cores)");
        }
        ProfilePoint pt;
        pt.datasetGB = gb;
        pt.cores = cores;
        pt.seconds = seconds;
        profile.points.push_back(pt);
    }

    if (profile.points.empty()) {
        return Status::error(ErrorKind::SemanticError, line,
                             "profile CSV has no measurements");
    }

    // Reconstruct the grid axes and enforce the Karp-Flatt anchors:
    // every dataset needs its single-core reference measurement.
    std::set<int> cores_seen;
    std::map<double, bool> dataset_has_one_core;
    for (const auto &pt : profile.points) {
        cores_seen.insert(pt.cores);
        dataset_has_one_core[pt.datasetGB] |= pt.cores == 1;
    }
    for (const auto &[gb, has_one] : dataset_has_one_core) {
        if (!has_one) {
            return Status::error(
                ErrorKind::SemanticError, line, "dataset ", gb,
                " GB has no single-core measurement (speedups are "
                "relative to one core)");
        }
        profile.datasetsGB.push_back(gb);
    }
    profile.coreCounts.assign(cores_seen.begin(), cores_seen.end());
    return profile;
}

Result<WorkloadProfile>
tryParseProfileCsvString(const std::string &text,
                         std::string workloadName)
{
    std::istringstream is(text);
    return tryParseProfileCsv(is, std::move(workloadName));
}

Result<WorkloadProfile>
loadProfileCsv(const std::string &path, std::string workloadName)
{
    std::ifstream in(path);
    if (!in) {
        return Status::error(ErrorKind::IoError, 0, "cannot open '",
                             path, "'");
    }
    return tryParseProfileCsv(in, std::move(workloadName));
}

void
writeProfileCsv(std::ostream &out, const WorkloadProfile &profile)
{
    const auto saved_precision = out.precision(
        std::numeric_limits<double>::max_digits10);
    CsvWriter csv(out, {"dataset_gb", "cores", "seconds"});
    for (const auto &pt : profile.points) {
        std::ostringstream gb, sec;
        gb.precision(std::numeric_limits<double>::max_digits10);
        sec.precision(std::numeric_limits<double>::max_digits10);
        gb << pt.datasetGB;
        sec << pt.seconds;
        csv.writeRow({gb.str(), std::to_string(pt.cores), sec.str()});
    }
    out.precision(saved_precision);
}

} // namespace amdahl::profiling
