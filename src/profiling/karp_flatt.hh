/**
 * @file
 * Karp-Flatt parallel-fraction estimation pipeline (Section IV).
 *
 * For each profiled core count x, F(x) = (1 - 1/s(x)) / (1 - 1/x)
 * estimates the parallel fraction. When Amdahl's Law holds, F(x) is flat
 * in x (Figure 1); the paper summarizes the per-workload estimates with
 * their mean (Figure 2) and variance (Figure 3) across core counts, and
 * aggregates per-dataset expectations with the geometric mean when
 * profiling multiple sampled datasets (Figure 6).
 */

#ifndef AMDAHL_PROFILING_KARP_FLATT_HH
#define AMDAHL_PROFILING_KARP_FLATT_HH

#include <vector>

#include "profiling/profiler.hh"

namespace amdahl::profiling {

/** Per-dataset Karp-Flatt analysis (paper Eq. 3 evaluated per x). */
struct FractionEstimate
{
    double datasetGB = 0.0;
    std::vector<int> coreCounts;   //!< x values (> 1).
    std::vector<double> fractions; //!< F(x) per core count, clamped.
    double expected = 0.0;         //!< E[F] = mean over core counts.
    double variance = 0.0;         //!< Var(F) over core counts.
    double medianF = 0.0;          //!< Median F(x) — outlier-robust.
};

/**
 * Karp-Flatt estimates can leave [0, 1] when speedups are sub-serial
 * (overheads exceed all parallel gains) or super-linear; estimates are
 * clamped into this range before aggregation so geometric means stay
 * defined.
 */
constexpr double minClampedFraction = 0.01;

/**
 * Run the Karp-Flatt analysis on one profiled dataset.
 *
 * @param profile   Grid profile containing the dataset.
 * @param datasetGB Which dataset to analyze.
 */
FractionEstimate estimateFraction(const WorkloadProfile &profile,
                                  double datasetGB);

/**
 * How per-dataset expectations E[F_d] combine into the workload-level
 * estimate. The paper uses the geometric mean (Section IV-C); the
 * robust variants resist the outliers noisy sampled profiling
 * produces — one corrupted dataset profile drags a geometric mean but
 * barely moves a median.
 */
enum class FractionAggregator
{
    GeometricMean, //!< The paper's aggregator (the default).
    Median,        //!< Median of E[F_d]; breakdown point 50%.
    TrimmedMean,   //!< 20%-per-tail trimmed mean of E[F_d].
};

/** @return Short label for an aggregator ("geomean", ...). */
const char *toString(FractionAggregator aggregator);

/**
 * The workload-level estimate from sampled datasets: the per-dataset
 * expectations E[F_d] combined by the chosen aggregator (paper
 * Section IV-C uses the geometric mean).
 *
 * @param profile    Grid profile over all sampled datasets.
 * @param aggregator How the per-dataset expectations combine.
 * @return Estimated parallel fraction in (0, 1].
 */
double estimateFractionFromSamples(
    const WorkloadProfile &profile,
    FractionAggregator aggregator = FractionAggregator::GeometricMean);

} // namespace amdahl::profiling

#endif // AMDAHL_PROFILING_KARP_FLATT_HH
