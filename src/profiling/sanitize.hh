/**
 * @file
 * Sanitization and robust repair of tenant-reported inputs (§III/§VI).
 *
 * The paper's f-estimates come from noisy sampled profiling, and a
 * strategic tenant may misreport outright. Two defenses live here:
 *
 *  1. Speedup-curve sanitization. Profiled s(x) curves can contain
 *     NaNs (a failed run), sub-serial points (s < 1 when overheads
 *     swamp the parallel gain), super-linear points (cache effects or
 *     measurement error), and non-monotone dips. `sanitizeSpeedups`
 *     clamps or repairs each pathology and reports exactly what it
 *     changed, so callers choose reject-vs-repair: a repair count of
 *     zero means the curve was clean; a large one means the profile
 *     should be re-collected.
 *
 *  2. Market report policing. `sanitizeMarketReports` bounds-checks
 *     every tenant-supplied parallel fraction against the operator's
 *     configured band and applies a budget penalty to tenants whose
 *     reports had to be clamped — the misreport-penalty hook the
 *     market applies before clearing, making inflated-f probes
 *     unprofitable (§VI-E studies exactly this incentive).
 */

#ifndef AMDAHL_PROFILING_SANITIZE_HH
#define AMDAHL_PROFILING_SANITIZE_HH

#include <cstddef>
#include <vector>

#include "core/market.hh"

namespace amdahl::profiling {

/** Knobs of the speedup-curve repair pass. */
struct SanitizeOptions
{
    /** Floor for any speedup sample (sub-serial points clamp here,
     *  keeping Karp-Flatt finite). Must be positive. */
    double minSpeedup = 1e-3;

    /** Clip super-linear samples to c * x (1.0 = hard Amdahl bound;
     *  slightly above 1 tolerates measurement jitter). */
    double superLinearSlack = 1.05;

    /** Repair non-monotone dips with a running maximum (isotonic
     *  envelope). Off leaves physical dips — parallel overheads do
     *  produce them — and only fixes non-finite/out-of-band points. */
    bool enforceMonotone = false;
};

/** What the repair pass changed (all zero on a clean curve). */
struct SanitizeReport
{
    int nonFiniteRepaired = 0;  //!< NaN/Inf samples replaced.
    int subSerialClamped = 0;   //!< Samples raised to minSpeedup.
    int superLinearClamped = 0; //!< Samples clipped to slack * x.
    int monotoneRaised = 0;     //!< Dips raised to the running max.

    /** @return Total number of repaired samples. */
    int total() const
    {
        return nonFiniteRepaired + subSerialClamped +
               superLinearClamped + monotoneRaised;
    }

    /** @return true when the curve needed no repair. */
    bool clean() const { return total() == 0; }
};

/**
 * Repair a profiled speedup curve in place.
 *
 * @param speedups   s(x) samples, parallel to coreCounts.
 * @param coreCounts The x values (each > 1); same length.
 * @param opts       Repair knobs.
 * @return What was changed.
 * @throws FatalError on shape mismatch or invalid options (caller
 *         bugs — the *data* never throws).
 */
SanitizeReport sanitizeSpeedups(std::vector<double> &speedups,
                                const std::vector<int> &coreCounts,
                                const SanitizeOptions &opts = {});

/** Per-tenant f-report bounds and the misreport penalty. */
struct ReportPolicy
{
    /** Reports below this clamp up (a zero-f report is a denial-of-
     *  utility probe: it forces the even-split bidding path). */
    double minFraction = 0.0;

    /** Reports above this clamp down. The paper's Fig. 2 tops out
     *  near 0.9997; a reported 1.0 claims embarrassing parallelism
     *  no profiled workload exhibits. */
    double maxFraction = 1.0;

    /** Budget multiplier in (0, 1] applied once to any tenant whose
     *  reports needed clamping — the market-side cost of misreporting
     *  (1.0 = clamp silently, no penalty). */
    double misreportPenalty = 1.0;
};

/** Outcome of policing one market's reports. */
struct ReportAudit
{
    int clampedJobs = 0;      //!< Jobs whose f left the policy band.
    int repairedJobs = 0;     //!< Jobs with non-finite f or weight.
    int penalizedUsers = 0;   //!< Users whose budget was scaled.
    std::vector<char> flagged; //!< Per-user misreport flag.

    /** @return true when every report was inside the band. */
    bool clean() const { return clampedJobs + repairedJobs == 0; }
};

/**
 * Bounds-check tenant-reported job specs and apply the misreport
 * penalty, producing the market that actually clears.
 *
 * This is the pre-admission form: raw reports are policed *before*
 * market construction, which is what makes repair possible at all —
 * FisherMarket::addUser rejects non-finite values outright, so a
 * hostile report must be caught while it is still a plain spec.
 * Non-finite fractions repair to the policy's midpoint and non-finite
 * or non-positive weights to 1 (repair, not reject: the epoch must
 * still clear). Budgets of flagged users are scaled by
 * `policy.misreportPenalty`.
 *
 * @param capacities Server capacities C_j (operator-controlled).
 * @param reports    Tenant-supplied users; fractions/weights may be
 *                   arbitrary garbage, but budgets and server indices
 *                   must already be valid (they come from the
 *                   operator's entitlement ledger and placement, not
 *                   from the tenant).
 * @param policy     Bounds and penalty.
 * @param audit      Optional out-param describing every change.
 * @return The sanitized market.
 */
core::FisherMarket
sanitizeMarketReports(std::vector<double> capacities,
                      std::vector<core::MarketUser> reports,
                      const ReportPolicy &policy,
                      ReportAudit *audit = nullptr);

/**
 * Convenience overload over an already-constructed market (whose
 * reports are necessarily finite; only band clamping can fire).
 */
core::FisherMarket
sanitizeMarketReports(const core::FisherMarket &market,
                      const ReportPolicy &policy,
                      ReportAudit *audit = nullptr);

} // namespace amdahl::profiling

#endif // AMDAHL_PROFILING_SANITIZE_HH
