/**
 * @file
 * CSV serialization of workload profiles.
 *
 * Profiles in this reproduction come from the execution simulator, but
 * the deployment the paper targets collects them from `perf stat` and
 * Spark event logs — i.e. from files a tenant hands the operator. This
 * module is that ingestion path: a `dataset_gb,cores,seconds` CSV is
 * parsed with structured, line-numbered errors (common/status.hh) and
 * validated against the grid invariants the Karp-Flatt pipeline
 * assumes — every dataset profiled at one core (speedups are relative
 * to it), positive measurements, and no duplicate grid cells.
 *
 * Header line:      dataset_gb,cores,seconds
 * Record example:   2.5,8,41.7
 */

#ifndef AMDAHL_PROFILING_PROFILE_IO_HH
#define AMDAHL_PROFILING_PROFILE_IO_HH

#include <iosfwd>
#include <string>

#include "common/status.hh"
#include "profiling/profiler.hh"

namespace amdahl::profiling {

/**
 * Parse a profile CSV (untrusted input; never throws on bad bytes).
 *
 * Domain errors: non-numeric/non-finite cells, non-positive dataset
 * sizes, core counts, or measured seconds. Semantic errors: duplicate
 * (dataset, cores) grid cells and datasets with no single-core
 * measurement.
 *
 * @param in           The CSV stream.
 * @param workloadName Name recorded on the resulting profile.
 * @return The profile (core counts and datasets sorted ascending), or
 *         the first classified error.
 */
Result<WorkloadProfile> tryParseProfileCsv(std::istream &in,
                                           std::string workloadName);

/** Convenience: structured parse from a string. */
Result<WorkloadProfile>
tryParseProfileCsvString(const std::string &text,
                         std::string workloadName);

/**
 * Open and parse a profile CSV file.
 *
 * @param path         Filesystem path.
 * @param workloadName Name recorded on the resulting profile.
 * @return The profile, an IoError when the file cannot be opened, or
 *         the first parse/domain/semantic error.
 */
Result<WorkloadProfile> loadProfileCsv(const std::string &path,
                                       std::string workloadName);

/** Write a profile in the same format (round-trips through
 *  tryParseProfileCsv). */
void writeProfileCsv(std::ostream &out, const WorkloadProfile &profile);

} // namespace amdahl::profiling

#endif // AMDAHL_PROFILING_PROFILE_IO_HH
