/**
 * @file
 * Execution profiler (Section III, "Physical Server Profiling").
 *
 * Runs a workload across a (core count x dataset size) grid and records
 * execution times — the role `perf stat` and the Spark event log play in
 * the paper. One core is always profiled (speedups are relative to it).
 */

#ifndef AMDAHL_PROFILING_PROFILER_HH
#define AMDAHL_PROFILING_PROFILER_HH

#include <vector>

#include "sim/task_sim.hh"
#include "sim/workload.hh"

namespace amdahl::profiling {

/** One measurement. */
struct ProfilePoint
{
    double datasetGB = 0.0;
    int cores = 0;
    double seconds = 0.0;
};

/** A workload's measurements over the profiling grid. */
struct WorkloadProfile
{
    std::string workloadName;
    std::vector<int> coreCounts;      //!< Ascending, includes 1.
    std::vector<double> datasetsGB;   //!< Ascending.
    std::vector<ProfilePoint> points; //!< One per grid cell.

    /** @return Measured seconds at a grid cell. Fatal if not profiled. */
    double secondsAt(double datasetGB, int cores) const;

    /** @return Speedups s(x) = T(1)/T(x) for all x > 1 at a dataset. */
    std::vector<double> speedups(double datasetGB) const;

    /** @return The core counts greater than one (Karp-Flatt domain). */
    std::vector<int> multiCoreCounts() const;
};

/**
 * Grid profiler over the execution simulator.
 */
class Profiler
{
  public:
    /**
     * @param simulator   The machine to profile on.
     * @param core_counts Core counts to measure; 1 is added if missing.
     *                    Defaults to the ladder used in the paper's
     *                    figures, clipped to the simulator's server.
     */
    explicit Profiler(sim::TaskSimulator simulator,
                      std::vector<int> core_counts = {});

    /** @return The core-count ladder in use. */
    const std::vector<int> &coreCounts() const { return cores_; }

    /** @return The simulator driving the measurements. */
    const sim::TaskSimulator &simulator() const { return sim_; }

    /**
     * Profile a workload at the given dataset sizes.
     *
     * @param workload   The benchmark.
     * @param datasetsGB Dataset sizes to measure (each positive).
     */
    WorkloadProfile profile(const sim::WorkloadSpec &workload,
                            const std::vector<double> &datasetsGB) const;

  private:
    sim::TaskSimulator sim_;
    std::vector<int> cores_;
};

} // namespace amdahl::profiling

#endif // AMDAHL_PROFILING_PROFILER_HH
