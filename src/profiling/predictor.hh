/**
 * @file
 * The two-dimensional performance predictor (Section IV-B, Figure 5).
 *
 * Combines the two flows of the paper's methodology figure:
 *
 *  - horizontal: Karp-Flatt estimates the parallel fraction from
 *    speedups at sampled core counts;
 *  - vertical: linear models estimate execution time from dataset size
 *    at each profiled core count.
 *
 * Prediction scales a time estimate twice — by the linear model for the
 * target dataset size and by Amdahl's Law for the target core count.
 */

#ifndef AMDAHL_PROFILING_PREDICTOR_HH
#define AMDAHL_PROFILING_PREDICTOR_HH

#include <map>
#include <vector>

#include "common/stats.hh"
#include "profiling/profiler.hh"
#include "solver/linear_model.hh"

namespace amdahl::profiling {

/** Fitting options for PerformancePredictor. */
struct PredictorOptions
{
    /**
     * Allow quadratic dataset-scaling models. The paper's methodology
     * uses linear models but notes some workloads (QR decomposition)
     * scale quadratically; with this enabled, a quadratic model
     * replaces the linear one whenever the linear fit's R^2 falls
     * below `linearR2Threshold` and the quadratic fit improves on it.
     * Disabled by default to match the paper's evaluated pipeline.
     */
    bool allowQuadratic = false;

    /** Linear-fit quality below which quadratic is considered. */
    double linearR2Threshold = 0.995;
};

/**
 * Execution-time and parallelizability predictor fitted from sampled
 * profiles.
 */
class PerformancePredictor
{
  public:
    /**
     * Fit a predictor from a grid profile over sampled datasets.
     *
     * @param profile Grid with at least two dataset sizes (for the
     *                linear models) and at least one core count > 1
     *                (for Karp-Flatt).
     * @param opts    Model-selection options.
     */
    static PerformancePredictor fit(const WorkloadProfile &profile,
                                    const PredictorOptions &opts = {});

    /** @return The estimated parallel fraction (Amdahl utility's f). */
    double parallelFraction() const { return fraction; }

    /** @return The linear time-vs-dataset model at a profiled count. */
    const solver::LinearModel &modelForCores(int cores) const;

    /** @return The profiled core counts with fitted models. */
    std::vector<int> modeledCoreCounts() const;

    /**
     * @return Degree of the selected dataset-scaling model: 1 when the
     * linear models were kept, 2 when quadratic models were selected
     * (only possible with PredictorOptions::allowQuadratic).
     */
    std::size_t scalingDegree() const { return degree; }

    /**
     * Predict execution time for any (dataset, cores) point.
     *
     * Uses the linear model at the largest profiled core count — the
     * paper observes those profiles are fastest to collect and most
     * accurate — then rescales with Amdahl's Law:
     *     T(d, x) = T_ref(d) * s(x_ref) / s(x).
     *
     * @param datasetGB Target dataset size (> 0).
     * @param cores     Target core allocation (>= 1).
     */
    double predictSeconds(double datasetGB, int cores) const;

  private:
    double fraction = 0.5;
    int referenceCores = 1;
    std::size_t degree = 1;
    std::map<int, solver::LinearModel> models;
    std::map<int, solver::PolynomialModel> polyModels;
};

/** Prediction accuracy against full-dataset measurements (Figs 7-8). */
struct PredictionErrorReport
{
    std::vector<int> coreCounts;
    std::vector<double> predictedSeconds;
    std::vector<double> measuredSeconds;
    std::vector<double> errorPercent; //!< 100 |pred - meas| / meas.
    BoxplotSummary errorSummary;      //!< Figure 8's boxplot.
    double meanErrorPercent = 0.0;
};

/**
 * Evaluate a predictor against fresh full-dataset measurements.
 *
 * @param predictor   Fitted on sampled datasets.
 * @param simulator   Ground-truth executions.
 * @param workload    The benchmark.
 * @param datasetGB   The (full) dataset to evaluate on.
 * @param core_counts Allocations to test (each > 0).
 */
PredictionErrorReport
evaluatePredictor(const PerformancePredictor &predictor,
                  const sim::TaskSimulator &simulator,
                  const sim::WorkloadSpec &workload, double datasetGB,
                  const std::vector<int> &core_counts);

} // namespace amdahl::profiling

#endif // AMDAHL_PROFILING_PREDICTOR_HH
