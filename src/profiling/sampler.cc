#include "sampler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace amdahl::profiling {

SamplingPlan
planSamples(const sim::WorkloadSpec &workload, const SamplerOptions &opts)
{
    workload.validate();
    SamplingPlan plan;
    plan.fullSizeGB = workload.datasetGB;

    if (workload.suite == sim::Suite::Spark) {
        // Prefer the absolute ladder; it matches the paper's 1-6 GB
        // subsets of the 24 GB webspam input.
        for (double gb : opts.sparkLadderGB) {
            if (gb < workload.datasetGB)
                plan.sampleSizesGB.push_back(gb);
        }
        if (plan.sampleSizesGB.size() < 3) {
            // Small datasets (kmeans's 327 MB census file): fall back to
            // proportional subsets.
            plan.sampleSizesGB.clear();
            for (double frac : opts.smallDatasetFractions)
                plan.sampleSizesGB.push_back(frac * workload.datasetGB);
        }
        // Enforce the minimum-parallelism footnote where possible: a
        // sample should yield at least minTasksPerSample blocks.
        const double min_gb =
            opts.minTasksPerSample * workload.blockSizeGB;
        auto clamped = plan.sampleSizesGB;
        for (double &gb : clamped)
            gb = std::max(gb, std::min(min_gb, workload.datasetGB));
        std::sort(clamped.begin(), clamped.end());
        clamped.erase(std::unique(clamped.begin(), clamped.end()),
                      clamped.end());
        // Tiny datasets (kmeans's 327 MB census file) cannot satisfy
        // the footnote without collapsing the plan to a single size;
        // keep the unclamped ladder there — insufficient parallelism
        // is exactly the pathology the paper reports for them.
        if (clamped.size() >= 2)
            plan.sampleSizesGB = std::move(clamped);
    } else {
        // PARSEC: simlarge-class inputs are fixed fractions of native.
        for (double frac : opts.parsecFractions)
            plan.sampleSizesGB.push_back(frac * workload.datasetGB);
    }

    if (plan.sampleSizesGB.empty())
        fatal("no sample sizes planned for ", workload.name);
    return plan;
}

} // namespace amdahl::profiling
