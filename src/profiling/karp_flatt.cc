#include "karp_flatt.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/invariants.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "core/amdahl.hh"

namespace amdahl::profiling {

FractionEstimate
estimateFraction(const WorkloadProfile &profile, double datasetGB)
{
    FractionEstimate est;
    est.datasetGB = datasetGB;
    est.coreCounts = profile.multiCoreCounts();
    if (est.coreCounts.empty())
        fatal("Karp-Flatt needs profiles beyond one core");

    const auto speedups = profile.speedups(datasetGB);
    OnlineStats stats;
    for (std::size_t k = 0; k < est.coreCounts.size(); ++k) {
        const double x = static_cast<double>(est.coreCounts[k]);
        // The metric is indeterminate at x == 1 (core::karpFlatt
        // defines it by its clamped limit); a single-core point
        // carries no parallelism signal, so keep the estimate
        // well-defined by clamping rather than dividing by 1 - 1/x.
        double f = x > 1.0 ? core::karpFlatt(speedups[k], x)
                           : minClampedFraction;
        f = std::clamp(f, minClampedFraction, 1.0);
        if constexpr (checkedBuild) {
            invariants::CheckParallelFraction(f,
                                              "karp-flatt estimate");
        }
        est.fractions.push_back(f);
        stats.add(f);
    }
    est.expected = stats.mean();
    est.variance = stats.variance();
    est.medianF = median(est.fractions);
    AMDAHL_CHECK_FINITE(est.expected);
    AMDAHL_CHECK_FINITE(est.variance);
    return est;
}

const char *
toString(FractionAggregator aggregator)
{
    switch (aggregator) {
      case FractionAggregator::GeometricMean:
        return "geomean";
      case FractionAggregator::Median:
        return "median";
      case FractionAggregator::TrimmedMean:
        return "trimmed";
    }
    fatal("unknown fraction aggregator");
}

double
estimateFractionFromSamples(const WorkloadProfile &profile,
                            FractionAggregator aggregator)
{
    std::vector<double> expectations;
    expectations.reserve(profile.datasetsGB.size());
    for (double gb : profile.datasetsGB)
        expectations.push_back(estimateFraction(profile, gb).expected);
    double combined = 0.0;
    switch (aggregator) {
      case FractionAggregator::GeometricMean:
        combined = geometricMean(expectations);
        break;
      case FractionAggregator::Median:
        combined = median(expectations);
        break;
      case FractionAggregator::TrimmedMean:
        combined = trimmedMean(expectations, 0.2);
        break;
    }
    const double f = std::min(1.0, combined);
    if constexpr (checkedBuild)
        invariants::CheckParallelFraction(f, "sampled karp-flatt");
    return f;
}

} // namespace amdahl::profiling
