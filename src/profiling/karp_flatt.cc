#include "karp_flatt.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/stats.hh"
#include "core/amdahl.hh"

namespace amdahl::profiling {

FractionEstimate
estimateFraction(const WorkloadProfile &profile, double datasetGB)
{
    FractionEstimate est;
    est.datasetGB = datasetGB;
    est.coreCounts = profile.multiCoreCounts();
    if (est.coreCounts.empty())
        fatal("Karp-Flatt needs profiles beyond one core");

    const auto speedups = profile.speedups(datasetGB);
    OnlineStats stats;
    for (std::size_t k = 0; k < est.coreCounts.size(); ++k) {
        double f = core::karpFlatt(speedups[k],
                                   static_cast<double>(est.coreCounts[k]));
        f = std::clamp(f, minClampedFraction, 1.0);
        est.fractions.push_back(f);
        stats.add(f);
    }
    est.expected = stats.mean();
    est.variance = stats.variance();
    return est;
}

double
estimateFractionFromSamples(const WorkloadProfile &profile)
{
    std::vector<double> expectations;
    expectations.reserve(profile.datasetsGB.size());
    for (double gb : profile.datasetsGB)
        expectations.push_back(estimateFraction(profile, gb).expected);
    return std::min(1.0, geometricMean(expectations));
}

} // namespace amdahl::profiling
