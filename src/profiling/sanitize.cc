#include "sanitize.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace amdahl::profiling {

SanitizeReport
sanitizeSpeedups(std::vector<double> &speedups,
                 const std::vector<int> &coreCounts,
                 const SanitizeOptions &opts)
{
    if (speedups.size() != coreCounts.size()) {
        fatal("speedup curve has ", speedups.size(),
              " samples for ", coreCounts.size(), " core counts");
    }
    if (opts.minSpeedup <= 0.0)
        fatal("minimum speedup must be positive");
    if (opts.superLinearSlack < 1.0)
        fatal("super-linear slack must be at least 1");
    for (int x : coreCounts) {
        if (x <= 1)
            fatal("speedup curves are defined for core counts > 1");
    }

    SanitizeReport report;
    for (std::size_t k = 0; k < speedups.size(); ++k) {
        double &s = speedups[k];
        const double cap =
            opts.superLinearSlack * static_cast<double>(coreCounts[k]);
        if (!std::isfinite(s)) {
            // A failed or corrupted measurement carries no signal;
            // repair to the serial baseline rather than inventing
            // parallelism.
            s = 1.0;
            ++report.nonFiniteRepaired;
        } else if (s < opts.minSpeedup) {
            s = opts.minSpeedup;
            ++report.subSerialClamped;
        } else if (s > cap) {
            s = cap;
            ++report.superLinearClamped;
        }
    }
    if (opts.enforceMonotone) {
        double running = 0.0;
        for (double &s : speedups) {
            if (s < running) {
                s = running;
                ++report.monotoneRaised;
            }
            running = s;
        }
    }
    return report;
}

core::FisherMarket
sanitizeMarketReports(std::vector<double> capacities,
                      std::vector<core::MarketUser> reports,
                      const ReportPolicy &policy, ReportAudit *audit)
{
    if (!(policy.minFraction >= 0.0 && policy.maxFraction <= 1.0 &&
          policy.minFraction <= policy.maxFraction)) {
        fatal("fraction policy band [", policy.minFraction, ", ",
              policy.maxFraction, "] is not inside [0, 1]");
    }
    if (policy.misreportPenalty <= 0.0 ||
        policy.misreportPenalty > 1.0) {
        fatal("misreport penalty must be in (0, 1], got ",
              policy.misreportPenalty);
    }

    ReportAudit local;
    local.flagged.assign(reports.size(), 0);

    core::FisherMarket sanitized(std::move(capacities));
    for (std::size_t i = 0; i < reports.size(); ++i) {
        core::MarketUser &user = reports[i];
        bool misreported = false;
        for (auto &job : user.jobs) {
            if (!std::isfinite(job.parallelFraction)) {
                job.parallelFraction =
                    0.5 * (policy.minFraction + policy.maxFraction);
                ++local.repairedJobs;
                misreported = true;
            } else if (job.parallelFraction < policy.minFraction ||
                       job.parallelFraction > policy.maxFraction) {
                job.parallelFraction =
                    std::clamp(job.parallelFraction,
                               policy.minFraction, policy.maxFraction);
                ++local.clampedJobs;
                misreported = true;
            }
            if (!std::isfinite(job.weight) || job.weight <= 0.0) {
                job.weight = 1.0;
                ++local.repairedJobs;
                misreported = true;
            }
        }
        if (misreported) {
            local.flagged[i] = 1;
            if (policy.misreportPenalty < 1.0) {
                user.budget *= policy.misreportPenalty;
                ++local.penalizedUsers;
            }
        }
        sanitized.addUser(std::move(user));
    }

    if (audit != nullptr)
        *audit = std::move(local);
    return sanitized;
}

core::FisherMarket
sanitizeMarketReports(const core::FisherMarket &market,
                      const ReportPolicy &policy, ReportAudit *audit)
{
    std::vector<core::MarketUser> reports;
    reports.reserve(market.userCount());
    for (std::size_t i = 0; i < market.userCount(); ++i)
        reports.push_back(market.user(i));
    return sanitizeMarketReports(market.capacities(),
                                 std::move(reports), policy, audit);
}

} // namespace amdahl::profiling
