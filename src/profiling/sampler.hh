/**
 * @file
 * Dataset sampling plans (Section IV-A).
 *
 * Estimating the parallel fraction requires profiling at several core
 * counts, which is too slow on full datasets. The paper samples
 * uniformly and randomly from the original dataset to create smaller
 * ones: 1-6 GB subsets for Spark inputs, and PARSEC's simlarge-class
 * inputs standing in for native. Sampled datasets must still produce
 * more tasks than processors, or there is insufficient parallelism
 * (paper footnote 1) — the planner enforces this where the dataset
 * allows it.
 */

#ifndef AMDAHL_PROFILING_SAMPLER_HH
#define AMDAHL_PROFILING_SAMPLER_HH

#include <vector>

#include "sim/workload.hh"

namespace amdahl::profiling {

/** A set of dataset sizes to profile. */
struct SamplingPlan
{
    std::vector<double> sampleSizesGB; //!< Reduced inputs, ascending.
    double fullSizeGB = 0.0;           //!< The original dataset.
};

/** Planner options. */
struct SamplerOptions
{
    /** Spark sample ladder (GB), clipped to the dataset size. */
    std::vector<double> sparkLadderGB = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};

    /** Fractions of the full input used when the ladder is too coarse
     *  (small datasets) and for PARSEC simlarge-class inputs. */
    std::vector<double> smallDatasetFractions = {0.15, 0.30, 0.45, 0.60,
                                                 0.75};
    std::vector<double> parsecFractions = {0.20, 0.30, 0.40, 0.50};

    /** Minimum sample sizes are chosen so at least this many tasks
     *  exist per sample (when the dataset allows it). Default: one
     *  task per allocatable core of the Table II server. */
    int minTasksPerSample = 24;
};

/**
 * Build the sampling plan for a workload.
 *
 * @param workload The benchmark (suite decides the ladder).
 * @param opts     Planner options.
 * @return Sample sizes plus the full size.
 */
SamplingPlan planSamples(const sim::WorkloadSpec &workload,
                         const SamplerOptions &opts = {});

} // namespace amdahl::profiling

#endif // AMDAHL_PROFILING_SAMPLER_HH
