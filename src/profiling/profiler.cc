#include "profiler.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace amdahl::profiling {

double
WorkloadProfile::secondsAt(double datasetGB, int cores) const
{
    for (const auto &pt : points) {
        if (pt.cores == cores &&
            std::abs(pt.datasetGB - datasetGB) < 1e-9 * datasetGB) {
            return pt.seconds;
        }
    }
    fatal("no profile point for ", workloadName, " at ", datasetGB,
          " GB on ", cores, " cores");
}

std::vector<double>
WorkloadProfile::speedups(double datasetGB) const
{
    const double t1 = secondsAt(datasetGB, 1);
    std::vector<double> result;
    for (int x : coreCounts) {
        if (x > 1)
            result.push_back(t1 / secondsAt(datasetGB, x));
    }
    return result;
}

std::vector<int>
WorkloadProfile::multiCoreCounts() const
{
    std::vector<int> result;
    for (int x : coreCounts) {
        if (x > 1)
            result.push_back(x);
    }
    return result;
}

Profiler::Profiler(sim::TaskSimulator simulator,
                   std::vector<int> core_counts)
    : sim_(std::move(simulator)), cores_(std::move(core_counts))
{
    if (cores_.empty()) {
        // The paper's ladder (2..48 hardware threads) scaled to the
        // simulated server's allocatable cores.
        const int max_cores = sim_.server().cores();
        for (int x : {2, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48}) {
            if (x <= max_cores)
                cores_.push_back(x);
        }
        if (cores_.empty() || cores_.back() != max_cores)
            cores_.push_back(max_cores);
    }
    for (int x : cores_) {
        if (x < 1)
            fatal("core counts must be >= 1, got ", x);
        if (x > sim_.server().cores()) {
            fatal("core count ", x, " exceeds the server's ",
                  sim_.server().cores(), " cores");
        }
    }
    if (std::find(cores_.begin(), cores_.end(), 1) == cores_.end())
        cores_.insert(cores_.begin(), 1);
    std::sort(cores_.begin(), cores_.end());
    cores_.erase(std::unique(cores_.begin(), cores_.end()), cores_.end());
}

WorkloadProfile
Profiler::profile(const sim::WorkloadSpec &workload,
                  const std::vector<double> &datasetsGB) const
{
    if (datasetsGB.empty())
        fatal("no dataset sizes to profile");

    WorkloadProfile result;
    result.workloadName = workload.name;
    result.coreCounts = cores_;
    result.datasetsGB = datasetsGB;
    std::sort(result.datasetsGB.begin(), result.datasetsGB.end());

    for (double gb : result.datasetsGB) {
        if (gb <= 0.0)
            fatal("dataset size must be positive, got ", gb);
        for (int x : cores_) {
            ProfilePoint pt;
            pt.datasetGB = gb;
            pt.cores = x;
            pt.seconds = sim_.executionSeconds(workload, gb, x);
            result.points.push_back(pt);
        }
    }
    return result;
}

} // namespace amdahl::profiling
