#include "predictor.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/amdahl.hh"
#include "profiling/karp_flatt.hh"

namespace amdahl::profiling {

PerformancePredictor
PerformancePredictor::fit(const WorkloadProfile &profile,
                          const PredictorOptions &opts)
{
    if (profile.datasetsGB.size() < 2) {
        fatal("predictor needs at least two dataset sizes, got ",
              profile.datasetsGB.size());
    }

    PerformancePredictor predictor;
    predictor.fraction = estimateFractionFromSamples(profile);

    for (int x : profile.coreCounts) {
        std::vector<double> sizes;
        std::vector<double> times;
        for (double gb : profile.datasetsGB) {
            sizes.push_back(gb);
            times.push_back(profile.secondsAt(gb, x));
        }
        predictor.models.emplace(x, solver::fitLinear(sizes, times));
        predictor.referenceCores = std::max(predictor.referenceCores, x);
    }

    // Optional model selection: if the reference-count linear model
    // fits poorly (quadratically scaling workloads like QR
    // decomposition), switch to quadratic models when they improve
    // the fit and enough points exist.
    if (opts.allowQuadratic && profile.datasetsGB.size() >= 3) {
        const auto &linear =
            predictor.models.at(predictor.referenceCores);
        if (linear.r2 < opts.linearR2Threshold) {
            std::map<int, solver::PolynomialModel> candidates;
            bool better = true;
            for (int x : profile.coreCounts) {
                std::vector<double> sizes, times;
                for (double gb : profile.datasetsGB) {
                    sizes.push_back(gb);
                    times.push_back(profile.secondsAt(gb, x));
                }
                auto quad = solver::fitPolynomial(sizes, times, 2);
                if (quad.r2 <= predictor.models.at(x).r2) {
                    better = false;
                    break;
                }
                candidates.emplace(x, std::move(quad));
            }
            if (better) {
                predictor.polyModels = std::move(candidates);
                predictor.degree = 2;
            }
        }
    }
    return predictor;
}

const solver::LinearModel &
PerformancePredictor::modelForCores(int cores) const
{
    const auto it = models.find(cores);
    if (it == models.end())
        fatal("no linear model fitted for ", cores, " cores");
    return it->second;
}

std::vector<int>
PerformancePredictor::modeledCoreCounts() const
{
    std::vector<int> counts;
    counts.reserve(models.size());
    for (const auto &[cores, model] : models)
        counts.push_back(cores);
    return counts;
}

double
PerformancePredictor::predictSeconds(double datasetGB, int cores) const
{
    if (datasetGB <= 0.0)
        fatal("dataset size must be positive, got ", datasetGB);
    if (cores < 1)
        fatal("core count must be >= 1, got ", cores);

    const double t_ref =
        degree == 2 ? polyModels.at(referenceCores).predict(datasetGB)
                    : modelForCores(referenceCores).predict(datasetGB);
    const double s_ref = core::amdahlSpeedup(
        fraction, static_cast<double>(referenceCores));
    const double s_target =
        core::amdahlSpeedup(fraction, static_cast<double>(cores));
    ensure(s_target > 0.0, "zero predicted speedup");
    return std::max(0.0, t_ref) * s_ref / s_target;
}

PredictionErrorReport
evaluatePredictor(const PerformancePredictor &predictor,
                  const sim::TaskSimulator &simulator,
                  const sim::WorkloadSpec &workload, double datasetGB,
                  const std::vector<int> &core_counts)
{
    if (core_counts.empty())
        fatal("no core counts to evaluate");

    PredictionErrorReport report;
    report.coreCounts = core_counts;
    for (int x : core_counts) {
        const double predicted = predictor.predictSeconds(datasetGB, x);
        const double measured =
            simulator.executionSeconds(workload, datasetGB, x);
        report.predictedSeconds.push_back(predicted);
        report.measuredSeconds.push_back(measured);
        report.errorPercent.push_back(
            100.0 * std::abs(predicted - measured) / measured);
    }
    report.errorSummary = boxplot(report.errorPercent);
    report.meanErrorPercent = mean(report.errorPercent);
    return report;
}

} // namespace amdahl::profiling
