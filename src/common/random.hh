/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the reproduction (population generation,
 * dataset sampling, task-duration jitter) draws from an explicitly seeded
 * Rng so that experiments are bit-reproducible across runs and platforms.
 * The engine is xoshiro256** seeded through SplitMix64, following the
 * reference construction by Blackman and Vigna.
 *
 * This module is the designated owner of randomness: amdahl_lint's
 * DET-rand rule flags std::rand, std::random_device, and the <random>
 * engines/distributions (whose output is implementation-defined)
 * everywhere else in src/ and bench/ (see tools/lint/ and DESIGN.md
 * §12).
 */

#ifndef AMDAHL_COMMON_RANDOM_HH
#define AMDAHL_COMMON_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

namespace amdahl {

/**
 * SplitMix64 generator.
 *
 * Used to expand a single 64-bit seed into the larger state of
 * xoshiro256**; also usable standalone for cheap hashing-style streams.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    /** @return The next 64-bit value in the stream. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * Counter-based substream derivation.
 *
 * mix64 is the SplitMix64 output function applied as a hash: a
 * bijective 64-bit finalizer with full avalanche. substreamSeed chains
 * it over (seed, a, b) so every (a, b) pair — e.g. (user, round) —
 * names a statistically independent seed. Unlike drawing from one
 * sequential stream, the value at (a, b) does not depend on how many
 * draws other (a', b') consumers made, or in what order: realizations
 * are a pure function of the coordinates. The fault-injection layers
 * use this so a bid-loss decision for user u in round r is identical
 * whether users are processed serially, in parallel, or in a
 * different schedule (Synchronous vs GaussSeidel).
 */

/** @return SplitMix64 finalizer of @p x (stateless hash). */
inline std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t z = x + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** @return An independent 64-bit seed for coordinates (@p a, @p b)
 *  under @p seed. Pure function — schedule- and order-independent. */
inline std::uint64_t
substreamSeed(std::uint64_t seed, std::uint64_t a, std::uint64_t b)
{
    return mix64(mix64(mix64(seed) ^ a) ^ b);
}

/** @return A double uniform in [0, 1) derived from @p bits (the same
 *  53-bit construction Rng::uniform uses). */
inline double
counterUniform(std::uint64_t bits)
{
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/** @return true with probability @p p (clamped to [0, 1]) for the
 *  substream at (@p seed, @p a, @p b). Pure function of its
 *  arguments. */
inline bool
counterBernoulli(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                 double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return counterUniform(mix64(substreamSeed(seed, a, b))) < p;
}

/**
 * xoshiro256** engine with convenience distributions.
 *
 * Satisfies UniformRandomBitGenerator so it can also be plugged into
 * <random> distributions, but the built-in helpers below are preferred:
 * they are deterministic across standard-library implementations.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x2018'0214'acadULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type{0}; }

    /** @return The next raw 64-bit output. */
    result_type operator()() { return next(); }

    /** @return The next raw 64-bit output. */
    std::uint64_t next();

    /** @return A double uniform in [0, 1). */
    double uniform();

    /** @return A double uniform in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /**
     * @return An integer uniform in the inclusive range [lo, hi].
     * Uses rejection sampling; unbiased. Requires lo <= hi.
     */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return A standard normal deviate (Box-Muller, no cached spare). */
    double gaussian();

    /** @return A normal deviate with the given mean and stddev. */
    double gaussian(double mean, double stddev);

    /** @return true with probability p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /**
     * @return A Poisson deviate with the given mean (Knuth's method;
     * fine for the small means used by arrival processes). Requires
     * mean >= 0.
     */
    int poisson(double mean);

    /**
     * Pick an index in [0, weights.size()) with probability proportional
     * to the (non-negative) weights. Requires at least one positive weight.
     */
    std::size_t weightedIndex(const std::vector<double> &weights);

    /**
     * Spawn an independent child generator.
     *
     * Streams of the child are statistically independent from subsequent
     * draws of the parent, letting experiment components own private Rngs.
     */
    Rng split();

    /**
     * Raw engine state, for durable snapshots.
     *
     * A generator restored from a saved state produces exactly the
     * draw sequence the original would have produced — the property
     * crash recovery relies on to replay epochs bit-identically.
     */
    std::array<std::uint64_t, 4> saveState() const { return state; }

    /** Overwrite the engine state with a previously saved one. */
    void restoreState(const std::array<std::uint64_t, 4> &saved)
    {
        state = saved;
    }

  private:
    std::array<std::uint64_t, 4> state;
};

} // namespace amdahl

#endif // AMDAHL_COMMON_RANDOM_HH
