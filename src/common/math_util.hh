/**
 * @file
 * Small numeric helpers shared across modules.
 */

#ifndef AMDAHL_COMMON_MATH_UTIL_HH
#define AMDAHL_COMMON_MATH_UTIL_HH

#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

namespace amdahl {

/**
 * Approximate equality with combined absolute/relative tolerance.
 *
 * @return true iff |a - b| <= abs_tol + rel_tol * max(|a|, |b|).
 */
[[nodiscard]] inline bool
approxEqual(double a, double b, double rel_tol = 1e-9,
            double abs_tol = 1e-12)
{
    return std::abs(a - b) <=
           abs_tol + rel_tol * std::max(std::abs(a), std::abs(b));
}

/** @return Sum of a vector of doubles. */
[[nodiscard]] inline double
sum(const std::vector<double> &xs)
{
    return std::accumulate(xs.begin(), xs.end(), 0.0);
}

/** @return L-infinity distance between two equally sized vectors. */
[[nodiscard]] inline double
maxAbsDiff(const std::vector<double> &a, const std::vector<double> &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
        d = std::max(d, std::abs(a[i] - b[i]));
    return d;
}

/** Clamp x into [lo, hi]. */
[[nodiscard]] inline double
clampTo(double x, double lo, double hi)
{
    return x < lo ? lo : (x > hi ? hi : x);
}

} // namespace amdahl

#endif // AMDAHL_COMMON_MATH_UTIL_HH
