/**
 * @file
 * Compile-time-gated contract macros for the market kernels.
 *
 * The solvers are numerical fixed-point iterations whose correctness
 * rests on invariants the math silently assumes: budgets are conserved,
 * prices stay positive and finite, allocations never exceed capacity,
 * and Karp-Flatt estimates stay inside [0, 1]. Violations rarely crash;
 * they drift — fairness erodes while every test that only checks
 * convergence keeps passing. This header provides the machinery to
 * state those invariants in the hot paths and compile them away in
 * production builds.
 *
 * Build with -DAMDAHL_CHECKED=ON (CMake option, see the `debug-checked`
 * preset) to enable the checks. In default builds every macro expands
 * to an unevaluated no-op, so checked expressions cost nothing and
 * never fire; `checkedBuild` lets larger verification blocks be
 * discarded wholesale via `if constexpr`.
 *
 * Contract violations throw PanicError (they are library bugs, not
 * caller errors), so tests can assert on them and long-running
 * deployments can contain the blast radius of a corrupted market.
 */

#ifndef AMDAHL_COMMON_CHECK_HH
#define AMDAHL_COMMON_CHECK_HH

#include <cmath>

#include "common/logging.hh"

#ifndef AMDAHL_CHECKED
#define AMDAHL_CHECKED 0
#endif

namespace amdahl {

/**
 * True when the library was compiled with invariant checking enabled.
 * Use `if constexpr (checkedBuild) { ... }` around verification blocks
 * that need scratch state (e.g. building a per-server load vector); the
 * block type-checks in every configuration but generates no code in
 * default builds.
 */
inline constexpr bool checkedBuild = AMDAHL_CHECKED != 0;

} // namespace amdahl

#if AMDAHL_CHECKED

/**
 * Assert an internal invariant in a hot path. Active only under
 * AMDAHL_CHECKED; panics (throws PanicError) with the stringized
 * condition, source location, and the formatted message on failure.
 */
#define AMDAHL_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::amdahl::panic("invariant `" #cond "` violated at "          \
                            __FILE__ ":", __LINE__                        \
                            __VA_OPT__(, ": ", ) __VA_ARGS__);            \
        }                                                                 \
    } while (false)

/**
 * Assert that a floating-point expression is finite (neither NaN nor
 * infinite). Active only under AMDAHL_CHECKED.
 */
#define AMDAHL_CHECK_FINITE(val)                                          \
    do {                                                                  \
        const double amdahl_check_finite_v_ = (val);                      \
        if (!std::isfinite(amdahl_check_finite_v_)) {                     \
            ::amdahl::panic("non-finite value `" #val "` = ",             \
                            amdahl_check_finite_v_, " at "                \
                            __FILE__ ":", __LINE__);                      \
        }                                                                 \
    } while (false)

#else

// Unevaluated in default builds: sizeof keeps the operands "used" (no
// -Wunused warnings, expressions still type-checked) without emitting
// any code or side effects.
#define AMDAHL_ASSERT(cond, ...)                                          \
    static_cast<void>(sizeof((cond) ? 1 : 1))
#define AMDAHL_CHECK_FINITE(val)                                          \
    static_cast<void>(sizeof((val) != 0.0 ? 1 : 1))

#endif // AMDAHL_CHECKED

#endif // AMDAHL_COMMON_CHECK_HH
