/**
 * @file
 * JSON emission helpers.
 *
 * The repo writes JSON from several places — TablePrinter::writeJson,
 * the metrics exporters, and the trace sink — and they must agree on
 * escaping and number formatting byte for byte (trace files are golden
 * tested). This is the single implementation they all share.
 */

#ifndef AMDAHL_COMMON_JSON_HH
#define AMDAHL_COMMON_JSON_HH

#include <string>
#include <string_view>

namespace amdahl {

/**
 * Append @p value to @p out as a JSON string literal (including the
 * surrounding quotes). Quotes, backslashes, and control bytes below
 * 0x20 are escaped; everything else passes through verbatim.
 */
void appendJsonEscaped(std::string &out, std::string_view value);

/** @return @p value as a quoted JSON string literal. */
std::string jsonEscape(std::string_view value);

/**
 * Format a double as a JSON number token.
 *
 * Finite values render with the fewest significant digits that
 * round-trip exactly (so emitters stay deterministic across runs).
 * JSON has no non-finite numbers: NaN and infinities render as
 * `null`.
 */
std::string jsonNumber(double value);

} // namespace amdahl

#endif // AMDAHL_COMMON_JSON_HH
