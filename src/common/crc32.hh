/**
 * @file
 * CRC-32 (IEEE 802.3, the zlib polynomial) for durable-state integrity.
 *
 * The durability layer checksums every journal record and snapshot
 * payload so torn writes and bit rot are *detected* instead of silently
 * applied. The reflected 0xEDB88320 polynomial with init/xorout
 * 0xFFFFFFFF matches zlib's crc32(), so fixtures and external tooling
 * can compute reference values with any stock implementation.
 *
 * Crc32 is also used as a cheap deterministic digest of per-epoch
 * market events (arrivals, admissions, allocations): recovery replays
 * epochs and compares digests against the journal to prove the replay
 * reproduced exactly what the crashed process did.
 */

#ifndef AMDAHL_COMMON_CRC32_HH
#define AMDAHL_COMMON_CRC32_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace amdahl {

/** @return crc32(@p seed) extended over @p size bytes at @p data. */
std::uint32_t crc32Update(std::uint32_t seed, const void *data,
                          std::size_t size);

/** @return The CRC-32 of @p bytes (one-shot). */
inline std::uint32_t
crc32(std::string_view bytes)
{
    return crc32Update(0, bytes.data(), bytes.size());
}

/**
 * Incremental CRC-32 with typed folds for digest building.
 *
 * Integral and floating values are folded as little-endian fixed-width
 * bytes, so a digest is a pure function of the value sequence —
 * independent of platform struct layout.
 */
class Crc32
{
  public:
    /** Fold raw bytes. */
    void
    update(const void *data, std::size_t size)
    {
        crc_ = crc32Update(crc_, data, size);
    }

    /** Fold a string's bytes (length-prefixed, so "ab","c" != "a","bc"). */
    void
    update(std::string_view bytes)
    {
        updateU64(bytes.size());
        update(bytes.data(), bytes.size());
    }

    /** Fold one 64-bit value as 8 little-endian bytes. */
    void
    updateU64(std::uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        update(b, sizeof b);
    }

    /** Fold one 32-bit value as 4 little-endian bytes. */
    void
    updateU32(std::uint32_t v)
    {
        unsigned char b[4];
        for (int i = 0; i < 4; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        update(b, sizeof b);
    }

    /** Fold a double by its IEEE-754 bit pattern (exact, no rounding). */
    void
    updateF64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        updateU64(bits);
    }

    /** @return The digest over everything folded so far. */
    std::uint32_t value() const { return crc_; }

  private:
    std::uint32_t crc_ = 0;
};

} // namespace amdahl

#endif // AMDAHL_COMMON_CRC32_HH
