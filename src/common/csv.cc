#include "csv.hh"

#include "logging.hh"

namespace amdahl {

CsvWriter::CsvWriter(std::ostream &os, std::vector<std::string> header)
    : out(os), arity(header.size())
{
    if (header.empty())
        fatal("CSV header must be non-empty");
    emit(header);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    if (cells.size() != arity)
        fatal("CSV row has ", cells.size(), " cells, expected ", arity);
    emit(cells);
    ++nRows;
}

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string quoted = "\"";
    for (char ch : field) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::emit(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out << ',';
        out << escape(cells[i]);
    }
    out << '\n';
}

} // namespace amdahl
