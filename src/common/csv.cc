#include "csv.hh"

#include <istream>
#include <sstream>

#include "logging.hh"

namespace amdahl {

CsvWriter::CsvWriter(std::ostream &os, std::vector<std::string> header)
    : out(os), arity(header.size())
{
    if (header.empty())
        fatal("CSV header must be non-empty");
    emit(header);
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    if (cells.size() != arity)
        fatal("CSV row has ", cells.size(), " cells, expected ", arity);
    emit(cells);
    ++nRows;
}

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string quoted = "\"";
    for (char ch : field) {
        if (ch == '"')
            quoted += '"';
        quoted += ch;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::emit(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out << ',';
        out << escape(cells[i]);
    }
    out << '\n';
}

std::size_t
CsvTable::columnIndex(const std::string &name) const
{
    for (std::size_t c = 0; c < header.size(); ++c) {
        if (header[c] == name)
            return c;
    }
    return npos;
}

namespace {

/**
 * One-record RFC-4180 scanner over a raw character stream. Tracks the
 * line counter across embedded newlines so errors always carry the
 * physical line they occurred on.
 */
struct CsvScanner
{
    std::istream &in;
    int line = 1;

    /**
     * Read the next record into `cells`. @return false at clean EOF
     * (no record started); a Status failure via `error` otherwise.
     */
    bool
    nextRecord(std::vector<std::string> &cells, Status &error)
    {
        cells.clear();
        int ch = in.get();
        if (ch == std::istream::traits_type::eof())
            return false;
        std::string cell;
        bool quoted = false;
        bool closed = false; // Cell ended with a closing quote.
        const int record_line = line;
        while (true) {
            if (ch == std::istream::traits_type::eof()) {
                if (quoted) {
                    error = Status::error(
                        ErrorKind::ParseError, record_line,
                        "unterminated quoted field");
                    return false;
                }
                cells.push_back(std::move(cell));
                return true;
            }
            const char c = static_cast<char>(ch);
            if (quoted) {
                if (c == '"') {
                    const int next = in.peek();
                    if (next == '"') {
                        in.get();
                        cell += '"';
                    } else {
                        quoted = false;
                        closed = true;
                    }
                } else {
                    if (c == '\n')
                        ++line;
                    cell += c;
                }
            } else if (c == ',') {
                cells.push_back(std::move(cell));
                cell.clear();
                closed = false;
            } else if (c == '\n' || c == '\r') {
                if (c == '\r' && in.peek() == '\n')
                    in.get();
                ++line;
                cells.push_back(std::move(cell));
                return true;
            } else if (closed) {
                // RFC 4180: a closing quote ends the field; anything
                // but a separator after it is smuggled data.
                error = Status::error(ErrorKind::ParseError, line,
                                      "data after a closing quote");
                return false;
            } else if (c == '"') {
                if (!cell.empty()) {
                    error = Status::error(
                        ErrorKind::ParseError, line,
                        "quote in the middle of an unquoted field");
                    return false;
                }
                quoted = true;
            } else {
                cell += c;
            }
            ch = in.get();
        }
    }
};

} // namespace

Result<CsvTable>
parseCsv(std::istream &in, const CsvParseOptions &opts)
{
    if (!in)
        return Status::error(ErrorKind::IoError, 0,
                             "cannot read CSV input");

    CsvScanner scanner{in};
    CsvTable table;
    Status error = Status::ok();

    if (!scanner.nextRecord(table.header, error)) {
        if (!error.isOk())
            return error;
        return Status::error(ErrorKind::ParseError, 0,
                             "CSV input is empty (no header)");
    }
    if (table.header.size() == 1 && table.header[0].empty()) {
        return Status::error(ErrorKind::ParseError, 1,
                             "CSV header is empty");
    }

    std::vector<std::string> cells;
    while (true) {
        const int record_line = scanner.line;
        if (!scanner.nextRecord(cells, error)) {
            if (!error.isOk())
                return error;
            return table;
        }
        // A lone empty cell is a blank line; skip it (common at EOF).
        if (cells.size() == 1 && cells[0].empty())
            continue;
        if (cells.size() != table.header.size()) {
            if (!opts.allowRagged) {
                return Status::error(
                    ErrorKind::SemanticError, record_line, "row has ",
                    cells.size(), " cells, header has ",
                    table.header.size());
            }
            cells.resize(table.header.size());
        }
        if (table.rows.size() >= opts.maxRows) {
            return Status::error(ErrorKind::SemanticError, record_line,
                                 "more than ", opts.maxRows,
                                 " data rows");
        }
        table.rows.push_back(cells);
    }
}

Result<CsvTable>
parseCsvString(const std::string &text, const CsvParseOptions &opts)
{
    std::istringstream is(text);
    return parseCsv(is, opts);
}

} // namespace amdahl
