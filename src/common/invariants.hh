/**
 * @file
 * Typed invariant checkers for market state.
 *
 * Each checker states one contract the Amdahl Bidding fixed point
 * (paper Eq. 9-10) and the allocation policies rely on:
 *
 *  - CheckParallelFraction: Karp-Flatt estimates land in [0, 1].
 *  - CheckMarketState:      prices are finite and positive, bids are
 *                           finite and non-negative.
 *  - CheckBidBudgets:       each user's bids sum to her budget
 *                           (budget conservation, Eq. 10).
 *  - CheckAllocationFeasible: per-server load never exceeds capacity
 *                           (and clears it, within tolerance).
 *
 * The checkers are plain functions on vectors so they stay in
 * `amdahl_common` (no dependency on core market types) and remain
 * directly callable from tests in every build configuration. Hot-path
 * call sites wrap them in `if constexpr (checkedBuild)` or the
 * AMDAHL_ASSERT macros from check.hh so default builds pay nothing.
 *
 * All checkers throw PanicError on violation: a bad market state is an
 * internal bug, never a caller error.
 */

#ifndef AMDAHL_COMMON_INVARIANTS_HH
#define AMDAHL_COMMON_INVARIANTS_HH

#include <cstddef>
#include <vector>

namespace amdahl::invariants {

/** Per-user, per-job value matrix (bids or allocations). */
using Matrix = std::vector<std::vector<double>>;

/**
 * Check that a parallel fraction is finite and inside [0, 1].
 *
 * @param f     The fraction to validate.
 * @param where Call-site label included in the diagnostic.
 * @throws PanicError when f is NaN, infinite, or outside [0, 1].
 */
void CheckParallelFraction(double f, const char *where);

/**
 * Check the running state of a market mechanism: every price is finite
 * and strictly positive (a cleared server with bidders always has
 * positive price), and every bid is finite and non-negative.
 *
 * @param prices p_j per server.
 * @param bids   b_ij per [user][job].
 * @param where  Call-site label included in the diagnostic.
 * @throws PanicError on any non-finite, non-positive price or any
 *         non-finite, negative bid.
 */
void CheckMarketState(const std::vector<double> &prices,
                      const Matrix &bids, const char *where);

/**
 * Check budget conservation: user i's bids sum to b_i within a
 * relative tolerance. The proportional-response update renormalizes
 * every round, so any drift signals a broken update or aliasing bug.
 *
 * @param bids    b_ij per [user][job].
 * @param budgets b_i per user; must be positive and the same length.
 * @param tol     Relative tolerance on |sum_k b_ik - b_i| / b_i.
 * @param where   Call-site label included in the diagnostic.
 * @throws PanicError on shape mismatch or budget drift beyond tol.
 */
void CheckBidBudgets(const Matrix &bids,
                     const std::vector<double> &budgets, double tol,
                     const char *where);

/**
 * Check capacity feasibility: each server's load is finite,
 * non-negative, and within a relative tolerance of its capacity from
 * below (loads may fall short — demand caps leave cores idle — but
 * must never exceed capacity by more than tol).
 *
 * @param serverLoads sum_i x_ij per server.
 * @param capacities  C_j per server; must be positive, same length.
 * @param tol         Relative tolerance on (load - C_j) / C_j.
 * @param where       Call-site label included in the diagnostic.
 * @throws PanicError on shape mismatch, non-finite load, or overload.
 */
void CheckAllocationFeasible(const std::vector<double> &serverLoads,
                             const std::vector<double> &capacities,
                             double tol, const char *where);

} // namespace amdahl::invariants

#endif // AMDAHL_COMMON_INVARIANTS_HH
