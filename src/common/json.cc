#include "json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace amdahl {

void
appendJsonEscaped(std::string &out, std::string_view value)
{
    out += '"';
    for (char ch : value) {
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += '"';
}

std::string
jsonEscape(std::string_view value)
{
    std::string out;
    out.reserve(value.size() + 2);
    appendJsonEscaped(out, value);
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    // Integers stay integers: %g would render 60.0 as "6e+01", which
    // round-trips but reads badly in traces and golden files.
    if (value == std::floor(value) && std::abs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    // Shortest representation that round-trips: try increasing
    // precision until strtod reads the same bits back.
    char buf[40];
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
        if (std::strtod(buf, nullptr) == value)
            break;
    }
    return buf;
}

} // namespace amdahl
