#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace amdahl {

void
OnlineStats::add(double x)
{
    ++n;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.m - m;
    const double total = na + nb;
    m += delta * nb / total;
    m2 += other.m2 + delta * delta * na * nb / total;
    n += other.n;
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
}

double
OnlineStats::variance() const
{
    return n < 1 ? 0.0 : m2 / static_cast<double>(n);
}

double
OnlineStats::sampleVariance() const
{
    return n < 2 ? 0.0 : m2 / static_cast<double>(n - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("mean of empty sample");
    OnlineStats s;
    for (double x : xs)
        s.add(x);
    return s.mean();
}

double
variance(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("variance of empty sample");
    OnlineStats s;
    for (double x : xs)
        s.add(x);
    return s.variance();
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("geometric mean of empty sample");
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            fatal("geometric mean requires positive samples, got ", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
median(const std::vector<double> &xs)
{
    return quantile(xs, 0.5);
}

double
trimmedMean(std::vector<double> xs, double trim)
{
    if (xs.empty())
        fatal("trimmed mean of empty sample");
    if (trim < 0.0 || trim >= 0.5)
        fatal("trim fraction ", trim, " outside [0, 0.5)");
    std::sort(xs.begin(), xs.end());
    const auto drop = static_cast<std::size_t>(
        std::floor(trim * static_cast<double>(xs.size())));
    double sum = 0.0;
    for (std::size_t i = drop; i < xs.size() - drop; ++i)
        sum += xs[i];
    return sum / static_cast<double>(xs.size() - 2 * drop);
}

double
quantile(std::vector<double> xs, double q)
{
    if (xs.empty())
        fatal("quantile of empty sample");
    if (q < 0.0 || q > 1.0)
        fatal("quantile ", q, " outside [0, 1]");
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto below = static_cast<std::size_t>(std::floor(pos));
    const auto above = static_cast<std::size_t>(std::ceil(pos));
    const double frac = pos - std::floor(pos);
    return xs[below] + frac * (xs[above] - xs[below]);
}

BoxplotSummary
boxplot(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("boxplot of empty sample");
    std::vector<double> sorted(xs);
    std::sort(sorted.begin(), sorted.end());
    BoxplotSummary b;
    b.min = sorted.front();
    b.max = sorted.back();
    b.q1 = quantile(sorted, 0.25);
    b.median = quantile(sorted, 0.50);
    b.q3 = quantile(sorted, 0.75);
    return b;
}

double
meanAbsolutePercentageError(const std::vector<double> &actual,
                            const std::vector<double> &reference)
{
    if (actual.size() != reference.size())
        fatal("MAPE: size mismatch ", actual.size(), " vs ",
              reference.size());
    if (actual.empty())
        fatal("MAPE of empty sample");
    double sum = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        if (reference[i] == 0.0)
            fatal("MAPE: zero reference at index ", i);
        sum += std::abs(actual[i] - reference[i]) / std::abs(reference[i]);
    }
    return 100.0 * sum / static_cast<double>(actual.size());
}

double
meanAbsoluteError(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size())
        fatal("MAE: size mismatch ", a.size(), " vs ", b.size());
    if (a.empty())
        fatal("MAE of empty sample");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += std::abs(a[i] - b[i]);
    return sum / static_cast<double>(a.size());
}

} // namespace amdahl
