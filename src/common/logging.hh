/**
 * @file
 * Status and error reporting for the amdahl-market library.
 *
 * Follows the gem5 convention of distinguishing user errors from internal
 * bugs:
 *
 *  - fatal():  the computation cannot continue because of a condition that
 *              is the *caller's* fault (bad configuration, invalid
 *              arguments). Throws FatalError.
 *  - panic():  something happened that should never happen regardless of
 *              what the caller does — an internal bug. Throws PanicError.
 *  - warn():   something is suspicious but execution can continue.
 *  - inform(): plain status messages.
 *
 * Unlike gem5 (which exits the process), fatal() and panic() throw typed
 * exceptions so that library users and the test suite can observe and
 * recover from them.
 */

#ifndef AMDAHL_COMMON_LOGGING_HH
#define AMDAHL_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace amdahl {

/** Error caused by invalid input or configuration (the caller's fault). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Error caused by an internal invariant violation (a library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

namespace detail {

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
[[nodiscard]] std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Abort the current computation due to a caller error.
 *
 * @param args Message fragments, concatenated with operator<<.
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort the current computation due to an internal bug.
 *
 * @param args Message fragments, concatenated with operator<<.
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/** Severity levels for non-throwing log messages. */
enum class LogLevel { Quiet, Warn, Inform };

/**
 * Set the global log verbosity.
 *
 * @param level Messages above this severity are suppressed.
 * @return The previous level.
 */
LogLevel setLogLevel(LogLevel level);

/** @return The current global log verbosity. */
[[nodiscard]] LogLevel logLevel();

namespace detail {

void emitLog(LogLevel level, const std::string &msg);

/**
 * Observer of every warn()/inform() message, regardless of the
 * verbosity filter (the filter governs stderr only; a structured
 * sink wants the suppressed messages too). Installed by the obs
 * layer's trace sink — common/ cannot depend on obs/, so the
 * coupling is this one function pointer.
 */
using LogSinkHook = void (*)(LogLevel, const std::string &);

/**
 * Install (or clear, with nullptr) the log observer.
 *
 * @return The previously installed hook.
 */
LogSinkHook setLogSinkHook(LogSinkHook hook);

} // namespace detail

/** Report a suspicious-but-survivable condition to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitLog(LogLevel::Warn,
                    detail::concat(std::forward<Args>(args)...));
}

/** Report a status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitLog(LogLevel::Inform,
                    detail::concat(std::forward<Args>(args)...));
}

/**
 * Check an internal invariant, panicking with a message on failure.
 *
 * Unlike assert(), this is always on: allocation-market invariants are cheap
 * to check relative to the math around them.
 */
template <typename... Args>
void
ensure(bool condition, Args &&...args)
{
    if (!condition)
        panic(std::forward<Args>(args)...);
}

} // namespace amdahl

#endif // AMDAHL_COMMON_LOGGING_HH
