/**
 * @file
 * Structured error propagation across the trust boundary.
 *
 * Everything that crosses from *outside* the process into the market —
 * tenant-supplied market files, profiled speedup curves, CSV artifacts —
 * is untrusted. Throwing FatalError on the first bad token (the
 * library-internal convention from logging.hh) is the wrong tool at
 * that boundary: callers cannot distinguish "the file is garbage" from
 * "the library is misconfigured", and a service clearing markets every
 * epoch must reject bad input without unwinding through its event loop.
 *
 * This header provides the explicit alternative: `Status` describes one
 * ingestion failure with a taxonomy kind and a line number, and
 * `Result<T>` carries either a value or a Status. The taxonomy:
 *
 *  - ParseError:    the bytes do not match the grammar (bad token,
 *                   unterminated quote, truncated record).
 *  - DomainError:   a token parsed but its value is unusable anywhere
 *                   (NaN, infinity, a fraction outside [0, 1], a
 *                   negative capacity).
 *  - SemanticError: every field is individually fine but the document
 *                   is inconsistent (duplicate `job server` entries,
 *                   a job referencing a server that does not exist,
 *                   a market with no users).
 *  - IoError:       the bytes could not be read at all.
 *
 * Callers choose reject-vs-repair per field: the CLI rejects and prints
 * the status, the profiling sanitizer repairs what it can and reports
 * what it changed, and tests assert that *no* malformed input escapes
 * as a crash or a raw std:: exception.
 */

#ifndef AMDAHL_COMMON_STATUS_HH
#define AMDAHL_COMMON_STATUS_HH

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace amdahl {

/** Error taxonomy for validated ingestion (see file comment). */
enum class ErrorKind
{
    ParseError,    //!< Bytes do not match the grammar.
    DomainError,   //!< A value is unusable (non-finite, out of range).
    SemanticError, //!< Fields are fine; the document is inconsistent.
    IoError,       //!< The input could not be read.
};

/** @return Short label for an error kind ("parse error", ...). */
[[nodiscard]] const char *toString(ErrorKind kind);

/**
 * Outcome of one ingestion step: success, or one classified,
 * line-numbered failure.
 *
 * Statuses are cheap to move and never throw; the first error
 * encountered wins (ingestion stops at the first unusable token, so
 * the line number always points at the offending input).
 */
class [[nodiscard]] Status
{
  public:
    /** @return The success status. */
    static Status ok() { return Status(); }

    /**
     * Build a failure status.
     *
     * @param kind Taxonomy classification.
     * @param line 1-based input line, or 0 when no line applies.
     * @param args Message fragments, concatenated with operator<<.
     */
    template <typename... Args>
    static Status
    error(ErrorKind kind, int line, Args &&...args)
    {
        Status st;
        st.failed = true;
        st.errorKind = kind;
        st.errorLine = line;
        st.text = detail::concat(std::forward<Args>(args)...);
        return st;
    }

    /** @return true on success. */
    [[nodiscard]] bool isOk() const { return !failed; }

    /** @return The taxonomy kind. Only meaningful on failure. */
    [[nodiscard]] ErrorKind kind() const { return errorKind; }

    /** @return 1-based line of the failure; 0 when none applies. */
    [[nodiscard]] int line() const { return errorLine; }

    /** @return The bare failure message (no kind/line prefix). */
    [[nodiscard]] const std::string &message() const { return text; }

    /**
     * @return The full diagnostic, e.g.
     * "parse error at line 3: expected a number for a budget".
     */
    [[nodiscard]] std::string toString() const;

  private:
    Status() = default;

    bool failed = false;
    ErrorKind errorKind = ErrorKind::ParseError;
    int errorLine = 0;
    std::string text;
};

/**
 * A value or the Status explaining why there is none.
 *
 * The deliberate subset of the usual expected<T, E> surface: construct
 * with a value or a failed Status, test with ok(), and take the value
 * with value()/take(). Accessing the value of a failed result panics —
 * that is a caller bug, not an input error.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /** Success. */
    Result(T value) // NOLINT(google-explicit-constructor)
        : val(std::move(value)), st(Status::ok())
    {}

    /** Failure; `status.isOk()` must be false. */
    Result(Status status) // NOLINT(google-explicit-constructor)
        : st(std::move(status))
    {
        ensure(!st.isOk(),
               "Result constructed from a success Status without a value");
    }

    /** @return true when a value is present. */
    [[nodiscard]] bool ok() const { return st.isOk(); }

    /** @return The failure (or success) status. */
    [[nodiscard]] const Status &status() const { return st; }

    /** @return The value. Panics when !ok(). */
    [[nodiscard]] const T &
    value() const
    {
        ensure(ok(), "Result::value() on a failed result: ",
               st.toString());
        return *val;
    }

    /** @return The value, moved out. Panics when !ok(). */
    [[nodiscard]] T
    take()
    {
        ensure(ok(), "Result::take() on a failed result: ",
               st.toString());
        return std::move(*val);
    }

    /**
     * Back-compat bridge for throw-style callers: the value, or a
     * FatalError carrying the full diagnostic.
     */
    T
    orFatal()
    {
        if (!ok())
            fatal(st.toString());
        return std::move(*val);
    }

  private:
    std::optional<T> val;
    Status st;
};

} // namespace amdahl

#endif // AMDAHL_COMMON_STATUS_HH
