#include "common/crc32.hh"

#include <array>

namespace amdahl {
namespace {

/** Byte-at-a-time table for the reflected 0xEDB88320 polynomial. */
constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

constexpr auto kTable = makeTable();

} // namespace

std::uint32_t
crc32Update(std::uint32_t seed, const void *data, std::size_t size)
{
    std::uint32_t c = seed ^ 0xFFFFFFFFu;
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i)
        c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

} // namespace amdahl
