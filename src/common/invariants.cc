#include "invariants.hh"

#include <cmath>

#include "common/logging.hh"

namespace amdahl::invariants {

void
CheckParallelFraction(double f, const char *where)
{
    if (!std::isfinite(f))
        panic(where, ": parallel fraction is not finite (", f, ")");
    if (f < 0.0 || f > 1.0)
        panic(where, ": parallel fraction ", f, " outside [0, 1]");
}

void
CheckMarketState(const std::vector<double> &prices, const Matrix &bids,
                 const char *where)
{
    for (std::size_t j = 0; j < prices.size(); ++j) {
        if (!std::isfinite(prices[j])) {
            panic(where, ": price on server ", j, " is not finite (",
                  prices[j], ")");
        }
        if (prices[j] <= 0.0) {
            panic(where, ": price on server ", j, " is not positive (",
                  prices[j], ")");
        }
    }
    for (std::size_t i = 0; i < bids.size(); ++i) {
        for (std::size_t k = 0; k < bids[i].size(); ++k) {
            if (!std::isfinite(bids[i][k])) {
                panic(where, ": bid [", i, "][", k,
                      "] is not finite (", bids[i][k], ")");
            }
            if (bids[i][k] < 0.0) {
                panic(where, ": bid [", i, "][", k, "] is negative (",
                      bids[i][k], ")");
            }
        }
    }
}

void
CheckBidBudgets(const Matrix &bids, const std::vector<double> &budgets,
                double tol, const char *where)
{
    if (bids.size() != budgets.size()) {
        panic(where, ": bid matrix has ", bids.size(),
              " users but there are ", budgets.size(), " budgets");
    }
    for (std::size_t i = 0; i < bids.size(); ++i) {
        if (!(budgets[i] > 0.0)) {
            panic(where, ": user ", i, " has non-positive budget ",
                  budgets[i]);
        }
        double spent = 0.0;
        for (double b : bids[i])
            spent += b;
        if (!std::isfinite(spent)) {
            panic(where, ": user ", i, " has non-finite total spend (",
                  spent, ")");
        }
        const double drift = std::abs(spent - budgets[i]) / budgets[i];
        if (drift > tol) {
            panic(where, ": user ", i, " spends ", spent,
                  " against budget ", budgets[i],
                  " (relative drift ", drift, " > ", tol, ")");
        }
    }
}

void
CheckAllocationFeasible(const std::vector<double> &serverLoads,
                        const std::vector<double> &capacities, double tol,
                        const char *where)
{
    if (serverLoads.size() != capacities.size()) {
        panic(where, ": ", serverLoads.size(), " server loads against ",
              capacities.size(), " capacities");
    }
    for (std::size_t j = 0; j < serverLoads.size(); ++j) {
        if (!(capacities[j] > 0.0)) {
            panic(where, ": server ", j, " has non-positive capacity ",
                  capacities[j]);
        }
        if (!std::isfinite(serverLoads[j])) {
            panic(where, ": load on server ", j, " is not finite (",
                  serverLoads[j], ")");
        }
        if (serverLoads[j] < 0.0) {
            panic(where, ": load on server ", j, " is negative (",
                  serverLoads[j], ")");
        }
        const double excess =
            (serverLoads[j] - capacities[j]) / capacities[j];
        if (excess > tol) {
            panic(where, ": server ", j, " overloaded: ",
                  serverLoads[j], " cores against capacity ",
                  capacities[j], " (relative excess ", excess, " > ",
                  tol, ")");
        }
    }
}

} // namespace amdahl::invariants
