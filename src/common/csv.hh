/**
 * @file
 * Minimal RFC-4180-style CSV emission.
 *
 * Bench binaries optionally dump their series as CSV so the figures can be
 * re-plotted outside the repo. Values containing commas, quotes, or
 * newlines are quoted and escaped.
 */

#ifndef AMDAHL_COMMON_CSV_HH
#define AMDAHL_COMMON_CSV_HH

#include <ostream>
#include <string>
#include <vector>

namespace amdahl {

/**
 * Streaming CSV writer.
 *
 * The header is written on construction; each row must match the header's
 * arity.
 */
class CsvWriter
{
  public:
    /**
     * @param os      Destination stream (must outlive the writer).
     * @param header  Column names; written immediately.
     */
    CsvWriter(std::ostream &os, std::vector<std::string> header);

    /** Write one row. @param cells One cell per header column. */
    void writeRow(const std::vector<std::string> &cells);

    /** Escape a single CSV field per RFC 4180. */
    static std::string escape(const std::string &field);

    /** @return Number of data rows written. */
    std::size_t rowsWritten() const { return nRows; }

  private:
    void emit(const std::vector<std::string> &cells);

    std::ostream &out;
    std::size_t arity;
    std::size_t nRows = 0;
};

} // namespace amdahl

#endif // AMDAHL_COMMON_CSV_HH
